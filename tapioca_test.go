package tapioca_test

import (
	"testing"

	"tapioca"
)

func TestMiraMachineRunsQuickstart(t *testing.T) {
	m := tapioca.Mira(128, tapioca.WithLockSharing())
	rep, err := m.Run(4, func(ctx *tapioca.Ctx) {
		f := ctx.CreateFile("snap", tapioca.FileOptions{})
		w := ctx.Tapioca(f, tapioca.Config{Aggregators: 8, BufferSize: 4 << 20})
		w.Init([][]tapioca.Seg{{tapioca.Contig(int64(ctx.Rank())<<20, 1<<20)}})
		w.WriteAll()
		ctx.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if len(rep.Files) != 1 || rep.Files[0].BytesWritten != int64(512)<<20 {
		t.Fatalf("report files = %+v", rep.Files)
	}
}

func TestThetaMachineMPIIOAndTapioca(t *testing.T) {
	m := tapioca.Theta(64)
	_, err := m.Run(2, func(ctx *tapioca.Ctx) {
		opt := tapioca.FileOptions{StripeCount: 8, StripeSize: 1 << 20}
		f := ctx.CreateFile("a", opt)
		fh := ctx.MPIIO(f, tapioca.Hints{CBNodes: 4, CBBufferSize: 1 << 20})
		fh.WriteAtAll([]tapioca.Seg{tapioca.Contig(int64(ctx.Rank())<<18, 1<<18)})
		fh.Close()

		g := ctx.CreateFile("b", opt)
		w := ctx.Tapioca(g, tapioca.Config{Aggregators: 4, BufferSize: 1 << 20})
		w.Init([][]tapioca.Seg{{tapioca.Contig(int64(ctx.Rank())<<18, 1<<18)}})
		w.WriteAll()
		ctx.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReports(t *testing.T) {
	run := func() float64 {
		m := tapioca.Theta(32)
		rep, err := m.Run(2, func(ctx *tapioca.Ctx) {
			f := ctx.CreateFile("d", tapioca.FileOptions{StripeCount: 4, StripeSize: 1 << 20})
			w := ctx.Tapioca(f, tapioca.Config{Aggregators: 4, BufferSize: 1 << 20})
			w.Init([][]tapioca.Seg{{tapioca.Contig(int64(ctx.Rank())<<19, 1<<19)}})
			w.WriteAll()
			ctx.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Elapsed
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic elapsed: %v vs %v", a, b)
	}
}

func TestCtxSplitAndPset(t *testing.T) {
	m := tapioca.Mira(256)
	_, err := m.Run(2, func(ctx *tapioca.Ctx) {
		pset := ctx.Pset()
		if pset != ctx.Node()/128 {
			t.Errorf("pset = %d for node %d", pset, ctx.Node())
		}
		sub := ctx.Split(pset, ctx.Rank())
		if sub.Size() != ctx.Size()/2 {
			t.Errorf("sub size = %d", sub.Size())
		}
		sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxSecondsReduction(t *testing.T) {
	m := tapioca.Theta(16)
	_, err := m.Run(1, func(ctx *tapioca.Ctx) {
		ctx.Compute(float64(ctx.Rank()) * 0.001)
		v := ctx.MaxSeconds(ctx.Now())
		if v < 0.015 {
			t.Errorf("max = %v, want >= 15ms", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStridedHelper(t *testing.T) {
	s := tapioca.Strided(10, 4, 38, 100)
	if s.Bytes() != 400 || s.Off != 10 {
		t.Fatalf("seg = %+v", s)
	}
}

func TestAutotunePublicAPI(t *testing.T) {
	m := tapioca.Theta(32)
	w := tapioca.IORWorkload(32*4, 1<<19)
	cfg, fopt, hints := tapioca.Autotune(m, w)
	cfg2, fopt2, _ := tapioca.Autotune(m, w)
	if cfg != cfg2 || fopt != fopt2 {
		t.Fatalf("non-deterministic pick: %+v/%+v vs %+v/%+v", cfg, fopt, cfg2, fopt2)
	}
	if cfg.Aggregators < 1 || cfg.BufferSize < 1 {
		t.Fatalf("config = %+v", cfg)
	}
	if hints.CBNodes != cfg.Aggregators || hints.CBBufferSize != cfg.BufferSize {
		t.Fatalf("hints %+v do not mirror config %+v", hints, cfg)
	}
	// Tuning must not consume the machine: the tuned configuration runs on
	// the same instance afterwards.
	rep, err := m.Run(4, func(ctx *tapioca.Ctx) {
		f := ctx.CreateFile("tuned", fopt)
		wr := ctx.Tapioca(f, cfg)
		wr.Init(w.Declared(ctx.Rank(), ctx.Size()))
		wr.WriteAll()
		ctx.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestAutotuneWithProbes(t *testing.T) {
	m := tapioca.Theta(16)
	w := tapioca.HACCWorkload(16*2, 5000, true)
	cfg, _, _ := tapioca.Autotune(m, w, tapioca.WithProbes(2))
	cfg2, _, _ := tapioca.Autotune(m, w, tapioca.WithProbes(2))
	if cfg != cfg2 {
		t.Fatalf("closed loop non-deterministic: %+v vs %+v", cfg, cfg2)
	}
}
