package mpi

import (
	"fmt"
	"sort"

	"tapioca/internal/sim"
)

type simMsg = sim.Message

func simMessage(arrival, key, bytes int64, payload any) sim.Message {
	return sim.Message{Arrival: arrival, Key: key, Bytes: bytes, Payload: payload}
}

// collState accumulates one in-flight collective on a communicator. States
// are recycled through commShared.collFree: a reference count tracks how
// many ranks still need to read the shared result, and the last reader
// resets the state for reuse — steady-state collectives allocate nothing.
type collState struct {
	kind     string
	arrived  int
	refs     int
	maxT     int64
	contribs []any
	hasData  bool // any non-nil contribution stored this round
	waiters  []*sim.Proc
	result   any
	release  int64
}

// collective runs one bulk-synchronous collective call. Every rank of the
// communicator must call it with the same kind, in the same order (matched
// collectives, as the MPI standard requires — mismatches panic, surfacing
// real bugs). finish runs once, on the last-arriving rank, and returns the
// shared result plus the common release time.
func (c *Comm) collective(kind string, contrib any, finish func(contribs []any, maxT int64) (any, int64)) any {
	return c.collectiveImpl(kind, contrib, finish, nil, 0)
}

// collectiveImpl carries both finish shapes: the internal (contribs, maxT)
// form, and the user (contribs)-only form whose release is the tree cost
// over bytes — passed directly so the hot Collective path does not allocate
// a wrapper closure per call.
func (c *Comm) collectiveImpl(kind string, contrib any, finish func(contribs []any, maxT int64) (any, int64), userFinish func(contribs []any) any, bytes int64) any {
	s := c.s
	if s.coll == nil {
		st := s.collFree
		if st != nil {
			s.collFree = nil
			st.kind = kind
		} else {
			st = &collState{kind: kind, contribs: make([]any, c.Size())}
		}
		st.refs = c.Size()
		s.coll = st
	}
	st := s.coll
	if st.kind != kind {
		panic(fmt.Sprintf("mpi: mismatched collectives on comm %d: %s vs %s", s.id, st.kind, kind))
	}
	if contrib != nil {
		st.contribs[c.rank] = contrib
		st.hasData = true
	}
	st.arrived++
	if c.p.Now() > st.maxT {
		st.maxT = c.p.Now()
	}
	if st.arrived < c.Size() {
		entry := c.p.Now()
		st.waiters = append(st.waiters, c.p)
		c.p.Park(kind)
		c.p.TraceSpan("mpi", kind, entry, c.p.Now(), 0)
		res := st.result
		s.recycleColl(st)
		return res
	}
	// Last arriver: compute, reset comm state for the next collective,
	// release everyone at the common time.
	if finish != nil {
		st.result, st.release = finish(st.contribs, st.maxT)
	} else {
		st.result = userFinish(st.contribs)
		st.release = c.treeCost(st.maxT, bytes)
	}
	if st.release < st.maxT {
		st.release = st.maxT
	}
	s.coll = nil
	entry := c.p.Now()
	c.p.Engine().UnparkBatch(st.waiters, st.release)
	c.p.HoldUntil(st.release)
	c.p.TraceSpan("mpi", kind, entry, c.p.Now(), 0)
	res := st.result
	s.recycleColl(st)
	return res
}

// recycleColl releases one rank's reference on a finished collective state;
// the last reference clears the state (dropping payload references) and
// parks it for reuse. The comm may already be running its next collective
// on a fresh state by then — the free slot only holds one spare.
func (s *commShared) recycleColl(st *collState) {
	st.refs--
	if st.refs > 0 {
		return
	}
	// Barriers and fences contribute nothing; skip their O(P) clear.
	if st.hasData {
		for i := range st.contribs {
			st.contribs[i] = nil
		}
		st.hasData = false
	}
	for i := range st.waiters {
		st.waiters[i] = nil
	}
	st.waiters = st.waiters[:0]
	st.kind = ""
	st.arrived = 0
	st.maxT = 0
	st.result = nil
	st.release = 0
	if s.collFree == nil {
		s.collFree = st
	}
}

// Collective runs a user-defined collective operation: every rank's contrib
// is gathered, finish runs exactly once (on the last-arriving rank) over the
// contributions indexed by comm rank, and its result is returned to every
// rank. The cost model is a tree collective moving bytes per rank. This is
// the building block for library-level collectives that must not replicate
// O(P) work on every rank (e.g. two-phase I/O plan construction).
//
// kind labels the operation for collective matching; it must not start with
// the reserved "mpi:" prefix the built-in collectives use. Callers pass
// constant strings, so matching compares interned pointers — no per-call
// allocation, unlike the prefix concatenation this replaces.
func (c *Comm) Collective(kind string, contrib any, bytes int64, finish func(contribs []any) any) any {
	if len(kind) >= 4 && kind[:4] == "mpi:" {
		panic(fmt.Sprintf("mpi: user collective kind %q uses the reserved mpi: prefix", kind))
	}
	return c.collectiveImpl(kind, contrib, nil, finish, bytes)
}

// treeCost is the LogP-style analytic cost of a tree collective moving
// bytes per rank: ⌈log₂P⌉ rounds of per-round latency plus the bandwidth
// term on the injection rate.
func (c *Comm) treeCost(maxT int64, bytes int64) int64 {
	rounds := logRounds(c.Size())
	inject := c.s.w.fabric.Config().InjectRate
	return maxT + rounds*c.alpha() + rounds*sim.TransferTime(bytes, inject)
}

// Barrier blocks until all ranks of the communicator arrive. The finish
// closure is cached on the handle: barriers run once per round per rank,
// and a fresh closure per call is a heap allocation on that hot path.
func (c *Comm) Barrier() {
	if c.barrierFn == nil {
		c.barrierFn = func(_ []any, maxT int64) (any, int64) {
			return nil, c.treeCost(maxT, 0)
		}
	}
	c.collective("mpi:barrier", nil, c.barrierFn)
}

// FenceLocal is a node-scoped rendezvous with leader-fence semantics: every
// rank contributes the virtual time its local work completes (e.g. a
// shared-memory staging deposit — pass 0 when there is none), and all ranks
// release together at the latest contribution-or-arrival plus one software
// overhead. It returns that common release time.
//
// Unlike Barrier, this is priced as a shared-memory flag rendezvous, not a
// tree collective: for communicators produced by SplitNode the members share
// a coherence domain, so charging ⌈log₂P⌉ rounds of fabric latency would
// overprice the synchronization ppn-fold. The intra-node staging leader
// fences on this before reading members' deposits.
func (c *Comm) FenceLocal(ready int64) int64 {
	res := c.collective("mpi:fence-local", ready, func(contribs []any, maxT int64) (any, int64) {
		hi := maxT
		for _, x := range contribs {
			if t := x.(int64); t > hi {
				hi = t
			}
		}
		hi += c.s.w.cfg.Overhead
		return hi, hi
	})
	return res.(int64)
}

// Bcast broadcasts root's payload to every rank and returns it.
func (c *Comm) Bcast(root int, bytes int64, payload any) any {
	var contrib any
	if c.rank == root {
		contrib = payload
	}
	return c.collective("mpi:bcast", contrib, func(contribs []any, maxT int64) (any, int64) {
		return contribs[root], c.treeCost(maxT, bytes)
	})
}

// Reduction operations.
type Op int

const (
	OpSum Op = iota
	OpMin
	OpMax
)

func applyOpF64(op Op, vals []float64) float64 {
	acc := vals[0]
	for _, v := range vals[1:] {
		switch op {
		case OpSum:
			acc += v
		case OpMin:
			if v < acc {
				acc = v
			}
		case OpMax:
			if v > acc {
				acc = v
			}
		}
	}
	return acc
}

// AllreduceF64 reduces one float64 per rank with op and returns the result
// on every rank.
func (c *Comm) AllreduceF64(op Op, v float64) float64 {
	res := c.collective("mpi:allreduce-f64", v, func(contribs []any, maxT int64) (any, int64) {
		vals := make([]float64, len(contribs))
		for i, x := range contribs {
			vals[i] = x.(float64)
		}
		return applyOpF64(op, vals), c.treeCost(maxT, 8)
	})
	return res.(float64)
}

// AllreduceI64 reduces one int64 per rank with op.
func (c *Comm) AllreduceI64(op Op, v int64) int64 {
	res := c.collective("mpi:allreduce-i64", v, func(contribs []any, maxT int64) (any, int64) {
		acc := contribs[0].(int64)
		for _, x := range contribs[1:] {
			v := x.(int64)
			switch op {
			case OpSum:
				acc += v
			case OpMin:
				if v < acc {
					acc = v
				}
			case OpMax:
				if v > acc {
					acc = v
				}
			}
		}
		return acc, c.treeCost(maxT, 8)
	})
	return res.(int64)
}

type minloc struct {
	val float64
	loc int
}

// AllreduceMinLoc returns the minimum value and the location (rank-supplied
// integer) that attains it — MPI_MINLOC, the primitive the paper's
// aggregator election uses. Ties resolve to the smallest location, making
// elections deterministic.
func (c *Comm) AllreduceMinLoc(v float64, loc int) (float64, int) {
	res := c.collective("mpi:allreduce-minloc", minloc{v, loc}, func(contribs []any, maxT int64) (any, int64) {
		best := contribs[0].(minloc)
		for _, x := range contribs[1:] {
			m := x.(minloc)
			if m.val < best.val || (m.val == best.val && m.loc < best.loc) {
				best = m
			}
		}
		return best, c.treeCost(maxT, 16)
	})
	m := res.(minloc)
	return m.val, m.loc
}

// AllreduceMaxLoc returns the maximum value and its location (MPI_MAXLOC).
func (c *Comm) AllreduceMaxLoc(v float64, loc int) (float64, int) {
	res := c.collective("mpi:allreduce-maxloc", minloc{v, loc}, func(contribs []any, maxT int64) (any, int64) {
		best := contribs[0].(minloc)
		for _, x := range contribs[1:] {
			m := x.(minloc)
			if m.val > best.val || (m.val == best.val && m.loc < best.loc) {
				best = m
			}
		}
		return best, c.treeCost(maxT, 16)
	})
	m := res.(minloc)
	return m.val, m.loc
}

// Allgather gathers bytes-sized payloads from every rank to every rank.
// The result is indexed by comm rank.
func (c *Comm) Allgather(bytes int64, payload any) []any {
	res := c.collective("mpi:allgather", payload, func(contribs []any, maxT int64) (any, int64) {
		out := make([]any, len(contribs))
		copy(out, contribs)
		total := int64(len(contribs)-1) * bytes
		inject := c.s.w.fabric.Config().InjectRate
		return out, maxT + logRounds(c.Size())*c.alpha() + sim.TransferTime(total, inject)
	})
	return res.([]any)
}

// AllgatherI64 gathers one int64 per rank.
func (c *Comm) AllgatherI64(v int64) []int64 {
	anyVals := c.Allgather(8, v)
	out := make([]int64, len(anyVals))
	for i, x := range anyVals {
		out[i] = x.(int64)
	}
	return out
}

// Gather collects payloads at root (result indexed by comm rank; nil on
// non-root ranks).
func (c *Comm) Gather(root int, bytes int64, payload any) []any {
	res := c.collective("mpi:gather", payload, func(contribs []any, maxT int64) (any, int64) {
		out := make([]any, len(contribs))
		copy(out, contribs)
		total := int64(len(contribs)-1) * bytes
		inject := c.s.w.fabric.Config().InjectRate
		return out, maxT + logRounds(c.Size())*c.alpha() + sim.TransferTime(total, inject)
	})
	if c.rank != root {
		return nil
	}
	return res.([]any)
}

// Scatter distributes root's per-rank payloads; every rank receives its
// element. payloads is only read on root.
func (c *Comm) Scatter(root int, bytes int64, payloads []any) any {
	var contrib any
	if c.rank == root {
		if len(payloads) != c.Size() {
			panic(fmt.Sprintf("mpi: Scatter with %d payloads for %d ranks", len(payloads), c.Size()))
		}
		contrib = payloads
	}
	res := c.collective("mpi:scatter", contrib, func(contribs []any, maxT int64) (any, int64) {
		total := int64(c.Size()-1) * bytes
		inject := c.s.w.fabric.Config().InjectRate
		return contribs[root], maxT + logRounds(c.Size())*c.alpha() + sim.TransferTime(total, inject)
	})
	return res.([]any)[c.rank]
}

// Alltoall exchanges bytes between every pair of ranks (cost only; payloads
// are not routed — use explicit Send/Recv when content matters).
func (c *Comm) Alltoall(bytesPerPair int64) {
	c.collective("mpi:alltoall", nil, func(_ []any, maxT int64) (any, int64) {
		total := int64(c.Size()-1) * bytesPerPair
		inject := c.s.w.fabric.Config().InjectRate
		return nil, maxT + int64(c.Size()-1)*c.s.w.cfg.Overhead + sim.TransferTime(total, inject)
	})
}

// splitEntry carries one rank's Split arguments.
type splitEntry struct {
	color, key, rank int
}

// Split partitions the communicator: ranks supplying the same color form a
// new communicator, ordered by (key, rank). A negative color opts out and
// returns nil. The paper's per-partition aggregator election runs on these
// sub-communicators.
func (c *Comm) Split(color, key int) *Comm {
	res := c.collective("mpi:split", splitEntry{color, key, c.rank}, func(contribs []any, maxT int64) (any, int64) {
		entries := make([]splitEntry, len(contribs))
		for i, x := range contribs {
			entries[i] = x.(splitEntry)
		}
		sort.Slice(entries, func(i, j int) bool {
			a, b := entries[i], entries[j]
			if a.color != b.color {
				return a.color < b.color
			}
			if a.key != b.key {
				return a.key < b.key
			}
			return a.rank < b.rank
		})
		handles := make([]*Comm, len(entries))
		i := 0
		for i < len(entries) {
			j := i
			for j < len(entries) && entries[j].color == entries[i].color {
				j++
			}
			if entries[i].color >= 0 {
				worldRanks := make([]int, 0, j-i)
				for _, e := range entries[i:j] {
					worldRanks = append(worldRanks, c.s.ranks[e.rank])
				}
				ns := c.s.w.newCommShared(worldRanks)
				for nr, e := range entries[i:j] {
					h := ns.handle(nr)
					handles[e.rank] = h
				}
			}
			i = j
		}
		return handles, c.treeCost(maxT, 8)
	})
	h := res.([]*Comm)[c.rank]
	if h != nil {
		h.p = c.p
	}
	return h
}

// Dup duplicates the communicator (a collective call).
func (c *Comm) Dup() *Comm {
	return c.Split(0, c.rank)
}

// SplitNode splits the communicator into node-scoped sub-communicators:
// ranks co-located on a node form one, ordered by their rank in c (so rank 0
// of each node communicator is the node's lowest member — the natural
// intra-node leader). MPI_Comm_split_type(COMM_TYPE_SHARED) semantics; the
// intra-node staging plane of two-level aggregation rides on these.
func (c *Comm) SplitNode() *Comm {
	return c.Split(c.Node(), c.rank)
}
