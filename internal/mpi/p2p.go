package mpi

import "fmt"

// Status describes a received message.
type Status struct {
	Source  int
	Tag     int
	Bytes   int64
	Payload any
}

// packKey encodes (source, tag) into a mailbox matching key.
func packKey(source, tag int) int64 {
	return int64(source)<<24 | int64(tag&0xFFFFFF)
}

func unpackKey(key int64) (source, tag int) {
	return int(key >> 24), int(key & 0xFFFFFF)
}

// Send transmits bytes (with an optional payload for correctness checks) to
// rank dst with the given tag. The call blocks until the send buffer is
// reusable (eager/injection completion), mirroring MPI_Send on a
// well-provisioned eager path; the message itself arrives later.
func (c *Comm) Send(dst, tag int, bytes int64, payload any) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d (size %d)", dst, c.Size()))
	}
	if tag < 0 || tag > 0xFFFFFF {
		panic(fmt.Sprintf("mpi: tag %d out of range", tag))
	}
	srcNode := c.Node()
	dstNode := c.NodeOfRank(dst)
	senderFree, arrival := c.s.w.fabric.Reserve(c.p.Now(), srcNode, dstNode, bytes)
	c.s.box(dst).Deliver(simMessage(arrival, packKey(c.rank, tag), bytes, payload))
	c.p.HoldUntil(senderFree)
}

// Recv blocks until a message matching (src, tag) arrives; wildcards
// AnySource / AnyTag match anything. Messages from the same source are
// non-overtaking, as MPI requires.
func (c *Comm) Recv(src, tag int) Status {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d (size %d)", src, c.Size()))
	}
	m := c.s.box(c.rank).Recv(c.p, func(m simMsg) bool {
		s, t := unpackKey(m.Key)
		if src != AnySource && s != src {
			return false
		}
		if tag != AnyTag && t != tag {
			return false
		}
		return true
	})
	s, t := unpackKey(m.Key)
	return Status{Source: s, Tag: t, Bytes: m.Bytes, Payload: m.Payload}
}

// SendRecv performs a blocking exchange: send to dst, receive from src.
// The send is initiated before the receive, which is deadlock-free here
// because sends complete locally (eager model).
func (c *Comm) SendRecv(dst, sendTag int, bytes int64, payload any, src, recvTag int) Status {
	c.Send(dst, sendTag, bytes, payload)
	return c.Recv(src, recvTag)
}
