package mpi

import "tapioca/internal/sim"

// Request is a handle on a non-blocking operation (MPI_Request).
type Request struct {
	c    *Comm
	done bool

	// send side
	sendFree int64

	// recv side
	recv    bool
	src     int
	tag     int
	status  Status
	matched bool
}

// Isend starts a non-blocking send. The returned request completes (buffer
// reusable) once the message is injected; the message itself is delivered
// regardless of when Wait is called.
func (c *Comm) Isend(dst, tag int, bytes int64, payload any) *Request {
	if dst < 0 || dst >= c.Size() {
		panic("mpi: Isend to invalid rank")
	}
	senderFree, arrival := c.s.w.fabric.Reserve(c.p.Now(), c.Node(), c.NodeOfRank(dst), bytes)
	c.s.box(dst).Deliver(simMessage(arrival, packKey(c.rank, tag), bytes, payload))
	return &Request{c: c, sendFree: senderFree}
}

// Irecv posts a non-blocking receive; the message is claimed at Wait time
// (our matching is performed lazily, which preserves MPI's non-overtaking
// guarantee because the mailbox is FIFO per source).
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{c: c, recv: true, src: src, tag: tag}
}

// Wait blocks until the operation completes and returns the receive status
// (zero Status for sends).
func (r *Request) Wait() Status {
	if r.done {
		return r.status
	}
	r.done = true
	if r.recv {
		r.status = r.c.Recv(r.src, r.tag)
		r.matched = true
		return r.status
	}
	r.c.p.HoldUntil(r.sendFree)
	return Status{}
}

// Test reports whether the operation could complete without blocking, and
// completes it if so. For receives this checks message availability.
func (r *Request) Test() (Status, bool) {
	if r.done {
		return r.status, true
	}
	if r.recv {
		if !r.c.hasMatch(r.src, r.tag) {
			return Status{}, false
		}
		return r.Wait(), true
	}
	if r.c.p.Now() >= r.sendFree {
		r.done = true
		return Status{}, true
	}
	return Status{}, false
}

// hasMatch reports whether a matching message is already queued.
func (c *Comm) hasMatch(src, tag int) bool {
	found := false
	c.s.box(c.rank).Peek(func(m sim.Message) bool {
		s, t := unpackKey(m.Key)
		if (src == AnySource || s == src) && (tag == AnyTag || t == tag) {
			found = true
		}
		return found
	})
	return found
}

// Waitall completes every request in order.
func Waitall(reqs []*Request) []Status {
	out := make([]Status, len(reqs))
	for i, r := range reqs {
		out[i] = r.Wait()
	}
	return out
}
