// Package mpi implements a simulated MPI runtime over the discrete-event
// engine in internal/sim.
//
// Each MPI rank is a sim proc with its own virtual clock. The package
// provides the subset of MPI-2/MPI-3 that two-phase I/O libraries consume:
//
//   - communicators with Dup and Split;
//   - blocking point-to-point with tag matching and wildcards, moving
//     virtual bytes through a netsim.Fabric (so congestion is real);
//   - collectives (Barrier, Bcast, Reduce, Allreduce with MINLOC/MAXLOC,
//     Gather/Allgather and the v variants, Alltoall) with LogP-style
//     analytic costs — collectives are the control plane, the measured data
//     plane always moves through the fabric;
//   - one-sided communication: windows with Put/Get/Accumulate and fence
//     epochs, the transport TAPIOCA uses for aggregation.
//
// Payloads are optional: small control values ride along for algorithmic
// correctness (e.g. election costs), while bulk data is virtual byte counts.
package mpi

import (
	"fmt"
	"math"

	"tapioca/internal/netsim"
	"tapioca/internal/obs"
	"tapioca/internal/sim"
	"tapioca/internal/topology"
)

// AnySource and AnyTag are wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Config describes a simulated MPI job.
type Config struct {
	// Ranks is the total number of MPI processes.
	Ranks int
	// RanksPerNode maps ranks to nodes block-wise (rank r → node
	// r/RanksPerNode) unless NodeOf is set. Default 1.
	RanksPerNode int
	// NodeOf overrides the rank→node mapping.
	NodeOf func(rank int) int
	// Fabric carries all point-to-point and one-sided traffic. Required.
	Fabric *netsim.Fabric
	// Engine to run on; one is created if nil.
	Engine *sim.Engine
	// Overhead is the per-call MPI software overhead in ns (default 1.2 µs).
	Overhead int64
	// CollectiveHops is the per-round hop estimate used by the analytic
	// collective cost model (default: topology-dependent).
	CollectiveHops int
	// Recorder is the optional flight recorder. When set it is attached to
	// the engine and fabric, and rank procs are assigned trace tracks
	// (pid = compute node, tid = world rank).
	Recorder *obs.Recorder
}

// World is the simulated MPI job: the scheduler-facing handle that owns all
// rank procs and communicator state.
type World struct {
	cfg    Config
	eng    *sim.Engine
	fabric *netsim.Fabric
	nodeOf []int
	nextID int
}

// Run spawns cfg.Ranks procs, each executing body with its own world
// communicator handle, and runs the simulation to completion. It returns
// the engine (for clock inspection) and any simulation error.
func Run(cfg Config, body func(*Comm)) (*sim.Engine, error) {
	w, world, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	// Rank procs all share the literal name "rank": diagnostics print the
	// proc id, which equals the world rank (spawn order), and per-rank
	// Sprintf names would cost an allocation per rank per job at scale.
	for r := 0; r < cfg.Ranks; r++ {
		c := world.handle(r)
		node := w.nodeOf[r]
		w.eng.Spawn("rank", func(p *sim.Proc) {
			c.p = p
			p.SetTraceID(int32(node), int32(c.WorldRank()))
			body(c)
		})
	}
	return w.eng, w.eng.Run()
}

// NewWorld builds the world and its communicator without spawning procs;
// callers that need custom per-rank bodies use this directly.
func NewWorld(cfg Config) (*World, *commShared, error) {
	if cfg.Ranks <= 0 {
		return nil, nil, fmt.Errorf("mpi: Ranks must be positive, got %d", cfg.Ranks)
	}
	if cfg.Fabric == nil {
		return nil, nil, fmt.Errorf("mpi: Fabric is required")
	}
	if cfg.RanksPerNode <= 0 {
		cfg.RanksPerNode = 1
	}
	if cfg.Overhead <= 0 {
		cfg.Overhead = 1200
	}
	if cfg.Engine == nil {
		cfg.Engine = sim.NewEngine()
	}
	if cfg.CollectiveHops <= 0 {
		cfg.CollectiveHops = defaultCollectiveHops(cfg.Fabric.Topology())
	}
	if cfg.Recorder != nil {
		cfg.Engine.SetRecorder(cfg.Recorder)
		cfg.Fabric.SetRecorder(cfg.Recorder)
	}
	w := &World{cfg: cfg, eng: cfg.Engine, fabric: cfg.Fabric}
	w.nodeOf = make([]int, cfg.Ranks)
	nodes := cfg.Fabric.Topology().Nodes()
	for r := range w.nodeOf {
		if cfg.NodeOf != nil {
			w.nodeOf[r] = cfg.NodeOf(r)
		} else {
			w.nodeOf[r] = r / cfg.RanksPerNode
		}
		if w.nodeOf[r] < 0 || w.nodeOf[r] >= nodes {
			return nil, nil, fmt.Errorf("mpi: rank %d mapped to node %d outside topology (%d nodes)", r, w.nodeOf[r], nodes)
		}
	}
	ranks := make([]int, cfg.Ranks)
	for i := range ranks {
		ranks[i] = i
	}
	return w, w.newCommShared(ranks), nil
}

// defaultCollectiveHops estimates the typical hop count of tree edges.
func defaultCollectiveHops(t topology.Topology) int {
	switch tt := t.(type) {
	case *topology.Torus5D:
		d := 0
		for _, s := range tt.Dims {
			d += s / 2
		}
		return maxInt(d/2, 1)
	case *topology.Dragonfly:
		return 5
	default:
		return 2
	}
}

// Engine returns the simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Fabric returns the interconnect fabric.
func (w *World) Fabric() *netsim.Fabric { return w.fabric }

// NodeOf returns the compute node hosting a world rank.
func (w *World) NodeOf(rank int) int { return w.nodeOf[rank] }

// commShared is the per-communicator state shared by all member handles.
type commShared struct {
	w        *World
	id       int
	ranks    []int          // comm rank → world rank
	boxes    []*sim.Mailbox // lazily created by box()
	boxName  string
	coll     *collState
	collFree *collState // recycled state for the next collective
	member   []*Comm    // comm rank → handle
}

func (w *World) newCommShared(worldRanks []int) *commShared {
	s := &commShared{w: w, id: w.nextID, ranks: worldRanks}
	w.nextID++
	s.boxes = make([]*sim.Mailbox, len(worldRanks))
	s.member = make([]*Comm, len(worldRanks))
	return s
}

// box returns comm rank r's point-to-point mailbox, created on first use —
// collective- and RMA-only workloads (the common case at scale) never pay
// for per-rank mailboxes. All boxes of a comm share one diagnostic name:
// a parked receiver's deadlock listing identifies the rank via its proc id.
func (s *commShared) box(r int) *sim.Mailbox {
	mb := s.boxes[r]
	if mb == nil {
		if s.boxName == "" {
			s.boxName = fmt.Sprintf("comm%d", s.id)
		}
		mb = sim.NewMailbox(s.boxName)
		s.boxes[r] = mb
	}
	return mb
}

// handle returns the Comm handle for comm rank r, creating it if needed.
func (s *commShared) handle(r int) *Comm {
	if s.member[r] == nil {
		s.member[r] = &Comm{s: s, rank: r}
	}
	return s.member[r]
}

// Comm is one rank's handle on a communicator. Handles are only valid inside
// the owning rank's proc.
type Comm struct {
	s    *commShared
	rank int
	p    *sim.Proc

	barrierFn func(contribs []any, maxT int64) (any, int64) // cached Barrier finish
}

// Rank returns the caller's rank in this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.s.ranks) }

// WorldRank returns the caller's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.s.ranks[c.rank] }

// WorldRankOf returns the world rank of another rank of this communicator.
func (c *Comm) WorldRankOf(r int) int { return c.s.ranks[r] }

// Node returns the compute node hosting the caller.
func (c *Comm) Node() int { return c.s.w.nodeOf[c.WorldRank()] }

// NodeOfRank returns the compute node hosting another rank of this comm.
func (c *Comm) NodeOfRank(r int) int { return c.s.w.nodeOf[c.s.ranks[r]] }

// Proc returns the caller's sim proc.
func (c *Comm) Proc() *sim.Proc { return c.p }

// World returns the owning world.
func (c *Comm) World() *World { return c.s.w }

// Now returns the caller's virtual time.
func (c *Comm) Now() int64 { return c.p.Now() }

// Compute advances the caller's clock by d nanoseconds of local work.
func (c *Comm) Compute(d int64) { c.p.Hold(d) }

// alpha is the per-round latency term of the analytic collective model.
func (c *Comm) alpha() int64 {
	w := c.s.w
	return w.cfg.Overhead + int64(w.cfg.CollectiveHops)*w.fabric.Config().PerHopLatency
}

// logRounds returns ⌈log₂ n⌉ (minimum 1).
func logRounds(n int) int64 {
	if n <= 1 {
		return 1
	}
	return int64(math.Ceil(math.Log2(float64(n))))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
