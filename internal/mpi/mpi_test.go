package mpi

import (
	"strings"
	"testing"

	"tapioca/internal/netsim"
	"tapioca/internal/sim"
	"tapioca/internal/topology"
)

// testConfig returns a small flat-topology MPI job config.
func testConfig(ranks, ranksPerNode int) Config {
	nodes := (ranks + ranksPerNode - 1) / ranksPerNode
	topo := topology.NewFlat(nodes)
	return Config{
		Ranks:        ranks,
		RanksPerNode: ranksPerNode,
		Fabric:       netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks}),
	}
}

func TestRunRankIdentity(t *testing.T) {
	const n = 8
	seen := make([]bool, n)
	_, err := Run(testConfig(n, 2), func(c *Comm) {
		if c.Size() != n {
			t.Errorf("size = %d", c.Size())
		}
		if c.WorldRank() != c.Rank() {
			t.Errorf("world rank %d != rank %d on world comm", c.WorldRank(), c.Rank())
		}
		if c.Node() != c.Rank()/2 {
			t.Errorf("rank %d on node %d, want %d", c.Rank(), c.Node(), c.Rank()/2)
		}
		seen[c.Rank()] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range seen {
		if !ok {
			t.Fatalf("rank %d did not run", r)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := NewWorld(Config{Ranks: 0}); err == nil {
		t.Error("expected error for zero ranks")
	}
	if _, _, err := NewWorld(Config{Ranks: 4}); err == nil {
		t.Error("expected error for missing fabric")
	}
	cfg := testConfig(4, 1)
	cfg.NodeOf = func(rank int) int { return 99 }
	if _, _, err := NewWorld(cfg); err == nil {
		t.Error("expected error for out-of-range node mapping")
	}
}

func TestSendRecvPayload(t *testing.T) {
	_, err := Run(testConfig(2, 1), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, 1024, "hello")
		} else {
			st := c.Recv(0, 5)
			if st.Payload.(string) != "hello" {
				t.Errorf("payload = %v", st.Payload)
			}
			if st.Source != 0 || st.Tag != 5 || st.Bytes != 1024 {
				t.Errorf("status = %+v", st)
			}
			if c.Now() == 0 {
				t.Error("recv completed with no elapsed virtual time")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcards(t *testing.T) {
	_, err := Run(testConfig(3, 1), func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(2, 1, 10, "from0")
		case 1:
			c.Send(2, 2, 10, "from1")
		case 2:
			a := c.Recv(AnySource, AnyTag)
			b := c.Recv(AnySource, AnyTag)
			got := map[string]bool{a.Payload.(string): true, b.Payload.(string): true}
			if !got["from0"] || !got["from1"] {
				t.Errorf("got %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingSameSource(t *testing.T) {
	_, err := Run(testConfig(2, 1), func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				c.Send(1, 9, 100, i)
			}
		} else {
			for i := 0; i < 5; i++ {
				st := c.Recv(0, 9)
				if st.Payload.(int) != i {
					t.Errorf("message %d overtaken: got %v", i, st.Payload)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvByTag(t *testing.T) {
	_, err := Run(testConfig(2, 1), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, 10, "tag1")
			c.Send(1, 2, 10, "tag2")
		} else {
			st := c.Recv(0, 2) // out of order by tag
			if st.Payload.(string) != "tag2" {
				t.Errorf("got %v", st.Payload)
			}
			st = c.Recv(0, 1)
			if st.Payload.(string) != "tag1" {
				t.Errorf("got %v", st.Payload)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendToInvalidRankPanics(t *testing.T) {
	_, err := Run(testConfig(2, 1), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(7, 0, 1, nil)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Fatalf("err = %v", err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 6
	var releases []int64
	_, err := Run(testConfig(n, 1), func(c *Comm) {
		c.Compute(int64(c.Rank()) * 1000)
		c.Barrier()
		releases = append(releases, c.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range releases[1:] {
		if r != releases[0] {
			t.Fatalf("ranks released at different times: %v", releases)
		}
	}
	if releases[0] < int64(n-1)*1000 {
		t.Fatalf("release %d before last arrival", releases[0])
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(testConfig(5, 1), func(c *Comm) {
		var payload any
		if c.Rank() == 2 {
			payload = []int{1, 2, 3}
		}
		got := c.Bcast(2, 100, payload)
		v := got.([]int)
		if len(v) != 3 || v[0] != 1 {
			t.Errorf("rank %d got %v", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceOps(t *testing.T) {
	_, err := Run(testConfig(4, 1), func(c *Comm) {
		v := float64(c.Rank() + 1)
		if got := c.AllreduceF64(OpSum, v); got != 10 {
			t.Errorf("sum = %v", got)
		}
		if got := c.AllreduceF64(OpMin, v); got != 1 {
			t.Errorf("min = %v", got)
		}
		if got := c.AllreduceF64(OpMax, v); got != 4 {
			t.Errorf("max = %v", got)
		}
		if got := c.AllreduceI64(OpSum, int64(c.Rank())); got != 6 {
			t.Errorf("isum = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMinLoc(t *testing.T) {
	_, err := Run(testConfig(5, 1), func(c *Comm) {
		costs := []float64{5, 3, 9, 3, 7} // tie between ranks 1 and 3
		v, loc := c.AllreduceMinLoc(costs[c.Rank()], c.Rank())
		if v != 3 || loc != 1 {
			t.Errorf("minloc = (%v, %d), want (3, 1)", v, loc)
		}
		vm, lm := c.AllreduceMaxLoc(costs[c.Rank()], c.Rank())
		if vm != 9 || lm != 2 {
			t.Errorf("maxloc = (%v, %d), want (9, 2)", vm, lm)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	_, err := Run(testConfig(4, 2), func(c *Comm) {
		vals := c.AllgatherI64(int64(c.Rank() * 10))
		for i, v := range vals {
			if v != int64(i*10) {
				t.Errorf("vals[%d] = %d", i, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherOnlyRootGets(t *testing.T) {
	_, err := Run(testConfig(4, 1), func(c *Comm) {
		res := c.Gather(1, 8, c.Rank()*2)
		if c.Rank() == 1 {
			if len(res) != 4 || res[3].(int) != 6 {
				t.Errorf("root got %v", res)
			}
		} else if res != nil {
			t.Errorf("non-root rank %d got %v", c.Rank(), res)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	_, err := Run(testConfig(4, 1), func(c *Comm) {
		var payloads []any
		if c.Rank() == 0 {
			payloads = []any{"a", "b", "c", "d"}
		}
		got := c.Scatter(0, 4, payloads)
		want := string(rune('a' + c.Rank()))
		if got.(string) != want {
			t.Errorf("rank %d got %v, want %v", c.Rank(), got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedCollectivesPanic(t *testing.T) {
	_, err := Run(testConfig(2, 1), func(c *Comm) {
		if c.Rank() == 0 {
			c.Barrier()
		} else {
			c.AllreduceF64(OpSum, 1)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "mismatched collectives") {
		t.Fatalf("err = %v", err)
	}
}

func TestSplitByParity(t *testing.T) {
	const n = 8
	_, err := Run(testConfig(n, 1), func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub.Size() != n/2 {
			t.Errorf("sub size = %d", sub.Size())
		}
		if sub.WorldRank() != c.Rank() {
			t.Errorf("world rank mangled: %d vs %d", sub.WorldRank(), c.Rank())
		}
		if want := c.Rank() / 2; sub.Rank() != want {
			t.Errorf("sub rank = %d, want %d", sub.Rank(), want)
		}
		// The subcommunicator must work for collectives.
		sum := sub.AllreduceI64(OpSum, int64(c.Rank()))
		want := int64(0 + 2 + 4 + 6)
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if sum != want {
			t.Errorf("sub allreduce = %d, want %d", sum, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitNegativeColorOptsOut(t *testing.T) {
	_, err := Run(testConfig(4, 1), func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("rank 3 should have no subcomm")
			}
			return
		}
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
		sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	const n = 4
	_, err := Run(testConfig(n, 1), func(c *Comm) {
		// Reverse order via key.
		sub := c.Split(0, n-c.Rank())
		if want := n - 1 - c.Rank(); sub.Rank() != want {
			t.Errorf("rank %d got sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDup(t *testing.T) {
	_, err := Run(testConfig(4, 1), func(c *Comm) {
		d := c.Dup()
		if d.Rank() != c.Rank() || d.Size() != c.Size() {
			t.Errorf("dup mismatch: %d/%d vs %d/%d", d.Rank(), d.Size(), c.Rank(), c.Size())
		}
		// P2P on the dup must not interfere with the parent comm.
		if c.Rank() == 0 {
			d.Send(1, 3, 8, "dup")
			c.Send(1, 3, 8, "parent")
		} else if c.Rank() == 1 {
			st := c.Recv(0, 3)
			if st.Payload.(string) != "parent" {
				t.Errorf("parent comm got %v", st.Payload)
			}
			st = d.Recv(0, 3)
			if st.Payload.(string) != "dup" {
				t.Errorf("dup comm got %v", st.Payload)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveTimeAdvances(t *testing.T) {
	_, err := Run(testConfig(16, 4), func(c *Comm) {
		before := c.Now()
		c.Barrier()
		if c.Now() <= before {
			t.Error("barrier consumed no virtual time")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() int64 {
		eng, err := Run(testConfig(12, 3), func(c *Comm) {
			c.Compute(int64(c.Rank()%3) * 500)
			vals := c.AllgatherI64(int64(c.Rank()))
			_ = vals
			if c.Rank() > 0 {
				c.Send(c.Rank()-1, 0, 4096, nil)
			}
			if c.Rank() < c.Size()-1 {
				c.Recv(c.Rank()+1, 0)
			}
			c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	t1, t2 := run(), run()
	if t1 != t2 {
		t.Fatalf("non-deterministic end time: %d vs %d", t1, t2)
	}
	if t1 == 0 {
		t.Fatal("simulation consumed no time")
	}
}

func TestWinPutFence(t *testing.T) {
	_, err := Run(testConfig(4, 1), func(c *Comm) {
		w := c.WinCreate(1 << 20)
		w.SetCapture(true)
		if c.Rank() != 0 {
			off := int64(c.Rank()-1) * 1000
			w.Put(0, off, 1000, c.Rank())
		}
		w.Fence()
		if c.Rank() == 0 {
			if got := w.LastEpochFill(0); got != 3000 {
				t.Errorf("fill = %d, want 3000", got)
			}
			spans := w.CapturedWrites(0)
			if len(spans) != 3 {
				t.Fatalf("captured %d spans", len(spans))
			}
			for i, s := range spans {
				if s.Offset != int64(i)*1000 || s.Bytes != 1000 || s.From != i+1 {
					t.Errorf("span %d = %+v", i, s)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFenceWaitsForPutArrival(t *testing.T) {
	// A fence must release no earlier than the arrival of the largest put.
	const bytes = 50_000_000 // 50 MB over 1 GB/s links: 50 ms
	_, err := Run(testConfig(2, 1), func(c *Comm) {
		w := c.WinCreate(bytes)
		if c.Rank() == 1 {
			w.Put(0, 0, bytes, nil)
		}
		release := w.Fence()
		if release < sim.TransferTime(bytes, 1e9) {
			t.Errorf("fence released at %d, before put arrival", release)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutIsAsyncForSender(t *testing.T) {
	const bytes = 100_000_000
	_, err := Run(testConfig(2, 1), func(c *Comm) {
		w := c.WinCreate(bytes)
		if c.Rank() == 1 {
			before := c.Now()
			w.Put(0, 0, bytes, nil)
			// Sender blocks for injection (bytes/1GB/s) but not for the
			// network latency; mostly we check it doesn't block forever.
			if c.Now() < before {
				t.Error("clock went backwards")
			}
		}
		w.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutOutOfWindowPanics(t *testing.T) {
	_, err := Run(testConfig(2, 1), func(c *Comm) {
		w := c.WinCreate(100)
		if c.Rank() == 1 {
			w.Put(0, 50, 100, nil)
		}
		w.Fence()
	})
	if err == nil || !strings.Contains(err.Error(), "outside window") {
		t.Fatalf("err = %v", err)
	}
}

func TestGetThenFence(t *testing.T) {
	_, err := Run(testConfig(2, 1), func(c *Comm) {
		w := c.WinCreate(4096)
		if c.Rank() == 0 {
			w.Get(1, 0, 4096)
		}
		rel := w.Fence()
		if rel <= 0 {
			t.Errorf("fence release = %d", rel)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultipleEpochs(t *testing.T) {
	const rounds = 4
	_, err := Run(testConfig(3, 1), func(c *Comm) {
		w := c.WinCreate(1 << 16)
		for r := 0; r < rounds; r++ {
			if c.Rank() != 0 {
				w.Put(0, 0, 1<<10, nil)
			}
			w.Fence()
			if c.Rank() == 0 {
				if got := w.LastEpochFill(0); got != 2<<10 {
					t.Errorf("round %d fill = %d", r, got)
				}
				if w.EpochFill(0) != 0 {
					t.Error("current epoch fill not reset")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRanksOnTorusNodes(t *testing.T) {
	topo := topology.MiraTorus(128)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
	cfg := Config{Ranks: 256, RanksPerNode: 2, Fabric: fab}
	_, err := Run(cfg, func(c *Comm) {
		if c.Node() != c.Rank()/2 {
			t.Errorf("rank %d node %d", c.Rank(), c.Node())
		}
		// Neighbor exchange across the whole torus.
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		c.Send(next, 0, 1024, nil)
		c.Recv(prev, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}
