package mpi

import (
	"fmt"
	"sort"
)

// Win is one rank's handle on an RMA window: a per-rank exposed buffer that
// other ranks of the communicator target with one-sided Put/Get. Epochs are
// delimited by Fence calls, as in MPI_Win_fence active-target
// synchronization — the paper's Algorithm 3 rides exactly on this.
type Win struct {
	s *winShared
	c *Comm

	fenceFn func(contribs []any, maxT int64) (any, int64) // cached Fence finish
}

type winShared struct {
	comm    *commShared
	size    int64 // bytes exposed per rank
	capture bool

	epochArrival int64 // completion horizon of the current epoch's ops
	epochOps     int
	epochBytes   int64

	fill     []int64     // bytes put into each rank's window this epoch
	lastFill []int64     // fill of the epoch closed by the last Fence
	writes   [][]WinSpan // per target, captured spans (when capture enabled)

	// mem holds each rank's real window memory, allocated lazily on the
	// first payload-carrying access (the data plane). Phantom sessions —
	// every paper-scale figure — never allocate a byte here.
	mem [][]byte
}

// memOf returns (allocating on first use) rank r's real window memory.
func (s *winShared) memOf(r int) []byte {
	if s.mem[r] == nil {
		s.mem[r] = make([]byte, s.size)
	}
	return s.mem[r]
}

// WinSpan records one captured one-sided access for verification.
type WinSpan struct {
	Offset, Bytes int64
	From          int // origin comm rank
	Payload       any
}

// WinCreate exposes size bytes on every rank of the communicator and returns
// the local window handle. Collective.
func (c *Comm) WinCreate(size int64) *Win {
	res := c.collective("mpi:win-create", nil, func(_ []any, maxT int64) (any, int64) {
		s := &winShared{
			comm:     c.s,
			size:     size,
			fill:     make([]int64, c.Size()),
			lastFill: make([]int64, c.Size()),
			writes:   make([][]WinSpan, c.Size()),
			mem:      make([][]byte, c.Size()),
		}
		return s, c.treeCost(maxT, 0)
	})
	return &Win{s: res.(*winShared), c: c}
}

// SetCapture enables span capture for verification in tests. Call before
// the first epoch; the setting is window-global.
func (w *Win) SetCapture(on bool) { w.s.capture = on }

// Size returns the per-rank exposed size.
func (w *Win) Size() int64 { return w.s.size }

// Put transfers bytes from the caller into target's window at offset.
// The call blocks only for local injection (the origin buffer is reusable);
// remote completion is deferred to the next Fence — MPI_Put semantics.
func (w *Win) Put(target int, offset, bytes int64, payload any) {
	c := w.c
	senderFree := w.PutAsync(target, offset, bytes, payload)
	c.p.HoldUntil(senderFree)
}

// PutAsync is Put without the local-injection block: the transfer is booked
// at the caller's current time and the sender-free instant is returned
// instead of held for. The caller must either HoldUntil the returned time
// before its next booking, or hand it to FenceAfter when the put is the
// round's last — the Algorithm 3 pattern, which saves one context switch
// per rank per round.
func (w *Win) PutAsync(target int, offset, bytes int64, payload any) (senderFree int64) {
	senderFree = w.bookPut(target, offset, bytes)
	if b, ok := payload.([]byte); ok && len(b) > 0 {
		// Data plane: the put carries real bytes into the target's window
		// memory. The copy happens at issue time (the origin buffer is
		// reusable immediately, MPI_Put semantics), and the fence's
		// happens-before edge publishes it to the target.
		copy(w.s.memOf(target)[offset:], b)
		if w.s.capture {
			payload = append([]byte(nil), b...) // capture a stable snapshot
		}
	}
	if w.s.capture {
		w.s.writes[target] = append(w.s.writes[target], WinSpan{Offset: offset, Bytes: bytes, From: w.c.rank, Payload: payload})
	}
	return senderFree
}

// bookPut performs a one-sided put's fabric reservation and epoch
// bookkeeping (shared by PutAsync and PutGather); it moves no bytes.
func (w *Win) bookPut(target int, offset, bytes int64) (senderFree int64) {
	c := w.c
	if target < 0 || target >= c.Size() {
		panic(fmt.Sprintf("mpi: Put to invalid rank %d", target))
	}
	if offset < 0 || offset+bytes > w.s.size {
		panic(fmt.Sprintf("mpi: Put [%d,%d) outside window of %d bytes", offset, offset+bytes, w.s.size))
	}
	senderFree, arrival := c.s.w.fabric.Reserve(c.p.Now(), c.Node(), c.NodeOfRank(target), bytes)
	c.p.TraceSpan("rma", "put", c.p.Now(), senderFree, bytes)
	if arrival > w.s.epochArrival {
		w.s.epochArrival = arrival
	}
	w.s.epochOps++
	w.s.epochBytes += bytes
	w.s.fill[target] += bytes
	return senderFree
}

// PutGather is PutAsync with a zero-copy payload: instead of receiving a
// pre-gathered buffer (which PutAsync must copy into window memory — two
// copies per payload byte), the caller's fill function writes the payload
// directly into the target's exposed window slice [offset, offset+bytes).
// Timing, epoch bookkeeping and MPI_Put semantics are identical to PutAsync
// over the same byte count; fill runs at issue time, so — as with PutAsync's
// issue-time copy — the fence's happens-before edge publishes the bytes to
// the target.
func (w *Win) PutGather(target int, offset, bytes int64, fill func(dst []byte)) (senderFree int64) {
	senderFree = w.bookPut(target, offset, bytes)
	if bytes > 0 && fill != nil {
		dst := w.s.memOf(target)[offset : offset+bytes]
		fill(dst)
		if w.s.capture {
			w.s.writes[target] = append(w.s.writes[target],
				WinSpan{Offset: offset, Bytes: bytes, From: w.c.rank, Payload: append([]byte(nil), dst...)})
		}
		return senderFree
	}
	if w.s.capture {
		w.s.writes[target] = append(w.s.writes[target], WinSpan{Offset: offset, Bytes: bytes, From: w.c.rank})
	}
	return senderFree
}

// StagePut deposits bytes into a co-located leader's window memory at
// [offset, offset+bytes) — the member-to-leader hop of intra-node
// pre-aggregation. It is priced as a shared-memory copy (Fabric.ReserveLocal
// at memory bandwidth: zero hops, no fabric links, no NIC), and it is not an
// epoch operation: the leader's coalesced PutGather is what enters the
// window epoch and carries the staged bytes to the aggregator. The caller
// must synchronize with the leader (a node-communicator barrier) before the
// leader reads the staged region; like PutGather, fill runs at issue time so
// that synchronization point is the happens-before edge.
func (w *Win) StagePut(leader int, offset, bytes int64, fill func(dst []byte)) (senderFree, arrival int64) {
	c := w.c
	if leader < 0 || leader >= c.Size() {
		panic(fmt.Sprintf("mpi: StagePut to invalid rank %d", leader))
	}
	if c.NodeOfRank(leader) != c.Node() {
		panic(fmt.Sprintf("mpi: StagePut to rank %d on node %d from node %d — leader must be co-located",
			leader, c.NodeOfRank(leader), c.Node()))
	}
	if offset < 0 || offset+bytes > w.s.size {
		panic(fmt.Sprintf("mpi: StagePut [%d,%d) outside window of %d bytes", offset, offset+bytes, w.s.size))
	}
	senderFree, arrival = c.s.w.fabric.ReserveLocal(c.p.Now(), c.Node(), bytes)
	c.p.TraceSpan("rma", "stage", c.p.Now(), senderFree, bytes)
	if bytes > 0 && fill != nil {
		dst := w.s.memOf(leader)[offset : offset+bytes]
		fill(dst)
		if w.s.capture {
			w.s.writes[leader] = append(w.s.writes[leader],
				WinSpan{Offset: offset, Bytes: bytes, From: w.c.rank, Payload: append([]byte(nil), dst...)})
		}
		return senderFree, arrival
	}
	if w.s.capture {
		w.s.writes[leader] = append(w.s.writes[leader], WinSpan{Offset: offset, Bytes: bytes, From: w.c.rank})
	}
	return senderFree, arrival
}

// Get transfers bytes from target's window at offset to the caller. The data
// is usable only after the next Fence (active-target semantics), so Get
// blocks just for issuing overhead.
func (w *Win) Get(target int, offset, bytes int64) {
	c := w.c
	if target < 0 || target >= c.Size() {
		panic(fmt.Sprintf("mpi: Get from invalid rank %d", target))
	}
	if offset < 0 || offset+bytes > w.s.size {
		panic(fmt.Sprintf("mpi: Get [%d,%d) outside window of %d bytes", offset, offset+bytes, w.s.size))
	}
	_, arrival := c.s.w.fabric.Reserve(c.p.Now(), c.NodeOfRank(target), c.Node(), bytes)
	c.p.TraceSpan("rma", "get", c.p.Now(), arrival, bytes)
	if arrival > w.s.epochArrival {
		w.s.epochArrival = arrival
	}
	w.s.epochOps++
	w.s.epochBytes += bytes
	c.p.Hold(c.s.w.cfg.Overhead)
}

// GetInto is Get with a real destination: the target's window bytes at
// [offset, offset+len(dst)) are copied into dst (the data plane). Timing is
// identical to Get over len(dst) bytes; as with Get, the data is only
// guaranteed published once the preceding Fence closed the exposing epoch —
// callers issue GetInto after the fence that published the buffer, so the
// copy at issue time observes the exposed bytes.
func (w *Win) GetInto(target int, offset int64, dst []byte) {
	w.Get(target, offset, int64(len(dst)))
	copy(dst, w.s.memOf(target)[offset:])
}

// GetScatter is GetInto with a zero-copy destination: instead of copying the
// target's window bytes into an intermediate buffer for the caller to
// scatter, the scatter function receives the window slice [offset,
// offset+bytes) directly and distributes it into the final payload buffers.
// Timing matches Get over the same byte count; the same publication contract
// as GetInto applies (issue after the fence that exposed the buffer).
func (w *Win) GetScatter(target int, offset, bytes int64, scatter func(src []byte)) {
	w.Get(target, offset, bytes)
	if bytes > 0 && scatter != nil {
		scatter(w.s.memOf(target)[offset : offset+bytes])
	}
}

// LocalData returns (allocating on first use) the caller's own exposed
// window memory — what an aggregator's flush reads after a fence, and what
// its read-path prefetch fills before one.
func (w *Win) LocalData() []byte { return w.s.memOf(w.c.rank) }

// Fence closes the current epoch: a collective that releases every rank once
// all one-sided operations of the epoch have completed (the paper's
// Algorithm 3 uses this as the round barrier). It returns the release time.
// The finish closure is cached on the handle — fences run once per round
// per rank, and a fresh closure per call is a heap allocation on that hot
// path.
func (w *Win) Fence() int64 {
	if w.fenceFn == nil {
		w.fenceFn = func(_ []any, maxT int64) (any, int64) {
			release := w.c.treeCost(maxT, 0)
			if w.s.epochArrival > release {
				release = w.s.epochArrival
			}
			w.s.epochArrival = 0
			w.s.epochOps = 0
			w.s.epochBytes = 0
			copy(w.s.lastFill, w.s.fill)
			for i := range w.s.fill {
				w.s.fill[i] = 0
			}
			return release, release
		}
	}
	res := w.c.collective("mpi:win-fence", nil, w.fenceFn)
	return res.(int64)
}

// FenceAfter is Fence entered at virtual time senderFree — the deferred
// completion of the round's last PutAsync. The clock jumps without an extra
// scheduling point; the fence's collective park supplies the ordered yield
// (sim.Proc.JumpTo's contract: the fence entry bookkeeping is commutative
// and books nothing).
func (w *Win) FenceAfter(senderFree int64) int64 {
	w.c.p.JumpTo(senderFree)
	return w.Fence()
}

// EpochFill returns the bytes put into rank r's window during the current
// epoch (diagnostic; TAPIOCA asserts buffers are exactly filled).
func (w *Win) EpochFill(r int) int64 { return w.s.fill[r] }

// LastEpochFill returns the bytes that had been put into rank r's window in
// the epoch closed by the most recent Fence — what an aggregator is about to
// flush.
func (w *Win) LastEpochFill(r int) int64 { return w.s.lastFill[r] }

// CapturedWrites returns the captured spans targeting rank r, sorted by
// offset. Only meaningful with SetCapture(true); spans accumulate across
// epochs.
func (w *Win) CapturedWrites(r int) []WinSpan {
	spans := append([]WinSpan(nil), w.s.writes[r]...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Offset < spans[j].Offset })
	return spans
}
