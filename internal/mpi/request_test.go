package mpi

import "testing"

func TestIsendIrecvWaitall(t *testing.T) {
	_, err := Run(testConfig(4, 1), func(c *Comm) {
		// Everyone exchanges with everyone (small alltoall by hand).
		var reqs []*Request
		for dst := 0; dst < c.Size(); dst++ {
			if dst != c.Rank() {
				reqs = append(reqs, c.Isend(dst, 7, 1024, c.Rank()))
			}
		}
		for src := 0; src < c.Size(); src++ {
			if src != c.Rank() {
				reqs = append(reqs, c.Irecv(src, 7))
			}
		}
		sts := Waitall(reqs)
		got := map[int]bool{}
		for _, st := range sts[c.Size()-1:] {
			got[st.Payload.(int)] = true
		}
		for src := 0; src < c.Size(); src++ {
			if src != c.Rank() && !got[src] {
				t.Errorf("rank %d missing message from %d", c.Rank(), src)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestTest(t *testing.T) {
	_, err := Run(testConfig(2, 1), func(c *Comm) {
		if c.Rank() == 0 {
			r := c.Irecv(1, 3)
			if _, ok := r.Test(); ok {
				t.Error("Test succeeded before any send")
			}
			c.Barrier() // let rank 1 send
			c.Compute(1e9)
			st, ok := r.Test()
			if !ok {
				t.Fatal("Test failed after send + delay")
			}
			if st.Payload.(string) != "hi" {
				t.Errorf("payload = %v", st.Payload)
			}
			if _, ok := r.Test(); !ok {
				t.Error("completed request must keep testing true")
			}
		} else {
			c.Isend(0, 3, 64, "hi").Wait()
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvNonOvertaking(t *testing.T) {
	_, err := Run(testConfig(2, 1), func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 4; i++ {
				c.Isend(1, 9, 128, i)
			}
			c.Barrier()
		} else {
			r1 := c.Irecv(0, 9)
			r2 := c.Irecv(0, 9)
			c.Barrier()
			// Waits in posting order must preserve send order.
			if v := r1.Wait().Payload.(int); v != 0 {
				t.Errorf("first = %d", v)
			}
			if v := r2.Wait().Payload.(int); v != 1 {
				t.Errorf("second = %d", v)
			}
			c.Recv(0, 9)
			c.Recv(0, 9)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
