package topology

import (
	"sync"
	"testing"
)

func TestDistanceCacheMatchesTopology(t *testing.T) {
	for _, topo := range []Topology{
		NewFlat(16),
		MiraTorus(128),
		ThetaDragonfly(64, RouteMinimal),
	} {
		c := NewDistanceCache(topo)
		n := topo.Nodes()
		for a := 0; a < n; a += 3 {
			for b := 0; b < n; b++ {
				if got, want := c.Distance(a, b), topo.Distance(a, b); got != want {
					t.Fatalf("%s: cached d(%d,%d) = %d, want %d", topo.Name(), a, b, got, want)
				}
			}
		}
	}
}

func TestDistanceCacheDirectional(t *testing.T) {
	// Dragonfly gateway selection hashes the ordered pair, so the cache must
	// not assume symmetry. Verify both directions independently.
	topo := ThetaDragonfly(256, RouteMinimal)
	c := NewDistanceCache(topo)
	for a := 0; a < 64; a += 7 {
		for b := 100; b < 164; b += 7 {
			if c.Distance(a, b) != topo.Distance(a, b) || c.Distance(b, a) != topo.Distance(b, a) {
				t.Fatalf("directional mismatch at (%d,%d)", a, b)
			}
		}
	}
}

func TestDistanceCacheRowsLazy(t *testing.T) {
	topo := MiraTorus(256)
	c := NewDistanceCache(topo)
	if c.Rows() != 0 {
		t.Fatalf("fresh cache has %d rows", c.Rows())
	}
	c.Distance(5, 9)
	c.Distance(5, 200) // same row
	c.Distance(7, 0)
	if c.Rows() != 2 {
		t.Fatalf("rows = %d, want 2 (lazy per-source materialization)", c.Rows())
	}
}

func TestDistanceCacheConcurrent(t *testing.T) {
	// The cache is shared by every simulated rank; hammer it from real
	// goroutines so the race detector can vet the row publication.
	topo := MiraTorus(128)
	c := NewDistanceCache(topo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for a := 0; a < 128; a++ {
				for b := g; b < 128; b += 8 {
					if c.Distance(a, b) != topo.Distance(a, b) {
						t.Errorf("g%d: d(%d,%d) wrong", g, a, b)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
