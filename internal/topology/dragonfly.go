package topology

import "fmt"

// Routing modes for the dragonfly.
const (
	// RouteMinimal is direct minimal routing (the IN_ORDER setting from the
	// paper's Theta tuning: best for large aligned I/O flows).
	RouteMinimal = iota
	// RouteValiant bounces traffic through a pseudo-randomly chosen
	// intermediate group, modeling the default adaptive routing: it spreads
	// load but lengthens paths, which hurts bulk-synchronous I/O traffic.
	RouteValiant
)

// Dragonfly models the Cray XC40 Aries network (Theta). Routers form groups
// of Rows×Cols (6×16 = 96 on Theta) with an all-to-all electrical link in
// each row and each column; groups are connected pairwise by parallel
// optical links; NodesPerRouter compute nodes (4 KNL on Theta) hang off each
// router.
//
// The node id space is [0, ComputeNodes) for compute nodes followed by
// ServiceNodes LNET-style service nodes, spread round-robin over routers of
// all groups. Applications never run on service nodes; the Lustre model uses
// them as gateways to the storage fabric. The platform does not expose
// I/O-node locality to applications (IONodeOf returns IONUnknown), matching
// the paper's observation that C2 must be dropped on Theta.
type Dragonfly struct {
	Groups         int
	Rows, Cols     int
	NodesPerRouter int
	ServiceNodes   int

	HostLinkBW      float64 // node↔router, bytes/sec
	ElectricalBW    float64 // intra-group, bytes/sec (14 GB/s on Theta)
	OpticalBW       float64 // inter-group, bytes/sec (12.5 GB/s on Theta)
	GatewaysPerPair int     // parallel optical connections per group pair
	HopLatency      int64   // ns per hop
	Routing         int     // RouteMinimal or RouteValiant

	compute   int
	total     int // compute + service nodes
	routers   int
	linkIdx   map[int64]int
	linkRate  []float64
	linkLevel []int
	svcRouter []int // router hosting service node i
}

// DragonflyConfig carries the tunable construction parameters of a
// Dragonfly; zero fields take Theta-like defaults.
type DragonflyConfig struct {
	Groups         int
	Rows, Cols     int
	NodesPerRouter int
	ServiceNodes   int
	Routing        int
}

// NewDragonfly builds a dragonfly with Theta-like defaults: 6×16 routers per
// group, 4 nodes per router, 14 GB/s electrical, 12.5 GB/s optical,
// 2 gateways per group pair, minimal routing.
func NewDragonfly(cfg DragonflyConfig) *Dragonfly {
	d := &Dragonfly{
		Groups:          max(cfg.Groups, 1),
		Rows:            6,
		Cols:            16,
		NodesPerRouter:  4,
		ServiceNodes:    cfg.ServiceNodes,
		HostLinkBW:      10e9,
		ElectricalBW:    14e9,
		OpticalBW:       12.5e9,
		GatewaysPerPair: 2,
		HopLatency:      850,
		Routing:         cfg.Routing,
	}
	if cfg.Rows > 0 {
		d.Rows = cfg.Rows
	}
	if cfg.Cols > 0 {
		d.Cols = cfg.Cols
	}
	if cfg.NodesPerRouter > 0 {
		d.NodesPerRouter = cfg.NodesPerRouter
	}
	d.init()
	return d
}

// DragonflyForNodes returns a dragonfly with enough Theta-like groups to
// host at least n compute nodes, plus svc service nodes.
func DragonflyForNodes(n, svc, routing int) *Dragonfly {
	perGroup := 6 * 16 * 4
	groups := (n + perGroup - 1) / perGroup
	if groups < 1 {
		groups = 1
	}
	return NewDragonfly(DragonflyConfig{Groups: groups, ServiceNodes: svc, Routing: routing})
}

func (d *Dragonfly) init() {
	d.routers = d.Groups * d.Rows * d.Cols
	d.compute = d.routers * d.NodesPerRouter
	d.total = d.compute + d.ServiceNodes
	d.linkIdx = make(map[int64]int)
	d.svcRouter = make([]int, d.ServiceNodes)
	// Spread service nodes over routers with a stride that walks groups.
	for i := 0; i < d.ServiceNodes; i++ {
		g := i % d.Groups
		local := (i*7 + 3) % (d.Rows * d.Cols)
		d.svcRouter[i] = g*d.Rows*d.Cols + local
	}

	// Entity id space for link endpoints: nodes then routers.
	addLink := func(from, to int, rate float64, level int) {
		key := int64(from)*int64(d.total+d.routers) + int64(to)
		if _, dup := d.linkIdx[key]; dup {
			return
		}
		d.linkIdx[key] = len(d.linkRate)
		d.linkRate = append(d.linkRate, rate)
		d.linkLevel = append(d.linkLevel, level)
	}

	// Host links (node ↔ router), both directions.
	for node := 0; node < d.total; node++ {
		r := d.routerEntity(d.RouterOf(node))
		addLink(node, r, d.HostLinkBW, LevelInjection)
		addLink(r, node, d.HostLinkBW, LevelInjection)
	}
	// Electrical links: all-to-all within each row and each column.
	for r := 0; r < d.routers; r++ {
		g, row, col := d.routerCoord(r)
		for c2 := 0; c2 < d.Cols; c2++ {
			if c2 != col {
				addLink(d.routerEntity(r), d.routerEntity(d.routerAt(g, row, c2)), d.ElectricalBW, LevelFabric)
			}
		}
		for r2 := 0; r2 < d.Rows; r2++ {
			if r2 != row {
				addLink(d.routerEntity(r), d.routerEntity(d.routerAt(g, r2, col)), d.ElectricalBW, LevelFabric)
			}
		}
	}
	// Optical links between every group pair, GatewaysPerPair parallel
	// connections anchored at deterministic gateway routers.
	for g1 := 0; g1 < d.Groups; g1++ {
		for g2 := g1 + 1; g2 < d.Groups; g2++ {
			for k := 0; k < d.GatewaysPerPair; k++ {
				a := d.gatewayRouter(g1, g2, k)
				b := d.gatewayRouter(g2, g1, k)
				addLink(d.routerEntity(a), d.routerEntity(b), d.OpticalBW, LevelFabric)
				addLink(d.routerEntity(b), d.routerEntity(a), d.OpticalBW, LevelFabric)
			}
		}
	}
}

func (d *Dragonfly) routerEntity(router int) int { return d.total + router }

func (d *Dragonfly) routerAt(group, row, col int) int {
	return group*d.Rows*d.Cols + row*d.Cols + col
}

func (d *Dragonfly) routerCoord(router int) (group, row, col int) {
	perGroup := d.Rows * d.Cols
	group = router / perGroup
	local := router % perGroup
	return group, local / d.Cols, local % d.Cols
}

// RouterOf returns the Aries router hosting a node (compute or service).
func (d *Dragonfly) RouterOf(node int) int {
	if node < d.compute {
		return node / d.NodesPerRouter
	}
	return d.svcRouter[node-d.compute]
}

// GroupOf returns the dragonfly group of a node.
func (d *Dragonfly) GroupOf(node int) int {
	return d.RouterOf(node) / (d.Rows * d.Cols)
}

// gatewayRouter returns the router in group g anchoring the k-th optical
// connection toward group peer.
func (d *Dragonfly) gatewayRouter(g, peer, k int) int {
	local := (peer*17 + k*37 + 5) % (d.Rows * d.Cols)
	return g*d.Rows*d.Cols + local
}

// ServiceNode returns the node id of the i-th service (LNET) node.
func (d *Dragonfly) ServiceNode(i int) int { return d.compute + i }

// ComputeNodes returns the number of compute nodes (ranks live here).
func (d *Dragonfly) ComputeNodes() int { return d.compute }

func (d *Dragonfly) Name() string {
	return fmt.Sprintf("xc40-dragonfly-g%d", d.Groups)
}

// Nodes returns all nodes including service nodes.
func (d *Dragonfly) Nodes() int { return d.total }

func (d *Dragonfly) Dimensions() []int {
	return []int{d.Groups, d.Rows, d.Cols, d.NodesPerRouter}
}

func (d *Dragonfly) Latency() int64 { return d.HopLatency }

// Coordinates returns (group, row, col, slot) for a node.
func (d *Dragonfly) Coordinates(node int) []int {
	r := d.RouterOf(node)
	g, row, col := d.routerCoord(r)
	slot := 0
	if node < d.compute {
		slot = node % d.NodesPerRouter
	}
	return []int{g, row, col, slot}
}

func (d *Dragonfly) Bandwidth(level int) float64 {
	switch level {
	case LevelInjection:
		return d.HostLinkBW
	case LevelFabric:
		return d.ElectricalBW
	case LevelIOUplink:
		return d.OpticalBW
	case LevelStorage:
		return 7e9 // IB FDR toward the Lustre servers
	}
	return d.ElectricalBW
}

// IONodes reports the number of LNET service nodes.
func (d *Dragonfly) IONodes() int { return d.ServiceNodes }

// IONodeOf returns IONUnknown: the vendor does not expose the LNET mapping
// to applications (paper §IV-B), so the placement model cannot use it.
func (d *Dragonfly) IONodeOf(node int) int { return IONUnknown }

// DistanceToION returns 0: unknown locality (C2 = 0 in the cost model).
func (d *Dragonfly) DistanceToION(node, ion int) int { return 0 }

func (d *Dragonfly) NumLinks() int { return len(d.linkRate) }

func (d *Dragonfly) LinkRate(link int) float64 { return d.linkRate[link] }

// LinkLevel returns the bandwidth level of a link (for diagnostics).
func (d *Dragonfly) LinkLevel(link int) int { return d.linkLevel[link] }

func (d *Dragonfly) link(from, to int) int {
	key := int64(from)*int64(d.total+d.routers) + int64(to)
	id, ok := d.linkIdx[key]
	if !ok {
		panic(fmt.Sprintf("topology: no dragonfly link %d→%d", from, to))
	}
	return id
}

// routerPath appends the electrical-link path between two routers of the
// same group: row link then column link (deterministic Aries-style ordering).
func (d *Dragonfly) routerPath(route []int, from, to int) ([]int, int) {
	if from == to {
		return route, from
	}
	_, rowF, colF := d.routerCoord(from)
	gT, rowT, colT := d.routerCoord(to)
	cur := from
	if colF != colT {
		next := d.routerAt(gT, rowF, colT)
		route = append(route, d.link(d.routerEntity(cur), d.routerEntity(next)))
		cur = next
	}
	if rowF != rowT {
		route = append(route, d.link(d.routerEntity(cur), d.routerEntity(to)))
		cur = to
	}
	return route, cur
}

// Route returns the link sequence from node a to node b under the configured
// routing mode. Minimal: host → (intra|intra-gw-optical-gw-intra) → host.
// Valiant: detour through a deterministic pseudo-random intermediate group.
func (d *Dragonfly) Route(a, b int) []int {
	if a == b {
		return nil
	}
	ra, rb := d.RouterOf(a), d.RouterOf(b)
	route := []int{d.link(a, d.routerEntity(ra))}
	route = d.routeRouters(route, ra, rb, a, b)
	return append(route, d.link(d.routerEntity(rb), b))
}

func (d *Dragonfly) routeRouters(route []int, ra, rb, a, b int) []int {
	ga, gb := ra/(d.Rows*d.Cols), rb/(d.Rows*d.Cols)
	if ga == gb {
		route, _ = d.routerPath(route, ra, rb)
		return route
	}
	if d.Routing == RouteValiant && d.Groups > 2 {
		gi := (a*31 + b*7) % d.Groups
		if gi != ga && gi != gb {
			// Land on the intermediate group's gateway toward gb, then
			// route minimally onward.
			mid := d.gatewayRouter(gi, ga, 0)
			route = d.groupHop(route, ra, ga, gi, a, b)
			route = d.routeRouters(route, mid, rb, a, b)
			return route
		}
	}
	route = d.groupHop(route, ra, ga, gb, a, b)
	mid := d.gatewayRouter(gb, ga, d.gatewayIndex(a, b))
	route, _ = d.routerPath(route, mid, rb)
	return route
}

// groupHop routes from router ra (in group ga) over the optical link to the
// gateway router of group gt, appending the intra-group and optical links.
func (d *Dragonfly) groupHop(route []int, ra, ga, gt, a, b int) []int {
	k := d.gatewayIndex(a, b)
	gwA := d.gatewayRouter(ga, gt, k)
	gwB := d.gatewayRouter(gt, ga, k)
	route, _ = d.routerPath(route, ra, gwA)
	return append(route, d.link(d.routerEntity(gwA), d.routerEntity(gwB)))
}

// gatewayIndex picks one of the parallel optical connections for a flow,
// spreading flows deterministically.
func (d *Dragonfly) gatewayIndex(a, b int) int {
	if d.GatewaysPerPair <= 1 {
		return 0
	}
	h := uint64(a+1)*0x9E3779B97F4A7C15 ^ uint64(b+1)*0xC2B2AE3D27D4EB4F
	h ^= h >> 33 // avalanche so low bits depend on all input bits
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h % uint64(d.GatewaysPerPair))
}

// PathStats implements PathStater for minimally-routed pairs: the route is
// host link → (electrical hops) [→ optical → electrical hops] → host link,
// so the length is Distance and the bottleneck follows from which link
// classes the path crosses — no route materialization. Pairs that Valiant
// routing would detour through an intermediate group return ok = false.
func (d *Dragonfly) PathStats(a, b int) (hops int, bottleneck float64, ok bool) {
	if a == b {
		return 0, d.HostLinkBW, true
	}
	ra, rb := d.RouterOf(a), d.RouterOf(b)
	ga, gb := ra/(d.Rows*d.Cols), rb/(d.Rows*d.Cols)
	if ga != gb && d.Routing == RouteValiant && d.Groups > 2 {
		if gi := (a*31 + b*7) % d.Groups; gi != ga && gi != gb {
			return 0, 0, false // detoured route: walk it for real
		}
	}
	bottleneck = d.HostLinkBW
	electrical := 0
	if ga == gb {
		electrical = d.intraHops(ra, rb)
	} else {
		k := d.gatewayIndex(a, b)
		electrical = d.intraHops(ra, d.gatewayRouter(ga, gb, k)) + d.intraHops(d.gatewayRouter(gb, ga, k), rb)
		if d.OpticalBW < bottleneck {
			bottleneck = d.OpticalBW
		}
	}
	if electrical > 0 && d.ElectricalBW < bottleneck {
		bottleneck = d.ElectricalBW
	}
	return d.Distance(a, b), bottleneck, true
}

// Distance counts the links on the (minimal) route between two nodes,
// including the two host links. It is routing-mode independent so the
// placement cost model sees stable distances.
func (d *Dragonfly) Distance(a, b int) int {
	if a == b {
		return 0
	}
	ra, rb := d.RouterOf(a), d.RouterOf(b)
	if ra == rb {
		return 2
	}
	ga, gb := ra/(d.Rows*d.Cols), rb/(d.Rows*d.Cols)
	if ga == gb {
		return 2 + d.intraHops(ra, rb)
	}
	k := d.gatewayIndex(a, b)
	gwA := d.gatewayRouter(ga, gb, k)
	gwB := d.gatewayRouter(gb, ga, k)
	return 2 + d.intraHops(ra, gwA) + 1 + d.intraHops(gwB, rb)
}

func (d *Dragonfly) intraHops(ra, rb int) int {
	if ra == rb {
		return 0
	}
	_, rowA, colA := d.routerCoord(ra)
	_, rowB, colB := d.routerCoord(rb)
	h := 0
	if colA != colB {
		h++
	}
	if rowA != rowB {
		h++
	}
	return h
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
