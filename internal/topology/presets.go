package topology

import "fmt"

// MiraTorus returns a Mira-like BG/Q torus partition for the given node
// count. Partition shapes follow the compact sub-box geometry BG/Q uses;
// supported sizes are powers of two from 128 to 49152.
func MiraTorus(nodes int) *Torus5D {
	shapes := map[int][5]int{
		128:   {2, 2, 4, 4, 2},
		256:   {4, 2, 4, 4, 2},
		512:   {4, 4, 4, 4, 2},
		1024:  {4, 4, 4, 8, 2},
		2048:  {4, 4, 8, 8, 2},
		4096:  {4, 8, 8, 8, 2},
		8192:  {8, 8, 8, 8, 2},
		16384: {8, 8, 8, 16, 2},
		32768: {8, 8, 16, 16, 2},
		49152: {8, 12, 16, 16, 2},
	}
	dims, ok := shapes[nodes]
	if !ok {
		panic(fmt.Sprintf("topology: no Mira partition shape for %d nodes", nodes))
	}
	return NewTorus5D(dims)
}

// ThetaDragonfly returns a Theta-like XC40 dragonfly sized for the given
// compute-node count, with the default LNET service-node population and the
// requested routing mode.
func ThetaDragonfly(nodes, routing int) *Dragonfly {
	return DragonflyForNodes(nodes, 28, routing)
}
