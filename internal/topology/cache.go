package topology

import "sync/atomic"

// DistanceCache memoizes Topology.Distance lookups row by row: the first
// query from node a computes and publishes a's full distance row, and every
// later (a, *) lookup is an array read. Aggregator election evaluates
// distances between the same small set of nodes once per candidate and once
// per session, so the cost model's O(P²) repeated Distance calls collapse
// into cached reads (see BenchmarkCostModel at the repository root).
//
// Rows are published through atomic pointers, so a cache may be shared by
// every simulated rank of a machine — and by code running outside the
// simulator, such as benchmarks — without locking. Distance functions are
// pure, so a rare duplicated row computation is benign.
type DistanceCache struct {
	t    Topology
	rows []atomic.Pointer[[]int32]
}

// NewDistanceCache returns an empty cache over the topology.
func NewDistanceCache(t Topology) *DistanceCache {
	return &DistanceCache{t: t, rows: make([]atomic.Pointer[[]int32], t.Nodes())}
}

// Topology returns the cached topology.
func (c *DistanceCache) Topology() Topology { return c.t }

// Distance returns the hop count between two nodes, memoized. Distances are
// directional (dragonfly gateway selection hashes the ordered pair), so
// (a, b) and (b, a) occupy different rows.
func (c *DistanceCache) Distance(a, b int) int {
	row := c.rows[a].Load()
	if row == nil {
		row = c.fillRow(a)
	}
	return int((*row)[b])
}

func (c *DistanceCache) fillRow(a int) *[]int32 {
	n := c.t.Nodes()
	r := make([]int32, n)
	for b := 0; b < n; b++ {
		r[b] = int32(c.t.Distance(a, b))
	}
	c.rows[a].CompareAndSwap(nil, &r)
	return c.rows[a].Load()
}

// Rows returns how many distance rows have been materialized (for tests and
// capacity planning; each row holds Nodes() int32 entries).
func (c *DistanceCache) Rows() int {
	n := 0
	for i := range c.rows {
		if c.rows[i].Load() != nil {
			n++
		}
	}
	return n
}
