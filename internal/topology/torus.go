package topology

import "fmt"

// Torus5D models the IBM Blue Gene/Q 5-D torus (Mira). Nodes are laid out
// row-major over the five dimensions A..E; consecutive node ids therefore
// form compact sub-boxes, which is how BG/Q partitions are carved.
//
// Pset structure: nodes are grouped into Psets of PsetSize consecutive nodes
// (128 on Mira). Each Pset shares one I/O node, reached through two bridge
// nodes inside the Pset. Per the paper's Figure 4, torus links run at
// ~1.8 GB/s, bridge→ION links at 2 GB/s, and ION→storage links at 4 GB/s.
type Torus5D struct {
	Dims [5]int
	// PsetSize is the number of nodes per Pset (sharing one ION).
	PsetSize int
	// TorusLinkBW is the per-link fabric bandwidth in bytes/sec.
	TorusLinkBW float64
	// BridgeLinkBW is the bridge-node→ION link bandwidth in bytes/sec.
	BridgeLinkBW float64
	// StorageLinkBW is the ION→storage link bandwidth in bytes/sec.
	StorageLinkBW float64
	// HopLatency is the per-hop latency in nanoseconds.
	HopLatency int64

	n       int
	strides [5]int
}

// NewTorus5D builds a torus with the given dimensions and Mira-like default
// parameters (128-node Psets, 1.8 GB/s links, 690 ns per hop).
func NewTorus5D(dims [5]int) *Torus5D {
	t := &Torus5D{
		Dims:          dims,
		PsetSize:      128,
		TorusLinkBW:   1.8e9,
		BridgeLinkBW:  2.0e9,
		StorageLinkBW: 4.0e9,
		HopLatency:    690,
	}
	t.init()
	return t
}

func (t *Torus5D) init() {
	n := 1
	for _, d := range t.Dims {
		if d <= 0 {
			panic(fmt.Sprintf("topology: torus dimension %v must be positive", t.Dims))
		}
		n *= d
	}
	t.n = n
	stride := 1
	for i := 4; i >= 0; i-- {
		t.strides[i] = stride
		stride *= t.Dims[i]
	}
	if t.PsetSize > t.n {
		t.PsetSize = t.n // small test tori: a single Pset
	}
	if t.PsetSize <= 0 || t.n%t.PsetSize != 0 {
		panic(fmt.Sprintf("topology: %d nodes not divisible into Psets of %d", t.n, t.PsetSize))
	}
}

func (t *Torus5D) Name() string { return fmt.Sprintf("bgq-torus5d-%d", t.n) }

func (t *Torus5D) Nodes() int { return t.n }

func (t *Torus5D) Dimensions() []int {
	d := make([]int, 5)
	copy(d, t.Dims[:])
	return d
}

func (t *Torus5D) Latency() int64 { return t.HopLatency }

// Coordinates returns the (A,B,C,D,E) coordinates of a node.
func (t *Torus5D) Coordinates(node int) []int {
	c := make([]int, 5)
	for i := 0; i < 5; i++ {
		c[i] = (node / t.strides[i]) % t.Dims[i]
	}
	return c
}

// NodeAt returns the node id at the given coordinates.
func (t *Torus5D) NodeAt(coord []int) int {
	node := 0
	for i := 0; i < 5; i++ {
		node += ((coord[i]%t.Dims[i] + t.Dims[i]) % t.Dims[i]) * t.strides[i]
	}
	return node
}

// Distance returns the torus hop distance: per-dimension shortest wrap.
func (t *Torus5D) Distance(a, b int) int {
	d := 0
	for i := 0; i < 5; i++ {
		ca := (a / t.strides[i]) % t.Dims[i]
		cb := (b / t.strides[i]) % t.Dims[i]
		delta := ca - cb
		if delta < 0 {
			delta = -delta
		}
		if wrap := t.Dims[i] - delta; wrap < delta {
			delta = wrap
		}
		d += delta
	}
	return d
}

func (t *Torus5D) Bandwidth(level int) float64 {
	switch level {
	case LevelInjection, LevelFabric:
		return t.TorusLinkBW
	case LevelIOUplink:
		return t.BridgeLinkBW
	case LevelStorage:
		return t.StorageLinkBW
	}
	return t.TorusLinkBW
}

// IONodes returns the number of I/O nodes (one per Pset).
func (t *Torus5D) IONodes() int { return t.n / t.PsetSize }

// IONodeOf returns the Pset (== ION) index of a node.
func (t *Torus5D) IONodeOf(node int) int { return node / t.PsetSize }

// PsetOf is an alias for IONodeOf with BG/Q terminology.
func (t *Torus5D) PsetOf(node int) int { return node / t.PsetSize }

// GroupOf exposes the Pset as the torus's locality group (tree.Grouper):
// node ids are row-major over the 5-d coordinates, so a Pset is a compact
// dimension-ordered sub-box — the natural clustering unit for staged
// reduction chains, mirroring Dragonfly.GroupOf.
func (t *Torus5D) GroupOf(node int) int { return node / t.PsetSize }

// BridgeNodes returns the two bridge nodes of a Pset: the first node and the
// node half a Pset later, spreading them spatially inside the sub-box.
func (t *Torus5D) BridgeNodes(pset int) [2]int {
	base := pset * t.PsetSize
	return [2]int{base, base + t.PsetSize/2}
}

// NearestBridge returns the bridge node of the node's Pset with the smallest
// hop distance (ties: the first bridge).
func (t *Torus5D) NearestBridge(node int) int {
	br := t.BridgeNodes(t.PsetOf(node))
	if t.Distance(node, br[1]) < t.Distance(node, br[0]) {
		return br[1]
	}
	return br[0]
}

// DistanceToION returns hops from node to the ION: torus hops to the nearest
// bridge node of that ION's Pset, plus one hop on the bridge link.
func (t *Torus5D) DistanceToION(node, ion int) int {
	br := t.BridgeNodes(ion)
	d := t.Distance(node, br[0])
	if d2 := t.Distance(node, br[1]); d2 < d {
		d = d2
	}
	return d + 1
}

// Fabric links are directed, one per (node, dimension, direction):
// id = (node*5 + dim)*2 + dir, dir 0 = +1 step, dir 1 = -1 step.
func (t *Torus5D) NumLinks() int { return t.n * 5 * 2 }

func (t *Torus5D) LinkRate(link int) float64 { return t.TorusLinkBW }

// PathStats implements PathStater: the dimension-ordered route has exactly
// Distance(a, b) hops, all at the uniform torus link rate.
func (t *Torus5D) PathStats(a, b int) (hops int, bottleneck float64, ok bool) {
	return t.Distance(a, b), t.TorusLinkBW, true
}

// Route returns the dimension-ordered (A then B…E) shortest-wrap route.
// Ties between the two wrap directions go to the positive direction, making
// routes fully deterministic.
func (t *Torus5D) Route(a, b int) []int {
	if a == b {
		return nil
	}
	route := make([]int, 0, t.Distance(a, b))
	cur := a
	curCoord := t.Coordinates(a)
	for dim := 0; dim < 5; dim++ {
		size := t.Dims[dim]
		cb := (b / t.strides[dim]) % size
		for curCoord[dim] != cb {
			fwd := ((cb - curCoord[dim]) + size) % size
			bwd := size - fwd
			dir := 0
			step := 1
			if bwd < fwd {
				dir = 1
				step = -1
			}
			route = append(route, (cur*5+dim)*2+dir)
			curCoord[dim] = ((curCoord[dim]+step)%size + size) % size
			cur = t.NodeAt(curCoord)
		}
	}
	return route
}
