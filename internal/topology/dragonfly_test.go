package topology

import (
	"math/rand"
	"testing"
)

func theta512() *Dragonfly { return ThetaDragonfly(512, RouteMinimal) }

func TestDragonflySizing(t *testing.T) {
	d := theta512()
	if d.ComputeNodes() < 512 {
		t.Fatalf("compute nodes = %d, want >= 512", d.ComputeNodes())
	}
	if d.Groups != 2 {
		t.Fatalf("groups = %d, want 2 for 512 nodes", d.Groups)
	}
	if d.Nodes() != d.ComputeNodes()+28 {
		t.Fatalf("total nodes = %d, want compute+28 service", d.Nodes())
	}
}

func TestDragonflyForNodesScaling(t *testing.T) {
	cases := map[int]int{512: 2, 1024: 3, 2048: 6, 3456: 9}
	for n, groups := range cases {
		d := ThetaDragonfly(n, RouteMinimal)
		if d.Groups != groups {
			t.Errorf("ThetaDragonfly(%d).Groups = %d, want %d", n, d.Groups, groups)
		}
	}
}

func TestDragonflyRouterOf(t *testing.T) {
	d := theta512()
	for node := 0; node < d.ComputeNodes(); node++ {
		r := d.RouterOf(node)
		if r != node/4 {
			t.Fatalf("RouterOf(%d) = %d, want %d", node, r, node/4)
		}
	}
}

func TestDragonflyServiceNodesSpread(t *testing.T) {
	d := theta512()
	groups := map[int]bool{}
	for i := 0; i < d.ServiceNodes; i++ {
		n := d.ServiceNode(i)
		if n < d.ComputeNodes() || n >= d.Nodes() {
			t.Fatalf("service node id %d out of range", n)
		}
		groups[d.GroupOf(n)] = true
	}
	if len(groups) != d.Groups {
		t.Fatalf("service nodes cover %d groups, want %d", len(groups), d.Groups)
	}
}

func TestDragonflyDistanceCases(t *testing.T) {
	d := theta512()
	// Same node.
	if dist := d.Distance(0, 0); dist != 0 {
		t.Errorf("same node distance = %d", dist)
	}
	// Same router: two host links.
	if dist := d.Distance(0, 1); dist != 2 {
		t.Errorf("same router distance = %d, want 2", dist)
	}
	// Same group, same row: host + 1 electrical + host.
	a, b := 0, 4 // routers 0 and 1 (row 0, cols 0 and 1)
	if dist := d.Distance(a, b); dist != 3 {
		t.Errorf("same row distance = %d, want 3", dist)
	}
	// Same group, different row and col: 2 electrical hops.
	c := d.NodesPerRouter * d.routerAt(0, 1, 1)
	if dist := d.Distance(a, c); dist != 4 {
		t.Errorf("general intra-group distance = %d, want 4", dist)
	}
	// Inter-group: at least host + gw path + optical + host.
	far := d.NodesPerRouter * d.routerAt(1, 3, 7)
	if dist := d.Distance(a, far); dist < 3 || dist > 7 {
		t.Errorf("inter-group distance = %d, want within [3,7]", dist)
	}
}

func TestDragonflyDistanceSymmetricIntraGroup(t *testing.T) {
	d := theta512()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		a := rng.Intn(384) // group 0 nodes
		b := rng.Intn(384)
		if d.Distance(a, b) != d.Distance(b, a) {
			t.Fatalf("asymmetric intra-group distance %d↔%d", a, b)
		}
	}
}

func TestDragonflyRouteValid(t *testing.T) {
	for _, mode := range []int{RouteMinimal, RouteValiant} {
		d := ThetaDragonfly(1024, mode)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 300; i++ {
			a, b := rng.Intn(d.ComputeNodes()), rng.Intn(d.ComputeNodes())
			route := d.Route(a, b)
			if a == b {
				if len(route) != 0 {
					t.Fatalf("self route not empty")
				}
				continue
			}
			if len(route) == 0 {
				t.Fatalf("empty route %d→%d", a, b)
			}
			for _, l := range route {
				if l < 0 || l >= d.NumLinks() {
					t.Fatalf("link %d out of range (mode %d)", l, mode)
				}
			}
		}
	}
}

func TestDragonflyMinimalRouteLengthMatchesDistance(t *testing.T) {
	d := theta512()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		a, b := rng.Intn(d.ComputeNodes()), rng.Intn(d.ComputeNodes())
		if a == b {
			continue
		}
		if got, want := len(d.Route(a, b)), d.Distance(a, b); got != want {
			t.Fatalf("route length %d != distance %d for %d→%d", got, want, a, b)
		}
	}
}

func TestDragonflyValiantNotShorterThanMinimal(t *testing.T) {
	dm := ThetaDragonfly(2048, RouteMinimal)
	dv := ThetaDragonfly(2048, RouteValiant)
	rng := rand.New(rand.NewSource(7))
	longer := 0
	for i := 0; i < 300; i++ {
		a, b := rng.Intn(dm.ComputeNodes()), rng.Intn(dm.ComputeNodes())
		lm, lv := len(dm.Route(a, b)), len(dv.Route(a, b))
		if lv < lm {
			t.Fatalf("valiant route shorter than minimal for %d→%d (%d < %d)", a, b, lv, lm)
		}
		if lv > lm {
			longer++
		}
	}
	if longer == 0 {
		t.Fatal("valiant routing never detoured; adaptive model is inert")
	}
}

func TestDragonflyRouteToServiceNode(t *testing.T) {
	d := theta512()
	svc := d.ServiceNode(3)
	route := d.Route(100, svc)
	if len(route) == 0 {
		t.Fatal("no route to service node")
	}
	// Last link must be the service node's host downlink (injection level).
	if lvl := d.LinkLevel(route[len(route)-1]); lvl != LevelInjection {
		t.Fatalf("final link level = %d, want injection", lvl)
	}
}

func TestDragonflyIONUnknown(t *testing.T) {
	d := theta512()
	if d.IONodeOf(17) != IONUnknown {
		t.Fatal("dragonfly must hide ION locality (paper: C2 = 0 on Theta)")
	}
	if d.DistanceToION(17, 0) != 0 {
		t.Fatal("DistanceToION must be 0 when locality is unknown")
	}
}

func TestDragonflyOpticalOnInterGroupRoute(t *testing.T) {
	d := theta512()
	a := 0
	b := d.NodesPerRouter * d.routerAt(1, 0, 0)
	route := d.Route(a, b)
	foundOptical := false
	for _, l := range route {
		if d.LinkRate(l) == d.OpticalBW {
			foundOptical = true
		}
	}
	if !foundOptical {
		t.Fatal("inter-group route has no optical link")
	}
}

func TestDragonflyGatewaySpread(t *testing.T) {
	// Parallel flows between the same group pair should use both parallel
	// optical connections.
	d := theta512()
	used := map[int]bool{}
	for a := 0; a < 16; a++ {
		b := d.NodesPerRouter*d.routerAt(1, 2, 3) + a%4
		route := d.Route(a, b)
		for _, l := range route {
			if d.LinkRate(l) == d.OpticalBW {
				used[l] = true
			}
		}
	}
	if len(used) < 2 {
		t.Fatalf("flows concentrated on %d optical links, want >= 2", len(used))
	}
}

func TestDragonflyBandwidthLevels(t *testing.T) {
	d := theta512()
	if d.Bandwidth(LevelFabric) != 14e9 {
		t.Errorf("electrical = %v", d.Bandwidth(LevelFabric))
	}
	if d.Bandwidth(LevelIOUplink) != 12.5e9 {
		t.Errorf("optical = %v", d.Bandwidth(LevelIOUplink))
	}
}

func TestFlatTopology(t *testing.T) {
	f := NewFlat(8)
	if f.Distance(1, 1) != 0 || f.Distance(1, 2) != 1 {
		t.Fatal("flat distances wrong")
	}
	r := f.Route(2, 5)
	if len(r) != 2 {
		t.Fatalf("flat route length = %d, want 2", len(r))
	}
	hops, bw := PathInfo(f, 2, 5)
	if hops != 2 || bw != f.LinkBW {
		t.Fatalf("PathInfo = (%d, %v)", hops, bw)
	}
	if f.IONodeOf(7) != 0 {
		t.Fatalf("flat ION = %d", f.IONodeOf(7))
	}
}
