// Package topology models supercomputer interconnect topologies.
//
// It provides the generic abstraction from the TAPIOCA paper (Listing 1:
// bandwidth per level, latency, dimensions, rank/node coordinates, I/O-node
// distances) plus the extra structure the simulator needs: deterministic
// routes as sequences of link ids so a network model can attach a contention
// resource to every physical link.
//
// Two production topologies are implemented:
//
//   - Torus5D: the IBM Blue Gene/Q 5-D torus with Psets (128-node blocks
//     sharing an I/O node through two bridge nodes), as on Mira.
//   - Dragonfly: the Cray XC40 Aries dragonfly (groups of 96 routers in a
//     16×6 2-D all-to-all, 4 nodes per router), as on Theta.
//
// A trivial Flat topology supports unit tests.
package topology

// Bandwidth levels used by Bandwidth(level), mirroring the paper's
// getBandwidth(level) interface.
const (
	LevelInjection = iota // node ↔ first switch/NIC
	LevelFabric           // compute interconnect links
	LevelIOUplink         // bridge/service node ↔ I/O node or LNET
	LevelStorage          // I/O node ↔ storage servers
)

// IONUnknown is returned by IONodeOf when the platform does not expose
// I/O-node locality to applications (e.g. Lustre LNET mapping on Theta). The
// TAPIOCA cost model sets the I/O-phase cost C2 to zero in that case, as in
// the paper.
const IONUnknown = -1

// Topology describes an interconnect, in the spirit of the paper's generic
// topology interface, extended with explicit link-level routing for the
// simulator.
type Topology interface {
	// Name identifies the topology (for reports).
	Name() string
	// Nodes returns the number of compute nodes.
	Nodes() int
	// Dimensions returns the network dimensions (paper: NetworkDimensions).
	Dimensions() []int
	// Coordinates returns a node's coordinates (paper: RankToCoordinates;
	// rank→node mapping is the runtime's concern).
	Coordinates(node int) []int
	// Distance returns the hop count between two nodes
	// (paper: DistanceBetweenRanks).
	Distance(a, b int) int
	// Bandwidth returns the link bandwidth in bytes/second at a level
	// (paper: getBandwidth).
	Bandwidth(level int) float64
	// Latency returns the per-hop latency in nanoseconds (paper: getLatency).
	Latency() int64
	// IONodes returns the number of I/O nodes (paper: IONodesPerFile).
	IONodes() int
	// IONodeOf returns the I/O node serving a compute node, or IONUnknown
	// when the platform hides the mapping.
	IONodeOf(node int) int
	// DistanceToION returns the hop count from a node to an I/O node's
	// gateway (paper: DistanceToIONode). Zero when unknown.
	DistanceToION(node, ion int) int

	// NumLinks returns the number of directed fabric links.
	NumLinks() int
	// LinkRate returns a link's bandwidth in bytes/second.
	LinkRate(link int) float64
	// Route returns the deterministic sequence of link ids from a to b.
	// An empty route means the endpoints share a node.
	Route(a, b int) []int
}

// PathInfo returns the hop count and bottleneck bandwidth between two nodes.
// For same-node paths the bandwidth is reported as the injection-level rate.
func PathInfo(t Topology, a, b int) (hops int, bottleneck float64) {
	if ps, ok := t.(PathStater); ok {
		if hops, bottleneck, ok = ps.PathStats(a, b); ok {
			return hops, bottleneck
		}
	}
	route := t.Route(a, b)
	if len(route) == 0 {
		return 0, t.Bandwidth(LevelInjection)
	}
	bottleneck = t.LinkRate(route[0])
	for _, l := range route[1:] {
		if r := t.LinkRate(l); r < bottleneck {
			bottleneck = r
		}
	}
	return len(route), bottleneck
}

// PathStater is an optional Topology extension: PathStats reports the route
// length and the minimum link rate along the deterministic route from a to b
// without materializing the link sequence — the compact table endpoint-model
// simulations use so they never allocate a route. Implementations return
// ok = false when the answer would require walking the actual route (e.g.
// non-minimal routing modes); callers then fall back to Route.
//
// The contract is exact: hops == len(Route(a, b)) and bottleneck ==
// min(LinkRate(l) for l in Route(a, b)). Same-node pairs return (0, +Inf not
// required) — callers never ask, as a == b short-circuits before routing.
type PathStater interface {
	PathStats(a, b int) (hops int, bottleneck float64, ok bool)
}

// Flat is a degenerate single-switch topology: every pair of nodes is one
// hop apart through a private full-duplex link. It keeps unit tests of the
// upper layers independent of torus/dragonfly details.
type Flat struct {
	N        int
	LinkBW   float64 // bytes/sec, default 1 GB/s
	HopDelay int64   // ns, default 1µs
	NumIONs  int     // default 1
}

// NewFlat returns a Flat topology with n nodes and sensible defaults.
func NewFlat(n int) *Flat {
	return &Flat{N: n, LinkBW: 1e9, HopDelay: 1000, NumIONs: 1}
}

func (f *Flat) Name() string      { return "flat" }
func (f *Flat) Nodes() int        { return f.N }
func (f *Flat) Dimensions() []int { return []int{f.N} }
func (f *Flat) Latency() int64    { return f.HopDelay }
func (f *Flat) Coordinates(node int) []int {
	return []int{node}
}

func (f *Flat) Distance(a, b int) int {
	if a == b {
		return 0
	}
	return 1
}

func (f *Flat) Bandwidth(level int) float64 { return f.LinkBW }

func (f *Flat) IONodes() int {
	if f.NumIONs <= 0 {
		return 1
	}
	return f.NumIONs
}

func (f *Flat) IONodeOf(node int) int {
	per := (f.N + f.IONodes() - 1) / f.IONodes()
	return node / per
}

func (f *Flat) DistanceToION(node, ion int) int { return 1 }

// Each node has one outgoing and one incoming link to the virtual switch.
func (f *Flat) NumLinks() int             { return 2 * f.N }
func (f *Flat) LinkRate(link int) float64 { return f.LinkBW }

func (f *Flat) Route(a, b int) []int {
	if a == b {
		return nil
	}
	return []int{2 * a, 2*b + 1} // a's uplink, b's downlink
}

// PathStats implements PathStater: every distinct pair routes over exactly
// two links of the uniform rate.
func (f *Flat) PathStats(a, b int) (hops int, bottleneck float64, ok bool) {
	if a == b {
		return 0, f.LinkBW, true
	}
	return 2, f.LinkBW, true
}
