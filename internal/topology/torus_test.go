package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTorusNodeCount(t *testing.T) {
	tor := NewTorus5D([5]int{4, 4, 4, 4, 2})
	if tor.Nodes() != 512 {
		t.Fatalf("nodes = %d, want 512", tor.Nodes())
	}
	if tor.IONodes() != 4 {
		t.Fatalf("IONs = %d, want 4", tor.IONodes())
	}
}

func TestTorusCoordinatesRoundTrip(t *testing.T) {
	tor := NewTorus5D([5]int{4, 4, 4, 8, 2})
	for node := 0; node < tor.Nodes(); node++ {
		c := tor.Coordinates(node)
		if got := tor.NodeAt(c); got != node {
			t.Fatalf("NodeAt(Coordinates(%d)) = %d", node, got)
		}
		for i, v := range c {
			if v < 0 || v >= tor.Dims[i] {
				t.Fatalf("node %d coordinate %d out of range: %v", node, i, c)
			}
		}
	}
}

func TestTorusDistanceIdentity(t *testing.T) {
	tor := MiraTorus(512)
	for node := 0; node < tor.Nodes(); node += 37 {
		if d := tor.Distance(node, node); d != 0 {
			t.Fatalf("Distance(%d,%d) = %d, want 0", node, node, d)
		}
	}
}

func TestTorusDistanceSymmetric(t *testing.T) {
	tor := MiraTorus(512)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := rng.Intn(tor.Nodes()), rng.Intn(tor.Nodes())
		if tor.Distance(a, b) != tor.Distance(b, a) {
			t.Fatalf("asymmetric distance between %d and %d", a, b)
		}
	}
}

func TestTorusDistanceTriangleInequality(t *testing.T) {
	tor := MiraTorus(256)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		a, b, c := rng.Intn(tor.Nodes()), rng.Intn(tor.Nodes()), rng.Intn(tor.Nodes())
		if tor.Distance(a, c) > tor.Distance(a, b)+tor.Distance(b, c) {
			t.Fatalf("triangle inequality violated for %d,%d,%d", a, b, c)
		}
	}
}

func TestTorusWrapDistance(t *testing.T) {
	tor := NewTorus5D([5]int{8, 1, 1, 1, 1})
	// Nodes 0 and 7 on a ring of 8 are 1 hop apart (wraparound).
	if d := tor.Distance(0, 7); d != 1 {
		t.Fatalf("wrap distance = %d, want 1", d)
	}
	if d := tor.Distance(0, 4); d != 4 {
		t.Fatalf("antipodal distance = %d, want 4", d)
	}
}

func TestTorusRouteLengthEqualsDistance(t *testing.T) {
	tor := MiraTorus(512)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a, b := rng.Intn(tor.Nodes()), rng.Intn(tor.Nodes())
		route := tor.Route(a, b)
		if len(route) != tor.Distance(a, b) {
			t.Fatalf("route length %d != distance %d for %d→%d", len(route), tor.Distance(a, b), a, b)
		}
		for _, l := range route {
			if l < 0 || l >= tor.NumLinks() {
				t.Fatalf("route link %d out of range", l)
			}
		}
	}
}

func TestTorusRouteDeterministic(t *testing.T) {
	tor := MiraTorus(512)
	a, b := 13, 401
	r1 := tor.Route(a, b)
	r2 := tor.Route(a, b)
	if len(r1) != len(r2) {
		t.Fatal("route lengths differ")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("routes differ between calls")
		}
	}
}

// Property: routes visit distinct links (dimension-ordered minimal routes
// never revisit a link).
func TestTorusRouteNoLinkRepeats(t *testing.T) {
	tor := MiraTorus(256)
	f := func(a, b uint16) bool {
		x, y := int(a)%tor.Nodes(), int(b)%tor.Nodes()
		route := tor.Route(x, y)
		seen := map[int]bool{}
		for _, l := range route {
			if seen[l] {
				return false
			}
			seen[l] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusPsets(t *testing.T) {
	tor := MiraTorus(1024)
	if tor.IONodes() != 8 {
		t.Fatalf("IONs = %d, want 8", tor.IONodes())
	}
	for node := 0; node < tor.Nodes(); node++ {
		pset := tor.PsetOf(node)
		if pset != node/128 {
			t.Fatalf("PsetOf(%d) = %d, want %d", node, pset, node/128)
		}
		if tor.IONodeOf(node) != pset {
			t.Fatalf("IONodeOf != PsetOf for node %d", node)
		}
	}
}

func TestTorusBridgeNodesInsidePset(t *testing.T) {
	tor := MiraTorus(1024)
	for pset := 0; pset < tor.IONodes(); pset++ {
		br := tor.BridgeNodes(pset)
		for _, b := range br[:] {
			if tor.PsetOf(b) != pset {
				t.Fatalf("bridge node %d of pset %d is in pset %d", b, pset, tor.PsetOf(b))
			}
		}
		if br[0] == br[1] {
			t.Fatalf("pset %d has duplicate bridge nodes", pset)
		}
	}
}

func TestTorusNearestBridge(t *testing.T) {
	tor := MiraTorus(512)
	for node := 0; node < tor.Nodes(); node += 11 {
		nb := tor.NearestBridge(node)
		br := tor.BridgeNodes(tor.PsetOf(node))
		dn := tor.Distance(node, nb)
		for _, b := range br[:] {
			if tor.Distance(node, b) < dn {
				t.Fatalf("NearestBridge(%d) = %d is not nearest", node, nb)
			}
		}
	}
}

func TestTorusDistanceToION(t *testing.T) {
	tor := MiraTorus(512)
	// A bridge node itself is one hop (the bridge link) from its ION.
	br := tor.BridgeNodes(0)
	if d := tor.DistanceToION(br[0], 0); d != 1 {
		t.Fatalf("bridge DistanceToION = %d, want 1", d)
	}
	// Any node is strictly positive hops away.
	for node := 0; node < tor.Nodes(); node += 13 {
		if d := tor.DistanceToION(node, tor.IONodeOf(node)); d < 1 {
			t.Fatalf("DistanceToION(%d) = %d, want >= 1", node, d)
		}
	}
}

func TestTorusPsetIsCompact(t *testing.T) {
	// Consecutive-id Psets must be geometrically compact: max intra-Pset
	// distance well below the torus diameter.
	tor := MiraTorus(1024)
	diam := 0
	for i := 0; i < 5; i++ {
		diam += tor.Dims[i] / 2
	}
	maxIntra := 0
	base := 3 * tor.PsetSize // probe pset 3
	for i := 0; i < tor.PsetSize; i++ {
		for j := i + 1; j < tor.PsetSize; j += 7 {
			if d := tor.Distance(base+i, base+j); d > maxIntra {
				maxIntra = d
			}
		}
	}
	if maxIntra >= diam {
		t.Fatalf("pset diameter %d not compact (torus diameter %d)", maxIntra, diam)
	}
}

func TestMiraPresets(t *testing.T) {
	for _, n := range []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 49152} {
		tor := MiraTorus(n)
		if tor.Nodes() != n {
			t.Fatalf("MiraTorus(%d).Nodes() = %d", n, tor.Nodes())
		}
		if n >= 128 && tor.Nodes()%tor.PsetSize != 0 {
			t.Fatalf("MiraTorus(%d) not divisible into Psets", n)
		}
	}
}

func TestMiraPresetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported size")
		}
	}()
	MiraTorus(300)
}

func TestTorusBandwidthLevels(t *testing.T) {
	tor := MiraTorus(512)
	if tor.Bandwidth(LevelFabric) != 1.8e9 {
		t.Fatalf("fabric BW = %v", tor.Bandwidth(LevelFabric))
	}
	if tor.Bandwidth(LevelIOUplink) != 2.0e9 {
		t.Fatalf("uplink BW = %v", tor.Bandwidth(LevelIOUplink))
	}
	if tor.Bandwidth(LevelStorage) != 4.0e9 {
		t.Fatalf("storage BW = %v", tor.Bandwidth(LevelStorage))
	}
}

func TestPathInfoTorus(t *testing.T) {
	tor := MiraTorus(512)
	hops, bw := PathInfo(tor, 0, 1)
	if hops != tor.Distance(0, 1) {
		t.Fatalf("hops = %d, want %d", hops, tor.Distance(0, 1))
	}
	if bw != tor.TorusLinkBW {
		t.Fatalf("bottleneck = %v, want %v", bw, tor.TorusLinkBW)
	}
	hops, bw = PathInfo(tor, 7, 7)
	if hops != 0 || bw <= 0 {
		t.Fatalf("same-node path = (%d, %v)", hops, bw)
	}
}
