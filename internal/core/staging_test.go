package core

// Randomized property suite for intra-node pre-aggregation: the same random
// declared patterns as the data-plane suite, written with real payload bytes
// through the staged pipeline (member deposits into the node leader's window,
// one coalesced inter-node put per node group per round), then read back and
// verified byte-for-byte and by CRC-64 parity against the backing store — on
// every storage backend. The suite also pins the degenerate cases: one rank
// per node must make staging a literal no-op, a staged store must land bytes
// identical to a flat store, and arming a zero-rate fault plan must not
// perturb the staged schedule.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"tapioca/internal/fault"
	"tapioca/internal/mpi"
	"tapioca/internal/netsim"
	"tapioca/internal/storage"
	"tapioca/internal/workload"
)

// stagedRun writes decl's data through one full staged (or flat) session on
// sys/fab, reads it back with a fresh session, verifies the round trip, and
// returns rank 0's write checksum and the store checksum over rank 0's runs.
// Optional inspect hooks run on every rank after its write session completes
// (concurrently across ranks — hooks synchronize themselves).
func stagedRun(t *testing.T, sys storage.System, fab *netsim.Fabric, ranks, rpn int,
	decl [][][]storage.Seg, seed int64, cfg Config, fileName string,
	inspect ...func(rank int, w *Writer)) (writeCRC, storeCRC uint64) {
	t.Helper()
	var mu sync.Mutex
	var failures []string
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	_, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: rpn, Fabric: fab}, func(c *mpi.Comm) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create(fileName, storage.FileOptions{StripeCount: 4, StripeSize: 16 << 10})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		mine := decl[c.Rank()]
		data := workload.FillData(mine, uint64(seed))

		w := New(c, sys, f, cfg)
		if err := w.InitData(mine, data); err != nil {
			fail("rank %d InitData(write): %v", c.Rank(), err)
			return
		}
		if err := w.WriteAll(); err != nil {
			fail("rank %d WriteAll: %v", c.Rank(), err)
			return
		}
		crc := w.DataChecksum()
		for _, fn := range inspect {
			fn(c.Rank(), w)
		}
		c.Barrier()

		rbuf := make([][]byte, len(data))
		for i := range data {
			rbuf[i] = make([]byte, len(data[i]))
		}
		r := New(c, sys, f, cfg)
		if err := r.InitData(mine, rbuf); err != nil {
			fail("rank %d InitData(read): %v", c.Rank(), err)
			return
		}
		if err := r.ReadAll(); err != nil {
			fail("rank %d ReadAll: %v", c.Rank(), err)
			return
		}
		if err := workload.VerifyData(mine, uint64(seed), rbuf); err != nil {
			fail("rank %d read-back: %v", c.Rank(), err)
		}
		if got := r.DataChecksum(); got != crc {
			fail("rank %d checksum: wrote %#x, read %#x", c.Rank(), crc, got)
		}
		var runs []storage.Seg
		for _, segs := range mine {
			storage.Enumerate(segs, 1<<20, func(off, length int64) {
				runs = append(runs, storage.Contig(off, length))
			})
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].Off < runs[j].Off })
		scrc, serr := f.StoreChecksum(runs)
		if serr != nil {
			fail("rank %d StoreChecksum: %v", c.Rank(), serr)
		} else if scrc != crc {
			fail("rank %d store checksum %#x != write checksum %#x", c.Rank(), scrc, crc)
		}
		if c.Rank() == 0 {
			mu.Lock()
			writeCRC, storeCRC = crc, scrc
			mu.Unlock()
		}
		c.Barrier()
	})
	mu.Lock()
	defer mu.Unlock()
	for _, f := range failures {
		t.Error(f)
	}
	if err != nil {
		t.Fatal(err)
	}
	return writeCRC, storeCRC
}

// TestStagingRoundTrip is the staged acceptance property: with intra-node
// pre-aggregation on, a multi-rank random strided write followed by a fresh
// read returns byte-identical data on every backend, with checksum parity
// between the write session, the read session and the backing store — the
// extra member → leader → aggregator hop must be invisible to the CRC
// contract. The single-ranked gpfs backend doubles as the rpn=1 degenerate
// case: every node group is a singleton, so the staged config must book no
// intra-node staging copies at all.
func TestStagingRoundTrip(t *testing.T) {
	trials := 3
	if testing.Short() || raceEnabledCore {
		trials = 1
	}
	for _, be := range dataPlaneBackends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				seed := int64(1000*trial) + 93
				rng := rand.New(rand.NewSource(seed))
				decl := genDeclared(rng, be.ranks, be.ranks*3)
				sys, fab := be.build()
				cfg := Config{
					Aggregators: 4, BufferSize: 8 << 10,
					SingleBuffer: trial%2 == 1, IntraNodeStaging: true,
				}
				stagedRun(t, sys, fab, be.ranks, be.rpn, decl, seed, cfg,
					fmt.Sprintf("staging-%d", trial))
				if be.rpn == 1 && fab.LocalTransfers() != 0 {
					t.Fatalf("rpn=1 staged run booked %d intra-node staging copies, want 0",
						fab.LocalTransfers())
				}
				if t.Failed() {
					t.Fatalf("trial %d (seed %d) failed", trial, seed)
				}
			}
		})
	}
}

// TestStagingStoreBytesMatchFlat writes one pattern twice — flat and staged —
// into separate files on the same backend and requires the landed store bytes
// to be checksum-identical: the staging hop may change the message schedule,
// never the data. The pattern is a fine-grained rank interleave (every
// aggregation round receives pieces from every partition member), the layout
// where coalescing engages on every round — so the test also requires the
// staged run to book strictly fewer fabric messages.
func TestStagingStoreBytesMatchFlat(t *testing.T) {
	const seed = 7171
	be := dataPlaneBackends()[1] // lustre
	const l, n = 512, 64
	decl := make([][][]storage.Seg, be.ranks)
	for r := range decl {
		decl[r] = [][]storage.Seg{{storage.Strided(int64(r)*l, l, int64(be.ranks)*l, n)}}
	}
	base := Config{Aggregators: 4, BufferSize: 8 << 10}

	sysF, fabF := be.build()
	flatWrite, flatStore := stagedRun(t, sysF, fabF, be.ranks, be.rpn, decl, seed, base, "flat")

	staged := base
	staged.IntraNodeStaging = true
	sysS, fabS := be.build()
	stagedWrite, stagedStore := stagedRun(t, sysS, fabS, be.ranks, be.rpn, decl, seed, staged, "staged")

	if fabS.LocalTransfers() == 0 {
		t.Fatal("staged run booked no intra-node staging copies — the staged leg never engaged")
	}
	if stagedWrite != flatWrite || stagedStore != flatStore {
		t.Fatalf("staged store diverged from flat: write %#x vs %#x, store %#x vs %#x",
			stagedWrite, flatWrite, stagedStore, flatStore)
	}
	if fabS.FabricMessages() >= fabF.FabricMessages() {
		t.Fatalf("staged run booked %d fabric messages, flat %d — coalescing saved nothing",
			fabS.FabricMessages(), fabF.FabricMessages())
	}
}

// TestStagingZeroRateFaultsIdentical arms the staged pipeline with a
// zero-rate fault plan (the schedule exists but never fires) and requires
// the run to stay byte-identical to the unarmed one: same store checksum and
// same fabric message count. Fault instrumentation must be free when no
// fault fires.
func TestStagingZeroRateFaultsIdentical(t *testing.T) {
	const seed = 4040
	be := dataPlaneBackends()[0] // nullfs-backed MemStore
	rng := rand.New(rand.NewSource(seed))
	decl := genDeclared(rng, be.ranks, be.ranks*3)
	cfg := Config{Aggregators: 4, BufferSize: 8 << 10, IntraNodeStaging: true}

	sysA, fabA := be.build()
	baseWrite, baseStore := stagedRun(t, sysA, fabA, be.ranks, be.rpn, decl, seed, cfg, "unarmed")

	armed := cfg
	armed.Faults = fault.NewPlan(fault.Config{Seed: 99}) // all rates zero
	sysB, fabB := be.build()
	fabB.SetFaults(armed.Faults)
	armedWrite, armedStore := stagedRun(t, sysB, fabB, be.ranks, be.rpn, decl, seed, armed, "armed")

	if armedWrite != baseWrite || armedStore != baseStore {
		t.Fatalf("zero-rate fault plan changed the staged bytes: write %#x vs %#x, store %#x vs %#x",
			armedWrite, baseWrite, armedStore, baseStore)
	}
	if fabB.FabricMessages() != fabA.FabricMessages() {
		t.Fatalf("zero-rate fault plan changed the staged schedule: %d fabric messages vs %d",
			fabB.FabricMessages(), fabA.FabricMessages())
	}
}
