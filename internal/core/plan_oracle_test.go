package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"tapioca/internal/storage"
)

// This file keeps the pre-arena plan builder (maps + per-rank piece slices,
// exactly as shipped before the flat-arena rewrite) as a test oracle: for
// randomized workloads the rewritten builder must reproduce its partitions,
// flush run sets, and per-rank piece lists bit for bit.

type refRegion struct {
	lo, hi int64
	bytes  int64
	segs   []storage.Seg
}

func (r *refRegion) dense() bool { return r.bytes == r.hi-r.lo }

func (r *refRegion) bytesBefore(x int64) int64 {
	if x <= r.lo {
		return 0
	}
	if x >= r.hi {
		return r.bytes
	}
	if r.dense() {
		return x - r.lo
	}
	var n int64
	for _, s := range r.segs {
		n += storage.TotalBytes(s.Intersect(r.lo, x))
	}
	return n
}

func (r *refRegion) fileOffsetAt(target int64) int64 {
	if target <= 0 {
		return r.lo
	}
	if target >= r.bytes {
		return r.hi
	}
	if r.dense() {
		return r.lo + target
	}
	lo, hi := r.lo, r.hi
	for lo < hi {
		mid := (lo + hi) / 2
		if r.bytesBefore(mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (r *refRegion) extract(x0, x1 int64) []storage.Seg {
	if x1 <= x0 {
		return nil
	}
	if r.dense() {
		lo, hi := maxI64(x0, r.lo), minI64(x1, r.hi)
		if hi <= lo {
			return nil
		}
		return []storage.Seg{storage.Contig(lo, hi-lo)}
	}
	return storage.IntersectAll(r.segs, x0, x1)
}

type refPart struct {
	ranks  []int
	bytes  int64
	rounds int
	flush  []flushInfo
	omega  []int64
}

type refPlan struct {
	partOf []int
	parts  []refPart
	pieces [][]putPiece
}

func buildPlanReference(all [][]storage.Seg, nAggr int, bufSize, alignUnit int64) *refPlan {
	nRanks := len(all)
	if nAggr > nRanks {
		nAggr = nRanks
	}
	p := &refPlan{
		partOf: make([]int, nRanks),
		parts:  make([]refPart, nAggr),
		pieces: make([][]putPiece, nRanks),
	}
	for r := 0; r < nRanks; r++ {
		p.partOf[r] = r * nAggr / nRanks
	}
	for part := range p.parts {
		lo := partStart(part, nAggr, nRanks)
		hi := partStart(part+1, nAggr, nRanks)
		buildPartitionReference(p, part, lo, hi, all, bufSize, alignUnit)
	}
	return p
}

func buildPartitionReference(p *refPlan, part, rankLo, rankHi int, all [][]storage.Seg, bufSize, alignUnit int64) {
	pp := &p.parts[part]
	for r := rankLo; r < rankHi; r++ {
		pp.ranks = append(pp.ranks, r)
	}
	pp.omega = make([]int64, len(pp.ranks))

	type memberSeg struct {
		local int
		seg   storage.Seg
	}
	var msegs []memberSeg
	for i, r := range pp.ranks {
		for _, s := range all[r] {
			if s.Empty() {
				continue
			}
			msegs = append(msegs, memberSeg{local: i, seg: s})
			pp.omega[i] += s.Bytes()
			pp.bytes += s.Bytes()
		}
	}
	if pp.bytes == 0 {
		return
	}
	sort.Slice(msegs, func(a, b int) bool {
		if msegs[a].seg.Off != msegs[b].seg.Off {
			return msegs[a].seg.Off < msegs[b].seg.Off
		}
		return msegs[a].local < msegs[b].local
	})

	var regions []*refRegion
	for _, ms := range msegs {
		slo, shi := ms.seg.Span()
		last := len(regions) - 1
		if last >= 0 && slo <= regions[last].hi {
			rg := regions[last]
			if shi > rg.hi {
				rg.hi = shi
			}
			rg.bytes += ms.seg.Bytes()
			rg.segs = append(rg.segs, ms.seg)
		} else {
			regions = append(regions, &refRegion{lo: slo, hi: shi, bytes: ms.seg.Bytes(), segs: []storage.Seg{ms.seg}})
		}
	}

	type window struct {
		rg     *refRegion
		t0, t1 int64
	}
	var windows []window
	for _, rg := range regions {
		pos := int64(0)
		for pos < rg.bytes {
			next := pos + bufSize
			if alignUnit > 0 && rg.dense() {
				if cand := (rg.lo+pos+bufSize)/alignUnit*alignUnit - rg.lo; cand > pos {
					next = cand
				}
			}
			if next > rg.bytes {
				next = rg.bytes
			}
			windows = append(windows, window{rg: rg, t0: pos, t1: next})
			pos = next
		}
	}
	pp.rounds = len(windows)
	pp.flush = make([]flushInfo, pp.rounds)
	for round, wd := range windows {
		x0 := wd.rg.fileOffsetAt(wd.t0)
		x1 := wd.rg.fileOffsetAt(wd.t1)
		pp.flush[round] = flushInfo{segs: wd.rg.extract(x0, x1), bytes: wd.t1 - wd.t0}
	}

	roundFill := make([]int64, pp.rounds)
	type pieceKey struct {
		local, round int
	}
	pieceBytes := map[pieceKey]int64{}
	for round, wd := range windows {
		x0 := wd.rg.fileOffsetAt(wd.t0)
		x1 := wd.rg.fileOffsetAt(wd.t1)
		for _, ms := range msegs {
			slo, shi := ms.seg.Span()
			if shi <= x0 || slo >= x1 || slo < wd.rg.lo || slo >= wd.rg.hi {
				continue
			}
			b := storage.TotalBytes(ms.seg.Intersect(x0, x1))
			if b > 0 {
				pieceBytes[pieceKey{ms.local, round}] += b
			}
		}
	}
	keys := make([]pieceKey, 0, len(pieceBytes))
	for k := range pieceBytes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].round != keys[b].round {
			return keys[a].round < keys[b].round
		}
		return keys[a].local < keys[b].local
	})
	for _, k := range keys {
		b := pieceBytes[k]
		commRank := pp.ranks[k.local]
		p.pieces[commRank] = append(p.pieces[commRank], putPiece{
			round:  k.round,
			bufOff: roundFill[k.round],
			bytes:  b,
		})
		roundFill[k.round] += b
	}
}

// runSet expands a segment list into its ordered contiguous runs.
func runSet(segs []storage.Seg) [][2]int64 {
	out := [][2]int64{}
	storage.Enumerate(segs, 1<<22, func(off, length int64) {
		out = append(out, [2]int64{off, length})
	})
	return out
}

func comparePlans(got *plan, want *refPlan, bufSize int64) error {
	if !reflect.DeepEqual(got.partOf, want.partOf) {
		return fmt.Errorf("partOf: got %v, want %v", got.partOf, want.partOf)
	}
	if len(got.parts) != len(want.parts) {
		return fmt.Errorf("parts: got %d, want %d", len(got.parts), len(want.parts))
	}
	for i := range got.parts {
		g, w := &got.parts[i], &want.parts[i]
		if g.rankN != len(w.ranks) || (g.rankN > 0 && g.rankLo != w.ranks[0]) {
			return fmt.Errorf("part %d members: got [%d,+%d), want %v", i, g.rankLo, g.rankN, w.ranks)
		}
		if g.bytes != w.bytes || g.rounds != w.rounds {
			return fmt.Errorf("part %d shape: got (%d B, %d rounds), want (%d, %d)", i, g.bytes, g.rounds, w.bytes, w.rounds)
		}
		if !reflect.DeepEqual(g.omega, w.omega) {
			return fmt.Errorf("part %d omega: got %v, want %v", i, g.omega, w.omega)
		}
		for r := range g.flush {
			if g.flush[r].bytes != w.flush[r].bytes {
				return fmt.Errorf("part %d round %d flush bytes: got %d, want %d", i, r, g.flush[r].bytes, w.flush[r].bytes)
			}
			// The rewritten extract may compact adjacent fragments; the run
			// set itself must be identical, in order.
			if gr, wr := runSet(g.flush[r].segs), runSet(w.flush[r].segs); !reflect.DeepEqual(gr, wr) {
				return fmt.Errorf("part %d round %d flush runs: got %v, want %v", i, r, gr, wr)
			}
		}
	}
	for r := range want.pieces {
		gp := got.piecesOf(r)
		wp := want.pieces[r]
		if len(gp) != len(wp) {
			return fmt.Errorf("rank %d: %d pieces, want %d", r, len(gp), len(wp))
		}
		for i := range gp {
			if gp[i] != wp[i] {
				return fmt.Errorf("rank %d piece %d: got %+v, want %+v", r, i, gp[i], wp[i])
			}
		}
	}
	return nil
}

// TestPlanMatchesReference pins the flat-arena plan builder to the original
// map-based implementation across randomized workloads, partition counts,
// buffer sizes, and alignment units.
func TestPlanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	aligns := []int64{0, 4096, 32768}
	for trial := 0; trial < 400; trial++ {
		ranks := rng.Intn(14) + 1
		all := randomWorkload(rng, ranks)
		nAggr := rng.Intn(6) + 1
		bufSize := int64(rng.Intn(63)+1) * 1024
		align := aligns[rng.Intn(len(aligns))]

		got := buildPlan(all, nAggr, bufSize, align, false)
		want := buildPlanReference(all, nAggr, bufSize, align)
		if err := comparePlans(got, want, bufSize); err != nil {
			t.Fatalf("trial %d (ranks=%d aggr=%d buf=%d align=%d): %v", trial, ranks, nAggr, bufSize, align, err)
		}
	}
}

// TestPlanMatchesReferenceHACCLike pins the builder on the paper's
// workloads: HACC AoS/SoA interleavings and IOR blocks, where coalescing
// and dense-region fast paths all engage.
func TestPlanMatchesReferenceHACCLike(t *testing.T) {
	const ranks = 24
	varSizes := []int64{4, 4, 4, 4, 4, 4, 4, 8, 2}
	const particleBytes = 38
	particles := int64(700)
	var aos [][]storage.Seg
	for r := 0; r < ranks; r++ {
		base := int64(r) * particles * particleBytes
		var segs []storage.Seg
		var fieldOff int64
		for _, sz := range varSizes {
			segs = append(segs, storage.Strided(base+fieldOff, sz, particleBytes, particles))
			fieldOff += sz
		}
		aos = append(aos, segs)
	}
	var ior [][]storage.Seg
	for r := 0; r < ranks; r++ {
		ior = append(ior, []storage.Seg{storage.Contig(int64(r)*1<<15, 1<<15)})
	}
	for _, tc := range []struct {
		name string
		all  [][]storage.Seg
	}{{"hacc-aos", aos}, {"ior", ior}} {
		for _, nAggr := range []int{1, 3, 8} {
			for _, buf := range []int64{4096, 65536} {
				for _, align := range []int64{0, 8192} {
					got := buildPlan(tc.all, nAggr, buf, align, false)
					want := buildPlanReference(tc.all, nAggr, buf, align)
					if err := comparePlans(got, want, buf); err != nil {
						t.Fatalf("%s aggr=%d buf=%d align=%d: %v", tc.name, nAggr, buf, align, err)
					}
				}
			}
		}
	}
}
