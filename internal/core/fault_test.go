package core

// Randomized fault-schedule property suite for the recovery machinery
// (internal/fault + recover.go): with deterministic fault injection armed on
// the fabric and the storage tier and the self-healing paths enabled, every
// random round trip must still land byte-identical data on every backend;
// the same seed must produce the identical recovery-event profile run over
// run; a mid-pipeline aggregator death without recovery must surface as the
// engine's enriched deadlock diagnosis (with the round's phase label), not a
// hang; and corruption must flip end-to-end checksums exactly when repair is
// disarmed.

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"tapioca/internal/fault"
	"tapioca/internal/mpi"
	"tapioca/internal/netsim"
	"tapioca/internal/obs"
	"tapioca/internal/sim"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/workload"
)

// faultEvents is the per-run recovery-event profile used by the determinism
// property: Stats sums across ranks plus the registry's fault counters.
type faultEvents struct {
	retries, failovers, replayed, degraded, repaired, lostFlushes, lostBytes int64
	counters                                                                 map[string]int64
}

// runFaultTrip runs one write+read round trip over a faulty backend and
// returns the recovery-event profile. All data checks (VerifyData, session
// checksum parity, store checksum parity) report through fail.
func runFaultTrip(t *testing.T, be backend, fc fault.Config, rec *fault.Recovery, seed int64) faultEvents {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	decl := genDeclared(rng, be.ranks, be.ranks*3)
	sys, fab := be.build()
	plan := fault.NewPlan(fc)
	fab.SetFaults(plan)
	fsys := storage.NewFaulty(sys, plan)
	recorder := obs.NewRecorder(false)

	var mu sync.Mutex
	var failures []string
	ev := faultEvents{}
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	_, err := mpi.Run(mpi.Config{Ranks: be.ranks, RanksPerNode: be.rpn, Fabric: fab, Recorder: recorder}, func(c *mpi.Comm) {
		var f *storage.File
		if c.Rank() == 0 {
			f = fsys.Create("faulttrip", storage.FileOptions{StripeCount: 4, StripeSize: 16 << 10})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		mine := decl[c.Rank()]
		data := workload.FillData(mine, uint64(seed))
		cfg := Config{Aggregators: 4, BufferSize: 8 << 10, Faults: plan, Recovery: rec}

		w := New(c, fsys, f, cfg)
		if err := w.InitData(mine, data); err != nil {
			fail("rank %d InitData(write): %v", c.Rank(), err)
			return
		}
		if err := w.WriteAll(); err != nil {
			fail("rank %d WriteAll: %v", c.Rank(), err)
			return
		}
		writeCRC := w.DataChecksum()
		st := w.Stats()
		mu.Lock()
		ev.retries += st.Retries
		ev.failovers += st.Failovers
		ev.replayed += st.ReplayedRounds
		ev.degraded += st.DegradedFlushes
		ev.repaired += st.RepairedExtents
		ev.lostFlushes += st.LostFlushes
		ev.lostBytes += st.LostBytes
		mu.Unlock()
		c.Barrier()

		rbuf := make([][]byte, len(data))
		for i := range data {
			rbuf[i] = make([]byte, len(data[i]))
		}
		r := New(c, fsys, f, cfg)
		if err := r.InitData(mine, rbuf); err != nil {
			fail("rank %d InitData(read): %v", c.Rank(), err)
			return
		}
		if err := r.ReadAll(); err != nil {
			fail("rank %d ReadAll: %v", c.Rank(), err)
			return
		}
		if err := workload.VerifyData(mine, uint64(seed), rbuf); err != nil {
			fail("rank %d read-back: %v", c.Rank(), err)
		}
		if got := r.DataChecksum(); got != writeCRC {
			fail("rank %d checksum: wrote %#x, read %#x", c.Rank(), writeCRC, got)
		}
		var runs []storage.Seg
		for _, segs := range mine {
			storage.Enumerate(segs, 1<<20, func(off, length int64) {
				runs = append(runs, storage.Contig(off, length))
			})
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].Off < runs[j].Off })
		if crc, err := f.StoreChecksum(runs); err != nil {
			fail("rank %d StoreChecksum: %v", c.Rank(), err)
		} else if crc != writeCRC {
			fail("rank %d store checksum %#x != write checksum %#x", c.Rank(), crc, writeCRC)
		}
		c.Barrier()
	})
	for _, f := range failures {
		t.Error(f)
	}
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	snap := recorder.Registry().Snapshot()
	ev.counters = map[string]int64{}
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "fault.") || strings.HasPrefix(name, "recovery.") {
			ev.counters[name] = v
		}
	}
	return ev
}

// TestFaultRecoveryRoundTrip is the self-healing acceptance property: with
// every fault class injected (transients, latency spikes, link loss,
// stragglers, corruption, aggregator death — and a mid-run burst-buffer
// outage on the staging backend) and recovery armed, random multi-rank
// round trips still CRC-verify on every backend, and the write sessions
// absorb zero data loss.
func TestFaultRecoveryRoundTrip(t *testing.T) {
	for _, be := range dataPlaneBackends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			fc := fault.Profile(0xFA017, 0.15)
			if be.name == "burstbuffer" {
				// Kill the staging tier mid-run so the degraded direct-to-PFS
				// path runs under the same verification.
				fc.TierDownAfter = 5 * sim.Millisecond
			}
			ev := runFaultTrip(t, be, fc, fault.DefaultRecovery(), 0xC0FFEE)
			if ev.lostBytes != 0 {
				t.Errorf("recovery-enabled write lost %d bytes (%d flushes)", ev.lostBytes, ev.lostFlushes)
			}
			if ev.retries+ev.failovers+ev.repaired+ev.degraded == 0 {
				t.Error("fault plan injected nothing — the property ran vacuously")
			}
		})
	}
}

// TestFaultSameSeedSameEvents pins determinism: two fresh runs of the same
// (seed, rate) schedule produce the identical recovery-event profile — same
// Stats sums and the same registry counters, event for event.
func TestFaultSameSeedSameEvents(t *testing.T) {
	be := dataPlaneBackends()[1] // lustre
	fc := fault.Profile(0xD5EED, 0.2)
	a := runFaultTrip(t, be, fc, fault.DefaultRecovery(), 7)
	b := runFaultTrip(t, be, fc, fault.DefaultRecovery(), 7)
	if a.retries != b.retries || a.failovers != b.failovers || a.replayed != b.replayed ||
		a.degraded != b.degraded || a.repaired != b.repaired ||
		a.lostFlushes != b.lostFlushes || a.lostBytes != b.lostBytes {
		t.Fatalf("same seed, different stats:\n a: %+v\n b: %+v", a, b)
	}
	if len(a.counters) != len(b.counters) {
		t.Fatalf("same seed, different counter sets:\n a: %v\n b: %v", a.counters, b.counters)
	}
	for name, v := range a.counters {
		if b.counters[name] != v {
			t.Errorf("counter %s: %d vs %d", name, v, b.counters[name])
		}
	}
	if a.counters[fault.MetricStoreTransients] == 0 {
		t.Error("no transients injected — determinism checked vacuously")
	}
}

// TestAggregatorDeathWithoutRecoveryDiagnosed: a scheduled aggregator death
// with no failover armed must not hang the run — the orphaned members park
// at the window fence and the engine's deadlock detector names them with
// their pipeline phase labels.
func TestAggregatorDeathWithoutRecoveryDiagnosed(t *testing.T) {
	topo := topology.NewFlat(4)
	fab := netsim.New(topo, netsim.Config{})
	sys := storage.NewNullFS()
	plan := fault.NewPlan(fault.Config{Seed: 11, AggrDeathRate: 1})
	const ranks = 8
	var mu sync.Mutex
	var aggErr error
	_, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: 2, Fabric: fab}, func(c *mpi.Comm) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("orphans", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		// 4 rounds of 4 KB across one partition: the death lands in [1, 4).
		decl := [][]storage.Seg{{storage.Contig(int64(c.Rank())*8<<10, 8<<10)}}
		w := New(c, sys, f, Config{Aggregators: 1, BufferSize: 16 << 10, Faults: plan})
		if err := w.Init(decl); err != nil {
			panic(err)
		}
		if err := w.WriteAll(); err != nil {
			mu.Lock()
			aggErr = err
			mu.Unlock()
		}
		c.Barrier()
	})
	if !errors.Is(aggErr, fault.ErrAggregatorDead) {
		t.Errorf("demoted aggregator error = %v, want ErrAggregatorDead", aggErr)
	}
	if err == nil {
		t.Fatal("orphaned members completed — expected a diagnosed deadlock")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected a deadlock diagnosis, got: %v", err)
	}
	if !strings.Contains(err.Error(), "[phase: tapioca round") {
		t.Fatalf("deadlock diagnosis lacks the pipeline phase label: %v", err)
	}
}

// TestCorruptionRepair: a scheduled bit-flip per flushed round must be
// visible end-to-end (store checksum diverges from the write checksum) when
// repair is disarmed, and invisible (checksums match) when the targeted
// verify-and-repair scrub is armed.
func TestCorruptionRepair(t *testing.T) {
	for _, repair := range []bool{false, true} {
		repair := repair
		t.Run(fmt.Sprintf("repair=%v", repair), func(t *testing.T) {
			const ranks, rpn = 8, 2
			seed := int64(31337)
			rng := rand.New(rand.NewSource(seed))
			decl := genDeclared(rng, ranks, ranks*3)
			topo := topology.ThetaDragonfly(4, topology.RouteMinimal)
			fab := netsim.New(topo, netsim.Config{})
			sys := storage.NewLustre(topo, fab, storage.LustreConfig{NumOST: 4})
			plan := fault.NewPlan(fault.Config{Seed: 99, CorruptRate: 1})
			recorder := obs.NewRecorder(false)
			var rec *fault.Recovery
			if repair {
				rec = &fault.Recovery{Repair: true}
			}
			var mu sync.Mutex
			mismatches, matches := 0, 0
			_, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: rpn, Fabric: fab, Recorder: recorder}, func(c *mpi.Comm) {
				var f *storage.File
				if c.Rank() == 0 {
					f = sys.Create("corrupt", storage.FileOptions{StripeCount: 4, StripeSize: 16 << 10})
				}
				f = c.Bcast(0, 8, f).(*storage.File)
				mine := decl[c.Rank()]
				data := workload.FillData(mine, uint64(seed))
				w := New(c, sys, f, Config{Aggregators: 2, BufferSize: 8 << 10, Faults: plan, Recovery: rec})
				if err := w.InitData(mine, data); err != nil {
					panic(err)
				}
				if err := w.WriteAll(); err != nil {
					panic(err)
				}
				writeCRC := w.DataChecksum()
				c.Barrier()
				var runs []storage.Seg
				for _, segs := range mine {
					storage.Enumerate(segs, 1<<20, func(off, length int64) {
						runs = append(runs, storage.Contig(off, length))
					})
				}
				sort.Slice(runs, func(i, j int) bool { return runs[i].Off < runs[j].Off })
				crc, err := f.StoreChecksum(runs)
				if err != nil {
					panic(err)
				}
				mu.Lock()
				if crc == writeCRC {
					matches++
				} else {
					mismatches++
				}
				mu.Unlock()
				c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			snap := recorder.Registry().Snapshot()
			if snap.Counters[fault.MetricCorruptions] == 0 {
				t.Fatal("no corruption injected — the property ran vacuously")
			}
			if repair {
				if mismatches != 0 {
					t.Errorf("repair armed, but %d ranks see a damaged store checksum", mismatches)
				}
				if snap.Counters[fault.MetricRepairedExtents] == 0 {
					t.Error("repair armed but no extents repaired")
				}
			} else if mismatches == 0 {
				t.Errorf("repair disarmed, but all %d rank checksums still match — damage invisible", matches)
			}
		})
	}
}
