// Package core implements TAPIOCA: topology-aware two-phase I/O with
// declared operations, pipelined aggregation buffers, and cost-model
// aggregator placement — the paper's primary contribution.
//
// The three mechanisms, mapped to the paper:
//
//  1. Declared I/O (§IV-A, Fig. 2): the application declares every upcoming
//     write up front (Init). The library orders all declared data by file
//     offset into a per-partition aggregation stream and cuts it into
//     rounds of exactly BufferSize bytes, so aggregation buffers are
//     completely filled before each flush — unlike MPI-IO, where every
//     collective call flushes its own partial buffers.
//  2. Pipelined buffers (§IV-A, Alg. 3): two buffers per aggregator; data
//     lands via one-sided puts closed by a fence, while the other buffer
//     flushes with a non-blocking write. The fence is the round barrier.
//  3. Topology-aware placement (§IV-B, Fig. 3): per partition, every rank
//     evaluates C1 (aggregation cost: Σ l·d(i,A) + ω(i,A)/B(i→A)) plus C2
//     (I/O cost: l·d(A,IO) + ω(A,IO)/B(A→IO), zero where the platform
//     hides I/O-node locality) and an Allreduce(MINLOC) elects the
//     minimum-cost rank.
//
// API note: the paper's TAPIOCA_Write is called once per declared variable;
// the library is bulk-synchronous and applications call the writes
// back-to-back. This implementation accrues the whole pipeline's virtual
// time when the last declared operation is written (Write(i) marks
// progress; WriteAll is the common path), which is timing-equivalent for
// such applications and keeps the round/fence bookkeeping in one place.
package core

import (
	"fmt"

	"tapioca/internal/cost"
	"tapioca/internal/dataplane"
	"tapioca/internal/fault"
	"tapioca/internal/mpi"
	"tapioca/internal/obs"
	"tapioca/internal/storage"
	"tapioca/internal/tree"
)

// Aggregator placement presets, re-exported from the shared cost engine
// (internal/cost) so existing configurations keep working. Any
// cost.Placement implementation may be plugged into Config.Placement.
var (
	// PlacementTopologyAware is the paper's cost-model election (default).
	PlacementTopologyAware = cost.TopologyAware()
	// PlacementRankOrder picks each partition's first rank (the naive
	// baseline the paper criticizes).
	PlacementRankOrder = cost.RankOrder()
	// PlacementWorst deliberately picks the highest-cost candidate — an
	// adversarial ablation bound.
	PlacementWorst = cost.Worst()
	// PlacementRandom picks a deterministic pseudo-random rank.
	PlacementRandom = cost.Random()
	// PlacementTwoLevel pre-aggregates within each node before the
	// inter-node election (Kang et al.'s intra-node direction).
	PlacementTwoLevel = cost.TwoLevel()
)

// ElectionDisabled is the Config.ElectionOverhead sentinel that charges no
// election compute time at all. A plain zero means "use the default"; before
// the sentinel existed, zero overhead was unrepresentable.
const ElectionDisabled = -1

// Config tunes a TAPIOCA writer/reader.
type Config struct {
	// Aggregators is the number of aggregators == partitions
	// ("the number of aggregators defines the partition size", §IV-B).
	// Default: one per 16 ranks.
	Aggregators int
	// BufferSize is the aggregation buffer size (two are allocated per
	// aggregator). Default 16 MB.
	BufferSize int64
	// Placement selects the aggregator election strategy. Default:
	// PlacementTopologyAware.
	Placement cost.Placement
	// SingleBuffer disables double-buffering (ablation): the aggregator
	// blocks on each flush before the next round's fence.
	SingleBuffer bool
	// IntraNodeStaging enables intra-node pre-aggregation on the write
	// pipeline: ranks co-located on a node deposit their round payloads into
	// the node leader's staging buffer (a shared-memory copy at memory
	// bandwidth — never a fabric message), and the leader issues a single
	// coalesced inter-node RMA per (node, aggregator, round) instead of one
	// put per rank. Cuts fabric message count ~ranks-per-node-fold when
	// aggregators are remote; a node already hosting its aggregator, and any
	// node with a single partition member (ranks-per-node = 1), takes the
	// flat path unchanged — staging there would be a wasted copy. Default
	// off: the flat path is byte-identical with the knob down.
	IntraNodeStaging bool
	// Tree selects a synthesized aggregation-tree shape for the write
	// pipeline (see internal/tree and treeplan.go): node-group leaders are
	// arranged into interior reduction levels — fan-in-k relays, one relay
	// per topology group, dimension-ordered chains — each forwarding its
	// subtree as a single coalesced put per round. Tree shapes imply
	// IntraNodeStaging (interior relays only pay off over node-coalesced
	// traffic); the degenerate shapes run today's paths verbatim: flat is
	// exactly the default pipeline, staged exactly IntraNodeStaging. Nil
	// (the default) disables the machinery entirely.
	Tree *tree.Shape
	// ElectionOverhead is the local cost-model computation time charged per
	// rank during Init, in nanoseconds. Zero selects the 50 µs default;
	// ElectionDisabled (or any negative value) charges nothing.
	ElectionOverhead int64
	// Codec enables the per-round reduction stage: each aggregator
	// compresses a filled buffer before flushing it, trading compute time
	// for flush bytes. Virtual time prices the codec's modeled ratio and
	// rates (deterministic, data-independent); with the data plane on, the
	// real bytes additionally round-trip through the codec so a broken
	// implementation fails verification. Nil disables the stage (default).
	Codec dataplane.Codec
	// Faults attaches a deterministic fault plan (see internal/fault):
	// aggregator deaths and round corruption are decided here; store and
	// network faults additionally require the fabric/storage wrappers to
	// carry the same plan. Nil (the default) leaves every fault path
	// compiled out of the session — the zero-fault pipeline is byte-
	// identical to a session that never heard of faults.
	Faults *fault.Plan
	// Recovery arms the self-healing machinery under Faults: bounded retry
	// with virtual-time backoff, aggregator failover with §IV-B re-election
	// and round replay, degraded-mode writes past a dead burst-buffer tier,
	// and verify-and-repair of corrupted extents. Nil with Faults set means
	// faults inject but nothing recovers: losses are counted, and a dead
	// aggregator deadlocks its partition (diagnosed by the engine).
	Recovery *fault.Recovery
}

// ApplyDefaults resolves the zero-value fields to the library defaults for a
// session over the given rank count — the same resolution New performs, made
// public so tools (the autotuner, reports) can inspect what a configuration
// will actually run with.
func (c *Config) ApplyDefaults(ranks int) {
	if c.BufferSize <= 0 {
		c.BufferSize = 16 << 20
	}
	if c.Aggregators <= 0 {
		c.Aggregators = ranks / 16
	}
	if c.Aggregators < 1 {
		c.Aggregators = 1
	}
	if c.Aggregators > ranks {
		c.Aggregators = ranks
	}
	if c.ElectionOverhead == 0 {
		c.ElectionOverhead = 50_000
	}
	if c.Placement == nil {
		c.Placement = PlacementTopologyAware
	}
	if c.Tree != nil && c.Tree.Staged() {
		// Tree shapes ride on the intra-node staging base level.
		c.IntraNodeStaging = true
	}
}

func (c *Config) setDefaults(comm *mpi.Comm) {
	c.ApplyDefaults(comm.Size())
}

// Writer is one rank's handle on a TAPIOCA collective I/O session against
// one file. Create with New, declare with Init, then Write/WriteAll or
// Read/ReadAll. A session performs either writes or reads, not both.
type Writer struct {
	c   *mpi.Comm
	sys storage.System
	f   *storage.File
	cfg Config

	plan     *plan
	pc       *mpi.Comm // partition sub-communicator
	win      *mpi.Win  // window over the aggregator's two buffers
	part     int       // my partition index
	aggLocal int       // aggregator's rank within the partition comm
	isAgg    bool

	written int // count of declared ops already marked written
	nops    int
	ran     bool // zero-op session already attended the pipeline

	// pl is the rank's data plane: non-nil when InitData attached real
	// payload buffers. Phantom sessions (Init) leave it nil and move only
	// virtual byte counts.
	pl *dataplane.Plane
	// stage is the rank's intra-node staging schedule: non-nil only when
	// Config.IntraNodeStaging is set and this rank's node group actually
	// coalesces (see staging.go). The flat pipeline never looks at it.
	stage *stagePlan
	// tp is the rank's aggregation-tree role: non-nil only when Config.Tree
	// names a non-degenerate shape and the synthesized tree has interior
	// levels somewhere (see treeplan.go). Degenerate shapes never allocate
	// it, keeping their pipelines byte-identical to the flat/staged paths.
	tp *treeRole
	// Codec scratch, reused across rounds. Only the pipeline's single
	// in-flight store job touches these (jobs are joined before the next
	// launch), so plain fields are race-free.
	compB   []byte
	decompB []byte

	// rec is the engine's flight recorder (nil when observability is off;
	// cached by InitData so the pipeline pays one nil check per phase
	// boundary, never a lookup).
	rec *obs.Recorder

	// degradedSys, once set, replaces sys for the rest of the session's
	// flush traffic: the degraded-mode fallback tier a writer switches to
	// when Config.Faults takes the primary tier down (see recover.go).
	degradedSys storage.System

	stats Stats
}

// Stats reports what a session did from this rank's perspective.
type Stats struct {
	// Partition is this rank's partition index.
	Partition int
	// Rounds is the partition's aggregation round count.
	Rounds int
	// BytesPut counts bytes this rank put into aggregation buffers.
	BytesPut int64
	// BytesFlushed counts bytes this rank flushed to storage (aggregators).
	BytesFlushed int64
	// Flushes counts buffer flushes issued by this rank.
	Flushes int64
	// BytesCompressed counts the post-codec bytes of this rank's flush
	// stream (aggregators, codec sessions only): the achieved compressed
	// sizes when real payload flowed through the codec, the modeled sizes
	// in phantom mode and on the read path. Zero without a Codec.
	BytesCompressed int64
	// AggregatorWorldRank is the elected aggregator's world rank.
	AggregatorWorldRank int
	// ElectionCost is this rank's own C1+C2 candidacy cost in seconds
	// (cost-model placements only).
	ElectionCost float64
	// Placement names the strategy that ran the election.
	Placement string

	// TreeLevels and TreeFanIn describe the synthesized aggregation tree of
	// this rank's partition (Config.Tree sessions with interior levels only;
	// zero otherwise). TreeLevelMessages[d] counts the coalesced inter-node
	// sends this rank issued from tree depth d (index 0 unused).
	TreeLevels        int
	TreeFanIn         int
	TreeLevelMessages []int64

	// Recovery accounting (zero without Config.Faults).
	//
	// Retries counts transient-store retries this rank issued; BackoffNs is
	// the virtual backoff time they waited. Failovers counts aggregator
	// failovers this rank's partition performed (every member reports its
	// partition's failovers); ReplayedRounds the rounds this rank replayed
	// as the replacement aggregator. DegradedFlushes counts flushes served
	// by the degraded fallback tier, RepairedExtents the corrupt extents
	// scrubbed and rewritten, and LostFlushes/LostBytes the flushes absorbed
	// as data loss because no recovery path remained.
	Retries         int64
	BackoffNs       int64
	Failovers       int64
	ReplayedRounds  int64
	DegradedFlushes int64
	RepairedExtents int64
	LostFlushes     int64
	LostBytes       int64
}

// New creates a TAPIOCA session on comm for the given storage file.
func New(c *mpi.Comm, sys storage.System, f *storage.File, cfg Config) *Writer {
	cfg.setDefaults(c)
	return &Writer{c: c, sys: sys, f: f, cfg: cfg}
}

// Stats returns this rank's session statistics.
func (w *Writer) Stats() Stats { return w.stats }

// Aggregator reports whether this rank was elected aggregator.
func (w *Writer) Aggregator() bool { return w.isAgg }

// Rounds returns the number of aggregation rounds of this rank's partition.
func (w *Writer) Rounds() int {
	if w.plan == nil {
		return 0
	}
	return w.plan.parts[w.part].rounds
}

// File returns the underlying storage file.
func (w *Writer) File() *storage.File { return w.f }

// Init declares the upcoming operations: declared[i] is this rank's file
// access pattern for the i-th TAPIOCA_Write/Read call. Collective. It
// builds the global round schedule, splits partition communicators, elects
// aggregators, and allocates the RMA windows. Sessions initialized with
// Init run in phantom mode: only virtual byte counts move (the paper-scale
// default); use InitData to carry real payload bytes.
func (w *Writer) Init(declared [][]storage.Seg) error {
	return w.InitData(declared, nil)
}

// InitData is Init with the data plane enabled: data[i] holds declared[i]'s
// payload bytes packed in segment enumeration order. For a write session the
// buffers are sources; for a read session the same buffers are filled by
// Read/ReadAll. Every rank of the communicator must pass payload buffers (or
// every rank none — data-plane mode is a collective property of the
// session). The aggregation pipeline then moves the actual bytes: puts copy
// into real aggregator window memory, flushes land in the file's backing
// store (a MemStore is attached on first use; see storage.File.SetStore),
// and DataChecksum exposes the end-to-end verification hook.
func (w *Writer) InitData(declared [][]storage.Seg, data [][]byte) error {
	if w.plan != nil {
		return fmt.Errorf("core: Init called twice on writer for %q", w.f.Name)
	}
	if data != nil {
		pl, err := dataplane.New(declared, data)
		if err != nil {
			return err
		}
		w.pl = pl
	}
	c := w.c
	w.rec = c.Proc().Recorder()
	w.nops = len(declared)
	// Flatten this rank's declared segments; the schedule orders by file
	// offset, so per-call boundaries don't matter to it.
	var mine []storage.Seg
	for _, segs := range declared {
		for _, s := range segs {
			if !s.Empty() {
				mine = append(mine, s)
			}
		}
	}
	bytes := int64(32*len(mine) + 16)
	unit := w.sys.OptimalUnit(w.f)
	withData := w.pl != nil
	w.plan = c.Collective("tapioca-init", mine, bytes, func(contribs []any) any {
		all := make([][]storage.Seg, len(contribs))
		for i, x := range contribs {
			if x != nil {
				all[i] = x.([]storage.Seg)
			}
		}
		return buildPlan(all, w.cfg.Aggregators, w.cfg.BufferSize, unit, withData)
	}).(*plan)
	// A data-plane-mode mismatch (some ranks passed payload buffers, others
	// did not) is diagnosed here but reported only after the remaining
	// collective setup: Split and WinCreate involve every rank, so bailing
	// early would hang the agreeing ranks instead of surfacing the error.
	var modeErr error
	if w.plan.withData != withData {
		modeErr = fmt.Errorf("core: data-plane mode is collective — rank %d passed payload buffers %v but the session plan was built with %v",
			c.Rank(), withData, w.plan.withData)
		if !w.plan.withData {
			w.pl = nil // the plan has no layouts; run this rank phantom
		}
	}

	w.part = w.plan.partOf[c.Rank()]
	w.pc = c.Split(w.part, c.Rank())

	// Election (each rank computes its own candidacy cost locally; the
	// ElectionDisabled sentinel charges nothing).
	if w.cfg.ElectionOverhead > 0 {
		c.Compute(w.cfg.ElectionOverhead)
	}
	w.aggLocal = w.elect()
	w.isAgg = w.pc.Rank() == w.aggLocal
	w.stats.Partition = w.part
	w.stats.Placement = w.cfg.Placement.Name()
	w.stats.Rounds = w.plan.parts[w.part].rounds
	w.stats.AggregatorWorldRank = w.pc.WorldRankOf(w.aggLocal)

	// Two pipelined buffers, exposed as one window of 2×BufferSize.
	w.win = w.pc.WinCreate(2 * w.cfg.BufferSize)
	if w.cfg.IntraNodeStaging {
		w.stage = w.setupStaging()
	}
	if w.cfg.Tree != nil && !w.cfg.Tree.Degenerate() {
		w.tp = w.setupTree(*w.cfg.Tree)
		if w.tp != nil {
			w.stats.TreeLevels = w.tp.t.Levels
			w.stats.TreeFanIn = w.tp.t.MaxFanIn
		}
	}
	return modeErr
}

// checkOp validates a Write/Read call against the session state. Misuse
// returns a descriptive error (it used to panic): the session must be
// initialized, i must name a declared operation, and operations complete in
// declared order.
func (w *Writer) checkOp(verb string, i int) error {
	if w.plan == nil {
		return fmt.Errorf("core: %s(%d) before Init on writer for %q", verb, i, w.f.Name)
	}
	if i < 0 || i >= w.nops {
		return fmt.Errorf("core: %s(%d) out of range (%d operations declared)", verb, i, w.nops)
	}
	if i != w.written {
		return fmt.Errorf("core: %s(%d) out of declared order (next is %d)", verb, i, w.written)
	}
	return nil
}

// Write marks the i-th declared operation written. When the final declared
// operation arrives, the full aggregation pipeline executes (see the
// package comment for why). Collective across the communicator.
func (w *Writer) Write(i int) error {
	if err := w.checkOp("Write", i); err != nil {
		return err
	}
	w.written++
	if w.written == w.nops {
		return w.runWrite()
	}
	return nil
}

// WriteAll performs all declared writes. A rank that declared no operations
// still participates in its partition's aggregation rounds (fences are
// collective), so WriteAll is required on every rank even when a rank
// contributes nothing.
func (w *Writer) WriteAll() error {
	if w.plan == nil {
		return fmt.Errorf("core: WriteAll before Init on writer for %q", w.f.Name)
	}
	if w.nops == 0 {
		if w.ran {
			return nil
		}
		w.ran = true
		return w.runWrite()
	}
	for i := w.written; i < w.nops; i++ {
		if err := w.Write(i); err != nil {
			return err
		}
	}
	return nil
}

// Read marks the i-th declared operation for reading; the pipeline runs on
// the last one, mirroring Write. In a data-plane session the payload
// buffers passed to InitData are filled once the final operation completes.
func (w *Writer) Read(i int) error {
	if err := w.checkOp("Read", i); err != nil {
		return err
	}
	w.written++
	if w.written == w.nops {
		return w.runRead()
	}
	return nil
}

// ReadAll performs all declared reads, with the same zero-operation
// participation contract as WriteAll.
func (w *Writer) ReadAll() error {
	if w.plan == nil {
		return fmt.Errorf("core: ReadAll before Init on writer for %q", w.f.Name)
	}
	if w.nops == 0 {
		if w.ran {
			return nil
		}
		w.ran = true
		return w.runRead()
	}
	for i := w.written; i < w.nops; i++ {
		if err := w.Read(i); err != nil {
			return err
		}
	}
	return nil
}

// DataChecksum returns the CRC-64/ECMA of this rank's payload bytes in
// file-offset order, or 0 for phantom sessions. A write session's checksum
// equals storage.File.StoreChecksum over the same extents and the checksum
// of a read session that declared the same pattern — the end-to-end
// verification contract.
func (w *Writer) DataChecksum() uint64 {
	if w.pl == nil {
		return 0
	}
	return w.pl.Checksum()
}
