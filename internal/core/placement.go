package core

import (
	"tapioca/internal/cost"
)

// elect chooses the partition's aggregator (a partition-comm rank) under the
// configured placement strategy. Collective on the partition communicator:
// every member evaluates its own candidacy against the shared cost model
// (internal/cost) and the placement's reduction picks the winner. The C1/C2
// arithmetic itself lives in cost.Model — the same engine the MPI-IO
// baseline consumes — so this file only wires the partition's data into an
// election.
func (w *Writer) elect() int {
	pc := w.pc
	pp := &w.plan.parts[w.part]

	// Every member sees the identical table, so the first caller builds it
	// once on the shared plan and the partition's other ranks reuse it —
	// election setup is O(P) per partition, not O(P) per rank. (Engine procs
	// are serial, so the lazy fill needs no synchronization; placements
	// treat Members as read-only.)
	if pp.members == nil {
		members := make([]cost.Member, pc.Size())
		for local := range members {
			members[local] = cost.Member{Node: pc.NodeOfRank(local), Bytes: pp.omega[local]}
		}
		pp.members = members
	}
	e := &cost.Election{
		Model:       w.model(),
		Members:     pp.members,
		IOBytes:     pp.bytes,
		Partition:   w.part,
		Self:        pc.Rank(),
		MinLoc:      pc.AllreduceMinLoc,
		MaxLoc:      pc.AllreduceMaxLoc,
		Barrier:     pc.Barrier,
		ObserveCost: func(c float64) { w.stats.ElectionCost = c },
	}
	return w.cfg.Placement.Elect(e)
}

// model builds the session's cost model: the machine-wide memoized distance
// cache plus the storage tier's C2 hook (a burst buffer absorbs flushes at
// ingest speed, so its cost opinion overrides the uplink formula).
func (w *Writer) model() *cost.Model {
	return cost.MachineModel(w.c.World().Fabric().Distances(), w.sys)
}
