package core

import (
	"tapioca/internal/sim"
	"tapioca/internal/topology"
)

// elect chooses the partition's aggregator (a partition-comm rank) under the
// configured placement strategy. Collective on the partition communicator.
func (w *Writer) elect() int {
	pc := w.pc
	switch w.cfg.Placement {
	case PlacementRankOrder:
		pc.Barrier()
		return 0
	case PlacementRandom:
		pc.Barrier()
		h := uint64(w.part+1) * 0x9E3779B97F4A7C15
		h ^= h >> 33
		return int(h % uint64(pc.Size()))
	case PlacementWorst:
		cost := w.candidacyCost()
		w.stats.ElectionCost = cost
		_, loc := pc.AllreduceMaxLoc(cost, pc.Rank())
		return loc
	default: // PlacementTopologyAware
		cost := w.candidacyCost()
		w.stats.ElectionCost = cost
		_, loc := pc.AllreduceMinLoc(cost, pc.Rank())
		return loc
	}
}

// candidacyCost evaluates this rank's own TopoAware(A) = C1 + C2 (paper
// Fig. 3): the cost of every partition member shipping its data to this
// rank, plus the cost of forwarding the aggregate to the I/O node. Costs
// are seconds. When the platform hides I/O-node locality (Theta), C2 = 0,
// exactly as the paper prescribes.
func (w *Writer) candidacyCost() float64 {
	topo := w.topoOf()
	pp := &w.plan.parts[w.part]
	pc := w.pc
	myNode := pc.Node()
	latency := sim.ToSeconds(topo.Latency())
	fabricBW := topo.Bandwidth(topology.LevelFabric)

	// C1: aggregation cost, summed over members that would send to me.
	var c1 float64
	for local, omega := range pp.omega {
		if local == pc.Rank() || omega == 0 {
			continue
		}
		node := pc.NodeOfRank(local)
		d := float64(topo.Distance(node, myNode))
		c1 += latency*d + float64(omega)/fabricBW
	}

	// C2: I/O-phase cost from me to the storage gateway.
	var c2 float64
	if ion := topo.IONodeOf(myNode); ion != topology.IONUnknown {
		d := float64(topo.DistanceToION(myNode, ion))
		c2 = latency*d + float64(pp.bytes)/topo.Bandwidth(topology.LevelIOUplink)
	}
	return c1 + c2
}
