package core

// Randomized round-trip property suite for the data plane: random
// Contig/Strided declared patterns across ranks, written with real payload
// bytes through the full aggregation pipeline (puts into window memory,
// double-buffered flushes into the backing store), then read back by a
// fresh session and verified byte-for-byte and by CRC-64 checksum — over
// every storage backend (NullFS, Lustre, GPFS, BurstBuffer). The suite also
// runs under the race detector in CI (the race-hotpath job covers
// internal/core), exercising the fence-ordered window copies.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"tapioca/internal/dataplane"
	"tapioca/internal/mpi"
	"tapioca/internal/netsim"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/workload"
)

// genDeclared builds a random non-overlapping declared pattern: file space
// is walked once, handing each block to a random rank as a contiguous or
// strided segment in one of its declared operations. Occasionally two ranks
// interleave runs within a shared region, and a single rank interleaves two
// of its own operations — the layouts that stress buffer ordering hardest.
func genDeclared(rng *rand.Rand, ranks, blocks int) [][][]storage.Seg {
	decl := make([][][]storage.Seg, ranks)
	place := func(r, op int, s storage.Seg) {
		for len(decl[r]) <= op {
			decl[r] = append(decl[r], nil)
		}
		decl[r][op] = append(decl[r][op], s)
	}
	cursor := int64(rng.Intn(512))
	for b := 0; b < blocks; b++ {
		r := rng.Intn(ranks)
		op := rng.Intn(3)
		switch rng.Intn(4) {
		case 0: // contiguous block
			s := storage.Contig(cursor, int64(1+rng.Intn(4096)))
			place(r, op, s)
			cursor = s.End()
		case 1: // strided block
			l := int64(1 + rng.Intn(256))
			st := l + int64(rng.Intn(128))
			s := storage.Strided(cursor, l, st, int64(1+rng.Intn(8)))
			place(r, op, s)
			cursor = s.End()
		case 2: // two ranks interleave one region
			r2 := rng.Intn(ranks)
			l := int64(1 + rng.Intn(128))
			n := int64(2 + rng.Intn(5))
			place(r, op, storage.Strided(cursor, l, 2*l, n))
			place(r2, rng.Intn(3), storage.Strided(cursor+l, l, 2*l, n))
			cursor += 2 * l * n
		default: // one rank interleaves two of its own operations
			l := int64(1 + rng.Intn(128))
			n := int64(2 + rng.Intn(5))
			place(r, 0, storage.Strided(cursor, l, 2*l, n))
			place(r, 1+rng.Intn(2), storage.Strided(cursor+l, l, 2*l, n))
			cursor += 2 * l * n
		}
		cursor += int64(rng.Intn(64)) // occasional holes
	}
	return decl
}

// backend bundles one storage system under test with its topology/fabric.
type backend struct {
	name  string
	ranks int
	rpn   int
	build func() (storage.System, *netsim.Fabric)
}

func dataPlaneBackends() []backend {
	return []backend{
		{"nullfs", 16, 2, func() (storage.System, *netsim.Fabric) {
			topo := topology.NewFlat(8)
			return storage.NewNullFS(), netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
		}},
		{"lustre", 16, 2, func() (storage.System, *netsim.Fabric) {
			topo := topology.ThetaDragonfly(8, topology.RouteMinimal)
			fab := netsim.New(topo, netsim.Config{})
			return storage.NewLustre(topo, fab, storage.LustreConfig{NumOST: 8}), fab
		}},
		{"gpfs", 128, 1, func() (storage.System, *netsim.Fabric) {
			topo := topology.MiraTorus(128)
			fab := netsim.New(topo, netsim.Config{})
			return storage.NewGPFS(topo, fab, storage.GPFSConfig{}), fab
		}},
		{"burstbuffer", 16, 2, func() (storage.System, *netsim.Fabric) {
			topo := topology.ThetaDragonfly(8, topology.RouteMinimal)
			fab := netsim.New(topo, netsim.Config{})
			lustre := storage.NewLustre(topo, fab, storage.LustreConfig{NumOST: 8})
			return storage.NewBurstBuffer(lustre, storage.BurstBufferConfig{}), fab
		}},
	}
}

// TestDataPlaneRoundTrip is the acceptance property: a multi-rank random
// strided write with the data plane enabled, followed by a fresh read
// session over the same pattern, returns byte-identical data on every
// backend — checked run-by-run (workload.VerifyData), by per-rank checksum
// parity (write session vs read session vs backing store), and with
// multiple aggregation rounds in flight (small buffers).
func TestDataPlaneRoundTrip(t *testing.T) {
	trials := 3
	if testing.Short() || raceEnabledCore {
		trials = 1
	}
	for _, be := range dataPlaneBackends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				seed := int64(1000*trial) + 17
				rng := rand.New(rand.NewSource(seed))
				decl := genDeclared(rng, be.ranks, be.ranks*3)
				sys, fab := be.build()
				var mu sync.Mutex
				var failures []string
				fail := func(format string, args ...any) {
					mu.Lock()
					failures = append(failures, fmt.Sprintf(format, args...))
					mu.Unlock()
				}
				_, err := mpi.Run(mpi.Config{Ranks: be.ranks, RanksPerNode: be.rpn, Fabric: fab}, func(c *mpi.Comm) {
					var f *storage.File
					if c.Rank() == 0 {
						f = sys.Create("roundtrip", storage.FileOptions{StripeCount: 4, StripeSize: 16 << 10})
					}
					f = c.Bcast(0, 8, f).(*storage.File)
					mine := decl[c.Rank()]
					data := workload.FillData(mine, uint64(seed))
					cfg := Config{Aggregators: 4, BufferSize: 8 << 10, SingleBuffer: trial%2 == 1}

					w := New(c, sys, f, cfg)
					if err := w.InitData(mine, data); err != nil {
						fail("rank %d InitData(write): %v", c.Rank(), err)
						return
					}
					if err := w.WriteAll(); err != nil {
						fail("rank %d WriteAll: %v", c.Rank(), err)
						return
					}
					writeCRC := w.DataChecksum()
					c.Barrier()

					rbuf := make([][]byte, len(data))
					for i := range data {
						rbuf[i] = make([]byte, len(data[i]))
					}
					r := New(c, sys, f, cfg)
					if err := r.InitData(mine, rbuf); err != nil {
						fail("rank %d InitData(read): %v", c.Rank(), err)
						return
					}
					if err := r.ReadAll(); err != nil {
						fail("rank %d ReadAll: %v", c.Rank(), err)
						return
					}
					if err := workload.VerifyData(mine, uint64(seed), rbuf); err != nil {
						fail("rank %d read-back: %v", c.Rank(), err)
					}
					if got := r.DataChecksum(); got != writeCRC {
						fail("rank %d checksum: wrote %#x, read %#x", c.Rank(), writeCRC, got)
					}
					// Store-side checksum over the rank's extents in file-offset
					// run order (the Plane's checksum order): enumerate and sort.
					var runs []storage.Seg
					for _, segs := range mine {
						storage.Enumerate(segs, 1<<20, func(off, length int64) {
							runs = append(runs, storage.Contig(off, length))
						})
					}
					sort.Slice(runs, func(i, j int) bool { return runs[i].Off < runs[j].Off })
					if crc, err := f.StoreChecksum(runs); err != nil {
						fail("rank %d StoreChecksum: %v", c.Rank(), err)
					} else if crc != writeCRC {
						fail("rank %d store checksum %#x != write checksum %#x", c.Rank(), crc, writeCRC)
					}
					c.Barrier()
				})
				for _, f := range failures {
					t.Error(f)
				}
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if t.Failed() {
					t.Fatalf("trial %d (seed %d) failed", trial, seed)
				}
			}
		})
	}
}

// TestDataPlaneCodecRoundTrip is the reduction-stage property: with the LZ
// codec in the flush path, every round's real bytes are compressed and
// decompressed on their way to the backing store, so the same end-to-end
// verification (VerifyData + checksum parity against the store) proves the
// codec lossless under the full pipeline — over both MemStore (default) and
// an on-disk FileStore.
func TestDataPlaneCodecRoundTrip(t *testing.T) {
	for _, backing := range []string{"memstore", "filestore"} {
		backing := backing
		t.Run(backing, func(t *testing.T) {
			const ranks, rpn = 16, 2
			seed := int64(4242)
			rng := rand.New(rand.NewSource(seed))
			decl := genDeclared(rng, ranks, ranks*3)
			topo := topology.ThetaDragonfly(8, topology.RouteMinimal)
			fab := netsim.New(topo, netsim.Config{})
			sys := storage.NewLustre(topo, fab, storage.LustreConfig{NumOST: 8})
			dir := t.TempDir()
			var mu sync.Mutex
			var failures []string
			var aggCompressed int64
			fail := func(format string, args ...any) {
				mu.Lock()
				failures = append(failures, fmt.Sprintf(format, args...))
				mu.Unlock()
			}
			_, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: rpn, Fabric: fab}, func(c *mpi.Comm) {
				var f *storage.File
				if c.Rank() == 0 {
					f = sys.Create("codec", storage.FileOptions{StripeCount: 4, StripeSize: 16 << 10})
					if backing == "filestore" {
						fs, err := storage.NewFileStore(dir + "/codec.bin")
						if err != nil {
							panic(err)
						}
						f.SetStore(fs)
					}
				}
				f = c.Bcast(0, 8, f).(*storage.File)
				mine := decl[c.Rank()]
				data := workload.FillData(mine, uint64(seed))
				cfg := Config{Aggregators: 4, BufferSize: 8 << 10, Codec: dataplane.LZ}

				w := New(c, sys, f, cfg)
				if err := w.InitData(mine, data); err != nil {
					fail("rank %d InitData(write): %v", c.Rank(), err)
					return
				}
				if err := w.WriteAll(); err != nil {
					fail("rank %d WriteAll: %v", c.Rank(), err)
					return
				}
				writeCRC := w.DataChecksum()
				if w.Aggregator() {
					mu.Lock()
					aggCompressed += w.Stats().BytesCompressed
					mu.Unlock()
				}
				c.Barrier()

				rbuf := make([][]byte, len(data))
				for i := range data {
					rbuf[i] = make([]byte, len(data[i]))
				}
				r := New(c, sys, f, cfg)
				if err := r.InitData(mine, rbuf); err != nil {
					fail("rank %d InitData(read): %v", c.Rank(), err)
					return
				}
				if err := r.ReadAll(); err != nil {
					fail("rank %d ReadAll: %v", c.Rank(), err)
					return
				}
				if err := workload.VerifyData(mine, uint64(seed), rbuf); err != nil {
					fail("rank %d read-back: %v", c.Rank(), err)
				}
				if got := r.DataChecksum(); got != writeCRC {
					fail("rank %d checksum: wrote %#x, read %#x", c.Rank(), writeCRC, got)
				}
				var runs []storage.Seg
				for _, segs := range mine {
					storage.Enumerate(segs, 1<<20, func(off, length int64) {
						runs = append(runs, storage.Contig(off, length))
					})
				}
				sort.Slice(runs, func(i, j int) bool { return runs[i].Off < runs[j].Off })
				if crc, err := f.StoreChecksum(runs); err != nil {
					fail("rank %d StoreChecksum: %v", c.Rank(), err)
				} else if crc != writeCRC {
					fail("rank %d store checksum %#x != write checksum %#x", c.Rank(), crc, writeCRC)
				}
				c.Barrier()
			})
			for _, f := range failures {
				t.Error(f)
			}
			if err != nil {
				t.Fatal(err)
			}
			if aggCompressed == 0 {
				t.Error("no aggregator reported compressed flush bytes")
			}
		})
	}
}

// TestDataPlaneModeMismatch: a rank attaching payload buffers while the
// session plan was built phantom is a collective misuse that must surface
// as a descriptive error — and Init still completes the collective setup
// (Split, WinCreate are comm-wide), so the agreeing ranks neither hang nor
// crash and the session can even finish as a phantom run.
func TestDataPlaneModeMismatch(t *testing.T) {
	topo := topology.NewFlat(2)
	fab := netsim.New(topo, netsim.Config{})
	sys := storage.NewNullFS()
	var mu sync.Mutex
	errs := map[int]error{}
	_, err := mpi.Run(mpi.Config{Ranks: 2, RanksPerNode: 1, Fabric: fab}, func(c *mpi.Comm) {
		f := sys.Lookup("f")
		if c.Rank() == 0 && f == nil {
			f = sys.Create("f", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		w := New(c, sys, f, Config{Aggregators: 1})
		decl := [][]storage.Seg{{storage.Contig(int64(c.Rank())*100, 100)}}
		var err error
		if c.Rank() == 0 {
			err = w.InitData(decl, [][]byte{make([]byte, 100)})
		} else {
			err = w.Init(decl)
		}
		mu.Lock()
		errs[c.Rank()] = err
		mu.Unlock()
		// Even an application that ignores the error must not hang or
		// nil-deref: the session degrades to phantom and completes.
		if werr := w.WriteAll(); werr != nil {
			panic(werr)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	mismatches := 0
	for r, e := range errs {
		if e == nil {
			continue
		}
		if !strings.Contains(e.Error(), "data-plane mode is collective") {
			t.Fatalf("rank %d: unexpected error %v", r, e)
		}
		mismatches++
	}
	if mismatches == 0 {
		t.Fatal("no rank reported the data-plane mode mismatch")
	}
}
