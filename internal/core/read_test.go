package core

// Read-path parity: the read pipeline mirrors the write pipeline (same
// planner, same partitions, same rounds, prefetch instead of flush), so the
// plan-facing guarantees the write tests assert must hold symmetrically.

import (
	"fmt"
	"strings"
	"testing"

	"tapioca/internal/mpi"
	"tapioca/internal/netsim"
	"tapioca/internal/sim"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
)

// TestReadPlanMatchesWritePlan: a read session over the same declared
// pattern must produce the identical schedule — partition, rounds, elected
// aggregator — and move the same bytes through the buffers.
func TestReadPlanMatchesWritePlan(t *testing.T) {
	const ranks = 8
	const chunk = 1 << 16
	type view struct {
		partition, rounds, aggregator int
		put, flushed                  int64
	}
	collect := func(read bool) map[int]view {
		views := map[int]view{}
		runFlat(t, ranks, 2, func(c *mpi.Comm, sys storage.System) {
			var f *storage.File
			if c.Rank() == 0 {
				f = sys.Create("f", storage.FileOptions{})
			}
			f = c.Bcast(0, 8, f).(*storage.File)
			w := New(c, sys, f, Config{Aggregators: 2, BufferSize: 1 << 17})
			w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*chunk, chunk)}})
			if read {
				w.ReadAll()
			} else {
				w.WriteAll()
			}
			st := w.Stats()
			views[c.Rank()] = view{
				partition:  st.Partition,
				rounds:     st.Rounds,
				aggregator: st.AggregatorWorldRank,
				put:        st.BytesPut,
				flushed:    st.BytesFlushed,
			}
			c.Barrier()
		})
		return views
	}
	writes, reads := collect(false), collect(true)
	for r := 0; r < ranks; r++ {
		if writes[r] != reads[r] {
			t.Fatalf("rank %d: write view %+v != read view %+v", r, writes[r], reads[r])
		}
	}
}

// TestReadAllCoversDeclaredBytes: the aggregators' prefetches must read
// exactly the declared volume, in as few storage operations as the round
// structure dictates.
func TestReadAllCoversDeclaredBytes(t *testing.T) {
	const ranks = 8
	const chunk = 1 << 16
	var file *storage.File
	runFlat(t, ranks, 2, func(c *mpi.Comm, sys storage.System) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("f", storage.FileOptions{})
			file = f
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		w := New(c, sys, f, Config{Aggregators: 2, BufferSize: 1 << 17})
		w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*chunk, chunk)}})
		w.ReadAll()
		c.Barrier()
	})
	if file.BytesRead() != ranks*chunk {
		t.Fatalf("read %d bytes, declared %d", file.BytesRead(), ranks*chunk)
	}
	if file.BytesWritten() != 0 {
		t.Fatalf("read session wrote %d bytes", file.BytesWritten())
	}
	// 2 partitions × (4×64 KB declared / 128 KB buffer) = 4 prefetches.
	if file.ReadOps() != 4 {
		t.Fatalf("read ops = %d, want 4", file.ReadOps())
	}
}

// TestReadDeterministicAcrossRuns mirrors the write-path determinism
// contract: identical read programs complete at identical virtual times.
func TestReadDeterministicAcrossRuns(t *testing.T) {
	run := func() int64 {
		topo := topology.NewFlat(4)
		fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
		sys := storage.NewNullFS()
		sys.PerOp = sim.Millisecond
		eng, err := mpi.Run(mpi.Config{Ranks: 8, RanksPerNode: 2, Fabric: fab}, func(c *mpi.Comm) {
			var f *storage.File
			if c.Rank() == 0 {
				f = sys.Create("f", storage.FileOptions{})
			}
			f = c.Bcast(0, 8, f).(*storage.File)
			w := New(c, sys, f, Config{Aggregators: 2, BufferSize: 1 << 15})
			w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())<<14, 1<<14)}})
			w.ReadAll()
			c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic read elapsed: %d vs %d", a, b)
	}
}

// TestReadMultiVariableDeclared mirrors the declared-I/O write test: three
// strided variables read in declared order, with the pipeline running on
// the final Read call.
func TestReadMultiVariableDeclared(t *testing.T) {
	const ranks = 4
	const n = 512
	var file *storage.File
	runFlat(t, ranks, 2, func(c *mpi.Comm, sys storage.System) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("aos", storage.FileOptions{})
			file = f
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		base := int64(c.Rank()) * n * 12
		declared := [][]storage.Seg{
			{storage.Strided(base+0, 4, 12, n)},
			{storage.Strided(base+4, 4, 12, n)},
			{storage.Strided(base+8, 4, 12, n)},
		}
		w := New(c, sys, f, Config{Aggregators: 2, BufferSize: 4096})
		w.Init(declared)
		before := c.Now()
		w.Read(0)
		w.Read(1)
		if c.Now() != before {
			t.Error("pipeline ran before the final declared Read")
		}
		w.Read(2)
		if c.Now() <= before {
			t.Error("read pipeline consumed no virtual time")
		}
		c.Barrier()
	})
	if file.BytesRead() != ranks*n*12 {
		t.Fatalf("read %d bytes, declared %d", file.BytesRead(), ranks*n*12)
	}
}

// TestReadOutOfOrderErrors mirrors the write-path ordering contract: a Read
// issued out of declared order returns a descriptive error, and a Read
// before Init likewise.
func TestReadOutOfOrderErrors(t *testing.T) {
	topo := topology.NewFlat(2)
	fab := netsim.New(topo, netsim.Config{})
	sys := storage.NewNullFS()
	_, err := mpi.Run(mpi.Config{Ranks: 2, RanksPerNode: 1, Fabric: fab}, func(c *mpi.Comm) {
		f := sys.Lookup("f")
		if c.Rank() == 0 && f == nil {
			f = sys.Create("f", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		w := New(c, sys, f, Config{Aggregators: 1})
		if err := w.Read(0); err == nil || !strings.Contains(err.Error(), "before Init") {
			panic("Read before Init did not error: " + fmt.Sprint(err))
		}
		base := int64(c.Rank()) * 20
		if err := w.Init([][]storage.Seg{{storage.Contig(base, 10)}, {storage.Contig(base+10, 10)}}); err != nil {
			panic(err)
		}
		if err := w.Read(1); err == nil || !strings.Contains(err.Error(), "out of declared order") {
			panic("out-of-order Read did not error: " + fmt.Sprint(err))
		}
		// The guards must leave the session usable: the declared reads
		// still complete in order.
		if err := w.ReadAll(); err != nil {
			panic(err)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
}

// TestReadSingleBufferSlower: without the prefetch overlap the read
// pipeline must take strictly longer, mirroring the write-path ablation.
func TestReadSingleBufferSlower(t *testing.T) {
	run := func(single bool) int64 {
		topo := topology.NewFlat(16)
		topo.LinkBW = 2e9
		fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
		sys := storage.NewNullFS()
		sys.PerOp = 2 * sim.Millisecond
		eng, err := mpi.Run(mpi.Config{Ranks: 16, RanksPerNode: 1, Fabric: fab}, func(c *mpi.Comm) {
			var f *storage.File
			if c.Rank() == 0 {
				f = sys.Create("f", storage.FileOptions{})
			}
			f = c.Bcast(0, 8, f).(*storage.File)
			const chunk = 4 << 20
			w := New(c, sys, f, Config{Aggregators: 2, BufferSize: 4 << 20, SingleBuffer: single})
			w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*chunk, chunk)}})
			w.ReadAll()
			c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	double := run(false)
	single := run(true)
	if double >= single {
		t.Fatalf("prefetch overlap (%d) not faster than single buffer (%d)", double, single)
	}
}
