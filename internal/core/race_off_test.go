//go:build !race

package core

// raceEnabledCore reports whether the binary carries the race detector;
// race-built simulations run ~10-20x slower, so the heavy property trials
// subset themselves.
const raceEnabledCore = false
