package core

// Randomized property suite for synthesized aggregation trees (Config.Tree +
// treeplan.go): random declared patterns written through interior reduction
// levels — fan-in relays, topology-group trees, chains — must land bytes that
// CRC-verify end-to-end on every storage backend, exactly like the flat and
// staged pipelines they generalize. The suite also pins the degeneracy
// contract the search relies on (a flat-shaped tree books the identical
// schedule to the default pipeline, a staged-shaped tree to IntraNodeStaging),
// the message economics (a tree run never books more fabric messages than
// staged, and strictly fewer than flat on an all-to-all round structure),
// zero-rate fault-plan transparency, and tree collapse across an aggregator
// failover.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"tapioca/internal/fault"
	"tapioca/internal/storage"
	"tapioca/internal/tree"
)

// interiorCounter sums coalesced sends from depths ≥ 2 across ranks — the
// signal that a run genuinely exercised interior tree levels rather than
// quietly falling back to the staged path.
func interiorCounter(interior, engaged *int64) func(rank int, w *Writer) {
	return func(rank int, w *Writer) {
		if w.tp == nil {
			return
		}
		atomic.AddInt64(engaged, 1)
		for d := 2; d < len(w.tp.msgs); d++ {
			atomic.AddInt64(interior, w.tp.msgs[d])
		}
	}
}

// TestTreeRoundTrip is the tree acceptance property: for every shape family
// and every backend, a multi-rank random strided write through the tree
// pipeline followed by a fresh read returns byte-identical data, with
// checksum parity between the write session, the read session and the
// backing store. The fan-in-2 leg must demonstrably run interior levels
// (deep partitions exist on every backend at 2 aggregators); wider fan-ins
// and group shapes are allowed to come out structurally degenerate on small
// topologies — the pipeline must then be transparently the staged one.
func TestTreeRoundTrip(t *testing.T) {
	shapes := []tree.Shape{
		{Kind: tree.FanIn, K: 2},
		{Kind: tree.FanIn, K: 3},
		{Kind: tree.FanIn, K: 8},
		{Kind: tree.GroupTree},
		{Kind: tree.Chain},
	}
	if testing.Short() || raceEnabledCore {
		shapes = shapes[:2]
	}
	for _, be := range dataPlaneBackends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			for si := range shapes {
				sh := shapes[si]
				seed := int64(7000 + 100*si)
				rng := rand.New(rand.NewSource(seed))
				decl := genDeclared(rng, be.ranks, be.ranks*3)
				sys, fab := be.build()
				cfg := Config{
					Aggregators: 2, BufferSize: 8 << 10,
					SingleBuffer: si%2 == 1, Tree: &sh,
				}
				var interior, engaged int64
				stagedRun(t, sys, fab, be.ranks, be.rpn, decl, seed, cfg,
					fmt.Sprintf("tree-%s-%d", sh, si), interiorCounter(&interior, &engaged))
				if t.Failed() {
					t.Fatalf("shape %s (seed %d) failed", sh, seed)
				}
				if sh.Kind == tree.FanIn && sh.K == 2 {
					if engaged == 0 {
						t.Fatalf("shape %s built no interior tree on any rank", sh)
					}
					if interior == 0 {
						t.Fatalf("shape %s never forwarded through an interior level", sh)
					}
				}
			}
		})
	}
}

// TestTreeDegenerateShapesIdentical pins the execution half of the
// degeneracy contract: a session configured with the flat tree shape books
// the byte-identical store and the identical fabric-message schedule as the
// default pipeline, and the staged tree shape likewise reproduces
// IntraNodeStaging exactly. This is what lets the shape search return
// "flat"/"staged" and cost nothing.
func TestTreeDegenerateShapesIdentical(t *testing.T) {
	const seed = 5151
	be := dataPlaneBackends()[1] // lustre
	rng := rand.New(rand.NewSource(seed))
	decl := genDeclared(rng, be.ranks, be.ranks*3)

	for _, tc := range []struct {
		name  string
		base  Config
		shape tree.Shape
	}{
		{"flat", Config{Aggregators: 4, BufferSize: 8 << 10}, tree.Shape{Kind: tree.Flat}},
		{"staged", Config{Aggregators: 4, BufferSize: 8 << 10, IntraNodeStaging: true}, tree.Shape{Kind: tree.NodeStaged}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sysA, fabA := be.build()
			baseWrite, baseStore := stagedRun(t, sysA, fabA, be.ranks, be.rpn, decl, seed, tc.base, "base-"+tc.name)

			cfg := tc.base
			sh := tc.shape
			cfg.Tree = &sh
			sysB, fabB := be.build()
			treeWrite, treeStore := stagedRun(t, sysB, fabB, be.ranks, be.rpn, decl, seed, cfg, "tree-"+tc.name,
				func(rank int, w *Writer) {
					if w.tp != nil {
						t.Errorf("rank %d: degenerate shape %s allocated tree machinery", rank, sh)
					}
				})

			if treeWrite != baseWrite || treeStore != baseStore {
				t.Fatalf("degenerate %s tree diverged: write %#x vs %#x, store %#x vs %#x",
					tc.name, treeWrite, baseWrite, treeStore, baseStore)
			}
			if fabB.FabricMessages() != fabA.FabricMessages() {
				t.Fatalf("degenerate %s tree changed the schedule: %d fabric messages vs %d",
					tc.name, fabB.FabricMessages(), fabA.FabricMessages())
			}
		})
	}
}

// TestTreeStoreBytesMatchFlat writes one fine-grained rank interleave (every
// round receives pieces from every member) three ways — flat, staged, and a
// fan-in-2 tree — and requires: identical landed bytes, the tree booking
// strictly fewer fabric messages than flat (interior coalescing), and never
// more than staged (each non-root vertex still sends exactly one inter-node
// message per engaged round).
func TestTreeStoreBytesMatchFlat(t *testing.T) {
	const seed = 6226
	be := dataPlaneBackends()[1] // lustre
	const l, n = 512, 64
	decl := make([][][]storage.Seg, be.ranks)
	for r := range decl {
		decl[r] = [][]storage.Seg{{storage.Strided(int64(r)*l, l, int64(be.ranks)*l, n)}}
	}
	base := Config{Aggregators: 2, BufferSize: 8 << 10}

	sysF, fabF := be.build()
	flatWrite, flatStore := stagedRun(t, sysF, fabF, be.ranks, be.rpn, decl, seed, base, "flat")

	staged := base
	staged.IntraNodeStaging = true
	sysS, fabS := be.build()
	stagedWrite, stagedStore := stagedRun(t, sysS, fabS, be.ranks, be.rpn, decl, seed, staged, "staged")

	sh := tree.Shape{Kind: tree.FanIn, K: 2}
	treed := base
	treed.Tree = &sh
	sysT, fabT := be.build()
	var interior, engaged int64
	treeWrite, treeStore := stagedRun(t, sysT, fabT, be.ranks, be.rpn, decl, seed, treed, "tree",
		interiorCounter(&interior, &engaged))

	if interior == 0 {
		t.Fatal("fan-in-2 tree forwarded nothing through interior levels — the tree leg never engaged")
	}
	if treeWrite != flatWrite || treeStore != flatStore || stagedWrite != flatWrite || stagedStore != flatStore {
		t.Fatalf("landed bytes diverged: flat %#x/%#x, staged %#x/%#x, tree %#x/%#x",
			flatWrite, flatStore, stagedWrite, stagedStore, treeWrite, treeStore)
	}
	if fabT.FabricMessages() >= fabF.FabricMessages() {
		t.Fatalf("tree booked %d fabric messages, flat %d — interior coalescing saved nothing",
			fabT.FabricMessages(), fabF.FabricMessages())
	}
	if fabT.FabricMessages() > fabS.FabricMessages() {
		t.Fatalf("tree booked %d fabric messages, staged only %d — relays added traffic",
			fabT.FabricMessages(), fabS.FabricMessages())
	}
}

// TestTreeZeroRateFaultsIdentical arms the tree pipeline with a zero-rate
// fault plan and requires the run to stay byte-identical to the unarmed one:
// same checksums, same fabric-message schedule. Fault instrumentation must
// be free when no fault fires, trees included.
func TestTreeZeroRateFaultsIdentical(t *testing.T) {
	const seed = 8484
	be := dataPlaneBackends()[0] // nullfs-backed MemStore
	rng := rand.New(rand.NewSource(seed))
	decl := genDeclared(rng, be.ranks, be.ranks*3)
	sh := tree.Shape{Kind: tree.FanIn, K: 2}
	cfg := Config{Aggregators: 2, BufferSize: 8 << 10, Tree: &sh}

	sysA, fabA := be.build()
	baseWrite, baseStore := stagedRun(t, sysA, fabA, be.ranks, be.rpn, decl, seed, cfg, "unarmed")

	armed := cfg
	armed.Faults = fault.NewPlan(fault.Config{Seed: 99}) // all rates zero
	sysB, fabB := be.build()
	fabB.SetFaults(armed.Faults)
	armedWrite, armedStore := stagedRun(t, sysB, fabB, be.ranks, be.rpn, decl, seed, armed, "armed")

	if armedWrite != baseWrite || armedStore != baseStore {
		t.Fatalf("zero-rate fault plan changed the tree bytes: write %#x vs %#x, store %#x vs %#x",
			armedWrite, baseWrite, armedStore, baseStore)
	}
	if fabB.FabricMessages() != fabA.FabricMessages() {
		t.Fatalf("zero-rate fault plan changed the tree schedule: %d fabric messages vs %d",
			fabB.FabricMessages(), fabA.FabricMessages())
	}
}

// TestTreeFailoverCollapse kills every partition's aggregator mid-run with
// failover armed under a fan-in-2 tree: the tree must collapse to the
// node-staged degenerate under the new root (interior phases become empty
// fences — the frozen budget keeps the fence schedule collective) and the
// round trip must still CRC-verify with zero data loss. The trees must have
// genuinely engaged before the deaths for the collapse to mean anything.
func TestTreeFailoverCollapse(t *testing.T) {
	const seed = 9393
	be := dataPlaneBackends()[1] // lustre
	rng := rand.New(rand.NewSource(seed))
	decl := genDeclared(rng, be.ranks, be.ranks*4)
	sh := tree.Shape{Kind: tree.FanIn, K: 2}
	cfg := Config{
		Aggregators: 2, BufferSize: 8 << 10, Tree: &sh,
		Faults:   fault.NewPlan(fault.Config{Seed: 17, AggrDeathRate: 1}),
		Recovery: fault.DefaultRecovery(),
	}
	sys, fab := be.build()
	var interior, engaged, failovers, collapsed, lostBytes int64
	stagedRun(t, sys, fab, be.ranks, be.rpn, decl, seed, cfg, "tree-failover",
		interiorCounter(&interior, &engaged),
		func(rank int, w *Writer) {
			st := w.Stats()
			atomic.AddInt64(&failovers, st.Failovers)
			atomic.AddInt64(&lostBytes, st.LostBytes)
			if w.tp != nil && w.tp.collapsed {
				atomic.AddInt64(&collapsed, 1)
			}
		})
	if engaged == 0 || interior == 0 {
		t.Fatal("tree never engaged before the failover — the collapse property ran vacuously")
	}
	if failovers == 0 {
		t.Fatal("no failover fired despite AggrDeathRate=1")
	}
	if collapsed == 0 {
		t.Fatal("failover left the tree armed — expected a collapse to the staged degenerate")
	}
	if lostBytes != 0 {
		t.Fatalf("failover under a tree lost %d bytes", lostBytes)
	}
}
