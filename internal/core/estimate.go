package core

import "tapioca/internal/storage"

// PlanEstimate is the analytic summary of the round/flush schedule the
// planner would build for a declared workload — the same buildPlan that
// drives a live session, run outside any simulated rank. The autotuner
// (internal/tune) prices candidate configurations with it: rounds and flush
// extents come from the real planner, so a prediction and an actual run
// always agree on the schedule's shape.
type PlanEstimate struct {
	// Aggregators is the effective partition count (after clamping).
	Aggregators int
	// Rounds is the maximum round count across partitions — the pipeline's
	// global depth.
	Rounds int
	// TotalBytes is the workload's declared volume.
	TotalBytes int64
	// Parts describes each partition's schedule.
	Parts []PartEstimate
}

// PartEstimate is one partition's schedule summary.
type PartEstimate struct {
	// FirstRank is the partition's first comm rank; members are the
	// contiguous block [FirstRank, FirstRank+Ranks).
	FirstRank int
	// Ranks is the member count.
	Ranks int
	// Bytes is the partition's total declared volume Ω.
	Bytes int64
	// Rounds is the partition's aggregation round count.
	Rounds int
	// FlushBytes[r] is the payload of round r's buffer flush.
	FlushBytes []int64
	// FlushRuns[r] is the number of contiguous file runs in round r's flush
	// (1 = dense, stripe-alignable; large = sparse strided extents).
	FlushRuns []int64
	// MemberBytes[i] is member i's declared volume ω(i) — the election
	// weights.
	MemberBytes []int64
}

// EstimatePlan runs the declared-I/O planner over every rank's flattened
// segments under cfg (zero fields resolved via ApplyDefaults) and summarizes
// the resulting schedule. alignUnit is the file system's optimal write
// granularity (stripe or block size; 0 disables alignment), exactly as a
// live Init obtains it from storage.System.OptimalUnit.
func EstimatePlan(all [][]storage.Seg, cfg Config, alignUnit int64) *PlanEstimate {
	cfg.ApplyDefaults(len(all))
	p := buildPlan(all, cfg.Aggregators, cfg.BufferSize, alignUnit, false)
	est := &PlanEstimate{Aggregators: len(p.parts)}
	for part := range p.parts {
		pp := &p.parts[part]
		pe := PartEstimate{
			FirstRank:   pp.rankLo,
			Ranks:       pp.rankN,
			Bytes:       pp.bytes,
			Rounds:      pp.rounds,
			MemberBytes: pp.omega,
		}
		for _, fl := range pp.flush {
			pe.FlushBytes = append(pe.FlushBytes, fl.bytes)
			pe.FlushRuns = append(pe.FlushRuns, storage.TotalRuns(fl.segs))
		}
		est.TotalBytes += pp.bytes
		if pp.rounds > est.Rounds {
			est.Rounds = pp.rounds
		}
		est.Parts = append(est.Parts, pe)
	}
	return est
}
