package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tapioca/internal/storage"
)

// randomWorkload builds a non-overlapping random declaration set: each rank
// gets a disjoint base region filled with a random mix of contiguous and
// strided segments.
func randomWorkload(rng *rand.Rand, ranks int) [][]storage.Seg {
	all := make([][]storage.Seg, ranks)
	const regionSize = 1 << 16
	for r := 0; r < ranks; r++ {
		base := int64(r) * regionSize
		switch rng.Intn(4) {
		case 0: // nothing
		case 1: // one contiguous block
			all[r] = []storage.Seg{storage.Contig(base, int64(rng.Intn(regionSize-1)+1))}
		case 2: // strided pattern within the region
			length := int64(rng.Intn(32) + 1)
			stride := length + int64(rng.Intn(64))
			maxCount := int64(regionSize) / stride
			if maxCount < 1 {
				maxCount = 1
			}
			count := rng.Int63n(maxCount) + 1
			all[r] = []storage.Seg{storage.Strided(base, length, stride, count)}
		default: // two contiguous pieces
			a := int64(rng.Intn(regionSize/2-1) + 1)
			bOff := base + int64(regionSize/2)
			b := int64(rng.Intn(regionSize/2-1) + 1)
			all[r] = []storage.Seg{storage.Contig(base, a), storage.Contig(bOff, b)}
		}
	}
	return all
}

// TestPlanInvariantsProperty fuzzes buildPlan: for random workloads,
// partition counts, buffer sizes and alignment units, the plan must
// conserve bytes (flush totals == declared totals == piece totals), never
// overfill a buffer window, and keep flush extents inside the declared
// span.
func TestPlanInvariantsProperty(t *testing.T) {
	f := func(seed int64, aggrsU, bufU, alignU uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ranks := rng.Intn(12) + 1
		nAggr := int(aggrsU%8) + 1
		bufSize := int64(bufU%63+1) * 1024
		var align int64
		if alignU%3 == 1 {
			align = 4096
		} else if alignU%3 == 2 {
			align = 32768
		}
		all := randomWorkload(rng, ranks)

		var declared int64
		for _, segs := range all {
			declared += storage.TotalBytes(segs)
		}
		p := buildPlan(all, nAggr, bufSize, align, false)

		var flushed, pieces int64
		for _, pp := range p.parts {
			for _, fl := range pp.flush {
				flushed += fl.bytes
				if storage.TotalBytes(fl.segs) != fl.bytes {
					return false
				}
				if fl.bytes > bufSize {
					return false // overfilled buffer
				}
			}
		}
		for _, pc := range p.pieces {
			pieces += pc.bytes
			if pc.bufOff < 0 || pc.bufOff+pc.bytes > bufSize {
				return false // piece outside the buffer window
			}
		}
		return flushed == declared && pieces == declared
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanFlushOrderProperty: within a partition, flush extents must be
// non-overlapping across rounds (each byte flushed exactly once).
func TestPlanFlushOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		ranks := rng.Intn(10) + 1
		all := randomWorkload(rng, ranks)
		p := buildPlan(all, rng.Intn(4)+1, int64(rng.Intn(8191)+1024), 0, false)
		for _, pp := range p.parts {
			type iv struct{ lo, hi int64 }
			var got []iv
			for _, fl := range pp.flush {
				storage.Enumerate(fl.segs, 1<<20, func(off, length int64) {
					got = append(got, iv{off, off + length})
				})
			}
			for i := range got {
				for j := i + 1; j < len(got); j++ {
					if got[i].lo < got[j].hi && got[j].lo < got[i].hi {
						t.Fatalf("trial %d: overlapping flush extents [%d,%d) and [%d,%d)",
							trial, got[i].lo, got[i].hi, got[j].lo, got[j].hi)
					}
				}
			}
		}
	}
}
