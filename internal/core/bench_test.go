package core

import (
	"testing"

	"tapioca/internal/storage"
	"tapioca/internal/workload"
)

// benchDeclared builds the flattened per-rank declarations the planner sees
// for a HACC-IO run (AoS: 9 strided variables per rank) or an IOR run (one
// contiguous block per rank).
func benchDeclared(ranks int, hacc bool) [][]storage.Seg {
	all := make([][]storage.Seg, ranks)
	for r := 0; r < ranks; r++ {
		if hacc {
			for _, segs := range workload.HACCDeclared(r, ranks, 25000, workload.AoS) {
				all[r] = append(all[r], segs...)
			}
		} else {
			all[r] = workload.IORSegs(r, 1<<20)
		}
	}
	return all
}

// BenchmarkPlanBuild measures the declared-I/O planner at paper scale:
// 16,384 ranks (1,024 nodes × 16), 192 aggregators, 16 MB buffers — the
// fig13 full-scale configuration. The flat piece arena and allocation-free
// window accumulation keep this linear in declared segments.
func BenchmarkPlanBuild(b *testing.B) {
	for _, tc := range []struct {
		name  string
		ranks int
		hacc  bool
	}{
		{"hacc-aos-16k", 16384, true},
		{"ior-16k", 16384, false},
		{"hacc-aos-2k", 2048, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			all := benchDeclared(tc.ranks, tc.hacc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := buildPlan(all, 192, 16<<20, 16<<20, false)
				if len(p.parts) == 0 {
					b.Fatal("empty plan")
				}
			}
		})
	}
}
