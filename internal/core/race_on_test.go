//go:build race

package core

// raceEnabledCore reports that this binary was built with the race
// detector; the data-plane property suite runs a reduced trial count.
const raceEnabledCore = true
