package core

import (
	"errors"
	"fmt"

	"tapioca/internal/cost"
	"tapioca/internal/fault"
	"tapioca/internal/sim"
	"tapioca/internal/storage"
)

// This file is the recovery side of the deterministic fault plane
// (internal/fault): bounded retry with virtual-time backoff for transient
// store errors, aggregator failover (re-election over the survivors plus
// replay of the dead aggregator's un-flushed rounds from rank-side payload
// buffers), degraded-mode writes past a dead burst-buffer tier, and
// verify-and-repair of corrupted flush extents. Every path here is gated on
// Config.Faults; a nil plan leaves the pipeline on its original code path.

// ioSys is the tier the session's flush traffic currently targets: the
// configured system, or the degraded fallback once the primary went down.
func (w *Writer) ioSys() storage.System {
	if w.degradedSys != nil {
		return w.degradedSys
	}
	return w.sys
}

// degrade switches the session's flush traffic to the fallback tier (the
// file system behind the burst buffer), reporting whether one exists. The
// switch is per-writer and sticky: once the primary tier is down it stays
// down for the session.
func (w *Writer) degrade() bool {
	if w.degradedSys != nil {
		return true
	}
	d := storage.DegradedSystemOf(w.sys)
	if d == nil {
		return false
	}
	w.degradedSys = d
	return true
}

// restripe re-cuts flush extents for the degraded tier: contiguous runs are
// split at the fallback system's optimal-unit boundaries, so the direct-to-
// PFS stream the degraded path prices sees aligned extents instead of
// buffer-sized runs aligned to the dead tier.
func restripe(segs []storage.Seg, unit int64) []storage.Seg {
	if unit <= 0 {
		return segs
	}
	out := make([]storage.Seg, 0, len(segs))
	for _, s := range segs {
		for i := int64(0); i < s.Runs(); i++ {
			off, length := s.Off+i*s.Stride, s.Len
			for length > 0 {
				n := unit - off%unit
				if n > length {
					n = length
				}
				out = append(out, storage.Contig(off, n))
				off += n
				length -= n
			}
		}
	}
	return out
}

// loseFlush absorbs an unrecoverable flush failure as counted data loss:
// without recovery armed (or with the retry budget exhausted and no
// fallback tier), the round's bytes never land. The chaos experiment's
// goodput subtracts LostBytes; correctness tests run with recovery armed
// and assert this stays zero.
func (w *Writer) loseFlush(fl flushInfo) {
	w.stats.LostFlushes++
	w.stats.LostBytes += fl.bytes
	w.rec.Registry().Add(fault.MetricLostFlushes, 1)
}

// flushAsync issues one round's virtual flush (write, or read-path
// prefetch) against the current tier, owning the recovery loop: transient
// errors retry under the tier's policy with deterministic virtual-time
// backoff; a tier outage degrades to the fallback tier when armed;
// anything unrecoverable is absorbed as a lost flush and returns nil.
// Without Config.Faults this is exactly the original non-blocking call.
func (w *Writer) flushAsync(p *sim.Proc, fl flushInfo, read bool) *sim.Event {
	segs := w.flushSegsFor(fl)
	node := w.pc.Node()
	sys := w.ioSys()
	if w.cfg.Faults == nil {
		if read {
			return sys.ReadAsync(p, node, w.f, segs)
		}
		return sys.WriteAsync(p, node, w.f, segs)
	}
	reg := w.rec.Registry()
	rc := w.cfg.Recovery
	degraded := func() {
		if w.degradedSys != nil {
			w.stats.DegradedFlushes++
			reg.Add(fault.MetricDegradedRounds, 1)
		}
	}
	attempt, spent := 0, int64(0)
	for {
		fb := storage.FallibleOf(sys)
		if fb == nil {
			// The degraded tier (or an unwrapped system) has no fault face.
			degraded()
			if read {
				return sys.ReadAsync(p, node, w.f, segs)
			}
			return sys.WriteAsync(p, node, w.f, segs)
		}
		var ev *sim.Event
		var err error
		if read {
			ev, err = fb.ReadAsyncTry(p, node, w.f, segs)
		} else {
			ev, err = fb.WriteAsyncTry(p, node, w.f, segs)
		}
		if err == nil {
			degraded()
			return ev
		}
		if errors.Is(err, fault.ErrTierDown) {
			if rc != nil && rc.Degraded && w.degrade() {
				sys = w.ioSys()
				if !read {
					segs = restripe(segs, sys.OptimalUnit(w.f))
				}
				continue
			}
			w.loseFlush(fl)
			return nil
		}
		// Transient: bounded retry with deterministic backoff.
		pol := rc.PolicyFor(sys.Name())
		if rc != nil && attempt < pol.MaxAttempts && spent < pol.Budget {
			d := pol.Backoff(attempt)
			attempt++
			spent += d
			p.Hold(d)
			w.stats.Retries++
			w.stats.BackoffNs += d
			reg.Add(fault.MetricRetries, 1)
			reg.Add(fault.MetricBackoffNs, d)
			continue
		}
		w.loseFlush(fl)
		return nil
	}
}

// deathRound resolves this partition's scheduled aggregator death, or -1.
// Single-member partitions host no deaths: there is no survivor to elect.
func (w *Writer) deathRound() int {
	if w.cfg.Faults == nil || w.pc.Size() < 2 {
		return -1
	}
	return w.cfg.Faults.AggregatorDeath(w.part, w.plan.parts[w.part].rounds)
}

// lostRounds is the deterministic replay set of a death at the top of round
// r: under the double-buffer schedule the only flushes that can still be in
// flight are rounds r-2 and r-1 (anything older was waited by a
// buffer-reuse guard). Every member computes the same set from the shared
// plan — no aggregator-local state crosses ranks. SingleBuffer flushes
// synchronously, so nothing is ever in flight.
func (w *Writer) lostRounds(r int) []int {
	if w.cfg.SingleBuffer {
		return nil
	}
	pp := &w.plan.parts[w.part]
	var lost []int
	for _, q := range []int{r - 2, r - 1} {
		if q >= 0 && pp.flush[q].bytes > 0 {
			lost = append(lost, q)
		}
	}
	return lost
}

// reelect re-runs the §IV-B election over the partition's surviving
// candidates. Every member holds the full cached member table, so the
// election runs in the cost engine's local mode (no MinLoc collective):
// each rank scans the filtered table and lands on the same winner.
func (w *Writer) reelect(dead int) int {
	pp := &w.plan.parts[w.part]
	cand := make([]cost.Member, 0, len(pp.members)-1)
	idx := make([]int, 0, len(pp.members)-1)
	for i, m := range pp.members {
		if i != dead {
			cand = append(cand, m)
			idx = append(idx, i)
		}
	}
	e := &cost.Election{
		Model:     w.model(),
		Members:   cand,
		IOBytes:   pp.bytes,
		Partition: w.part,
	}
	return idx[w.cfg.Placement.Elect(e)]
}

// failover handles the aggregator death scheduled at the top of round r.
// Collective over the partition: every member pays detection and election
// time, computes the same replacement and the same replay set.
//
// Without Failover armed, the death is terminal: the demoted aggregator
// returns ErrAggregatorDead and its members, with nobody left to fence
// with, park until the engine's deadlock detector names them (with their
// phase labels) — the diagnosable no-recovery baseline.
//
// With Failover armed: the survivors re-elect over the remaining
// candidates, the dead aggregator's un-flushed rounds are replayed from the
// members' rank-side payload buffers into the new aggregator's window, and
// the new aggregator flushes them synchronously (with retry) before normal
// rounds resume. The demoted rank survives as a member — the model is
// gray failure of the aggregator role (its NVRAM lease expires, its buffers
// are fenced off) — so its own declared data still lands.
func (w *Writer) failover(p *sim.Proc, r int, pending *[2]*sim.Event, join func(int64), dataErr *error) error {
	reg := w.rec.Registry()
	rc := w.cfg.Recovery
	if rc == nil || !rc.Failover {
		if w.isAgg {
			reg.Add(fault.MetricAggrDeaths, 1)
			return fault.ErrAggregatorDead
		}
		return nil
	}
	// Detection plus the local re-election compute, charged on every member.
	hold := rc.DetectCost()
	if w.cfg.ElectionOverhead > 0 {
		hold += w.cfg.ElectionOverhead
	}
	p.Hold(hold)

	wasAgg := w.isAgg
	newAgg := w.reelect(w.aggLocal)
	w.aggLocal = newAgg
	w.isAgg = w.pc.Rank() == newAgg
	w.stats.AggregatorWorldRank = w.pc.WorldRankOf(newAgg)
	w.stats.Failovers++
	if w.tp != nil {
		// Collapse the aggregation tree to its node-staged degenerate under
		// the new root: interior relays would still target the old root's
		// window. The fence budget stays frozen (fences are collective), so
		// the remaining interior phases run as empty fences.
		w.tp.collapsed = true
	}
	if w.isAgg {
		reg.Add(fault.MetricAggrDeaths, 1)
		reg.Add(fault.MetricFailovers, 1)
	}
	if wasAgg {
		// The demoted aggregator's in-flight virtual flushes complete by
		// timer with no waiter; its background store jobs are joined here,
		// in proc context, so the replacement's replay rewrites are ordered
		// after them on the host side (the engine serializes procs).
		join(0)
		join(1)
		pending[0], pending[1] = nil, nil
	}
	for _, q := range w.lostRounds(r) {
		w.replayRound(p, q, dataErr)
	}
	// Serializing fence: normal rounds resume only once the replacement's
	// replay flushes have landed (round r reuses the r-2 buffer).
	w.win.Fence()
	return nil
}

// replayRound re-runs round q's aggregation into the replacement
// aggregator's window and flushes it synchronously. The bytes come from the
// members' own payload buffers (data-plane sessions) or move as virtual
// counts (phantom sessions) — the dead aggregator contributes nothing
// beyond its own declared data, which it still holds as a member.
func (w *Writer) replayRound(p *sim.Proc, q int, dataErr *error) {
	pp := &w.plan.parts[w.part]
	fl := pp.flush[q]
	bufID := int64(q % 2)
	var deferredFree int64
	for _, pc := range w.plan.piecesOf(w.c.Rank()) {
		if pc.round != q {
			if pc.round > q {
				break
			}
			continue
		}
		if deferredFree > 0 {
			p.HoldUntil(deferredFree)
		}
		if w.pl != nil {
			lo, hi := storage.SpanAll(fl.segs)
			deferredFree = w.win.PutGather(w.aggLocal, bufID*w.cfg.BufferSize+pc.bufOff, pc.bytes, func(dst []byte) {
				if n := w.pl.Gather(dst, lo, hi); n != int64(len(dst)) && *dataErr == nil {
					*dataErr = fmt.Errorf("core: replay of round %d gathered %d bytes, plan expects %d", q, n, len(dst))
				}
			})
		} else {
			deferredFree = w.win.PutAsync(w.aggLocal, bufID*w.cfg.BufferSize+pc.bufOff, pc.bytes, nil)
		}
	}
	w.win.FenceAfter(deferredFree)
	if !w.isAgg || fl.bytes == 0 {
		return
	}
	if w.cfg.Codec != nil {
		cNsPerByte, _ := w.codecModel()
		p.Hold(int64(float64(fl.bytes) * cNsPerByte))
	}
	if w.pl != nil {
		buf := w.win.LocalData()[bufID*w.cfg.BufferSize:][:fl.bytes]
		layout := w.plan.layoutOf(w.part, q)
		w.f.EnsureStore()
		// Synchronous: replay is already off the steady-state schedule, and
		// the serializing fence in failover needs the bytes durable. The
		// original corruption key for round q was consumed at first flush,
		// so the replay rewrites clean bytes over any damage.
		stored, err := w.storeRound(buf, layout, nil, false)
		if err != nil && *dataErr == nil {
			*dataErr = err
		}
		w.stats.BytesCompressed += stored
	}
	if ev := w.flushAsync(p, fl, false); ev != nil {
		ev.Wait(p)
	}
	w.stats.BytesFlushed += fl.bytes
	w.stats.Flushes++
	w.stats.ReplayedRounds++
	w.rec.Registry().Add(fault.MetricReplayedRounds, 1)
}

// repairBlock is the scrub granularity of verify-and-repair: the targeted
// re-read/re-write covers at most this much of the extent around the
// damaged byte, not the whole round.
const repairBlock = 64 << 10

// locateByte maps the k-th positional byte of segs (enumeration order) to
// its file offset and the containing contiguous run. ok=false when k is
// past the segments' total bytes.
func locateByte(segs []storage.Seg, k int64) (off, runOff, runLen int64, ok bool) {
	for _, s := range segs {
		for i := int64(0); i < s.Runs(); i++ {
			if k < s.Len {
				return s.Off + i*s.Stride + k, s.Off + i*s.Stride, s.Len, true
			}
			k -= s.Len
		}
	}
	return 0, 0, 0, false
}

// checkCorruption consumes round r's corruption decision (proc context). It
// returns the damaged positional byte indexes to hand to storeRound. With
// Repair armed it also prices the targeted scrub — a blocking re-read and
// re-write of a repairBlock-sized window of the damaged extent against the
// current tier — and counts the repair; the host-side job then performs the
// real verify-and-rewrite (see applyDamage).
func (w *Writer) checkCorruption(p *sim.Proc, r int, fl flushInfo) (dmg []int64, repair bool) {
	k, ok := w.cfg.Faults.TakeCorruption(w.part, r, fl.bytes)
	if !ok {
		return nil, false
	}
	reg := w.rec.Registry()
	reg.Add(fault.MetricCorruptions, 1)
	dmg = []int64{k}
	rc := w.cfg.Recovery
	if rc == nil || !rc.Repair {
		return dmg, false
	}
	if off, runOff, runLen, ok := locateByte(fl.segs, k); ok {
		within := off - runOff
		lo := runOff + within - within%repairBlock
		n := runLen - (lo - runOff)
		if n > repairBlock {
			n = repairBlock
		}
		scrub := []storage.Seg{storage.Contig(lo, n)}
		sys := w.ioSys()
		node := w.pc.Node()
		sys.Read(p, node, w.f, scrub)
		sys.Write(p, node, w.f, scrub)
	}
	w.stats.RepairedExtents++
	reg.Add(fault.MetricRepairedExtents, 1)
	return dmg, true
}

// applyDamage runs on the host side of a store job, after the round's bytes
// landed: it flips the damaged byte in the backing store (the modeled
// bit-flip between buffer and platter), then — with repair on — performs
// the verify-and-repair pass: re-read the scrub window, compare against the
// source bytes, and rewrite exactly the ranges that differ. Without repair
// the flip stays, and end-to-end CRC verification reports it.
func applyDamage(f *storage.File, layout []storage.Seg, src []byte, dmg []int64, repair bool) error {
	for _, k := range dmg {
		off, runOff, runLen, ok := locateByte(layout, k)
		if !ok {
			continue
		}
		var b [1]byte
		if err := f.StoreReadAt(b[:], off); err != nil {
			return err
		}
		b[0] ^= 0xFF
		if err := f.StoreWriteAt(b[:], off); err != nil {
			return err
		}
		if !repair {
			continue
		}
		// Positional index of the run's first byte within src.
		runPos := k - (off - runOff)
		within := off - runOff
		lo := within - within%repairBlock
		n := runLen - lo
		if n > repairBlock {
			n = repairBlock
		}
		want := src[runPos+lo : runPos+lo+n]
		got := make([]byte, n)
		if err := f.StoreReadAt(got, runOff+lo); err != nil {
			return err
		}
		for i := int64(0); i < n; i++ {
			if got[i] != want[i] {
				if err := f.StoreWriteAt(want[i:i+1], runOff+lo+i); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
