package core

import (
	"fmt"
	"strings"
	"testing"

	"tapioca/internal/cost"
	"tapioca/internal/mpi"
	"tapioca/internal/netsim"
	"tapioca/internal/sim"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
)

func runFlat(t *testing.T, ranks, ranksPerNode int, body func(c *mpi.Comm, sys storage.System)) *sim.Engine {
	t.Helper()
	nodes := (ranks + ranksPerNode - 1) / ranksPerNode
	topo := topology.NewFlat(nodes)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
	sys := storage.NewNullFS()
	eng, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: ranksPerNode, Fabric: fab}, func(c *mpi.Comm) {
		body(c, sys)
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestBuildPlanContiguous(t *testing.T) {
	const mb = 1 << 20
	// 8 ranks × 1 MB, 2 partitions, 2 MB buffers → 2 rounds per partition.
	all := make([][]storage.Seg, 8)
	for r := range all {
		all[r] = []storage.Seg{storage.Contig(int64(r)*mb, mb)}
	}
	p := buildPlan(all, 2, 2*mb, 0, false)
	if len(p.parts) != 2 {
		t.Fatalf("parts = %d", len(p.parts))
	}
	for i, pp := range p.parts {
		if pp.bytes != 4*mb {
			t.Errorf("partition %d bytes = %d", i, pp.bytes)
		}
		if pp.rounds != 2 {
			t.Errorf("partition %d rounds = %d", i, pp.rounds)
		}
		for r, fl := range pp.flush {
			if fl.bytes != 2*mb {
				t.Errorf("partition %d round %d flush %d bytes", i, r, fl.bytes)
			}
			if len(fl.segs) != 1 {
				t.Errorf("partition %d round %d has %d segs, want 1 contiguous", i, r, len(fl.segs))
			}
		}
	}
	// Ranks 0..3 in partition 0, 4..7 in partition 1.
	for r := 0; r < 8; r++ {
		if p.partOf[r] != r/4 {
			t.Errorf("partOf[%d] = %d", r, p.partOf[r])
		}
	}
}

func TestBuildPlanBuffersExactlyFilled(t *testing.T) {
	// The paper's core claim: every round except the last fills the buffer
	// completely, even with many declared variables.
	const n = 1000
	const vars = 9
	all := make([][]storage.Seg, 4)
	for r := range all {
		// SoA: var v of rank r at v*4n*4 + r*n*4, n 4-byte elements.
		for v := 0; v < vars; v++ {
			off := int64(v)*4*n*4 + int64(r)*n*4
			all[r] = append(all[r], storage.Contig(off, n*4))
		}
	}
	buf := int64(10_000)
	p := buildPlan(all, 1, buf, 0, false)
	pp := p.parts[0]
	for r := 0; r < pp.rounds-1; r++ {
		if pp.flush[r].bytes != buf {
			t.Fatalf("round %d fills %d of %d", r, pp.flush[r].bytes, buf)
		}
	}
	var total int64
	for _, fl := range pp.flush {
		total += fl.bytes
	}
	if total != 4*vars*n*4 {
		t.Fatalf("total flushed %d", total)
	}
}

func TestBuildPlanAoSDenseFlushes(t *testing.T) {
	// AoS: 4 ranks interleave 38-byte records as 9 strided variables. The
	// union is dense, so every flush must be a single contiguous extent —
	// the declared-I/O reorganization the paper sells.
	const parts = 100
	sizes := []int64{4, 4, 4, 4, 4, 4, 4, 8, 2} // 38 bytes
	offs := make([]int64, len(sizes))
	var rec int64
	for i, s := range sizes {
		offs[i] = rec
		rec += s
	}
	const ranks = 4
	all := make([][]storage.Seg, ranks)
	for r := range all {
		base := int64(r) * parts * rec
		for v := range sizes {
			all[r] = append(all[r], storage.Strided(base+offs[v], sizes[v], rec, parts))
		}
	}
	p := buildPlan(all, 2, 1000, 0, false)
	for pi, pp := range p.parts {
		for r, fl := range pp.flush {
			if len(fl.segs) != 1 || fl.segs[0].Count != 1 {
				t.Fatalf("partition %d round %d flush not contiguous: %+v", pi, r, fl.segs)
			}
		}
	}
}

func TestBuildPlanSparseData(t *testing.T) {
	// A genuinely sparse pattern (holes never written): byte counts stay
	// exact and flushes carry the strided extents.
	all := [][]storage.Seg{
		{storage.Strided(0, 4, 100, 50)}, // 200 bytes over a 5 KB span
	}
	p := buildPlan(all, 1, 64, 0, false)
	pp := p.parts[0]
	var total int64
	runsTotal := int64(0)
	for _, fl := range pp.flush {
		total += fl.bytes
		runsTotal += storage.TotalRuns(fl.segs)
	}
	if total != 200 {
		t.Fatalf("total = %d", total)
	}
	if runsTotal != 50 {
		t.Fatalf("runs = %d, want 50", runsTotal)
	}
	if pp.rounds != 4 { // ceil(200/64)
		t.Fatalf("rounds = %d", pp.rounds)
	}
}

func TestBuildPlanPieceConservation(t *testing.T) {
	// Sum of a rank's pieces equals its declared bytes; per-round fill
	// equals flush bytes (asserted inside buildPlan as a panic too).
	all := [][]storage.Seg{
		{storage.Contig(0, 5000)},
		{storage.Contig(5000, 100)},
		{storage.Strided(5100, 10, 20, 30)},
		nil,
	}
	p := buildPlan(all, 2, 1024, 0, false)
	for r, segs := range all {
		var want int64
		for _, s := range segs {
			want += s.Bytes()
		}
		var got int64
		for _, pc := range p.piecesOf(r) {
			got += pc.bytes
		}
		if got != want {
			t.Errorf("rank %d pieces %d bytes, declared %d", r, got, want)
		}
	}
}

func TestWritePipelineCoverage(t *testing.T) {
	const ranks = 8
	const chunk = 1 << 16
	var file *storage.File
	runFlat(t, ranks, 2, func(c *mpi.Comm, sys storage.System) {
		f := func() *storage.File {
			if c.Rank() == 0 {
				file = sys.Create("out", storage.FileOptions{})
				file.SetCapture(true)
				return file
			}
			return nil
		}()
		got := c.Bcast(0, 8, f)
		w := New(c, sys, got.(*storage.File), Config{Aggregators: 2, BufferSize: 1 << 17})
		w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*chunk, chunk)}})
		w.WriteAll()
		c.Barrier()
	})
	if err := file.VerifyCoverage(0, ranks*chunk); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMultiVariableDeclaredIO(t *testing.T) {
	// Three variables (x, y, z) declared up front, AoS layout: coverage
	// must be exact and flushes should be few (dense reorganization).
	const ranks = 4
	const n = 512
	var file *storage.File
	runFlat(t, ranks, 2, func(c *mpi.Comm, sys storage.System) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("aos", storage.FileOptions{})
			f.SetCapture(true)
			file = f
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		base := int64(c.Rank()) * n * 12
		declared := [][]storage.Seg{
			{storage.Strided(base+0, 4, 12, n)},
			{storage.Strided(base+4, 4, 12, n)},
			{storage.Strided(base+8, 4, 12, n)},
		}
		w := New(c, sys, f, Config{Aggregators: 2, BufferSize: 4096})
		w.Init(declared)
		w.Write(0)
		w.Write(1)
		w.Write(2)
		c.Barrier()
	})
	if err := file.VerifyCoverage(0, ranks*n*12); err != nil {
		t.Fatal(err)
	}
	// Dense flushes: each write op covers a full buffer (one extent each).
	for _, rec := range file.Writes() {
		if storage.TotalRuns(rec.Segs) != 1 {
			t.Fatalf("non-contiguous flush: %+v", rec.Segs)
		}
	}
}

// TestWriteMisuseErrors: the session-state guards return descriptive errors
// instead of panicking — Write before Init, an out-of-range operation
// index, out-of-declared-order writes, and double Init.
func TestWriteMisuseErrors(t *testing.T) {
	nodes := 2
	topo := topology.NewFlat(nodes)
	fab := netsim.New(topo, netsim.Config{})
	sys := storage.NewNullFS()
	_, err := mpi.Run(mpi.Config{Ranks: 2, RanksPerNode: 1, Fabric: fab}, func(c *mpi.Comm) {
		f := sys.Lookup("f")
		if c.Rank() == 0 && f == nil {
			f = sys.Create("f", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		w := New(c, sys, f, Config{Aggregators: 1})
		if err := w.Write(0); err == nil || !strings.Contains(err.Error(), "before Init") {
			panic("Write before Init did not error: " + fmt.Sprint(err))
		}
		base := int64(c.Rank()) * 20
		decl := [][]storage.Seg{{storage.Contig(base, 10)}, {storage.Contig(base+10, 10)}}
		if err := w.Init(decl); err != nil {
			panic(err)
		}
		if err := w.Init(decl); err == nil || !strings.Contains(err.Error(), "Init called twice") {
			panic("double Init did not error: " + fmt.Sprint(err))
		}
		if err := w.Write(2); err == nil || !strings.Contains(err.Error(), "out of range") {
			panic("out-of-range Write did not error: " + fmt.Sprint(err))
		}
		if err := w.Write(1); err == nil || !strings.Contains(err.Error(), "out of declared order") {
			panic("out-of-order Write did not error: " + fmt.Sprint(err))
		}
		// The guards must leave the session usable: the declared writes
		// still complete in order.
		if err := w.WriteAll(); err != nil {
			panic(err)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregatorElectionUnique(t *testing.T) {
	const ranks = 16
	aggs := map[int]int{} // partition → count of aggregators
	world := make([]int, 0)
	runFlat(t, ranks, 4, func(c *mpi.Comm, sys storage.System) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("f", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		w := New(c, sys, f, Config{Aggregators: 4, BufferSize: 4096})
		w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*1024, 1024)}})
		if w.Aggregator() {
			aggs[w.Stats().Partition]++
			world = append(world, c.Rank())
		}
		w.WriteAll()
		c.Barrier()
	})
	if len(aggs) != 4 {
		t.Fatalf("aggregators in %d partitions, want 4", len(aggs))
	}
	for part, n := range aggs {
		if n != 1 {
			t.Fatalf("partition %d has %d aggregators", part, n)
		}
	}
}

func TestElectionConsensus(t *testing.T) {
	// Every member of a partition must agree on the elected world rank.
	const ranks = 12
	perPart := map[int]map[int]bool{}
	runFlat(t, ranks, 3, func(c *mpi.Comm, sys storage.System) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("f", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		w := New(c, sys, f, Config{Aggregators: 3, BufferSize: 4096})
		w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*100, 100)}})
		st := w.Stats()
		if perPart[st.Partition] == nil {
			perPart[st.Partition] = map[int]bool{}
		}
		perPart[st.Partition][st.AggregatorWorldRank] = true
		w.WriteAll()
		c.Barrier()
	})
	for part, set := range perPart {
		if len(set) != 1 {
			t.Fatalf("partition %d disagrees on aggregator: %v", part, set)
		}
	}
}

// electOnTorus runs an election on a Mira-like torus where partition data
// skews toward high-index nodes, so the topology-aware choice must differ
// from rank order and have lower cost.
func TestTopologyAwareBeatsRankOrderCost(t *testing.T) {
	topo := topology.MiraTorus(128)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
	sys := storage.NewNullFS()
	const ranks = 128
	costs := map[string]float64{} // placement name → elected candidate's cost
	for _, placement := range []cost.Placement{PlacementTopologyAware, PlacementRankOrder, PlacementWorst} {
		var electedCost float64
		_, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: 1, Fabric: fab}, func(c *mpi.Comm) {
			var f *storage.File
			if c.Rank() == 0 {
				f = sys.Create("f", storage.FileOptions{})
			}
			f = c.Bcast(0, 8, f).(*storage.File)
			// Data volume grows with rank: the cheap aggregator sits near
			// the heavy ranks, not at rank 0.
			bytes := int64(c.Rank()+1) * 4096
			w := New(c, sys, f, Config{Aggregators: 1, Placement: placement, BufferSize: 1 << 20})
			w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*4096*130, bytes)}})
			if w.Aggregator() {
				electedCost = w.Stats().ElectionCost
			}
			w.WriteAll()
			c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		costs[placement.Name()] = electedCost
	}
	if costs[PlacementTopologyAware.Name()] <= 0 {
		t.Fatal("no elected cost recorded")
	}
	if costs[PlacementTopologyAware.Name()] > costs[PlacementWorst.Name()] {
		t.Fatalf("topology-aware cost %v worse than adversarial %v",
			costs[PlacementTopologyAware.Name()], costs[PlacementWorst.Name()])
	}
}

// electedCostOn runs one skewed-data election per placement on the given
// topology and returns the elected aggregator's own candidacy cost and
// world rank.
func electedCostOn(t *testing.T, topo topology.Topology, placement cost.Placement) (float64, int) {
	t.Helper()
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
	sys := storage.NewNullFS()
	ranks := topo.Nodes()
	var electedCost float64
	var electedRank int
	_, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: 1, Fabric: fab}, func(c *mpi.Comm) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("f", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		bytes := int64(c.Rank()+1) * 4096
		w := New(c, sys, f, Config{Aggregators: 1, Placement: placement, BufferSize: 1 << 20})
		w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*4096*int64(ranks+2), bytes)}})
		if w.Aggregator() {
			electedCost = w.Stats().ElectionCost
			electedRank = c.Rank()
		}
		w.WriteAll()
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return electedCost, electedRank
}

// TestTopologyAwareNoWorseThanWorstBothPlatforms asserts the election
// invariant on both of the paper's platforms: the cost-model minimum can
// never exceed the adversarial maximum.
func TestTopologyAwareNoWorseThanWorstBothPlatforms(t *testing.T) {
	for _, tc := range []struct {
		name string
		topo topology.Topology
	}{
		{"mira", topology.MiraTorus(128)},
		{"theta", topology.ThetaDragonfly(64, topology.RouteMinimal)},
	} {
		best, _ := electedCostOn(t, tc.topo, PlacementTopologyAware)
		worst, _ := electedCostOn(t, tc.topo, PlacementWorst)
		if best <= 0 || worst <= 0 {
			t.Fatalf("%s: missing elected costs (best %v, worst %v)", tc.name, best, worst)
		}
		if best > worst {
			t.Fatalf("%s: topology-aware cost %v exceeds adversarial %v", tc.name, best, worst)
		}
	}
}

// TestPlacementDeterministicAcrossRuns re-runs each election and demands the
// same winner — the repository's virtual-time reproducibility contract.
func TestPlacementDeterministicAcrossRuns(t *testing.T) {
	for _, placement := range []cost.Placement{
		PlacementTopologyAware, PlacementRankOrder, PlacementRandom,
		PlacementWorst, PlacementTwoLevel,
	} {
		_, first := electedCostOn(t, topology.MiraTorus(128), placement)
		for i := 0; i < 2; i++ {
			if _, got := electedCostOn(t, topology.MiraTorus(128), placement); got != first {
				t.Fatalf("%s: elected rank %d then %d", placement.Name(), first, got)
			}
		}
	}
}

// TestTwoLevelElectsNodeLeader checks that the intra-node variant only
// elects each node's first partition member.
func TestTwoLevelElectsNodeLeader(t *testing.T) {
	leaders := map[int]bool{}
	runFlat(t, 16, 4, func(c *mpi.Comm, sys storage.System) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("f", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		w := New(c, sys, f, Config{Aggregators: 2, Placement: PlacementTwoLevel, BufferSize: 4096})
		w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*1024, 1024)}})
		if w.Aggregator() {
			leaders[c.Rank()] = true
		}
		if w.Stats().Placement != "two-level" {
			t.Errorf("stats placement = %q", w.Stats().Placement)
		}
		w.WriteAll()
		c.Barrier()
	})
	for r := range leaders {
		// 4 ranks per node: leaders are partition-local first members, which
		// with 2 partitions of 8 ranks land on ranks ≡ 0 (mod 4).
		if r%4 != 0 {
			t.Fatalf("two-level elected rank %d, not a node leader", r)
		}
	}
	if len(leaders) != 2 {
		t.Fatalf("elected %d aggregators, want 2", len(leaders))
	}
}

func TestRoundsMatchFormula(t *testing.T) {
	runFlat(t, 8, 2, func(c *mpi.Comm, sys storage.System) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("f", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		const perRank = 10_000
		w := New(c, sys, f, Config{Aggregators: 2, BufferSize: 8192})
		w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*perRank, perRank)}})
		// Partition bytes = 4 ranks × 10 KB = 40 KB; buffer 8 KB → 5 rounds.
		if w.Rounds() != 5 {
			t.Errorf("rounds = %d, want 5", w.Rounds())
		}
		w.WriteAll()
		c.Barrier()
	})
}

func TestElectionOverheadSentinel(t *testing.T) {
	// Zero means "default" (50 µs); the ElectionDisabled sentinel charges
	// nothing — before it existed, zero overhead was unrepresentable.
	var cfg Config
	cfg.ApplyDefaults(64)
	if cfg.ElectionOverhead != 50_000 {
		t.Fatalf("default overhead = %d, want 50µs", cfg.ElectionOverhead)
	}
	cfg = Config{ElectionOverhead: ElectionDisabled}
	cfg.ApplyDefaults(64)
	if cfg.ElectionOverhead >= 0 {
		t.Fatalf("sentinel resolved to %d, must stay disabled", cfg.ElectionOverhead)
	}
	// End to end: a disabled election finishes Init strictly earlier.
	elapsed := func(overhead int64) int64 {
		var now int64
		runFlat(t, 4, 2, func(c *mpi.Comm, sys storage.System) {
			var f *storage.File
			if c.Rank() == 0 {
				f = sys.Create("f", storage.FileOptions{})
			}
			f = c.Bcast(0, 8, f).(*storage.File)
			w := New(c, sys, f, Config{Aggregators: 1, ElectionOverhead: overhead})
			w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*100, 100)}})
			if c.Rank() == 0 {
				now = c.Now()
			}
			w.WriteAll()
			c.Barrier()
		})
		return now
	}
	def, disabled := elapsed(0), elapsed(ElectionDisabled)
	if disabled >= def {
		t.Fatalf("disabled election Init (%d ns) not earlier than default (%d ns)", disabled, def)
	}
	if def-disabled < 50_000 {
		t.Fatalf("default charged only %d ns over disabled, want >= 50µs", def-disabled)
	}
}

func TestEstimatePlanMatchesPlanner(t *testing.T) {
	const mb = 1 << 20
	all := make([][]storage.Seg, 8)
	for r := range all {
		all[r] = []storage.Seg{storage.Contig(int64(r)*mb, mb)}
	}
	est := EstimatePlan(all, Config{Aggregators: 2, BufferSize: 2 * mb}, 0)
	if est.Aggregators != 2 || est.Rounds != 2 || est.TotalBytes != 8*mb {
		t.Fatalf("estimate = %+v", est)
	}
	for pi, pe := range est.Parts {
		if pe.Ranks != 4 || pe.Bytes != 4*mb || pe.Rounds != 2 {
			t.Fatalf("part %d = %+v", pi, pe)
		}
		if pe.FirstRank != pi*4 {
			t.Fatalf("part %d first rank = %d", pi, pe.FirstRank)
		}
		for r, fb := range pe.FlushBytes {
			if fb != 2*mb || pe.FlushRuns[r] != 1 {
				t.Fatalf("part %d round %d: %d bytes in %d runs", pi, r, fb, pe.FlushRuns[r])
			}
		}
		for i, om := range pe.MemberBytes {
			if om != mb {
				t.Fatalf("part %d member %d omega = %d", pi, i, om)
			}
		}
	}
	// Defaults resolve like a live session: zero config on 64 ranks.
	est = EstimatePlan(make([][]storage.Seg, 64), Config{}, 0)
	if est.Aggregators != 4 {
		t.Fatalf("default aggregators = %d, want 64/16", est.Aggregators)
	}
}

func TestReadPipelineCompletes(t *testing.T) {
	const ranks = 8
	const chunk = 1 << 14
	runFlat(t, ranks, 2, func(c *mpi.Comm, sys storage.System) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("f", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		segs := [][]storage.Seg{{storage.Contig(int64(c.Rank())*chunk, chunk)}}
		ww := New(c, sys, f, Config{Aggregators: 2, BufferSize: 1 << 15})
		ww.Init(segs)
		ww.WriteAll()
		c.Barrier()
		wr := New(c, sys, f, Config{Aggregators: 2, BufferSize: 1 << 15})
		wr.Init(segs)
		before := c.Now()
		wr.ReadAll()
		if c.Now() <= before {
			t.Error("read consumed no virtual time")
		}
		c.Barrier()
		if c.Rank() == 0 && f.BytesRead() == 0 {
			t.Error("no storage reads recorded")
		}
	})
}

func TestDoubleBufferFasterThanSingle(t *testing.T) {
	// With storage flush time comparable to aggregation time, pipelining
	// must beat the single-buffer ablation.
	run := func(single bool) int64 {
		nodes := 16
		topo := topology.NewFlat(nodes)
		topo.LinkBW = 2e9
		fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
		sys := storage.NewNullFS()
		sys.PerOp = 2 * sim.Millisecond // slow-ish storage
		eng, err := mpi.Run(mpi.Config{Ranks: 16, RanksPerNode: 1, Fabric: fab}, func(c *mpi.Comm) {
			var f *storage.File
			if c.Rank() == 0 {
				f = sys.Create("f", storage.FileOptions{})
			}
			f = c.Bcast(0, 8, f).(*storage.File)
			const chunk = 4 << 20
			w := New(c, sys, f, Config{Aggregators: 2, BufferSize: 4 << 20, SingleBuffer: single})
			w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*chunk, chunk)}})
			w.WriteAll()
			c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	double := run(false)
	single := run(true)
	if double >= single {
		t.Fatalf("double buffering (%d) not faster than single (%d)", double, single)
	}
}

func TestStatsAccounting(t *testing.T) {
	const ranks = 4
	const chunk = 10_000
	runFlat(t, ranks, 1, func(c *mpi.Comm, sys storage.System) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("f", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		w := New(c, sys, f, Config{Aggregators: 1, BufferSize: 16384})
		w.Init([][]storage.Seg{{storage.Contig(int64(c.Rank())*chunk, chunk)}})
		w.WriteAll()
		st := w.Stats()
		if st.BytesPut != chunk {
			t.Errorf("rank %d BytesPut = %d", c.Rank(), st.BytesPut)
		}
		if w.Aggregator() {
			if st.BytesFlushed != ranks*chunk {
				t.Errorf("BytesFlushed = %d", st.BytesFlushed)
			}
			if st.Flushes != 3 { // ceil(40000/16384)
				t.Errorf("Flushes = %d", st.Flushes)
			}
		} else if st.BytesFlushed != 0 {
			t.Errorf("non-aggregator flushed %d", st.BytesFlushed)
		}
		c.Barrier()
	})
}

func TestEmptyRanksParticipate(t *testing.T) {
	// Ranks with no data must still complete collectively.
	runFlat(t, 6, 2, func(c *mpi.Comm, sys storage.System) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("f", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		w := New(c, sys, f, Config{Aggregators: 2, BufferSize: 4096})
		var segs []storage.Seg
		if c.Rank()%2 == 0 {
			segs = []storage.Seg{storage.Contig(int64(c.Rank())*1000, 1000)}
		}
		w.Init([][]storage.Seg{segs})
		w.WriteAll()
		c.Barrier()
	})
}

func TestOverlappingDeclarationsPanic(t *testing.T) {
	nodes := 2
	topo := topology.NewFlat(nodes)
	fab := netsim.New(topo, netsim.Config{})
	sys := storage.NewNullFS()
	_, err := mpi.Run(mpi.Config{Ranks: 2, RanksPerNode: 1, Fabric: fab}, func(c *mpi.Comm) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("f", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		w := New(c, sys, f, Config{Aggregators: 1})
		// Both ranks declare the same extent: overdeclared region.
		w.Init([][]storage.Seg{{storage.Contig(0, 1000)}})
		w.WriteAll()
	})
	if err == nil || !strings.Contains(err.Error(), "overdeclared") {
		t.Fatalf("err = %v", err)
	}
}
