package core

import (
	"fmt"

	"tapioca/internal/sim"
	"tapioca/internal/storage"
)

// grow returns scratch with capacity for n bytes (reused across rounds).
func grow(scratch []byte, n int64) []byte {
	if int64(cap(scratch)) < n {
		return make([]byte, n)
	}
	return scratch[:n]
}

// gatherPiece fills the rank's put payload for one round: its declared bytes
// inside the round's file window, in file-offset order — the layout the
// aggregator's flush assumes. Phantom sessions return nil.
func (w *Writer) gatherPiece(r int, bytes int64) ([]byte, error) {
	if w.pl == nil {
		return nil, nil
	}
	lo, hi := storage.SpanAll(w.plan.parts[w.part].flush[r].segs)
	w.gatherB = grow(w.gatherB, bytes)
	if n := w.pl.Gather(w.gatherB, lo, hi); n != bytes {
		return nil, fmt.Errorf("core: round %d gather produced %d bytes, plan expects %d", r, n, bytes)
	}
	return w.gatherB, nil
}

// runWrite executes the paper's Algorithm 3 over the partition: for every
// round, members put their pieces into the active buffer via one-sided
// communication; the fence closes the epoch; the aggregator then flushes the
// filled buffer with a non-blocking write while the next round aggregates
// into the other buffer. Before reusing a buffer, the aggregator waits for
// its previous flush — arriving late at the fence, which is how a slow
// storage phase throttles the whole partition.
//
// With the data plane on, the same schedule moves real bytes: puts carry
// payload slices into the aggregator's window memory, and each flush
// scatters the filled buffer into the file's backing store via the plan's
// buffer-ordered run layout. Data-plane errors are deferred to the return
// value: the fences and the closing barrier are collective, so a rank must
// finish the round structure in lockstep even when its store fails.
func (w *Writer) runWrite() error {
	pp := &w.plan.parts[w.part]
	p := w.c.Proc()
	myPieces := w.plan.piecesOf(w.c.Rank())
	var pending [2]*sim.Event
	var dataErr error
	idx := 0
	for r := 0; r < pp.rounds; r++ {
		bufID := int64(r % 2)
		// The round's puts: the plan coalesces each rank's contribution to
		// one piece per round in the common case, and the last put's
		// injection hold is deferred into the fence (FenceAfter) — one
		// context switch per rank per round instead of two.
		var deferredFree int64
		for idx < len(myPieces) && myPieces[idx].round == r {
			pc := myPieces[idx]
			if deferredFree > 0 {
				p.HoldUntil(deferredFree) // yield before booking another put
			}
			payload, err := w.gatherPiece(r, pc.bytes)
			if err != nil && dataErr == nil {
				dataErr = err // keep the round structure; the put goes phantom
			}
			deferredFree = w.win.PutAsync(w.aggLocal, bufID*w.cfg.BufferSize+pc.bufOff, pc.bytes, payload)
			w.stats.BytesPut += pc.bytes
			idx++
		}
		// Buffer-reuse guard: the fence cannot release until the aggregator
		// has finished the flush that last used this buffer.
		if w.isAgg && pending[bufID] != nil {
			pending[bufID].Wait(p)
			pending[bufID] = nil
		}
		w.win.FenceAfter(deferredFree)
		if w.isAgg {
			fl := pp.flush[r]
			if fl.bytes > 0 {
				if w.pl != nil {
					// The fence published every member's payload; scatter the
					// filled buffer into the backing store before reusing it.
					buf := w.win.LocalData()[bufID*w.cfg.BufferSize:]
					if err := w.f.StoreWrite(w.plan.layoutOf(w.part, r), buf[:fl.bytes]); err != nil && dataErr == nil {
						dataErr = err
					}
				}
				ev := w.sys.WriteAsync(p, w.pc.Node(), w.f, fl.segs)
				w.stats.BytesFlushed += fl.bytes
				w.stats.Flushes++
				if w.cfg.SingleBuffer {
					ev.Wait(p)
				} else {
					pending[bufID] = ev
				}
			}
		}
		if w.cfg.SingleBuffer {
			// Ablation: with one buffer the next round's aggregation cannot
			// start until the flush lands; a second fence serializes it.
			w.win.Fence()
		}
	}
	// Drain outstanding flushes, then close the session collectively.
	if w.isAgg {
		for _, ev := range pending {
			if ev != nil {
				ev.Wait(p)
			}
		}
	}
	w.pc.Barrier()
	return dataErr
}

// runRead executes the reverse pipeline: the aggregator prefetches round
// r+1 into the inactive buffer while members pull round r's pieces with
// one-sided gets. Two fences bound each round: one publishing the buffer,
// one closing the get epoch.
//
// With the data plane on, the prefetch gathers real bytes from the backing
// store into the window buffer, and each member's get scatters its piece
// back into the payload buffers it passed to InitData.
func (w *Writer) runRead() error {
	pp := &w.plan.parts[w.part]
	p := w.c.Proc()
	myPieces := w.plan.piecesOf(w.c.Rank())
	var pending [2]*sim.Event
	var prefetchErr error
	prefetch := func(r int) {
		if w.isAgg && r < pp.rounds && pp.flush[r].bytes > 0 {
			if w.pl != nil {
				// Fill the inactive buffer from the backing store; the next
				// fence publishes it to the members' gets.
				buf := w.win.LocalData()[int64(r%2)*w.cfg.BufferSize:]
				if err := w.f.StoreRead(w.plan.layoutOf(w.part, r), buf[:pp.flush[r].bytes]); err != nil && prefetchErr == nil {
					prefetchErr = err
				}
			}
			pending[r%2] = w.sys.ReadAsync(p, w.pc.Node(), w.f, pp.flush[r].segs)
			w.stats.BytesFlushed += pp.flush[r].bytes
			w.stats.Flushes++
		}
	}
	if !w.cfg.SingleBuffer {
		prefetch(0)
	}
	idx := 0
	for r := 0; r < pp.rounds; r++ {
		bufID := int64(r % 2)
		if w.cfg.SingleBuffer {
			// Ablation: no prefetch — read this round's data synchronously.
			prefetch(r)
		}
		// The aggregator publishes the buffer once its read lands.
		if w.isAgg && pending[bufID] != nil {
			pending[bufID].Wait(p)
			pending[bufID] = nil
		}
		w.win.Fence()
		// Members pull their pieces; the aggregator prefetches the next
		// round into the other buffer meanwhile.
		for idx < len(myPieces) && myPieces[idx].round == r {
			pc := myPieces[idx]
			if w.pl != nil {
				lo, hi := storage.SpanAll(pp.flush[r].segs)
				w.gatherB = grow(w.gatherB, pc.bytes)
				w.win.GetInto(w.aggLocal, bufID*w.cfg.BufferSize+pc.bufOff, w.gatherB)
				if n := w.pl.Scatter(w.gatherB, lo, hi); n != pc.bytes && prefetchErr == nil {
					// Deferred like prefetch errors: the fences are collective.
					prefetchErr = fmt.Errorf("core: round %d scatter consumed %d bytes, plan expects %d", r, n, pc.bytes)
				}
			} else {
				w.win.Get(w.aggLocal, bufID*w.cfg.BufferSize+pc.bufOff, pc.bytes)
			}
			w.stats.BytesPut += pc.bytes
			idx++
		}
		if !w.cfg.SingleBuffer {
			prefetch(r + 1)
		}
		w.win.Fence() // closes the get epoch
	}
	w.pc.Barrier()
	return prefetchErr
}
