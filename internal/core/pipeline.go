package core

import (
	"tapioca/internal/sim"
)

// runWrite executes the paper's Algorithm 3 over the partition: for every
// round, members put their pieces into the active buffer via one-sided
// communication; the fence closes the epoch; the aggregator then flushes the
// filled buffer with a non-blocking write while the next round aggregates
// into the other buffer. Before reusing a buffer, the aggregator waits for
// its previous flush — arriving late at the fence, which is how a slow
// storage phase throttles the whole partition.
func (w *Writer) runWrite() {
	pp := &w.plan.parts[w.part]
	p := w.c.Proc()
	myPieces := w.plan.piecesOf(w.c.Rank())
	var pending [2]*sim.Event
	idx := 0
	for r := 0; r < pp.rounds; r++ {
		bufID := int64(r % 2)
		// The round's puts: the plan coalesces each rank's contribution to
		// one piece per round in the common case, and the last put's
		// injection hold is deferred into the fence (FenceAfter) — one
		// context switch per rank per round instead of two.
		var deferredFree int64
		for idx < len(myPieces) && myPieces[idx].round == r {
			pc := myPieces[idx]
			if deferredFree > 0 {
				p.HoldUntil(deferredFree) // yield before booking another put
			}
			deferredFree = w.win.PutAsync(w.aggLocal, bufID*w.cfg.BufferSize+pc.bufOff, pc.bytes, nil)
			w.stats.BytesPut += pc.bytes
			idx++
		}
		// Buffer-reuse guard: the fence cannot release until the aggregator
		// has finished the flush that last used this buffer.
		if w.isAgg && pending[bufID] != nil {
			pending[bufID].Wait(p)
			pending[bufID] = nil
		}
		w.win.FenceAfter(deferredFree)
		if w.isAgg {
			fl := pp.flush[r]
			if fl.bytes > 0 {
				ev := w.sys.WriteAsync(p, w.pc.Node(), w.f, fl.segs)
				w.stats.BytesFlushed += fl.bytes
				w.stats.Flushes++
				if w.cfg.SingleBuffer {
					ev.Wait(p)
				} else {
					pending[bufID] = ev
				}
			}
		}
		if w.cfg.SingleBuffer {
			// Ablation: with one buffer the next round's aggregation cannot
			// start until the flush lands; a second fence serializes it.
			w.win.Fence()
		}
	}
	// Drain outstanding flushes, then close the session collectively.
	if w.isAgg {
		for _, ev := range pending {
			if ev != nil {
				ev.Wait(p)
			}
		}
	}
	w.pc.Barrier()
}

// runRead executes the reverse pipeline: the aggregator prefetches round
// r+1 into the inactive buffer while members pull round r's pieces with
// one-sided gets. Two fences bound each round: one publishing the buffer,
// one closing the get epoch.
func (w *Writer) runRead() {
	pp := &w.plan.parts[w.part]
	p := w.c.Proc()
	myPieces := w.plan.piecesOf(w.c.Rank())
	var pending [2]*sim.Event
	prefetch := func(r int) {
		if w.isAgg && r < pp.rounds && pp.flush[r].bytes > 0 {
			pending[r%2] = w.sys.ReadAsync(p, w.pc.Node(), w.f, pp.flush[r].segs)
			w.stats.BytesFlushed += pp.flush[r].bytes
			w.stats.Flushes++
		}
	}
	if !w.cfg.SingleBuffer {
		prefetch(0)
	}
	idx := 0
	for r := 0; r < pp.rounds; r++ {
		bufID := int64(r % 2)
		if w.cfg.SingleBuffer {
			// Ablation: no prefetch — read this round's data synchronously.
			prefetch(r)
		}
		// The aggregator publishes the buffer once its read lands.
		if w.isAgg && pending[bufID] != nil {
			pending[bufID].Wait(p)
			pending[bufID] = nil
		}
		w.win.Fence()
		// Members pull their pieces; the aggregator prefetches the next
		// round into the other buffer meanwhile.
		for idx < len(myPieces) && myPieces[idx].round == r {
			pc := myPieces[idx]
			w.win.Get(w.aggLocal, bufID*w.cfg.BufferSize+pc.bufOff, pc.bytes)
			w.stats.BytesPut += pc.bytes
			idx++
		}
		if !w.cfg.SingleBuffer {
			prefetch(r + 1)
		}
		w.win.Fence() // closes the get epoch
	}
	w.pc.Barrier()
}
