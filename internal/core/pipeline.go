package core

import (
	"fmt"
	"time"

	"tapioca/internal/dataplane"
	"tapioca/internal/obs"
	"tapioca/internal/sim"
	"tapioca/internal/storage"
)

// hostClock returns the wall-clock start of a host-side measurement, or the
// zero time when observability is off. Host timings (real codec and store
// work on background goroutines) go only to the registry, under the "host."
// prefix — never into the deterministic virtual-time trace.
func hostClock(rec *obs.Recorder) time.Time {
	if rec == nil {
		return time.Time{}
	}
	return time.Now()
}

// hostObserve records the wall seconds since start into a "host." histogram.
// The registry is goroutine-safe, so background store jobs report directly.
func hostObserve(rec *obs.Recorder, name string, start time.Time) {
	if start.IsZero() {
		return
	}
	rec.Registry().Observe(name, time.Since(start).Seconds())
}

// grow returns scratch with capacity for n bytes (reused across rounds).
func grow(scratch []byte, n int64) []byte {
	if int64(cap(scratch)) < n {
		return make([]byte, n)
	}
	return scratch[:n]
}

// storeJob is one round's real store I/O running on a background goroutine,
// off the simulation's critical path: the double-buffer schedule that
// already overlaps the virtual flush with the next round's aggregation now
// carries the actual bytes too. At most one job per writer is in flight
// (the join point precedes the next launch), so the writer's codec scratch
// needs no locking.
type storeJob struct {
	done   chan struct{}
	err    error
	stored int64 // post-codec bytes handed to the store (codec rounds)
}

// launchStore runs fn on a background goroutine. Everything fn touches must
// be captured in a synchronized context before the launch (window slices,
// layouts, the file's attached store).
func launchStore(fn func() (int64, error)) *storeJob {
	j := &storeJob{done: make(chan struct{})}
	go func() {
		defer close(j.done)
		j.stored, j.err = fn()
	}()
	return j
}

// codecModel resolves the codec's deterministic pricing terms: compress and
// decompress nanoseconds-per-byte and the modeled compressed size of n
// bytes. Virtual time must not depend on payload content, so the model —
// not the achieved ratio — is what the simulation charges.
func (w *Writer) codecModel() (cNsPerByte, dNsPerByte float64) {
	crate, drate := w.cfg.Codec.ModelRates()
	return 1e9 / crate, 1e9 / drate
}

// flushSegsFor prices a round's flush extent: without a codec the plan's
// real extents, with one a single contiguous extent of the modeled
// compressed size at the round's base offset.
func (w *Writer) flushSegsFor(fl flushInfo) []storage.Seg {
	if w.cfg.Codec == nil {
		return fl.segs
	}
	lo, _ := storage.SpanAll(fl.segs)
	return []storage.Seg{storage.Contig(lo, dataplane.ModeledSize(w.cfg.Codec, fl.bytes))}
}

// storeRound lands one filled buffer in the backing store. With a codec the
// bytes genuinely round-trip through it (compress, then decompress into the
// store), so the reduction stage is verified by the same end-to-end
// checksums as the rest of the pipeline; the achieved compressed size is
// returned for stats.
// dmg and repair carry the fault plane's corruption decision for this round
// (both zero on the fault-free path): after the write lands, applyDamage
// flips the damaged byte and — with repair on — scrubs it back.
func (w *Writer) storeRound(buf []byte, layout []storage.Seg, dmg []int64, repair bool) (stored int64, err error) {
	codec := w.cfg.Codec
	if codec == nil {
		t := hostClock(w.rec)
		err := w.f.StoreWrite(layout, buf)
		hostObserve(w.rec, "host.store_write_seconds", t)
		if err == nil && len(dmg) > 0 {
			err = applyDamage(w.f, layout, buf, dmg, repair)
		}
		return 0, err
	}
	t := hostClock(w.rec)
	w.compB = codec.Compress(w.compB, buf)
	hostObserve(w.rec, "host.codec_compress_seconds", t)
	stored = int64(len(w.compB))
	w.decompB = grow(w.decompB, int64(len(buf)))
	t = hostClock(w.rec)
	if err := codec.Decompress(w.decompB, w.compB); err != nil {
		return stored, fmt.Errorf("core: codec %s round trip on flush: %w", codec.Name(), err)
	}
	hostObserve(w.rec, "host.codec_decompress_seconds", t)
	t = hostClock(w.rec)
	err = w.f.StoreWrite(layout, w.decompB)
	hostObserve(w.rec, "host.store_write_seconds", t)
	if err == nil && len(dmg) > 0 {
		err = applyDamage(w.f, layout, w.decompB, dmg, repair)
	}
	return stored, err
}

// runWrite executes the paper's Algorithm 3 over the partition: for every
// round, members put their pieces into the active buffer via one-sided
// communication; the fence closes the epoch; the aggregator then flushes the
// filled buffer with a non-blocking write while the next round aggregates
// into the other buffer. Before reusing a buffer, the aggregator waits for
// its previous flush — arriving late at the fence, which is how a slow
// storage phase throttles the whole partition.
//
// With the data plane on, the same schedule moves real bytes, zero-copy:
// each put's payload is gathered by dataplane.Plane.Each directly into the
// aggregator's window memory (Win.PutGather — no intermediate buffer), and
// the aggregator's real store I/O for round r runs on a background goroutine
// while round r+1 aggregates, joined before the fence that would let
// members overwrite that buffer. Data-plane errors are deferred to the
// return value: the fences and the closing barrier are collective, so a
// rank must finish the round structure in lockstep even when its store
// fails.
func (w *Writer) runWrite() error {
	pp := &w.plan.parts[w.part]
	p := w.c.Proc()
	myPieces := w.plan.piecesOf(w.c.Rank())
	var pending [2]*sim.Event
	var jobs [2]*storeJob
	var dataErr error
	join := func(bufID int64) {
		if j := jobs[bufID]; j != nil {
			<-j.done
			if j.err != nil && dataErr == nil {
				dataErr = j.err
			}
			w.stats.BytesCompressed += j.stored
			jobs[bufID] = nil
		}
	}
	var cNsPerByte float64
	if w.cfg.Codec != nil {
		cNsPerByte, _ = w.codecModel()
	}
	rec := w.rec
	faults := w.cfg.Faults != nil
	deadRound := w.deathRound()
	idx := 0
	for r := 0; r < pp.rounds; r++ {
		bufID := int64(r % 2)
		if faults || rec != nil {
			p.SetPhaseLabel(fmt.Sprintf("tapioca round %d/%d", r+1, pp.rounds))
		}
		if r == deadRound {
			if err := w.failover(p, r, &pending, join, &dataErr); err != nil {
				return err
			}
		}
		var roundStart int64
		var roundPut int64
		if faults || rec != nil {
			roundStart = p.Now()
		}
		if rec != nil {
			roundPut = w.stats.BytesPut
		}
		// The round's puts: the plan coalesces each rank's contribution to
		// one piece per round in the common case, and the last put's
		// injection hold is deferred into the fence (FenceAfter) — one
		// context switch per rank per round instead of two.
		var deferredFree int64
		var sr *stageRound
		if w.stage != nil && w.stage.rounds[r].staged {
			sr = &w.stage.rounds[r]
		}
		ownStart := idx
		for idx < len(myPieces) && myPieces[idx].round == r {
			pc := myPieces[idx]
			if (sr != nil && w.stage.leader) || w.tp.active(r) {
				// Leader: own pieces ride in the coalesced put below — the
				// staged inline put, or (diverted tree vertices) the interior
				// forward of the whole subtree span.
				w.stats.BytesPut += pc.bytes
				idx++
				continue
			}
			if deferredFree > 0 {
				p.HoldUntil(deferredFree) // yield before booking another put
			}
			if sr != nil {
				// Staged member: deposit into the leader's staging buffer —
				// a shared-memory copy at memory bandwidth, not a fabric
				// message. The leader's coalesced put carries it onward.
				var fill func(dst []byte)
				if w.pl != nil {
					lo, hi := storage.SpanAll(pp.flush[r].segs)
					round := r
					fill = func(dst []byte) {
						if n := w.pl.Gather(dst, lo, hi); n != int64(len(dst)) && dataErr == nil {
							dataErr = fmt.Errorf("core: round %d staged gather produced %d bytes, plan expects %d", round, n, len(dst))
						}
					}
				}
				deferredFree, _ = w.win.StagePut(w.stage.leaderLocal, bufID*w.cfg.BufferSize+pc.bufOff, pc.bytes, fill)
				w.stats.BytesPut += pc.bytes
				idx++
				continue
			}
			if w.pl != nil {
				lo, hi := storage.SpanAll(pp.flush[r].segs)
				round := r
				deferredFree = w.win.PutGather(w.aggLocal, bufID*w.cfg.BufferSize+pc.bufOff, pc.bytes, func(dst []byte) {
					if n := w.pl.Gather(dst, lo, hi); n != int64(len(dst)) && dataErr == nil {
						dataErr = fmt.Errorf("core: round %d gather produced %d bytes, plan expects %d", round, n, len(dst))
					}
				})
			} else {
				deferredFree = w.win.PutAsync(w.aggLocal, bufID*w.cfg.BufferSize+pc.bufOff, pc.bytes, nil)
			}
			w.stats.BytesPut += pc.bytes
			idx++
		}
		if sr != nil {
			// Node rendezvous: members contribute their deposit-completion
			// times to the shared-memory fence (the leader, with no deposit,
			// contributes zero), so the leader reads the staged region only
			// after every deposit has landed — then issues the group's single
			// coalesced inter-node put for the round.
			w.stage.nodeComm.FenceLocal(deferredFree)
			deferredFree = 0
			if w.stage.leader && !w.tp.active(r) {
				var fill func(dst []byte)
				if w.pl != nil {
					base := bufID * w.cfg.BufferSize
					staged := w.win.LocalData()[base+sr.lo : base+sr.hi]
					lo, hi := storage.SpanAll(pp.flush[r].segs)
					own := myPieces[ownStart:idx]
					groupLo := sr.lo
					round := r
					fill = func(dst []byte) {
						// Members' deposits first (the leader's own subranges
						// hold garbage there), then the leader's bytes over
						// their slots — dst leaves here fully populated.
						copy(dst, staged)
						for _, opc := range own {
							sub := dst[opc.bufOff-groupLo:][:opc.bytes]
							if n := w.pl.Gather(sub, lo, hi); n != opc.bytes && dataErr == nil {
								dataErr = fmt.Errorf("core: round %d leader gather produced %d bytes, plan expects %d", round, n, opc.bytes)
							}
						}
					}
				}
				deferredFree = w.win.PutGather(w.aggLocal, bufID*w.cfg.BufferSize+sr.lo, sr.hi-sr.lo, fill)
				if w.tp != nil && !w.tp.collapsed && w.tp.engaged[r] {
					// Childless depth-1 vertex under an engaged tree: its
					// inline put IS its level-1 send.
					w.tp.msgs[1]++
				}
			}
		}
		if rec != nil {
			// Aggregation phase: the puts loop plus the deferred injection
			// hold that FenceAfter will ride into the fence.
			aggEnd := p.Now()
			if deferredFree > aggEnd {
				aggEnd = deferredFree
			}
			rec.Phase(obs.PhaseAggregation, aggEnd-roundStart)
			p.TraceSpan("tapioca", "gather", roundStart, aggEnd, w.stats.BytesPut-roundPut)
		}
		if w.tp != nil && w.tp.fences > 0 {
			// Interior tree levels, deepest first: a vertex at depth d
			// forwards its whole subtree span to its parent, and the level's
			// fence publishes it before depth d−1 reads. The fence count is
			// the partition's frozen budget — every member fences every
			// level every round, engaged, collapsed, or idle (fences are
			// partition collectives). Depth-1 relays forward last, riding
			// the round's main fence exactly like the staged leader's put.
			own := myPieces[ownStart:idx]
			for d := w.tp.fences + 1; d >= 2; d-- {
				levelStart := p.Now()
				var sent int64
				if w.tp.active(r) && w.tp.depth == d {
					deferredFree, sent = w.treeForward(r, bufID, own, &dataErr)
				}
				w.win.FenceAfter(deferredFree)
				deferredFree = 0
				if rec != nil {
					rec.Phase(obs.PhaseExchange, p.Now()-levelStart)
					p.TraceSpan("tapioca", fmt.Sprintf("tree-level-%d", d), levelStart, p.Now(), sent)
				}
			}
			if w.tp.active(r) && w.tp.depth == 1 {
				deferredFree, _ = w.treeForward(r, bufID, own, &dataErr)
			}
		}
		// Join the store job still reading the other buffer: the fence we
		// are about to enter releases members into the round that next
		// overwrites it. (The virtual flush completion is enforced
		// separately by pending[…] below — joining here costs no virtual
		// time, it is the host-side happens-before edge.)
		join(1 - bufID)
		// Buffer-reuse guard: the fence cannot release until the aggregator
		// has finished the flush that last used this buffer.
		if w.isAgg && pending[bufID] != nil {
			waitStart := p.Now()
			pending[bufID].Wait(p)
			pending[bufID] = nil
			if rec != nil {
				rec.Phase(obs.PhaseStorage, p.Now()-waitStart)
				p.TraceSpan("tapioca", "flush-wait", waitStart, p.Now(), 0)
			}
		}
		var fenceStart int64
		if rec != nil {
			if fenceStart = p.Now(); deferredFree > fenceStart {
				fenceStart = deferredFree
			}
		}
		w.win.FenceAfter(deferredFree)
		if rec != nil {
			rec.Phase(obs.PhaseExchange, p.Now()-fenceStart)
			p.TraceSpan("tapioca", "exchange", fenceStart, p.Now(), 0)
		}
		if w.isAgg {
			fl := pp.flush[r]
			if fl.bytes > 0 {
				if w.cfg.Codec != nil {
					// The reduction stage: compress compute before the flush
					// can be issued, then a smaller flush extent.
					cd := int64(float64(fl.bytes) * cNsPerByte)
					p.Hold(cd)
					if rec != nil {
						rec.Phase(obs.PhaseCodec, cd)
						p.TraceSpan("tapioca", "compress", p.Now()-cd, p.Now(), fl.bytes)
					}
					if w.pl == nil {
						w.stats.BytesCompressed += dataplane.ModeledSize(w.cfg.Codec, fl.bytes)
					}
				}
				var dmg []int64
				var repair bool
				if faults {
					dmg, repair = w.checkCorruption(p, r, fl)
				}
				if w.pl != nil {
					// The fence published every member's payload; hand the
					// filled buffer to the background store job. Everything
					// the job touches is resolved here, in proc context.
					buf := w.win.LocalData()[bufID*w.cfg.BufferSize:][:fl.bytes]
					layout := w.plan.layoutOf(w.part, r)
					w.f.EnsureStore()
					if w.cfg.SingleBuffer {
						stored, err := w.storeRound(buf, layout, dmg, repair)
						if err != nil && dataErr == nil {
							dataErr = err
						}
						w.stats.BytesCompressed += stored
					} else {
						jobs[bufID] = launchStore(func() (int64, error) {
							return w.storeRound(buf, layout, dmg, repair)
						})
					}
				}
				ev := w.flushAsync(p, fl, false)
				w.stats.BytesFlushed += fl.bytes
				w.stats.Flushes++
				if w.cfg.SingleBuffer {
					if ev != nil {
						waitStart := p.Now()
						ev.Wait(p)
						if rec != nil {
							rec.Phase(obs.PhaseStorage, p.Now()-waitStart)
							p.TraceSpan("tapioca", "flush-wait", waitStart, p.Now(), fl.bytes)
						}
					}
				} else {
					pending[bufID] = ev
				}
			}
		}
		if w.cfg.SingleBuffer {
			// Ablation: with one buffer the next round's aggregation cannot
			// start until the flush lands; a second fence serializes it.
			serStart := p.Now()
			w.win.Fence()
			if rec != nil {
				rec.Phase(obs.PhaseExchange, p.Now()-serStart)
			}
		}
		if rec != nil {
			p.TraceSpan("tapioca", "round", roundStart, p.Now(), w.stats.BytesPut-roundPut)
		}
		if faults && w.isAgg {
			// Per-round latency distribution (p99 under faults is a headline
			// number of the chaos experiment). Faults-only: the zero-fault
			// metrics snapshot must stay byte-identical to the baseline.
			rec.Registry().Observe("tapioca.round_seconds", sim.ToSeconds(p.Now()-roundStart))
		}
	}
	if faults || rec != nil {
		p.SetPhaseLabel("tapioca drain")
	}
	// Drain outstanding flushes, then close the session collectively.
	if w.isAgg {
		for _, ev := range pending {
			if ev != nil {
				waitStart := p.Now()
				ev.Wait(p)
				if rec != nil {
					rec.Phase(obs.PhaseStorage, p.Now()-waitStart)
					p.TraceSpan("tapioca", "flush-wait", waitStart, p.Now(), 0)
				}
			}
		}
	}
	join(0)
	join(1)
	barStart := p.Now()
	w.pc.Barrier()
	if w.tp != nil {
		w.stats.TreeLevelMessages = w.tp.msgs
	}
	if rec != nil {
		rec.Phase(obs.PhaseExchange, p.Now()-barStart)
		w.sessionMetrics(rec)
	}
	return dataErr
}

// sessionMetrics folds this rank's session totals into the metrics registry
// once the pipeline closes. Every rank contributes its put bytes; only the
// aggregator contributes the partition-level round/flush counters, so the
// sums are per partition, not duplicated per member.
func (w *Writer) sessionMetrics(rec *obs.Recorder) {
	reg := rec.Registry()
	reg.Add("tapioca.bytes_put", w.stats.BytesPut)
	if w.tp != nil {
		reg.SetMax("tapioca.tree.levels", float64(w.tp.t.Levels))
		reg.SetMax("tapioca.tree.fanin", float64(w.tp.t.MaxFanIn))
		for d := 1; d < len(w.tp.msgs); d++ {
			if w.tp.msgs[d] > 0 {
				reg.Add(fmt.Sprintf("tapioca.tree.level.%d.messages", d), w.tp.msgs[d])
			}
		}
	}
	if !w.isAgg {
		return
	}
	reg.Add("tapioca.rounds", int64(w.stats.Rounds))
	reg.Add("tapioca.flushes", w.stats.Flushes)
	reg.Add("tapioca.bytes_flushed", w.stats.BytesFlushed)
	if w.cfg.Codec != nil {
		reg.Add("tapioca.bytes_compressed", w.stats.BytesCompressed)
		if w.stats.BytesFlushed > 0 {
			reg.SetMax("tapioca.codec_ratio",
				float64(w.stats.BytesCompressed)/float64(w.stats.BytesFlushed))
		}
	}
}

// runRead executes the reverse pipeline: the aggregator prefetches round
// r+1 into the inactive buffer while members pull round r's pieces with
// one-sided gets. Two fences bound each round: one publishing the buffer,
// one closing the get epoch.
//
// With the data plane on, the prefetch's real store read runs on a
// background goroutine (joined before the fence that publishes its buffer),
// and each member's get scatters its piece straight out of window memory
// into the payload buffers it passed to InitData (Win.GetScatter — no
// intermediate buffer).
func (w *Writer) runRead() error {
	pp := &w.plan.parts[w.part]
	p := w.c.Proc()
	myPieces := w.plan.piecesOf(w.c.Rank())
	var pending [2]*sim.Event
	var jobs [2]*storeJob
	var prefetchErr error
	join := func(bufID int64) {
		if j := jobs[bufID]; j != nil {
			<-j.done
			if j.err != nil && prefetchErr == nil {
				prefetchErr = j.err
			}
			jobs[bufID] = nil
		}
	}
	var dNsPerByte float64
	if w.cfg.Codec != nil {
		_, dNsPerByte = w.codecModel()
	}
	rec := w.rec
	prefetch := func(r int) {
		if w.isAgg && r < pp.rounds && pp.flush[r].bytes > 0 {
			if w.pl != nil {
				// Fill the inactive buffer from the backing store; the next
				// fence publishes it to the members' gets.
				buf := w.win.LocalData()[int64(r%2)*w.cfg.BufferSize:][:pp.flush[r].bytes]
				layout := w.plan.layoutOf(w.part, r)
				if w.cfg.SingleBuffer {
					t := hostClock(rec)
					if err := w.f.StoreRead(layout, buf); err != nil && prefetchErr == nil {
						prefetchErr = err
					}
					hostObserve(rec, "host.store_read_seconds", t)
				} else {
					jobs[r%2] = launchStore(func() (int64, error) {
						t := hostClock(rec)
						err := w.f.StoreRead(layout, buf)
						hostObserve(rec, "host.store_read_seconds", t)
						return 0, err
					})
				}
			}
			pending[r%2] = w.flushAsync(p, pp.flush[r], true)
			w.stats.BytesFlushed += pp.flush[r].bytes
			w.stats.Flushes++
			if w.cfg.Codec != nil {
				w.stats.BytesCompressed += dataplane.ModeledSize(w.cfg.Codec, pp.flush[r].bytes)
			}
		}
	}
	if !w.cfg.SingleBuffer {
		prefetch(0)
	}
	idx := 0
	for r := 0; r < pp.rounds; r++ {
		bufID := int64(r % 2)
		var roundStart, roundPut int64
		if rec != nil {
			roundStart = p.Now()
			roundPut = w.stats.BytesPut
		}
		if w.cfg.SingleBuffer {
			// Ablation: no prefetch — read this round's data synchronously.
			prefetch(r)
		}
		// The aggregator publishes the buffer once its read (and, with a
		// codec, the decompress compute) lands; the background byte job for
		// this buffer must be joined before the publishing fence.
		join(bufID)
		if w.isAgg && pending[bufID] != nil {
			waitStart := p.Now()
			pending[bufID].Wait(p)
			pending[bufID] = nil
			if rec != nil {
				rec.Phase(obs.PhaseStorage, p.Now()-waitStart)
				p.TraceSpan("tapioca", "read-wait", waitStart, p.Now(), pp.flush[r].bytes)
			}
			if w.cfg.Codec != nil {
				cd := int64(float64(pp.flush[r].bytes) * dNsPerByte)
				p.Hold(cd)
				if rec != nil {
					rec.Phase(obs.PhaseCodec, cd)
					p.TraceSpan("tapioca", "decompress", p.Now()-cd, p.Now(), pp.flush[r].bytes)
				}
			}
		}
		fenceStart := p.Now()
		w.win.Fence()
		if rec != nil {
			rec.Phase(obs.PhaseExchange, p.Now()-fenceStart)
		}
		// Members pull their pieces; the aggregator prefetches the next
		// round into the other buffer meanwhile.
		var getStart int64
		if rec != nil {
			getStart = p.Now()
		}
		for idx < len(myPieces) && myPieces[idx].round == r {
			pc := myPieces[idx]
			if w.pl != nil {
				lo, hi := storage.SpanAll(pp.flush[r].segs)
				round := r
				w.win.GetScatter(w.aggLocal, bufID*w.cfg.BufferSize+pc.bufOff, pc.bytes, func(src []byte) {
					if n := w.pl.Scatter(src, lo, hi); n != int64(len(src)) && prefetchErr == nil {
						// Deferred like prefetch errors: fences are collective.
						prefetchErr = fmt.Errorf("core: round %d scatter consumed %d bytes, plan expects %d", round, n, len(src))
					}
				})
			} else {
				w.win.Get(w.aggLocal, bufID*w.cfg.BufferSize+pc.bufOff, pc.bytes)
			}
			w.stats.BytesPut += pc.bytes
			idx++
		}
		if rec != nil {
			rec.Phase(obs.PhaseAggregation, p.Now()-getStart)
			p.TraceSpan("tapioca", "scatter", getStart, p.Now(), w.stats.BytesPut-roundPut)
		}
		if !w.cfg.SingleBuffer {
			prefetch(r + 1)
		}
		closeStart := p.Now()
		w.win.Fence() // closes the get epoch
		if rec != nil {
			rec.Phase(obs.PhaseExchange, p.Now()-closeStart)
			p.TraceSpan("tapioca", "round", roundStart, p.Now(), w.stats.BytesPut-roundPut)
		}
	}
	join(0)
	join(1)
	barStart := p.Now()
	w.pc.Barrier()
	if rec != nil {
		rec.Phase(obs.PhaseExchange, p.Now()-barStart)
		w.sessionMetrics(rec)
	}
	return prefetchErr
}
