package core

import "tapioca/internal/mpi"

// Intra-node pre-aggregation (Config.IntraNodeStaging): the write pipeline's
// node-local staging hop.
//
// The plan builder assigns each round's buffer offsets in ascending
// partition-local-rank order (one contiguous piece per touched member, see
// buildPartition), and the default block rank→node mapping makes a node's
// partition members contiguous local ranks — so a node's round contribution
// occupies one contiguous bufOff range. That invariant is what lets the
// node's leader cover the whole group with a single coalesced inter-node put:
// members first deposit their pieces into the leader's window memory at the
// exact offsets the aggregator's buffer expects (Win.StagePut — a
// shared-memory copy at memory bandwidth), a node-communicator barrier
// orders the deposits before the leader reads them, and the leader then
// issues one PutGather per (node, aggregator, round) carrying the group's
// contiguous extent batch. Payload bytes therefore take the member → leader
// → aggregator route with no re-ordering, and the end-to-end CRC contract is
// unchanged.
//
// Groups that cannot win do not stage: a singleton group (ranks-per-node =
// 1) and the group on the aggregator's own node (its puts are already
// intra-node) take the flat path — staging there would add a copy and save
// no fabric message. A round whose group pieces are not contiguous (custom
// node mappings can interleave local ranks across nodes) also falls back to
// the flat path, per round.

// stageRound is one rank's role in one round of the staged schedule.
type stageRound struct {
	staged bool  // this round coalesces through the node leader
	lo, hi int64 // the group's contiguous bufOff range (leader's put extent)
}

// stagePlan is one rank's intra-node staging schedule, computed locally by
// every group member from the (globally shared) plan, so the per-round
// staged/flat decision is identical across the group without communication.
type stagePlan struct {
	nodeComm    *mpi.Comm // node-scoped sub-communicator within the partition
	leader      bool
	leaderLocal int // partition-local rank of my node's leader
	rounds      []stageRound
}

// setupStaging builds this rank's staging schedule. Collective over the
// partition communicator (every member must call it: SplitNode is a
// collective), returning nil when this rank's node group never stages.
func (w *Writer) setupStaging() *stagePlan {
	pc := w.pc
	// Every partition member splits off its node communicator, staged or
	// not — the call is collective and the group decision comes after.
	nodeComm := pc.SplitNode()
	pp := &w.plan.parts[w.part]
	myNode := pc.Node()
	leaderLocal, groupSize := -1, 0
	for l := 0; l < pc.Size(); l++ {
		if pc.NodeOfRank(l) == myNode {
			if leaderLocal < 0 {
				leaderLocal = l
			}
			groupSize++
		}
	}
	if groupSize < 2 || myNode == pc.NodeOfRank(w.aggLocal) {
		// Singleton group, or the aggregator lives here: the flat path is
		// already optimal (staging would be a wasted copy / a local put).
		return nil
	}
	st := &stagePlan{
		nodeComm:    nodeComm,
		leader:      pc.Rank() == leaderLocal,
		leaderLocal: leaderLocal,
		rounds:      make([]stageRound, pp.rounds),
	}
	// Scan the group members' piece lists (rounds ascending) with one cursor
	// each, accumulating per-round extent and byte totals.
	cursors := make([][]putPiece, 0, groupSize)
	for l := 0; l < pc.Size(); l++ {
		if pc.NodeOfRank(l) == myNode {
			cursors = append(cursors, w.plan.piecesOf(pp.rankLo+l))
		}
	}
	any := false
	for r := range st.rounds {
		lo, hi, total := int64(-1), int64(0), int64(0)
		for i, pieces := range cursors {
			for len(pieces) > 0 && pieces[0].round == r {
				pc0 := pieces[0]
				if lo < 0 || pc0.bufOff < lo {
					lo = pc0.bufOff
				}
				if end := pc0.bufOff + pc0.bytes; end > hi {
					hi = end
				}
				total += pc0.bytes
				pieces = pieces[1:]
			}
			cursors[i] = pieces
		}
		if total > 0 && hi-lo == total {
			st.rounds[r] = stageRound{staged: true, lo: lo, hi: hi}
			any = true
		}
	}
	if !any {
		return nil
	}
	return st
}
