package core

// Synthesized aggregation trees (Config.Tree): the write pipeline's interior
// reduction levels, generalizing the fixed two-phase shape the same way
// intra-node staging (staging.go) generalized the member → aggregator hop.
//
// The tree lives over the partition's node groups: every group's leader is a
// tree vertex, the aggregator's group is the root, and internal/tree arranges
// the vertices into relay levels (fan-in-k, per-topology-group, chains).
// Execution reuses the staging machinery unchanged as the base level —
// members deposit into their group leader at memory bandwidth — and adds one
// forwarding phase per interior level: a vertex at depth d issues a single
// coalesced PutGather of its whole subtree span to its parent's window, then
// a window fence orders level d against level d−1. All offsets are natural
// (bufOff-relative), so bytes stream through existing window memory with no
// per-hop re-staging and the root's flush path is untouched. The degenerate
// shapes (flat, node-staged) build no interior levels and the pipeline is
// byte-identical to today's paths; the same holds for any partition whose
// synthesized tree comes out with fewer than two levels (setupTree returns
// nil and the session runs the staged or flat path verbatim).
//
// Fences are collectives over the window's communicator — the partition — so
// the interior fence budget is a per-partition constant (tree depth − 1),
// fixed at setup and run every round whether or not the round engages the
// tree. The per-round engagement decision is computed from the globally
// shared plan, identically on every member without communication: a round
// runs the tree only if every vertex's subtree span is contiguous AND every
// non-root multi-member group stages that round under staging.go's own rule.
// The second condition is load-bearing, not an optimization: a group that
// does not stage sends its members' pieces straight to the aggregator, and a
// diverted ancestor forwarding a span over those pieces would overwrite the
// root's copy with garbage. Rounds that fail either test fall back to the
// staged/flat path for the whole partition.
//
// Trees are write-side, like staging: the read pipeline's scatter has no
// incast to shape. On an aggregator failover the partition's tree collapses
// to the node-staged degenerate rooted at the new aggregator — interior
// phases become empty fences (the budget is frozen, fences are collective) —
// and the replay path (direct puts from rank-side payload buffers,
// recover.go) needs no tree: interior windows never hold the only copy of
// any byte.

import (
	"fmt"

	"tapioca/internal/storage"
	"tapioca/internal/tree"
)

// treeRole is one rank's role in the tree schedule.
type treeRole struct {
	t *tree.Tree
	// vertex is the tree vertex this rank leads (it is the first partition
	// rank of its node group), or -1 for non-leader members.
	vertex int
	depth  int
	// diverted: this vertex's coalesced put leaves the inline (staged/flat)
	// path — it has children to wait for, or sits below depth 1.
	diverted bool
	// parentLocal is the partition-local rank the vertex forwards to: the
	// aggregator itself when the parent is the root vertex, else the parent
	// group's leader.
	parentLocal int
	// fences is the partition's interior fence budget per round: tree depth
	// minus one, frozen at setup (failover must not change it).
	fences int
	// engaged[r] reports whether round r runs the tree (see package doc).
	engaged []bool
	// spans[r] is this vertex's subtree bufOff span [lo,hi) for round r
	// (zero-width when the subtree contributes nothing).
	spans [][2]int64
	// collapsed is set by failover: the tree degrades to node-staged under
	// the new root and interior phases turn into empty fences.
	collapsed bool
	// msgs counts coalesced vertex sends by sender depth (index 0 unused).
	msgs []int64
}

// active reports whether round r diverts this rank's coalesced put into the
// interior machinery.
func (tr *treeRole) active(r int) bool {
	return tr != nil && !tr.collapsed && tr.diverted && tr.engaged[r]
}

// partLeaders builds the tree's leader list for this rank's partition: node
// groups by run-length over the partition's local-rank order, weighted by
// the planner's per-member volumes. starts holds each group's first local
// rank, with a len(members) sentinel appended.
func (w *Writer) partLeaders(pp *partPlan) (leaders []tree.Leader, starts []int) {
	for i := 0; i < pp.rankN; i++ {
		node := w.pc.NodeOfRank(i)
		if i == 0 || node != w.pc.NodeOfRank(i-1) {
			leaders = append(leaders, tree.Leader{Node: node})
			starts = append(starts, i)
		}
		if pp.omega != nil {
			leaders[len(leaders)-1].Bytes += pp.omega[i]
		}
	}
	starts = append(starts, pp.rankN)
	return leaders, starts
}

// setupTree builds this rank's tree role from the globally shared plan — no
// communication, every member derives the identical structure. Returns nil
// when the synthesized tree is structurally degenerate (fewer than two
// levels) or the node mapping defeats it; the partition then runs the staged
// or flat path verbatim.
func (w *Writer) setupTree(shape tree.Shape) *treeRole {
	pp := &w.plan.parts[w.part]
	leaders, starts := w.partLeaders(pp)
	// A node appearing in two non-adjacent runs would let a member bypass
	// its vertex leader (its staging plan keys on node identity, the tree on
	// run identity): disable the tree outright.
	seen := make(map[int]bool, len(leaders))
	for _, l := range leaders {
		if seen[l.Node] {
			return nil
		}
		seen[l.Node] = true
	}
	var grouper tree.Grouper
	if fab := w.c.World().Fabric(); fab != nil {
		grouper = tree.GrouperOf(fab.Topology())
	}
	t := tree.Build(shape, leaders, tree.RootLeader(starts, w.aggLocal), grouper)
	if t.Levels < 2 {
		return nil // structurally degenerate here: nothing to synthesize
	}

	tr := &treeRole{
		t:      t,
		vertex: -1,
		fences: t.Levels - 1,
		msgs:   make([]int64, t.Levels+1),
	}
	myLocal := w.pc.Rank()
	for v := 0; v+1 < len(starts); v++ {
		if starts[v] == myLocal {
			tr.vertex = v
		}
	}
	if tr.vertex >= 0 {
		tr.depth = t.Depth[tr.vertex]
		hasChild := false
		for _, p := range t.Parent {
			if p == tr.vertex {
				hasChild = true
				break
			}
		}
		tr.diverted = tr.depth >= 1 && (hasChild || tr.depth >= 2)
		if p := t.Parent[tr.vertex]; p >= 0 {
			if p == t.Root {
				tr.parentLocal = w.aggLocal
			} else {
				tr.parentLocal = starts[p]
			}
		}
	}

	// Per-round spans and engagement: one cursor per member over the shared
	// piece arena. Each piece folds into its own group's span (the staging
	// contiguity test) and into every ancestor vertex's subtree span.
	nv := len(leaders)
	type span struct{ lo, hi, total int64 }
	vs := make([]span, nv) // subtree spans, folded up ancestors
	gs := make([]span, nv) // own-group spans, staging granularity
	cursors := make([][]putPiece, pp.rankN)
	memberVertex := make([]int, pp.rankN)
	for i := 0; i < pp.rankN; i++ {
		cursors[i] = w.plan.piecesOf(pp.rankLo + i)
	}
	for v := 0; v+1 < len(starts); v++ {
		for i := starts[v]; i < starts[v+1]; i++ {
			memberVertex[i] = v
		}
	}
	tr.engaged = make([]bool, pp.rounds)
	tr.spans = make([][2]int64, pp.rounds)
	for r := 0; r < pp.rounds; r++ {
		for v := 0; v < nv; v++ {
			vs[v] = span{lo: -1}
			gs[v] = span{lo: -1}
		}
		for i := range cursors {
			pieces := cursors[i]
			for len(pieces) > 0 && pieces[0].round == r {
				pc0 := pieces[0]
				g := &gs[memberVertex[i]]
				if g.lo < 0 || pc0.bufOff < g.lo {
					g.lo = pc0.bufOff
				}
				if end := pc0.bufOff + pc0.bytes; end > g.hi {
					g.hi = end
				}
				g.total += pc0.bytes
				for a := memberVertex[i]; a >= 0; a = t.Parent[a] {
					s := &vs[a]
					if s.lo < 0 || pc0.bufOff < s.lo {
						s.lo = pc0.bufOff
					}
					if end := pc0.bufOff + pc0.bytes; end > s.hi {
						s.hi = end
					}
					s.total += pc0.bytes
				}
				pieces = pieces[1:]
			}
			cursors[i] = pieces
		}
		engaged := true
		for v := 0; v < nv && engaged; v++ {
			if vs[v].total > 0 && vs[v].hi-vs[v].lo != vs[v].total {
				engaged = false
			}
			// Non-root multi-member groups must stage this round (staging.go's
			// contiguity rule) or their members' pieces bypass the tree.
			if v != t.Root && starts[v+1]-starts[v] > 1 &&
				gs[v].total > 0 && gs[v].hi-gs[v].lo != gs[v].total {
				engaged = false
			}
		}
		tr.engaged[r] = engaged
		if tr.vertex >= 0 && vs[tr.vertex].total > 0 {
			tr.spans[r] = [2]int64{vs[tr.vertex].lo, vs[tr.vertex].hi}
		}
	}
	return tr
}

// treeForward issues this vertex's coalesced interior put for round r: the
// whole subtree span as already assembled in this rank's own window —
// members' staged deposits plus children's forwarded spans, both published
// before this runs (FenceLocal and the deeper level's fence respectively) —
// with the rank's own pieces gathered fresh over their slots. Returns the
// put's deferred injection hold and the bytes sent.
func (w *Writer) treeForward(r int, bufID int64, own []putPiece, dataErr *error) (free, sent int64) {
	tp := w.tp
	lo, hi := tp.spans[r][0], tp.spans[r][1]
	if hi <= lo {
		return 0, 0
	}
	var fill func(dst []byte)
	if w.pl != nil {
		pp := &w.plan.parts[w.part]
		base := bufID * w.cfg.BufferSize
		window := w.win.LocalData()[base+lo : base+hi]
		flo, fhi := storage.SpanAll(pp.flush[r].segs)
		round := r
		fill = func(dst []byte) {
			// The window already holds every deposit and child forward over
			// this span; the vertex's own slots hold garbage there and are
			// overwritten by the gathers — engagement guarantees the union
			// covers the span exactly.
			copy(dst, window)
			for _, opc := range own {
				sub := dst[opc.bufOff-lo:][:opc.bytes]
				if n := w.pl.Gather(sub, flo, fhi); n != opc.bytes && *dataErr == nil {
					*dataErr = fmt.Errorf("core: round %d tree forward gather produced %d bytes, plan expects %d", round, n, opc.bytes)
				}
			}
		}
	}
	free = w.win.PutGather(tp.parentLocal, bufID*w.cfg.BufferSize+lo, hi-lo, fill)
	tp.msgs[tp.depth]++
	return free, hi - lo
}
