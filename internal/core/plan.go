package core

import (
	"fmt"
	"sort"

	"tapioca/internal/cost"
	"tapioca/internal/storage"
)

// plan is the global aggregation schedule computed once during Init.
type plan struct {
	partOf []int      // comm rank → partition index
	parts  []partPlan // per partition
	pieces [][]putPiece
}

// putPiece is one rank's contribution to one round's buffer.
type putPiece struct {
	round  int
	bufOff int64
	bytes  int64
}

// partPlan is one partition's schedule.
type partPlan struct {
	ranks  []int // comm ranks (ascending)
	bytes  int64
	rounds int
	flush  []flushInfo // per round: the file extents the aggregator writes
	omega  []int64     // per partition-local rank: bytes it aggregates
}

type flushInfo struct {
	segs  []storage.Seg
	bytes int64
}

// region is a maximal merged span of a partition's declared data.
type region struct {
	lo, hi int64
	bytes  int64
	segs   []storage.Seg // member segments, sorted by offset
}

// dense reports whether the region's data tiles its span exactly — the
// common case (HACC AoS records, SoA blocks, IOR), which permits O(1)
// contiguous flush extents.
func (r *region) dense() bool { return r.bytes == r.hi-r.lo }

// bytesBefore returns how many of the region's data bytes lie in [lo, x).
func (r *region) bytesBefore(x int64) int64 {
	if x <= r.lo {
		return 0
	}
	if x >= r.hi {
		return r.bytes
	}
	if r.dense() {
		return x - r.lo
	}
	var n int64
	for _, s := range r.segs {
		n += storage.TotalBytes(s.Intersect(r.lo, x))
	}
	return n
}

// fileOffsetAt inverts bytesBefore: the smallest file offset x with
// bytesBefore(x) == target. Exact, because the cumulative byte function
// increases by at most one per byte of file offset.
func (r *region) fileOffsetAt(target int64) int64 {
	if target <= 0 {
		return r.lo
	}
	if target >= r.bytes {
		return r.hi
	}
	if r.dense() {
		return r.lo + target
	}
	lo, hi := r.lo, r.hi
	for lo < hi {
		mid := (lo + hi) / 2
		if r.bytesBefore(mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// extract returns the region's data extents within [x0, x1).
func (r *region) extract(x0, x1 int64) []storage.Seg {
	if x1 <= x0 {
		return nil
	}
	if r.dense() {
		lo, hi := maxI64(x0, r.lo), minI64(x1, r.hi)
		if hi <= lo {
			return nil
		}
		return []storage.Seg{storage.Contig(lo, hi-lo)}
	}
	return storage.IntersectAll(r.segs, x0, x1)
}

// buildPlan partitions ranks, merges each partition's declared data into
// regions, and cuts the per-partition aggregation stream into rounds of up
// to bufSize bytes. When alignUnit > 0 (the file system's optimal unit:
// Lustre stripe, GPFS block), window cuts snap to unit boundaries in file
// space wherever the data is dense — so buffer flushes are stripe/block
// aligned, the behaviour behind the paper's Table I 1:1 optimum.
func buildPlan(all [][]storage.Seg, nAggr int, bufSize, alignUnit int64) *plan {
	nRanks := len(all)
	if nAggr > nRanks {
		nAggr = nRanks
	}
	p := &plan{
		partOf: make([]int, nRanks),
		parts:  make([]partPlan, nAggr),
		pieces: make([][]putPiece, nRanks),
	}
	for r := 0; r < nRanks; r++ {
		p.partOf[r] = r * nAggr / nRanks
	}
	for part := range p.parts {
		lo := partStart(part, nAggr, nRanks)
		hi := partStart(part+1, nAggr, nRanks)
		buildPartition(p, part, lo, hi, all, bufSize, alignUnit)
	}
	return p
}

func partStart(part, nAggr, nRanks int) int {
	// Inverse of partOf: first rank with r*nAggr/nRanks == part. The shared
	// formula lives in internal/cost so the MPI-IO baseline's per-block
	// elections use the identical rank→partition map.
	return cost.PartitionStart(part, nAggr, nRanks)
}

func buildPartition(p *plan, part, rankLo, rankHi int, all [][]storage.Seg, bufSize, alignUnit int64) {
	pp := &p.parts[part]
	for r := rankLo; r < rankHi; r++ {
		pp.ranks = append(pp.ranks, r)
	}
	pp.omega = make([]int64, len(pp.ranks))

	// Collect and span-sort the partition's segments.
	type memberSeg struct {
		local int
		seg   storage.Seg
	}
	var msegs []memberSeg
	for i, r := range pp.ranks {
		for _, s := range all[r] {
			if s.Empty() {
				continue
			}
			msegs = append(msegs, memberSeg{local: i, seg: s})
			pp.omega[i] += s.Bytes()
			pp.bytes += s.Bytes()
		}
	}
	if pp.bytes == 0 {
		return
	}
	sort.Slice(msegs, func(a, b int) bool {
		if msegs[a].seg.Off != msegs[b].seg.Off {
			return msegs[a].seg.Off < msegs[b].seg.Off
		}
		return msegs[a].local < msegs[b].local
	})

	// Merge overlapping/adjacent spans into regions.
	var regions []*region
	for _, ms := range msegs {
		slo, shi := ms.seg.Span()
		last := len(regions) - 1
		if last >= 0 && slo <= regions[last].hi {
			rg := regions[last]
			if shi > rg.hi {
				rg.hi = shi
			}
			rg.bytes += ms.seg.Bytes()
			rg.segs = append(rg.segs, ms.seg)
		} else {
			regions = append(regions, &region{lo: slo, hi: shi, bytes: ms.seg.Bytes(), segs: []storage.Seg{ms.seg}})
		}
	}
	for _, rg := range regions {
		if rg.bytes > rg.hi-rg.lo {
			panic(fmt.Sprintf("core: partition %d region [%d,%d) overdeclared: %d bytes in %d span (overlapping writes?)",
				part, rg.lo, rg.hi, rg.bytes, rg.hi-rg.lo))
		}
	}

	// Cut each region into round windows. Windows never cross regions, and
	// cuts snap to alignUnit boundaries (file space) in dense regions when
	// a boundary falls within reach of the buffer size.
	type window struct {
		rg     *region
		t0, t1 int64 // region-local stream byte range
	}
	var windows []window
	for _, rg := range regions {
		pos := int64(0)
		for pos < rg.bytes {
			next := pos + bufSize
			if alignUnit > 0 && rg.dense() {
				if cand := (rg.lo+pos+bufSize)/alignUnit*alignUnit - rg.lo; cand > pos {
					next = cand
				}
			}
			if next > rg.bytes {
				next = rg.bytes
			}
			windows = append(windows, window{rg: rg, t0: pos, t1: next})
			pos = next
		}
	}
	pp.rounds = len(windows)
	pp.flush = make([]flushInfo, pp.rounds)
	for round, wd := range windows {
		x0 := wd.rg.fileOffsetAt(wd.t0)
		x1 := wd.rg.fileOffsetAt(wd.t1)
		pp.flush[round] = flushInfo{segs: wd.rg.extract(x0, x1), bytes: wd.t1 - wd.t0}
	}

	// Per-rank pieces: intersect each rank's segments with the round
	// windows (in file space), then assign buffer offsets in local-rank
	// order per round.
	roundFill := make([]int64, pp.rounds)
	type pieceKey struct {
		local, round int
	}
	pieceBytes := map[pieceKey]int64{}
	for round, wd := range windows {
		x0 := wd.rg.fileOffsetAt(wd.t0)
		x1 := wd.rg.fileOffsetAt(wd.t1)
		for _, ms := range msegs {
			slo, shi := ms.seg.Span()
			if shi <= x0 || slo >= x1 || slo < wd.rg.lo || slo >= wd.rg.hi {
				continue
			}
			b := storage.TotalBytes(ms.seg.Intersect(x0, x1))
			if b > 0 {
				pieceBytes[pieceKey{ms.local, round}] += b
			}
		}
	}
	// Deterministic order: by (round, local).
	keys := make([]pieceKey, 0, len(pieceBytes))
	for k := range pieceBytes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].round != keys[b].round {
			return keys[a].round < keys[b].round
		}
		return keys[a].local < keys[b].local
	})
	for _, k := range keys {
		b := pieceBytes[k]
		commRank := pp.ranks[k.local]
		p.pieces[commRank] = append(p.pieces[commRank], putPiece{
			round:  k.round,
			bufOff: roundFill[k.round],
			bytes:  b,
		})
		roundFill[k.round] += b
	}
	for round, fill := range roundFill {
		if fill != pp.flush[round].bytes {
			panic(fmt.Sprintf("core: partition %d round %d fill %d != flush %d", part, round, fill, pp.flush[round].bytes))
		}
		if fill > bufSize {
			panic(fmt.Sprintf("core: partition %d round %d overfills buffer: %d > %d", part, round, fill, bufSize))
		}
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
