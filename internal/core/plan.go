package core

import (
	"fmt"
	"slices"
	"sort"

	"tapioca/internal/cost"
	"tapioca/internal/storage"
)

// plan is the global aggregation schedule computed once during Init.
type plan struct {
	partOf   []int      // comm rank → partition index
	parts    []partPlan // per partition
	withData bool       // layouts materialized (data-plane sessions)

	// pieces is the flat piece arena: rank r's puts are
	// pieces[pieceOff[r]:pieceOff[r+1]], rounds ascending. One arena instead
	// of per-rank slices keeps the plan's footprint flat at paper scale
	// (tens of thousands of ranks) and the per-rank views allocation-free.
	pieces   []putPiece
	pieceOff []int32
}

// piecesOf returns rank r's puts (rounds ascending), a view into the arena.
func (p *plan) piecesOf(rank int) []putPiece {
	return p.pieces[p.pieceOff[rank]:p.pieceOff[rank+1]]
}

// putPiece is one rank's contribution to one round's buffer.
type putPiece struct {
	round  int
	bufOff int64
	bytes  int64
}

// partPlan is one partition's schedule.
type partPlan struct {
	rankLo int // first comm rank (members are [rankLo, rankLo+rankN))
	rankN  int // member count
	bytes  int64
	rounds int
	flush  []flushInfo // per round: the file extents the aggregator writes
	omega  []int64     // per partition-local rank: bytes it aggregates

	// layout is per round the aggregation buffer's file runs in buffer order
	// — member contributions pack local-rank-major, each member's bytes in
	// file-offset order — so a flush can scatter buffer bytes to the store
	// (and a read prefetch gather them back) positionally. Materialized only
	// for data-plane sessions; phantom plans carry nil.
	layout [][]storage.Seg

	members []cost.Member // election table, cached by the first caller
}

type flushInfo struct {
	segs  []storage.Seg
	bytes int64
}

// region is a maximal merged span of a partition's declared data. Its member
// segments are the consecutive range msegs[m0:m1] of the builder's
// offset-sorted segment list — regions index the shared list instead of
// copying it.
type region struct {
	lo, hi int64
	bytes  int64
	m0, m1 int32
}

// dense reports whether the region's data tiles its span exactly — the
// common case (HACC AoS records, SoA blocks, IOR), which permits O(1)
// contiguous flush extents.
func (r *region) dense() bool { return r.bytes == r.hi-r.lo }

// memberSeg is one declared segment tagged with its partition-local rank.
type memberSeg struct {
	local int32
	seg   storage.Seg
}

// pieceRec is a piece before distribution into the plan's rank-major arena.
type pieceRec struct {
	local int32
	piece putPiece
}

// window is one aggregation round's cut of a region's byte stream.
type window struct {
	rg     int32 // region index
	t0, t1 int64 // region-local stream byte range
}

// planBuilder holds the scratch one buildPlan call reuses across partitions,
// so plan construction allocates only what the plan itself retains.
type planBuilder struct {
	msegs   []memberSeg
	regions []region
	windows []window
	recs    []pieceRec
	touched []int32
	fill    []int64
	counts  []int32
	lruns   []storage.Seg // per-member layout scratch (data-plane builds)
}

// bytesBefore returns how many of the region's data bytes lie in [rg.lo, x).
func (b *planBuilder) bytesBefore(rg *region, x int64) int64 {
	if x <= rg.lo {
		return 0
	}
	if x >= rg.hi {
		return rg.bytes
	}
	if rg.dense() {
		return x - rg.lo
	}
	var n int64
	for _, ms := range b.msegs[rg.m0:rg.m1] {
		n += ms.seg.BytesIn(rg.lo, x)
	}
	return n
}

// fileOffsetAt inverts bytesBefore: the smallest file offset x with
// bytesBefore(x) == target. Exact, because the cumulative byte function
// increases by at most one per byte of file offset.
func (b *planBuilder) fileOffsetAt(rg *region, target int64) int64 {
	if target <= 0 {
		return rg.lo
	}
	if target >= rg.bytes {
		return rg.hi
	}
	if rg.dense() {
		return rg.lo + target
	}
	lo, hi := rg.lo, rg.hi
	for lo < hi {
		mid := (lo + hi) / 2
		if b.bytesBefore(rg, mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// extract returns the region's data extents within [x0, x1), compacted so
// adjacent window-clipping fragments read as whole runs again.
func (b *planBuilder) extract(rg *region, x0, x1 int64) []storage.Seg {
	if x1 <= x0 {
		return nil
	}
	if rg.dense() {
		lo, hi := maxI64(x0, rg.lo), minI64(x1, rg.hi)
		if hi <= lo {
			return nil
		}
		return []storage.Seg{storage.Contig(lo, hi-lo)}
	}
	var out []storage.Seg
	for _, ms := range b.msegs[rg.m0:rg.m1] {
		out = append(out, ms.seg.Intersect(x0, x1)...)
	}
	return storage.Compact(out)
}

// buildPlan partitions ranks, merges each partition's declared data into
// regions, and cuts the per-partition aggregation stream into rounds of up
// to bufSize bytes. When alignUnit > 0 (the file system's optimal unit:
// Lustre stripe, GPFS block), window cuts snap to unit boundaries in file
// space wherever the data is dense — so buffer flushes are stripe/block
// aligned, the behaviour behind the paper's Table I 1:1 optimum.
// When withData is set, each round's buffer-ordered file-run layout is
// materialized alongside (the data plane's flush/prefetch map); phantom
// plans skip that work entirely.
func buildPlan(all [][]storage.Seg, nAggr int, bufSize, alignUnit int64, withData bool) *plan {
	nRanks := len(all)
	if nAggr > nRanks {
		nAggr = nRanks
	}
	p := &plan{
		partOf:   make([]int, nRanks),
		parts:    make([]partPlan, nAggr),
		pieceOff: make([]int32, nRanks+1),
		withData: withData,
	}
	for r := 0; r < nRanks; r++ {
		p.partOf[r] = r * nAggr / nRanks
	}
	b := &planBuilder{}
	for part := range p.parts {
		lo := partStart(part, nAggr, nRanks)
		hi := partStart(part+1, nAggr, nRanks)
		buildPartition(p, b, part, lo, hi, all, bufSize, alignUnit)
		distributePieces(p, b, lo, hi)
	}
	return p
}

// layoutOf returns the buffer-ordered file runs of one partition round
// (data-plane plans only).
func (p *plan) layoutOf(part, round int) []storage.Seg {
	return p.parts[part].layout[round]
}

func partStart(part, nAggr, nRanks int) int {
	// Inverse of partOf: first rank with r*nAggr/nRanks == part. The shared
	// formula lives in internal/cost so the MPI-IO baseline's per-block
	// elections use the identical rank→partition map.
	return cost.PartitionStart(part, nAggr, nRanks)
}

func buildPartition(p *plan, b *planBuilder, part, rankLo, rankHi int, all [][]storage.Seg, bufSize, alignUnit int64) {
	pp := &p.parts[part]
	pp.rankLo = rankLo
	pp.rankN = rankHi - rankLo
	pp.omega = make([]int64, pp.rankN)
	b.recs = b.recs[:0]

	// Collect and span-sort the partition's segments.
	msegs := b.msegs[:0]
	for i := 0; i < pp.rankN; i++ {
		for _, s := range all[rankLo+i] {
			if s.Empty() {
				continue
			}
			msegs = append(msegs, memberSeg{local: int32(i), seg: s})
			pp.omega[i] += s.Bytes()
			pp.bytes += s.Bytes()
		}
	}
	b.msegs = msegs
	if pp.bytes == 0 {
		return
	}
	sort.Slice(msegs, func(a, c int) bool {
		if msegs[a].seg.Off != msegs[c].seg.Off {
			return msegs[a].seg.Off < msegs[c].seg.Off
		}
		return msegs[a].local < msegs[c].local
	})

	// Merge overlapping/adjacent spans into regions. The sorted order means
	// each region's members are one consecutive index range.
	regions := b.regions[:0]
	for i := range msegs {
		slo, shi := msegs[i].seg.Span()
		if last := len(regions) - 1; last >= 0 && slo <= regions[last].hi {
			rg := &regions[last]
			if shi > rg.hi {
				rg.hi = shi
			}
			rg.bytes += msegs[i].seg.Bytes()
			rg.m1 = int32(i + 1)
		} else {
			regions = append(regions, region{lo: slo, hi: shi, bytes: msegs[i].seg.Bytes(), m0: int32(i), m1: int32(i + 1)})
		}
	}
	b.regions = regions
	for ri := range regions {
		rg := &regions[ri]
		if rg.bytes > rg.hi-rg.lo {
			panic(fmt.Sprintf("core: partition %d region [%d,%d) overdeclared: %d bytes in %d span (overlapping writes?)",
				part, rg.lo, rg.hi, rg.bytes, rg.hi-rg.lo))
		}
	}

	// Cut each region into round windows. Windows never cross regions, and
	// cuts snap to alignUnit boundaries (file space) in dense regions when
	// a boundary falls within reach of the buffer size.
	windows := b.windows[:0]
	for ri := range regions {
		rg := &regions[ri]
		pos := int64(0)
		for pos < rg.bytes {
			next := pos + bufSize
			if alignUnit > 0 && rg.dense() {
				if cand := (rg.lo+pos+bufSize)/alignUnit*alignUnit - rg.lo; cand > pos {
					next = cand
				}
			}
			if next > rg.bytes {
				next = rg.bytes
			}
			windows = append(windows, window{rg: int32(ri), t0: pos, t1: next})
			pos = next
		}
	}
	b.windows = windows
	pp.rounds = len(windows)
	pp.flush = make([]flushInfo, pp.rounds)
	if p.withData {
		pp.layout = make([][]storage.Seg, pp.rounds)
	}

	// Per-rank pieces: one pass per window over the region's segments
	// (sorted by offset; a cursor retires segments wholly before the moving
	// window), accumulating per-local byte counts — adjacent contributions
	// of a rank coalesce here, so a contiguous file region becomes exactly
	// one put and one flush extent per round. Buffer offsets are assigned in
	// local-rank order per round.
	if cap(b.fill) < pp.rankN {
		b.fill = make([]int64, pp.rankN)
	}
	fill := b.fill[:pp.rankN]
	touched := b.touched[:0]
	cursorRegion := int32(-1)
	var cursor int32
	for round := range windows {
		wd := &windows[round]
		rg := &regions[wd.rg]
		x0 := b.fileOffsetAt(rg, wd.t0)
		x1 := b.fileOffsetAt(rg, wd.t1)
		pp.flush[round] = flushInfo{segs: b.extract(rg, x0, x1), bytes: wd.t1 - wd.t0}

		if wd.rg != cursorRegion {
			cursorRegion, cursor = wd.rg, rg.m0
		}
		touched = touched[:0]
		i0, iHi := cursor, rg.m1
		for i := cursor; i < rg.m1; i++ {
			ms := &msegs[i]
			slo, shi := ms.seg.Span()
			if slo >= x1 {
				iHi = i
				break // offset-sorted: nothing later can intersect either
			}
			if shi <= x0 {
				if i == cursor {
					cursor++ // wholly before every future window of the region
				}
				continue
			}
			if n := ms.seg.BytesIn(x0, x1); n > 0 {
				if fill[ms.local] == 0 {
					touched = append(touched, ms.local)
				}
				fill[ms.local] += n
			}
		}
		sortInt32(touched)
		var off int64
		for _, l := range touched {
			b.recs = append(b.recs, pieceRec{local: l, piece: putPiece{round: round, bufOff: off, bytes: fill[l]}})
			off += fill[l]
			fill[l] = 0
		}
		if off != pp.flush[round].bytes {
			panic(fmt.Sprintf("core: partition %d round %d fill %d != flush %d", part, round, off, pp.flush[round].bytes))
		}
		if off > bufSize {
			panic(fmt.Sprintf("core: partition %d round %d overfills buffer: %d > %d", part, round, off, bufSize))
		}
		if p.withData {
			pp.layout[round] = buildLayout(b, msegs, touched, i0, iHi, x0, x1)
			if n := storage.TotalBytes(pp.layout[round]); n != off {
				panic(fmt.Sprintf("core: partition %d round %d layout %d bytes != fill %d", part, round, n, off))
			}
		}
	}
	b.touched = touched
}

// buildLayout materializes one round's buffer layout: for each touched
// member in buffer order (ascending local rank), its file runs within
// [x0, x1) in strict file-offset order — the order dataplane.Plane gathers
// and scatters in. Runs are enumerated individually and re-compacted so even
// interleaved strided declarations of one member map positionally.
func buildLayout(b *planBuilder, msegs []memberSeg, touched []int32, i0, iHi int32, x0, x1 int64) []storage.Seg {
	var out []storage.Seg
	for _, l := range touched {
		member := b.lruns[:0]
		for i := i0; i < iHi; i++ {
			ms := &msegs[i]
			if ms.local != l {
				continue
			}
			for _, sg := range ms.seg.Intersect(x0, x1) {
				for k := int64(0); k < sg.Count; k++ {
					member = append(member, storage.Contig(sg.Off+k*sg.Stride, sg.Len))
				}
			}
		}
		// Insertion sort by offset: a member's runs are already ascending
		// unless its declared segments interleave.
		for i := 1; i < len(member); i++ {
			for j := i; j > 0 && member[j].Off < member[j-1].Off; j-- {
				member[j], member[j-1] = member[j-1], member[j]
			}
		}
		b.lruns = member
		out = append(out, storage.Compact(member)...)
	}
	return out
}

// distributePieces redistributes the partition's round-major piece records
// into the plan's rank-major arena (rounds stay ascending per rank) and
// fills the ranks' arena offsets.
func distributePieces(p *plan, b *planBuilder, rankLo, rankHi int) {
	n := rankHi - rankLo
	if cap(b.counts) < n {
		b.counts = make([]int32, n)
	}
	counts := b.counts[:n]
	for i := range counts {
		counts[i] = 0
	}
	for i := range b.recs {
		counts[b.recs[i].local]++
	}
	base := int32(len(p.pieces))
	p.pieces = slices.Grow(p.pieces, len(b.recs))[:len(p.pieces)+len(b.recs)]
	off := base
	for i := 0; i < n; i++ {
		p.pieceOff[rankLo+i] = off
		c := counts[i]
		counts[i] = off // becomes the rank's write cursor
		off += c
	}
	p.pieceOff[rankHi] = off
	for i := range b.recs {
		rec := &b.recs[i]
		p.pieces[counts[rec.local]] = rec.piece
		counts[rec.local]++
	}
}

// sortInt32 is an insertion sort for the small per-window touched lists —
// allocation-free and nearly free on the already-sorted common case.
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
