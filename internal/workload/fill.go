package workload

import (
	"fmt"

	"tapioca/internal/storage"
)

// fillByte is the deterministic payload byte for file offset off under seed:
// a cheap integer mix keyed by absolute file position, so any reader —
// whatever pattern it declares — can validate any byte independently.
func fillByte(seed uint64, off int64) byte {
	x := (uint64(off) + seed) * 0x9E3779B97F4A7C15
	return byte(x ^ x>>29 ^ x>>47)
}

// FillData materializes deterministic payload bytes for a rank's declared
// operations: data[i] holds declared[i]'s bytes packed in segment
// enumeration order, each byte keyed by its absolute file offset (and seed).
// Because the content is offset-keyed, a session reading the file back under
// any declared pattern can validate with VerifyData — the data plane's
// workload-level round-trip check.
func FillData(declared [][]storage.Seg, seed uint64) [][]byte {
	data := make([][]byte, len(declared))
	for op, segs := range declared {
		buf := make([]byte, storage.TotalBytes(segs))
		var pos int64
		for _, s := range segs {
			for i := int64(0); i < s.Count; i++ {
				off := s.Off + i*s.Stride
				for k := int64(0); k < s.Len; k++ {
					buf[pos+k] = fillByte(seed, off+k)
				}
				pos += s.Len
			}
		}
		data[op] = buf
	}
	return data
}

// VerifyData checks that data holds exactly the bytes FillData would produce
// for the declared pattern under seed, reporting the first mismatch with its
// file offset — the read-back validator.
func VerifyData(declared [][]storage.Seg, seed uint64, data [][]byte) error {
	if len(declared) != len(data) {
		return fmt.Errorf("workload: %d declared operations, %d payload buffers", len(declared), len(data))
	}
	for op, segs := range declared {
		if want := storage.TotalBytes(segs); int64(len(data[op])) != want {
			return fmt.Errorf("workload: operation %d holds %d bytes, declared %d", op, len(data[op]), want)
		}
		var pos int64
		for _, s := range segs {
			for i := int64(0); i < s.Count; i++ {
				off := s.Off + i*s.Stride
				for k := int64(0); k < s.Len; k++ {
					if got, want := data[op][pos+k], fillByte(seed, off+k); got != want {
						return fmt.Errorf("workload: operation %d file offset %d: got 0x%02x, want 0x%02x",
							op, off+k, got, want)
					}
				}
				pos += s.Len
			}
		}
	}
	return nil
}
