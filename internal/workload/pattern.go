package workload

import "tapioca/internal/storage"

// Pattern is a portable workload descriptor: the complete declared access
// pattern of a collective I/O phase, independent of any machine. It is what
// the autotuner (internal/tune) consumes — the planner can materialize every
// rank's segments analytically, without spawning simulated ranks — and what
// runnable programs replay rank by rank through Declared.
type Pattern struct {
	// Name labels the workload in reports.
	Name string
	// Ranks is the number of MPI ranks sharing the file.
	Ranks int
	// Read marks a collective read phase (checkpoint restart); the default
	// is a write phase.
	Read bool
	// Declared returns one rank's per-call access patterns, exactly what
	// core.(*Writer).Init receives.
	Declared func(rank, ranks int) [][]storage.Seg
}

// IOR returns the IOR-style micro-benchmark pattern: every rank writes
// bytesPerRank contiguous bytes at rank*bytesPerRank.
func IOR(ranks int, bytesPerRank int64) Pattern {
	return Pattern{
		Name:  "ior",
		Ranks: ranks,
		Declared: func(rank, _ int) [][]storage.Seg {
			return [][]storage.Seg{IORSegs(rank, bytesPerRank)}
		},
	}
}

// HACC returns the HACC-IO pattern: 9 particle variables per rank in the
// given layout (AoS or SoA).
func HACC(ranks int, particles int64, layout int) Pattern {
	return Pattern{
		Name:  "hacc-" + LayoutName(layout),
		Ranks: ranks,
		Declared: func(rank, rr int) [][]storage.Seg {
			return HACCDeclared(rank, rr, particles, layout)
		},
	}
}

// Mesh returns the 2-D array checkpoint pattern of a Mesh2D decomposition.
func Mesh(m Mesh2D) Pattern {
	return Pattern{
		Name:  "mesh2d",
		Ranks: m.Ranks(),
		Declared: func(rank, _ int) [][]storage.Seg {
			return [][]storage.Seg{m.Segs(rank)}
		},
	}
}

// AllSegs materializes every rank's declared segments, flattened per rank —
// the planner-facing view (per-call boundaries don't matter to the round
// schedule).
func (p Pattern) AllSegs() [][]storage.Seg {
	all := make([][]storage.Seg, p.Ranks)
	for r := 0; r < p.Ranks; r++ {
		for _, segs := range p.Declared(r, p.Ranks) {
			for _, s := range segs {
				if !s.Empty() {
					all[r] = append(all[r], s)
				}
			}
		}
	}
	return all
}

// TotalBytes sums the declared data volume over all ranks.
func (p Pattern) TotalBytes() int64 {
	var total int64
	for r := 0; r < p.Ranks; r++ {
		for _, segs := range p.Declared(r, p.Ranks) {
			total += storage.TotalBytes(segs)
		}
	}
	return total
}

// Truncate returns a copy of the pattern limited to at most perRank bytes of
// each rank's declared data (leading runs kept, later ones dropped). The
// autotuner's closed-loop probes run these shortened phases: a few
// aggregation rounds are enough to observe the machine, at a fraction of the
// full workload's simulation cost.
func (p Pattern) Truncate(perRank int64) Pattern {
	inner := p.Declared
	out := p
	out.Name = p.Name + "-probe"
	out.Declared = func(rank, ranks int) [][]storage.Seg {
		decl := inner(rank, ranks)
		budget := perRank
		trunc := make([][]storage.Seg, len(decl))
		for i, segs := range decl {
			for _, s := range segs {
				if budget <= 0 || s.Empty() {
					continue
				}
				if s.Bytes() > budget {
					// Keep whole leading runs; always keep at least one so a
					// tiny budget still declares something.
					runs := budget / s.Len
					if runs < 1 {
						runs = 1
					}
					s.Count = runs
				}
				trunc[i] = append(trunc[i], s)
				budget -= s.Bytes()
			}
		}
		return trunc
	}
	return out
}
