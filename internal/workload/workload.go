// Package workload generates the access patterns of the paper's evaluation:
// the IOR-style micro-benchmark (per-rank contiguous blocks) and HACC-IO,
// the I/O kernel of the HACC cosmology code (9 particle variables, 38 bytes
// per particle, in array-of-structures or structure-of-arrays layout).
package workload

import "tapioca/internal/storage"

// HACC particle variables: coordinates, velocity, and physics properties.
// Sizes sum to ParticleBytes (38), as in the paper.
var (
	HACCVarNames = []string{"xx", "yy", "zz", "vx", "vy", "vz", "phi", "pid", "mask"}
	HACCVarSizes = []int64{4, 4, 4, 4, 4, 4, 4, 8, 2}
)

// ParticleBytes is the size of one HACC particle record (38 bytes).
const ParticleBytes = 38

// Layouts for HACC-IO.
const (
	// AoS stores interleaved particle records; writing one variable is a
	// sparse strided pattern (e.g. 4 bytes every 38).
	AoS = iota
	// SoA stores each variable as a file-global array; writing one
	// variable is a dense contiguous block per rank.
	SoA
)

// LayoutName returns "AoS" or "SoA".
func LayoutName(layout int) string {
	if layout == AoS {
		return "AoS"
	}
	return "SoA"
}

// IORSegs returns the IOR-style pattern: rank writes size contiguous bytes
// at rank*size.
func IORSegs(rank int, size int64) []storage.Seg {
	if size <= 0 {
		return nil
	}
	return []storage.Seg{storage.Contig(int64(rank)*size, size)}
}

// HACCDeclared returns the per-variable declared patterns for one rank:
// declared[v] is the file extent list of variable v. ranks is the number of
// ranks sharing the file (the subfiling group on Mira, the world on Theta).
func HACCDeclared(rank, ranks int, particles int64, layout int) [][]storage.Seg {
	out := make([][]storage.Seg, len(HACCVarSizes))
	switch layout {
	case AoS:
		base := int64(rank) * particles * ParticleBytes
		var fieldOff int64
		for v, sz := range HACCVarSizes {
			out[v] = []storage.Seg{storage.Strided(base+fieldOff, sz, ParticleBytes, particles)}
			fieldOff += sz
		}
	default: // SoA
		var regionOff int64
		for v, sz := range HACCVarSizes {
			off := regionOff + int64(rank)*particles*sz
			out[v] = []storage.Seg{storage.Contig(off, particles*sz)}
			regionOff += int64(ranks) * particles * sz
		}
	}
	return out
}

// HACCFileBytes returns the total file size for a HACC run.
func HACCFileBytes(ranks int, particles int64) int64 {
	return int64(ranks) * particles * ParticleBytes
}

// ParticlesForMB returns the particle count whose records occupy about
// mb megabytes (the paper: "a useful base value of 25,000 particles requires
// approximately 1 MB").
func ParticlesForMB(mb float64) int64 {
	return int64(mb * (1 << 20) / ParticleBytes)
}

// Mesh2D describes a 2-D array checkpoint decomposed into a PxQ process
// grid (the paper's §VI future-work data layout). The global array is
// (P*TileRows) × (Q*TileCols) elements of ElemSize bytes, stored row-major;
// each rank owns one tile, whose file pattern is TileRows strided runs.
type Mesh2D struct {
	P, Q               int   // process grid
	TileRows, TileCols int64 // per-rank tile shape (elements)
	ElemSize           int64 // bytes per element
}

// Segs returns the file pattern of one rank's tile.
func (m Mesh2D) Segs(rank int) []storage.Seg {
	pr := rank / m.Q // tile row in the process grid
	pc := rank % m.Q // tile column
	globalRowBytes := int64(m.Q) * m.TileCols * m.ElemSize
	start := int64(pr)*m.TileRows*globalRowBytes + int64(pc)*m.TileCols*m.ElemSize
	return []storage.Seg{storage.Strided(start, m.TileCols*m.ElemSize, globalRowBytes, m.TileRows)}
}

// Bytes returns the total array size.
func (m Mesh2D) Bytes() int64 {
	return int64(m.P) * int64(m.Q) * m.TileRows * m.TileCols * m.ElemSize
}

// Ranks returns the process-grid size.
func (m Mesh2D) Ranks() int { return m.P * m.Q }
