package workload

import (
	"testing"

	"tapioca/internal/storage"
)

func TestHACCVarSizesSumTo38(t *testing.T) {
	var sum int64
	for _, s := range HACCVarSizes {
		sum += s
	}
	if sum != ParticleBytes {
		t.Fatalf("variable sizes sum to %d, want %d", sum, ParticleBytes)
	}
	if len(HACCVarNames) != len(HACCVarSizes) {
		t.Fatal("names and sizes disagree")
	}
}

func TestParticlesForMB(t *testing.T) {
	// The paper: 25,000 particles ≈ 1 MB.
	p := ParticlesForMB(1)
	if p < 25000 || p > 29000 {
		t.Fatalf("ParticlesForMB(1) = %d", p)
	}
}

func TestIORSegs(t *testing.T) {
	segs := IORSegs(3, 1<<20)
	if len(segs) != 1 || segs[0].Off != 3<<20 || segs[0].Bytes() != 1<<20 {
		t.Fatalf("segs = %+v", segs)
	}
	if IORSegs(0, 0) != nil {
		t.Fatal("zero size should be empty")
	}
}

// Both layouts must tile the file exactly with no gaps or overlaps.
func TestHACCLayoutsTileFile(t *testing.T) {
	const ranks = 4
	const particles = 100
	total := HACCFileBytes(ranks, particles)
	for _, layout := range []int{AoS, SoA} {
		var bytes int64
		seen := make([]bool, total)
		for r := 0; r < ranks; r++ {
			decl := HACCDeclared(r, ranks, particles, layout)
			if len(decl) != 9 {
				t.Fatalf("layout %s: %d variables", LayoutName(layout), len(decl))
			}
			for _, segs := range decl {
				storage.Enumerate(segs, 1<<22, func(off, length int64) {
					for i := off; i < off+length; i++ {
						if i < 0 || i >= total {
							t.Fatalf("layout %s: byte %d outside file of %d", LayoutName(layout), i, total)
						}
						if seen[i] {
							t.Fatalf("layout %s: byte %d written twice", LayoutName(layout), i)
						}
						seen[i] = true
					}
					bytes += length
				})
			}
		}
		if bytes != total {
			t.Fatalf("layout %s: %d bytes declared, want %d", LayoutName(layout), bytes, total)
		}
	}
}

func TestHACCAoSIsStrided(t *testing.T) {
	decl := HACCDeclared(0, 2, 50, AoS)
	for v, segs := range decl {
		if len(segs) != 1 || segs[0].Count != 50 {
			t.Fatalf("var %d: %+v", v, segs)
		}
		if segs[0].Stride != ParticleBytes {
			t.Fatalf("var %d stride = %d", v, segs[0].Stride)
		}
	}
}

func TestMesh2DTilesExactly(t *testing.T) {
	m := Mesh2D{P: 3, Q: 4, TileRows: 5, TileCols: 7, ElemSize: 8}
	total := m.Bytes()
	seen := make([]bool, total)
	var bytes int64
	for r := 0; r < m.Ranks(); r++ {
		storage.Enumerate(m.Segs(r), 1<<20, func(off, length int64) {
			for i := off; i < off+length; i++ {
				if i < 0 || i >= total || seen[i] {
					t.Fatalf("rank %d byte %d invalid or duplicated", r, i)
				}
				seen[i] = true
			}
			bytes += length
		})
	}
	if bytes != total {
		t.Fatalf("covered %d of %d bytes", bytes, total)
	}
}

func TestMesh2DRowStructure(t *testing.T) {
	m := Mesh2D{P: 2, Q: 2, TileRows: 4, TileCols: 8, ElemSize: 4}
	segs := m.Segs(3) // bottom-right tile
	if len(segs) != 1 || segs[0].Count != 4 {
		t.Fatalf("segs = %+v", segs)
	}
	if segs[0].Len != 8*4 {
		t.Fatalf("row length = %d", segs[0].Len)
	}
	if segs[0].Stride != 2*8*4 {
		t.Fatalf("stride = %d, want global row", segs[0].Stride)
	}
}

func TestHACCSoAIsContiguous(t *testing.T) {
	decl := HACCDeclared(1, 2, 50, SoA)
	for v, segs := range decl {
		if len(segs) != 1 || segs[0].Count != 1 {
			t.Fatalf("var %d: %+v", v, segs)
		}
		if segs[0].Bytes() != 50*HACCVarSizes[v] {
			t.Fatalf("var %d bytes = %d", v, segs[0].Bytes())
		}
	}
}
