package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestRecorderDisabledZeroAlloc pins invariant 1 of the package doc: the
// disabled state — a nil recorder, or a metrics-only recorder on the trace
// methods — allocates nothing.
func TestRecorderDisabledZeroAlloc(t *testing.T) {
	var nilRec *Recorder
	metricsOnly := NewRecorder(false)
	for _, tc := range []struct {
		name string
		rec  *Recorder
	}{
		{"nil", nilRec},
		{"metrics-only", metricsOnly},
	} {
		rec := tc.rec
		allocs := testing.AllocsPerRun(1000, func() {
			rec.Span(0, 0, "sched", "run", 0, 10, 0)
			rec.Counter(0, 0, "util", 0, 0.5)
		})
		if allocs != 0 {
			t.Errorf("%s recorder: %v allocs per Span+Counter, want 0", tc.name, allocs)
		}
	}
	if n := len(metricsOnly.Events()); n != 0 {
		t.Errorf("metrics-only recorder buffered %d events", n)
	}
	// Phase accounting and metrics still work without tracing.
	metricsOnly.Phase(PhaseExchange, 100)
	if got := metricsOnly.PhaseTotals()[PhaseExchange]; got != 100 {
		t.Errorf("PhaseTotals[exchange] = %d, want 100", got)
	}
	metricsOnly.Registry().Add("x", 3)
	if got := metricsOnly.Registry().Counter("x").Value(); got != 3 {
		t.Errorf("counter x = %d, want 3", got)
	}
	// Nil recorder: the whole chain is a no-op, not a panic.
	nilRec.Phase(PhaseCodec, 5)
	nilRec.Registry().Add("x", 1)
	nilRec.Registry().Observe("y", 1)
}

// TestRecorderEventCap checks overflow is counted, never silent.
func TestRecorderEventCap(t *testing.T) {
	rec := NewRecorder(true)
	rec.SetEventLimit(4)
	for i := 0; i < 10; i++ {
		rec.Span(0, 0, "c", "n", int64(i), int64(i+1), 0)
	}
	if got := len(rec.Events()); got != 4 {
		t.Errorf("len(events) = %d, want 4", got)
	}
	if got := rec.Dropped(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
}

// fillRegistry populates a registry with one of each metric kind.
func fillRegistry(reg *Registry) {
	reg.Add("net.bytes", 1<<30)
	reg.Add("net.transfers", 4096)
	reg.SetMax("codec.ratio", 0.41)
	for i := 1; i <= 100; i++ {
		reg.Observe("lat", float64(i)*0.001)
	}
}

// TestSnapshotRoundTrip checks the -json embedding survives encoding/json
// losslessly.
func TestSnapshotRoundTrip(t *testing.T) {
	reg := NewRegistry()
	fillRegistry(reg)
	snap := reg.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("snapshot did not round-trip:\n in: %+v\nout: %+v", snap, back)
	}
	if snap.Empty() {
		t.Fatal("filled snapshot reports Empty")
	}
}

// TestHistogramQuantiles checks the log-bucketed quantiles are deterministic
// and land within one bucket (≤ ~19% relative) of the exact value, clamped
// to the observed min/max.
func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	for i := 1; i <= 1000; i++ {
		reg.Observe("v", float64(i))
	}
	st := reg.Snapshot().Histograms["v"]
	if st.Count != 1000 {
		t.Fatalf("count = %d, want 1000", st.Count)
	}
	if st.Min != 1 || st.Max != 1000 {
		t.Fatalf("min/max = %v/%v, want 1/1000", st.Min, st.Max)
	}
	if st.P50 < 500*0.8 || st.P50 > 500*1.25 {
		t.Errorf("p50 = %v, want within a bucket of 500", st.P50)
	}
	if st.P99 < 990*0.8 || st.P99 > 1000 {
		t.Errorf("p99 = %v, want within a bucket of 990 (≤ max)", st.P99)
	}
	// Identical observations in any order → identical stats.
	reg2 := NewRegistry()
	for i := 1000; i >= 1; i-- {
		reg2.Observe("v", float64(i))
	}
	if st2 := reg2.Snapshot().Histograms["v"]; st2 != st {
		t.Errorf("order-dependent histogram: %+v vs %+v", st, st2)
	}
}

// TestMergeFromCommutative checks cell merge order cannot change a snapshot
// (the property parallel grid execution relies on).
func TestMergeFromCommutative(t *testing.T) {
	mk := func(scale int64) *Registry {
		reg := NewRegistry()
		reg.Add("bytes", scale<<20)
		reg.SetMax("peak", float64(scale))
		for i := int64(1); i <= 10; i++ {
			reg.Observe("lat", float64(i*scale))
		}
		return reg
	}
	a, b, c := mk(1), mk(7), mk(100)

	ab := NewRegistry()
	ab.MergeFrom(a)
	ab.MergeFrom(b)
	ab.MergeFrom(c)
	ba := NewRegistry()
	ba.MergeFrom(c)
	ba.MergeFrom(b)
	ba.MergeFrom(a)
	if s1, s2 := ab.Snapshot(), ba.Snapshot(); !reflect.DeepEqual(s1, s2) {
		t.Fatalf("merge not commutative:\nab: %+v\nba: %+v", s1, s2)
	}
	s := ab.Snapshot()
	if got := s.Counters["bytes"]; got != (1+7+100)<<20 {
		t.Errorf("merged counter = %d, want %d", got, int64(108)<<20)
	}
	if got := s.Gauges["peak"]; got != 100 {
		t.Errorf("merged gauge = %v, want 100 (max semantics)", got)
	}
	if got := s.Histograms["lat"].Count; got != 30 {
		t.Errorf("merged histogram count = %d, want 30", got)
	}
}

// traceRecorder builds a small but representative recorder: scheduler spans,
// a resource-timeline span, and a counter sample.
func traceRecorder(base int64) *Recorder {
	rec := NewRecorder(true)
	rec.Span(0, 0, "sched", "run", base, base+100, 0)
	rec.Span(0, 1, "mpi", "barrier", base+20, base+90, 0)
	rec.Span(PIDLinks, 3, "net", "xfer", base+10, base+60, 4096)
	rec.Span(PIDNICs, 2, "net", "tx", base+10, base+55, 4096)
	rec.Span(PIDStorage, 0, "storage", "lustre-write", base+60, base+200, 1<<20)
	rec.Counter(PIDLinks, 3, "util", base+60, 0.75)
	return rec
}

// TestChromeTraceSchema validates the written trace parses as JSON and every
// event carries the Chrome trace-event required fields.
func TestChromeTraceSchema(t *testing.T) {
	tr := NewTrace()
	tr.AddCell("cellA", traceRecorder(0))
	tr.AddCell("cellB", traceRecorder(1000))
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string          `json:"ph"`
			PID  *int64          `json:"pid"`
			TID  *int64          `json:"tid"`
			TS   *float64        `json:"ts"`
			Dur  *float64        `json:"dur"`
			Name string          `json:"name"`
			Cat  string          `json:"cat"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	var spans, counters, meta int
	for i, e := range doc.TraceEvents {
		if e.PID == nil {
			t.Fatalf("event %d: missing pid: %+v", i, e)
		}
		if e.Ph == "X" && e.TID == nil {
			t.Fatalf("span %d: missing tid: %+v", i, e)
		}
		if e.Name == "" {
			t.Fatalf("event %d: missing name", i)
		}
		switch e.Ph {
		case "X":
			spans++
			if e.TS == nil || e.Dur == nil || e.Cat == "" {
				t.Fatalf("span %d: missing ts/dur/cat", i)
			}
		case "C":
			counters++
			if e.TS == nil || len(e.Args) == 0 {
				t.Fatalf("counter %d: missing ts/args", i)
			}
		case "M":
			meta++
			if e.Name != "process_name" && e.Name != "thread_name" {
				t.Fatalf("metadata %d: unexpected name %q", i, e.Name)
			}
		default:
			t.Fatalf("event %d: unexpected ph %q", i, e.Ph)
		}
	}
	if spans != 10 || counters != 2 {
		t.Errorf("got %d spans, %d counters; want 10 spans, 2 counters", spans, counters)
	}
	if meta == 0 {
		t.Error("no track-name metadata emitted")
	}
	if tr.NumEvents() != 12 {
		t.Errorf("NumEvents = %d, want 12", tr.NumEvents())
	}
}

// TestTraceCellOrderIndependence pins invariant 2: cells added in any order
// (serial vs parallel completion) produce byte-identical output.
func TestTraceCellOrderIndependence(t *testing.T) {
	write := func(order []int64) []byte {
		tr := NewTrace()
		for _, base := range order {
			// Identical label (grid cells of one figure share it): only the
			// event streams distinguish the cells.
			tr.AddCell("fig", traceRecorder(base))
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fwd := write([]int64{0, 500, 9000})
	rev := write([]int64{9000, 0, 500})
	if !bytes.Equal(fwd, rev) {
		t.Fatal("trace output depends on cell completion order")
	}
}
