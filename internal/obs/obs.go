// Package obs is the flight recorder behind tapiocabench -trace and the
// metrics registry behind the -json metrics snapshot: phase-level tracing,
// resource-utilization timelines, and typed counters for the whole stack
// (sim engine, netsim fabric, mpi runtime, core pipeline, storage).
//
// The package is designed around two invariants:
//
//  1. Zero overhead when disabled. Every producer holds a *Recorder that is
//     nil in normal operation; all Recorder methods are nil-receiver-safe,
//     so the disabled hot path pays exactly one pointer comparison and zero
//     allocations (guarded by BenchmarkEngineStepTraced and the alloc tests
//     in internal/sim).
//  2. Deterministic output. Recorded spans carry virtual time only, and
//     within one simulation the engine runs exactly one proc at a time, so
//     each simulation's event stream is identical on every run. Host-side
//     wall-clock measurements (codec time, store I/O) go to the metrics
//     registry under the "host." prefix, never into the trace.
//
// A Recorder observes ONE simulation (one engine + fabric + storage). Runs
// that span many independent simulations (the experiment grid) use one
// Recorder per cell and merge them through Trace and Registry.MergeFrom,
// both of which are order-independent, so parallel grid execution yields
// byte-identical traces and snapshots.
package obs

// Phase is one stage of the aggregation pipeline, the unit of the
// per-figure phase-breakdown table (the paper's stacked-bar analyses).
type Phase int

const (
	// PhaseAggregation is time ranks spend issuing puts/gets and gathering
	// payload into aggregation buffers.
	PhaseAggregation Phase = iota
	// PhaseExchange is time spent in round fences and closing barriers —
	// the synchronization cost of the bulk-synchronous schedule.
	PhaseExchange
	// PhaseStorage is time aggregators spend blocked on flush (write path)
	// or prefetch (read path) completions.
	PhaseStorage
	// PhaseCodec is compute time charged by the per-round reduction stage
	// (compress before flush, decompress after prefetch).
	PhaseCodec
	// NumPhases is the phase count (array sizing).
	NumPhases
)

var phaseNames = [NumPhases]string{"aggregation", "exchange", "storage", "codec"}

func (ph Phase) String() string {
	if ph < 0 || ph >= NumPhases {
		return "unknown"
	}
	return phaseNames[ph]
}

// Well-known trace process ids. Compute nodes use their node id directly as
// the pid (one Perfetto "process" per simulated node, one "thread" per
// rank); the resource timelines live in dedicated pseudo-processes above
// any realistic node count.
const (
	// PIDLinks hosts one thread per fabric link (reservation intervals and
	// rolling utilization counters).
	PIDLinks int32 = 1 << 24
	// PIDNICs hosts two threads per node: tid 2n is node n's injection NIC,
	// tid 2n+1 its ejection NIC.
	PIDNICs int32 = 1<<24 + 1
	// PIDStorage hosts one thread per issuing node carrying extent
	// write/read service intervals.
	PIDStorage int32 = 1<<24 + 2
)

// Kind discriminates trace events.
type Kind uint8

const (
	// KindSpan is a completed interval [TS, TS+Dur] (Chrome "X").
	KindSpan Kind = iota
	// KindCounter is a sampled value at TS (Chrome "C"); the counter track
	// is (PID, Name/TID).
	KindCounter
)

// Event is one recorded trace event. TS and Dur are virtual nanoseconds.
// Name and Cat must be constant (or otherwise outliving) strings — events
// reference, never copy.
type Event struct {
	Kind  Kind
	PID   int32
	TID   int32
	TS    int64
	Dur   int64
	Name  string
	Cat   string
	Bytes int64   // span payload size (0 when not a data-moving span)
	Val   float64 // counter value
}

// DefaultEventLimit caps a single recorder's event buffer. Tracing a
// pathological cell (hundreds of thousands of transfers) must not exhaust
// memory; overflow is counted, reported by Dropped, and surfaced by the
// drivers — never silent.
const DefaultEventLimit = 2 << 20

// Recorder collects one simulation's observability data. The zero value is
// not used; create with NewRecorder. A nil *Recorder is the disabled state:
// every method no-ops (and allocates nothing) on a nil receiver.
//
// Trace and phase methods are NOT goroutine-safe: they must be called from
// the simulation's running proc (the engine runs exactly one at a time),
// which is also what makes the event order deterministic. The Registry is
// goroutine-safe and may be fed from host-side background goroutines.
type Recorder struct {
	trace   bool
	limit   int
	dropped int64
	events  []Event
	phases  PhaseTotals
	reg     *Registry
}

// NewRecorder returns a recorder with a fresh registry. trace enables the
// event buffer; with trace false the recorder still accumulates metrics and
// phase totals (the -json/-phases mode).
func NewRecorder(trace bool) *Recorder {
	r := &Recorder{trace: trace, reg: NewRegistry()}
	if trace {
		r.limit = DefaultEventLimit
	}
	return r
}

// SetEventLimit overrides the per-recorder event cap (n <= 0 restores the
// default).
func (r *Recorder) SetEventLimit(n int) {
	if n <= 0 {
		n = DefaultEventLimit
	}
	r.limit = n
}

// Tracing reports whether the event buffer is live. Safe on nil.
func (r *Recorder) Tracing() bool { return r != nil && r.trace }

// Registry returns the metrics registry, or nil on a nil recorder — and
// Registry methods are themselves nil-safe, so producers chain
// r.Registry().Add(...) without checks.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Events returns the recorded events (no copy; callers must not mutate).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Dropped returns the events discarded at the event cap.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

func (r *Recorder) push(e Event) {
	if len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Span records a completed interval [start, end] on track (pid, tid).
// end < start records a zero-length span at start. No-op unless tracing.
func (r *Recorder) Span(pid, tid int32, cat, name string, start, end, bytes int64) {
	if r == nil || !r.trace {
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	r.push(Event{Kind: KindSpan, PID: pid, TID: tid, TS: start, Dur: dur, Name: name, Cat: cat, Bytes: bytes})
}

// Counter records a sampled value at virtual time ts on counter track
// (pid, name/tid). No-op unless tracing.
func (r *Recorder) Counter(pid, tid int32, name string, ts int64, val float64) {
	if r == nil || !r.trace {
		return
	}
	r.push(Event{Kind: KindCounter, PID: pid, TID: tid, TS: ts, Name: name, Val: val})
}

// Phase adds dur virtual nanoseconds to a phase total. Safe on nil.
func (r *Recorder) Phase(ph Phase, dur int64) {
	if r == nil || dur <= 0 {
		return
	}
	r.phases[ph] += dur
}

// PhaseTotals returns the accumulated per-phase virtual time.
func (r *Recorder) PhaseTotals() PhaseTotals {
	if r == nil {
		return PhaseTotals{}
	}
	return r.phases
}

// PhaseTotals is per-phase virtual nanoseconds, summed over every rank that
// reported (rank-time, not wall-time: P ranks each spending 1 s in a phase
// total P rank-seconds).
type PhaseTotals [NumPhases]int64

// Add accumulates another total (order-independent merge).
func (t *PhaseTotals) Add(o PhaseTotals) {
	for i := range t {
		t[i] += o[i]
	}
}

// Seconds returns one phase's total in seconds.
func (t PhaseTotals) Seconds(ph Phase) float64 { return float64(t[ph]) / 1e9 }

// Total returns the sum over all phases in seconds.
func (t PhaseTotals) Total() float64 {
	var s int64
	for _, v := range t {
		s += v
	}
	return float64(s) / 1e9
}

// Empty reports whether nothing was recorded.
func (t PhaseTotals) Empty() bool {
	for _, v := range t {
		if v != 0 {
			return false
		}
	}
	return true
}
