package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Trace accumulates per-simulation event streams ("cells": one independent
// simulation each, e.g. one experiment-grid cell) and writes them as one
// Chrome trace-event JSON file, viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Determinism contract: AddCell may be called concurrently (grid cells run
// on a worker pool), but WriteTo sorts cells by (label, event stream), so
// the serialized trace is byte-identical no matter the completion order —
// serial and -parallel runs produce the same file.
type Trace struct {
	mu      sync.Mutex
	cells   []traceCell
	dropped int64
}

type traceCell struct {
	label  string
	events []Event
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// AddCell appends one simulation's events under a label (typically the
// figure id). Recorders without events are skipped. Goroutine-safe.
func (t *Trace) AddCell(label string, r *Recorder) {
	if t == nil || r == nil {
		return
	}
	ev := r.Events()
	drop := r.Dropped()
	if len(ev) == 0 && drop == 0 {
		return
	}
	t.mu.Lock()
	t.cells = append(t.cells, traceCell{label: label, events: ev})
	t.dropped += drop
	t.mu.Unlock()
}

// NumEvents returns the total recorded events across cells.
func (t *Trace) NumEvents() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, c := range t.cells {
		n += len(c.events)
	}
	return n
}

// NumCells returns the number of recorded cells.
func (t *Trace) NumCells() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.cells)
}

// Dropped returns the events lost to per-recorder caps across all cells.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// compareEvents orders two event streams lexicographically — the
// deterministic tiebreak for cells sharing a label.
func compareEvents(a, b []Event) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		x, y := a[i], b[i]
		switch {
		case x.Kind != y.Kind:
			if x.Kind < y.Kind {
				return -1
			}
			return 1
		case x.TS != y.TS:
			if x.TS < y.TS {
				return -1
			}
			return 1
		case x.PID != y.PID:
			if x.PID < y.PID {
				return -1
			}
			return 1
		case x.TID != y.TID:
			if x.TID < y.TID {
				return -1
			}
			return 1
		case x.Dur != y.Dur:
			if x.Dur < y.Dur {
				return -1
			}
			return 1
		case x.Name != y.Name:
			if x.Name < y.Name {
				return -1
			}
			return 1
		case x.Bytes != y.Bytes:
			if x.Bytes < y.Bytes {
				return -1
			}
			return 1
		case x.Val != y.Val:
			if x.Val < y.Val {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// sortedCells returns the cells in canonical order without mutating the
// shared slice.
func (t *Trace) sortedCells() []traceCell {
	t.mu.Lock()
	cells := append([]traceCell(nil), t.cells...)
	t.mu.Unlock()
	// Insertion-ordered stable sort by (label, stream). Cell counts are
	// small (tens to hundreds); simplicity over asymptotics.
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0; j-- {
			a, b := cells[j-1], cells[j]
			if a.label < b.label || (a.label == b.label && compareEvents(a.events, b.events) <= 0) {
				break
			}
			cells[j-1], cells[j] = b, a
		}
	}
	return cells
}

// cellPIDStride separates cells' pid spaces in the merged trace; must
// exceed every pseudo-pid (PIDStorage is the largest).
const cellPIDStride = int64(1)<<24 + 8

// writeTS writes a virtual-nanosecond timestamp as fractional microseconds
// (the trace-event unit) with exact thousandths — no float formatting, so
// output is bit-stable.
func writeTS(w *bufio.Writer, ns int64) {
	fmt.Fprintf(w, "%d.%03d", ns/1000, ns%1000)
}

func processName(pid int32) string {
	switch pid {
	case PIDLinks:
		return "links"
	case PIDNICs:
		return "nics"
	case PIDStorage:
		return "storage"
	default:
		return fmt.Sprintf("node%d", pid)
	}
}

func threadName(pid, tid int32) string {
	switch pid {
	case PIDLinks:
		return fmt.Sprintf("link%d", tid)
	case PIDNICs:
		if tid%2 == 0 {
			return fmt.Sprintf("nic-out%d", tid/2)
		}
		return fmt.Sprintf("nic-in%d", tid/2)
	case PIDStorage:
		return fmt.Sprintf("node%d", tid)
	default:
		return fmt.Sprintf("rank%d", tid)
	}
}

// Write serializes the trace as Chrome trace-event JSON. Each cell's
// tracks get a disjoint pid range with process/thread name metadata
// ("fig7#3/node12", thread "rank197"), so Perfetto shows one process per
// simulated node per cell with one thread per rank, plus the links/nics/
// storage resource timelines.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	sep := func() {
		if first {
			first = false
		} else {
			bw.WriteString(",\n")
		}
	}
	for ci, cell := range t.sortedCells() {
		base := int64(ci) * cellPIDStride
		// Emit name metadata for every distinct track, in first-use order
		// (deterministic: the event stream is).
		seenPID := map[int32]bool{}
		seenTID := map[int64]bool{}
		for _, e := range cell.events {
			if !seenPID[e.PID] {
				seenPID[e.PID] = true
				sep()
				fmt.Fprintf(bw, `{"ph":"M","name":"process_name","pid":%d,"args":{"name":%q}}`,
					base+int64(e.PID), fmt.Sprintf("%s#%d/%s", cell.label, ci, processName(e.PID)))
			}
			if e.Kind == KindSpan {
				key := int64(e.PID)<<32 | int64(uint32(e.TID))
				if !seenTID[key] {
					seenTID[key] = true
					sep()
					fmt.Fprintf(bw, `{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%q}}`,
						base+int64(e.PID), e.TID, threadName(e.PID, e.TID))
				}
			}
		}
		for _, e := range cell.events {
			sep()
			switch e.Kind {
			case KindCounter:
				fmt.Fprintf(bw, `{"ph":"C","pid":%d,"name":"%s/%d","ts":`, base+int64(e.PID), e.Name, e.TID)
				writeTS(bw, e.TS)
				fmt.Fprintf(bw, `,"args":{"value":%g}}`, e.Val)
			default:
				fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"cat":%q,"name":%q,"ts":`,
					base+int64(e.PID), e.TID, e.Cat, e.Name)
				writeTS(bw, e.TS)
				bw.WriteString(`,"dur":`)
				writeTS(bw, e.Dur)
				if e.Bytes != 0 {
					fmt.Fprintf(bw, `,"args":{"bytes":%d}`, e.Bytes)
				}
				bw.WriteString("}")
			}
		}
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}
