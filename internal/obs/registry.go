package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a typed metrics registry: named counters (monotonic int64),
// gauges (float64, merged by maximum — "peak" semantics), and histograms
// (log-bucketed float64 distributions with deterministic quantiles).
//
// All operations are goroutine-safe. Instrument handles (Counter,
// Gauge, Histogram) may be cached by hot paths; name-based helpers exist
// for cold paths. Every method is nil-receiver-safe so producers can chain
// rec.Registry().Add(...) without guards.
//
// Metric names are dotted paths, "layer.metric": "net.bytes",
// "tapioca.rounds", "storage.capture_dropped". Host-side wall-clock
// measurements use the "host." prefix — they are the only
// non-deterministic values in a snapshot.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonic int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Safe on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric with peak semantics: Set keeps the maximum of
// all observations, so merging across cells is order-independent.
type Gauge struct {
	mu  sync.Mutex
	v   float64
	set bool
}

// Set records v, keeping the maximum. Safe on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if !g.set || v > g.v {
		g.v = v
		g.set = true
	}
	g.mu.Unlock()
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram buckets: 4 sub-buckets per octave over 2^-32 … 2^32, which
// covers everything we observe (utilization fractions, seconds, ratios)
// with ≤ ~19% relative quantile error.
const (
	histMinExp  = -32
	histMaxExp  = 32
	histPerOct  = 4
	histBuckets = (histMaxExp - histMinExp) * histPerOct
)

// Histogram is a log-bucketed distribution. Quantiles are deterministic
// (bucket upper bounds, clamped to the exact observed min/max).
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

func histBucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	i := int(math.Floor(math.Log2(v)*histPerOct)) - histMinExp*histPerOct
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// histBound returns bucket i's upper value bound.
func histBound(i int) float64 {
	return math.Exp2(float64(i+1)/histPerOct + histMinExp)
}

// Observe records one sample. Safe on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[histBucketOf(v)]++
	h.mu.Unlock()
}

// quantile returns the q-quantile (0 < q <= 1) from the bucket counts.
func (h *Histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			v := histBound(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Counter returns (creating on first use) the named counter. Safe on nil
// (returns a nil handle whose Add no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge. Safe on nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram. Safe on
// nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Add is the cold-path counter helper. Safe on nil.
func (r *Registry) Add(name string, n int64) { r.Counter(name).Add(n) }

// SetMax is the cold-path gauge helper. Safe on nil.
func (r *Registry) SetMax(name string, v float64) { r.Gauge(name).Set(v) }

// Observe is the cold-path histogram helper. Safe on nil.
func (r *Registry) Observe(name string, v float64) { r.Histogram(name).Observe(v) }

// MergeFrom folds another registry into this one: counters sum, gauges take
// the maximum, histogram buckets add. The merge is commutative and
// associative, so any cell completion order produces the same state.
func (r *Registry) MergeFrom(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	for name, c := range src.counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range src.gauges {
		g.mu.Lock()
		if g.set {
			r.Gauge(name).Set(g.v)
		}
		g.mu.Unlock()
	}
	for name, h := range src.hists {
		h.mu.Lock()
		if h.count > 0 {
			dst := r.Histogram(name)
			dst.mu.Lock()
			if dst.count == 0 || h.min < dst.min {
				dst.min = h.min
			}
			if dst.count == 0 || h.max > dst.max {
				dst.max = h.max
			}
			dst.count += h.count
			dst.sum += h.sum
			for i, n := range h.buckets {
				dst.buckets[i] += n
			}
			dst.mu.Unlock()
		}
		h.mu.Unlock()
	}
}

// HistStat is a histogram's JSON-facing summary.
type HistStat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// Snapshot is a registry's point-in-time value set, the shape embedded in
// tapiocabench's -json records. It round-trips through encoding/json
// losslessly (TestSnapshotRoundTrip).
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
}

// Snapshot captures the registry. Maps iterate non-deterministically but
// the returned maps' contents (and their JSON encoding, which sorts keys)
// are deterministic for deterministic inputs. Safe on nil (zero Snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistStat, len(r.hists))
		for name, h := range r.hists {
			h.mu.Lock()
			st := HistStat{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
			if h.count > 0 {
				st.Mean = h.sum / float64(h.count)
			}
			st.P50 = h.quantile(0.50)
			st.P99 = h.quantile(0.99)
			h.mu.Unlock()
			s.Histograms[name] = st
		}
	}
	return s
}

// Empty reports whether the snapshot carries no metrics.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Names returns every metric name in the snapshot, sorted (deterministic
// glossaries and tests).
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
