package mpiio

import (
	"errors"

	"tapioca/internal/fault"
	"tapioca/internal/storage"
)

// This file gives the MPI-IO baseline the same storage-fault hygiene a real
// ROMIO stack has: bounded retry with virtual-time backoff on transient
// errors and a fall-back to the tier behind a dead burst buffer. Only the
// coalesced round flushes and round reads go through the guarded path — the
// sieving read-modify-write stays on the plain interface, where the modeled
// client library absorbs transients internally.

// ioSys is the tier the handle's round I/O currently targets: the opened
// system, or the degraded fallback once the primary tier went down.
func (fh *File) ioSys() storage.System {
	if fh.degraded != nil {
		return fh.degraded
	}
	return fh.sys
}

// guarded issues one blocking round write (or read) with the recovery loop.
// On a system without a fault face this is exactly the original blocking
// call; with one, transients retry under the default policy, a tier outage
// degrades when a fallback tier exists, and an exhausted budget hands the op
// back to the self-healing plain interface so the collective still completes.
func (fh *File) guarded(read bool, segs []storage.Seg) {
	p := fh.c.Proc()
	node := fh.c.Node()
	plain := func(sys storage.System) {
		if read {
			sys.Read(p, node, fh.f, segs)
		} else {
			sys.Write(p, node, fh.f, segs)
		}
	}
	pol := fault.RetryPolicy{}.WithDefaults()
	for attempt, spent := 0, int64(0); ; {
		sys := fh.ioSys()
		fb := storage.FallibleOf(sys)
		if fb == nil {
			plain(sys)
			return
		}
		var err error
		if read {
			_, err = fb.ReadTry(p, node, fh.f, segs)
		} else {
			_, err = fb.WriteTry(p, node, fh.f, segs)
		}
		if err == nil {
			return
		}
		reg := p.Recorder().Registry()
		if errors.Is(err, fault.ErrTierDown) {
			if d := storage.DegradedSystemOf(sys); d != nil {
				fh.degraded = d
				reg.Add(fault.MetricDegradedRounds, 1)
				continue
			}
			plain(sys) // no fallback tier; the plain path completes the op
			return
		}
		if attempt < pol.MaxAttempts && spent < pol.Budget {
			d := pol.Backoff(attempt)
			attempt++
			spent += d
			p.Hold(d)
			reg.Add(fault.MetricRetries, 1)
			reg.Add(fault.MetricBackoffNs, d)
			continue
		}
		plain(sys) // budget exhausted: absorb internally, keep the collective alive
		return
	}
}
