// Package mpiio implements ROMIO-style MPI-IO over the simulated MPI runtime
// and storage systems: independent reads/writes with data sieving, and
// collective reads/writes with generic two-phase I/O (collective buffering).
//
// This is the paper's comparison baseline. Its deliberate limitations are
// exactly the ones TAPIOCA (internal/core) removes:
//
//   - every collective call aggregates only its own byte range, so a
//     sequence of calls (one per variable) flushes partially-filled
//     aggregation buffers (paper Fig. 2);
//   - aggregation and I/O phases of a round are synchronous — no
//     double-buffered overlap;
//   - with the classic hints, aggregator placement ignores the interconnect
//     topology (rank order / node spread / bridge-first heuristics). The
//     AggrTopologyAware and AggrTwoLevel strategies lift that limitation by
//     reusing TAPIOCA's cost engine (internal/cost) for the tuned baseline.
package mpiio

import (
	"fmt"
	"sort"

	"tapioca/internal/cost"
	"tapioca/internal/mpi"
	"tapioca/internal/netsim"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/tree"
)

// Aggregator placement strategies for collective buffering, re-exported from
// the shared cost engine (internal/cost). Any cost.Placement works as
// Hints.Strategy; strategies implementing cost.SetStrategy pick the whole
// set with the classic ROMIO heuristics, the rest run one cost-model
// election per aggregator partition.
var (
	// AggrNodeSpread picks the first rank of each node in node order (the
	// common MPICH/Cray default).
	AggrNodeSpread = cost.NodeSpread()
	// AggrRankOrder picks ranks 0..cb_nodes-1 regardless of node, which can
	// stack all aggregators on the first nodes.
	AggrRankOrder = cost.RankOrder()
	// AggrBridgeFirst prefers ranks on BG/Q bridge nodes, then spreads
	// (the MPICH strategy the paper describes for Mira).
	AggrBridgeFirst = cost.BridgeFirst()
	// AggrTopologyAware elects one aggregator per contiguous rank block by
	// minimizing the paper's C1+C2 cost model — the first scenario where
	// the tuned ROMIO baseline sees the interconnect. Volumes are unknown
	// at open time, so members carry uniform weights and the election
	// optimizes hop distance.
	AggrTopologyAware = cost.TopologyAware()
	// AggrTwoLevel is the intra-node variant (Kang et al.): members
	// pre-aggregate within their node and one leader per node competes in
	// the inter-node election.
	AggrTwoLevel = cost.TwoLevel()
)

// TunedHints converts a TAPIOCA aggregation configuration into the
// equivalent collective-buffering hints: cb_nodes and cb_buffer_size follow
// the aggregator count and buffer size, the placement strategy carries over
// unchanged (both paths share internal/cost), and domains are aligned and
// stripe-cyclic as every tuned ROMIO configuration in the paper is. This is
// how the autotuner's pick (internal/tune) reaches the baseline I/O path.
func TunedHints(aggregators int, bufSize int64, strategy cost.Placement) Hints {
	return Hints{
		CBNodes:       aggregators,
		CBBufferSize:  bufSize,
		Strategy:      strategy,
		AlignDomains:  true,
		CyclicDomains: true,
	}
}

// Hints mirror the ROMIO controls the paper tunes (cb_nodes,
// cb_buffer_size, aggregator placement, data sieving).
type Hints struct {
	// CBNodes is the number of collective-buffering aggregators.
	// Default: one per compute node hosting ranks.
	CBNodes int
	// CBBufferSize is the per-aggregator staging buffer. Default 16 MB.
	CBBufferSize int64
	// Strategy selects the aggregator placement strategy. Default:
	// AggrNodeSpread.
	Strategy cost.Placement
	// AlignDomains aligns file domains to the file system's optimal unit
	// (stripe/block), as tuned ROMIO does. Default off (set by the
	// "optimized" configurations).
	AlignDomains bool
	// CyclicDomains assigns file domains stripe-cyclically (stripe s →
	// aggregator s mod cb_nodes) instead of contiguously — the Lustre
	// driver behaviour of Cray MPI-IO/ROMIO, which keeps every OST busy
	// each round and pins each aggregator to one OST when cb_nodes is a
	// multiple of the stripe count.
	CyclicDomains bool
	// DisableSieving turns off write data sieving (read-modify-write for
	// sparse rounds); sparse data is then written run-by-run.
	DisableSieving bool
	// IntraNodeStaging routes the aggregation exchange through a node-local
	// staging hop: co-located ranks deposit their round pieces into a node
	// leader's buffer at memory bandwidth and one coalesced fabric message
	// per (node, aggregator) carries the node total, instead of one message
	// per rank. This is the data-plane counterpart of the AggrTwoLevel
	// election (which prices candidates assuming node-coalesced traffic).
	// Default off: the classic ROMIO exchange sends per-rank messages.
	IntraNodeStaging bool
	// TreePlan routes the coalesced node messages through a multi-level
	// reduction tree instead of straight to the aggregator, in internal/tree
	// shape syntax ("fanin:4", "group", "chain", ...). A non-flat plan
	// implies IntraNodeStaging (trees ride on the staging base level); the
	// flat and staged degenerate shapes reproduce the plain exchanges
	// exactly. Default "": no tree. An unparsable plan is reported by the
	// first collective call.
	TreePlan string
	// RecvOverhead is the aggregator-side CPU cost per received piece in
	// the two-sided aggregation exchange (message matching + unpacking on
	// the slow A2/KNL cores). TAPIOCA's one-sided puts bypass this — one of
	// the paper's arguments for RMA. Default 40 µs.
	RecvOverhead int64
	// CopyRate is the aggregator's single-core staging-buffer assembly
	// bandwidth (bytes/s, including datatype processing). Default 0.8 GB/s.
	CopyRate float64
}

func (h *Hints) setDefaults(c *mpi.Comm) {
	if h.CBBufferSize <= 0 {
		h.CBBufferSize = 16 << 20
	}
	if h.RecvOverhead <= 0 {
		h.RecvOverhead = 40_000
	}
	if h.CopyRate <= 0 {
		h.CopyRate = 0.8e9
	}
	if h.CBNodes <= 0 {
		nodes := map[int]bool{}
		for r := 0; r < c.Size(); r++ {
			nodes[c.NodeOfRank(r)] = true
		}
		h.CBNodes = len(nodes)
	}
	if h.CBNodes > c.Size() {
		h.CBNodes = c.Size()
	}
	if h.Strategy == nil {
		h.Strategy = AggrNodeSpread
	}
}

// File is one rank's handle on an MPI-IO file.
type File struct {
	c      *mpi.Comm
	sys    storage.System
	f      *storage.File
	hints  Hints
	aggrs  []int // comm ranks acting as aggregators
	myAgg  int   // index in aggrs if this rank is an aggregator, else -1
	closed bool  // set by Close; later I/O calls error instead of running

	xc         exchangeContrib          // reused per-round exchange contribution (horizons + staged deposits)
	xcBox      any                      // &xc boxed once: no per-round interface alloc
	horizonFn  func(contribs []any) any // per-handle combiner, built once in Open
	extScratch []storage.Extent         // reused per-round batched store extents
	nodePeers  int                      // comm ranks on this rank's node (staging needs ≥ 2)
	treeShape  *tree.Shape              // parsed Hints.TreePlan when non-degenerate
	treeErr    error                    // deferred Hints.TreePlan parse error

	// degraded, once set, replaces sys for round I/O: the fallback tier the
	// handle switches to when a fault plan takes the primary down (recover.go).
	degraded storage.System
}

// Open creates (on rank 0) and opens a file collectively.
func Open(c *mpi.Comm, sys storage.System, name string, opt storage.FileOptions, hints Hints) *File {
	var treeShape *tree.Shape
	var treeErr error
	if hints.TreePlan != "" {
		if sh, err := tree.ParseShape(hints.TreePlan); err != nil {
			treeErr = fmt.Errorf("mpiio: tree plan: %w", err)
		} else if sh.Staged() {
			// Trees ride on the staging base level; the staged degenerate is
			// then exactly the plain staged exchange.
			hints.IntraNodeStaging = true
			if !sh.Degenerate() {
				treeShape = &sh
			}
		}
	}
	hints.setDefaults(c)
	res := c.Bcast(0, 64, func() any {
		if c.Rank() != 0 {
			return nil
		}
		f := sys.Lookup(name)
		if f == nil {
			f = sys.Create(name, opt)
		}
		return f
	}())
	f := res.(*storage.File)
	aggrs := chooseAggregators(c, hints, sys)
	myAgg := -1
	for i, a := range aggrs {
		if a == c.Rank() {
			myAgg = i
		}
	}
	fh := &File{c: c, sys: sys, f: f, hints: hints, aggrs: aggrs, myAgg: myAgg,
		treeShape: treeShape, treeErr: treeErr}
	for r := 0; r < c.Size(); r++ {
		if c.NodeOfRank(r) == c.Node() {
			fh.nodePeers++
		}
	}
	fh.xcBox = &fh.xc
	fh.horizonFn = fh.combineHorizons
	return fh
}

// stageGroup is one coalesced (node, aggregator) message in the making: the
// slowest member deposit and the node's total payload for that aggregator.
type stageGroup struct{ at, bytes int64 }

// combineHorizons folds every rank's per-round exchange contribution into the
// per-aggregator arrival horizons. Flat pieces carry their fabric arrival
// directly. Staged deposits (Hints.IntraNodeStaging) are grouped by
// (node, aggregator): the group's coalesced fabric message is booked here, on
// behalf of the node leader, starting once the slowest member's deposit has
// landed — the combiner runs while every rank is parked in the collective, so
// the bookings are race-free and (keys sorted) deterministic. With a tree
// plan, the coalesced messages route hop-by-hop through the shape's interior
// relays instead of straight to the aggregator node.
func (fh *File) combineHorizons(contribs []any) any {
	h := make([]int64, len(fh.aggrs))
	var groups map[[2]int]*stageGroup
	for _, x := range contribs {
		xc := x.(*exchangeContrib)
		for _, aa := range xc.arr {
			if aa.at > h[aa.agg] {
				h[aa.agg] = aa.at
			}
		}
		for _, se := range xc.staged {
			if groups == nil {
				groups = map[[2]int]*stageGroup{}
			}
			k := [2]int{se.node, se.agg}
			g := groups[k]
			if g == nil {
				g = &stageGroup{}
				groups[k] = g
			}
			if se.at > g.at {
				g.at = se.at
			}
			g.bytes += se.bytes
		}
	}
	if groups != nil {
		fab := fh.c.World().Fabric()
		keys := make([][2]int, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		if fh.treeShape != nil {
			fh.treeHorizons(fab, groups, keys, h)
			return h
		}
		for _, k := range keys {
			g := groups[k]
			_, arr := fab.Reserve(g.at, k[0], fh.c.NodeOfRank(fh.aggrs[k[1]]), g.bytes)
			if arr > h[k[1]] {
				h[k[1]] = arr
			}
		}
	}
	return h
}

// treeHorizons books the staged node messages along the tree plan's relay
// hops instead of straight to each aggregator. Per aggregator, the staged
// nodes (node-sorted, with a zero-byte leader standing in for the aggregator
// node as root) form one reduction tree; the combiner walks it deepest level
// first, each vertex forwarding its whole subtree's bytes to its parent once
// its own deposit and every child's forward have landed. Message count per
// round is unchanged — every staged node still sends exactly once — only the
// hops and the payload sizes follow the tree. A structurally degenerate tree
// (fewer than two levels) books the plain direct message, byte-identically.
// keys is the node-sorted group-key order, so every fabric booking below is
// deterministic.
func (fh *File) treeHorizons(fab *netsim.Fabric, groups map[[2]int]*stageGroup, keys [][2]int, h []int64) {
	grouper := tree.GrouperOf(fab.Topology())
	for agg := range fh.aggrs {
		aggNode := fh.c.NodeOfRank(fh.aggrs[agg])
		var leaders []tree.Leader
		var ready []int64
		root := -1
		for _, k := range keys {
			if k[1] != agg {
				continue
			}
			if root < 0 && k[0] > aggNode {
				root = len(leaders)
				leaders = append(leaders, tree.Leader{Node: aggNode})
				ready = append(ready, 0)
			}
			leaders = append(leaders, tree.Leader{Node: k[0], Bytes: groups[k].bytes})
			ready = append(ready, groups[k].at)
		}
		if len(leaders) == 0 {
			continue
		}
		if root < 0 {
			root = len(leaders)
			leaders = append(leaders, tree.Leader{Node: aggNode})
			ready = append(ready, 0)
		}
		t := tree.Build(*fh.treeShape, leaders, root, grouper)
		sub := make([]int64, len(leaders))
		for v, l := range leaders {
			for a := v; a >= 0; a = t.Parent[a] {
				sub[a] += l.Bytes
			}
		}
		for d := t.Levels; d >= 1; d-- {
			for v := range leaders {
				if t.Depth[v] != d || sub[v] == 0 {
					continue
				}
				p := t.Parent[v]
				_, arr := fab.Reserve(ready[v], leaders[v].Node, leaders[p].Node, sub[v])
				if arr > ready[p] {
					ready[p] = arr
				}
			}
		}
		if ready[root] > h[agg] {
			h[agg] = ready[root]
		}
	}
}

// Storage returns the underlying storage file (for verification).
func (fh *File) Storage() *storage.File { return fh.f }

// Aggregators returns the comm ranks acting as collective-buffering
// aggregators.
func (fh *File) Aggregators() []int { return append([]int(nil), fh.aggrs...) }

// chooseAggregators picks the collective-buffering aggregator set. Every
// strategy — the classic ROMIO heuristics (cost.SetStrategy) and the
// cost-model elections alike — is deterministic and communicator-wide, so
// rank 0 computes the set once and broadcasts it: recomputing the O(P)
// selection on all P ranks would cost O(P²) work per open, and the Bcast's
// virtual time lands at open, outside every experiment's timed phase (real
// ROMIO likewise exchanges hints collectively at open).
func chooseAggregators(c *mpi.Comm, h Hints, sys storage.System) []int {
	res := c.Bcast(0, int64(8*h.CBNodes), func() any {
		if c.Rank() != 0 {
			return nil
		}
		if ss, ok := h.Strategy.(cost.SetStrategy); ok {
			return ss.SelectSet(&cost.SetElection{
				Nodes:  rankNodes(c),
				Want:   h.CBNodes,
				Bridge: bridgeFn(c),
			})
		}
		return electAggregators(c, h, sys)
	}())
	return res.([]int)
}

// rankNodes maps each comm rank to its compute node.
func rankNodes(c *mpi.Comm) []int {
	nodes := make([]int, c.Size())
	for r := range nodes {
		nodes[r] = c.NodeOfRank(r)
	}
	return nodes
}

// bridgeFn reports BG/Q bridge nodes for the bridge-first heuristic, or nil
// when the platform has none (the strategy then degrades to node spread).
// The bridge map materializes on first call, so strategies that never ask
// (rank order, node spread) pay nothing.
func bridgeFn(c *mpi.Comm) func(node int) bool {
	tor, ok := c.World().Fabric().Topology().(*topology.Torus5D)
	if !ok {
		return nil
	}
	var isBridge map[int]bool
	return func(node int) bool {
		if isBridge == nil {
			isBridge = map[int]bool{}
			for pset := 0; pset < tor.IONodes(); pset++ {
				br := tor.BridgeNodes(pset)
				isBridge[br[0]] = true
				isBridge[br[1]] = true
			}
		}
		return isBridge[node]
	}
}

// electAggregators partitions the comm's ranks into CBNodes contiguous
// blocks (the same rank→partition map TAPIOCA's planner uses) and elects
// one aggregator per block through the shared cost engine. Data volumes are
// unknown at open time, so members weigh in uniformly and the model
// optimizes interconnect distance; C2 still steers toward bridge-proximate
// nodes where the platform exposes I/O-node locality.
func electAggregators(c *mpi.Comm, h Hints, sys storage.System) []int {
	model := cost.MachineModel(c.World().Fabric().Distances(), sys)
	n := c.Size()
	nodes := rankNodes(c)
	out := make([]int, 0, h.CBNodes)
	for part := 0; part < h.CBNodes; part++ {
		lo := cost.PartitionStart(part, h.CBNodes, n)
		hi := cost.PartitionStart(part+1, h.CBNodes, n)
		members := make([]cost.Member, hi-lo)
		for i := range members {
			members[i] = cost.Member{Node: nodes[lo+i], Bytes: 1}
		}
		e := &cost.Election{Model: model, Members: members, Partition: part}
		out = append(out, lo+h.Strategy.Elect(e))
	}
	return out
}

// WriteAt performs an independent write of this rank's segments. Strided
// patterns use write data sieving (read-modify-write of the span) unless
// disabled, as ROMIO does for noncontiguous independent writes.
func (fh *File) WriteAt(segs []storage.Seg) error {
	return fh.WriteAtData(segs, nil)
}

// WriteAtData is WriteAt with payload bytes (packed in segment enumeration
// order) landed in the file's backing store.
func (fh *File) WriteAtData(segs []storage.Seg, data []byte) error {
	if fh.closed {
		return fmt.Errorf("mpiio: WriteAt on closed file %q", fh.f.Name)
	}
	if data != nil {
		if want := storage.TotalBytes(segs); int64(len(data)) != want {
			return fmt.Errorf("mpiio: WriteAt payload holds %d bytes, segments declare %d", len(data), want)
		}
		if err := fh.f.StoreWrite(segs, data); err != nil {
			return err
		}
	}
	if storage.TotalBytes(segs) == 0 {
		return nil
	}
	p := fh.c.Proc()
	if !fh.hints.DisableSieving && storage.TotalRuns(segs) > 1 {
		lo, hi := storage.SpanAll(segs)
		fh.sys.Read(p, fh.c.Node(), fh.f, []storage.Seg{storage.Contig(lo, hi-lo)})
		fh.sys.Write(p, fh.c.Node(), fh.f, []storage.Seg{storage.Contig(lo, hi-lo)})
		return nil
	}
	fh.sys.Write(p, fh.c.Node(), fh.f, segs)
	return nil
}

// ReadAt performs an independent read of this rank's segments, with read
// data sieving for strided patterns.
func (fh *File) ReadAt(segs []storage.Seg) error {
	return fh.ReadAtData(segs, nil)
}

// ReadAtData is ReadAt with dst (packed in segment enumeration order)
// filled from the file's backing store.
func (fh *File) ReadAtData(segs []storage.Seg, dst []byte) error {
	if fh.closed {
		return fmt.Errorf("mpiio: ReadAt on closed file %q", fh.f.Name)
	}
	if dst != nil {
		if want := storage.TotalBytes(segs); int64(len(dst)) != want {
			return fmt.Errorf("mpiio: ReadAt buffer holds %d bytes, segments declare %d", len(dst), want)
		}
		if err := fh.f.StoreRead(segs, dst); err != nil {
			return err
		}
	}
	if storage.TotalBytes(segs) == 0 {
		return nil
	}
	p := fh.c.Proc()
	if storage.TotalRuns(segs) > 1 {
		lo, hi := storage.SpanAll(segs)
		fh.sys.Read(p, fh.c.Node(), fh.f, []storage.Seg{storage.Contig(lo, hi-lo)})
		return nil
	}
	fh.sys.Read(p, fh.c.Node(), fh.f, segs)
	return nil
}

// Close is collective (a barrier; simulated state is garbage-collected).
// Collective and independent I/O on a closed handle returns a descriptive
// error instead of running.
func (fh *File) Close() {
	fh.c.Barrier()
	fh.closed = true
}
