// Package mpiio implements ROMIO-style MPI-IO over the simulated MPI runtime
// and storage systems: independent reads/writes with data sieving, and
// collective reads/writes with generic two-phase I/O (collective buffering).
//
// This is the paper's comparison baseline. Its deliberate limitations are
// exactly the ones TAPIOCA (internal/core) removes:
//
//   - every collective call aggregates only its own byte range, so a
//     sequence of calls (one per variable) flushes partially-filled
//     aggregation buffers (paper Fig. 2);
//   - aggregation and I/O phases of a round are synchronous — no
//     double-buffered overlap;
//   - aggregator placement ignores the interconnect topology (rank order /
//     node spread / bridge-first heuristics, not a cost model).
package mpiio

import (
	"fmt"
	"sort"

	"tapioca/internal/mpi"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
)

// Aggregator placement strategies for collective buffering.
const (
	// AggrNodeSpread picks the first rank of each node in node order (the
	// common MPICH/Cray default).
	AggrNodeSpread = iota
	// AggrRankOrder picks ranks 0..cb_nodes-1 regardless of node, which can
	// stack all aggregators on the first nodes.
	AggrRankOrder
	// AggrBridgeFirst prefers ranks on BG/Q bridge nodes, then spreads
	// (the MPICH strategy the paper describes for Mira).
	AggrBridgeFirst
)

// Hints mirror the ROMIO controls the paper tunes (cb_nodes,
// cb_buffer_size, aggregator placement, data sieving).
type Hints struct {
	// CBNodes is the number of collective-buffering aggregators.
	// Default: one per compute node hosting ranks.
	CBNodes int
	// CBBufferSize is the per-aggregator staging buffer. Default 16 MB.
	CBBufferSize int64
	// Strategy selects the aggregator placement heuristic.
	Strategy int
	// AlignDomains aligns file domains to the file system's optimal unit
	// (stripe/block), as tuned ROMIO does. Default off (set by the
	// "optimized" configurations).
	AlignDomains bool
	// CyclicDomains assigns file domains stripe-cyclically (stripe s →
	// aggregator s mod cb_nodes) instead of contiguously — the Lustre
	// driver behaviour of Cray MPI-IO/ROMIO, which keeps every OST busy
	// each round and pins each aggregator to one OST when cb_nodes is a
	// multiple of the stripe count.
	CyclicDomains bool
	// DisableSieving turns off write data sieving (read-modify-write for
	// sparse rounds); sparse data is then written run-by-run.
	DisableSieving bool
	// RecvOverhead is the aggregator-side CPU cost per received piece in
	// the two-sided aggregation exchange (message matching + unpacking on
	// the slow A2/KNL cores). TAPIOCA's one-sided puts bypass this — one of
	// the paper's arguments for RMA. Default 40 µs.
	RecvOverhead int64
	// CopyRate is the aggregator's single-core staging-buffer assembly
	// bandwidth (bytes/s, including datatype processing). Default 0.8 GB/s.
	CopyRate float64
}

func (h *Hints) setDefaults(c *mpi.Comm) {
	if h.CBBufferSize <= 0 {
		h.CBBufferSize = 16 << 20
	}
	if h.RecvOverhead <= 0 {
		h.RecvOverhead = 40_000
	}
	if h.CopyRate <= 0 {
		h.CopyRate = 0.8e9
	}
	if h.CBNodes <= 0 {
		nodes := map[int]bool{}
		for r := 0; r < c.Size(); r++ {
			nodes[c.NodeOfRank(r)] = true
		}
		h.CBNodes = len(nodes)
	}
	if h.CBNodes > c.Size() {
		h.CBNodes = c.Size()
	}
}

// File is one rank's handle on an MPI-IO file.
type File struct {
	c     *mpi.Comm
	sys   storage.System
	f     *storage.File
	hints Hints
	aggrs []int // comm ranks acting as aggregators
	myAgg int   // index in aggrs if this rank is an aggregator, else -1
}

// Open creates (on rank 0) and opens a file collectively.
func Open(c *mpi.Comm, sys storage.System, name string, opt storage.FileOptions, hints Hints) *File {
	hints.setDefaults(c)
	res := c.Bcast(0, 64, func() any {
		if c.Rank() != 0 {
			return nil
		}
		f := sys.Lookup(name)
		if f == nil {
			f = sys.Create(name, opt)
		}
		return f
	}())
	f := res.(*storage.File)
	aggrs := chooseAggregators(c, hints)
	myAgg := -1
	for i, a := range aggrs {
		if a == c.Rank() {
			myAgg = i
		}
	}
	return &File{c: c, sys: sys, f: f, hints: hints, aggrs: aggrs, myAgg: myAgg}
}

// Storage returns the underlying storage file (for verification).
func (fh *File) Storage() *storage.File { return fh.f }

// Aggregators returns the comm ranks acting as collective-buffering
// aggregators.
func (fh *File) Aggregators() []int { return append([]int(nil), fh.aggrs...) }

// chooseAggregators implements the placement heuristics.
func chooseAggregators(c *mpi.Comm, h Hints) []int {
	n := c.Size()
	switch h.Strategy {
	case AggrRankOrder:
		out := make([]int, h.CBNodes)
		for i := range out {
			out[i] = i
		}
		return out
	case AggrBridgeFirst:
		return bridgeFirst(c, h.CBNodes)
	default: // AggrNodeSpread
		byNode := map[int][]int{}
		var nodeOrder []int
		for r := 0; r < n; r++ {
			nd := c.NodeOfRank(r)
			if len(byNode[nd]) == 0 {
				nodeOrder = append(nodeOrder, nd)
			}
			byNode[nd] = append(byNode[nd], r)
		}
		sort.Ints(nodeOrder)
		var out []int
		if h.CBNodes <= len(nodeOrder) {
			// Evenly strided across the allocation, one rank per chosen
			// node — what tuned ROMIO configurations do.
			for i := 0; i < h.CBNodes; i++ {
				nd := nodeOrder[i*len(nodeOrder)/h.CBNodes]
				out = append(out, byNode[nd][0])
			}
			sort.Ints(out)
			return out
		}
		for depth := 0; len(out) < h.CBNodes; depth++ {
			added := false
			for _, nd := range nodeOrder {
				if depth < len(byNode[nd]) {
					out = append(out, byNode[nd][depth])
					added = true
					if len(out) == h.CBNodes {
						break
					}
				}
			}
			if !added {
				break
			}
		}
		sort.Ints(out)
		return out
	}
}

// bridgeFirst prefers ranks on bridge nodes (BG/Q), then falls back to node
// spread for the remainder.
func bridgeFirst(c *mpi.Comm, want int) []int {
	topo := c.World().Fabric().Topology()
	tor, ok := topo.(*topology.Torus5D)
	if !ok {
		h := Hints{CBNodes: want, Strategy: AggrNodeSpread}
		return chooseAggregators(c, h)
	}
	isBridge := map[int]bool{}
	for pset := 0; pset < tor.IONodes(); pset++ {
		br := tor.BridgeNodes(pset)
		isBridge[br[0]] = true
		isBridge[br[1]] = true
	}
	var bridgeRanks, otherFirstRanks []int
	seenNode := map[int]bool{}
	for r := 0; r < c.Size(); r++ {
		nd := c.NodeOfRank(r)
		if seenNode[nd] {
			continue
		}
		seenNode[nd] = true
		if isBridge[nd] {
			bridgeRanks = append(bridgeRanks, r)
		} else {
			otherFirstRanks = append(otherFirstRanks, r)
		}
	}
	out := bridgeRanks
	if len(out) > want {
		out = out[:want]
	}
	// Fill the remainder evenly across the non-bridge nodes.
	need := want - len(out)
	for i := 0; i < need && len(otherFirstRanks) > 0; i++ {
		out = append(out, otherFirstRanks[i*len(otherFirstRanks)/need])
	}
	sort.Ints(out)
	return out
}

// WriteAt performs an independent write of this rank's segments. Strided
// patterns use write data sieving (read-modify-write of the span) unless
// disabled, as ROMIO does for noncontiguous independent writes.
func (fh *File) WriteAt(segs []storage.Seg) {
	if storage.TotalBytes(segs) == 0 {
		return
	}
	p := fh.c.Proc()
	if !fh.hints.DisableSieving && storage.TotalRuns(segs) > 1 {
		lo, hi := storage.SpanAll(segs)
		fh.sys.Read(p, fh.c.Node(), fh.f, []storage.Seg{storage.Contig(lo, hi-lo)})
		fh.sys.Write(p, fh.c.Node(), fh.f, []storage.Seg{storage.Contig(lo, hi-lo)})
		return
	}
	fh.sys.Write(p, fh.c.Node(), fh.f, segs)
}

// ReadAt performs an independent read of this rank's segments, with read
// data sieving for strided patterns.
func (fh *File) ReadAt(segs []storage.Seg) {
	if storage.TotalBytes(segs) == 0 {
		return
	}
	p := fh.c.Proc()
	if storage.TotalRuns(segs) > 1 {
		lo, hi := storage.SpanAll(segs)
		fh.sys.Read(p, fh.c.Node(), fh.f, []storage.Seg{storage.Contig(lo, hi-lo)})
		return
	}
	fh.sys.Read(p, fh.c.Node(), fh.f, segs)
}

// Close is collective (a barrier; state is garbage-collected).
func (fh *File) Close() { fh.c.Barrier() }

var _ = fmt.Sprintf // fmt is used by sibling files in this package
