package mpiio

import (
	"testing"

	"tapioca/internal/cost"
	"tapioca/internal/mpi"
	"tapioca/internal/netsim"
	"tapioca/internal/sim"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
)

// rig bundles a small flat-topology world with a NullFS.
func runFlat(t *testing.T, ranks, ranksPerNode int, body func(c *mpi.Comm, sys storage.System)) *sim.Engine {
	t.Helper()
	nodes := (ranks + ranksPerNode - 1) / ranksPerNode
	topo := topology.NewFlat(nodes)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
	sys := storage.NewNullFS()
	eng, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: ranksPerNode, Fabric: fab}, func(c *mpi.Comm) {
		body(c, sys)
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestBuildScheduleContig(t *testing.T) {
	// 4 ranks × 1 MB contiguous, 2 aggregators, 1 MB buffers → domain 2 MB,
	// 2 rounds.
	const mb = 1 << 20
	allSegs := make([][]storage.Seg, 4)
	for r := range allSegs {
		allSegs[r] = []storage.Seg{storage.Contig(int64(r)*mb, mb)}
	}
	s := buildSchedule(allSegs, 2, mb, 0)
	if s.lo != 0 || s.hi != 4*mb {
		t.Fatalf("range [%d,%d)", s.lo, s.hi)
	}
	if s.rounds != 2 {
		t.Fatalf("rounds = %d", s.rounds)
	}
	// Every (agg, round) gets exactly one rank's MB.
	for a := 0; a < 2; a++ {
		for r := 0; r < 2; r++ {
			if s.aggRounds[a][r].bytes != mb {
				t.Errorf("agg %d round %d bytes = %d", a, r, s.aggRounds[a][r].bytes)
			}
		}
	}
	// Each rank sends exactly its MB, to one (agg, round).
	for r, pieces := range s.sendPieces {
		var total int64
		for _, p := range pieces {
			total += p.bytes
		}
		if total != mb {
			t.Errorf("rank %d sends %d bytes", r, total)
		}
	}
}

func TestBuildScheduleSparseStrided(t *testing.T) {
	// One rank writes 4-byte runs every 38 bytes — an AoS variable. The
	// schedule must keep byte counts exact.
	s := buildSchedule([][]storage.Seg{
		{storage.Strided(0, 4, 38, 1000)},
	}, 2, 1<<20, 0)
	var total int64
	for a := range s.aggRounds {
		for r := range s.aggRounds[a] {
			total += s.aggRounds[a][r].bytes
		}
	}
	if total != 4000 {
		t.Fatalf("scheduled bytes = %d, want 4000", total)
	}
}

func TestBuildScheduleDomainAlignment(t *testing.T) {
	const mb = 1 << 20
	allSegs := [][]storage.Seg{{storage.Contig(0, 3*mb)}}
	s := buildSchedule(allSegs, 2, mb, mb)
	if s.domains[0][1]%mb != 0 {
		t.Fatalf("domain boundary %d not aligned", s.domains[0][1])
	}
}

func TestBuildScheduleEmpty(t *testing.T) {
	s := buildSchedule(make([][]storage.Seg, 4), 2, 1<<20, 0)
	if s.rounds != 0 && s.hi != s.lo {
		t.Fatalf("empty schedule has rounds=%d range=[%d,%d)", s.rounds, s.lo, s.hi)
	}
}

func TestChooseAggregatorsNodeSpread(t *testing.T) {
	runFlat(t, 8, 2, func(c *mpi.Comm, sys storage.System) {
		aggrs := chooseAggregators(c, Hints{CBNodes: 4, Strategy: AggrNodeSpread}, sys)
		want := []int{0, 2, 4, 6} // first rank of each node
		for i, a := range aggrs {
			if a != want[i] {
				t.Errorf("aggrs = %v, want %v", aggrs, want)
				break
			}
		}
	})
}

func TestChooseAggregatorsRankOrder(t *testing.T) {
	runFlat(t, 8, 2, func(c *mpi.Comm, sys storage.System) {
		aggrs := chooseAggregators(c, Hints{CBNodes: 4, Strategy: AggrRankOrder}, sys)
		for i, a := range aggrs {
			if a != i {
				t.Errorf("aggrs = %v, want 0..3", aggrs)
				break
			}
		}
	})
}

func TestChooseAggregatorsBridgeFirstOnTorus(t *testing.T) {
	topo := topology.MiraTorus(256) // 2 Psets, bridges at 0,64,128,192
	fab := netsim.New(topo, netsim.Config{})
	sys := storage.NewNullFS()
	_, err := mpi.Run(mpi.Config{Ranks: 512, RanksPerNode: 2, Fabric: fab}, func(c *mpi.Comm) {
		aggrs := chooseAggregators(c, Hints{CBNodes: 4, Strategy: AggrBridgeFirst}, sys)
		tor := topo
		for _, a := range aggrs {
			node := c.NodeOfRank(a)
			br := tor.BridgeNodes(tor.PsetOf(node))
			if node != br[0] && node != br[1] {
				t.Errorf("aggregator rank %d on node %d is not a bridge node", a, node)
			}
		}
		_ = sys
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChooseAggregatorsTopologyAware(t *testing.T) {
	// The cost-model strategies elect one aggregator per contiguous rank
	// block; the set must be well-formed, sorted and deterministic.
	topo := topology.MiraTorus(128)
	fab := netsim.New(topo, netsim.Config{})
	sys := storage.NewNullFS()
	var first []int
	for trial := 0; trial < 2; trial++ {
		var got []int
		_, err := mpi.Run(mpi.Config{Ranks: 256, RanksPerNode: 2, Fabric: fab}, func(c *mpi.Comm) {
			aggrs := chooseAggregators(c, Hints{CBNodes: 8, Strategy: AggrTopologyAware}, sys)
			if c.Rank() == 0 {
				got = aggrs
			} else if len(aggrs) != 8 {
				t.Errorf("rank %d sees %d aggregators", c.Rank(), len(aggrs))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 8 {
			t.Fatalf("aggregator set = %v", got)
		}
		for i, a := range got {
			lo, hi := i*256/8, (i+1)*256/8
			if a < lo || a >= hi {
				t.Fatalf("aggregator %d = rank %d outside its block [%d,%d)", i, a, lo, hi)
			}
		}
		if trial == 0 {
			first = got
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("election not deterministic: %v vs %v", got, first)
				}
			}
		}
	}
}

func TestTopologyAwareStrategyParity(t *testing.T) {
	// AggrTopologyAware and AggrTwoLevel must be drop-in strategies:
	// identical file coverage and byte totals to the classic heuristics on
	// the same workload, with only the aggregator identities changing.
	const ranks = 16
	const chunk = 1 << 14
	for _, strategy := range []cost.Placement{
		AggrNodeSpread, AggrRankOrder, AggrTopologyAware, AggrTwoLevel,
	} {
		var file *storage.File
		runFlat(t, ranks, 4, func(c *mpi.Comm, sys storage.System) {
			fh := Open(c, sys, "p-"+strategy.Name(), storage.FileOptions{}, Hints{
				CBNodes: 4, CBBufferSize: 1 << 15, Strategy: strategy,
			})
			if c.Rank() == 0 {
				fh.Storage().SetCapture(true)
				file = fh.Storage()
			}
			c.Barrier()
			fh.WriteAtAll([]storage.Seg{storage.Contig(int64(c.Rank())*chunk, chunk)})
			fh.Close()
		})
		if err := file.VerifyCoverage(0, ranks*chunk); err != nil {
			t.Fatalf("%s: %v", strategy.Name(), err)
		}
		if file.BytesWritten() != ranks*chunk {
			t.Fatalf("%s: wrote %d bytes, want %d", strategy.Name(), file.BytesWritten(), ranks*chunk)
		}
	}
}

// elapsedWithStrategy runs one Theta collective write under the strategy and
// returns the virtual elapsed time.
func elapsedWithStrategy(t *testing.T, strategy cost.Placement) int64 {
	t.Helper()
	topo := topology.ThetaDragonfly(64, topology.RouteMinimal)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
	sys := storage.NewNullFS()
	eng, err := mpi.Run(mpi.Config{Ranks: 256, RanksPerNode: 4, Fabric: fab}, func(c *mpi.Comm) {
		fh := Open(c, sys, "w", storage.FileOptions{}, Hints{
			CBNodes: 16, CBBufferSize: 1 << 20, Strategy: strategy,
		})
		fh.WriteAtAll([]storage.Seg{storage.Contig(int64(c.Rank())<<18, 1<<18)})
		fh.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng.Now()
}

func TestTopologyAwareBeatsRankOrderElapsed(t *testing.T) {
	// The acceptance bar for the shared cost engine: the topology-aware
	// baseline finishes a collective write faster than rank-order stacking
	// (which funnels all 16 aggregators onto the first 4 nodes).
	stacked := elapsedWithStrategy(t, AggrRankOrder)
	aware := elapsedWithStrategy(t, AggrTopologyAware)
	if aware >= stacked {
		t.Fatalf("topology-aware elapsed %d >= rank-order %d", aware, stacked)
	}
	twoLevel := elapsedWithStrategy(t, AggrTwoLevel)
	if twoLevel >= stacked {
		t.Fatalf("two-level elapsed %d >= rank-order %d", twoLevel, stacked)
	}
}

func TestWriteAtAllCoversFile(t *testing.T) {
	const ranks = 8
	const chunk = 1 << 16
	var file *storage.File
	runFlat(t, ranks, 2, func(c *mpi.Comm, sys storage.System) {
		fh := Open(c, sys, "out", storage.FileOptions{}, Hints{CBNodes: 2, CBBufferSize: 1 << 17})
		if c.Rank() == 0 {
			fh.Storage().SetCapture(true)
			file = fh.Storage()
		}
		c.Barrier()
		off := int64(c.Rank()) * chunk
		fh.WriteAtAll([]storage.Seg{storage.Contig(off, chunk)})
		fh.Close()
	})
	if err := file.VerifyCoverage(0, ranks*chunk); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAtAllStridedCoverage(t *testing.T) {
	// Interleaved AoS-style pattern: rank r writes runs of 8 bytes at
	// stride 32 starting at r*8, 4 ranks → full tiling.
	const ranks = 4
	var file *storage.File
	runFlat(t, ranks, 1, func(c *mpi.Comm, sys storage.System) {
		fh := Open(c, sys, "aos", storage.FileOptions{}, Hints{CBNodes: 2, CBBufferSize: 1 << 10, DisableSieving: true})
		if c.Rank() == 0 {
			fh.Storage().SetCapture(true)
			file = fh.Storage()
		}
		c.Barrier()
		fh.WriteAtAll([]storage.Seg{storage.Strided(int64(c.Rank())*8, 8, 32, 64)})
		fh.Close()
	})
	if err := file.VerifyCoverage(0, 32*64); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAtAllOnlyAggregatorsTouchStorage(t *testing.T) {
	var file *storage.File
	aggNodes := map[int]bool{}
	runFlat(t, 8, 2, func(c *mpi.Comm, sys storage.System) {
		fh := Open(c, sys, "o", storage.FileOptions{}, Hints{CBNodes: 2})
		if c.Rank() == 0 {
			fh.Storage().SetCapture(true)
			file = fh.Storage()
			for _, a := range fh.Aggregators() {
				aggNodes[c.NodeOfRank(a)] = true
			}
		}
		c.Barrier()
		fh.WriteAtAll([]storage.Seg{storage.Contig(int64(c.Rank())*1024, 1024)})
		fh.Close()
	})
	for _, w := range file.Writes() {
		if !aggNodes[w.Node] {
			t.Fatalf("write issued from non-aggregator node %d", w.Node)
		}
	}
}

func TestWriteAtAllUnevenSizes(t *testing.T) {
	// Ranks write different amounts; coverage must still be exact.
	const ranks = 6
	sizes := []int64{100, 0, 5000, 1, 999, 3000}
	var offs [ranks]int64
	var total int64
	for i, s := range sizes {
		offs[i] = total
		total += s
	}
	var file *storage.File
	runFlat(t, ranks, 3, func(c *mpi.Comm, sys storage.System) {
		fh := Open(c, sys, "u", storage.FileOptions{}, Hints{CBNodes: 3, CBBufferSize: 2048})
		if c.Rank() == 0 {
			fh.Storage().SetCapture(true)
			file = fh.Storage()
		}
		c.Barrier()
		var segs []storage.Seg
		if sizes[c.Rank()] > 0 {
			segs = []storage.Seg{storage.Contig(offs[c.Rank()], sizes[c.Rank()])}
		}
		fh.WriteAtAll(segs)
		fh.Close()
	})
	if err := file.VerifyCoverage(0, total); err != nil {
		t.Fatal(err)
	}
	if file.BytesWritten() != total {
		t.Fatalf("bytes = %d, want %d", file.BytesWritten(), total)
	}
}

func TestReadAtAllCompletes(t *testing.T) {
	runFlat(t, 8, 2, func(c *mpi.Comm, sys storage.System) {
		fh := Open(c, sys, "r", storage.FileOptions{}, Hints{CBNodes: 2})
		off := int64(c.Rank()) * 4096
		fh.WriteAtAll([]storage.Seg{storage.Contig(off, 4096)})
		before := c.Now()
		fh.ReadAtAll([]storage.Seg{storage.Contig(off, 4096)})
		if c.Now() <= before {
			t.Error("read consumed no time")
		}
		if fh.Storage().BytesRead() == 0 && c.Rank() == 0 {
			t.Error("no bytes read from storage")
		}
		fh.Close()
	})
}

func TestIndependentWriteSieving(t *testing.T) {
	runFlat(t, 1, 1, func(c *mpi.Comm, sys storage.System) {
		fh := Open(c, sys, "s", storage.FileOptions{}, Hints{})
		fh.WriteAt([]storage.Seg{storage.Strided(0, 4, 38, 100)})
		// Sieving reads the span before writing.
		if fh.Storage().BytesRead() == 0 {
			t.Error("sieving did not read the span")
		}
		fh.WriteAt(nil) // no-op
		fh.Close()
	})
}

func TestIndependentWriteNoSieveWhenContig(t *testing.T) {
	runFlat(t, 1, 1, func(c *mpi.Comm, sys storage.System) {
		fh := Open(c, sys, "c", storage.FileOptions{}, Hints{})
		fh.WriteAt([]storage.Seg{storage.Contig(0, 4096)})
		if fh.Storage().BytesRead() != 0 {
			t.Error("contiguous write should not sieve")
		}
		fh.Close()
	})
}

func TestSparseCollectiveUsesSieving(t *testing.T) {
	// AoS-style sparse round with sieving: physical reads happen; with
	// sieving disabled they don't.
	for _, disable := range []bool{false, true} {
		var reads int64
		runFlat(t, 4, 1, func(c *mpi.Comm, sys storage.System) {
			fh := Open(c, sys, "x", storage.FileOptions{}, Hints{CBNodes: 2, DisableSieving: disable})
			// Only 4 of every 38 bytes written: sparse.
			fh.WriteAtAll([]storage.Seg{storage.Strided(int64(c.Rank())*4, 4, 38, 200)})
			if c.Rank() == 0 {
				reads = fh.Storage().BytesRead()
			}
			fh.Close()
		})
		if disable && reads != 0 {
			t.Errorf("sieving disabled but read %d bytes", reads)
		}
		if !disable && reads == 0 {
			t.Error("sieving enabled but no sieve reads")
		}
	}
}

func TestMultipleCollectiveCallsPartialBuffers(t *testing.T) {
	// The paper's Fig. 2: three separate collective calls (x, y, z) cannot
	// merge — write-op count must be ~3× that of a single merged call.
	const ranks = 4
	const n = 1 << 14
	countOps := func(calls int) int64 {
		var ops int64
		runFlat(t, ranks, 2, func(c *mpi.Comm, sys storage.System) {
			fh := Open(c, sys, "f", storage.FileOptions{}, Hints{CBNodes: 2, CBBufferSize: 1 << 20})
			stride := int64(ranks * n)
			for v := 0; v < calls; v++ {
				off := int64(v)*stride + int64(c.Rank())*n
				fh.WriteAtAll([]storage.Seg{storage.Contig(off, n)})
			}
			if c.Rank() == 0 {
				ops = fh.Storage().WriteOps()
			}
			fh.Close()
		})
		return ops
	}
	one := countOps(1)
	three := countOps(3)
	if three < 3*one {
		t.Fatalf("3 calls did %d ops, single call %d — calls merged?", three, one)
	}
}
