package mpiio

// Data-plane round trip through the two-phase baseline: collective writes
// carry payload slices that aggregators land in the backing store per
// (aggregator, round) window, and collective reads fill the callers'
// buffers back — verified byte-for-byte for strided multi-variable
// patterns, plus the closed-handle and payload-size guards.

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"tapioca/internal/mpi"
	"tapioca/internal/netsim"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/workload"
)

func TestCollectiveDataRoundTrip(t *testing.T) {
	const ranks = 8
	for _, cyclic := range []bool{false, true} {
		name := "contig-domains"
		if cyclic {
			name = "cyclic-domains"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			// Strided AoS-style pattern: 3 variables per rank, interleaved
			// records, so round windows clip runs mid-pattern.
			const n, rec = 64, 24
			decl := make([][][]storage.Seg, ranks)
			for r := 0; r < ranks; r++ {
				base := int64(r) * n * rec
				decl[r] = [][]storage.Seg{
					{storage.Strided(base+0, 8, rec, n)},
					{storage.Strided(base+8, 8, rec, n)},
					{storage.Strided(base+16, 8, rec, n)},
				}
			}
			seed := uint64(7 + rng.Int63n(1000))
			var mu sync.Mutex
			var failures []string
			runFlat(t, ranks, 2, func(c *mpi.Comm, sys storage.System) {
				var f *storage.File
				if c.Rank() == 0 {
					f = sys.Create("mpiio-rt", storage.FileOptions{StripeCount: 2, StripeSize: 4 << 10})
				}
				f = c.Bcast(0, 8, f).(*storage.File)
				fh := openOn(c, sys, f, Hints{CBNodes: 2, CBBufferSize: 2 << 10, AlignDomains: cyclic, CyclicDomains: cyclic})
				data := workload.FillData(decl[c.Rank()], seed)
				for op, segs := range decl[c.Rank()] {
					if err := fh.WriteAtAllData(segs, data[op]); err != nil {
						mu.Lock()
						failures = append(failures, err.Error())
						mu.Unlock()
					}
				}
				c.Barrier()
				got := make([][]byte, len(data))
				for op, segs := range decl[c.Rank()] {
					got[op] = make([]byte, storage.TotalBytes(segs))
					if err := fh.ReadAtAllData(segs, got[op]); err != nil {
						mu.Lock()
						failures = append(failures, err.Error())
						mu.Unlock()
					}
				}
				if err := workload.VerifyData(decl[c.Rank()], seed, got); err != nil {
					mu.Lock()
					failures = append(failures, err.Error())
					mu.Unlock()
				}
				c.Barrier()
			})
			for _, f := range failures {
				t.Error(f)
			}
		})
	}
}

// TestCollectiveStagingRoundTrip drives the exchange phase with
// Hints.IntraNodeStaging on: members' pieces for remote-node aggregators
// become intra-node staging deposits and the horizon combiner books one
// coalesced fabric message per (node, aggregator) group. The round trip must
// stay byte-identical to the flat hints, the staged run must book strictly
// fewer fabric messages, and (payload moving on the plane-sharing
// collective) the landed bytes must verify against the generator.
func TestCollectiveStagingRoundTrip(t *testing.T) {
	const ranks, rpn = 16, 4
	const n, rec = 64, 24
	decl := make([][][]storage.Seg, ranks)
	for r := 0; r < ranks; r++ {
		base := int64(r) * n * rec
		decl[r] = [][]storage.Seg{
			{storage.Strided(base+0, 8, rec, n)},
			{storage.Strided(base+8, 8, rec, n)},
			{storage.Strided(base+16, 8, rec, n)},
		}
	}
	const seed = uint64(131)
	run := func(staged bool) int64 {
		nodes := ranks / rpn
		topo := topology.NewFlat(nodes)
		fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
		sys := storage.NewNullFS()
		var mu sync.Mutex
		var failures []string
		_, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: rpn, Fabric: fab}, func(c *mpi.Comm) {
			var f *storage.File
			if c.Rank() == 0 {
				f = sys.Create("mpiio-staged", storage.FileOptions{StripeCount: 2, StripeSize: 4 << 10})
			}
			f = c.Bcast(0, 8, f).(*storage.File)
			fh := openOn(c, sys, f, Hints{CBNodes: 2, CBBufferSize: 2 << 10, IntraNodeStaging: staged})
			data := workload.FillData(decl[c.Rank()], seed)
			for op, segs := range decl[c.Rank()] {
				if err := fh.WriteAtAllData(segs, data[op]); err != nil {
					mu.Lock()
					failures = append(failures, err.Error())
					mu.Unlock()
				}
			}
			c.Barrier()
			got := make([][]byte, len(data))
			for op, segs := range decl[c.Rank()] {
				got[op] = make([]byte, storage.TotalBytes(segs))
				if err := fh.ReadAtAllData(segs, got[op]); err != nil {
					mu.Lock()
					failures = append(failures, err.Error())
					mu.Unlock()
				}
			}
			if err := workload.VerifyData(decl[c.Rank()], seed, got); err != nil {
				mu.Lock()
				failures = append(failures, err.Error())
				mu.Unlock()
			}
			c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range failures {
			t.Error(f)
		}
		if staged && fab.LocalTransfers() == 0 {
			t.Error("staged hints booked no intra-node deposits")
		}
		return fab.FabricMessages()
	}
	flatMsgs := run(false)
	stagedMsgs := run(true)
	if stagedMsgs >= flatMsgs {
		t.Fatalf("staged hints booked %d fabric messages, flat %d — coalescing saved nothing", stagedMsgs, flatMsgs)
	}
}

func TestIndependentDataRoundTrip(t *testing.T) {
	runFlat(t, 2, 1, func(c *mpi.Comm, sys storage.System) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("indep", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		fh := openOn(c, sys, f, Hints{})
		if c.Rank() == 0 {
			segs := []storage.Seg{storage.Strided(0, 4, 16, 8)}
			src := bytes.Repeat([]byte{0xC3}, 32)
			if err := fh.WriteAtData(segs, src); err != nil {
				panic(err)
			}
			dst := make([]byte, 32)
			if err := fh.ReadAtData(segs, dst); err != nil {
				panic(err)
			}
			if !bytes.Equal(dst, src) {
				panic("independent round trip diverged")
			}
			// Payload-size mismatches error descriptively.
			if err := fh.WriteAtData(segs, src[:31]); err == nil || !strings.Contains(err.Error(), "payload holds") {
				panic("short payload accepted")
			}
		}
		c.Barrier()
	})
}

func TestClosedFileErrors(t *testing.T) {
	runFlat(t, 2, 1, func(c *mpi.Comm, sys storage.System) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("closed", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		fh := openOn(c, sys, f, Hints{})
		fh.Close()
		if err := fh.WriteAtAll([]storage.Seg{storage.Contig(0, 8)}); err == nil || !strings.Contains(err.Error(), "closed file") {
			panic("WriteAtAll on closed file did not error")
		}
		if err := fh.ReadAtAll([]storage.Seg{storage.Contig(0, 8)}); err == nil || !strings.Contains(err.Error(), "closed file") {
			panic("ReadAtAll on closed file did not error")
		}
		if err := fh.WriteAt([]storage.Seg{storage.Contig(0, 8)}); err == nil || !strings.Contains(err.Error(), "closed file") {
			panic("WriteAt on closed file did not error")
		}
		if err := fh.ReadAt([]storage.Seg{storage.Contig(0, 8)}); err == nil || !strings.Contains(err.Error(), "closed file") {
			panic("ReadAt on closed file did not error")
		}
		c.Barrier()
	})
}

// openOn opens an MPI-IO handle on an already-shared storage file.
func openOn(c *mpi.Comm, sys storage.System, f *storage.File, hints Hints) *File {
	return Open(c, sys, f.Name, f.Opt, hints)
}

// TestCollectiveTreePlanRoundTrip drives the exchange with Hints.TreePlan:
// the coalesced node messages route through the shape's interior relays in
// the horizon combiner. The round trip must stay byte-correct, the tree must
// book exactly as many fabric messages as plain staging (every staged node
// still sends once per round — only the hops change), the degenerate
// "staged" plan must reproduce the plain staged schedule identically, and an
// unparsable plan must surface as an error from the first collective call.
func TestCollectiveTreePlanRoundTrip(t *testing.T) {
	const ranks, rpn = 16, 2
	const n, rec = 64, 24
	decl := make([][][]storage.Seg, ranks)
	for r := 0; r < ranks; r++ {
		base := int64(r) * n * rec
		decl[r] = [][]storage.Seg{
			{storage.Strided(base+0, 8, rec, n)},
			{storage.Strided(base+8, 8, rec, n)},
			{storage.Strided(base+16, 8, rec, n)},
		}
	}
	const seed = uint64(977)
	run := func(hints Hints) int64 {
		nodes := ranks / rpn
		topo := topology.NewFlat(nodes)
		fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
		sys := storage.NewNullFS()
		var mu sync.Mutex
		var failures []string
		_, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: rpn, Fabric: fab}, func(c *mpi.Comm) {
			var f *storage.File
			if c.Rank() == 0 {
				f = sys.Create("mpiio-tree", storage.FileOptions{StripeCount: 2, StripeSize: 4 << 10})
			}
			f = c.Bcast(0, 8, f).(*storage.File)
			fh := openOn(c, sys, f, hints)
			data := workload.FillData(decl[c.Rank()], seed)
			for op, segs := range decl[c.Rank()] {
				if err := fh.WriteAtAllData(segs, data[op]); err != nil {
					mu.Lock()
					failures = append(failures, err.Error())
					mu.Unlock()
				}
			}
			c.Barrier()
			got := make([][]byte, len(data))
			for op, segs := range decl[c.Rank()] {
				got[op] = make([]byte, storage.TotalBytes(segs))
				if err := fh.ReadAtAllData(segs, got[op]); err != nil {
					mu.Lock()
					failures = append(failures, err.Error())
					mu.Unlock()
				}
			}
			if err := workload.VerifyData(decl[c.Rank()], seed, got); err != nil {
				mu.Lock()
				failures = append(failures, err.Error())
				mu.Unlock()
			}
			c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range failures {
			t.Error(f)
		}
		return fab.FabricMessages()
	}

	base := Hints{CBNodes: 2, CBBufferSize: 2 << 10}
	staged := base
	staged.IntraNodeStaging = true
	treed := base
	treed.TreePlan = "fanin:2"
	degen := base
	degen.TreePlan = "staged"

	stagedMsgs := run(staged)
	treeMsgs := run(treed)
	degenMsgs := run(degen)
	if treeMsgs != stagedMsgs {
		t.Fatalf("tree plan booked %d fabric messages, staged %d — relays must not change the message count",
			treeMsgs, stagedMsgs)
	}
	if degenMsgs != stagedMsgs {
		t.Fatalf("degenerate staged plan booked %d fabric messages, plain staging %d — must be identical",
			degenMsgs, stagedMsgs)
	}

	// Unparsable plans error on the first collective, on every rank.
	bad := base
	bad.TreePlan = "ring"
	topo := topology.NewFlat(ranks / rpn)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
	sys := storage.NewNullFS()
	if _, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: rpn, Fabric: fab}, func(c *mpi.Comm) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("mpiio-bad", storage.FileOptions{})
		}
		f = c.Bcast(0, 8, f).(*storage.File)
		fh := openOn(c, sys, f, bad)
		if err := fh.WriteAtAll(decl[c.Rank()][0]); err == nil || !strings.Contains(err.Error(), "tree plan") {
			panic("unparsable tree plan accepted")
		}
		c.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
}
