package mpiio

import (
	"fmt"

	"tapioca/internal/dataplane"
	"tapioca/internal/sim"
	"tapioca/internal/storage"
)

// schedule is the per-collective-call two-phase plan, computed once (on the
// last rank to enter the collective) from every rank's access pattern.
type schedule struct {
	lo, hi  int64
	rounds  int
	domains [][2]int64 // per aggregator: file domain [lo, hi)

	// sendPieces[rank] lists what each rank contributes, per (agg, round),
	// sorted by round (stable, preserving build order within a round) so a
	// rank walks its pieces with a single forward cursor across rounds.
	sendPieces [][]sendPiece
	// aggRounds[agg][round] aggregates all contributions for one flush.
	aggRounds [][]roundData
}

// sortPieces orders every rank's pieces by round. The sort is stable: within
// a round, pieces keep the order the schedule builder emitted, so the
// per-round fabric bookings are issued in exactly the order the unsorted
// full-scan loop used to issue them. Insertion sort: per-rank lists are a
// handful of short ascending runs (one per declared segment), and the
// reflection-based library sorts allocate per rank.
func (s *schedule) sortPieces() {
	for r := range s.sendPieces {
		ps := s.sendPieces[r]
		for i := 1; i < len(ps); i++ {
			for j := i; j > 0 && ps[j].round < ps[j-1].round; j-- {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
	}
}

type sendPiece struct {
	agg, round int
	bytes      int64
}

type roundData struct {
	segs   []storage.Seg
	bytes  int64
	pieces int // incoming piece count (two-sided receive processing)
	// wlo/whi is the round's file window within the aggregator's domain —
	// the range the data plane scatters/gathers for this (agg, round).
	wlo, whi int64
}

// buildSchedule computes file domains, rounds and piece routing from the
// gathered per-rank segment lists.
func buildSchedule(allSegs [][]storage.Seg, nAggr int, bufSize int64, alignTo int64) *schedule {
	s := &schedule{}
	first := true
	for _, segs := range allSegs {
		for _, sg := range segs {
			if sg.Empty() {
				continue
			}
			lo, hi := sg.Span()
			if first || lo < s.lo {
				s.lo = lo
			}
			if first || hi > s.hi {
				s.hi = hi
			}
			first = false
		}
	}
	if first {
		return s // nothing to do
	}
	span := s.hi - s.lo
	domain := (span + int64(nAggr) - 1) / int64(nAggr)
	if alignTo > 1 {
		domain = (domain + alignTo - 1) / alignTo * alignTo
	}
	if domain < 1 {
		domain = 1
	}
	s.domains = make([][2]int64, nAggr)
	for a := 0; a < nAggr; a++ {
		dlo := s.lo + int64(a)*domain
		dhi := dlo + domain
		if dlo > s.hi {
			dlo, dhi = s.hi, s.hi
		}
		if dhi > s.hi {
			dhi = s.hi
		}
		s.domains[a] = [2]int64{dlo, dhi}
	}
	s.rounds = int((domain + bufSize - 1) / bufSize)
	if s.rounds < 1 {
		s.rounds = 1
	}
	s.sendPieces = make([][]sendPiece, len(allSegs))
	s.aggRounds = make([][]roundData, nAggr)
	for a := range s.aggRounds {
		s.aggRounds[a] = make([]roundData, s.rounds)
	}
	for r, segs := range allSegs {
		for _, sg := range segs {
			if sg.Empty() {
				continue
			}
			glo, ghi := sg.Span()
			aFirst := int((glo - s.lo) / domain)
			aLast := int((ghi - 1 - s.lo) / domain)
			for a := aFirst; a <= aLast && a < nAggr; a++ {
				dlo := s.domains[a][0]
				rFirst := 0
				if glo > dlo {
					rFirst = int((glo - dlo) / bufSize)
				}
				for round := rFirst; round < s.rounds; round++ {
					wlo := dlo + int64(round)*bufSize
					whi := minI64(wlo+bufSize, s.domains[a][1])
					if whi <= wlo || wlo >= ghi {
						break
					}
					pieces := sg.Intersect(wlo, whi)
					b := storage.TotalBytes(pieces)
					if b == 0 {
						continue
					}
					s.sendPieces[r] = append(s.sendPieces[r], sendPiece{agg: a, round: round, bytes: b})
					rd := &s.aggRounds[a][round]
					rd.segs = append(rd.segs, pieces...)
					rd.bytes += b
					rd.pieces++
					rd.wlo, rd.whi = wlo, whi
				}
			}
		}
	}
	s.sortPieces()
	return s
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// buildScheduleCyclic builds the stripe-cyclic plan: stripe s (unit-sized
// file window) belongs to aggregator (s - s0) mod nAggr, and each stripe is
// cut into ceil(unit/bufSize) buffer windows. The k-th stripe of an
// aggregator lands in rounds [k*sub, (k+1)*sub).
func buildScheduleCyclic(allSegs [][]storage.Seg, nAggr int, bufSize, unit int64) *schedule {
	s := &schedule{}
	first := true
	for _, segs := range allSegs {
		for _, sg := range segs {
			if sg.Empty() {
				continue
			}
			lo, hi := sg.Span()
			if first || lo < s.lo {
				s.lo = lo
			}
			if first || hi > s.hi {
				s.hi = hi
			}
			first = false
		}
	}
	if first {
		return s
	}
	s0 := s.lo / unit
	s1 := (s.hi - 1) / unit
	nStripes := s1 - s0 + 1
	sub := int((unit + bufSize - 1) / bufSize)
	perAgg := int((nStripes + int64(nAggr) - 1) / int64(nAggr))
	s.rounds = perAgg * sub
	s.sendPieces = make([][]sendPiece, len(allSegs))
	s.aggRounds = make([][]roundData, nAggr)
	for a := range s.aggRounds {
		s.aggRounds[a] = make([]roundData, s.rounds)
	}
	for r, segs := range allSegs {
		for _, sg := range segs {
			if sg.Empty() {
				continue
			}
			glo, ghi := sg.Span()
			for st := glo / unit; st <= (ghi-1)/unit; st++ {
				agg := int((st - s0) % int64(nAggr))
				k := int((st - s0) / int64(nAggr))
				stripeLo := st * unit
				for j := 0; j < sub; j++ {
					wlo := stripeLo + int64(j)*bufSize
					whi := minI64(wlo+bufSize, stripeLo+unit)
					if whi <= wlo || wlo >= ghi {
						break
					}
					pieces := sg.Intersect(wlo, whi)
					b := storage.TotalBytes(pieces)
					if b == 0 {
						continue
					}
					round := k*sub + j
					s.sendPieces[r] = append(s.sendPieces[r], sendPiece{agg: agg, round: round, bytes: b})
					rd := &s.aggRounds[agg][round]
					rd.segs = append(rd.segs, pieces...)
					rd.bytes += b
					rd.pieces++
					rd.wlo, rd.whi = wlo, whi
				}
			}
		}
	}
	s.sortPieces()
	return s
}

// WriteAtAll performs a collective two-phase write of this rank's segments.
// All ranks of the communicator must call it with their (possibly empty)
// patterns. Rounds are synchronous: aggregation exchange, then the
// aggregators' flush, then a barrier — the classic ROMIO structure with no
// overlap between phases.
func (fh *File) WriteAtAll(segs []storage.Seg) error {
	return fh.WriteAtAllData(segs, nil)
}

// WriteAtAllData is WriteAtAll with the data plane enabled: data holds the
// segments' payload bytes packed in enumeration order, and the aggregators
// land the actual bytes in the file's backing store. Data-plane mode is a
// collective property of the call — every rank passes payload bytes, or
// every rank nil.
func (fh *File) WriteAtAllData(segs []storage.Seg, data []byte) error {
	return fh.collectiveIO(segs, data, false)
}

// ReadAtAll performs a collective two-phase read: aggregators read their
// file-domain rounds and scatter the pieces back.
func (fh *File) ReadAtAll(segs []storage.Seg) error {
	return fh.ReadAtAllData(segs, nil)
}

// ReadAtAllData is ReadAtAll with the data plane enabled: dst (packed in
// segment enumeration order) is filled from the file's backing store as the
// aggregators scatter their round pieces back.
func (fh *File) ReadAtAllData(segs []storage.Seg, dst []byte) error {
	return fh.collectiveIO(segs, dst, true)
}

func (fh *File) collectiveIO(segs []storage.Seg, data []byte, read bool) error {
	if fh.closed {
		return fmt.Errorf("mpiio: collective I/O on closed file %q", fh.f.Name)
	}
	if fh.treeErr != nil {
		// Hints are a collective property: every rank opened with the same
		// unparsable plan, so every rank reports it.
		return fh.treeErr
	}
	var pl *dataplane.Plane
	if data != nil {
		var err error
		if pl, err = dataplane.New([][]storage.Seg{segs}, [][]byte{data}); err != nil {
			return err
		}
	}
	c := fh.c
	alignTo := int64(0)
	if fh.hints.AlignDomains || fh.hints.CyclicDomains {
		alignTo = fh.sys.OptimalUnit(fh.f)
	}
	cyclic := fh.hints.CyclicDomains && alignTo > 0
	// Gather every rank's pattern and build the plan exactly once.
	bytes := int64(32*len(segs) + 16)
	plan := c.Collective("mpiio-plan", segs, bytes, func(contribs []any) any {
		allSegs := make([][]storage.Seg, len(contribs))
		for i, x := range contribs {
			if x != nil {
				allSegs[i] = x.([]storage.Seg)
			}
		}
		if cyclic {
			return buildScheduleCyclic(allSegs, len(fh.aggrs), fh.hints.CBBufferSize, alignTo)
		}
		return buildSchedule(allSegs, len(fh.aggrs), fh.hints.CBBufferSize, alignTo)
	}).(*schedule)
	// Data plane: share every rank's payload plane — the simulated transport
	// of the two-phase sends' payload slices. The extra collective exists
	// only in data-plane calls, so a rank passing payload bytes while
	// another passes nil fails loudly as a mismatched collective.
	var planes []*dataplane.Plane
	if pl != nil {
		planes = c.Collective("mpiio-data", pl, 16, func(contribs []any) any {
			ps := make([]*dataplane.Plane, len(contribs))
			for i, x := range contribs {
				if x != nil {
					ps[i] = x.(*dataplane.Plane)
				}
			}
			return ps
		}).([]*dataplane.Plane)
	}
	if plan.rounds == 0 || plan.hi == plan.lo {
		c.Barrier()
		return nil
	}
	// This rank's pieces, round-sorted: each round consumes one contiguous
	// run, so the whole exchange is a single forward walk instead of a full
	// rescan per round.
	var my []sendPiece
	if c.Rank() < len(plan.sendPieces) {
		my = plan.sendPieces[c.Rank()]
	}
	cur := 0
	var dataErr error
	p := c.Proc()
	for round := 0; round < plan.rounds; round++ {
		end := cur
		for end < len(my) && my[end].round == round {
			end++
		}
		roundStart := p.Now()
		var err error
		if read {
			err = fh.readRound(plan, round, my[cur:end], pl)
		} else {
			err = fh.writeRound(plan, round, my[cur:end], planes)
		}
		if err != nil && dataErr == nil {
			dataErr = err
		}
		if p.Traced() {
			var bytes int64
			for _, piece := range my[cur:end] {
				bytes += piece.bytes
			}
			p.TraceSpan("mpiio", "round", roundStart, p.Now(), bytes)
		}
		cur = end
	}
	c.Barrier()
	return dataErr
}

// aggArrival is one rank's arrival horizon at one aggregator this round.
type aggArrival struct {
	agg int
	at  int64
}

// stageEntry is one staged piece: a deposit into this rank's node leader,
// waiting for the combiner to coalesce it with its node-mates into one fabric
// message per (node, aggregator).
type stageEntry struct {
	agg   int
	node  int
	at    int64 // deposit arrival in the leader's staging buffer
	bytes int64
}

// exchangeContrib is one rank's contribution to the round's horizon
// collective: flat arrival horizons plus staged deposits to coalesce.
type exchangeContrib struct {
	arr    []aggArrival
	staged []stageEntry
}

// writeRound: all ranks push their round pieces to the owning aggregators
// (the alltoallv), aggregators flush their buffers, then the round barrier.
// With the data plane on, the aggregator lands each contributing rank's
// payload bytes for its round window into the file's backing store.
func (fh *File) writeRound(plan *schedule, round int, pieces []sendPiece, planes []*dataplane.Plane) error {
	c := fh.c
	p := c.Proc()
	fab := c.World().Fabric()

	// Aggregation phase: book the incast transfers to each aggregator. The
	// per-aggregator arrival horizons accumulate in a reused sparse list —
	// its backing is safe to recycle next round because this rank only
	// resumes after the horizon collective has consumed every contribution.
	// With intra-node staging on, a piece bound for a remote-node aggregator
	// becomes a memory-bandwidth deposit into this node's leader instead; the
	// horizon combiner coalesces the node's deposits into one fabric message
	// per (node, aggregator). Nodes hosting a single rank have nothing to
	// coalesce and stay flat, as does traffic to an aggregator on this node.
	arrivals := fh.xc.arr[:0]
	staged := fh.xc.staged[:0]
	stage := fh.hints.IntraNodeStaging && fh.nodePeers > 1
	senderFree := p.Now()
	for _, piece := range pieces {
		if stage && c.NodeOfRank(fh.aggrs[piece.agg]) != c.Node() {
			sf, arr := fab.ReserveLocal(p.Now(), c.Node(), piece.bytes)
			if sf > senderFree {
				senderFree = sf
			}
			staged = append(staged, stageEntry{agg: piece.agg, node: c.Node(), at: arr, bytes: piece.bytes})
			continue
		}
		sf, arr := fab.Reserve(p.Now(), c.Node(), c.NodeOfRank(fh.aggrs[piece.agg]), piece.bytes)
		if sf > senderFree {
			senderFree = sf
		}
		known := false
		for i := range arrivals {
			if arrivals[i].agg == piece.agg {
				if arr > arrivals[i].at {
					arrivals[i].at = arr
				}
				known = true
				break
			}
		}
		if !known {
			arrivals = append(arrivals, aggArrival{agg: piece.agg, at: arr})
		}
	}
	fh.xc.arr, fh.xc.staged = arrivals, staged
	// The injection hold rides into the horizon collective's park (JumpTo
	// contract: the collective's entry bookkeeping is commutative and books
	// nothing), saving a context switch per rank per round.
	p.JumpTo(senderFree)

	// Exchange arrival horizons (the synchronization the alltoallv implies).
	// Both the combiner closure and the contribution's interface box are
	// built once per file handle, not per rank per round.
	horizon := c.Collective("mpiio-horizon", fh.xcBox, 16, fh.horizonFn).([]int64)

	// I/O phase: aggregators process the received pieces (two-sided
	// matching and staging-buffer assembly — CPU work TAPIOCA's one-sided
	// puts avoid), then flush.
	var dataErr error
	if fh.myAgg >= 0 {
		rd := plan.aggRounds[fh.myAgg][round]
		if rd.bytes > 0 {
			p.HoldUntil(horizon[fh.myAgg])
			p.Hold(int64(rd.pieces)*fh.hints.RecvOverhead + sim.TransferTime(rd.bytes, fh.hints.CopyRate))
			if planes != nil {
				// Land the received payload: every contributing rank's bytes
				// within this round's window, batched into one store call so
				// lock-and-chunk overhead is paid per round, not per run.
				exts := fh.extScratch[:0]
				for _, rp := range planes {
					if rp == nil {
						continue
					}
					rp.Each(rd.wlo, rd.whi, func(off int64, chunk []byte) {
						exts = append(exts, storage.Extent{Off: off, P: chunk})
					})
				}
				if err := fh.f.StoreWriteExtents(exts); err != nil && dataErr == nil {
					dataErr = err
				}
				fh.extScratch = exts
			}
			fh.flush(rd)
		}
	}
	c.Barrier()
	return dataErr
}

// flush writes one aggregation-buffer round. Dense rounds coalesce into a
// single contiguous write; sparse rounds either use write data sieving
// (read-modify-write of the touched span, ROMIO's default) or are written
// run by run.
func (fh *File) flush(rd roundData) {
	p := fh.c.Proc()
	node := fh.c.Node()
	lo, hi := storage.SpanAll(rd.segs)
	if rd.bytes >= hi-lo {
		// Fully dense: one contiguous write.
		fh.guarded(false, []storage.Seg{storage.Contig(lo, rd.bytes)})
		return
	}
	if !fh.hints.DisableSieving {
		fh.sys.WriteSieved(p, node, fh.f, rd.segs)
		return
	}
	fh.guarded(false, rd.segs)
}

// readRound: aggregators read their round span, then scatter pieces back to
// the requesting ranks. With the data plane on, each rank fills its payload
// buffers from the backing store as its pieces arrive.
func (fh *File) readRound(plan *schedule, round int, pieces []sendPiece, pl *dataplane.Plane) error {
	c := fh.c
	p := c.Proc()
	fab := c.World().Fabric()

	// Aggregators read their (span-sieved) round.
	if fh.myAgg >= 0 {
		rd := plan.aggRounds[fh.myAgg][round]
		if rd.bytes > 0 {
			lo, hi := storage.SpanAll(rd.segs)
			fh.guarded(true, []storage.Seg{storage.Contig(lo, hi-lo)})
		}
	}
	// Share each aggregator's data-ready time.
	nAggr := len(fh.aggrs)
	var myReady int64
	if fh.myAgg >= 0 {
		myReady = p.Now()
	}
	type aggReady struct {
		agg int
		at  int64
	}
	contrib := aggReady{agg: fh.myAgg, at: myReady}
	ready := c.Collective("mpiio-ready", contrib, 16, func(contribs []any) any {
		r := make([]int64, nAggr)
		for _, x := range contribs {
			ar := x.(aggReady)
			if ar.agg >= 0 {
				r[ar.agg] = ar.at
			}
		}
		return r
	}).([]int64)

	// Scatter phase: each rank receives its pieces from the aggregators;
	// transfers start when the owning aggregator's data is ready.
	latest := p.Now()
	var dataErr error
	for _, piece := range pieces {
		aggRank := fh.aggrs[piece.agg]
		t0 := ready[piece.agg]
		if t0 < p.Now() {
			t0 = p.Now()
		}
		_, arr := fab.Reserve(t0, c.NodeOfRank(aggRank), c.Node(), piece.bytes)
		if arr > latest {
			latest = arr
		}
		if pl != nil {
			rd := &plan.aggRounds[piece.agg][piece.round]
			exts := fh.extScratch[:0]
			pl.Each(rd.wlo, rd.whi, func(off int64, chunk []byte) {
				exts = append(exts, storage.Extent{Off: off, P: chunk})
			})
			if err := fh.f.StoreReadExtents(exts); err != nil && dataErr == nil {
				dataErr = err
			}
			fh.extScratch = exts
		}
	}
	p.JumpTo(latest) // the barrier's park supplies the ordered yield
	c.Barrier()
	return dataErr
}
