package par

import (
	"sync/atomic"
	"testing"
)

func TestMapCoversEveryIndexOnce(t *testing.T) {
	for _, lim := range []int{0, 1, 3, 64} {
		SetLimit(lim)
		const n = 257
		counts := make([]atomic.Int32, n)
		Map(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("limit %d: index %d ran %d times", lim, i, c)
			}
		}
	}
	SetLimit(0)
}

func TestMapEmpty(t *testing.T) {
	Map(0, func(int) { t.Fatal("called") })
	Map(-5, func(int) { t.Fatal("called") })
}

func TestMapPanicIsLowestIndex(t *testing.T) {
	for _, lim := range []int{1, 4} {
		SetLimit(lim)
		got := func() (r any) {
			defer func() { r = recover() }()
			Map(16, func(i int) {
				if i == 3 || i == 11 {
					panic(i)
				}
			})
			return nil
		}()
		if got != 3 {
			t.Fatalf("limit %d: recovered %v, want 3 (lowest panicking index)", lim, got)
		}
	}
	SetLimit(0)
}

func TestSetLimitClamps(t *testing.T) {
	SetLimit(-7)
	if Limit() <= 0 {
		t.Fatalf("Limit() = %d, want positive default", Limit())
	}
	SetLimit(2)
	if Limit() != 2 {
		t.Fatalf("Limit() = %d, want 2", Limit())
	}
	SetLimit(0)
}
