// Package par provides the bounded worker pool behind the experiment grid
// runner (internal/expt) and the autotuner's closed-loop probes
// (internal/tune).
//
// Every unit of work handed to Map is an independent simulation: a fresh
// engine, fabric and storage system with no shared mutable state. Executing
// them concurrently therefore cannot change any result — callers write each
// result into index-addressed storage, so assembled output is byte-identical
// to a serial loop no matter how the pool interleaves execution.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// limit holds the configured pool width; <=0 means "use GOMAXPROCS".
var limit atomic.Int32

// SetLimit bounds the worker pool for subsequent Map calls. n = 1 forces
// serial execution; n <= 0 restores the default (GOMAXPROCS).
func SetLimit(n int) {
	if n < 0 {
		n = 0
	}
	limit.Store(int32(n))
}

// Limit returns the effective worker-pool width.
func Limit() int {
	if n := limit.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0), fn(1), …, fn(n-1) on up to Limit() workers and returns
// once every call has finished. Work is handed out by an atomic cursor, so
// the pool never idles while cells remain.
//
// Panics are deterministic: every cell still runs, and the panic raised by
// the lowest index is re-thrown on the caller — the same cell a serial loop
// would have died on.
func Map(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Limit()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		cursor   atomic.Int64
		mu       sync.Mutex
		panicIdx = -1
		panicVal any
		wg       sync.WaitGroup
	)
	cursor.Store(-1)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if panicIdx < 0 || i < panicIdx {
					panicIdx, panicVal = i, r
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1))
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	if panicIdx >= 0 {
		panic(panicVal)
	}
}
