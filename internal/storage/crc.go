package storage

import "hash/crc64"

// CRC64 extends a running CRC-64/ECMA with p — the polynomial every end of
// the data plane agrees on (dataplane.Plane.Checksum, File.StoreChecksum).
func CRC64(crc uint64, p []byte) uint64 { return crc64.Update(crc, storeCRCTable, p) }

// crc64Poly is the reflected CRC-64/ECMA polynomial (the bit order
// hash/crc64 computes in), needed to build the combine operator matrices.
const crc64Poly = 0xC96C5795D7870F42

// CRC64Combine merges two independently computed CRC-64/ECMA checksums:
// given crc1 over a byte stream A and crc2 over a stream B (each computed
// from a zero initial value, as crc64.Update(0, …) does), it returns the
// checksum of the concatenation A‖B, where len2 is len(B). This is zlib's
// crc32_combine ported to 64 bits: appending len2 bytes to A multiplies
// A's CRC state by x^(8·len2) in GF(2)[x]/poly, and that linear operator is
// applied via O(log len2) squarings of a 64×64 GF(2) matrix. It lets
// checksum work shard across workers and merge in order afterwards.
func CRC64Combine(crc1, crc2 uint64, len2 int64) uint64 {
	if len2 <= 0 {
		return crc1 ^ crc2
	}
	var even, odd [64]uint64 // operator matrices: shift by 2^k zero bits

	// odd = the one-zero-bit shift operator for the reflected polynomial.
	odd[0] = crc64Poly
	row := uint64(1)
	for n := 1; n < 64; n++ {
		odd[n] = row
		row <<= 1
	}
	gf2MatrixSquare(&even, &odd) // even = shift by 2 bits
	gf2MatrixSquare(&odd, &even) // odd  = shift by 4 bits

	// Apply shift-by-len2-bytes: square up through len2's bits, multiplying
	// crc1 by the operator wherever a bit is set.
	for {
		gf2MatrixSquare(&even, &odd)
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&even, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		gf2MatrixSquare(&odd, &even)
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&odd, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
	}
	return crc1 ^ crc2
}

// gf2MatrixTimes multiplies the GF(2) matrix by the bit-vector vec.
func gf2MatrixTimes(mat *[64]uint64, vec uint64) uint64 {
	var sum uint64
	for i := 0; vec != 0; i++ {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		vec >>= 1
	}
	return sum
}

// gf2MatrixSquare sets dst to src·src (composing the shift operator with
// itself, doubling the shift distance).
func gf2MatrixSquare(dst, src *[64]uint64) {
	for i := range dst {
		dst[i] = gf2MatrixTimes(src, src[i])
	}
}
