package storage

import (
	"fmt"
	"sync/atomic"
)

// Seg describes a (possibly strided) file access pattern compactly: Count
// runs of Len bytes, the i-th starting at Off + i*Stride. A contiguous
// extent is Count == 1. Runs never overlap (Stride >= Len when Count > 1).
//
// Segments are the currency of the whole I/O stack: HACC-IO's array-of-
// structures layout produces millions of 4-byte runs per collective write,
// which must be reasoned about in O(1) — never enumerated.
type Seg struct {
	Off    int64
	Len    int64
	Stride int64
	Count  int64
}

// Contig returns a contiguous segment [off, off+length).
func Contig(off, length int64) Seg {
	return Seg{Off: off, Len: length, Stride: length, Count: 1}
}

// Strided returns a strided segment: count runs of length bytes every
// stride bytes starting at off.
func Strided(off, length, stride, count int64) Seg {
	if count > 1 && stride < length {
		panic(fmt.Sprintf("storage: overlapping strided segment (stride %d < len %d)", stride, length))
	}
	return Seg{Off: off, Len: length, Stride: stride, Count: count}
}

// Bytes returns the total data bytes in the segment.
func (s Seg) Bytes() int64 { return s.Len * s.Count }

// Runs returns the number of contiguous runs.
func (s Seg) Runs() int64 { return s.Count }

// End returns the exclusive upper bound of the segment's span.
func (s Seg) End() int64 {
	if s.Count == 0 {
		return s.Off
	}
	return s.Off + s.Stride*(s.Count-1) + s.Len
}

// Span returns the [lo, hi) file range the segment touches.
func (s Seg) Span() (lo, hi int64) { return s.Off, s.End() }

// Empty reports whether the segment contains no bytes.
func (s Seg) Empty() bool { return s.Count <= 0 || s.Len <= 0 }

// Intersect clips the segment to the window [lo, hi), returning at most
// three segments (clipped head run, strided middle, clipped tail run).
func (s Seg) Intersect(lo, hi int64) []Seg {
	if s.Empty() || hi <= lo || s.End() <= lo || s.Off >= hi {
		return nil
	}
	if s.Count == 1 {
		o := maxI64(s.Off, lo)
		e := minI64(s.Off+s.Len, hi)
		if e <= o {
			return nil
		}
		return []Seg{Contig(o, e-o)}
	}
	// First run index whose end is after lo: run i spans
	// [Off+i*Stride, Off+i*Stride+Len).
	i0 := int64(0)
	if lo > s.Off+s.Len-1 {
		i0 = (lo - s.Off - s.Len + s.Stride) / s.Stride // ceil((lo-Off-Len+1)/Stride) for ints
		if s.Off+i0*s.Stride+s.Len <= lo {
			i0++
		}
	}
	// Last run index that starts before hi.
	i1 := (hi - 1 - s.Off) / s.Stride
	if i1 >= s.Count {
		i1 = s.Count - 1
	}
	if i0 > i1 {
		return nil
	}
	var out []Seg
	// Head run, possibly clipped at lo.
	headOff := s.Off + i0*s.Stride
	headEnd := minI64(headOff+s.Len, hi)
	headOffClip := maxI64(headOff, lo)
	headClipped := headOffClip != headOff || headEnd != headOff+s.Len
	// Tail run, possibly clipped at hi.
	tailOff := s.Off + i1*s.Stride
	tailEnd := minI64(tailOff+s.Len, hi)
	tailOffClip := maxI64(tailOff, lo)
	tailClipped := tailOffClip != tailOff || tailEnd != tailOff+s.Len

	if i0 == i1 {
		if headEnd <= headOffClip {
			return nil
		}
		return []Seg{Contig(headOffClip, headEnd-headOffClip)}
	}
	midFirst, midLast := i0, i1
	if headClipped {
		if headEnd > headOffClip {
			out = append(out, Contig(headOffClip, headEnd-headOffClip))
		}
		midFirst = i0 + 1
	}
	if tailClipped {
		midLast = i1 - 1
	}
	if midFirst <= midLast {
		out = append(out, Seg{
			Off:    s.Off + midFirst*s.Stride,
			Len:    s.Len,
			Stride: s.Stride,
			Count:  midLast - midFirst + 1,
		})
	}
	if tailClipped && tailEnd > tailOffClip {
		out = append(out, Contig(tailOffClip, tailEnd-tailOffClip))
	}
	return out
}

// BytesIn returns the data bytes of the segment inside the window [lo, hi) —
// TotalBytes(s.Intersect(lo, hi)) computed analytically, with no allocation.
func (s Seg) BytesIn(lo, hi int64) int64 {
	if s.Empty() || hi <= lo {
		return 0
	}
	return s.bytesBefore(hi) - s.bytesBefore(lo)
}

// bytesBefore returns the segment's data bytes at file offsets below x.
func (s Seg) bytesBefore(x int64) int64 {
	if x <= s.Off {
		return 0
	}
	if x >= s.End() {
		return s.Bytes()
	}
	if s.Count == 1 {
		return minI64(x-s.Off, s.Len)
	}
	// Runs fully below x, plus the clipped portion of the run containing x.
	i := (x - s.Off) / s.Stride
	if i >= s.Count {
		i = s.Count - 1
	}
	n := i * s.Len
	if part := x - (s.Off + i*s.Stride); part > 0 {
		n += minI64(part, s.Len)
	}
	return n
}

// IntersectAll clips every segment in segs to [lo, hi).
func IntersectAll(segs []Seg, lo, hi int64) []Seg {
	var out []Seg
	for _, s := range segs {
		out = append(out, s.Intersect(lo, hi)...)
	}
	return out
}

// segCompaction gates Compact/CompactInto. It exists so equivalence tests
// can run the uncompacted reference path; compaction never changes priced
// results (the run set is identical), only the fragment count carrying them.
var segCompaction atomic.Bool

func init() { segCompaction.Store(true) }

// SetSegCompaction enables or disables segment-list compaction and returns
// the previous setting (test hook; results are identical either way).
func SetSegCompaction(on bool) (prev bool) { return segCompaction.Swap(on) }

// Compact merges consecutive segments whose runs continue a single arithmetic
// pattern, in place. It is purely representational: the merged list describes
// exactly the same set of contiguous runs, so TotalBytes, TotalRuns, SpanAll,
// BytesIn and Intersect are all preserved — only the element count shrinks.
// Adjacent fragments produced by window clipping (e.g. a strided pattern cut
// at stripe boundaries and reassembled) collapse back into single segments,
// which keeps downstream stripe math linear in runs rather than fragments.
func Compact(segs []Seg) []Seg {
	if len(segs) < 2 || !segCompaction.Load() {
		return segs
	}
	out := segs[:1]
	for _, s := range segs[1:] {
		if s.Empty() {
			continue
		}
		a := &out[len(out)-1]
		if s.Len == a.Len && s.Off == a.Off+a.Count*a.Stride &&
			(s.Count == 1 || s.Stride == a.Stride) {
			// s continues a's run pattern at a's own stride.
			a.Count += s.Count
			continue
		}
		if a.Count == 1 && s.Count == 1 && s.Len == a.Len && s.Off-a.Off >= a.Len {
			// Two equal-length runs define a stride of their own.
			a.Stride = s.Off - a.Off
			a.Count = 2
			continue
		}
		out = append(out, s)
	}
	return out
}

// CompactInto compacts segs into dst (reused backing, input untouched) — the
// aliasing-safe variant for pricing paths whose inputs are caller-owned.
func CompactInto(dst, segs []Seg) []Seg {
	dst = append(dst[:0], segs...)
	return Compact(dst)
}

// TotalBytes sums the data bytes over segments.
func TotalBytes(segs []Seg) int64 {
	var n int64
	for _, s := range segs {
		n += s.Bytes()
	}
	return n
}

// TotalRuns sums the contiguous-run counts over segments.
func TotalRuns(segs []Seg) int64 {
	var n int64
	for _, s := range segs {
		n += s.Runs()
	}
	return n
}

// SpanAll returns the overall [lo, hi) range of a non-empty segment list.
func SpanAll(segs []Seg) (lo, hi int64) {
	first := true
	for _, s := range segs {
		if s.Empty() {
			continue
		}
		slo, shi := s.Span()
		if first || slo < lo {
			lo = slo
		}
		if first || shi > hi {
			hi = shi
		}
		first = false
	}
	return lo, hi
}

// Enumerate expands segments into (offset, length) runs, calling fn for
// each. It is for tests and verification at small scale only; it panics if
// the expansion exceeds limit runs (guard against accidental blowups).
func Enumerate(segs []Seg, limit int64, fn func(off, length int64)) {
	var n int64
	for _, s := range segs {
		for i := int64(0); i < s.Count; i++ {
			n++
			if n > limit {
				panic(fmt.Sprintf("storage: Enumerate exceeded limit %d", limit))
			}
			fn(s.Off+i*s.Stride, s.Len)
		}
	}
}

// PageFootprint returns the bytes a sparse access dirties at page
// granularity: runs further apart than a page each dirty their own page(s),
// clamped to [TotalBytes, span]. Parallel file-system clients write back
// whole pages, which is what makes unsieved strided writes expensive.
func PageFootprint(segs []Seg, page int64) int64 {
	if len(segs) == 0 {
		return 0
	}
	lo, hi := SpanAll(segs)
	var pages int64
	for _, s := range segs {
		if s.Count > 1 && s.Stride >= page {
			pages += s.Count * ((s.Len + page - 1) / page)
		}
	}
	footprint := pages * page
	span := hi - lo
	if footprint == 0 || footprint > span {
		footprint = span
	}
	if b := TotalBytes(segs); footprint < b {
		footprint = b
	}
	return footprint
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
