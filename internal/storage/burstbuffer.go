package storage

import (
	"fmt"

	"tapioca/internal/sim"
)

// BurstBufferConfig calibrates the burst-buffer tier (the paper's
// future-work extension: aggregate into a fast intermediate tier, drain to
// the parallel file system asynchronously).
type BurstBufferConfig struct {
	// Servers is the number of burst-buffer nodes. Default 8.
	Servers int
	// ServerBW is the per-server ingest bandwidth. Default 5 GB/s
	// (NVMe-class).
	ServerBW float64
	// PerOp is the per-request overhead. Default 50 µs.
	PerOp int64
}

func (c *BurstBufferConfig) setDefaults() {
	if c.Servers <= 0 {
		c.Servers = 8
	}
	if c.ServerBW <= 0 {
		c.ServerBW = 5e9
	}
	if c.PerOp <= 0 {
		c.PerOp = 50 * sim.Microsecond
	}
}

// BurstBuffer is a write-behind staging tier in front of another storage
// system: writes complete when they land on a burst-buffer server, and the
// data drains to the backing system asynchronously. Reads are served from
// the buffer when the data is still staged (always, in this model).
//
// This implements the paper's §VI future-work direction — "efficiently
// aggregate data from the DRAM on the MCDRAM in order to move it to burst
// buffers in an optimized manner" — as a composable System.
type BurstBuffer struct {
	cfg     BurstBufferConfig
	backing System
	servers []*sim.GapResource

	pending []*sim.Event // outstanding drains
	staged  int64
}

// NewBurstBuffer stacks a burst-buffer tier on a backing system.
func NewBurstBuffer(backing System, cfg BurstBufferConfig) *BurstBuffer {
	cfg.setDefaults()
	bb := &BurstBuffer{cfg: cfg, backing: backing}
	for i := 0; i < cfg.Servers; i++ {
		bb.servers = append(bb.servers, sim.NewGapResource(fmt.Sprintf("bb-%d", i), cfg.ServerBW))
	}
	return bb
}

func (bb *BurstBuffer) Name() string { return "burstbuffer+" + bb.backing.Name() }

func (bb *BurstBuffer) Create(name string, opt FileOptions) *File {
	return bb.backing.Create(name, opt)
}

func (bb *BurstBuffer) Lookup(name string) *File { return bb.backing.Lookup(name) }

func (bb *BurstBuffer) OptimalUnit(f *File) int64 { return bb.backing.OptimalUnit(f) }

// server picks the burst-buffer server for an access (spread by offset).
func (bb *BurstBuffer) server(f *File, segs []Seg) *sim.GapResource {
	lo, _ := SpanAll(segs)
	h := uint64(lo/(8<<20)) * 0x9E3779B97F4A7C15
	h ^= h >> 33
	return bb.servers[h%uint64(len(bb.servers))]
}

// stage books the burst-buffer ingest and the asynchronous drain; it
// returns the ingest completion (what the writer waits for). The drain to
// the backing system is booked concurrently and tracked in pending.
func (bb *BurstBuffer) stage(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	bytes := TotalBytes(segs)
	_, end := bb.server(f, segs).ReserveDur(p.Now()+bb.cfg.PerOp, sim.TransferTime(bytes, bb.cfg.ServerBW), bytes)
	bb.staged += bytes
	bb.pending = append(bb.pending, bb.backing.WriteAsync(p, node, f, segs))
	return end
}

// Flush blocks until every background drain has reached the backing system
// and returns the time of the last one.
func (bb *BurstBuffer) Flush(p *sim.Proc) int64 {
	var last int64
	for _, ev := range bb.pending {
		if at := ev.Wait(p); at > last {
			last = at
		}
	}
	bb.pending = nil
	return last
}

// Backing returns the file system behind the buffer tier — the degraded-
// mode target when the buffer tier is down.
func (bb *BurstBuffer) Backing() System { return bb.backing }

// StagedBytes returns the bytes ingested by the buffer tier.
func (bb *BurstBuffer) StagedBytes() int64 { return bb.staged }

// TierIOCost prices the I/O phase for the placement cost model (the
// cost.TierCost hook, satisfied structurally): a write completes when it
// lands on a burst-buffer server, so the C2 a candidate aggregator pays is
// the per-request overhead plus ingest time — independent of the backing
// file system's uplink geometry.
func (bb *BurstBuffer) TierIOCost(node int, bytes int64) (float64, bool) {
	return sim.ToSeconds(bb.cfg.PerOp) + float64(bytes)/bb.cfg.ServerBW, true
}

// EstimateFlush prices the ingest a writer actually waits for: the
// per-request overhead plus server bandwidth. Reads are served from the
// buffer at the same rate. (The storage.FlushModel hook.)
func (bb *BurstBuffer) EstimateFlush(opt FileOptions, bytes, runs int64, read bool) float64 {
	return sim.ToSeconds(bb.cfg.PerOp) + float64(bytes)/bb.cfg.ServerBW
}

// AggregateBandwidth is the combined server ingest rate. Background drains
// to the backing system are asynchronous and do not bound the foreground.
// (The storage.FlushModel hook.)
func (bb *BurstBuffer) AggregateBandwidth(opt FileOptions, read bool) float64 {
	return float64(bb.cfg.Servers) * bb.cfg.ServerBW
}

// AlignUnit delegates to the backing system, whose layout the drained file
// ultimately lands in. (The storage.FlushModel hook.)
func (bb *BurstBuffer) AlignUnit(opt FileOptions) int64 {
	if m := FlushModelOf(bb.backing); m != nil {
		return m.AlignUnit(opt)
	}
	return 1 << 20
}

// RecommendStripe delegates to the backing system's advisor when it has one
// (the drained file still wants backing-friendly striping).
func (bb *BurstBuffer) RecommendStripe(totalBytes, bufSize int64, aggregators int) FileOptions {
	if a := StripeAdvisorOf(bb.backing); a != nil {
		return a.RecommendStripe(totalBytes, bufSize, aggregators)
	}
	return FileOptions{}
}

func (bb *BurstBuffer) Write(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	// recordWrite happens in the backing WriteAsync inside stage.
	return blockingWrite(p, node, "bb-write", false, segs, bb.stage(p, node, f, segs))
}

func (bb *BurstBuffer) WriteAsync(p *sim.Proc, node int, f *File, segs []Seg) *sim.Event {
	return asyncEvent(p, node, "bb-write", false, segs, bb.stage(p, node, f, segs))
}

func (bb *BurstBuffer) WriteSieved(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	lo, _ := SpanAll(segs)
	footprint := PageFootprint(segs, 4096)
	return bb.Write(p, node, f, []Seg{Contig(lo, footprint)})
}

func (bb *BurstBuffer) Read(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	f.recordRead(segs)
	bytes := TotalBytes(segs)
	_, end := bb.server(f, segs).ReserveDur(p.Now()+bb.cfg.PerOp, sim.TransferTime(bytes, bb.cfg.ServerBW), bytes)
	return blockingWrite(p, node, "bb-read", true, segs, end)
}

func (bb *BurstBuffer) ReadAsync(p *sim.Proc, node int, f *File, segs []Seg) *sim.Event {
	f.recordRead(segs)
	bytes := TotalBytes(segs)
	_, end := bb.server(f, segs).ReserveDur(p.Now()+bb.cfg.PerOp, sim.TransferTime(bytes, bb.cfg.ServerBW), bytes)
	return asyncEvent(p, node, "bb-read", true, segs, end)
}
