package storage

import (
	"tapioca/internal/fault"
	"tapioca/internal/sim"
)

// Fallible is the error-surfacing face of a fault-injected storage system.
// The base System interface has no error returns — the happy-path layers
// stay oblivious — so recovery-aware callers (core, mpiio) probe for this
// interface with FallibleOf and drive their retry/degrade loops through the
// Try variants. Each Try op either books the I/O and returns its completion
// (nil error), or charges the failure-detection latency and returns
// fault.ErrTransient (retryable) or fault.ErrTierDown (degrade or lose).
type Fallible interface {
	System
	WriteAsyncTry(p *sim.Proc, node int, f *File, segs []Seg) (*sim.Event, error)
	ReadAsyncTry(p *sim.Proc, node int, f *File, segs []Seg) (*sim.Event, error)
	WriteTry(p *sim.Proc, node int, f *File, segs []Seg) (int64, error)
	ReadTry(p *sim.Proc, node int, f *File, segs []Seg) (int64, error)
}

// FallibleOf extracts the Fallible face of a system, or nil.
func FallibleOf(sys System) Fallible {
	if fb, ok := sys.(Fallible); ok {
		return fb
	}
	return nil
}

// transientLatency is the virtual cost of one failed store op: the timeout
// plus error-path software cost the client pays before seeing the failure.
const transientLatency = 500_000 // 500µs

// Faulty injects a deterministic fault plan beneath any storage system:
// transient op failures, latency spikes, and a scheduled permanent tier
// outage. Through the plain System interface the wrapper is self-healing
// (transients cost latency but the op proceeds, so fault-oblivious callers
// stay correct); through the Fallible interface the errors surface and the
// caller owns retry, backoff and degraded-mode policy.
//
// All decisions are consumed in proc context — the engine's serialization
// makes the op counter deterministic, serial or parallel grid runs alike.
type Faulty struct {
	backing System
	plan    *fault.Plan
	tierID  uint64
	ops     int64
	down    bool // latched tier outage (metric emitted once)
}

// NewFaulty wraps backing under the plan. A nil plan injects nothing.
func NewFaulty(backing System, plan *fault.Plan) *Faulty {
	return &Faulty{backing: backing, plan: plan, tierID: fault.TierID(backing.Name())}
}

// Unwrap returns the wrapped system (consumed by the tuning-hook
// extractors, which see through fault wrappers).
func (fy *Faulty) Unwrap() System { return fy.backing }

// DegradedSystemOf returns the tier a writer should fall back to when sys
// reports ErrTierDown: the backing store beneath a burst-buffer tier,
// seen through any fault wrapper. nil when there is no fallback tier.
func DegradedSystemOf(sys System) System {
	switch s := sys.(type) {
	case *Faulty:
		return DegradedSystemOf(s.backing)
	case *BurstBuffer:
		return s.Backing()
	}
	return nil
}

func (fy *Faulty) Name() string                              { return fy.backing.Name() }
func (fy *Faulty) Create(name string, opt FileOptions) *File { return fy.backing.Create(name, opt) }
func (fy *Faulty) Lookup(name string) *File                  { return fy.backing.Lookup(name) }
func (fy *Faulty) OptimalUnit(f *File) int64                 { return fy.backing.OptimalUnit(f) }

// TierIOCost forwards the cost-model tier hook; without one beneath, the
// generic topology formula applies (ok=false).
func (fy *Faulty) TierIOCost(node int, bytes int64) (float64, bool) {
	if t, ok := fy.backing.(interface {
		TierIOCost(node int, bytes int64) (float64, bool)
	}); ok {
		return t.TierIOCost(node, bytes)
	}
	return 0, false
}

// decide consumes one op decision: nil (after any latency spike),
// ErrTransient, or ErrTierDown.
func (fy *Faulty) decide(p *sim.Proc) error {
	if fy.plan.TierDown(p.Now()) {
		if !fy.down {
			fy.down = true
			p.Recorder().Registry().Add(fault.MetricTierDown, 1)
		}
		return fault.ErrTierDown
	}
	op := fy.ops
	fy.ops++
	switch fy.plan.Store(fy.tierID, op) {
	case fault.StoreTransient:
		p.Hold(transientLatency)
		p.Recorder().Registry().Add(fault.MetricStoreTransients, 1)
		return fault.ErrTransient
	case fault.StoreSlow:
		p.Hold(fy.plan.SlowPenalty(fy.tierID, op))
		p.Recorder().Registry().Add(fault.MetricSlowSpikes, 1)
	}
	return nil
}

// absorb runs the decision loop for the plain (no-error) interface: the
// modeled client library retries transients internally until one sticks, so
// fault-oblivious callers see latency, never failure. A tier outage cannot
// be absorbed; the op falls through to the backing tier's fallback if one
// exists, else proceeds against the (nominally down) tier so the oblivious
// caller still completes — recovery-aware callers use the Try variants.
func (fy *Faulty) absorb(p *sim.Proc) System {
	for tries := 0; tries < 64; tries++ {
		switch err := fy.decide(p); err {
		case nil:
			return fy.backing
		case fault.ErrTierDown:
			if d := DegradedSystemOf(fy.backing); d != nil {
				return d
			}
			return fy.backing
		}
	}
	// Pathological schedule (rate ~1): give up absorbing, let the op land.
	return fy.backing
}

func (fy *Faulty) Write(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	return fy.absorb(p).Write(p, node, f, segs)
}

func (fy *Faulty) WriteAsync(p *sim.Proc, node int, f *File, segs []Seg) *sim.Event {
	return fy.absorb(p).WriteAsync(p, node, f, segs)
}

func (fy *Faulty) WriteSieved(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	return fy.absorb(p).WriteSieved(p, node, f, segs)
}

func (fy *Faulty) Read(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	return fy.absorb(p).Read(p, node, f, segs)
}

func (fy *Faulty) ReadAsync(p *sim.Proc, node int, f *File, segs []Seg) *sim.Event {
	return fy.absorb(p).ReadAsync(p, node, f, segs)
}

func (fy *Faulty) WriteAsyncTry(p *sim.Proc, node int, f *File, segs []Seg) (*sim.Event, error) {
	if err := fy.decide(p); err != nil {
		return nil, err
	}
	return fy.backing.WriteAsync(p, node, f, segs), nil
}

func (fy *Faulty) ReadAsyncTry(p *sim.Proc, node int, f *File, segs []Seg) (*sim.Event, error) {
	if err := fy.decide(p); err != nil {
		return nil, err
	}
	return fy.backing.ReadAsync(p, node, f, segs), nil
}

func (fy *Faulty) WriteTry(p *sim.Proc, node int, f *File, segs []Seg) (int64, error) {
	if err := fy.decide(p); err != nil {
		return 0, err
	}
	return fy.backing.Write(p, node, f, segs), nil
}

func (fy *Faulty) ReadTry(p *sim.Proc, node int, f *File, segs []Seg) (int64, error) {
	if err := fy.decide(p); err != nil {
		return 0, err
	}
	return fy.backing.Read(p, node, f, segs), nil
}
