package storage

import (
	"hash/crc64"
	"math/rand"
	"testing"
)

func TestCRC64CombineMatchesConcatenation(t *testing.T) {
	table := crc64.MakeTable(crc64.ECMA)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		la, lb := rng.Intn(5000), rng.Intn(5000)
		a, b := make([]byte, la), make([]byte, lb)
		rng.Read(a)
		rng.Read(b)
		ca := crc64.Update(0, table, a)
		cb := crc64.Update(0, table, b)
		whole := crc64.Update(ca, table, b)
		if got := CRC64Combine(ca, cb, int64(lb)); got != whole {
			t.Fatalf("trial %d (|A|=%d |B|=%d): combine %#x, concatenated %#x", trial, la, lb, got, whole)
		}
	}
}

func TestCRC64CombineEdgeCases(t *testing.T) {
	table := crc64.MakeTable(crc64.ECMA)
	a := []byte("tapioca")
	ca := crc64.Update(0, table, a)
	if got := CRC64Combine(ca, 0, 0); got != ca {
		t.Fatalf("combining with the empty stream changed the checksum: %#x != %#x", got, ca)
	}
	if got := CRC64Combine(0, ca, int64(len(a))); got != ca {
		t.Fatalf("combining the empty prefix changed the checksum: %#x != %#x", got, ca)
	}
}

func TestCRC64CombineManyShards(t *testing.T) {
	table := crc64.MakeTable(crc64.ECMA)
	rng := rand.New(rand.NewSource(7))
	whole := make([]byte, 1<<16)
	rng.Read(whole)
	want := crc64.Update(0, table, whole)
	for _, shards := range []int{2, 3, 7, 64} {
		var crc uint64
		per := len(whole) / shards
		for i := 0; i < shards; i++ {
			lo, hi := i*per, (i+1)*per
			if i == shards-1 {
				hi = len(whole)
			}
			part := crc64.Update(0, table, whole[lo:hi])
			crc = CRC64Combine(crc, part, int64(hi-lo))
		}
		if crc != want {
			t.Fatalf("%d shards: merged %#x, direct %#x", shards, crc, want)
		}
	}
}
