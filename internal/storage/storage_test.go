package storage

import (
	"strings"
	"testing"

	"tapioca/internal/netsim"
	"tapioca/internal/sim"
	"tapioca/internal/topology"
)

func miraRig(nodes int) (*topology.Torus5D, *netsim.Fabric) {
	topo := topology.MiraTorus(nodes)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionEndpoint})
	return topo, fab
}

func thetaRig(nodes int) (*topology.Dragonfly, *netsim.Fabric) {
	topo := topology.ThetaDragonfly(nodes, topology.RouteMinimal)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionEndpoint})
	return topo, fab
}

func TestNullFS(t *testing.T) {
	fs := NewNullFS()
	f := fs.Create("x", FileOptions{})
	e := sim.NewEngine()
	e.Spawn("w", func(p *sim.Proc) {
		fs.Write(p, 0, f, []Seg{Contig(0, 1000)})
		ev := fs.WriteAsync(p, 0, f, []Seg{Contig(1000, 1000)})
		ev.Wait(p)
		fs.Read(p, 0, f, []Seg{Contig(0, 500)})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if f.BytesWritten() != 2000 || f.BytesRead() != 500 {
		t.Fatalf("accounting: %d written, %d read", f.BytesWritten(), f.BytesRead())
	}
	if f.WriteOps() != 2 || f.ReadOps() != 1 {
		t.Fatalf("ops: %d/%d", f.WriteOps(), f.ReadOps())
	}
	if fs.Lookup("x") != f || fs.Lookup("y") != nil {
		t.Fatal("lookup broken")
	}
}

func TestFileCoverageVerification(t *testing.T) {
	fs := NewNullFS()
	f := fs.Create("cov", FileOptions{})
	f.SetCapture(true)
	e := sim.NewEngine()
	e.Spawn("w", func(p *sim.Proc) {
		fs.Write(p, 0, f, []Seg{Contig(0, 100)})
		fs.Write(p, 1, f, []Seg{Contig(100, 100)})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyCoverage(0, 200); err != nil {
		t.Fatalf("coverage: %v", err)
	}
	if err := f.VerifyCoverage(0, 300); err == nil {
		t.Fatal("expected coverage error for short file")
	}
}

func TestFileCoverageDetectsOverlap(t *testing.T) {
	fs := NewNullFS()
	f := fs.Create("ov", FileOptions{})
	f.SetCapture(true)
	e := sim.NewEngine()
	e.Spawn("w", func(p *sim.Proc) {
		fs.Write(p, 0, f, []Seg{Contig(0, 150)})
		fs.Write(p, 1, f, []Seg{Contig(100, 100)})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	err := f.VerifyCoverage(0, 200)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("err = %v, want overlap", err)
	}
}

func TestGPFSWriteCompletes(t *testing.T) {
	topo, fab := miraRig(128)
	g := NewGPFS(topo, fab, GPFSConfig{})
	f := g.Create("f", FileOptions{})
	e := sim.NewEngine()
	var done int64
	e.Spawn("w", func(p *sim.Proc) {
		done = g.Write(p, 5, f, []Seg{Contig(0, 16<<20)})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 16 MB at the 2.8 GB/s ION limit is at least ~5.7 ms.
	if done < 5*sim.Millisecond {
		t.Fatalf("16MB write completed unrealistically fast: %d", done)
	}
	if f.BytesWritten() != 16<<20 {
		t.Fatalf("bytes = %d", f.BytesWritten())
	}
}

func TestGPFSBandwidthCeilingPerPset(t *testing.T) {
	// Saturating one Pset from many writers must not exceed the ION
	// bandwidth materially.
	topo, fab := miraRig(128)
	g := NewGPFS(topo, fab, GPFSConfig{LockMode: LockShared})
	f := g.Create("f", FileOptions{})
	e := sim.NewEngine()
	const writers = 8
	const chunk = 64 << 20
	for i := 0; i < writers; i++ {
		node := i * 4
		off := int64(i) * chunk
		e.Spawn("w", func(p *sim.Proc) {
			g.Write(p, node, f, []Seg{Contig(off, chunk)})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	total := float64(writers * chunk)
	bw := total / sim.ToSeconds(e.Now())
	if bw > 2.9e9 {
		t.Fatalf("pset bandwidth %v exceeds ION limit", bw)
	}
	if bw < 1.5e9 {
		t.Fatalf("pset bandwidth %v suspiciously low", bw)
	}
}

func TestGPFSLockRevocationCost(t *testing.T) {
	// Two nodes alternating writes to the same block must be slower under
	// exclusive locks than under shared locks.
	run := func(mode int) int64 {
		topo, fab := miraRig(128)
		g := NewGPFS(topo, fab, GPFSConfig{LockMode: mode})
		f := g.Create("f", FileOptions{})
		e := sim.NewEngine()
		e.Spawn("w", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				g.Write(p, 3, f, []Seg{Contig(int64(i)*1000, 1000)})
				g.Write(p, 64, f, []Seg{Contig(int64(i)*1000+500000, 1000)})
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	excl := run(LockExclusive)
	shared := run(LockShared)
	if excl <= shared {
		t.Fatalf("exclusive (%d) not slower than shared (%d)", excl, shared)
	}
	// 19 ownership changes × 500 µs each.
	if excl-shared < 9*sim.Millisecond {
		t.Fatalf("revocation cost too small: %d", excl-shared)
	}
}

func TestGPFSSubfilingBeatsSharedFile(t *testing.T) {
	// Writers across 4 Psets: one shared file is capped by the per-file
	// ceiling; per-Pset files scale with ION count.
	const nodes = 512
	const chunk = 256 << 20
	run := func(subfile bool) float64 {
		topo, fab := miraRig(nodes)
		g := NewGPFS(topo, fab, GPFSConfig{LockMode: LockShared, FileBW: 4e9})
		e := sim.NewEngine()
		var files []*File
		if subfile {
			for i := 0; i < topo.IONodes(); i++ {
				files = append(files, g.Create("f", FileOptions{}))
			}
		} else {
			files = []*File{g.Create("f", FileOptions{})}
		}
		for pset := 0; pset < topo.IONodes(); pset++ {
			node := pset * topo.PsetSize
			f := files[0]
			if subfile {
				f = files[pset]
			}
			off := int64(pset) * chunk
			e.Spawn("w", func(p *sim.Proc) {
				g.Write(p, node, f, []Seg{Contig(off, chunk)})
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(int64(topo.IONodes())*chunk) / sim.ToSeconds(e.Now())
	}
	shared := run(false)
	sub := run(true)
	if sub <= shared*1.5 {
		t.Fatalf("subfiling %v not decisively faster than shared %v", sub, shared)
	}
}

func TestGPFSReadFasterThanWrite(t *testing.T) {
	topo, fab := miraRig(128)
	g := NewGPFS(topo, fab, GPFSConfig{})
	f := g.Create("f", FileOptions{})
	e := sim.NewEngine()
	var wDur, rDur int64
	e.Spawn("w", func(p *sim.Proc) {
		t0 := p.Now()
		g.Write(p, 5, f, []Seg{Contig(0, 64<<20)})
		wDur = p.Now() - t0
		t0 = p.Now()
		g.Read(p, 5, f, []Seg{Contig(0, 64<<20)})
		rDur = p.Now() - t0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rDur >= wDur {
		t.Fatalf("read (%d) not faster than write (%d)", rDur, wDur)
	}
}

func TestGPFSAsyncOverlaps(t *testing.T) {
	// Two async writes issued back-to-back must finish sooner than their
	// serial sum (they pipeline through different stages), and the proc is
	// free immediately.
	topo, fab := miraRig(128)
	g := NewGPFS(topo, fab, GPFSConfig{LockMode: LockShared})
	f := g.Create("f", FileOptions{})
	e := sim.NewEngine()
	e.Spawn("w", func(p *sim.Proc) {
		ev1 := g.WriteAsync(p, 5, f, []Seg{Contig(0, 16<<20)})
		if p.Now() > sim.Millisecond {
			t.Error("async write blocked the proc")
		}
		ev2 := g.WriteAsync(p, 5, f, []Seg{Contig(16<<20, 16<<20)})
		ev1.Wait(p)
		ev2.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLustreStripeMapping(t *testing.T) {
	topo, fab := thetaRig(512)
	l := NewLustre(topo, fab, LustreConfig{})
	f := l.Create("f", FileOptions{StripeCount: 4, StripeSize: 1 << 20})
	seen := map[int]bool{}
	for s := int64(0); s < 8; s++ {
		seen[l.OSTOf(f, s)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("stripes map to %d OSTs, want 4", len(seen))
	}
	if l.OSTOf(f, 0) != l.OSTOf(f, 4) {
		t.Fatal("stripe 0 and 4 must share an OST with stripe count 4")
	}
}

func TestLustreDefaultsPoor(t *testing.T) {
	topo, fab := thetaRig(512)
	l := NewLustre(topo, fab, LustreConfig{})
	f := l.Create("f", FileOptions{}) // platform defaults
	if f.Opt.StripeCount != 1 || f.Opt.StripeSize != 1<<20 {
		t.Fatalf("default striping = %+v", f.Opt)
	}
}

func TestLustreSingleStreamLatencyBound(t *testing.T) {
	topo, fab := thetaRig(512)
	l := NewLustre(topo, fab, LustreConfig{})
	f := l.Create("f", FileOptions{StripeCount: 1, StripeSize: 8 << 20})
	e := sim.NewEngine()
	e.Spawn("w", func(p *sim.Proc) {
		l.Write(p, 0, f, []Seg{Contig(0, 8<<20)})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	bw := float64(8<<20) / sim.ToSeconds(e.Now())
	// Single stream ≈ RPCSize/(latency + RPCSize/ostBW) ≈ 145 MB/s.
	if bw > 200e6 || bw < 80e6 {
		t.Fatalf("single-stream bandwidth %v outside latency-bound range", bw)
	}
}

func TestLustreConcurrentStreamsScale(t *testing.T) {
	// 4 writers on one OST must beat 1 writer's bandwidth clearly.
	run := func(writers int) float64 {
		topo, fab := thetaRig(512)
		l := NewLustre(topo, fab, LustreConfig{})
		f := l.Create("f", FileOptions{StripeCount: 1, StripeSize: 64 << 20})
		e := sim.NewEngine()
		const chunk = 16 << 20
		for i := 0; i < writers; i++ {
			node := i * 4
			off := int64(i) * chunk
			e.Spawn("w", func(p *sim.Proc) {
				l.Write(p, node, f, []Seg{Contig(off, chunk)})
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(int64(writers)*chunk) / sim.ToSeconds(e.Now())
	}
	one := run(1)
	four := run(4)
	if four < 2*one {
		t.Fatalf("4 streams (%v) do not scale over 1 stream (%v)", four, one)
	}
}

func TestLustreMoreOSTsScale(t *testing.T) {
	run := func(stripeCount int) float64 {
		topo, fab := thetaRig(512)
		l := NewLustre(topo, fab, LustreConfig{})
		f := l.Create("f", FileOptions{StripeCount: stripeCount, StripeSize: 1 << 20})
		e := sim.NewEngine()
		const writers = 16
		const chunk = 8 << 20
		for i := 0; i < writers; i++ {
			node := i * 4
			off := int64(i) * chunk
			e.Spawn("w", func(p *sim.Proc) {
				l.Write(p, node, f, []Seg{Contig(off, chunk)})
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(int64(writers)*chunk) / sim.ToSeconds(e.Now())
	}
	one := run(1)
	many := run(16)
	if many < 3*one {
		t.Fatalf("16 OSTs (%v) do not scale over 1 OST (%v)", many, one)
	}
}

func TestLustreLockRevocationOnSharedStripe(t *testing.T) {
	// Two nodes alternately writing halves of the same stripes pay
	// revocations; two nodes writing disjoint stripes do not.
	run := func(shareStripes bool) int64 {
		topo, fab := thetaRig(512)
		l := NewLustre(topo, fab, LustreConfig{})
		f := l.Create("f", FileOptions{StripeCount: 2, StripeSize: 8 << 20})
		e := sim.NewEngine()
		e.Spawn("w", func(p *sim.Proc) {
			const half = 4 << 20
			for i := 0; i < 6; i++ {
				base := int64(i) * (16 << 20)
				if shareStripes {
					// Both nodes write halves of stripe 2i: owner bounces.
					l.Write(p, 0, f, []Seg{Contig(base, half)})
					l.Write(p, 4, f, []Seg{Contig(base+half, half)})
				} else {
					// Node 0 writes stripe 2i, node 4 writes stripe 2i+1:
					// same bytes, disjoint stripes, stable owners.
					l.Write(p, 0, f, []Seg{Contig(base, half)})
					l.Write(p, 4, f, []Seg{Contig(base+(8<<20), half)})
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	sharing := run(true)
	disjoint := run(false)
	if sharing <= disjoint {
		t.Fatalf("stripe sharing (%d) not slower than disjoint (%d)", sharing, disjoint)
	}
}

func TestLustreReadFasterThanWrite(t *testing.T) {
	topo, fab := thetaRig(512)
	l := NewLustre(topo, fab, LustreConfig{})
	f := l.Create("f", FileOptions{StripeCount: 8, StripeSize: 1 << 20})
	e := sim.NewEngine()
	var wDur, rDur int64
	e.Spawn("w", func(p *sim.Proc) {
		t0 := p.Now()
		l.Write(p, 0, f, []Seg{Contig(0, 32<<20)})
		wDur = p.Now() - t0
		t0 = p.Now()
		l.Read(p, 0, f, []Seg{Contig(0, 32<<20)})
		rDur = p.Now() - t0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rDur >= wDur {
		t.Fatalf("read (%d) not faster than write (%d)", rDur, wDur)
	}
}

func TestLustreOptimalUnitIsStripeSize(t *testing.T) {
	topo, fab := thetaRig(512)
	l := NewLustre(topo, fab, LustreConfig{})
	f := l.Create("f", FileOptions{StripeCount: 8, StripeSize: 16 << 20})
	if l.OptimalUnit(f) != 16<<20 {
		t.Fatalf("unit = %d", l.OptimalUnit(f))
	}
}

func TestLustreObjectSetupPenalty(t *testing.T) {
	// A flush spanning 4 OST objects pays more setup than one within a
	// single object, for the same bytes and OST parallelism... compare one
	// 8MB flush in one stripe vs four 2MB pieces in four stripes.
	topo, fab := thetaRig(512)
	l := NewLustre(topo, fab, LustreConfig{})
	fBig := l.Create("big", FileOptions{StripeCount: 1, StripeSize: 64 << 20})
	fSplit := l.Create("split", FileOptions{StripeCount: 1, StripeSize: 2 << 20})
	e := sim.NewEngine()
	var tBig, tSplit int64
	e.Spawn("w", func(p *sim.Proc) {
		t0 := p.Now()
		l.Write(p, 0, fBig, []Seg{Contig(0, 8<<20)})
		tBig = p.Now() - t0
	})
	e.Spawn("w2", func(p *sim.Proc) {
		t0 := p.Now()
		l.Write(p, 8, fSplit, []Seg{Contig(0, 8<<20)})
		tSplit = p.Now() - t0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Same OST count (stripe count 1) but 4 objects worth of stripes in the
	// split file... both files use 1 OST; the split file's write spans 4
	// stripes of the same object, so setup is equal; this guards that
	// stripes of one object do NOT multiply setup.
	if tSplit < tBig {
		t.Fatalf("split (%d) faster than big (%d)?", tSplit, tBig)
	}
}
