package storage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContigBasics(t *testing.T) {
	s := Contig(100, 50)
	if s.Bytes() != 50 || s.Runs() != 1 || s.End() != 150 {
		t.Fatalf("contig = %+v", s)
	}
	lo, hi := s.Span()
	if lo != 100 || hi != 150 {
		t.Fatalf("span = [%d,%d)", lo, hi)
	}
}

func TestStridedBasics(t *testing.T) {
	// HACC AoS-like: 4-byte runs every 38 bytes.
	s := Strided(0, 4, 38, 1000)
	if s.Bytes() != 4000 || s.Runs() != 1000 {
		t.Fatalf("strided = %+v", s)
	}
	if s.End() != 38*999+4 {
		t.Fatalf("end = %d", s.End())
	}
}

func TestStridedOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for overlapping runs")
		}
	}()
	Strided(0, 10, 5, 3)
}

func TestIntersectContig(t *testing.T) {
	s := Contig(100, 100) // [100,200)
	cases := []struct {
		lo, hi    int64
		wantBytes int64
	}{
		{0, 100, 0},
		{200, 300, 0},
		{0, 150, 50},
		{150, 400, 50},
		{120, 130, 10},
		{100, 200, 100},
		{0, 1000, 100},
	}
	for _, c := range cases {
		got := TotalBytes(s.Intersect(c.lo, c.hi))
		if got != c.wantBytes {
			t.Errorf("Intersect[%d,%d) = %d bytes, want %d", c.lo, c.hi, got, c.wantBytes)
		}
	}
}

func TestIntersectStridedMiddle(t *testing.T) {
	s := Strided(0, 4, 10, 10) // runs at 0,10,...,90
	// Window [25, 67): runs at 30,40,50,60 fully; none clipped.
	out := s.Intersect(25, 67)
	if TotalBytes(out) != 16 {
		t.Fatalf("bytes = %d, want 16 (%+v)", TotalBytes(out), out)
	}
	if TotalRuns(out) != 4 {
		t.Fatalf("runs = %d, want 4", TotalRuns(out))
	}
}

func TestIntersectStridedClippedEnds(t *testing.T) {
	s := Strided(0, 10, 20, 5) // [0,10) [20,30) [40,50) [60,70) [80,90)
	// Window [5, 85): head clipped to [5,10), tail clipped to [80,85).
	out := s.Intersect(5, 85)
	if TotalBytes(out) != 5+10+10+10+5 {
		t.Fatalf("bytes = %d (%+v)", TotalBytes(out), out)
	}
	if len(out) != 3 {
		t.Fatalf("segments = %d, want head+middle+tail (%+v)", len(out), out)
	}
}

func TestIntersectSingleRunWindowInside(t *testing.T) {
	s := Strided(0, 100, 200, 3)
	// Window entirely inside run 1: [210, 250).
	out := s.Intersect(210, 250)
	if TotalBytes(out) != 40 || len(out) != 1 {
		t.Fatalf("out = %+v", out)
	}
	if out[0].Off != 210 {
		t.Fatalf("off = %d", out[0].Off)
	}
}

func TestIntersectWindowBetweenRuns(t *testing.T) {
	s := Strided(0, 4, 100, 5)
	out := s.Intersect(10, 90) // gap between run 0 and run 1
	if len(out) != 0 {
		t.Fatalf("out = %+v, want empty", out)
	}
}

// Property: intersection preserves bytes exactly (checked by enumeration).
func TestIntersectBytesProperty(t *testing.T) {
	f := func(off uint16, lenB, strideExtra, count uint8, wloU, wspan uint16) bool {
		length := int64(lenB%64) + 1
		stride := length + int64(strideExtra%64)
		cnt := int64(count%32) + 1
		s := Strided(int64(off), length, stride, cnt)
		lo := int64(wloU)
		hi := lo + int64(wspan)
		got := TotalBytes(s.Intersect(lo, hi))
		var want int64
		Enumerate([]Seg{s}, 1<<20, func(o, l int64) {
			a, b := maxI64(o, lo), minI64(o+l, hi)
			if b > a {
				want += b - a
			}
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: intersection output segments lie within the window and within
// the source span, and never overlap each other.
func TestIntersectContainmentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		length := rng.Int63n(50) + 1
		stride := length + rng.Int63n(50)
		s := Strided(rng.Int63n(1000), length, stride, rng.Int63n(20)+1)
		lo := rng.Int63n(2000)
		hi := lo + rng.Int63n(2000)
		out := s.Intersect(lo, hi)
		var prevEnd int64 = -1
		for _, o := range out {
			olo, ohi := o.Span()
			if olo < lo || ohi > hi {
				t.Fatalf("segment %+v outside window [%d,%d)", o, lo, hi)
			}
			if olo < s.Off || ohi > s.End() {
				t.Fatalf("segment %+v outside source %+v", o, s)
			}
			if olo < prevEnd {
				t.Fatalf("segments overlap: %+v", out)
			}
			prevEnd = ohi
		}
	}
}

func TestSpanAll(t *testing.T) {
	segs := []Seg{Contig(500, 10), Contig(100, 10), Strided(200, 5, 50, 4)}
	lo, hi := SpanAll(segs)
	if lo != 100 || hi != 510 {
		t.Fatalf("span = [%d,%d)", lo, hi)
	}
}

func TestEnumerateLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on limit")
		}
	}()
	Enumerate([]Seg{Strided(0, 1, 2, 1000)}, 10, func(o, l int64) {})
}

func TestIntersectAllMultipleSegs(t *testing.T) {
	segs := []Seg{Contig(0, 100), Contig(200, 100)}
	out := IntersectAll(segs, 50, 250)
	if TotalBytes(out) != 100 {
		t.Fatalf("bytes = %d (%+v)", TotalBytes(out), out)
	}
}
