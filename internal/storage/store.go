package storage

import (
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"sync"

	"tapioca/internal/par"
)

// storeCRCTable is the CRC-64/ECMA table for StoreChecksum — the same
// polynomial dataplane.Plane.Checksum uses on the application end, so the
// two ends of the pipeline can be compared directly.
var storeCRCTable = crc64.MakeTable(crc64.ECMA)

// Store is a pluggable backing byte store for a simulated file — the data
// plane's durable end. Timing stays with the System models; a Store only
// holds bytes. The io.ReaderAt/io.WriterAt shapes mean an *os.File works
// directly (see NewFileStore); reading a hole (never-written range) yields
// zeros. Implementations must be safe for concurrent use: the pipeline
// overlaps an aggregator's store I/O with the next round's aggregation, so
// flushes from different aggregators (and checksum readers) can run at once.
type Store interface {
	io.ReaderAt
	io.WriterAt
}

// Extent is one contiguous file extent paired with its payload bytes — for
// writes P is the source, for reads the destination. Batched extent lists
// are the store fast path: runs coalesced by CoalesceExtents land in one
// store transaction instead of one call (and one lock acquisition) per run.
type Extent struct {
	Off int64
	P   []byte
}

// extentWriter and extentReader are the optional batched fast paths a Store
// may implement (MemStore does): a whole coalesced extent list in one call.
type extentWriter interface {
	WriteExtents(exts []Extent) error
}
type extentReader interface {
	ReadExtents(exts []Extent) error
}

// memChunk is the MemStore page size: large enough that dense files stay in
// few map entries, small enough that sparse strided files don't over-commit.
const memChunk = 64 << 10

// MemStore is an in-memory sparse extent store: bytes live in fixed-size
// chunks allocated on first write, so a file that touches offsets billions
// apart costs memory proportional to the data, not the span. All methods
// are safe for concurrent use; the batched WriteExtents/ReadExtents paths
// take the lock once per extent list and cache the current chunk across
// runs, which is what the pipeline's coalesced flushes call.
type MemStore struct {
	mu     sync.RWMutex
	chunks map[int64][]byte
	hi     int64 // exclusive upper bound of written data
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{chunks: map[int64][]byte{}} }

// writeLocked stores p at off with the write lock held, reusing the
// caller's (chunk index, chunk) cache across calls so adjacent small runs
// skip repeat map lookups.
func (m *MemStore) writeLocked(p []byte, off int64, cci *int64, cc *[]byte) {
	n := 0
	for n < len(p) {
		ci := (off + int64(n)) / memChunk
		co := (off + int64(n)) % memChunk
		if ci != *cci || *cc == nil {
			c := m.chunks[ci]
			if c == nil {
				c = make([]byte, memChunk)
				m.chunks[ci] = c
			}
			*cci, *cc = ci, c
		}
		n += copy((*cc)[co:], p[n:])
	}
	if end := off + int64(len(p)); end > m.hi {
		m.hi = end
	}
}

// readLocked fills p from off with (at least) the read lock held; holes
// read as zeros.
func (m *MemStore) readLocked(p []byte, off int64, cci *int64, cc *[]byte) {
	n := 0
	for n < len(p) {
		ci := (off + int64(n)) / memChunk
		co := (off + int64(n)) % memChunk
		if ci != *cci {
			*cci, *cc = ci, m.chunks[ci]
		}
		if c := *cc; c != nil {
			n += copy(p[n:], c[co:])
		} else {
			z := minI64(int64(len(p)-n), memChunk-co)
			clear(p[n : n+int(z)])
			n += int(z)
		}
	}
}

// WriteAt stores p at offset off (io.WriterAt).
func (m *MemStore) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: MemStore.WriteAt negative offset %d", off)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cci, cc := int64(-1), []byte(nil)
	m.writeLocked(p, off, &cci, &cc)
	return len(p), nil
}

// ReadAt fills p from offset off (io.ReaderAt); holes read as zeros.
func (m *MemStore) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: MemStore.ReadAt negative offset %d", off)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	cci, cc := int64(-1), []byte(nil)
	m.readLocked(p, off, &cci, &cc)
	return len(p), nil
}

// WriteExtents stores a coalesced extent list in one transaction: the lock
// is taken once and the current chunk is cached across extents — the
// run-aware fast path the pipeline's flushes use.
func (m *MemStore) WriteExtents(exts []Extent) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cci, cc := int64(-1), []byte(nil)
	for _, e := range exts {
		if e.Off < 0 {
			return fmt.Errorf("storage: MemStore.WriteExtents negative offset %d", e.Off)
		}
		m.writeLocked(e.P, e.Off, &cci, &cc)
	}
	return nil
}

// ReadExtents fills a coalesced extent list in one transaction
// (WriteExtents' read counterpart); holes read as zeros.
func (m *MemStore) ReadExtents(exts []Extent) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	cci, cc := int64(-1), []byte(nil)
	for _, e := range exts {
		if e.Off < 0 {
			return fmt.Errorf("storage: MemStore.ReadExtents negative offset %d", e.Off)
		}
		m.readLocked(e.P, e.Off, &cci, &cc)
	}
	return nil
}

// Size returns the exclusive upper bound of written data.
func (m *MemStore) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.hi
}

// FileStore backs a simulated file with a real on-disk file. Unlike a bare
// *os.File, reads past EOF zero-fill (sparse-hole semantics, matching
// MemStore) instead of returning io.EOF mid-buffer. Concurrent use is safe:
// WriteAt/ReadAt map to pwrite/pread.
type FileStore struct {
	f *os.File
}

// NewFileStore creates (or truncates) path as the backing file.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileStore{f: f}, nil
}

// WriteAt stores p at offset off.
func (s *FileStore) WriteAt(p []byte, off int64) (int, error) { return s.f.WriteAt(p, off) }

// ReadAt fills p from offset off, zero-filling past EOF.
func (s *FileStore) ReadAt(p []byte, off int64) (int, error) {
	n, err := s.f.ReadAt(p, off)
	if err == io.EOF {
		clear(p[n:])
		return len(p), nil
	}
	return n, err
}

// Close closes the backing file.
func (s *FileStore) Close() error { return s.f.Close() }

// SetStore attaches a backing byte store to the file (the data plane's
// durable end). Files without a store get a MemStore automatically on the
// first payload-carrying write; SetStore is for choosing an on-disk store or
// sharing one across opens.
func (f *File) SetStore(s Store) { f.store = s }

// Store returns the file's backing store, or nil when no payload has ever
// been written (phantom mode).
func (f *File) Store() Store { return f.store }

// EnsureStore returns the file's backing store, attaching the default
// in-memory store on first use. Callers that hand store I/O to a background
// goroutine (the overlapped flush path) call this first, so the attach
// happens in a synchronized context.
func (f *File) EnsureStore() Store {
	if f.store == nil {
		f.store = NewMemStore()
	}
	return f.store
}

// StoreWriteAt stores payload bytes at a file offset, attaching the default
// MemStore on first use.
func (f *File) StoreWriteAt(p []byte, off int64) error {
	_, err := f.EnsureStore().WriteAt(p, off)
	return err
}

// StoreReadAt fills p from the backing store; without a store the file's
// content is all zeros (phantom writes carry no bytes).
func (f *File) StoreReadAt(p []byte, off int64) error {
	if f.store == nil {
		clear(p)
		return nil
	}
	_, err := f.store.ReadAt(p, off)
	return err
}

// CoalesceExtents appends to dst the file extents segs enumerate, pairing
// each with its sub-slice of buf (packed in enumeration order) and merging
// file-adjacent runs into single extents. Because buf is packed, runs that
// are adjacent in the file are adjacent in buf too, so a merged extent is
// one contiguous slice — one store call instead of one per run. A fully
// contiguous strided segment (Stride == Len) collapses to one extent
// without enumerating its runs. Overlapping runs are never merged, so
// enumeration (write) order is preserved.
func CoalesceExtents(dst []Extent, segs []Seg, buf []byte) []Extent {
	var pos, curOff, curPos, curLen int64
	emit := func(off, n int64) {
		if curLen > 0 && off == curOff+curLen {
			curLen += n
		} else {
			if curLen > 0 {
				dst = append(dst, Extent{Off: curOff, P: buf[curPos : curPos+curLen]})
			}
			curOff, curPos, curLen = off, pos, n
		}
		pos += n
	}
	for _, s := range segs {
		if s.Empty() {
			continue
		}
		if s.Count == 1 || s.Stride == s.Len {
			emit(s.Off, s.Len*s.Count)
			continue
		}
		for i := int64(0); i < s.Count; i++ {
			emit(s.Off+i*s.Stride, s.Len)
		}
	}
	if curLen > 0 {
		dst = append(dst, Extent{Off: curOff, P: buf[curPos : curPos+curLen]})
	}
	return dst
}

// StoreWriteExtents lands a coalesced extent list in the backing store,
// using the store's batched path when it has one.
func (f *File) StoreWriteExtents(exts []Extent) error {
	st := f.EnsureStore()
	if w, ok := st.(extentWriter); ok {
		return w.WriteExtents(exts)
	}
	for _, e := range exts {
		if _, err := st.WriteAt(e.P, e.Off); err != nil {
			return err
		}
	}
	return nil
}

// StoreReadExtents fills a coalesced extent list from the backing store
// (StoreWriteExtents' read counterpart); without a store every extent reads
// as zeros.
func (f *File) StoreReadExtents(exts []Extent) error {
	if f.store == nil {
		for _, e := range exts {
			clear(e.P)
		}
		return nil
	}
	if r, ok := f.store.(extentReader); ok {
		return r.ReadExtents(exts)
	}
	for _, e := range exts {
		if _, err := f.store.ReadAt(e.P, e.Off); err != nil {
			return err
		}
	}
	return nil
}

// StoreWrite scatters src — packed in the order segs enumerate — into the
// backing store at the segments' file extents. The segment list's order is
// the buffer layout: aggregation-buffer flushes pass their buffer-ordered
// run lists, which need not be offset-sorted. Adjacent runs coalesce into
// batched extents before touching the store.
func (f *File) StoreWrite(segs []Seg, src []byte) error {
	if need := TotalBytes(segs); need > int64(len(src)) {
		return fmt.Errorf("storage: StoreWrite on %q: segments need %d bytes, payload holds %d", f.Name, need, len(src))
	}
	return f.StoreWriteExtents(CoalesceExtents(nil, segs, src))
}

// StoreRead gathers the segments' file extents from the backing store into
// dst, packed in the order segs enumerate (StoreWrite's inverse).
func (f *File) StoreRead(segs []Seg, dst []byte) error {
	if need := TotalBytes(segs); need > int64(len(dst)) {
		return fmt.Errorf("storage: StoreRead on %q: segments need %d bytes, buffer holds %d", f.Name, need, len(dst))
	}
	return f.StoreReadExtents(CoalesceExtents(nil, segs, dst))
}

// crcScratch pools StoreChecksum's read buffers (one per concurrent shard)
// instead of allocating 64 KiB per call.
var crcScratch = sync.Pool{New: func() any { b := make([]byte, 64<<10); return &b }}

// checksumShardBytes is the minimum payload per parallel checksum shard;
// below ~one shard of work the serial path wins.
const checksumShardBytes = 4 << 20

// StoreChecksum returns the CRC-64/ECMA of the stored bytes over the given
// extents, enumerated in offset order per segment list — the storage end of
// the pipeline's end-to-end verification (dataplane.Plane.Checksum computes
// the application end over the same extents). Large extents shard across
// the worker pool and merge with CRC64Combine; the result is identical to
// the serial scan.
func (f *File) StoreChecksum(segs []Seg) (uint64, error) {
	total := TotalBytes(segs)
	shards := int(total / checksumShardBytes)
	if lim := par.Limit(); shards > lim {
		shards = lim
	}
	if shards <= 1 {
		return f.storeChecksumSerial(segs)
	}
	parts := SplitSegs(segs, shards)
	crcs := make([]uint64, len(parts))
	errs := make([]error, len(parts))
	par.Map(len(parts), func(i int) { crcs[i], errs[i] = f.storeChecksumSerial(parts[i]) })
	var crc uint64
	for i := range parts {
		if errs[i] != nil {
			return 0, errs[i]
		}
		crc = CRC64Combine(crc, crcs[i], TotalBytes(parts[i]))
	}
	return crc, nil
}

// storeChecksumSerial is the single-stream checksum scan over segs.
func (f *File) storeChecksumSerial(segs []Seg) (uint64, error) {
	bp := crcScratch.Get().(*[]byte)
	defer crcScratch.Put(bp)
	buf := *bp
	var crc uint64
	for _, s := range segs {
		for i := int64(0); i < s.Count; i++ {
			off, remaining := s.Off+i*s.Stride, s.Len
			for remaining > 0 {
				n := minI64(remaining, int64(len(buf)))
				if err := f.StoreReadAt(buf[:n], off); err != nil {
					return 0, err
				}
				crc = crc64.Update(crc, storeCRCTable, buf[:n])
				off += n
				remaining -= n
			}
		}
	}
	return crc, nil
}

// SplitSegs cuts a segment list into at most parts consecutive slices of
// roughly equal byte size, preserving enumeration order across the
// boundaries — the sharding primitive behind parallel checksums. Contiguous
// segments split at any byte; strided segments split at run granularity
// (one run is the imbalance bound).
func SplitSegs(segs []Seg, parts int) [][]Seg {
	total := TotalBytes(segs)
	if parts <= 1 || total == 0 {
		return [][]Seg{segs}
	}
	target := (total + int64(parts) - 1) / int64(parts)
	out := make([][]Seg, 0, parts)
	var cur []Seg
	var curBytes int64
	flush := func() {
		if len(cur) > 0 {
			out = append(out, cur)
			cur, curBytes = nil, 0
		}
	}
	for _, s := range segs {
		for !s.Empty() {
			room := target - curBytes
			if room <= 0 {
				flush()
				room = target
			}
			if s.Bytes() <= room {
				cur = append(cur, s)
				curBytes += s.Bytes()
				break
			}
			head, tail := splitSegFront(s, room)
			cur = append(cur, head)
			curBytes += head.Bytes()
			s = tail
		}
	}
	flush()
	return out
}

// splitSegFront cuts roughly n bytes (0 < n < s.Bytes()) off the front of
// s: contiguous segments split exactly at n, strided ones at the nearest
// run boundary (at least one run).
func splitSegFront(s Seg, n int64) (head, tail Seg) {
	if s.Count == 1 {
		return Contig(s.Off, n), Contig(s.Off+n, s.Len-n)
	}
	runs := n / s.Len
	if runs < 1 {
		runs = 1
	}
	if runs >= s.Count {
		runs = s.Count - 1
	}
	head = Seg{Off: s.Off, Len: s.Len, Stride: s.Stride, Count: runs}
	tail = Seg{Off: s.Off + runs*s.Stride, Len: s.Len, Stride: s.Stride, Count: s.Count - runs}
	return head, tail
}
