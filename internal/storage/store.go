package storage

import (
	"fmt"
	"hash/crc64"
	"io"
	"os"
)

// storeCRCTable is the CRC-64/ECMA table for StoreChecksum — the same
// polynomial dataplane.Plane.Checksum uses on the application end, so the
// two ends of the pipeline can be compared directly.
var storeCRCTable = crc64.MakeTable(crc64.ECMA)

// Store is a pluggable backing byte store for a simulated file — the data
// plane's durable end. Timing stays with the System models; a Store only
// holds bytes. The io.ReaderAt/io.WriterAt shapes mean an *os.File works
// directly (see NewFileStore); reading a hole (never-written range) yields
// zeros.
type Store interface {
	io.ReaderAt
	io.WriterAt
}

// memChunk is the MemStore page size: large enough that dense files stay in
// few map entries, small enough that sparse strided files don't over-commit.
const memChunk = 64 << 10

// MemStore is an in-memory sparse extent store: bytes live in fixed-size
// chunks allocated on first write, so a file that touches offsets billions
// apart costs memory proportional to the data, not the span.
type MemStore struct {
	chunks map[int64][]byte
	hi     int64 // exclusive upper bound of written data
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{chunks: map[int64][]byte{}} }

// WriteAt stores p at offset off (io.WriterAt).
func (m *MemStore) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: MemStore.WriteAt negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		ci := (off + int64(n)) / memChunk
		co := (off + int64(n)) % memChunk
		c := m.chunks[ci]
		if c == nil {
			c = make([]byte, memChunk)
			m.chunks[ci] = c
		}
		n += copy(c[co:], p[n:])
	}
	if end := off + int64(len(p)); end > m.hi {
		m.hi = end
	}
	return n, nil
}

// ReadAt fills p from offset off (io.ReaderAt); holes read as zeros.
func (m *MemStore) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: MemStore.ReadAt negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		ci := (off + int64(n)) / memChunk
		co := (off + int64(n)) % memChunk
		if c := m.chunks[ci]; c != nil {
			n += copy(p[n:], c[co:])
		} else {
			z := minI64(int64(len(p)-n), memChunk-co)
			for i := int64(0); i < z; i++ {
				p[n+int(i)] = 0
			}
			n += int(z)
		}
	}
	return n, nil
}

// Size returns the exclusive upper bound of written data.
func (m *MemStore) Size() int64 { return m.hi }

// FileStore backs a simulated file with a real on-disk file. Unlike a bare
// *os.File, reads past EOF zero-fill (sparse-hole semantics, matching
// MemStore) instead of returning io.EOF mid-buffer.
type FileStore struct {
	f *os.File
}

// NewFileStore creates (or truncates) path as the backing file.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileStore{f: f}, nil
}

// WriteAt stores p at offset off.
func (s *FileStore) WriteAt(p []byte, off int64) (int, error) { return s.f.WriteAt(p, off) }

// ReadAt fills p from offset off, zero-filling past EOF.
func (s *FileStore) ReadAt(p []byte, off int64) (int, error) {
	n, err := s.f.ReadAt(p, off)
	if err == io.EOF {
		for i := n; i < len(p); i++ {
			p[i] = 0
		}
		return len(p), nil
	}
	return n, err
}

// Close closes the backing file.
func (s *FileStore) Close() error { return s.f.Close() }

// SetStore attaches a backing byte store to the file (the data plane's
// durable end). Files without a store get a MemStore automatically on the
// first payload-carrying write; SetStore is for choosing an on-disk store or
// sharing one across opens.
func (f *File) SetStore(s Store) { f.store = s }

// Store returns the file's backing store, or nil when no payload has ever
// been written (phantom mode).
func (f *File) Store() Store { return f.store }

// ensureStore attaches the default in-memory store on first payload use.
func (f *File) ensureStore() Store {
	if f.store == nil {
		f.store = NewMemStore()
	}
	return f.store
}

// StoreWriteAt stores payload bytes at a file offset, attaching the default
// MemStore on first use.
func (f *File) StoreWriteAt(p []byte, off int64) error {
	_, err := f.ensureStore().WriteAt(p, off)
	return err
}

// StoreReadAt fills p from the backing store; without a store the file's
// content is all zeros (phantom writes carry no bytes).
func (f *File) StoreReadAt(p []byte, off int64) error {
	if f.store == nil {
		for i := range p {
			p[i] = 0
		}
		return nil
	}
	_, err := f.store.ReadAt(p, off)
	return err
}

// StoreWrite scatters src — packed in the order segs enumerate — into the
// backing store at the segments' file extents. The segment list's order is
// the buffer layout: aggregation-buffer flushes pass their buffer-ordered
// run lists, which need not be offset-sorted.
func (f *File) StoreWrite(segs []Seg, src []byte) error {
	st := f.ensureStore()
	var pos int64
	for _, s := range segs {
		for i := int64(0); i < s.Count; i++ {
			if pos+s.Len > int64(len(src)) {
				return fmt.Errorf("storage: StoreWrite on %q: segments need %d+ bytes, payload holds %d", f.Name, pos+s.Len, len(src))
			}
			if _, err := st.WriteAt(src[pos:pos+s.Len], s.Off+i*s.Stride); err != nil {
				return err
			}
			pos += s.Len
		}
	}
	return nil
}

// StoreRead gathers the segments' file extents from the backing store into
// dst, packed in the order segs enumerate (StoreWrite's inverse).
func (f *File) StoreRead(segs []Seg, dst []byte) error {
	var pos int64
	for _, s := range segs {
		for i := int64(0); i < s.Count; i++ {
			if pos+s.Len > int64(len(dst)) {
				return fmt.Errorf("storage: StoreRead on %q: segments need %d+ bytes, buffer holds %d", f.Name, pos+s.Len, len(dst))
			}
			if err := f.StoreReadAt(dst[pos:pos+s.Len], s.Off+i*s.Stride); err != nil {
				return err
			}
			pos += s.Len
		}
	}
	return nil
}

// StoreChecksum returns the CRC-64/ECMA of the stored bytes over the given
// extents, enumerated in offset order per segment list — the storage end of
// the pipeline's end-to-end verification (dataplane.Plane.Checksum computes
// the application end over the same extents).
func (f *File) StoreChecksum(segs []Seg) (uint64, error) {
	var crc uint64
	buf := make([]byte, 64<<10)
	for _, s := range segs {
		for i := int64(0); i < s.Count; i++ {
			off, remaining := s.Off+i*s.Stride, s.Len
			for remaining > 0 {
				n := minI64(remaining, int64(len(buf)))
				if err := f.StoreReadAt(buf[:n], off); err != nil {
					return 0, err
				}
				crc = crc64.Update(crc, storeCRCTable, buf[:n])
				off += n
				remaining -= n
			}
		}
	}
	return crc, nil
}
