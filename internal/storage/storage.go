// Package storage models parallel file systems in virtual time.
//
// Two production models are provided, mirroring the paper's testbeds:
//
//   - GPFS behind IBM BG/Q I/O nodes (Mira): per-Pset bridge links and ION
//     uplinks, block-granular byte-range locks with a shared-lock mode, and
//     a per-file backend ceiling (single-shared-file behaviour vs the
//     recommended file-per-Pset subfiling).
//   - Lustre behind LNET service nodes (Theta): per-file striping across
//     OSTs, RPC-windowed object streams (single-stream throughput is
//     latency-bound; concurrency approaches the OST ceiling), extent-lock
//     revocations when writers share a stripe, and per-object stream setup
//     costs when a flush spans objects.
//
// Both decompose an access into compact strided segments (Seg) so that even
// pathological patterns (millions of 4-byte runs) are priced analytically.
package storage

import (
	"fmt"
	"math"
	"sort"

	"tapioca/internal/obs"
	"tapioca/internal/sim"
)

// FileOptions carries creation-time tuning (striping on Lustre).
type FileOptions struct {
	// StripeCount is the number of OSTs the file is striped over
	// (Lustre; default 1, the platform default the paper calls out).
	StripeCount int
	// StripeSize is the stripe width in bytes (Lustre; default 1 MB).
	StripeSize int64
}

// System is a simulated parallel file system.
type System interface {
	// Name identifies the file system model.
	Name() string
	// Create creates (or truncates) a file.
	Create(name string, opt FileOptions) *File
	// Lookup returns an existing file or nil.
	Lookup(name string) *File
	// OptimalUnit returns the natural write granularity of the file
	// (stripe size on Lustre, block size on GPFS) — what an aggregation
	// buffer should align with (paper Table I).
	OptimalUnit(f *File) int64
	// Write performs a blocking write of segs issued from node, returning
	// the completion time.
	Write(p *sim.Proc, node int, f *File, segs []Seg) int64
	// WriteAsync books the write and returns an event completing when the
	// data is durable (the paper's non-blocking flush).
	WriteAsync(p *sim.Proc, node int, f *File, segs []Seg) *sim.Event
	// WriteSieved performs a data-sieving read-modify-write: the contiguous
	// span of segs is read and written back, while the file records the
	// logical segments. This is how ROMIO handles sparse rounds — the cost
	// is two contiguous span transfers instead of run-by-run writes.
	WriteSieved(p *sim.Proc, node int, f *File, segs []Seg) int64
	// Read performs a blocking read of segs into node.
	Read(p *sim.Proc, node int, f *File, segs []Seg) int64
	// ReadAsync books the read and returns its completion event.
	ReadAsync(p *sim.Proc, node int, f *File, segs []Seg) *sim.Event
}

// File is a file within a simulated file system.
type File struct {
	Name string
	Opt  FileOptions

	bytesWritten int64
	bytesRead    int64
	writeOps     int64
	readOps      int64

	capture        bool
	captureLimit   int
	captureDropped int64
	writes         []AccessRecord

	store Store // backing byte store (nil = phantom mode)

	impl any // system-specific state
}

// AccessRecord is one captured write for verification.
type AccessRecord struct {
	Node int
	At   int64
	Segs []Seg
}

// DefaultCaptureLimit caps the access records a file retains with capture
// enabled. Capture exists for verification at test scale; a paper-scale run
// (tens of thousands of ranks × hundreds of rounds) that accidentally left
// capture on would otherwise grow the writes slice without bound. Records
// past the cap are counted in CaptureDropped instead of retained.
const DefaultCaptureLimit = 1 << 14

// SetCapture enables write capture for verification in tests. At most
// DefaultCaptureLimit records are retained (see SetCaptureLimit); overflow
// is counted by CaptureDropped and fails VerifyCoverage loudly.
func (f *File) SetCapture(on bool) {
	f.capture = on
	if on && f.captureLimit == 0 {
		f.captureLimit = DefaultCaptureLimit
	}
}

// SetCaptureLimit overrides the capture record cap (n <= 0 restores the
// default).
func (f *File) SetCaptureLimit(n int) {
	if n <= 0 {
		n = DefaultCaptureLimit
	}
	f.captureLimit = n
}

// CaptureDropped returns the access records discarded because the capture
// cap was reached.
func (f *File) CaptureDropped() int64 { return f.captureDropped }

// BytesWritten returns the total bytes written so far.
func (f *File) BytesWritten() int64 { return f.bytesWritten }

// BytesRead returns the total bytes read so far.
func (f *File) BytesRead() int64 { return f.bytesRead }

// WriteOps returns the number of write calls.
func (f *File) WriteOps() int64 { return f.writeOps }

// ReadOps returns the number of read calls.
func (f *File) ReadOps() int64 { return f.readOps }

// Writes returns the captured access records (capture mode only).
func (f *File) Writes() []AccessRecord { return f.writes }

func (f *File) recordWrite(node int, at int64, segs []Seg) {
	f.bytesWritten += TotalBytes(segs)
	f.writeOps++
	if f.capture {
		if len(f.writes) >= f.captureLimit {
			f.captureDropped++
		} else {
			cp := make([]Seg, len(segs))
			copy(cp, segs)
			f.writes = append(f.writes, AccessRecord{Node: node, At: at, Segs: cp})
		}
	}
}

func (f *File) recordRead(segs []Seg) {
	f.bytesRead += TotalBytes(segs)
	f.readOps++
}

// VerifyCoverage checks (by enumeration, small scale only) that captured
// writes exactly tile [lo, hi) with no gaps or overlaps. It returns an error
// describing the first discrepancy.
func (f *File) VerifyCoverage(lo, hi int64) error {
	if !f.capture {
		return fmt.Errorf("storage: file %q has no capture enabled", f.Name)
	}
	if f.captureDropped > 0 {
		return fmt.Errorf("storage: file %q capture truncated (%d records dropped at cap %d); raise SetCaptureLimit",
			f.Name, f.captureDropped, f.captureLimit)
	}
	const limit = 4 << 20
	type mark struct{ off, end int64 }
	var runs []mark
	for _, w := range f.writes {
		Enumerate(w.Segs, limit, func(off, length int64) {
			runs = append(runs, mark{off, off + length})
		})
	}
	// Sort and sweep.
	sort.Slice(runs, func(i, j int) bool { return runs[i].off < runs[j].off })
	cur := lo
	for _, r := range runs {
		if r.off > cur {
			return fmt.Errorf("storage: gap [%d,%d) in %q", cur, r.off, f.Name)
		}
		if r.off < cur {
			return fmt.Errorf("storage: overlap at %d in %q", r.off, f.Name)
		}
		cur = r.end
	}
	if cur != hi {
		return fmt.Errorf("storage: coverage ends at %d, want %d in %q", cur, hi, f.Name)
	}
	return nil
}

// traceExtentIO reports one extent operation to the flight recorder: a
// service-interval span on the storage timeline (pid PIDStorage, tid = the
// issuing node) plus per-tier byte/op counters. One nil check when
// observability is off.
func traceExtentIO(p *sim.Proc, node int, name string, read bool, segs []Seg, completion int64) {
	rec := p.Recorder()
	if rec == nil {
		return
	}
	bytes := TotalBytes(segs)
	reg := rec.Registry()
	if read {
		reg.Add("storage.bytes_read", bytes)
	} else {
		reg.Add("storage.bytes_written", bytes)
	}
	reg.Add("storage.ops", 1)
	rec.Span(obs.PIDStorage, int32(node), "storage", name, p.Now(), completion, bytes)
}

// blockingWrite adapts a reservation function into the System.Write shape.
// Every System implementation funnels blocking extent I/O through here, so
// this is also the single observability hook for it.
func blockingWrite(p *sim.Proc, node int, name string, read bool, segs []Seg, completion int64) int64 {
	traceExtentIO(p, node, name, read, segs, completion)
	p.HoldUntil(completion)
	return completion
}

// asyncEvent adapts a reservation completion into a sim.Event (and, like
// blockingWrite, reports the operation to the flight recorder).
func asyncEvent(p *sim.Proc, node int, name string, read bool, segs []Seg, completion int64) *sim.Event {
	traceExtentIO(p, node, name, read, segs, completion)
	ev := sim.NewEvent(name)
	sim.CompleteAt(p, ev, completion)
	return ev
}

// NullFS is an infinitely fast file system with a fixed per-op latency: it
// isolates network effects in tests and ablations.
type NullFS struct {
	PerOp int64 // ns per operation (default 1 µs)
	files map[string]*File
}

// NewNullFS returns a NullFS.
func NewNullFS() *NullFS { return &NullFS{PerOp: 1000, files: map[string]*File{}} }

func (n *NullFS) Name() string { return "nullfs" }

func (n *NullFS) Create(name string, opt FileOptions) *File {
	f := &File{Name: name, Opt: opt}
	n.files[name] = f
	return f
}

func (n *NullFS) Lookup(name string) *File { return n.files[name] }

func (n *NullFS) OptimalUnit(f *File) int64 { return 1 << 20 }

// EstimateFlush prices the fixed per-op latency. (The storage.FlushModel
// hook; NullFS has no bandwidth to model.)
func (n *NullFS) EstimateFlush(opt FileOptions, bytes, runs int64, read bool) float64 {
	return sim.ToSeconds(n.PerOp)
}

// AggregateBandwidth is unbounded: NullFS absorbs any concurrency. (The
// storage.FlushModel hook.)
func (n *NullFS) AggregateBandwidth(opt FileOptions, read bool) float64 {
	return math.Inf(1)
}

// AlignUnit matches OptimalUnit. (The storage.FlushModel hook.)
func (n *NullFS) AlignUnit(opt FileOptions) int64 { return 1 << 20 }

func (n *NullFS) Write(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	f.recordWrite(node, p.Now(), segs)
	return blockingWrite(p, node, "nullfs-write", false, segs, p.Now()+n.PerOp)
}

func (n *NullFS) WriteSieved(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	f.recordWrite(node, p.Now(), segs)
	lo, hi := SpanAll(segs)
	f.bytesRead += hi - lo
	return blockingWrite(p, node, "nullfs-write-sieved", false, segs, p.Now()+2*n.PerOp)
}

func (n *NullFS) WriteAsync(p *sim.Proc, node int, f *File, segs []Seg) *sim.Event {
	f.recordWrite(node, p.Now(), segs)
	return asyncEvent(p, node, "nullfs-write", false, segs, p.Now()+n.PerOp)
}

func (n *NullFS) Read(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	f.recordRead(segs)
	return blockingWrite(p, node, "nullfs-read", true, segs, p.Now()+n.PerOp)
}

func (n *NullFS) ReadAsync(p *sim.Proc, node int, f *File, segs []Seg) *sim.Event {
	f.recordRead(segs)
	return asyncEvent(p, node, "nullfs-read", true, segs, p.Now()+n.PerOp)
}
