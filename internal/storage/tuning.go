package storage

// Autotuner-facing hooks. The simulation models in this package price I/O by
// reserving shared resources in virtual time; the autotuner (internal/tune)
// needs the same calibration as pure arithmetic — no reservations, no state
// mutation — so it can score thousands of candidate configurations without
// touching a machine. Systems implement these interfaces structurally;
// consumers probe with a type assertion (FlushModelOf, StripeAdvisorOf) and
// fall back to a generic bandwidth model when a system has no opinion.

// FlushModel prices one aggregator's buffer flush analytically.
type FlushModel interface {
	// EstimateFlush returns the single-stream seconds for one client to
	// write (or read, when read is true) bytes laid out in runs contiguous
	// file runs, against a file created with opt. It mirrors the
	// calibration of the system's reservation path without booking anything.
	EstimateFlush(opt FileOptions, bytes, runs int64, read bool) float64
	// AggregateBandwidth returns the system-wide bytes/second ceiling for
	// concurrent flushes against one file created with opt (OST ceilings on
	// Lustre, ION/backend ceilings on GPFS). Concurrency beyond this rate
	// buys nothing.
	AggregateBandwidth(opt FileOptions, read bool) float64
	// AlignUnit returns the optimal write granularity for a file created
	// with opt — OptimalUnit without needing the file to exist.
	AlignUnit(opt FileOptions) int64
}

// StripeAdvisor is implemented by systems with tunable striping: it
// recommends file-creation options matched to an aggregation configuration.
type StripeAdvisor interface {
	// RecommendStripe returns the FileOptions for a file of totalBytes
	// written by aggregators clients flushing bufSize-byte buffers.
	RecommendStripe(totalBytes, bufSize int64, aggregators int) FileOptions
}

// FlushModelOf extracts the FlushModel hook from a system, or nil. Wrapper
// systems that expose Unwrap (the fault-injection wrapper) are seen
// through: a fault plan changes timing, not calibration.
func FlushModelOf(sys System) FlushModel {
	for sys != nil {
		if m, ok := sys.(FlushModel); ok {
			return m
		}
		u, ok := sys.(interface{ Unwrap() System })
		if !ok {
			break
		}
		sys = u.Unwrap()
	}
	return nil
}

// StripeAdvisorOf extracts the StripeAdvisor hook from a system, or nil.
// Sees through Unwrap like FlushModelOf.
func StripeAdvisorOf(sys System) StripeAdvisor {
	for sys != nil {
		if a, ok := sys.(StripeAdvisor); ok {
			return a
		}
		u, ok := sys.(interface{ Unwrap() System })
		if !ok {
			break
		}
		sys = u.Unwrap()
	}
	return nil
}
