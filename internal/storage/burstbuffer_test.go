package storage

import (
	"testing"

	"tapioca/internal/sim"
)

func TestBurstBufferFasterThanBacking(t *testing.T) {
	topo, fab := thetaRig(512)
	lustre := NewLustre(topo, fab, LustreConfig{})
	bb := NewBurstBuffer(lustre, BurstBufferConfig{Servers: 4})
	f := bb.Create("f", FileOptions{StripeCount: 4, StripeSize: 8 << 20})
	e := sim.NewEngine()
	var staged, direct int64
	e.Spawn("w", func(p *sim.Proc) {
		t0 := p.Now()
		bb.Write(p, 0, f, []Seg{Contig(0, 32<<20)})
		staged = p.Now() - t0

		g := lustre.Create("g", FileOptions{StripeCount: 4, StripeSize: 8 << 20})
		t0 = p.Now()
		lustre.Write(p, 0, g, []Seg{Contig(0, 32<<20)})
		direct = p.Now() - t0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if staged >= direct/3 {
		t.Fatalf("burst buffer (%d) not clearly faster than direct (%d)", staged, direct)
	}
}

func TestBurstBufferDrainReachesBacking(t *testing.T) {
	topo, fab := thetaRig(512)
	lustre := NewLustre(topo, fab, LustreConfig{})
	bb := NewBurstBuffer(lustre, BurstBufferConfig{})
	f := bb.Create("f", FileOptions{StripeCount: 2, StripeSize: 4 << 20})
	e := sim.NewEngine()
	e.Spawn("w", func(p *sim.Proc) {
		bb.Write(p, 0, f, []Seg{Contig(0, 8<<20)})
		stagedAt := p.Now()
		drainedAt := bb.Flush(p)
		if drainedAt <= stagedAt {
			t.Errorf("drain (%d) not after staging (%d)", drainedAt, stagedAt)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if f.BytesWritten() != 8<<20 {
		t.Fatalf("backing file bytes = %d", f.BytesWritten())
	}
	if bb.StagedBytes() != 8<<20 {
		t.Fatalf("staged bytes = %d", bb.StagedBytes())
	}
}

func TestBurstBufferReadsAndAsync(t *testing.T) {
	topo, fab := thetaRig(512)
	bb := NewBurstBuffer(NewLustre(topo, fab, LustreConfig{}), BurstBufferConfig{})
	f := bb.Create("f", FileOptions{})
	e := sim.NewEngine()
	e.Spawn("w", func(p *sim.Proc) {
		ev := bb.WriteAsync(p, 0, f, []Seg{Contig(0, 1<<20)})
		ev.Wait(p)
		bb.Read(p, 0, f, []Seg{Contig(0, 1<<20)})
		rv := bb.ReadAsync(p, 0, f, []Seg{Contig(0, 1<<20)})
		rv.Wait(p)
		bb.Flush(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if f.BytesRead() != 2<<20 {
		t.Fatalf("bytes read = %d", f.BytesRead())
	}
}

func TestBurstBufferServersSpread(t *testing.T) {
	topo, fab := thetaRig(512)
	bb := NewBurstBuffer(NewNullFS(), BurstBufferConfig{Servers: 4})
	_ = topo
	_ = fab
	f := bb.Create("f", FileOptions{})
	e := sim.NewEngine()
	e.Spawn("w", func(p *sim.Proc) {
		// Writes at widely spaced offsets should hash to multiple servers:
		// total time must beat a single-server serialization.
		for i := 0; i < 8; i++ {
			bb.WriteAsync(p, 0, f, []Seg{Contig(int64(i)*256<<20, 64<<20)})
		}
		bb.Flush(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	serial := 8 * sim.TransferTime(64<<20, 5e9)
	if e.Now() >= serial {
		t.Fatalf("writes serialized on one server: %d >= %d", e.Now(), serial)
	}
}

func TestPageFootprint(t *testing.T) {
	// Dense contiguous: footprint == bytes.
	if got := PageFootprint([]Seg{Contig(0, 1<<20)}, 4096); got != 1<<20 {
		t.Fatalf("contig footprint = %d", got)
	}
	// 4 bytes every 38: denser than a page → whole span.
	s := Strided(0, 4, 38, 10000)
	if got := PageFootprint([]Seg{s}, 4096); got != s.End() {
		t.Fatalf("sub-page-stride footprint = %d, want span %d", got, s.End())
	}
	// 4 bytes every 64 KB: one page per run.
	w := Strided(0, 4, 64<<10, 100)
	if got := PageFootprint([]Seg{w}, 4096); got != 100*4096 {
		t.Fatalf("wide-stride footprint = %d, want %d", got, 100*4096)
	}
	if PageFootprint(nil, 4096) != 0 {
		t.Fatal("empty footprint")
	}
}
