package storage

import (
	"fmt"

	"tapioca/internal/netsim"
	"tapioca/internal/sim"
	"tapioca/internal/topology"
)

// LustreConfig calibrates the Theta-like Lustre model. The defaults give a
// single write stream ≈145 MB/s to one OST (latency-bound) and an OST
// ceiling of 0.42 GB/s under concurrency — matching the paper's observation
// that aggregator counts of 2–8 per OST are needed to approach peak.
type LustreConfig struct {
	// NumOST is the object storage target count (56 on Theta).
	NumOST int
	// OSTBandwidth is the per-OST write ceiling. Default 0.42 GB/s.
	OSTBandwidth float64
	// ReadFactor scales read bandwidth per OST. Default 2.0.
	ReadFactor float64
	// RPCSize is the Lustre RPC granularity. Default 1 MB.
	RPCSize int64
	// RPCLatency is the per-RPC round-trip seen by one stream; a single
	// stream is latency-bound while concurrent streams fill the gaps.
	// Default 4.5 ms.
	RPCLatency int64
	// ObjectSetup is the per-object stream setup cost within one flush
	// (lock + layout work when a write spans OST objects — the Table I
	// super-stripe penalty). Default 3 ms.
	ObjectSetup int64
	// LockRevocation is the extent-lock bounce penalty paid when a stripe
	// last written by another client is written again (the Table I
	// sub-stripe penalty). Default 1.5 ms.
	LockRevocation int64
	// LNETBandwidth is the per-LNET-router IB bandwidth. Default 7 GB/s.
	LNETBandwidth float64
	// PerRunCost is the client cost per contiguous run. Default 1 µs.
	PerRunCost int64
	// DefaultStripeCount and DefaultStripeSize apply to files created
	// without explicit options — stripe count 1 and 1 MB stripes, the
	// platform defaults whose poor performance Figure 8 demonstrates.
	DefaultStripeCount int
	DefaultStripeSize  int64
}

func (c *LustreConfig) setDefaults() {
	if c.NumOST <= 0 {
		c.NumOST = 56
	}
	if c.OSTBandwidth <= 0 {
		c.OSTBandwidth = 0.42e9
	}
	if c.ReadFactor <= 0 {
		c.ReadFactor = 2.0
	}
	if c.RPCSize <= 0 {
		c.RPCSize = 1 << 20
	}
	if c.RPCLatency <= 0 {
		c.RPCLatency = 4500 * sim.Microsecond
	}
	if c.ObjectSetup <= 0 {
		c.ObjectSetup = 3 * sim.Millisecond
	}
	if c.LockRevocation <= 0 {
		c.LockRevocation = 1500 * sim.Microsecond
	}
	if c.LNETBandwidth <= 0 {
		c.LNETBandwidth = 7e9
	}
	if c.PerRunCost <= 0 {
		c.PerRunCost = 1000
	}
	if c.DefaultStripeCount <= 0 {
		c.DefaultStripeCount = 1
	}
	if c.DefaultStripeSize <= 0 {
		c.DefaultStripeSize = 1 << 20
	}
}

// Lustre models the Theta storage path: compute node → (dragonfly) → LNET
// service node → OSS/OST, with per-file striping and extent locks.
type Lustre struct {
	cfg  LustreConfig
	topo *topology.Dragonfly
	fab  *netsim.Fabric

	osts []*sim.GapResource
	lnet []*sim.GapResource

	files   map[string]*File
	fileSeq int

	segScratch []Seg // reusable compaction buffer (engine procs are serial)

	// Per-OST chunk scratch reused across reserve calls (engine procs are
	// serial): indexed by OST, with chunkOrder tracking touched entries.
	chunkBytes    []int64
	chunkConflict []int64
	chunkOrder    []int
}

type lustreFile struct {
	stripeCount int
	stripeSize  int64
	ostOffset   int
	stripeOwner map[int64]int // stripe index → last writer node
}

// NewLustre builds a Lustre model attached to a dragonfly and its fabric.
// The dragonfly must have service nodes (they carry LNET traffic).
func NewLustre(topo *topology.Dragonfly, fab *netsim.Fabric, cfg LustreConfig) *Lustre {
	cfg.setDefaults()
	if topo.ServiceNodes == 0 {
		panic("storage: Lustre requires a dragonfly with service nodes")
	}
	l := &Lustre{cfg: cfg, topo: topo, fab: fab, files: map[string]*File{}}
	l.osts = make([]*sim.GapResource, cfg.NumOST)
	for i := range l.osts {
		l.osts[i] = sim.NewGapResource(fmt.Sprintf("ost-%d", i), cfg.OSTBandwidth)
	}
	l.lnet = make([]*sim.GapResource, topo.ServiceNodes)
	for i := range l.lnet {
		l.lnet[i] = sim.NewGapResource(fmt.Sprintf("lnet-ib-%d", i), cfg.LNETBandwidth)
	}
	return l
}

// Config returns the effective configuration.
func (l *Lustre) Config() LustreConfig { return l.cfg }

func (l *Lustre) Name() string { return "lustre" }

func (l *Lustre) Create(name string, opt FileOptions) *File {
	if opt.StripeCount <= 0 {
		opt.StripeCount = l.cfg.DefaultStripeCount
	}
	if opt.StripeCount > l.cfg.NumOST {
		opt.StripeCount = l.cfg.NumOST
	}
	if opt.StripeSize <= 0 {
		opt.StripeSize = l.cfg.DefaultStripeSize
	}
	f := &File{Name: name, Opt: opt, impl: &lustreFile{
		stripeCount: opt.StripeCount,
		stripeSize:  opt.StripeSize,
		ostOffset:   l.fileSeq % l.cfg.NumOST,
		stripeOwner: map[int64]int{},
	}}
	l.fileSeq++
	l.files[name] = f
	return f
}

func (l *Lustre) Lookup(name string) *File { return l.files[name] }

// OptimalUnit is the file's stripe size (paper Table I: aggregation buffers
// should match it 1:1).
func (l *Lustre) OptimalUnit(f *File) int64 {
	return f.impl.(*lustreFile).stripeSize
}

// OSTOf returns the global OST index holding the given stripe of the file.
func (l *Lustre) OSTOf(f *File, stripe int64) int {
	lf := f.impl.(*lustreFile)
	return (lf.ostOffset + int(stripe%int64(lf.stripeCount))) % l.cfg.NumOST
}

// reserve books a write or read through the Lustre path.
func (l *Lustre) reserve(now int64, node int, f *File, segs []Seg, read bool) int64 {
	lf := f.impl.(*lustreFile)
	bytes := TotalBytes(segs)
	if bytes == 0 {
		return now + l.cfg.RPCLatency
	}
	// Fold window-clipping fragments back into whole patterns before the
	// stripe math: the per-stripe walk below is then linear in runs, not in
	// fragments, and the run set (hence the pricing) is unchanged.
	l.segScratch = CompactInto(l.segScratch, segs)
	segs = l.segScratch
	runs := TotalRuns(segs)
	t0 := now + runs*l.cfg.PerRunCost

	// Partition the access by stripe, grouping chunks per OST object.
	lo, hi := SpanAll(segs)
	S := lf.stripeSize
	if l.chunkBytes == nil {
		l.chunkBytes = make([]int64, l.cfg.NumOST)
		l.chunkConflict = make([]int64, l.cfg.NumOST)
	}
	ostOrder := l.chunkOrder[:0]
	for s := lo / S; s <= (hi-1)/S; s++ {
		var b int64
		for _, sg := range segs {
			b += sg.BytesIn(s*S, (s+1)*S)
		}
		if b == 0 {
			continue
		}
		ost := l.OSTOf(f, s)
		if l.chunkBytes[ost] == 0 && l.chunkConflict[ost] == 0 {
			ostOrder = append(ostOrder, ost)
		}
		l.chunkBytes[ost] += b
		if !read {
			if owner, ok := lf.stripeOwner[s]; ok && owner != node {
				l.chunkConflict[ost] += l.cfg.LockRevocation
			}
			lf.stripeOwner[s] = node
		}
	}
	l.chunkOrder = ostOrder

	// One object stream per OST. Streams of one call are processed
	// serially by the issuing client (the Lustre client walks the layout
	// object by object — spanning objects buys no intra-call parallelism,
	// which is why super-stripe aggregation buffers lose in Table I).
	// Within a stream, RPCs are serialized by the round-trip latency, so a
	// single stream is latency-bound while concurrent clients fill the
	// OST's idle gaps.
	ostRate := l.cfg.OSTBandwidth
	if read {
		ostRate *= l.cfg.ReadFactor
	}
	cur := t0
	for _, ost := range ostOrder {
		ckBytes, ckConflict := l.chunkBytes[ost], l.chunkConflict[ost]
		l.chunkBytes[ost], l.chunkConflict[ost] = 0, 0 // reset for the next call
		lnetIdx := ost % len(l.lnet)
		lnetNode := l.topo.ServiceNode(lnetIdx)
		var stageIn int64
		if read {
			// Reads start with a small request message (pure latency) and
			// flow back LNET→client afterwards.
			stageIn = cur + l.fab.LatencyTo(node, lnetNode)
			_, stageIn = l.lnet[lnetIdx].Reserve(stageIn, ckBytes)
		} else {
			_, arr := l.fab.Reserve(cur, node, lnetNode, ckBytes)
			_, stageIn = l.lnet[lnetIdx].Reserve(arr, ckBytes)
		}
		cur = stageIn + ckConflict + l.cfg.ObjectSetup
		remaining := ckBytes
		for remaining > 0 {
			rpc := minI64(remaining, l.cfg.RPCSize)
			dur := sim.TransferTime(rpc, ostRate)
			_, end := l.osts[ost].ReserveDur(cur, dur, rpc)
			cur = end + l.cfg.RPCLatency
			remaining -= rpc
		}
		if read {
			// Deliver the data over the fabric to the client.
			_, arr := l.fab.Reserve(cur, lnetNode, node, ckBytes)
			cur = arr
		}
	}
	return cur
}

// resolveOpt applies the creation-time clamping to options that may not have
// been resolved yet (the autotuner prices candidate files before creating
// them).
func (l *Lustre) resolveOpt(opt FileOptions) (count int, size int64) {
	count, size = opt.StripeCount, opt.StripeSize
	if count <= 0 {
		count = l.cfg.DefaultStripeCount
	}
	if count > l.cfg.NumOST {
		count = l.cfg.NumOST
	}
	if size <= 0 {
		size = l.cfg.DefaultStripeSize
	}
	return count, size
}

// EstimateFlush prices a single client stream analytically, mirroring
// reserve: per-run marshaling, LNET staging, then per OST object a stream
// setup plus latency-bound serial RPCs. (The storage.FlushModel hook.)
func (l *Lustre) EstimateFlush(opt FileOptions, bytes, runs int64, read bool) float64 {
	if bytes <= 0 {
		return sim.ToSeconds(l.cfg.RPCLatency)
	}
	count, size := l.resolveOpt(opt)
	ostRate := l.cfg.OSTBandwidth
	if read {
		ostRate *= l.cfg.ReadFactor
	}
	stripes := (bytes + size - 1) / size
	objects := stripes
	if objects > int64(count) {
		objects = int64(count) // reserve groups same-OST stripes into one chunk
	}
	perObject := (bytes + objects - 1) / objects
	rpcs := (perObject + l.cfg.RPCSize - 1) / l.cfg.RPCSize
	sec := sim.ToSeconds(runs*l.cfg.PerRunCost) + float64(bytes)/l.cfg.LNETBandwidth
	sec += float64(objects) * (sim.ToSeconds(l.cfg.ObjectSetup) +
		float64(perObject)/ostRate + float64(rpcs)*sim.ToSeconds(l.cfg.RPCLatency))
	return sec
}

// AggregateBandwidth is the concurrent-flush ceiling for one file: its OSTs'
// combined rate, capped by the LNET routers. (The storage.FlushModel hook.)
func (l *Lustre) AggregateBandwidth(opt FileOptions, read bool) float64 {
	count, _ := l.resolveOpt(opt)
	ostRate := l.cfg.OSTBandwidth
	if read {
		ostRate *= l.cfg.ReadFactor
	}
	agg := float64(count) * ostRate
	if lnet := float64(len(l.lnet)) * l.cfg.LNETBandwidth; lnet < agg {
		agg = lnet
	}
	return agg
}

// AlignUnit is OptimalUnit for a file that need not exist yet. (The
// storage.FlushModel hook.)
func (l *Lustre) AlignUnit(opt FileOptions) int64 {
	_, size := l.resolveOpt(opt)
	return size
}

// RecommendStripe implements storage.StripeAdvisor: stripe size matches the
// aggregation buffer 1:1 (the paper's Table I optimum — every flush is one
// OST object, no super-stripe setup costs, no sub-stripe lock sharing) and
// the file stripes across every OST it can keep busy.
func (l *Lustre) RecommendStripe(totalBytes, bufSize int64, aggregators int) FileOptions {
	if bufSize <= 0 {
		bufSize = l.cfg.DefaultStripeSize
	}
	count := l.cfg.NumOST
	if stripes := (totalBytes + bufSize - 1) / bufSize; stripes > 0 && stripes < int64(count) {
		count = int(stripes)
	}
	return FileOptions{StripeCount: count, StripeSize: bufSize}
}

func (l *Lustre) Write(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	f.recordWrite(node, p.Now(), segs)
	return blockingWrite(p, node, "lustre-write", false, segs, l.reserve(p.Now(), node, f, segs, false))
}

func (l *Lustre) WriteAsync(p *sim.Proc, node int, f *File, segs []Seg) *sim.Event {
	f.recordWrite(node, p.Now(), segs)
	return asyncEvent(p, node, "lustre-write", false, segs, l.reserve(p.Now(), node, f, segs, false))
}

// WriteSieved on Lustre models page-granular writeback rather than a
// read-modify-write: the client dirties whole 4 KB pages, so a sparse
// pattern transfers its page footprint (up to the whole span), with no
// sieve read — Lustre client mechanics, unlike the BG/Q GPFS path.
func (l *Lustre) WriteSieved(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	f.recordWrite(node, p.Now(), segs)
	lo, _ := SpanAll(segs)
	footprint := PageFootprint(segs, 4096)
	span := []Seg{Contig(lo, footprint)}
	return blockingWrite(p, node, "lustre-write-sieved", false, span, l.reserve(p.Now(), node, f, span, false))
}

func (l *Lustre) Read(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	f.recordRead(segs)
	return blockingWrite(p, node, "lustre-read", true, segs, l.reserve(p.Now(), node, f, segs, true))
}

func (l *Lustre) ReadAsync(p *sim.Proc, node int, f *File, segs []Seg) *sim.Event {
	f.recordRead(segs)
	return asyncEvent(p, node, "lustre-read", true, segs, l.reserve(p.Now(), node, f, segs, true))
}
