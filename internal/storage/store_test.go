package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

func testStoreRoundTrip(t *testing.T, st Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	// Sparse writes far apart, crossing chunk boundaries.
	writes := map[int64][]byte{}
	for i := 0; i < 40; i++ {
		off := int64(rng.Intn(1 << 22))
		buf := make([]byte, 1+rng.Intn(200<<10/4))
		rng.Read(buf)
		if _, err := st.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
		writes[off] = buf
	}
	for off, want := range writes {
		got := make([]byte, len(want))
		if _, err := st.ReadAt(got, off); err != nil {
			t.Fatal(err)
		}
		// Later overlapping writes may have won; verify byte-wise against a
		// reference replay below instead for overlaps — here just check no
		// error and correct length. Full content equality is covered by the
		// reference comparison.
		_ = got
	}
	// Reference replay: apply the same writes to a flat buffer and compare
	// a full read.
	const span = 1<<22 + 256<<10
	ref := make([]byte, span)
	// Maps iterate randomly; replay deterministically by re-generating.
	rng = rand.New(rand.NewSource(11))
	st2 := NewMemStore()
	for i := 0; i < 40; i++ {
		off := int64(rng.Intn(1 << 22))
		buf := make([]byte, 1+rng.Intn(200<<10/4))
		rng.Read(buf)
		copy(ref[off:], buf)
		if _, err := st2.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, span)
	if _, err := st2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("store content diverges from reference replay")
	}
}

func TestMemStoreRoundTrip(t *testing.T) { testStoreRoundTrip(t, NewMemStore()) }

func TestMemStoreHolesReadZero(t *testing.T) {
	st := NewMemStore()
	if _, err := st.WriteAt([]byte{1, 2, 3}, 1<<30); err != nil {
		t.Fatal(err)
	}
	buf := []byte{9, 9, 9, 9}
	if _, err := st.ReadAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("hole byte %d = %d", i, b)
		}
	}
	if st.Size() != 1<<30+3 {
		t.Fatalf("Size = %d", st.Size())
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "backing.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.WriteAt([]byte("hello"), 1000); err != nil {
		t.Fatal(err)
	}
	// Reads past EOF zero-fill (sparse-hole semantics).
	buf := make([]byte, 10)
	if _, err := fs.ReadAt(buf, 1002); err != nil {
		t.Fatal(err)
	}
	if string(buf[:3]) != "llo" {
		t.Fatalf("got %q", buf[:3])
	}
	for i := 3; i < 10; i++ {
		if buf[i] != 0 {
			t.Fatalf("EOF byte %d = %d", i, buf[i])
		}
	}
}

func TestFileStoreWriteStrided(t *testing.T) {
	f := &File{Name: "t"}
	segs := []Seg{Strided(0, 2, 10, 3)} // runs at 0, 10, 20
	src := []byte{1, 2, 3, 4, 5, 6}
	if err := f.StoreWrite(segs, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 6)
	if err := f.StoreRead(segs, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("round trip got %v", dst)
	}
	// Holes between runs stay zero.
	hole := make([]byte, 1)
	if err := f.StoreReadAt(hole, 5); err != nil {
		t.Fatal(err)
	}
	if hole[0] != 0 {
		t.Fatalf("hole = %d", hole[0])
	}
	// Short payloads error descriptively.
	if err := f.StoreWrite(segs, src[:5]); err == nil {
		t.Fatal("short payload accepted")
	}
	// Checksum matches between write-side and read-side extents.
	crc, err := f.StoreChecksum(segs)
	if err != nil {
		t.Fatal(err)
	}
	crc2, err := f.StoreChecksum([]Seg{Contig(0, 2), Contig(10, 2), Contig(20, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if crc != crc2 {
		t.Fatal("checksum differs across equivalent extent lists")
	}
}

func TestCaptureLimit(t *testing.T) {
	f := &File{Name: "cap"}
	f.SetCapture(true)
	f.SetCaptureLimit(3)
	for i := 0; i < 5; i++ {
		f.recordWrite(0, int64(i), []Seg{Contig(int64(i)*10, 10)})
	}
	if len(f.Writes()) != 3 {
		t.Fatalf("retained %d records, want 3", len(f.Writes()))
	}
	if f.CaptureDropped() != 2 {
		t.Fatalf("dropped = %d, want 2", f.CaptureDropped())
	}
	if f.BytesWritten() != 50 {
		t.Fatalf("byte accounting broke under the cap: %d", f.BytesWritten())
	}
	if err := f.VerifyCoverage(0, 50); err == nil {
		t.Fatal("VerifyCoverage accepted a truncated capture")
	}
}
