package storage

import (
	"fmt"

	"tapioca/internal/netsim"
	"tapioca/internal/sim"
	"tapioca/internal/topology"
)

// GPFS lock modes.
const (
	// LockExclusive is the default GPFS byte-range token behaviour: a block
	// written by different nodes bounces its write token, paying a
	// revocation each time ownership moves.
	LockExclusive = iota
	// LockShared models the Mira tuning the paper applies ("reducing lock
	// contention by sharing file locks"): no token bouncing.
	LockShared
)

// GPFSConfig calibrates the Mira-like GPFS model. Zero values take defaults
// chosen so a Pset's measured peak matches the paper (≈2.8 GB/s per Pset;
// 89.6 GB/s on 4,096 nodes).
type GPFSConfig struct {
	// BlockSize is the GPFS block (and lock) granularity. Default 8 MB.
	BlockSize int64
	// IONBandwidth is the effective per-ION bandwidth to storage,
	// including forwarding overheads. Default 2.8 GB/s.
	IONBandwidth float64
	// BridgeLinkBW is the bandwidth of each of the two bridge-node→ION
	// links of a Pset. Default 1.8 GB/s.
	BridgeLinkBW float64
	// FileBW is the per-file backend ceiling: a single shared file cannot
	// exceed it regardless of Pset count (GPFS allocation maps one file
	// onto a bounded NSD set), which is why the paper's Mira experiments
	// use file-per-Pset subfiling. Default 13 GB/s.
	FileBW float64
	// BackendBW is the global file system ceiling. Default 240 GB/s.
	BackendBW float64
	// PerOpOverhead is the server-side cost per write/read call. Default
	// 250 µs.
	PerOpOverhead int64
	// PerRunCost is the client/forwarder cost per contiguous run within a
	// call (marshaling tiny strided runs is what makes unsieved AoS writes
	// catastrophic). Default 1.5 µs.
	PerRunCost int64
	// LockMode is LockExclusive (default) or LockShared.
	LockMode int
	// LockRevocation is the per-block token-bounce penalty. Default 500 µs.
	LockRevocation int64
	// TokenRevoke is paid in exclusive mode whenever the writing node of a
	// file changes: the previous holder's write token is revoked and its
	// cached dirty data written back. With many aggregators interleaving
	// rounds this dominates — the contention the paper's "lock sharing"
	// tuning removes. Default 10 ms.
	TokenRevoke int64
	// ReadTokenGrant is paid in exclusive mode for each (node, block) read
	// token acquisition. Default 500 µs.
	ReadTokenGrant int64
	// ReadFactor scales read bandwidth relative to write. Default 1.25.
	ReadFactor float64
}

func (c *GPFSConfig) setDefaults() {
	if c.BlockSize <= 0 {
		c.BlockSize = 8 << 20
	}
	if c.IONBandwidth <= 0 {
		c.IONBandwidth = 2.8e9
	}
	if c.BridgeLinkBW <= 0 {
		c.BridgeLinkBW = 1.8e9
	}
	if c.FileBW <= 0 {
		c.FileBW = 13e9
	}
	if c.BackendBW <= 0 {
		c.BackendBW = 240e9
	}
	if c.PerOpOverhead <= 0 {
		c.PerOpOverhead = 250 * sim.Microsecond
	}
	if c.PerRunCost <= 0 {
		c.PerRunCost = 1500
	}
	if c.LockRevocation <= 0 {
		c.LockRevocation = 500 * sim.Microsecond
	}
	if c.TokenRevoke <= 0 {
		c.TokenRevoke = 10 * sim.Millisecond
	}
	if c.ReadTokenGrant <= 0 {
		c.ReadTokenGrant = 500 * sim.Microsecond
	}
	if c.ReadFactor <= 0 {
		c.ReadFactor = 1.25
	}
}

// GPFS models the Mira storage path: compute node → (torus) → bridge node →
// ION → GPFS backend, with block-granular write tokens.
type GPFS struct {
	cfg  GPFSConfig
	topo *topology.Torus5D
	fab  *netsim.Fabric

	bridgeLinks [][2]*sim.GapResource // per Pset
	ionUplink   []*sim.GapResource    // per Pset
	backend     *sim.GapResource

	files map[string]*File

	segScratch []Seg   // reusable compaction buffer (engine procs are serial)
	bridgeOf   []int32 // per-node nearest-bridge cache (-1 = unfilled)
}

type gpfsFile struct {
	fileRes    *sim.GapResource // per-file backend ceiling
	blockOwner map[int64]int    // block index → last writer node
	lastWriter int              // last node to write the file (token holder)
	readGrants map[int64]bool   // (block<<20|node) read tokens granted
}

// NewGPFS builds a GPFS model attached to a BG/Q torus and its fabric.
func NewGPFS(topo *topology.Torus5D, fab *netsim.Fabric, cfg GPFSConfig) *GPFS {
	cfg.setDefaults()
	g := &GPFS{cfg: cfg, topo: topo, fab: fab, files: map[string]*File{}}
	psets := topo.IONodes()
	g.bridgeLinks = make([][2]*sim.GapResource, psets)
	g.ionUplink = make([]*sim.GapResource, psets)
	for i := 0; i < psets; i++ {
		g.bridgeLinks[i][0] = sim.NewGapResource(fmt.Sprintf("bridge-%d-0", i), cfg.BridgeLinkBW)
		g.bridgeLinks[i][1] = sim.NewGapResource(fmt.Sprintf("bridge-%d-1", i), cfg.BridgeLinkBW)
		g.ionUplink[i] = sim.NewGapResource(fmt.Sprintf("ion-%d", i), cfg.IONBandwidth)
	}
	g.backend = sim.NewGapResource("gpfs-backend", cfg.BackendBW)
	g.bridgeOf = make([]int32, topo.Nodes())
	for i := range g.bridgeOf {
		g.bridgeOf[i] = -1
	}
	return g
}

// nearestBridge memoizes topo.NearestBridge per node: every flush from a
// node resolves the same bridge, and the torus distance math is on the
// per-flush hot path.
func (g *GPFS) nearestBridge(node int) int {
	if b := g.bridgeOf[node]; b >= 0 {
		return int(b)
	}
	b := g.topo.NearestBridge(node)
	g.bridgeOf[node] = int32(b)
	return b
}

// Config returns the effective configuration.
func (g *GPFS) Config() GPFSConfig { return g.cfg }

// StageBusy reports cumulative busy time (ns) of the storage-path stages
// for diagnostics: per-Pset bridge links, per-Pset ION uplinks, and the
// global backend.
func (g *GPFS) StageBusy() (bridge, ion []int64, backend int64) {
	for i := range g.ionUplink {
		bridge = append(bridge, g.bridgeLinks[i][0].BusyTime()+g.bridgeLinks[i][1].BusyTime())
		ion = append(ion, g.ionUplink[i].BusyTime())
	}
	return bridge, ion, g.backend.BusyTime()
}

func (g *GPFS) Name() string { return "gpfs" }

func (g *GPFS) Create(name string, opt FileOptions) *File {
	f := &File{Name: name, Opt: opt, impl: &gpfsFile{
		fileRes:    sim.NewGapResource("gpfs-file-"+name, g.cfg.FileBW),
		blockOwner: map[int64]int{},
		lastWriter: -1,
		readGrants: map[int64]bool{},
	}}
	g.files[name] = f
	return f
}

func (g *GPFS) Lookup(name string) *File { return g.files[name] }

// OptimalUnit is the GPFS block size.
func (g *GPFS) OptimalUnit(f *File) int64 { return g.cfg.BlockSize }

// reserve books one transfer (write or read) through the storage path and
// returns its completion time.
func (g *GPFS) reserve(now int64, node int, f *File, segs []Seg, read bool) int64 {
	gf := f.impl.(*gpfsFile)
	bytes := TotalBytes(segs)
	if bytes == 0 {
		return now + g.cfg.PerOpOverhead
	}
	// Compaction keeps the block-token walk and per-run marshaling over whole
	// patterns rather than window-clipping fragments; the run set (hence the
	// price) is unchanged.
	g.segScratch = CompactInto(g.segScratch, segs)
	segs = g.segScratch
	runs := TotalRuns(segs)
	pset := g.topo.PsetOf(node)

	// Client-side marshaling of the runs.
	t := now + runs*g.cfg.PerRunCost

	// Torus hop to the nearest bridge node (contends with application
	// traffic on the fabric).
	bridge := g.nearestBridge(node)
	bridgeIdx := 0
	if bridge != g.topo.BridgeNodes(pset)[0] {
		bridgeIdx = 1
	}
	_, arrival := g.fab.Reserve(t, node, bridge, bytes)

	// Bridge link to the ION.
	_, t1 := g.bridgeLinks[pset][bridgeIdx].Reserve(arrival, bytes)

	// Token (lock) traffic in exclusive mode. The delay occupies the ION
	// (token negotiation stalls the forwarding pipeline), so it costs
	// throughput, not just latency.
	var lockDelay int64
	if g.cfg.LockMode == LockExclusive {
		lo, hi := SpanAll(segs)
		if read {
			for b := lo / g.cfg.BlockSize; b <= (hi-1)/g.cfg.BlockSize; b++ {
				key := b<<20 | int64(node)
				if !gf.readGrants[key] {
					gf.readGrants[key] = true
					lockDelay += g.cfg.ReadTokenGrant
				}
			}
		} else {
			if gf.lastWriter != node {
				if gf.lastWriter >= 0 {
					lockDelay += g.cfg.TokenRevoke
				}
				gf.lastWriter = node
			}
			for b := lo / g.cfg.BlockSize; b <= (hi-1)/g.cfg.BlockSize; b++ {
				if owner, ok := gf.blockOwner[b]; ok && owner != node {
					lockDelay += g.cfg.LockRevocation
				}
				gf.blockOwner[b] = node
			}
		}
	}

	// ION uplink: per-op overhead plus token stalls plus forwarded bytes.
	rate := g.cfg.IONBandwidth
	if read {
		rate *= g.cfg.ReadFactor
	}
	dur := g.cfg.PerOpOverhead + lockDelay + sim.TransferTime(bytes, rate)
	_, t2 := g.ionUplink[pset].ReserveDur(t1, dur, bytes)

	// Per-file ceiling, then the global backend.
	fileRate := g.cfg.FileBW
	backRate := g.cfg.BackendBW
	if read {
		fileRate *= g.cfg.ReadFactor
		backRate *= g.cfg.ReadFactor
	}
	_, t3 := gf.fileRes.ReserveDur(t2, sim.TransferTime(bytes, fileRate), bytes)
	_, t4 := g.backend.ReserveDur(t3, sim.TransferTime(bytes, backRate), bytes)
	return t4
}

// EstimateFlush prices a single client stream analytically, mirroring
// reserve's staged path: per-run marshaling, the per-op server overhead, and
// the bytes through the slowest stage a lone stream sees (its bridge link).
// Lock traffic is not charged — the autotuner targets the shared-lock,
// aligned configurations where it vanishes. (The storage.FlushModel hook.)
func (g *GPFS) EstimateFlush(opt FileOptions, bytes, runs int64, read bool) float64 {
	if bytes <= 0 {
		return sim.ToSeconds(g.cfg.PerOpOverhead)
	}
	ion := g.cfg.IONBandwidth
	if read {
		ion *= g.cfg.ReadFactor
	}
	rate := g.cfg.BridgeLinkBW
	if ion < rate {
		rate = ion
	}
	return sim.ToSeconds(runs*g.cfg.PerRunCost+g.cfg.PerOpOverhead) + float64(bytes)/rate
}

// AggregateBandwidth is the concurrent-flush ceiling for one shared file:
// every Pset's bridge links and ION uplink in parallel, capped by the
// per-file backend limit — the single-shared-file bound that motivates the
// paper's file-per-Pset subfiling. (The storage.FlushModel hook.)
func (g *GPFS) AggregateBandwidth(opt FileOptions, read bool) float64 {
	psets := float64(g.topo.IONodes())
	ion, file, back := g.cfg.IONBandwidth, g.cfg.FileBW, g.cfg.BackendBW
	if read {
		ion *= g.cfg.ReadFactor
		file *= g.cfg.ReadFactor
		back *= g.cfg.ReadFactor
	}
	agg := psets * 2 * g.cfg.BridgeLinkBW
	for _, cap := range []float64{psets * ion, file, back} {
		if cap < agg {
			agg = cap
		}
	}
	return agg
}

// AlignUnit is the GPFS block size regardless of options. (The
// storage.FlushModel hook.)
func (g *GPFS) AlignUnit(opt FileOptions) int64 { return g.cfg.BlockSize }

func (g *GPFS) Write(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	f.recordWrite(node, p.Now(), segs)
	return blockingWrite(p, node, "gpfs-write", false, segs, g.reserve(p.Now(), node, f, segs, false))
}

func (g *GPFS) WriteAsync(p *sim.Proc, node int, f *File, segs []Seg) *sim.Event {
	f.recordWrite(node, p.Now(), segs)
	return asyncEvent(p, node, "gpfs-write", false, segs, g.reserve(p.Now(), node, f, segs, false))
}

func (g *GPFS) WriteSieved(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	f.recordWrite(node, p.Now(), segs)
	lo, hi := SpanAll(segs)
	span := []Seg{Contig(lo, hi-lo)}
	f.bytesRead += hi - lo
	tRead := g.reserve(p.Now(), node, f, span, true)
	return blockingWrite(p, node, "gpfs-write-sieved", false, span, g.reserve(tRead, node, f, span, false))
}

func (g *GPFS) Read(p *sim.Proc, node int, f *File, segs []Seg) int64 {
	f.recordRead(segs)
	return blockingWrite(p, node, "gpfs-read", true, segs, g.reserve(p.Now(), node, f, segs, true))
}

func (g *GPFS) ReadAsync(p *sim.Proc, node int, f *File, segs []Seg) *sim.Event {
	f.recordRead(segs)
	return asyncEvent(p, node, "gpfs-read", true, segs, g.reserve(p.Now(), node, f, segs, true))
}
