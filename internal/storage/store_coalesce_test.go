package storage

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// randSegs generates a random declared pattern mixing contiguous extents,
// fully adjacent strided runs (Stride == Len, the coalescing fast case) and
// gapped strided runs, with occasional exact repeats so overlap-adjacent
// write ordering is exercised too.
func randSegs(rng *rand.Rand) []Seg {
	n := 1 + rng.Intn(6)
	segs := make([]Seg, 0, n)
	for i := 0; i < n; i++ {
		off := int64(rng.Intn(1 << 18))
		length := int64(1 + rng.Intn(300))
		switch rng.Intn(4) {
		case 0:
			segs = append(segs, Contig(off, length))
		case 1:
			segs = append(segs, Strided(off, length, length, int64(1+rng.Intn(8))))
		default:
			stride := length + int64(rng.Intn(200))
			segs = append(segs, Strided(off, length, stride, int64(1+rng.Intn(8))))
		}
		if rng.Intn(5) == 0 && len(segs) > 1 {
			segs = append(segs, segs[rng.Intn(len(segs))]) // overlap: repeat an earlier extent
		}
	}
	return segs
}

// storeWriteUncoalesced is the PR-5 reference path: one store call per run,
// in enumeration order.
func storeWriteUncoalesced(f *File, segs []Seg, src []byte) error {
	var pos int64
	for _, s := range segs {
		for i := int64(0); i < s.Count; i++ {
			if err := f.StoreWriteAt(src[pos:pos+s.Len], s.Off+i*s.Stride); err != nil {
				return err
			}
			pos += s.Len
		}
	}
	return nil
}

func storeReadUncoalesced(f *File, segs []Seg, dst []byte) error {
	var pos int64
	for _, s := range segs {
		for i := int64(0); i < s.Count; i++ {
			if err := f.StoreReadAt(dst[pos:pos+s.Len], s.Off+i*s.Stride); err != nil {
				return err
			}
			pos += s.Len
		}
	}
	return nil
}

// TestStoreWriteCoalescingMatchesUncoalesced is the coalescing equivalence
// property: for random strided/adjacent/overlapping patterns, the batched
// extent path must land byte-identical store content to the per-run path.
func TestStoreWriteCoalescingMatchesUncoalesced(t *testing.T) {
	rng := rand.New(rand.NewSource(20170905))
	for trial := 0; trial < 100; trial++ {
		segs := randSegs(rng)
		src := make([]byte, TotalBytes(segs))
		rng.Read(src)

		fast := &File{Name: "fast"}
		ref := &File{Name: "ref"}
		if err := fast.StoreWrite(segs, src); err != nil {
			t.Fatalf("trial %d: coalesced write: %v", trial, err)
		}
		if err := storeWriteUncoalesced(ref, segs, src); err != nil {
			t.Fatalf("trial %d: reference write: %v", trial, err)
		}

		lo, hi := SpanAll(segs)
		span := hi - lo
		a, b := make([]byte, span), make([]byte, span)
		if err := fast.StoreReadAt(a, lo); err != nil {
			t.Fatal(err)
		}
		if err := ref.StoreReadAt(b, lo); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("trial %d: coalesced and per-run writes landed different store content (segs %v)", trial, segs)
		}

		// Read path: both gather styles must return identical packed bytes.
		rd := make([]byte, len(src))
		rdRef := make([]byte, len(src))
		if err := fast.StoreRead(segs, rd); err != nil {
			t.Fatal(err)
		}
		if err := storeReadUncoalesced(fast, segs, rdRef); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rd, rdRef) {
			t.Fatalf("trial %d: coalesced and per-run reads returned different bytes", trial)
		}

		// The checksum must agree with the application-side CRC of what was
		// read back — and the parallel shard path with the serial one.
		sum, err := fast.StoreChecksum(segs)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := fast.storeChecksumSerial(segs)
		if err != nil {
			t.Fatal(err)
		}
		if sum != serial {
			t.Fatalf("trial %d: sharded checksum %#x != serial %#x", trial, sum, serial)
		}
		if want := CRC64(0, rd); sum != want {
			t.Fatalf("trial %d: store checksum %#x != CRC of read-back bytes %#x", trial, sum, want)
		}
	}
}

// TestStoreChecksumParallelMatchesSerial forces the sharded path with a
// payload big enough to cross the parallel threshold.
func TestStoreChecksumParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := &File{Name: "big"}
	segs := []Seg{
		Contig(0, 9<<20),
		Strided(16<<20, 64<<10, 128<<10, 96),
	}
	src := make([]byte, TotalBytes(segs))
	rng.Read(src)
	if err := f.StoreWrite(segs, src); err != nil {
		t.Fatal(err)
	}
	sum, err := f.StoreChecksum(segs)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := f.storeChecksumSerial(segs)
	if err != nil {
		t.Fatal(err)
	}
	if sum != serial {
		t.Fatalf("parallel checksum %#x != serial %#x", sum, serial)
	}
	if want := CRC64(0, src); sum != want {
		t.Fatalf("checksum %#x != CRC of source bytes %#x", sum, want)
	}
}

func TestSplitSegsPreservesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		segs := randSegs(rng)
		for _, parts := range []int{1, 2, 3, 5, 16} {
			split := SplitSegs(segs, parts)
			if len(split) > parts && parts > 0 {
				t.Fatalf("SplitSegs(%d) produced %d parts", parts, len(split))
			}
			var whole, pieces []int64 // (off, len) pairs flattened
			Enumerate(segs, 1<<20, func(off, n int64) { whole = append(whole, off, n) })
			var total int64
			for _, part := range split {
				Enumerate(part, 1<<20, func(off, n int64) { pieces = append(pieces, off, n) })
				total += TotalBytes(part)
			}
			if total != TotalBytes(segs) {
				t.Fatalf("split parts hold %d bytes, original %d", total, TotalBytes(segs))
			}
			// The concatenated parts must enumerate the same byte stream:
			// compare via byte-position walk (runs may split mid-run).
			if !sameByteStream(whole, pieces) {
				t.Fatalf("trial %d parts %d: split enumeration diverges from original", trial, parts)
			}
		}
	}
}

// sameByteStream checks two flattened (off, len) run lists describe the same
// ordered byte stream, allowing different run subdivision.
func sameByteStream(a, b []int64) bool {
	ai, bi := 0, 2
	var aOff, aLeft, bOff, bLeft int64
	next := func(l []int64, i *int, off, left *int64) bool {
		if *i >= len(l) {
			return false
		}
		*off, *left = l[*i], l[*i+1]
		*i += 2
		return true
	}
	ai, bi = 0, 0
	for {
		if aLeft == 0 && !next(a, &ai, &aOff, &aLeft) {
			return bLeft == 0 && bi >= len(b)
		}
		if bLeft == 0 && !next(b, &bi, &bOff, &bLeft) {
			return false
		}
		if aOff != bOff {
			return false
		}
		n := aLeft
		if bLeft < n {
			n = bLeft
		}
		aOff += n
		bOff += n
		aLeft -= n
		bLeft -= n
	}
}

// TestMemStoreConcurrentAccess exercises the store's synchronization the way
// the overlapped pipeline does: concurrent extent writers on disjoint ranges
// with concurrent readers (run under -race in CI).
func TestMemStoreConcurrentAccess(t *testing.T) {
	m := NewMemStore()
	const workers = 8
	const bytesPer = 256 << 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * bytesPer
			p := make([]byte, bytesPer)
			for i := range p {
				p[i] = byte(w)
			}
			if err := m.WriteExtents([]Extent{{Off: base, P: p[:bytesPer/2]}, {Off: base + bytesPer/2, P: p[bytesPer/2:]}}); err != nil {
				t.Error(err)
			}
			got := make([]byte, bytesPer)
			if err := m.ReadExtents([]Extent{{Off: base, P: got}}); err != nil {
				t.Error(err)
			}
			if !bytes.Equal(got, p) {
				t.Errorf("worker %d read back different bytes", w)
			}
		}(w)
	}
	wg.Wait()
}
