// Package netsim models data movement over an interconnect topology.
//
// A Fabric attaches contention resources to the NICs (and optionally every
// fabric link) of a topology.Topology and books transfers through them in
// virtual time. The transfer model is cut-through/wormhole style: a message
// occupies its whole path for bytes/bottleneck-bandwidth, pays per-hop
// latency once, and queues FIFO wherever it meets a busy resource. Incast
// (many-to-one aggregation traffic, the heart of two-phase I/O) therefore
// serializes naturally at the receiver NIC, and neighboring aggregators
// sharing torus links contend with each other under the link-level model —
// the effect the paper's topology-aware placement exploits.
package netsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"tapioca/internal/fault"
	"tapioca/internal/obs"
	"tapioca/internal/sim"
	"tapioca/internal/topology"
)

// Contention models.
const (
	// ContentionEndpoint books only the sender and receiver NICs. Fast and
	// adequate for storage-bound studies.
	ContentionEndpoint = iota
	// ContentionLinks books the NICs and every link along the route,
	// exposing path contention between concurrent flows.
	ContentionLinks
)

// Config tunes a Fabric. Zero values take topology-derived defaults.
type Config struct {
	// Contention selects ContentionEndpoint or ContentionLinks.
	Contention int
	// InjectRate is the per-node NIC injection bandwidth (bytes/sec).
	// Default: the topology's injection-level bandwidth.
	InjectRate float64
	// EjectRate is the per-node NIC ejection bandwidth (bytes/sec).
	// Default: InjectRate.
	EjectRate float64
	// LocalRate is the intra-node (shared-memory) transfer bandwidth.
	// Default: 8 GB/s.
	LocalRate float64
	// PerHopLatency overrides the topology's per-hop latency (ns).
	PerHopLatency int64
	// SoftwareOverhead is the per-message sender-side software cost (ns).
	// Default: 1 µs.
	SoftwareOverhead int64
}

// pathCacheEnabled gates the per-pair path cache on newly built fabrics.
// It exists so equivalence tests can run the uncached reference path; the
// cache never changes results, only the cost of computing them.
var pathCacheEnabled atomic.Bool

func init() { pathCacheEnabled.Store(true) }

// SetPathCache enables or disables path caching for subsequently constructed
// fabrics and returns the previous setting. Results are identical either
// way; the uncached mode re-derives every route per transfer (the reference
// behaviour equivalence tests compare against).
func SetPathCache(on bool) (prev bool) { return pathCacheEnabled.Swap(on) }

// pathEntry is one cached node pair: the route length, the minimum link rate
// along the route, and (link-contention mode) the route's link resources
// interned as a span of the fabric's arena.
type pathEntry struct {
	off, n     int32 // resArena[off : off+n]
	hops       int32
	bottleneck float64
}

// Fabric books transfers between nodes of a topology over shared resources.
// All methods must be called from the running sim proc (single-threaded
// virtual-time discipline).
type Fabric struct {
	topo topology.Topology
	cfg  Config

	minNIC float64 // min(InjectRate, EjectRate), folded once

	nicIn  []*sim.GapResource // lazily created on first use
	nicOut []*sim.GapResource
	links  []*sim.GapResource // lazily allocated, indexed by topology link id

	scratch []*sim.GapResource // reusable per-transfer resource list

	cachePaths bool
	stater     topology.PathStater // non-nil when topo supports PathStats
	paths      map[int64]pathEntry // (src*Nodes + dst) → cached path facts
	resArena   []*sim.GapResource  // interned link resources (links mode)
	resIDs     []int32             // topology link ids parallel to resArena

	// rec is the optional flight recorder: reservation spans on the NIC and
	// link timelines plus stride-sampled rolling-utilization counters. nil
	// when observability is off.
	rec        *obs.Recorder
	traceLinks []int32 // scratch: link ids of the transfer being traced

	distOnce sync.Once
	dist     *topology.DistanceCache

	// faults is the optional deterministic fault plan: straggler nodes,
	// degraded link windows and transient losses stretch transfer durations
	// before booking. nil when fault injection is off.
	faults *fault.Plan

	transfers  int64
	totalBytes int64

	// Fabric-vs-node split of the transfer counters: fabricMsgs counts only
	// inter-node messages (the traffic intra-node pre-aggregation is built
	// to cut), while localTransfers/localBytes count the staging copies
	// booked through ReserveLocal at memory bandwidth.
	fabricMsgs     int64
	localTransfers int64
	localBytes     int64
}

// New builds a fabric over the topology with the given configuration.
func New(topo topology.Topology, cfg Config) *Fabric {
	if cfg.InjectRate <= 0 {
		cfg.InjectRate = topo.Bandwidth(topology.LevelInjection)
	}
	if cfg.EjectRate <= 0 {
		cfg.EjectRate = cfg.InjectRate
	}
	if cfg.LocalRate <= 0 {
		cfg.LocalRate = 8e9
	}
	if cfg.PerHopLatency <= 0 {
		cfg.PerHopLatency = topo.Latency()
	}
	if cfg.SoftwareOverhead <= 0 {
		cfg.SoftwareOverhead = 1000
	}
	n := topo.Nodes()
	f := &Fabric{
		topo:       topo,
		cfg:        cfg,
		minNIC:     math.Min(cfg.InjectRate, cfg.EjectRate),
		nicIn:      make([]*sim.GapResource, n),
		nicOut:     make([]*sim.GapResource, n),
		links:      make([]*sim.GapResource, topo.NumLinks()),
		cachePaths: pathCacheEnabled.Load(),
	}
	f.stater, _ = topo.(topology.PathStater)
	if f.cachePaths {
		f.paths = make(map[int64]pathEntry)
	}
	return f
}

// Topology returns the underlying topology.
func (f *Fabric) Topology() topology.Topology { return f.topo }

// SetRecorder attaches a flight recorder. Call before the first transfer.
func (f *Fabric) SetRecorder(r *obs.Recorder) { f.rec = r }

// SetFaults attaches a deterministic fault plan. Call before the first
// transfer; nil disables injection.
func (f *Fabric) SetFaults(pl *fault.Plan) { f.faults = pl }

// Distances returns the machine-wide memoized distance cache over the
// fabric's topology. Every rank, session and cost model on the machine
// shares the same rows, so aggregator elections pay each node-pair distance
// once per machine rather than once per lookup.
func (f *Fabric) Distances() *topology.DistanceCache {
	f.distOnce.Do(func() {
		if f.dist == nil {
			f.dist = topology.NewDistanceCache(f.topo)
		}
	})
	return f.dist
}

// ShareDistances injects an externally shared distance cache (rows are
// lock-free and pure, so one cache may serve many fabrics over the same
// topology instance). Call before the first Distances use.
func (f *Fabric) ShareDistances(dc *topology.DistanceCache) { f.dist = dc }

// Config returns the fabric configuration actually in effect.
func (f *Fabric) Config() Config { return f.cfg }

// Transfers returns the number of transfers booked so far.
func (f *Fabric) Transfers() int64 { return f.transfers }

// TotalBytes returns the bytes moved across all transfers.
func (f *Fabric) TotalBytes() int64 { return f.totalBytes }

// FabricMessages returns the number of inter-node messages booked so far —
// Reserve calls whose source and destination nodes differ. Intra-node
// shared-memory copies (src == dst, or ReserveLocal staging copies) never
// touch fabric links and are excluded, so this is the counter intra-node
// pre-aggregation shrinks ppn-fold.
func (f *Fabric) FabricMessages() int64 { return f.fabricMsgs }

// LocalTransfers returns the number of staging copies booked via
// ReserveLocal.
func (f *Fabric) LocalTransfers() int64 { return f.localTransfers }

// LocalBytes returns the bytes moved by ReserveLocal staging copies.
func (f *Fabric) LocalBytes() int64 { return f.localBytes }

func (f *Fabric) link(id int) *sim.GapResource {
	r := f.links[id]
	if r == nil {
		r = sim.NewGapResource(fmt.Sprintf("link-%d", id), f.topo.LinkRate(id))
		f.links[id] = r
	}
	return r
}

// nicOutFor returns node i's injection NIC, creating it on first use — an
// idle node (common at paper scale, where only aggregators and their
// partners ever transfer) costs nothing.
func (f *Fabric) nicOutFor(i int) *sim.GapResource {
	r := f.nicOut[i]
	if r == nil {
		r = sim.NewGapResource(fmt.Sprintf("nic-out-%d", i), f.cfg.InjectRate)
		f.nicOut[i] = r
	}
	return r
}

// nicInFor returns node i's ejection NIC, creating it on first use.
func (f *Fabric) nicInFor(i int) *sim.GapResource {
	r := f.nicIn[i]
	if r == nil {
		r = sim.NewGapResource(fmt.Sprintf("nic-in-%d", i), f.cfg.EjectRate)
		f.nicIn[i] = r
	}
	return r
}

// path returns the cached path facts for a node pair, computing and interning
// them on first use. With caching disabled it returns a zero entry and
// ok = false; the caller re-derives the route per transfer.
func (f *Fabric) path(src, dst int) (pathEntry, bool) {
	if !f.cachePaths {
		return pathEntry{}, false
	}
	key := int64(src)*int64(f.topo.Nodes()) + int64(dst)
	if e, ok := f.paths[key]; ok {
		return e, true
	}
	e := f.buildPath(src, dst)
	f.paths[key] = e
	return e, true
}

// buildPath computes one pair's path facts. Endpoint-model fabrics over a
// PathStater topology stay route-free: hops and bottleneck come from the
// topology's compact tables and no link sequence is ever materialized.
func (f *Fabric) buildPath(src, dst int) pathEntry {
	if f.cfg.Contention != ContentionLinks && f.stater != nil {
		if hops, bn, ok := f.stater.PathStats(src, dst); ok {
			return pathEntry{hops: int32(hops), bottleneck: bn}
		}
	}
	route := f.topo.Route(src, dst)
	e := pathEntry{hops: int32(len(route)), bottleneck: math.Inf(1)}
	for _, l := range route {
		if r := f.topo.LinkRate(l); r < e.bottleneck {
			e.bottleneck = r
		}
	}
	if f.cfg.Contention == ContentionLinks {
		e.off = int32(len(f.resArena))
		e.n = int32(len(route))
		for _, l := range route {
			f.resArena = append(f.resArena, f.link(l))
			f.resIDs = append(f.resIDs, int32(l))
		}
	}
	return e
}

// Reserve books a transfer of bytes from src to dst starting no earlier than
// now, and returns:
//
//	senderFree — when the sender has finished injecting (its buffer is
//	             reusable; local completion for a put or eager send);
//	arrival    — when the last byte reaches dst.
//
// The reservation is one-sided: no proc at dst needs to participate, which
// is exactly MPI_Put semantics. Callers block (or not) on the returned times.
// In steady state (warm path cache) Reserve allocates nothing.
func (f *Fabric) Reserve(now int64, src, dst int, bytes int64) (senderFree, arrival int64) {
	f.transfers++
	f.totalBytes += bytes
	start := now + f.cfg.SoftwareOverhead

	if src == dst {
		// Intra-node: shared-memory copy, no NIC involvement.
		dur := sim.TransferTime(bytes, f.cfg.LocalRate)
		return start + dur, start + dur
	}
	f.fabricMsgs++

	// Collect the resources this transfer occupies. The NICs bound the
	// bandwidth; the path's minimum link rate tightens it further.
	tracing := f.rec.Tracing()
	if tracing {
		f.traceLinks = f.traceLinks[:0]
	}
	bottleneck := f.minNIC
	resources := append(f.scratch[:0], f.nicOutFor(src))
	var hops int
	if e, ok := f.path(src, dst); ok {
		hops = int(e.hops)
		if e.bottleneck < bottleneck {
			bottleneck = e.bottleneck
		}
		resources = append(resources, f.resArena[e.off:e.off+e.n]...)
		if tracing {
			f.traceLinks = append(f.traceLinks, f.resIDs[e.off:e.off+e.n]...)
		}
	} else {
		// Uncached reference path: walk the route per transfer.
		route := f.topo.Route(src, dst)
		hops = len(route)
		for _, l := range route {
			if rate := f.topo.LinkRate(l); rate < bottleneck {
				bottleneck = rate
			}
			if f.cfg.Contention == ContentionLinks {
				resources = append(resources, f.link(l))
				if tracing {
					f.traceLinks = append(f.traceLinks, int32(l))
				}
			}
		}
	}
	resources = append(resources, f.nicInFor(dst))

	// Wormhole model: the flow occupies its whole path for bytes/bottleneck
	// starting at the earliest instant every stage is simultaneously free
	// (gap-filling, so staggered flows pipeline through shared stages).
	dur := sim.TransferTime(bytes, bottleneck)
	if f.faults != nil {
		var eff fault.NetEffect
		if dur, eff = f.faults.Transfer(src, dst, start, dur, f.transfers); eff.Any() {
			reg := f.rec.Registry()
			if eff.Straggler {
				reg.Add(fault.MetricStragglerHits, 1)
			}
			if eff.Degraded {
				reg.Add(fault.MetricDegradedLinks, 1)
			}
			if eff.Loss {
				reg.Add(fault.MetricNetRetransmits, 1)
			}
		}
	}
	start, end := sim.ReserveTogether(start, dur, bytes, resources)
	// Only park the scratch once ReserveTogether is done with the list: an
	// earlier reset would let a reentrant Reserve overwrite live entries.
	f.scratch = resources[:0]
	if tracing {
		f.traceReserve(src, dst, start, end, bytes)
	}

	senderFree = end
	arrival = start + int64(hops)*f.cfg.PerHopLatency + dur
	return senderFree, arrival
}

// ReserveLocal books an intra-node staging copy of bytes on node, starting
// no earlier than now, and returns when it completes (the copier is busy for
// the whole copy, so senderFree == arrival). The copy moves at the
// configured LocalRate — memory bandwidth, never a fabric link or NIC — and
// is counted separately from Reserve's transfer counters: it is the
// member-to-leader hop of intra-node pre-aggregation, not a message. The
// fault plane does not reach in here; shared-memory copies are outside the
// network fault model.
func (f *Fabric) ReserveLocal(now int64, node int, bytes int64) (senderFree, arrival int64) {
	f.localTransfers++
	f.localBytes += bytes
	start := now + f.cfg.SoftwareOverhead
	end := start + sim.TransferTime(bytes, f.cfg.LocalRate)
	if f.rec.Tracing() {
		// Staging copies share the node's NIC timeline rows (they are node
		// activity) under their own span name, so Perfetto separates them
		// from real tx/rx traffic at a glance.
		rec := f.rec
		tid := int32(node) * 2
		rec.Span(obs.PIDNICs, tid, "net", "stage", start, end, bytes)
		if end > 0 && f.localTransfers%utilSampleStride == 0 {
			rec.Counter(obs.PIDNICs, tid, "stage.bytes", end, float64(f.localBytes))
		}
	}
	return end, end
}

// utilSampleStride throttles rolling-utilization counter emission: every
// Nth transfer samples the involved resources. Dense enough for a smooth
// Perfetto track, sparse enough that counters stay a small fraction of the
// span volume.
const utilSampleStride = 8

// traceReserve emits one booked transfer's reservation spans — injection
// NIC, ejection NIC, and each occupied link — plus, every
// utilSampleStride-th transfer, rolling busy-fraction counters for those
// resources. Virtual-time only, called from the running proc.
func (f *Fabric) traceReserve(src, dst int, start, end, bytes int64) {
	rec := f.rec
	txTID, rxTID := int32(src)*2, int32(dst)*2+1
	rec.Span(obs.PIDNICs, txTID, "net", "tx", start, end, bytes)
	rec.Span(obs.PIDNICs, rxTID, "net", "rx", start, end, bytes)
	for _, l := range f.traceLinks {
		rec.Span(obs.PIDLinks, l, "net", "xfer", start, end, bytes)
	}
	if end <= 0 || f.transfers%utilSampleStride != 0 {
		return
	}
	h := float64(end)
	rec.Counter(obs.PIDNICs, txTID, "util", end, float64(f.nicOut[src].BusyTime())/h)
	rec.Counter(obs.PIDNICs, rxTID, "util", end, float64(f.nicIn[dst].BusyTime())/h)
	for _, l := range f.traceLinks {
		rec.Counter(obs.PIDLinks, l, "util", end, float64(f.links[l].BusyTime())/h)
	}
}

// SnapshotMetrics folds the fabric's end-of-run statistics into a metrics
// registry: transfer and byte counters plus the distribution of busy-time
// fractions over [0, horizon] across every NIC and link that ever carried
// traffic (idle resources are never created, so they are excluded).
func (f *Fabric) SnapshotMetrics(reg *obs.Registry, horizon int64) {
	if reg == nil {
		return
	}
	reg.Add("net.transfers", f.transfers)
	reg.Add("net.bytes", f.totalBytes)
	reg.Add("net.fabric_messages", f.fabricMsgs)
	if f.localTransfers > 0 {
		reg.Add("net.local.transfers", f.localTransfers)
		reg.Add("net.local.bytes", f.localBytes)
	}
	if horizon <= 0 {
		return
	}
	h := float64(horizon)
	var maxLink, maxNIC float64
	for _, r := range f.links {
		if r == nil {
			continue
		}
		u := float64(r.BusyTime()) / h
		reg.Observe("net.link_utilization", u)
		if u > maxLink {
			maxLink = u
		}
	}
	for i := range f.nicIn {
		if r := f.nicIn[i]; r != nil {
			u := float64(r.BusyTime()) / h
			reg.Observe("net.nic_utilization", u)
			if u > maxNIC {
				maxNIC = u
			}
		}
		if r := f.nicOut[i]; r != nil {
			u := float64(r.BusyTime()) / h
			reg.Observe("net.nic_utilization", u)
			if u > maxNIC {
				maxNIC = u
			}
		}
	}
	if maxLink > 0 {
		reg.SetMax("net.max_link_utilization", maxLink)
	}
	if maxNIC > 0 {
		reg.SetMax("net.max_nic_utilization", maxNIC)
	}
}

// LatencyTo returns the pure request latency from src to dst (software
// overhead plus per-hop latency), with no resource booking — the cost of a
// small control message such as a read RPC request.
func (f *Fabric) LatencyTo(src, dst int) int64 {
	return f.cfg.SoftwareOverhead + int64(f.topo.Distance(src, dst))*f.cfg.PerHopLatency
}

// Send books a transfer and blocks the proc until the sender side completes
// (buffer reusable). It returns the arrival time at dst.
func (f *Fabric) Send(p *sim.Proc, src, dst int, bytes int64) (arrival int64) {
	senderFree, arrival := f.Reserve(p.Now(), src, dst, bytes)
	p.HoldUntil(senderFree)
	return arrival
}

// MaxNICUtilization returns the highest busy-time fraction across NICs up to
// horizon, a coarse hot-spot diagnostic. NICs are created on first transfer,
// so the scan covers only nodes that ever moved data — at paper scale the
// idle majority costs neither allocation nor scan time.
func (f *Fabric) MaxNICUtilization(horizon int64) float64 {
	if horizon <= 0 {
		return 0
	}
	var maxBusy int64
	for i := range f.nicIn {
		if r := f.nicIn[i]; r != nil {
			if b := r.BusyTime(); b > maxBusy {
				maxBusy = b
			}
		}
		if r := f.nicOut[i]; r != nil {
			if b := r.BusyTime(); b > maxBusy {
				maxBusy = b
			}
		}
	}
	return float64(maxBusy) / float64(horizon)
}
