// Package netsim models data movement over an interconnect topology.
//
// A Fabric attaches contention resources to the NICs (and optionally every
// fabric link) of a topology.Topology and books transfers through them in
// virtual time. The transfer model is cut-through/wormhole style: a message
// occupies its whole path for bytes/bottleneck-bandwidth, pays per-hop
// latency once, and queues FIFO wherever it meets a busy resource. Incast
// (many-to-one aggregation traffic, the heart of two-phase I/O) therefore
// serializes naturally at the receiver NIC, and neighboring aggregators
// sharing torus links contend with each other under the link-level model —
// the effect the paper's topology-aware placement exploits.
package netsim

import (
	"fmt"
	"sync"

	"tapioca/internal/sim"
	"tapioca/internal/topology"
)

// Contention models.
const (
	// ContentionEndpoint books only the sender and receiver NICs. Fast and
	// adequate for storage-bound studies.
	ContentionEndpoint = iota
	// ContentionLinks books the NICs and every link along the route,
	// exposing path contention between concurrent flows.
	ContentionLinks
)

// Config tunes a Fabric. Zero values take topology-derived defaults.
type Config struct {
	// Contention selects ContentionEndpoint or ContentionLinks.
	Contention int
	// InjectRate is the per-node NIC injection bandwidth (bytes/sec).
	// Default: the topology's injection-level bandwidth.
	InjectRate float64
	// EjectRate is the per-node NIC ejection bandwidth (bytes/sec).
	// Default: InjectRate.
	EjectRate float64
	// LocalRate is the intra-node (shared-memory) transfer bandwidth.
	// Default: 8 GB/s.
	LocalRate float64
	// PerHopLatency overrides the topology's per-hop latency (ns).
	PerHopLatency int64
	// SoftwareOverhead is the per-message sender-side software cost (ns).
	// Default: 1 µs.
	SoftwareOverhead int64
}

// Fabric books transfers between nodes of a topology over shared resources.
// All methods must be called from the running sim proc (single-threaded
// virtual-time discipline).
type Fabric struct {
	topo topology.Topology
	cfg  Config

	nicIn  []*sim.GapResource
	nicOut []*sim.GapResource
	links  []*sim.GapResource // lazily allocated, indexed by topology link id

	scratch []*sim.GapResource // reusable per-transfer resource list

	distOnce sync.Once
	dist     *topology.DistanceCache

	transfers  int64
	totalBytes int64
}

// New builds a fabric over the topology with the given configuration.
func New(topo topology.Topology, cfg Config) *Fabric {
	if cfg.InjectRate <= 0 {
		cfg.InjectRate = topo.Bandwidth(topology.LevelInjection)
	}
	if cfg.EjectRate <= 0 {
		cfg.EjectRate = cfg.InjectRate
	}
	if cfg.LocalRate <= 0 {
		cfg.LocalRate = 8e9
	}
	if cfg.PerHopLatency <= 0 {
		cfg.PerHopLatency = topo.Latency()
	}
	if cfg.SoftwareOverhead <= 0 {
		cfg.SoftwareOverhead = 1000
	}
	n := topo.Nodes()
	f := &Fabric{
		topo:   topo,
		cfg:    cfg,
		nicIn:  make([]*sim.GapResource, n),
		nicOut: make([]*sim.GapResource, n),
		links:  make([]*sim.GapResource, topo.NumLinks()),
	}
	for i := 0; i < n; i++ {
		f.nicOut[i] = sim.NewGapResource(fmt.Sprintf("nic-out-%d", i), cfg.InjectRate)
		f.nicIn[i] = sim.NewGapResource(fmt.Sprintf("nic-in-%d", i), cfg.EjectRate)
	}
	return f
}

// Topology returns the underlying topology.
func (f *Fabric) Topology() topology.Topology { return f.topo }

// Distances returns the machine-wide memoized distance cache over the
// fabric's topology. Every rank, session and cost model on the machine
// shares the same rows, so aggregator elections pay each node-pair distance
// once per machine rather than once per lookup.
func (f *Fabric) Distances() *topology.DistanceCache {
	f.distOnce.Do(func() { f.dist = topology.NewDistanceCache(f.topo) })
	return f.dist
}

// Config returns the fabric configuration actually in effect.
func (f *Fabric) Config() Config { return f.cfg }

// Transfers returns the number of transfers booked so far.
func (f *Fabric) Transfers() int64 { return f.transfers }

// TotalBytes returns the bytes moved across all transfers.
func (f *Fabric) TotalBytes() int64 { return f.totalBytes }

func (f *Fabric) link(id int) *sim.GapResource {
	r := f.links[id]
	if r == nil {
		r = sim.NewGapResource(fmt.Sprintf("link-%d", id), f.topo.LinkRate(id))
		f.links[id] = r
	}
	return r
}

// Reserve books a transfer of bytes from src to dst starting no earlier than
// now, and returns:
//
//	senderFree — when the sender has finished injecting (its buffer is
//	             reusable; local completion for a put or eager send);
//	arrival    — when the last byte reaches dst.
//
// The reservation is one-sided: no proc at dst needs to participate, which
// is exactly MPI_Put semantics. Callers block (or not) on the returned times.
func (f *Fabric) Reserve(now int64, src, dst int, bytes int64) (senderFree, arrival int64) {
	f.transfers++
	f.totalBytes += bytes
	start := now + f.cfg.SoftwareOverhead

	if src == dst {
		// Intra-node: shared-memory copy, no NIC involvement.
		dur := sim.TransferTime(bytes, f.cfg.LocalRate)
		return start + dur, start + dur
	}

	route := f.topo.Route(src, dst)
	hops := len(route)

	// Collect the resources this transfer occupies.
	bottleneck := f.cfg.InjectRate
	if f.cfg.EjectRate < bottleneck {
		bottleneck = f.cfg.EjectRate
	}
	resources := f.scratch[:0]
	resources = append(resources, f.nicOut[src])
	if f.cfg.Contention == ContentionLinks {
		for _, l := range route {
			lr := f.link(l)
			resources = append(resources, lr)
			if rate := f.topo.LinkRate(l); rate < bottleneck {
				bottleneck = rate
			}
		}
	} else {
		// Endpoint model still honors the path's bandwidth ceiling.
		for _, l := range route {
			if rate := f.topo.LinkRate(l); rate < bottleneck {
				bottleneck = rate
			}
		}
	}
	resources = append(resources, f.nicIn[dst])
	f.scratch = resources[:0]

	// Wormhole model: the flow occupies its whole path for bytes/bottleneck
	// starting at the earliest instant every stage is simultaneously free
	// (gap-filling, so staggered flows pipeline through shared stages).
	dur := sim.TransferTime(bytes, bottleneck)
	start, end := sim.ReserveTogether(start, dur, bytes, resources)

	senderFree = end
	arrival = start + int64(hops)*f.cfg.PerHopLatency + dur
	return senderFree, arrival
}

// LatencyTo returns the pure request latency from src to dst (software
// overhead plus per-hop latency), with no resource booking — the cost of a
// small control message such as a read RPC request.
func (f *Fabric) LatencyTo(src, dst int) int64 {
	return f.cfg.SoftwareOverhead + int64(f.topo.Distance(src, dst))*f.cfg.PerHopLatency
}

// Send books a transfer and blocks the proc until the sender side completes
// (buffer reusable). It returns the arrival time at dst.
func (f *Fabric) Send(p *sim.Proc, src, dst int, bytes int64) (arrival int64) {
	senderFree, arrival := f.Reserve(p.Now(), src, dst, bytes)
	p.HoldUntil(senderFree)
	return arrival
}

// MaxNICUtilization returns the highest busy-time fraction across NICs up to
// horizon, a coarse hot-spot diagnostic.
func (f *Fabric) MaxNICUtilization(horizon int64) float64 {
	if horizon <= 0 {
		return 0
	}
	var maxBusy int64
	for i := range f.nicIn {
		if b := f.nicIn[i].BusyTime(); b > maxBusy {
			maxBusy = b
		}
		if b := f.nicOut[i].BusyTime(); b > maxBusy {
			maxBusy = b
		}
	}
	return float64(maxBusy) / float64(horizon)
}
