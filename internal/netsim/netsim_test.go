package netsim

import (
	"testing"

	"tapioca/internal/sim"
	"tapioca/internal/topology"
)

func flatFabric(n int) *Fabric {
	topo := topology.NewFlat(n)
	return New(topo, Config{Contention: ContentionLinks})
}

func TestTransferTiming(t *testing.T) {
	e := sim.NewEngine()
	f := flatFabric(4)
	// Flat: 1 GB/s links, 1 µs hops, 1 µs software overhead.
	e.Spawn("tx", func(p *sim.Proc) {
		senderFree, arrival := f.Reserve(p.Now(), 0, 1, 1_000_000) // 1 MB
		wantDur := sim.TransferTime(1_000_000, 1e9)                // 1 ms
		if senderFree != 1000+wantDur {
			t.Errorf("senderFree = %d, want %d", senderFree, 1000+wantDur)
		}
		// 2 links on the flat route → 2 µs of hop latency.
		if arrival != 1000+2000+wantDur {
			t.Errorf("arrival = %d, want %d", arrival, 1000+2000+wantDur)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIntraNodeTransfer(t *testing.T) {
	e := sim.NewEngine()
	f := flatFabric(4)
	e.Spawn("tx", func(p *sim.Proc) {
		sf, arr := f.Reserve(p.Now(), 2, 2, 8_000_000) // 8 MB at 8 GB/s = 1 ms
		if sf != arr {
			t.Errorf("intra-node senderFree %d != arrival %d", sf, arr)
		}
		if arr != 1000+sim.TransferTime(8_000_000, 8e9) {
			t.Errorf("arrival = %d", arr)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIncastSerializesAtReceiver(t *testing.T) {
	// N senders → one receiver: arrivals must be spaced by the ejection
	// serialization, not simultaneous.
	e := sim.NewEngine()
	f := flatFabric(8)
	const senders = 4
	const bytes = 1_000_000
	var arrivals []int64
	for i := 0; i < senders; i++ {
		src := i + 1
		e.Spawn("tx", func(p *sim.Proc) {
			_, arr := f.Reserve(p.Now(), src, 0, bytes)
			arrivals = append(arrivals, arr)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	per := sim.TransferTime(bytes, 1e9)
	last := arrivals[0]
	for _, a := range arrivals[1:] {
		if a < last+per {
			t.Fatalf("arrivals %v not serialized by at least %d", arrivals, per)
		}
		last = a
	}
}

func TestDisjointPairsDoNotContend(t *testing.T) {
	e := sim.NewEngine()
	f := flatFabric(8)
	var arr [2]int64
	e.Spawn("a", func(p *sim.Proc) { _, arr[0] = f.Reserve(p.Now(), 0, 1, 1_000_000) })
	e.Spawn("b", func(p *sim.Proc) { _, arr[1] = f.Reserve(p.Now(), 2, 3, 1_000_000) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if arr[0] != arr[1] {
		t.Fatalf("disjoint transfers finished at %d and %d, want equal", arr[0], arr[1])
	}
}

func TestLinkContentionOnTorus(t *testing.T) {
	// Two flows forced over the same torus link must serialize under
	// ContentionLinks and not under ContentionEndpoint.
	tor := topology.NewTorus5D([5]int{8, 1, 1, 1, 1})
	for _, mode := range []int{ContentionEndpoint, ContentionLinks} {
		e := sim.NewEngine()
		f := New(tor, Config{Contention: mode})
		// Flow 0→2 routes 0→1→2 and flow 1→3 routes 1→2→3: they share
		// only the middle link 1→2, no NICs.
		var arr [2]int64
		e.Spawn("a", func(p *sim.Proc) { _, arr[0] = f.Reserve(p.Now(), 0, 2, 10_000_000) })
		e.Spawn("b", func(p *sim.Proc) { _, arr[1] = f.Reserve(p.Now(), 1, 3, 10_000_000) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		dur := sim.TransferTime(10_000_000, tor.TorusLinkBW)
		gap := arr[1] - arr[0]
		if gap < 0 {
			gap = -gap
		}
		if mode == ContentionLinks && gap < dur/2 {
			t.Errorf("links mode: flows overlapped fully (gap %d, dur %d)", gap, dur)
		}
		if mode == ContentionEndpoint && gap > dur/2 {
			t.Errorf("endpoint mode: unexpected serialization (gap %d)", gap)
		}
	}
}

func TestBottleneckBandwidthHonored(t *testing.T) {
	// Theta dragonfly: host links are 10 GB/s, so a node-to-node transfer
	// can never beat 10 GB/s even though electrical links are 14 GB/s.
	d := topology.ThetaDragonfly(512, topology.RouteMinimal)
	e := sim.NewEngine()
	f := New(d, Config{Contention: ContentionEndpoint})
	e.Spawn("tx", func(p *sim.Proc) {
		const bytes = 100_000_000
		_, arr := f.Reserve(p.Now(), 0, 100, bytes)
		minDur := sim.TransferTime(bytes, 10e9)
		if arr < minDur {
			t.Errorf("arrival %d beats host-link floor %d", arr, minDur)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendBlocksSender(t *testing.T) {
	e := sim.NewEngine()
	f := flatFabric(4)
	e.Spawn("tx", func(p *sim.Proc) {
		arr := f.Send(p, 0, 1, 2_000_000)
		if p.Now() < sim.TransferTime(2_000_000, 1e9) {
			t.Errorf("sender not blocked for injection: now=%d", p.Now())
		}
		if arr < p.Now() {
			t.Errorf("arrival %d before sender completion %d", arr, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAccounting(t *testing.T) {
	e := sim.NewEngine()
	f := flatFabric(4)
	e.Spawn("tx", func(p *sim.Proc) {
		f.Reserve(p.Now(), 0, 1, 100)
		f.Reserve(p.Now(), 1, 2, 200)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Transfers() != 2 || f.TotalBytes() != 300 {
		t.Fatalf("accounting = (%d, %d), want (2, 300)", f.Transfers(), f.TotalBytes())
	}
}

func TestDefaultsFromTopology(t *testing.T) {
	tor := topology.MiraTorus(512)
	f := New(tor, Config{})
	cfg := f.Config()
	if cfg.InjectRate != tor.Bandwidth(topology.LevelInjection) {
		t.Errorf("inject rate = %v", cfg.InjectRate)
	}
	if cfg.PerHopLatency != tor.Latency() {
		t.Errorf("hop latency = %v", cfg.PerHopLatency)
	}
	if cfg.SoftwareOverhead != 1000 {
		t.Errorf("software overhead = %v", cfg.SoftwareOverhead)
	}
}
