package netsim

import (
	"testing"

	"tapioca/internal/topology"
)

// benchFabric builds a fabric over the given topology and contention mode
// and warms the path cache for the benchmark's node pairs.
func benchFabric(topo topology.Topology, contention int) *Fabric {
	return New(topo, Config{Contention: contention})
}

// benchPairs returns a deterministic spread of (src, dst) node pairs.
func benchPairs(nodes, n int) [][2]int {
	pairs := make([][2]int, n)
	for i := range pairs {
		src := (i * 97) % nodes
		dst := (i*193 + nodes/2) % nodes
		if dst == src {
			dst = (dst + 1) % nodes
		}
		pairs[i] = [2]int{src, dst}
	}
	return pairs
}

func benchmarkReserve(b *testing.B, topo topology.Topology, contention int, cached bool) {
	prev := SetPathCache(cached)
	defer SetPathCache(prev)
	f := benchFabric(topo, contention)
	pairs := benchPairs(topo.Nodes(), 64)
	// Warm: create NICs, links, and (cached mode) the path entries.
	for _, p := range pairs {
		f.Reserve(0, p[0], p[1], 4096)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		f.Reserve(0, p[0], p[1], 4096)
	}
}

func BenchmarkFabricReserve(b *testing.B) {
	torus := topology.MiraTorus(512)
	dfly := topology.ThetaDragonfly(512, topology.RouteMinimal)
	b.Run("torus-links-cached", func(b *testing.B) { benchmarkReserve(b, torus, ContentionLinks, true) })
	b.Run("torus-links-cold", func(b *testing.B) { benchmarkReserve(b, torus, ContentionLinks, false) })
	b.Run("dragonfly-links-cached", func(b *testing.B) { benchmarkReserve(b, dfly, ContentionLinks, true) })
	b.Run("dragonfly-links-cold", func(b *testing.B) { benchmarkReserve(b, dfly, ContentionLinks, false) })
	b.Run("dragonfly-endpoint-cached", func(b *testing.B) { benchmarkReserve(b, dfly, ContentionEndpoint, true) })
}

// TestFabricReserveZeroAlloc pins the acceptance bar: with a warm path
// cache, Reserve allocates nothing in steady state, on both production
// topologies and both contention models.
func TestFabricReserveZeroAlloc(t *testing.T) {
	cases := []struct {
		name       string
		topo       topology.Topology
		contention int
	}{
		{"torus-links", topology.MiraTorus(512), ContentionLinks},
		{"torus-endpoint", topology.MiraTorus(512), ContentionEndpoint},
		{"dragonfly-links", topology.ThetaDragonfly(512, topology.RouteMinimal), ContentionLinks},
		{"dragonfly-endpoint", topology.ThetaDragonfly(512, topology.RouteMinimal), ContentionEndpoint},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := benchFabric(tc.topo, tc.contention)
			pairs := benchPairs(tc.topo.Nodes(), 16)
			for _, p := range pairs {
				f.Reserve(0, p[0], p[1], 4096)
			}
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				p := pairs[i%len(pairs)]
				i++
				f.Reserve(0, p[0], p[1], 4096)
			})
			if allocs != 0 {
				t.Fatalf("warm Reserve allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestReserveScratchReuse is the aliasing regression net for the reused
// resource scratch and interned path arena: a long random sequence of
// Reserve calls on one fabric must produce exactly the same (senderFree,
// arrival) stream as the same sequence on a twin fabric running with the
// path cache disabled (which rebuilds every route from scratch). Stale or
// prematurely-reset scratch entries, or arena spans clobbered by growth,
// would corrupt the resource list of some call and diverge the streams.
func TestReserveScratchReuse(t *testing.T) {
	topos := []topology.Topology{
		topology.MiraTorus(512),
		topology.ThetaDragonfly(512, topology.RouteMinimal),
		topology.ThetaDragonfly(512, topology.RouteValiant),
	}
	for _, topo := range topos {
		for _, contention := range []int{ContentionEndpoint, ContentionLinks} {
			cached := New(topo, Config{Contention: contention})
			prev := SetPathCache(false)
			uncached := New(topo, Config{Contention: contention})
			SetPathCache(prev)

			pairs := benchPairs(topo.Nodes(), 200)
			now := int64(0)
			for i, p := range pairs {
				bytes := int64(1024 * (i%7 + 1))
				sf1, ar1 := cached.Reserve(now, p[0], p[1], bytes)
				sf2, ar2 := uncached.Reserve(now, p[0], p[1], bytes)
				if sf1 != sf2 || ar1 != ar2 {
					t.Fatalf("%s contention=%d call %d (%d→%d): cached (%d,%d) != uncached (%d,%d)",
						topo.Name(), contention, i, p[0], p[1], sf1, ar1, sf2, ar2)
				}
				now += 500
			}
		}
	}
}

// TestMaxNICUtilizationLazy: the diagnostic must see traffic through lazily
// created NICs and report zero on an untouched fabric without creating any.
func TestMaxNICUtilizationLazy(t *testing.T) {
	f := benchFabric(topology.MiraTorus(512), ContentionLinks)
	if u := f.MaxNICUtilization(1e9); u != 0 {
		t.Fatalf("idle fabric utilization = %v, want 0", u)
	}
	for i := range f.nicIn {
		if f.nicIn[i] != nil || f.nicOut[i] != nil {
			t.Fatalf("NIC %d created without traffic", i)
		}
	}
	f.Reserve(0, 3, 9, 1<<20)
	if u := f.MaxNICUtilization(1e9); u <= 0 {
		t.Fatalf("utilization after transfer = %v, want > 0", u)
	}
	created := 0
	for i := range f.nicIn {
		if f.nicIn[i] != nil {
			created++
		}
		if f.nicOut[i] != nil {
			created++
		}
	}
	if created != 2 {
		t.Fatalf("%d NICs created, want exactly 2 (sender out, receiver in)", created)
	}
}
