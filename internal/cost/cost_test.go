package cost

import (
	"math"
	"testing"

	"tapioca/internal/sim"
	"tapioca/internal/topology"
)

// flatModel builds a model over a Flat topology with known constants:
// 1 GB/s links, 1 µs per hop, one I/O node one hop away.
func flatModel(n int, opts ...Option) (*Model, *topology.Flat) {
	topo := topology.NewFlat(n)
	return NewModel(topo, opts...), topo
}

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))+1e-15
}

func TestAggregationCostFlat(t *testing.T) {
	m, topo := flatModel(4)
	lat := sim.ToSeconds(topo.Latency())
	bw := topo.Bandwidth(topology.LevelFabric)
	members := []Member{
		{Node: 0, Bytes: 1 << 20},
		{Node: 1, Bytes: 2 << 20},
		{Node: 2, Bytes: 0},       // empty members are free
		{Node: 3, Bytes: 3 << 20}, // candidate: excluded from C1
	}
	// Flat: every distinct pair is one hop.
	want := (lat + float64(1<<20)/bw) + (lat + float64(2<<20)/bw)
	if got := m.AggregationCost(members, 3); !almost(got, want) {
		t.Fatalf("C1 = %v, want %v", got, want)
	}
	// The candidate's own data never ships: a heavy candidate is cheap.
	if got := m.AggregationCost(members, 1); got >= m.AggregationCost(members, 3)+float64(2<<20)/bw {
		t.Fatalf("candidate's own volume leaked into C1: %v", got)
	}
}

func TestAggregationCostSameNodeMembers(t *testing.T) {
	m, topo := flatModel(2)
	bw := topo.Bandwidth(topology.LevelFabric)
	// Two ranks on the candidate's node: zero hops, but the copy still
	// costs bandwidth (seed behavior: latency·0 + ω/B).
	members := []Member{
		{Node: 0, Bytes: 1000},
		{Node: 0, Bytes: 2000},
	}
	want := 1000 / bw
	if got := m.AggregationCost(members, 1); !almost(got, want) {
		t.Fatalf("same-node C1 = %v, want %v", got, want)
	}
}

func TestIOCostFlatAndHidden(t *testing.T) {
	m, topo := flatModel(4)
	lat := sim.ToSeconds(topo.Latency())
	up := topo.Bandwidth(topology.LevelIOUplink)
	want := lat + float64(8<<20)/up // DistanceToION is 1 on Flat
	if got := m.IOCost(2, 8<<20); !almost(got, want) {
		t.Fatalf("C2 = %v, want %v", got, want)
	}
	// Platforms that hide I/O-node locality cost zero, as in the paper.
	theta := topology.ThetaDragonfly(128, topology.RouteMinimal)
	mt := NewModel(theta)
	if got := mt.IOCost(5, 8<<20); got != 0 {
		t.Fatalf("hidden-locality C2 = %v, want 0", got)
	}
}

type fixedTier struct{ s float64 }

func (f fixedTier) TierIOCost(node int, bytes int64) (float64, bool) { return f.s, true }

func TestIOCostTierHook(t *testing.T) {
	m, _ := flatModel(4, WithTier(fixedTier{s: 0.25}))
	if got := m.IOCost(0, 1<<30); got != 0.25 {
		t.Fatalf("tier C2 = %v, want 0.25", got)
	}
	if TierOf(fixedTier{}) == nil {
		t.Fatal("TierOf missed a structural implementation")
	}
	if TierOf(42) != nil {
		t.Fatal("TierOf invented a tier")
	}
}

func TestCandidacyCostComposes(t *testing.T) {
	m, _ := flatModel(4)
	members := []Member{{Node: 0, Bytes: 100}, {Node: 1, Bytes: 200}}
	want := m.AggregationCost(members, 0) + m.IOCost(0, 300)
	if got := m.CandidacyCost(members, 0, 300); !almost(got, want) {
		t.Fatalf("C1+C2 = %v, want %v", got, want)
	}
}

func TestModelMatchesUncachedOnRealTopologies(t *testing.T) {
	for _, topo := range []topology.Topology{
		topology.MiraTorus(128),
		topology.ThetaDragonfly(64, topology.RouteMinimal),
	} {
		cached := NewModel(topo)
		raw := NewModel(topo, Uncached())
		members := make([]Member, 32)
		for i := range members {
			members[i] = Member{Node: (i * 7) % topo.Nodes(), Bytes: int64(i+1) * 1000}
		}
		for cand := range members {
			a, b := cached.CandidacyCost(members, cand, 1<<20), raw.CandidacyCost(members, cand, 1<<20)
			if a != b {
				t.Fatalf("%s candidate %d: cached %v != uncached %v", topo.Name(), cand, a, b)
			}
		}
	}
}

func TestTwoLevelCostCollapsesNodes(t *testing.T) {
	m, topo := flatModel(4)
	lat := sim.ToSeconds(topo.Latency())
	bw := topo.Bandwidth(topology.LevelFabric)
	// Two nodes, two members each. Candidate = member 0 (leader of node 0).
	members := []Member{
		{Node: 0, Bytes: 100},
		{Node: 0, Bytes: 300},
		{Node: 1, Bytes: 500},
		{Node: 1, Bytes: 700},
	}
	// Intra: member 1 merges 300 bytes into the candidate across node
	// memory. Remote: node 1's non-leader merges 700 bytes into its leader
	// at memory bandwidth, then ONE fabric message carries the node's 1200
	// bytes. Staging copies move at the local (memory) bandwidth, never the
	// fabric rate.
	want := 300/DefaultLocalBandwidth + 700/DefaultLocalBandwidth + (lat + 1200/bw) + m.IOCost(0, 0)
	if got := m.TwoLevelCost(members, 0, 0); !almost(got, want) {
		t.Fatalf("two-level cost = %v, want %v", got, want)
	}
	// The flat election must therefore prefer two-level over per-member
	// flows when latency dominates: 1 remote message vs 2 (C2 identical).
	perMember := m.CandidacyCost(members, 0, 0)
	if got := m.TwoLevelCost(members, 0, 0); got >= perMember {
		t.Fatalf("two-level (%v) not cheaper than per-member (%v) under message latency", got, perMember)
	}
}

// TestTwoLevelCostDegeneratesAtOneRankPerNode pins the rpn=1 contract:
// with one member per node every node group is a singleton, every staging
// merge term vanishes (no member has co-located data to copy), and the
// two-level price collapses to exactly the flat C1+C2 — staging is a no-op,
// not a wasted copy.
func TestTwoLevelCostDegeneratesAtOneRankPerNode(t *testing.T) {
	m, _ := flatModel(8)
	members := make([]Member, 8)
	for i := range members {
		members[i] = Member{Node: i, Bytes: int64(i+1) * 1000}
	}
	for cand := range members {
		flat := m.CandidacyCost(members, cand, 1<<20)
		two := m.TwoLevelCost(members, cand, 1<<20)
		if !almost(two, flat) {
			t.Fatalf("candidate %d: two-level %v != flat %v at one rank per node", cand, two, flat)
		}
	}
}
