// Package cost owns TAPIOCA's topology-aware cost model (paper §IV-B,
// Fig. 3) as a reusable layer: the aggregation cost C1 and the I/O cost C2
// that together price a rank's candidacy to become its partition's
// aggregator, plus the pluggable placement engine (Placement) that turns
// those prices into an election.
//
// The model prices moving data through the interconnect:
//
//	C1(A) = Σ_i  l·d(i, A) + ω(i)/B_fabric      (members ship to candidate A)
//	C2(A) = l·d(A, IO) + Ω/B_uplink             (A forwards to the I/O node)
//
// where l is the per-hop latency, d the hop distance, ω(i) member i's data
// volume and Ω the partition total. When the platform hides I/O-node
// locality (Lustre LNET on Theta), C2 is zero, exactly as the paper
// prescribes. Storage tiers that absorb writes faster than the generic
// uplink formula — a burst buffer — can refine C2 through the TierCost hook.
//
// Both TAPIOCA proper (internal/core) and the ROMIO-style baseline
// (internal/mpiio) consume this package, so a single implementation of the
// arithmetic serves every collective path. Distances are memoized through
// topology.DistanceCache: an election evaluates the same node pairs once per
// candidate, and repeated sessions on one machine reuse the cache, so the
// O(P²) repeated Distance calls of a naive election become cached reads.
package cost

import (
	"tapioca/internal/sim"
	"tapioca/internal/topology"
)

// Member is one partition member from the cost model's point of view: where
// it lives and how much data it contributes to the aggregation stream.
type Member struct {
	// Node is the member's compute node.
	Node int
	// Bytes is the member's declared data volume ω(i). Elections run before
	// any data movement, so consumers that cannot know volumes yet (MPI-IO
	// chooses aggregators at open time) use uniform weights instead.
	Bytes int64
}

// TierCost is implemented by storage tiers that can price the I/O phase
// better than the generic uplink formula — a burst buffer absorbs a flush at
// NVMe speed regardless of the backing file system. The interface is
// structural so storage need not import this package.
type TierCost interface {
	// TierIOCost returns the seconds to move bytes from node into the tier,
	// or ok=false when the tier has no opinion and the topology formula
	// should apply.
	TierIOCost(node int, bytes int64) (seconds float64, ok bool)
}

// TierOf extracts the TierCost hook from an arbitrary storage system, or nil.
func TierOf(sys any) TierCost {
	if t, ok := sys.(TierCost); ok {
		return t
	}
	return nil
}

// DefaultLocalBandwidth is the intra-node (shared-memory) bandwidth the
// model assumes when the caller does not override it — the same 8 GB/s the
// network simulator uses for its LocalRate default, so predicted staging
// copies and simulated ones move at one speed.
const DefaultLocalBandwidth = 8e9

// Model evaluates the paper's cost formulas over one topology.
type Model struct {
	topo     topology.Topology
	dist     *topology.DistanceCache // nil when uncached
	uncached bool
	latency  float64 // seconds per hop
	fabricBW float64
	uplinkBW float64
	localBW  float64 // intra-node memory bandwidth (staging copies)
	tier     TierCost
}

// Option customizes a Model.
type Option func(*Model)

// WithDistanceCache shares an existing memoized distance cache (one per
// machine, so every rank and session reuses the same rows).
func WithDistanceCache(dc *topology.DistanceCache) Option {
	return func(m *Model) { m.dist = dc }
}

// Uncached disables distance memoization: every lookup walks the topology's
// Distance. Exists to quantify what the cache buys (BenchmarkCostModel).
func Uncached() Option {
	return func(m *Model) { m.dist, m.uncached = nil, true }
}

// WithTier installs a storage-tier hook refining the C2 I/O cost.
func WithTier(t TierCost) Option {
	return func(m *Model) { m.tier = t }
}

// WithLocalBandwidth overrides the intra-node memory bandwidth used to price
// staging copies (defaults to DefaultLocalBandwidth). Pass the fabric's
// configured LocalRate so the predictor and the simulator agree.
func WithLocalBandwidth(bw float64) Option {
	return func(m *Model) {
		if bw > 0 {
			m.localBW = bw
		}
	}
}

// NewModel builds a cost model over the topology. Without options it owns a
// private distance cache.
func NewModel(topo topology.Topology, opts ...Option) *Model {
	m := &Model{
		topo:     topo,
		latency:  sim.ToSeconds(topo.Latency()),
		fabricBW: topo.Bandwidth(topology.LevelFabric),
		uplinkBW: topo.Bandwidth(topology.LevelIOUplink),
		localBW:  DefaultLocalBandwidth,
	}
	for _, o := range opts {
		o(m)
	}
	if m.dist == nil && !m.uncached {
		m.dist = topology.NewDistanceCache(topo)
	}
	return m
}

// Topology returns the model's topology.
func (m *Model) Topology() topology.Topology { return m.topo }

// distance is the (possibly memoized) hop count.
func (m *Model) distance(a, b int) int {
	if m.dist != nil {
		return m.dist.Distance(a, b)
	}
	return m.topo.Distance(a, b)
}

// EdgeCost prices one hop of an aggregation level: moving bytes from node a
// to node b. A co-located move (a == b) is a shared-memory copy at the local
// (memory) bandwidth with zero hops; an inter-node move pays the paper's
// λ·d(a,b) latency term plus the fabric-bandwidth transfer term. Every
// level-structured price in this package — flat C1, the two-level staged
// variant, and the tree pricer in internal/tree — routes through this one
// helper, so intra-node memory-bandwidth pricing cannot drift between them.
func (m *Model) EdgeCost(a, b int, bytes int64) float64 {
	if a == b {
		return float64(bytes) / m.localBW
	}
	d := float64(m.distance(a, b))
	return m.latency*d + float64(bytes)/m.fabricBW
}

// AggregationCost is C1: the cost of every member except the candidate
// itself shipping its declared data to the candidate's node (paper Fig. 3).
// candidate indexes members; members with no data are free. Co-located
// members ship across node memory, which the paper's d(i,A)=0 term makes
// free of latency; the transfer term stays on the fabric clock for fidelity
// with the paper's flat formula (the two-level and tree prices refine it).
func (m *Model) AggregationCost(members []Member, candidate int) float64 {
	candNode := members[candidate].Node
	var c1 float64
	for i, mb := range members {
		if i == candidate || mb.Bytes == 0 {
			continue
		}
		d := float64(m.distance(mb.Node, candNode))
		c1 += m.latency*d + float64(mb.Bytes)/m.fabricBW
	}
	return c1
}

// IOCost is C2: forwarding bytes from a node to its storage gateway. A tier
// hook (burst buffer) takes precedence; otherwise the topology's I/O-node
// map prices the uplink, and platforms that hide I/O-node locality cost
// zero, as in the paper.
func (m *Model) IOCost(node int, bytes int64) float64 {
	if m.tier != nil {
		if s, ok := m.tier.TierIOCost(node, bytes); ok {
			return s
		}
	}
	ion := m.topo.IONodeOf(node)
	if ion == topology.IONUnknown {
		return 0
	}
	d := float64(m.topo.DistanceToION(node, ion))
	return m.latency*d + float64(bytes)/m.uplinkBW
}

// CandidacyCost is the full objective TopoAware(A) = C1 + C2 for electing
// members[candidate] as the aggregator of a partition moving ioBytes.
func (m *Model) CandidacyCost(members []Member, candidate int, ioBytes int64) float64 {
	return m.AggregationCost(members, candidate) +
		m.IOCost(members[candidate].Node, ioBytes)
}

// nodeGroup is the per-node view used by the two-level placement: members
// collapsed onto their node, with the first member as leader.
type nodeGroup struct {
	node   int
	leader int // member index of the node's first member
	bytes  int64
}

// groupByNode collapses members into per-node groups, preserving first-seen
// (member index) order so elections stay deterministic.
func groupByNode(members []Member) []nodeGroup {
	idx := map[int]int{}
	var groups []nodeGroup
	for i, mb := range members {
		g, ok := idx[mb.Node]
		if !ok {
			g = len(groups)
			idx[mb.Node] = g
			groups = append(groups, nodeGroup{node: mb.Node, leader: i})
		}
		groups[g].bytes += mb.Bytes
	}
	return groups
}

// TwoLevelCost prices electing members[candidate] under intra-node
// pre-aggregation (Kang et al.'s direction): every node's co-located members
// first merge their data into the node leader's staging buffer — a
// shared-memory copy at the local (memory) bandwidth, zero hops — then each
// remote node ships one aggregate message over the fabric, then C2. This is
// the paper's C1 with the per-member fabric terms collapsed to one per node:
// the merge term moves at localBW, not fabricBW (a memory copy is not fabric
// traffic), and a node whose leader is the only member merges nothing — with
// one rank per node every group is a singleton, every merge term vanishes,
// and TwoLevelCost degenerates to exactly C1. The candidate must be its
// node's leader for the price to be meaningful; callers restrict the
// electorate to leaders.
func (m *Model) TwoLevelCost(members []Member, candidate int, ioBytes int64) float64 {
	return m.twoLevelCost(members, groupByNode(members), candidate, ioBytes)
}

// twoLevelCost is TwoLevelCost with the node grouping precomputed, so an
// election over N leaders builds it once instead of once per candidate.
func (m *Model) twoLevelCost(members []Member, groups []nodeGroup, candidate int, ioBytes int64) float64 {
	candNode := members[candidate].Node
	var c float64
	for _, g := range groups {
		if g.node == candNode {
			// The candidate's own node: co-located members copy into the
			// candidate's buffer across node memory; the candidate's own
			// bytes never move. No fabric message.
			c += m.EdgeCost(g.node, g.node, g.bytes-members[candidate].Bytes)
			continue
		}
		if g.bytes == 0 {
			// Nodes with no data send nothing: free, like empty members in C1.
			continue
		}
		// Remote node: members merge into their leader's staging buffer at
		// memory bandwidth (the leader's bytes are already there), then one
		// aggregated inter-node message carries the node total.
		c += m.EdgeCost(g.node, g.node, g.bytes-members[g.leader].Bytes)
		c += m.EdgeCost(g.node, candNode, g.bytes)
	}
	return c + m.IOCost(candNode, ioBytes)
}

// PartitionStart returns the first rank of partition part when n ranks are
// split into parts contiguous blocks by rank→partition map r*parts/n — the
// inverse boundary, ceil(part*n/parts). Both TAPIOCA's planner
// (internal/core) and the MPI-IO baseline's per-block elections
// (internal/mpiio) partition ranks through this one formula, so their
// aggregator blocks stay provably identical.
func PartitionStart(part, parts, n int) int {
	return (part*n + parts - 1) / parts
}

// MachineModel is the construction both I/O paths share: the machine-wide
// memoized distance cache plus the storage tier's C2 hook when the system
// provides one. Keeping the wiring here guarantees TAPIOCA proper and the
// MPI-IO baseline price candidacies identically.
func MachineModel(dc *topology.DistanceCache, sys any, extra ...Option) *Model {
	opts := append([]Option{WithDistanceCache(dc)}, extra...)
	if tier := TierOf(sys); tier != nil {
		opts = append(opts, WithTier(tier))
	}
	return NewModel(dc.Topology(), opts...)
}
