package cost

import (
	"testing"

	"tapioca/internal/topology"
)

// torusElection builds a local-mode election on a Mira-like torus with the
// data volume skewed toward high node indices.
func torusElection(t *testing.T) *Election {
	t.Helper()
	topo := topology.MiraTorus(128)
	members := make([]Member, 64)
	for i := range members {
		members[i] = Member{Node: i * 2, Bytes: int64(i+1) * 4096}
	}
	return &Election{
		Model:   NewModel(topo),
		Members: members,
		IOBytes: 1 << 20,
	}
}

func TestTopologyAwareLocalElectsMinimum(t *testing.T) {
	e := torusElection(t)
	winner := TopologyAware().Elect(e)
	wc := e.Model.CandidacyCost(e.Members, winner, e.IOBytes)
	for i := range e.Members {
		if c := e.Model.CandidacyCost(e.Members, i, e.IOBytes); c < wc {
			t.Fatalf("member %d costs %v < winner %d at %v", i, c, winner, wc)
		}
	}
	// The skew pulls the aggregator away from the first member.
	if winner == 0 {
		t.Fatal("topology-aware election ignored the data skew")
	}
}

func TestWorstLocalElectsMaximum(t *testing.T) {
	e := torusElection(t)
	winner := Worst().Elect(e)
	wc := e.Model.CandidacyCost(e.Members, winner, e.IOBytes)
	for i := range e.Members {
		if c := e.Model.CandidacyCost(e.Members, i, e.IOBytes); c > wc {
			t.Fatalf("member %d costs %v > adversarial winner %v", i, c, wc)
		}
	}
	// Invariant the ablation depends on: best ≤ worst.
	best := TopologyAware().Elect(e)
	if e.Model.CandidacyCost(e.Members, best, e.IOBytes) > wc {
		t.Fatal("topology-aware candidate costs more than the adversarial one")
	}
}

func TestTwoLevelElectsANodeLeader(t *testing.T) {
	topo := topology.MiraTorus(128)
	// 4 ranks per node across 16 nodes; leaders are indices ≡ 0 (mod 4).
	members := make([]Member, 64)
	for i := range members {
		members[i] = Member{Node: i / 4, Bytes: int64(i+1) * 1024}
	}
	e := &Election{Model: NewModel(topo), Members: members, IOBytes: 1 << 20}
	winner := TwoLevel().Elect(e)
	if winner%4 != 0 {
		t.Fatalf("two-level elected member %d, not a node leader", winner)
	}
}

func TestRandomDeterministicPerPartition(t *testing.T) {
	e := torusElection(t)
	e.Partition = 7
	a := Random().Elect(e)
	if b := Random().Elect(e); a != b {
		t.Fatalf("random election not deterministic: %d vs %d", a, b)
	}
	e.Partition = 8
	if c := Random().Elect(e); c == a {
		// Not impossible, but with 64 members two consecutive seeds
		// colliding would indicate a broken hash.
		t.Logf("partitions 7 and 8 elected the same member %d", a)
	}
	if got := RankOrder().Elect(e); got != 0 {
		t.Fatalf("rank order elected %d, want 0", got)
	}
}

func TestElectionDeterministicAcrossRepeats(t *testing.T) {
	for _, p := range []Placement{TopologyAware(), TwoLevel(), Worst(), Random(), RankOrder()} {
		e := torusElection(t)
		first := p.Elect(e)
		for i := 0; i < 3; i++ {
			e2 := torusElection(t)
			if got := p.Elect(e2); got != first {
				t.Fatalf("%s: elected %d then %d", p.Name(), first, got)
			}
		}
	}
}

func TestCollectiveModeAgreesWithLocalScan(t *testing.T) {
	// Simulate the Allreduce MINLOC/MAXLOC by evaluating the collective
	// path once per member and reducing by hand; the result must match the
	// local-mode scan (ties break toward the lowest index in both).
	base := torusElection(t)
	for _, tc := range []struct {
		p   Placement
		max bool
	}{{TopologyAware(), false}, {Worst(), true}, {TwoLevel(), false}} {
		localWinner := tc.p.Elect(base)
		bestLoc, bestVal, have := -1, 0.0, false
		for self := range base.Members {
			e := torusElection(t)
			e.Self = self
			var observed float64
			e.MinLoc = func(v float64, loc int) (float64, int) {
				observed = v
				return v, loc // loc echoes back: we reduce by hand below
			}
			e.MaxLoc = e.MinLoc
			gotLoc := tc.p.Elect(e)
			if gotLoc != self {
				t.Fatalf("%s: collective elect returned %d for self %d without reduction", tc.p.Name(), gotLoc, self)
			}
			v := observed
			if !have || (!tc.max && v < bestVal) || (tc.max && v > bestVal) {
				bestLoc, bestVal, have = self, v, true
			}
		}
		if bestLoc != localWinner {
			t.Fatalf("%s: collective reduction elects %d, local scan %d", tc.p.Name(), bestLoc, localWinner)
		}
	}
}

func TestNodeSpreadSetMatchesSeedHeuristic(t *testing.T) {
	// 4 nodes × 2 ranks, want 4: first rank of each node.
	nodes := []int{0, 0, 1, 1, 2, 2, 3, 3}
	got := NodeSpread().(SetStrategy).SelectSet(&SetElection{Nodes: nodes, Want: 4})
	want := []int{0, 2, 4, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node spread = %v, want %v", got, want)
		}
	}
	// Oversubscribed: want 6 from 4 nodes → second ranks fill in.
	got = NodeSpread().(SetStrategy).SelectSet(&SetElection{Nodes: nodes, Want: 6})
	if len(got) != 6 {
		t.Fatalf("oversubscribed spread returned %v", got)
	}
}

func TestRankOrderSetStacks(t *testing.T) {
	nodes := []int{0, 0, 1, 1, 2, 2}
	got := RankOrder().(SetStrategy).SelectSet(&SetElection{Nodes: nodes, Want: 3})
	for i, r := range got {
		if r != i {
			t.Fatalf("rank order set = %v, want 0..2", got)
		}
	}
}

func TestBridgeFirstSetPrefersBridges(t *testing.T) {
	nodes := []int{0, 1, 2, 3, 4, 5}
	bridge := func(nd int) bool { return nd == 2 || nd == 5 }
	got := BridgeFirst().(SetStrategy).SelectSet(&SetElection{Nodes: nodes, Want: 2, Bridge: bridge})
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("bridge-first set = %v, want [2 5]", got)
	}
	// Without bridge info it degrades to node spread.
	got = BridgeFirst().(SetStrategy).SelectSet(&SetElection{Nodes: nodes, Want: 2})
	if len(got) != 2 {
		t.Fatalf("fallback set = %v", got)
	}
}

func TestBridgeFirstSetNeverDuplicates(t *testing.T) {
	// More slots than distinct non-bridge nodes: the fill must take each
	// node once (a duplicated rank would orphan a file domain), returning a
	// smaller set rather than repeating ranks.
	nodes := make([]int, 8) // 8 ranks on 4 nodes, node 0 is a bridge
	for r := range nodes {
		nodes[r] = r / 2
	}
	bridge := func(nd int) bool { return nd == 0 }
	got := BridgeFirst().(SetStrategy).SelectSet(&SetElection{Nodes: nodes, Want: 7, Bridge: bridge})
	seen := map[int]bool{}
	for _, r := range got {
		if seen[r] {
			t.Fatalf("duplicate rank %d in %v", r, got)
		}
		seen[r] = true
	}
	if len(got) != 4 { // 1 bridge first-rank + 3 non-bridge first-ranks
		t.Fatalf("set = %v, want the 4 distinct first ranks", got)
	}
}

func TestTwoLevelCollectiveNonLeaderObservesNothing(t *testing.T) {
	// A non-leader must not report +Inf as its own candidacy cost.
	topo := topology.MiraTorus(128)
	members := []Member{{Node: 0, Bytes: 100}, {Node: 0, Bytes: 200}, {Node: 1, Bytes: 300}}
	e := &Election{
		Model: NewModel(topo), Members: members, Self: 1, // not node 0's leader
		MinLoc:      func(v float64, loc int) (float64, int) { return v, 0 },
		MaxLoc:      func(v float64, loc int) (float64, int) { return v, 0 },
		ObserveCost: func(v float64) { t.Fatalf("non-leader observed cost %v", v) },
	}
	TwoLevel().Elect(e)
}

func TestTopologyAwareHasNoSetStrategy(t *testing.T) {
	if _, ok := TopologyAware().(SetStrategy); ok {
		t.Fatal("topology-aware should elect per partition, not pick global sets")
	}
	if _, ok := TwoLevel().(SetStrategy); ok {
		t.Fatal("two-level should elect per partition, not pick global sets")
	}
}
