package cost

import (
	"math"
	"sort"
)

// Election is one partition's aggregator-election context. It supports two
// execution modes:
//
//   - Collective mode (MinLoc != nil): every member computes its own
//     candidacy cost and an Allreduce-style reduction elects the winner —
//     TAPIOCA's in-band election, which charges the reduction's virtual
//     time. Self identifies the caller and the reduction hooks are wired to
//     the partition communicator.
//   - Local mode (MinLoc == nil): the caller holds the whole member table
//     and evaluates every candidate itself, deterministically — how the
//     MPI-IO baseline picks aggregators at open time, outside any timed
//     phase.
type Election struct {
	// Model prices candidacies. Required by cost-driven placements.
	Model *Model
	// Members lists the partition's members in partition-rank order.
	Members []Member
	// IOBytes is the partition's total volume Ω, shipped by the winner in
	// the I/O phase (C2). Zero when unknown.
	IOBytes int64
	// Partition is the partition's index (seeds deterministic randomness).
	Partition int

	// Self is the caller's member index (collective mode); ignored in local
	// mode.
	Self int
	// MinLoc and MaxLoc reduce (value, member index) across the partition in
	// collective mode. Nil selects local mode.
	MinLoc func(v float64, loc int) (float64, int)
	MaxLoc func(v float64, loc int) (float64, int)
	// Barrier synchronizes the partition; placements that skip the cost
	// reduction still rendezvous through it in collective mode. May be nil.
	Barrier func()
	// ObserveCost, when set, receives the caller's own candidacy cost (the
	// session's ElectionCost statistic).
	ObserveCost func(float64)
}

func (e *Election) collective() bool { return e.MinLoc != nil }

func (e *Election) observe(c float64) {
	if e.ObserveCost != nil {
		e.ObserveCost(c)
	}
}

func (e *Election) barrier() {
	if e.Barrier != nil {
		e.Barrier()
	}
}

// Placement elects one aggregator per partition. Implementations must be
// deterministic: the same Election data elects the same member on every
// caller.
type Placement interface {
	// Name identifies the strategy (reports, figure labels).
	Name() string
	// Elect returns the winning member's index.
	Elect(e *Election) int
}

// SetElection is the whole-communicator view used by SetStrategy: MPI-IO's
// classic heuristics pick a global aggregator set rather than running
// per-partition elections.
type SetElection struct {
	// Nodes maps each comm rank to its compute node.
	Nodes []int
	// Want is the number of aggregators to select.
	Want int
	// Bridge reports whether a node is an I/O bridge node (BG/Q); nil when
	// the platform has none.
	Bridge func(node int) bool
}

// SetStrategy is an optional Placement extension: strategies that choose the
// full aggregator set at once. Consumers (internal/mpiio) prefer SelectSet
// when available and fall back to partitioned Elect calls otherwise.
type SetStrategy interface {
	// SelectSet returns Want comm ranks in ascending order.
	SelectSet(e *SetElection) []int
}

// argBest scans every candidate locally and returns the extreme-cost member
// (ties break toward the lowest index). worst flips the objective.
func argBest(e *Election, worst bool) int {
	best, bestCost := 0, math.Inf(1)
	if worst {
		bestCost = math.Inf(-1)
	}
	for i := range e.Members {
		c := e.Model.CandidacyCost(e.Members, i, e.IOBytes)
		if (!worst && c < bestCost) || (worst && c > bestCost) {
			best, bestCost = i, c
		}
	}
	return best
}

// TopologyAware returns the paper's cost-model election: the member with the
// minimum C1+C2 candidacy cost wins (§IV-B, Allreduce MINLOC).
func TopologyAware() Placement { return topologyAware{} }

type topologyAware struct{}

func (topologyAware) Name() string { return "topology-aware" }

func (topologyAware) Elect(e *Election) int {
	if e.collective() {
		c := e.Model.CandidacyCost(e.Members, e.Self, e.IOBytes)
		e.observe(c)
		_, loc := e.MinLoc(c, e.Self)
		return loc
	}
	return argBest(e, false)
}

// TwoLevel returns the intra-node pre-aggregation variant: members first
// merge within their node, then one aggregate flow per node competes in the
// inter-node election, so only each node's first member (its leader) is
// electable. This follows Kang et al.'s intra-node request aggregation
// direction on top of the paper's cost model.
func TwoLevel() Placement { return twoLevel{} }

type twoLevel struct{}

func (twoLevel) Name() string { return "two-level" }

func (twoLevel) Elect(e *Election) int {
	groups := groupByNode(e.Members)
	if e.collective() {
		// Non-leaders are not electable: they carry +Inf into the reduction
		// but report no candidacy cost of their own.
		c := math.Inf(1)
		for _, g := range groups {
			if g.leader == e.Self {
				c = e.Model.twoLevelCost(e.Members, groups, e.Self, e.IOBytes)
				e.observe(c)
				break
			}
		}
		_, loc := e.MinLoc(c, e.Self)
		return loc
	}
	best, bestCost := groups[0].leader, math.Inf(1)
	for _, g := range groups {
		if c := e.Model.twoLevelCost(e.Members, groups, g.leader, e.IOBytes); c < bestCost {
			best, bestCost = g.leader, c
		}
	}
	return best
}

// Worst returns the adversarial ablation bound: the maximum-cost candidate
// wins, quantifying how much placement can possibly matter.
func Worst() Placement { return worst{} }

type worst struct{}

func (worst) Name() string { return "worst" }

func (worst) Elect(e *Election) int {
	if e.collective() {
		c := e.Model.CandidacyCost(e.Members, e.Self, e.IOBytes)
		e.observe(c)
		if e.MaxLoc != nil {
			_, loc := e.MaxLoc(c, e.Self)
			return loc
		}
		// Collective mode is keyed on MinLoc alone; reducing the negated
		// cost elects the maximum with the same lowest-rank tie-breaking.
		_, loc := e.MinLoc(-c, e.Self)
		return loc
	}
	return argBest(e, true)
}

// Random returns a deterministic pseudo-random pick seeded by the partition
// index — the statistically neutral baseline.
func Random() Placement { return random{} }

type random struct{}

func (random) Name() string { return "random" }

func (random) Elect(e *Election) int {
	if e.collective() {
		e.barrier()
	}
	h := uint64(e.Partition+1) * 0x9E3779B97F4A7C15
	h ^= h >> 33
	return int(h % uint64(len(e.Members)))
}

// firstMember is the shared Elect body of the heuristics that run no cost
// election per partition: every member rendezvous at the barrier in
// collective mode, then the partition's first member wins.
type firstMember struct{}

func (firstMember) Elect(e *Election) int {
	if e.collective() {
		e.barrier()
	}
	return 0
}

// RankOrder returns the naive baseline. Per partition it elects the first
// member; as an MPI-IO set strategy it picks comm ranks 0..Want-1 regardless
// of node — the stacking pathology the paper criticizes.
func RankOrder() Placement { return rankOrder{} }

type rankOrder struct{ firstMember }

func (rankOrder) Name() string { return "rank-order" }

func (rankOrder) SelectSet(e *SetElection) []int {
	out := make([]int, e.Want)
	for i := range out {
		out[i] = i
	}
	return out
}

// nodeRanks returns, per node in ascending node order, the ranks hosted
// there (ascending), for the spread heuristics.
func nodeRanks(nodes []int) (order []int, byNode map[int][]int) {
	byNode = map[int][]int{}
	for r, nd := range nodes {
		if len(byNode[nd]) == 0 {
			order = append(order, nd)
		}
		byNode[nd] = append(byNode[nd], r)
	}
	sort.Ints(order)
	return order, byNode
}

// NodeSpread returns the common MPICH/Cray default: one rank per node,
// strided evenly across the allocation. Per-partition elections fall back to
// the first member.
func NodeSpread() Placement { return nodeSpread{} }

type nodeSpread struct{ firstMember }

func (nodeSpread) Name() string { return "node-spread" }

func (nodeSpread) SelectSet(e *SetElection) []int {
	order, byNode := nodeRanks(e.Nodes)
	var out []int
	if e.Want <= len(order) {
		// Evenly strided across the allocation, one rank per chosen node —
		// what tuned ROMIO configurations do.
		for i := 0; i < e.Want; i++ {
			nd := order[i*len(order)/e.Want]
			out = append(out, byNode[nd][0])
		}
		sort.Ints(out)
		return out
	}
	for depth := 0; len(out) < e.Want; depth++ {
		added := false
		for _, nd := range order {
			if depth < len(byNode[nd]) {
				out = append(out, byNode[nd][depth])
				added = true
				if len(out) == e.Want {
					break
				}
			}
		}
		if !added {
			break
		}
	}
	sort.Ints(out)
	return out
}

// BridgeFirst returns the MPICH BG/Q strategy: prefer ranks on I/O bridge
// nodes, then spread the remainder. Without bridge information it degrades
// to NodeSpread.
func BridgeFirst() Placement { return bridgeFirst{} }

type bridgeFirst struct{ firstMember }

func (bridgeFirst) Name() string { return "bridge-first" }

func (bridgeFirst) SelectSet(e *SetElection) []int {
	if e.Bridge == nil {
		return nodeSpread{}.SelectSet(e)
	}
	var bridgeRanks, otherFirstRanks []int
	seen := map[int]bool{}
	for r, nd := range e.Nodes {
		if seen[nd] {
			continue
		}
		seen[nd] = true
		if e.Bridge(nd) {
			bridgeRanks = append(bridgeRanks, r)
		} else {
			otherFirstRanks = append(otherFirstRanks, r)
		}
	}
	out := bridgeRanks
	if len(out) > e.Want {
		out = out[:e.Want]
	}
	// Fill the remainder evenly across the non-bridge nodes. When more slots
	// remain than distinct nodes, take every node once rather than striding
	// into duplicates — a duplicated rank would leave one collective-
	// buffering file domain with no owner.
	need := e.Want - len(out)
	if need >= len(otherFirstRanks) {
		out = append(out, otherFirstRanks...)
	} else {
		for i := 0; i < need; i++ {
			out = append(out, otherFirstRanks[i*len(otherFirstRanks)/need])
		}
	}
	sort.Ints(out)
	return out
}
