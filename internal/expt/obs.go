package expt

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tapioca/internal/obs"
)

// observer is the package-level observation session behind tapiocabench
// -trace/-phases/-json metrics: every measurement cell that funnels through
// rig.run contributes one per-cell recorder, merged here. All merge
// operations (Trace.AddCell, Registry.MergeFrom, PhaseTotals.Add) are
// order-independent, so parallel grid execution produces byte-identical
// output.
type observer struct {
	trace bool
	tr    *obs.Trace

	mu     sync.Mutex
	label  string
	order  []string
	phases map[string]*obs.PhaseTotals
	regs   map[string]*obs.Registry
}

// registryOf returns the label's metrics registry, creating it on first use.
// Callers must hold o.mu.
func (o *observer) registryOf(label string) *obs.Registry {
	reg := o.regs[label]
	if reg == nil {
		reg = obs.NewRegistry()
		o.regs[label] = reg
	}
	return reg
}

var obsState atomic.Pointer[observer]

// StartObservation begins an observation session, replacing any previous
// one. With trace true, cells also record full event streams (merged by
// ObservedTrace); with trace false only metrics and phase totals accumulate
// (the cheap -json/-phases mode).
func StartObservation(trace bool) {
	obsState.Store(&observer{
		trace:  trace,
		tr:     obs.NewTrace(),
		phases: map[string]*obs.PhaseTotals{},
		regs:   map[string]*obs.Registry{},
	})
}

// StopObservation ends the observation session; subsequent runs are
// unobserved (and pay nothing).
func StopObservation() { obsState.Store(nil) }

// Observing reports whether an observation session is active.
func Observing() bool { return obsState.Load() != nil }

// ObserveFigure labels subsequently run cells with a figure id (trace cell
// grouping and the per-figure phase table). Call between figures, never
// while one is running.
func ObserveFigure(id string) {
	if o := obsState.Load(); o != nil {
		o.mu.Lock()
		o.label = id
		o.mu.Unlock()
	}
}

// cellRecorder returns a fresh per-cell recorder, or nil when no
// observation session is active.
func cellRecorder() *obs.Recorder {
	o := obsState.Load()
	if o == nil {
		return nil
	}
	return obs.NewRecorder(o.trace)
}

// observeCell folds one completed cell into the session. Goroutine-safe
// (cells run on the worker pool).
func observeCell(rec *obs.Recorder) {
	o := obsState.Load()
	if o == nil || rec == nil {
		return
	}
	o.mu.Lock()
	label := o.label
	pt := o.phases[label]
	if pt == nil {
		pt = &obs.PhaseTotals{}
		o.phases[label] = pt
		o.order = append(o.order, label)
	}
	pt.Add(rec.PhaseTotals())
	reg := o.registryOf(label)
	o.mu.Unlock()
	o.tr.AddCell(label, rec)
	reg.MergeFrom(rec.Registry())
}

// ObservedTrace returns the session's merged trace, or nil when not tracing.
func ObservedTrace() *obs.Trace {
	o := obsState.Load()
	if o == nil || !o.trace {
		return nil
	}
	return o.tr
}

// ObservedMetrics returns the metrics registry for the currently observed
// label (nil when no session is active; Registry methods are nil-safe).
func ObservedMetrics() *obs.Registry {
	o := obsState.Load()
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.registryOf(o.label)
}

// MetricsOf returns a figure's merged metrics registry, or nil if the figure
// reported none (Registry methods are nil-safe).
func MetricsOf(id string) *obs.Registry {
	o := obsState.Load()
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.regs[id]
}

// PhaseFigures returns the figure ids that have reported phase time, in
// first-run order.
func PhaseFigures() []string {
	o := obsState.Load()
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.order...)
}

// PhaseTotalsOf returns a figure's accumulated phase breakdown (rank-time:
// every rank's virtual seconds in each phase, summed over the figure's
// cells).
func PhaseTotalsOf(id string) obs.PhaseTotals {
	o := obsState.Load()
	if o == nil {
		return obs.PhaseTotals{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if pt := o.phases[id]; pt != nil {
		return *pt
	}
	return obs.PhaseTotals{}
}

// PhaseSeconds returns a figure's phase breakdown as a name→seconds map
// (the -json shape).
func PhaseSeconds(id string) map[string]float64 {
	pt := PhaseTotalsOf(id)
	if pt.Empty() {
		return nil
	}
	m := make(map[string]float64, int(obs.NumPhases))
	for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
		m[ph.String()] = pt.Seconds(ph)
	}
	return m
}

// PhaseTable renders one figure's phase breakdown as an aligned text table
// row block — the paper's stacked-bar analyses in text form. Values are
// rank-seconds (virtual), with each phase's share of the total.
func PhaseTable(id string) string {
	pt := PhaseTotalsOf(id)
	if pt.Empty() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s phase breakdown (rank-seconds, virtual) --\n", id)
	total := pt.Total()
	names := make([]string, obs.NumPhases)
	for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
		names[ph] = ph.String()
	}
	sorted := make([]obs.Phase, obs.NumPhases)
	for i := range sorted {
		sorted[i] = obs.Phase(i)
	}
	sort.SliceStable(sorted, func(i, j int) bool { return pt[sorted[i]] > pt[sorted[j]] })
	for _, ph := range sorted {
		fmt.Fprintf(&b, "%-14s %12.3f s  %5.1f%%\n", names[ph], pt.Seconds(ph), 100*pt.Seconds(ph)/total)
	}
	fmt.Fprintf(&b, "%-14s %12.3f s\n", "total", total)
	return b.String()
}
