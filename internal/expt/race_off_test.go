//go:build !race

package expt

// raceEnabled reports whether the binary carries the race detector.
const raceEnabled = false
