package expt

import (
	"fmt"
	"time"

	"tapioca/internal/core"
	"tapioca/internal/mpi"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/workload"
)

// DataPlane lists the host-side data-plane experiments. They measure real
// wall-clock throughput of the byte path (gather into window memory,
// coalesced store I/O, verification checksums), so unlike All() their
// numbers vary run to run with the machine — they live in their own
// registry and are excluded from the determinism suites.
func DataPlane() []Spec {
	return []Spec{
		{"dataplane", "Data-plane host throughput: write / read / verify (wall-clock)", DataPlaneFigure},
	}
}

// DataPlaneFigure drives the full aggregation pipeline with real payload
// bytes across aggregation buffer sizes and reports host wall-clock GB/s for
// the write path, the read path, and verification (byte compare + CRC-64).
// Virtual (simulated) time is unaffected by the measurement; this figure is
// about what the host pays to carry the bytes. Phase boundaries are barrier
// release points stamped by rank 0, so each phase's span covers every rank's
// work in it.
func DataPlaneFigure(full bool) Result {
	nodes, rpn, particles := 32, 4, int64(2_000)
	if full {
		nodes, particles = 64, 8_000
	}
	ranks := nodes * rpn
	pattern := workload.HACC(ranks, particles, workload.SoA)
	totalBytes := pattern.TotalBytes()
	bufSizes := []int64{256 << 10, 1 << 20, 4 << 20}
	const seed = 20170907

	res := Result{
		ID:     "dataplane",
		Title:  "Data-plane host throughput: write / read / verify (wall-clock)",
		XLabel: "buffer (MB)",
		Labels: []string{"write path", "read path", "verify"},
		Notes: []string{
			fmt.Sprintf("HACC-IO SoA, %d ranks, %.1f MB of real payload on Theta/Lustre", ranks, float64(totalBytes)/1e6),
			"host wall-clock GB/s, machine-dependent (excluded from determinism suites)",
		},
	}
	for _, bufSize := range bufSizes {
		r := thetaRig(nodes, rpn, topology.RouteMinimal, 8)
		cfg := core.Config{Aggregators: 8, BufferSize: bufSize}
		datas := make([][][]byte, ranks)
		gots := make([][][]byte, ranks)
		decls := make([][][]storage.Seg, ranks)
		var tStart, tWritten, tRead time.Time

		_, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: rpn, Fabric: r.fab}, func(c *mpi.Comm) {
			var f *storage.File
			if c.Rank() == 0 {
				f = r.sys.Create("dataplane", storage.FileOptions{StripeCount: 8, StripeSize: 1 << 20})
			}
			f = c.Bcast(0, 8, f).(*storage.File)
			decl := pattern.Declared(c.Rank(), ranks)
			data := workload.FillData(decl, seed)
			decls[c.Rank()], datas[c.Rank()] = decl, data
			c.Barrier()
			if c.Rank() == 0 {
				tStart = time.Now()
			}

			w := core.New(c, r.sys, f, cfg)
			must(w.InitData(decl, data))
			must(w.WriteAll())
			c.Barrier()
			if c.Rank() == 0 {
				tWritten = time.Now()
			}

			got := make([][]byte, len(data))
			for i := range data {
				got[i] = make([]byte, len(data[i]))
			}
			gots[c.Rank()] = got
			rd := core.New(c, r.sys, f, cfg)
			must(rd.InitData(decl, got))
			must(rd.ReadAll())
			c.Barrier()
			if c.Rank() == 0 {
				tRead = time.Now()
			}
		})
		must(err)

		vstart := time.Now()
		for rank := 0; rank < ranks; rank++ {
			must(workload.VerifyData(decls[rank], seed, gots[rank]))
			var wcrc, rcrc uint64
			for i := range datas[rank] {
				wcrc = storage.CRC64(wcrc, datas[rank][i])
				rcrc = storage.CRC64(rcrc, gots[rank][i])
			}
			if wcrc != rcrc {
				must(fmt.Errorf("rank %d: write crc %#x != read crc %#x", rank, wcrc, rcrc))
			}
		}
		verifyDur := time.Since(vstart)

		res.Rows = append(res.Rows, Row{
			X: float64(bufSize) / (1 << 20),
			Values: []float64{
				gbps(totalBytes, tWritten.Sub(tStart).Seconds()),
				gbps(totalBytes, tRead.Sub(tWritten).Seconds()),
				gbps(2*totalBytes, verifyDur.Seconds()),
			},
		})
	}
	return res
}
