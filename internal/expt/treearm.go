package expt

import (
	"sync/atomic"

	"tapioca/internal/core"
	"tapioca/internal/mpiio"
	"tapioca/internal/tree"
)

// Package-level aggregation-tree state behind tapiocabench's -tree flag:
// when a shape is armed, every measurement cell built afterwards runs its
// TAPIOCA sessions with Config.Tree set to it and its MPI-IO sessions with
// the equivalent Hints.TreePlan — unless the cell pins its own shape, which
// always wins. Nil (the default) leaves every cell on the original path,
// byte-identical to a build without the tree plane; arming the degenerate
// flat shape must also be byte-identical, which TestFastPathsMatchReference
// asserts.
var treeShapeState atomic.Pointer[tree.Shape]

// SetTreeShape arms (or, with nil, clears) an aggregation-tree shape for
// subsequently built measurement cells.
func SetTreeShape(sh *tree.Shape) { treeShapeState.Store(sh) }

// TreeShape returns the armed shape, or nil.
func TreeShape() *tree.Shape { return treeShapeState.Load() }

// treeConfigFor injects the armed shape into a session config; a cell that
// already carries a shape keeps it.
func treeConfigFor(cfg core.Config) core.Config {
	if cfg.Tree == nil {
		cfg.Tree = treeShapeState.Load()
	}
	return cfg
}

// treeHintsFor mirrors treeConfigFor for the MPI-IO stack: the armed shape
// rides in as a TreePlan hint unless the cell set one.
func treeHintsFor(h mpiio.Hints) mpiio.Hints {
	if h.TreePlan == "" {
		if sh := treeShapeState.Load(); sh != nil {
			h.TreePlan = sh.String()
		}
	}
	return h
}
