package expt

import "testing"

// The data-plane figure is wall-clock (machine-dependent), so the test pins
// structure and sanity, not values: every cell must move real bytes and
// verify them, producing strictly positive throughput in every series.
func TestDataPlaneFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("moves real payload bytes at 128 ranks")
	}
	res := DataPlaneFigure(false)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if len(row.Values) != len(res.Labels) {
			t.Fatalf("row %v: %d values for %d series", row.X, len(row.Values), len(res.Labels))
		}
		for i, v := range row.Values {
			if v <= 0 {
				t.Errorf("buffer %.2f MB: series %q throughput %v", row.X, res.Labels[i], v)
			}
		}
	}
	if ByID("dataplane") == nil {
		t.Fatal("dataplane figure not reachable via ByID")
	}
}

func TestVerifyDataPlaneStats(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full verify scenario")
	}
	stats, err := VerifyDataPlaneStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.PipelineSeconds <= 0 || stats.VerifySeconds <= 0 {
		t.Fatalf("phase timings not recorded: %+v", stats)
	}
}
