package expt

import (
	"reflect"
	"testing"
)

// TestParallelRunMatchesSerial is the grid runner's determinism contract:
// for every registered experiment, running the grid on the worker pool
// produces output deep-equal to the serial order. Cells are independent
// simulations assembled by index, so any divergence is a real isolation bug
// (shared mutable state leaking between engines). Under the race detector
// (~10-20x slower simulations) the matrix trims itself to a representative
// subset so race CI finishes inside go test's default timeout; the full
// matrix runs in every non-race pass.
func TestParallelRunMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid")
	}
	defer SetParallelism(0)
	raceSubset := map[string]bool{"fig10": true, "table1": true, "abl-contention": true}
	for _, s := range All() {
		s := s
		if raceEnabled && !raceSubset[s.ID] {
			continue
		}
		t.Run(s.ID, func(t *testing.T) {
			SetParallelism(1)
			serial := s.Run(false)
			SetParallelism(8)
			parallel := s.Run(false)
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("parallel run diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
			}
		})
	}
}

// TestWorkerPoolRaceExercise runs one small grid with a wide pool so even
// -short -race runs drive concurrent engines through the worker pool.
func TestWorkerPoolRaceExercise(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(8)
	res := AblationContention(false)
	if len(res.Rows) != 1 || len(res.Rows[0].Values) != 2 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	for i, v := range res.Rows[0].Values {
		if v <= 0 {
			t.Fatalf("cell %d returned %v GB/s", i, v)
		}
	}
}

// TestSetParallelismRoundTrip pins the knob the -parallel flag drives.
func TestSetParallelismRoundTrip(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d, want 3", Parallelism())
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("Parallelism() = %d, want >= 1", Parallelism())
	}
}
