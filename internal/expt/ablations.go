package expt

import (
	"fmt"

	"tapioca/internal/core"
	"tapioca/internal/cost"
	"tapioca/internal/fault"
	"tapioca/internal/mpi"
	"tapioca/internal/mpiio"
	"tapioca/internal/netsim"
	"tapioca/internal/par"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/tree"
	"tapioca/internal/tune"
	"tapioca/internal/workload"
)

// AblationPlacement compares aggregator placement strategies on a Mira
// partition with skewed data (heavy ranks concentrated on part of each
// partition): the cost model should place aggregators near the data and the
// bridge nodes, unlike rank-order/random/adversarial choices. On uniform
// workloads all candidates cost the same and the strategies tie — the skew
// is what gives the objective function something to optimize (paper §IV-B:
// ω(i,A) weights the distances).
func AblationPlacement(full bool) Result {
	nodes := pick(full, 1024, 256)
	rpn := 16
	res := Result{
		ID:     "abl-placement",
		Title:  fmt.Sprintf("Placement strategies, skewed write on Mira (%d nodes × %d ranks)", nodes, rpn),
		XLabel: "MB/rank(avg)",
		Labels: []string{"TopologyAware", "RankOrder", "Random", "Worst", "TwoLevel"},
	}
	placements := []cost.Placement{
		core.PlacementTopologyAware, core.PlacementRankOrder,
		core.PlacementRandom, core.PlacementWorst,
		core.PlacementTwoLevel,
	}
	mbs := []float64{1, 2}
	res.Rows = runGrid(mbs, len(placements), func(row, col int) float64 {
		base := int64(mbs[row] * (1 << 20) / 2)
		r := miraRig(nodes, rpn, storage.LockShared)
		// Isolate the aggregation phase: an infinitely fast storage
		// tier exposes what placement does to the network phase
		// (end-to-end, the storage path hides it — see the note).
		r.sys = storage.NewNullFS()
		j := ioJob{
			r:       r,
			subfile: true,
			cfg:     core.Config{Aggregators: 16, BufferSize: 16 << 20, Placement: placements[col]},
			declared: func(rank, ranks int) [][]storage.Seg {
				// The second half of each partition's ranks carries 3x
				// the data of the first half (mean: 2x base).
				size := base
				if rank%(ranks/16) >= ranks/32 {
					size = 3 * base
				}
				// Offsets: prefix layout is rank-dependent; compute the
				// start of this rank's block.
				var off int64
				per := ranks / 16
				half := per / 2
				blockOf := func(rk int) int64 {
					if rk%per >= half {
						return 3 * base
					}
					return base
				}
				for i := 0; i < rank; i++ {
					off += blockOf(i)
				}
				return [][]storage.Seg{{storage.Contig(off, size)}}
			},
		}
		return mustIO(j, methodTapioca)
	})
	res.Notes = append(res.Notes,
		"aggregation phase isolated with a null storage tier; end-to-end, the storage path dominates and placement deltas shrink below 2%")
	return res
}

// AblationMPIIOPlacement compares MPI-IO aggregator placement strategies on
// a Theta collective write: the classic heuristics (rank order stacks
// aggregators on the first nodes; node spread ignores distances) against the
// cost-model strategies that reuse TAPIOCA's engine (internal/cost) — the
// first scenario where the tuned ROMIO baseline sees the interconnect.
func AblationMPIIOPlacement(full bool) Result {
	nodes := pick(full, 512, 128)
	rpn := 16
	osts := pick(full, 48, 12)
	cb := pick(full, 96, 24)
	res := Result{
		ID:     "abl-mpiio-placement",
		Title:  fmt.Sprintf("MPI-IO aggregator strategies, IOR write on Theta (%d nodes × %d ranks)", nodes, rpn),
		XLabel: "MB/rank",
		Labels: []string{"RankOrder", "NodeSpread", "TopologyAware", "TwoLevel"},
	}
	strategies := []cost.Placement{
		mpiio.AggrRankOrder, mpiio.AggrNodeSpread,
		mpiio.AggrTopologyAware, mpiio.AggrTwoLevel,
	}
	mbs := []float64{1, 2}
	res.Rows = runGrid(mbs, len(strategies), func(row, col int) float64 {
		size := int64(mbs[row] * (1 << 20))
		r := thetaRig(nodes, rpn, topology.RouteMinimal, osts)
		j := ioJob{
			r:       r,
			fileOpt: storage.FileOptions{StripeCount: osts, StripeSize: 8 << 20},
			hints: mpiio.Hints{
				CBNodes: cb, CBBufferSize: 8 << 20,
				Strategy: strategies[col], AlignDomains: true, CyclicDomains: true,
			},
			declared: func(rank, ranks int) [][]storage.Seg {
				return [][]storage.Seg{workload.IORSegs(rank, size)}
			},
		}
		return mustIO(j, methodMPIIO)
	})
	res.Notes = append(res.Notes,
		"rank order funnels every aggregator onto the first nodes (NIC incast); the cost-model strategies spread elections across blocks and minimize hop distance")
	return res
}

// AblationPipeline compares double-buffered aggregation against the
// single-buffer variant on both platforms.
func AblationPipeline(full bool) Result {
	nodesT := pick(full, 512, 128)
	nodesM := pick(full, 1024, 256)
	rpn := 16
	osts := pick(full, 48, 12)
	res := Result{
		ID:     "abl-pipeline",
		Title:  "Double vs single aggregation buffer (micro-benchmark, 2 MB/rank)",
		XLabel: "platform(0=Theta,1=Mira)",
		Labels: []string{"DoubleBuffer", "SingleBuffer"},
	}
	size := int64(2 << 20)
	declared := func(rank, ranks int) [][]storage.Seg {
		return [][]storage.Seg{workload.IORSegs(rank, size)}
	}
	res.Rows = runGrid([]float64{0, 1}, 2, func(row, col int) float64 {
		single := col == 1
		var j ioJob
		if row == 0 { // Theta
			j = ioJob{
				r:       thetaRig(nodesT, rpn, topology.RouteMinimal, osts),
				fileOpt: storage.FileOptions{StripeCount: osts, StripeSize: 8 << 20},
				cfg:     core.Config{Aggregators: osts, BufferSize: 8 << 20, SingleBuffer: single},
			}
		} else { // Mira
			j = ioJob{
				r:       miraRig(nodesM, rpn, storage.LockShared),
				subfile: true,
				cfg:     core.Config{Aggregators: 16, BufferSize: 16 << 20, SingleBuffer: single},
			}
		}
		j.declared = declared
		return mustIO(j, methodTapioca)
	})
	return res
}

// AblationDeclared quantifies the declared-I/O advantage: one Init covering
// all nine HACC variables versus nine separate sessions (the per-call
// behaviour of classic collective I/O), AoS layout on Theta.
func AblationDeclared(full bool) Result {
	nodes := pick(full, 512, 128)
	rpn := 16
	osts := pick(full, 48, 6)
	aggr := pick(full, 192, 24)
	res := Result{
		ID:     "abl-declared",
		Title:  fmt.Sprintf("Declared I/O vs per-call aggregation, HACC AoS on Theta (%d nodes × %d ranks)", nodes, rpn),
		XLabel: "MB/rank",
		Labels: []string{"Declared(1 Init)", "PerCall(9 Inits)"},
	}
	particlesList := []int64{25000, 100000}
	xs := make([]float64, len(particlesList))
	for i, particles := range particlesList {
		xs[i] = float64(particles*workload.ParticleBytes) / (1 << 20)
	}
	res.Rows = runGrid(xs, 2, func(row, col int) float64 {
		particles := particlesList[row]
		perCall := col == 1
		r := thetaRig(nodes, rpn, topology.RouteMinimal, osts)
		var totalBytes int64
		elapsed, err := r.run(func(c *mpi.Comm, tm *timer) {
			decl := workload.HACCDeclared(c.Rank(), c.Size(), particles, workload.AoS)
			var mine int64
			for _, segs := range decl {
				mine += storage.TotalBytes(segs)
			}
			sum := c.AllreduceI64(mpi.OpSum, mine)
			if c.Rank() == 0 {
				totalBytes = sum
			}
			f := openShared(c, r.sys, "hacc", storage.FileOptions{StripeCount: osts, StripeSize: 16 << 20})
			cfg := core.Config{Aggregators: aggr, BufferSize: 16 << 20}
			tm.Start(c)
			if perCall {
				for _, segs := range decl {
					w := core.New(c, r.sys, f, cfg)
					must(w.Init([][]storage.Seg{segs}))
					must(w.WriteAll())
				}
			} else {
				w := core.New(c, r.sys, f, cfg)
				must(w.Init(decl))
				must(w.WriteAll())
			}
			tm.Stop(c)
		})
		if err != nil {
			panic(err)
		}
		return gbps(totalBytes, elapsed)
	})
	res.Notes = append(res.Notes,
		"per-call sessions flush partially-filled, sparse buffers — the paper's Fig. 2 pathology")
	return res
}

// AblationAggregators sweeps the aggregator count on the Theta
// micro-benchmark (the open tuning question the paper cites: how many
// aggregators collective I/O needs).
func AblationAggregators(full bool) Result {
	nodes := pick(full, 512, 128)
	rpn := 16
	osts := pick(full, 48, 12)
	res := Result{
		ID:     "abl-aggrcount",
		Title:  fmt.Sprintf("Aggregator count, Theta micro-benchmark (%d nodes × %d ranks, 48 OSTs)", nodes, rpn),
		XLabel: "aggregators",
		Labels: []string{"TAPIOCA"},
	}
	size := int64(1 << 20)
	var counts []int
	for _, aggr := range []int{12, 24, 48, 96, 192, 384} {
		if aggr <= nodes*rpn {
			counts = append(counts, aggr)
		}
	}
	xs := make([]float64, len(counts))
	for i, aggr := range counts {
		xs[i] = float64(aggr)
	}
	res.Rows = runGrid(xs, 1, func(row, _ int) float64 {
		r := thetaRig(nodes, rpn, topology.RouteMinimal, osts)
		j := ioJob{
			r:       r,
			fileOpt: storage.FileOptions{StripeCount: osts, StripeSize: 8 << 20},
			cfg:     core.Config{Aggregators: counts[row], BufferSize: 8 << 20},
			declared: func(rank, ranks int) [][]storage.Seg {
				return [][]storage.Seg{workload.IORSegs(rank, size)}
			},
		}
		return mustIO(j, methodTapioca)
	})
	return res
}

// AblationAutotune closes the tuning loop: on the Theta collective write it
// compares the library defaults, the model-driven autotuner's pick
// (internal/tune), and the best configuration found by an exhaustive
// simulated sweep over the same search space. The tuner only predicts — it
// runs zero simulations — yet its pick must be no slower than the defaults
// and within 10% of the sweep's measured optimum.
func AblationAutotune(full bool) Result {
	nodes := pick(full, 512, 128)
	rpn := 16
	osts := pick(full, 48, 12)
	size := int64(1 << 20)
	w := workload.IOR(nodes*rpn, size)
	aggs := []int{osts, 2 * osts, 4 * osts, 8 * osts}
	bufs := []int64{4 << 20, 8 << 20, 16 << 20}

	// The tuner prices candidates off a rig's calibration without touching
	// its resource state; measurements below each use a fresh rig.
	r := thetaRig(nodes, rpn, topology.RouteMinimal, osts)
	res := tune.Autotune(tune.Platform{
		Topo:         r.topo,
		Dist:         r.fab.Distances(),
		Sys:          r.sys,
		RanksPerNode: rpn,
	}, w, tune.Options{
		Aggregators: aggs,
		BufferSizes: bufs,
		Placements:  []cost.Placement{core.PlacementTopologyAware},
		NoRefine:    true,
	})

	measure := func(cfg core.Config, fopt storage.FileOptions) float64 {
		rr := thetaRig(nodes, rpn, topology.RouteMinimal, osts)
		j := ioJob{
			r:       rr,
			fileOpt: fopt,
			cfg:     cfg,
			declared: func(rank, ranks int) [][]storage.Seg {
				return [][]storage.Seg{workload.IORSegs(rank, size)}
			},
		}
		return mustIO(j, methodTapioca)
	}

	// The default, tuned and every sweep configuration are independent
	// simulations: measure them all on the worker pool, then pick the sweep
	// winner from the index-ordered values (first-best, as the serial loop).
	advisor := storage.StripeAdvisorOf(r.sys)
	type cell struct {
		cfg  core.Config
		fopt storage.FileOptions
	}
	cells := []cell{
		{core.Config{}, storage.FileOptions{}},
		{res.Config, res.FileOptions},
	}
	for _, a := range aggs {
		for _, b := range bufs {
			cfg := core.Config{Aggregators: a, BufferSize: b}
			cells = append(cells, cell{cfg, advisor.RecommendStripe(w.TotalBytes(), b, a)})
		}
	}
	vals := runCells(len(cells), func(i int) float64 {
		return measure(cells[i].cfg, cells[i].fopt)
	})
	defGB, tunedGB := vals[0], vals[1]
	var sweepGB float64
	var sweepCfg core.Config
	for i, gb := range vals[2:] {
		if gb > sweepGB {
			sweepGB, sweepCfg = gb, cells[i+2].cfg
		}
	}

	return Result{
		ID:     "abl-autotune",
		Title:  fmt.Sprintf("Autotuned vs default vs exhaustive sweep, IOR write on Theta (%d nodes × %d ranks)", nodes, rpn),
		XLabel: "MB/rank",
		Labels: []string{"Default", "Autotuned", "SweepBest"},
		Rows:   []Row{{X: float64(size) / (1 << 20), Values: []float64{defGB, tunedGB, sweepGB}}},
		Notes: []string{
			fmt.Sprintf("tuner picked %d aggregators, %d MB buffers, %d×%d MB stripes (%d candidates scored, %.1f ms predicted)",
				res.Config.Aggregators, res.Config.BufferSize>>20,
				res.FileOptions.StripeCount, res.FileOptions.StripeSize>>20,
				res.Evaluated, res.Predicted*1e3),
			fmt.Sprintf("sweep best: %d aggregators, %d MB buffers over %d simulated configurations",
				sweepCfg.Aggregators, sweepCfg.BufferSize>>20, len(aggs)*len(bufs)),
			"defaults write a 1-OST file with 1 MB stripes — the Figure 8 pathology the tuner must escape",
		},
	}
}

// AblationIntraNode measures what intra-node pre-aggregation buys: the same
// Theta collective write at increasing ranks-per-node density, flat (every
// rank puts to its aggregator over the fabric) versus staged (co-located
// ranks deposit into a node leader at memory bandwidth and one coalesced put
// per node-group crosses the fabric per round). The aggregation phase is
// isolated with a null storage tier, and each cell reports the inter-node
// fabric message count alongside bandwidth — the claim under test is the
// ppn-fold message collapse, and the note rows carry the measured ratios.
//
// The ablation asserts its own claims: at ppn ≥ 8 staging must cut fabric
// messages at least 2x, and at ppn = 1 it must change nothing (every node
// group is a singleton, so the staged schedule degenerates to the flat one).
//
// Two fabric regimes per density. On a clean fabric the wormhole model
// conserves bytes — the aggregator's ejection NIC carries the same payload
// either way — so staging's deposit hop costs a sliver and flat wins on
// wall-clock; the message collapse buys nothing *per se*. On a lossy fabric
// the per-transfer retransmit penalty is a fixed cost per message, so the
// ppn-fold collapse translates directly into fewer retransmit timeouts —
// that regime is where coalescing must win wall-clock, and the ablation
// asserts it does at the highest density (at moderate densities the few
// coalesced messages make the loss draw noisy: one unlucky 8 MB retransmit
// can erase the expected win, which is itself informative and stays visible
// in the rows).
func AblationIntraNode(full bool) Result {
	nodes := pick(full, 256, 64)
	osts := pick(full, 48, 12)
	aggr := pick(full, 32, 16)
	size := int64(1 << 20)
	ppns := []int{1, 2, 4, 8, 16}
	// Lossy-fabric regime: a small per-transfer drop probability with a
	// timeout-driven retransmit (RTO-scale, fixed per message — the dominant
	// real-world cost of a drop, and deliberately larger than any single
	// transfer's serialization time so the per-message term is what the
	// regime measures).
	const lossRate = 0.1
	const retransmitRTO = 500_000 // 500µs
	res := Result{
		ID:     "abl-intranode",
		Title:  fmt.Sprintf("Intra-node pre-aggregation, IOR write on Theta (%d nodes, ppn sweep)", nodes),
		XLabel: "ranks/node",
		Labels: []string{"Flat", "Staged", "Flat/lossy", "Staged/lossy"},
	}
	type out struct {
		gb   float64
		msgs int64
	}
	cells := make([]out, 4*len(ppns))
	par.Map(len(cells), func(i int) {
		ppn, staged, lossy := ppns[i/4], i%2 == 1, i%4 >= 2
		r := thetaRig(nodes, ppn, topology.RouteMinimal, osts)
		// Isolate the aggregation phase: an infinitely fast storage tier
		// exposes what the staging hop does to the network phase.
		r.sys = storage.NewNullFS()
		if lossy {
			// Network-plane faults only (no storage/corruption/death classes):
			// the deterministic plan drops a fixed fraction of transfers, each
			// paying the retransmit timeout — a per-message cost.
			r.fab.SetFaults(fault.NewPlan(fault.Config{
				Seed:              11,
				NetLossRate:       lossRate,
				RetransmitPenalty: retransmitRTO,
			}))
		}
		j := ioJob{
			r:   r,
			cfg: core.Config{Aggregators: aggr, BufferSize: 8 << 20, IntraNodeStaging: staged},
			declared: func(rank, ranks int) [][]storage.Seg {
				return [][]storage.Seg{workload.IORSegs(rank, size)}
			},
		}
		gb := mustIO(j, methodTapioca)
		cells[i] = out{gb: gb, msgs: r.fab.FabricMessages()}
	})
	for i, ppn := range ppns {
		flat, staged := cells[4*i], cells[4*i+1]
		lossyFlat, lossyStaged := cells[4*i+2], cells[4*i+3]
		res.Rows = append(res.Rows, Row{X: float64(ppn),
			Values: []float64{flat.gb, staged.gb, lossyFlat.gb, lossyStaged.gb}})
		ratio := float64(flat.msgs) / float64(staged.msgs)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"ppn=%d: fabric messages %d flat vs %d staged (%.1fx); lossy fabric %.1f vs %.1f GB/s (%.2fx)",
			ppn, flat.msgs, staged.msgs, ratio, lossyFlat.gb, lossyStaged.gb, lossyStaged.gb/lossyFlat.gb))
		if ppn >= 8 && ratio < 2 {
			must(fmt.Errorf("abl-intranode: staging cut fabric messages only %.2fx at ppn=%d, claim requires ≥ 2x", ratio, ppn))
		}
		if ppn == 1 && flat.msgs != staged.msgs {
			must(fmt.Errorf("abl-intranode: staging changed the ppn=1 message count (%d flat vs %d staged), must be a no-op", flat.msgs, staged.msgs))
		}
		if ppn == ppns[len(ppns)-1] && lossyStaged.gb <= lossyFlat.gb {
			must(fmt.Errorf("abl-intranode: staged %.1f GB/s did not beat flat %.1f GB/s on the lossy fabric at ppn=%d",
				lossyStaged.gb, lossyFlat.gb, ppn))
		}
	}
	return res
}

// AblationTree measures what synthesized aggregation trees buy over the two
// fixed data planes: the same Theta collective write at increasing partition
// width (compute nodes per aggregation partition — the knob that grows the
// reduction tree), flat versus node-staged versus the autotuner's searched
// tree shape. The shape is not hand-picked: each row runs the real
// tree-search dimension (tune.Options.TreeSearch) with the lossy regime's
// expected per-message cost as the penalty, and the cells execute whatever
// the search proposed — including at narrow widths, where the honest answer
// is a degenerate shape (an interior relay re-serializes its subtree's bytes,
// and below a width threshold that costs more than the messages it saves, so
// the search correctly declines a tree and the Tree column tracks Staged).
// The aggregation phase is isolated with a null storage tier and each cell
// reports the inter-node fabric message count alongside bandwidth.
//
// Two fabric regimes. On a clean fabric the wormhole model conserves bytes,
// so the extra relay hop costs a sliver and the tree is expected to trail
// the fixed planes on wall-clock — that column is the honest cost of the
// shape. The lossy regime is deliberately harsher than abl-intranode's
// (higher drop rate, full RTO-scale retransmits): every message pays a
// retransmit penalty in expectation, and the root's NIC serializes its
// ingest, so flat pays the penalty per rank, staged per node — but all at
// one NIC — while an interior level batches the root's ingest into a few
// large relay messages and pays the per-message price in parallel across
// relay NICs. That is the regime the tree search is told about (its message
// penalty is the regime's expected per-drop cost), closing the loop between
// the pricer and the fabric the cells run on. The ablation asserts its own
// claims: the search must propose an interior shape at the widest partition,
// an interior tree must book several-fold fewer fabric messages than flat,
// the degenerate flat/staged shapes must reproduce the plain pipelines
// exactly (identical wall-clock and message counts), and at the widest
// partition the searched tree must beat both fixed planes on the lossy
// fabric.
func AblationTree(full bool) Result {
	nodes := pick(full, 512, 64)
	rpn := pick(full, 16, 8)
	osts := pick(full, 48, 12)
	widths := []int{16, 32, 64}
	// Strided small-block workload (the HACC-style interleaved layout): every
	// rank contributes one small block to every stripe, so every node group
	// sends one small coalesced put in every aggregation round. That is the
	// many-small-messages regime trees exist for — per-message costs dominate
	// serialization — and it keeps the engagement uniform, so the search's
	// per-round pricing reasons about the same schedule the cells execute.
	// (With multi-MB contiguous blocks each rank engages a single round, the
	// byte stream dwarfs the per-message penalty, and staged is simply
	// correct; abl-intranode covers that regime.)
	blk := int64(16 << 10)
	nblocks := pick(full, 8, 16)
	strided := workload.Pattern{
		Name:  "strided",
		Ranks: nodes * rpn,
		Declared: func(rank, ranks int) [][]storage.Seg {
			segs := make([]storage.Seg, nblocks)
			for j := range segs {
				segs[j] = storage.Contig((int64(j)*int64(ranks)+int64(rank))*blk, blk)
			}
			return [][]storage.Seg{segs}
		},
	}
	// Deep-loss fabric regime: deterministic drops, each retransmitted after
	// a full RTO — a fixed per-message cost. Its expectation (rate × RTO) is
	// exactly the message penalty handed to the shape search, so the tuner
	// prices shapes against the fabric the lossy cells run on.
	const lossRate = 0.2
	const retransmitRTO = 1_000_000 // 1ms
	const msgPenalty = lossRate * retransmitRTO * 1e-9

	res := Result{
		ID:     "abl-tree",
		Title:  fmt.Sprintf("Synthesized aggregation trees, strided write on Theta (%d nodes × %d ranks, width sweep)", nodes, rpn),
		XLabel: "nodes/partition",
		Labels: []string{"Flat", "Staged", "Tree", "Flat/lossy", "Staged/lossy", "Tree/lossy"},
	}

	// One shape search per row, through the public autotuner surface: a
	// pinned grid point so the only open dimension is the tree shape.
	shapes := make([]*tree.Shape, len(widths))
	for i, width := range widths {
		r := thetaRig(nodes, rpn, topology.RouteMinimal, osts)
		tres := tune.Autotune(tune.Platform{
			Topo:         r.topo,
			Dist:         r.fab.Distances(),
			Sys:          r.sys,
			RanksPerNode: rpn,
		}, strided, tune.Options{
			Aggregators:    []int{nodes / width},
			BufferSizes:    []int64{8 << 20},
			Placements:     []cost.Placement{core.PlacementTopologyAware},
			NoRefine:       true,
			TreeSearch:     true,
			MessagePenalty: msgPenalty,
		})
		switch {
		case tres.Config.Tree != nil:
			shapes[i] = tres.Config.Tree
		case tres.Config.IntraNodeStaging:
			shapes[i] = &tree.Shape{Kind: tree.NodeStaged}
		default:
			shapes[i] = &tree.Shape{Kind: tree.Flat}
		}
		if width == widths[len(widths)-1] && shapes[i].Degenerate() {
			must(fmt.Errorf("abl-tree: the shape search did not pick an interior tree at %d nodes/partition", width))
		}
	}

	type out struct {
		gb   float64
		msgs int64
	}
	nrows := len(widths)
	// 6 grid cells per row, plus two degeneracy probes at the widest row:
	// tree shapes that collapse to the plain pipelines (flat, staged) must
	// reproduce them exactly.
	cells := make([]out, 6*nrows+2)
	par.Map(len(cells), func(i int) {
		row, variant, lossy := 0, 0, false
		var shape *tree.Shape
		switch {
		case i < 6*nrows:
			row, variant, lossy = i/6, i%3, i%6 >= 3
			if variant == 2 {
				shape = shapes[row]
			}
		case i == 6*nrows:
			row, variant, shape = nrows-1, 0, &tree.Shape{Kind: tree.Flat}
		default:
			row, variant, shape = nrows-1, 1, &tree.Shape{Kind: tree.NodeStaged}
		}
		r := thetaRig(nodes, rpn, topology.RouteMinimal, osts)
		// Isolate the aggregation phase: an infinitely fast storage tier
		// exposes what the reduction shape does to the network phase.
		r.sys = storage.NewNullFS()
		if lossy {
			r.fab.SetFaults(fault.NewPlan(fault.Config{
				Seed:              11,
				NetLossRate:       lossRate,
				RetransmitPenalty: retransmitRTO,
			}))
		}
		j := ioJob{
			r: r,
			cfg: core.Config{
				Aggregators:      nodes / widths[row],
				BufferSize:       8 << 20,
				IntraNodeStaging: variant == 1,
				Tree:             shape,
			},
			declared: strided.Declared,
		}
		gb := mustIO(j, methodTapioca)
		cells[i] = out{gb: gb, msgs: r.fab.FabricMessages()}
	})

	for i, width := range widths {
		flat, staged, treed := cells[6*i], cells[6*i+1], cells[6*i+2]
		lFlat, lStaged, lTree := cells[6*i+3], cells[6*i+4], cells[6*i+5]
		res.Rows = append(res.Rows, Row{X: float64(width),
			Values: []float64{flat.gb, staged.gb, treed.gb, lFlat.gb, lStaged.gb, lTree.gb}})
		res.Notes = append(res.Notes, fmt.Sprintf(
			"width=%d: searched shape %s; fabric messages %d flat / %d staged / %d tree; lossy fabric %.1f / %.1f / %.1f GB/s",
			width, shapes[i], flat.msgs, staged.msgs, treed.msgs, lFlat.gb, lStaged.gb, lTree.gb))
		if !shapes[i].Degenerate() && treed.msgs*4 >= flat.msgs {
			must(fmt.Errorf("abl-tree: tree booked %d fabric messages vs %d flat at width=%d, claim requires a >4x cut",
				treed.msgs, flat.msgs, width))
		}
		if width == widths[nrows-1] && (lTree.gb <= lFlat.gb || lTree.gb <= lStaged.gb) {
			must(fmt.Errorf("abl-tree: searched tree %.1f GB/s did not beat flat %.1f / staged %.1f GB/s on the lossy fabric at width=%d",
				lTree.gb, lFlat.gb, lStaged.gb, width))
		}
	}
	dFlat, dStaged := cells[6*nrows], cells[6*nrows+1]
	flat, staged := cells[6*(nrows-1)], cells[6*(nrows-1)+1]
	if dFlat != flat || dStaged != staged {
		must(fmt.Errorf("abl-tree: degenerate tree shapes diverged from the plain pipelines (flat %+v vs %+v, staged %+v vs %+v)",
			dFlat, flat, dStaged, staged))
	}
	res.Notes = append(res.Notes,
		"degenerate tree shapes (flat, staged) reproduced the plain pipelines exactly: identical wall-clock and fabric message counts")
	return res
}

// AblationContention compares the per-link and endpoint-only network
// contention models (a simulator-fidelity knob, not a paper experiment).
func AblationContention(full bool) Result {
	nodes := pick(full, 512, 128)
	rpn := 16
	osts := pick(full, 48, 12)
	res := Result{
		ID:     "abl-contention",
		Title:  fmt.Sprintf("Contention models, Theta micro-benchmark (%d nodes × %d ranks)", nodes, rpn),
		XLabel: "MB/rank",
		Labels: []string{"PerLink", "EndpointOnly"},
	}
	size := int64(2 << 20)
	modes := []int{netsim.ContentionLinks, netsim.ContentionEndpoint}
	res.Rows = runGrid([]float64{2}, len(modes), func(_, col int) float64 {
		topo := topology.ThetaDragonfly(nodes, topology.RouteMinimal)
		fab := netsim.New(topo, netsim.Config{Contention: modes[col]})
		sys := storage.NewLustre(topo, fab, storage.LustreConfig{NumOST: osts})
		r := &rig{topo: topo, fab: fab, sys: sys, nodes: nodes, rpn: rpn}
		j := ioJob{
			r:       r,
			fileOpt: storage.FileOptions{StripeCount: osts, StripeSize: 8 << 20},
			cfg:     core.Config{Aggregators: osts, BufferSize: 8 << 20},
			declared: func(rank, ranks int) [][]storage.Seg {
				return [][]storage.Seg{workload.IORSegs(rank, size)}
			},
		}
		return mustIO(j, methodTapioca)
	})
	return res
}
