package expt

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig7", "fig8", "fig9", "fig10", "table1", "fig11", "fig12", "fig13", "fig14"}
	for _, id := range want {
		if ByID(id) == nil {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("unknown id resolved")
	}
}

func TestRenderAndCSV(t *testing.T) {
	res := Result{
		ID: "x", Title: "T", XLabel: "mb",
		Labels: []string{"a", "b"},
		Rows:   []Row{{X: 1, Values: []float64{2, 3}}},
		Notes:  []string{"n"},
	}
	out := Render(res)
	if !strings.Contains(out, "T") || !strings.Contains(out, "2.000") {
		t.Fatalf("render = %q", out)
	}
	csv := CSV(res)
	if !strings.Contains(csv, "x,a,b") || !strings.Contains(csv, "1,2,3") {
		t.Fatalf("csv = %q", csv)
	}
}

// Shape assertions on the fast experiments (reduced scale). The heavier
// grids (Figs. 11, 12, 14) are exercised by the benchmarks.

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid")
	}
	res := Fig8(false)
	for _, row := range res.Rows {
		optR, optW, baseR, baseW := row.Values[0], row.Values[1], row.Values[2], row.Values[3]
		if optW < 3*baseW {
			t.Errorf("x=%v: optimized write %v not >>3x baseline %v", row.X, optW, baseW)
		}
		if optR < 2*baseR {
			t.Errorf("x=%v: optimized read %v not >>2x baseline %v", row.X, optR, baseR)
		}
		if baseR < baseW {
			// Reads outpace writes on untuned Lustre in the paper too.
			t.Errorf("x=%v: baseline read %v below baseline write %v", row.X, baseR, baseW)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid")
	}
	res := Fig10(false)
	last := res.Rows[len(res.Rows)-1]
	if last.Values[0] <= last.Values[1] {
		t.Errorf("TAPIOCA %v not ahead of MPI-IO %v at the largest size", last.Values[0], last.Values[1])
	}
	for _, row := range res.Rows {
		if row.Values[0] < 0.9*row.Values[1] {
			t.Errorf("x=%v: TAPIOCA %v materially behind MPI-IO %v", row.X, row.Values[0], row.Values[1])
		}
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid")
	}
	res := Table1(false)
	var peakX float64
	var peakV float64
	for _, row := range res.Rows {
		if row.Values[0] > peakV {
			peakV = row.Values[0]
			peakX = row.X
		}
	}
	if peakX != 1 {
		t.Errorf("peak ratio = %v, want 1:1 (paper Table I)", peakX)
	}
	// Both extremes must be below the peak.
	first, last := res.Rows[0].Values[0], res.Rows[len(res.Rows)-1].Values[0]
	if first >= peakV || last >= peakV {
		t.Errorf("extremes (%v, %v) not below peak %v", first, last, peakV)
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid")
	}
	res := Fig13(false)
	for _, row := range res.Rows {
		tapAoS, mpiAoS := row.Values[0], row.Values[1]
		tapSoA, mpiSoA := row.Values[2], row.Values[3]
		if tapAoS < 4*mpiAoS {
			t.Errorf("x=%v: TAPIOCA AoS %v not >>4x MPI-IO AoS %v", row.X, tapAoS, mpiAoS)
		}
		if tapSoA < mpiSoA {
			t.Errorf("x=%v: TAPIOCA SoA %v behind MPI-IO SoA %v", row.X, tapSoA, mpiSoA)
		}
	}
}

func TestAblationPipelineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid")
	}
	res := AblationPipeline(false)
	theta := res.Rows[0]
	if theta.Values[0] < 1.5*theta.Values[1] {
		t.Errorf("double buffering %v not >=1.5x single %v on Theta", theta.Values[0], theta.Values[1])
	}
}

func TestAblationDeclaredShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid")
	}
	res := AblationDeclared(false)
	for _, row := range res.Rows {
		if row.Values[0] < 3*row.Values[1] {
			t.Errorf("x=%v: declared %v not >>3x per-call %v", row.X, row.Values[0], row.Values[1])
		}
	}
}

// TestAblationAutotuneShape holds the autotuner to its acceptance bar on
// the Theta collective write: the tuned configuration must be (a) no slower
// than the library defaults and (b) within 10% of the best configuration an
// exhaustive sweep over the same search space finds — and the pick itself
// must be deterministic across runs.
func TestAblationAutotuneShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid")
	}
	res := AblationAutotune(false)
	row := res.Rows[0]
	def, tuned, sweep := row.Values[0], row.Values[1], row.Values[2]
	if tuned < def {
		t.Errorf("tuned %v GB/s slower than defaults %v GB/s", tuned, def)
	}
	if tuned < 0.9*sweep {
		t.Errorf("tuned %v GB/s not within 10%% of sweep best %v GB/s", tuned, sweep)
	}
	// The pick is deterministic: re-running the (simulation-free) search
	// lands on the identical configuration.
	again := AblationAutotune(false)
	if res.Notes[0] != again.Notes[0] {
		t.Errorf("non-deterministic pick:\n%s\n%s", res.Notes[0], again.Notes[0])
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid")
	}
	a := Fig10(false)
	b := Fig10(false)
	for i := range a.Rows {
		for j := range a.Rows[i].Values {
			if a.Rows[i].Values[j] != b.Rows[i].Values[j] {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a.Rows[i].Values[j], b.Rows[i].Values[j])
			}
		}
	}
}
