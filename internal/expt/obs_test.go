package expt

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"tapioca/internal/obs"
)

// stripHost drops the "host."-prefixed metrics (wall-clock measurements,
// legitimately nondeterministic) so the rest of the snapshot can be compared
// exactly.
func stripHost(s obs.Snapshot) obs.Snapshot {
	for name := range s.Counters {
		if strings.HasPrefix(name, "host.") {
			delete(s.Counters, name)
		}
	}
	for name := range s.Gauges {
		if strings.HasPrefix(name, "host.") {
			delete(s.Gauges, name)
		}
	}
	for name := range s.Histograms {
		if strings.HasPrefix(name, "host.") {
			delete(s.Histograms, name)
		}
	}
	return s
}

// TestTraceDeterminism is the flight recorder's core acceptance: the same
// figure observed serially and on the worker pool produces byte-identical
// Chrome traces, identical metrics snapshots (minus "host." wall-clock), and
// identical phase totals — and observation does not change the figure's
// measured results.
func TestTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid")
	}
	s := ByID("abl-pipeline")
	if s == nil {
		t.Fatal("unknown spec abl-pipeline")
	}
	defer SetParallelism(0)
	defer StopObservation()

	baseline := func() Result {
		SetParallelism(1)
		StopObservation()
		return s.Run(false)
	}()

	type capture struct {
		res    Result
		trace  []byte
		snap   obs.Snapshot
		phases obs.PhaseTotals
		table  string
	}
	runObserved := func(workers int) capture {
		SetParallelism(workers)
		StartObservation(true)
		defer StopObservation()
		ObserveFigure(s.ID)
		res := s.Run(false)
		tr := ObservedTrace()
		if tr == nil || tr.NumEvents() == 0 {
			t.Fatal("no trace recorded")
		}
		if tr.Dropped() != 0 {
			t.Fatalf("trace dropped %d events at this scale", tr.Dropped())
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return capture{
			res:    res,
			trace:  buf.Bytes(),
			snap:   stripHost(MetricsOf(s.ID).Snapshot()),
			phases: PhaseTotalsOf(s.ID),
			table:  PhaseTable(s.ID),
		}
	}

	serial := runObserved(1)
	parallel := runObserved(4)

	if !reflect.DeepEqual(baseline, serial.res) {
		t.Errorf("observation changed the figure's results:\nbase: %+v\nobs:  %+v", baseline, serial.res)
	}
	if !reflect.DeepEqual(serial.res, parallel.res) {
		t.Errorf("serial and parallel observed results differ")
	}
	if !bytes.Equal(serial.trace, parallel.trace) {
		t.Errorf("serial and parallel traces differ (%d vs %d bytes)", len(serial.trace), len(parallel.trace))
	}
	compareSnapshots(t, serial.snap, parallel.snap)
	if serial.phases != parallel.phases {
		t.Errorf("serial and parallel phase totals differ: %v vs %v", serial.phases, parallel.phases)
	}
	if serial.phases.Empty() {
		t.Error("no phase time recorded")
	}
	if serial.snap.Empty() {
		t.Error("no metrics recorded")
	}
	if serial.table == "" {
		t.Error("PhaseTable empty for an observed figure")
	}
	if serial.table != parallel.table {
		t.Errorf("serial and parallel phase tables differ:\n%s\nvs\n%s", serial.table, parallel.table)
	}
}

// compareSnapshots requires exact equality everywhere except histogram Sum
// and Mean, which accumulate float64 in cell-completion order and may differ
// in the last ulp between serial and parallel runs.
func compareSnapshots(t *testing.T, a, b obs.Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Errorf("counters differ:\na: %v\nb: %v", a.Counters, b.Counters)
	}
	if !reflect.DeepEqual(a.Gauges, b.Gauges) {
		t.Errorf("gauges differ:\na: %v\nb: %v", a.Gauges, b.Gauges)
	}
	if len(a.Histograms) != len(b.Histograms) {
		t.Fatalf("histogram sets differ: %d vs %d", len(a.Histograms), len(b.Histograms))
	}
	for name, ha := range a.Histograms {
		hb, ok := b.Histograms[name]
		if !ok {
			t.Errorf("histogram %q missing from second snapshot", name)
			continue
		}
		if ha.Count != hb.Count || ha.Min != hb.Min || ha.Max != hb.Max || ha.P50 != hb.P50 || ha.P99 != hb.P99 {
			t.Errorf("histogram %q differs: %+v vs %+v", name, ha, hb)
		}
		if relDiff(ha.Sum, hb.Sum) > 1e-9 || relDiff(ha.Mean, hb.Mean) > 1e-9 {
			t.Errorf("histogram %q sum/mean diverged beyond rounding: %+v vs %+v", name, ha, hb)
		}
	}
}

func relDiff(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// TestObservedVerifyMetrics checks satellite coverage of the data-plane
// verification run: observing VerifyDataPlaneStats surfaces the
// pipeline/verify wall-clock split and the capture-truncation counter in the
// metrics registry.
func TestObservedVerifyMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("data-plane round trip")
	}
	defer StopObservation()
	StartObservation(false)
	ObserveFigure("verify")
	stats, err := VerifyDataPlaneStats()
	if err != nil {
		t.Fatal(err)
	}
	snap := MetricsOf("verify").Snapshot()
	if snap.Empty() {
		t.Fatal("verify run recorded no metrics")
	}
	if _, ok := snap.Counters["storage.capture_dropped"]; !ok {
		t.Error("storage.capture_dropped missing from verify metrics")
	}
	if got := snap.Gauges["host.verify_pipeline_seconds"]; got != stats.PipelineSeconds {
		t.Errorf("host.verify_pipeline_seconds = %v, want %v", got, stats.PipelineSeconds)
	}
	if got := snap.Gauges["host.verify_verify_seconds"]; got != stats.VerifySeconds {
		t.Errorf("host.verify_verify_seconds = %v, want %v", got, stats.VerifySeconds)
	}
	if snap.Counters["storage.bytes_written"] == 0 {
		t.Error("verify run recorded no storage writes")
	}
}
