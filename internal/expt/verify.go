package expt

import (
	"fmt"

	"tapioca/internal/core"
	"tapioca/internal/mpi"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/workload"
)

// VerifyDataPlane runs the data-plane round-trip smoke behind tapiocabench
// -verify: one reduced figure-style scenario per platform — the HACC-IO SoA
// pattern on Theta/Lustre and on Mira/GPFS — with real payload bytes
// enabled. Every rank writes deterministic offset-keyed bytes through the
// full aggregation pipeline, a fresh session reads them back, and the run
// fails unless the bytes match and the per-rank write/read/store CRC-64
// checksums agree. It returns nil when every platform verifies.
func VerifyDataPlane() error {
	type platform struct {
		name string
		rig  *rig
	}
	platforms := []platform{
		{"theta-lustre", thetaRig(32, 4, topology.RouteMinimal, 8)},
		{"mira-gpfs", miraRig(128, 1, storage.LockShared)},
	}
	const seed = 20170905 // the paper's CLUSTER year+month+day, any constant works
	for _, pf := range platforms {
		r := pf.rig
		ranks := r.ranks()
		pattern := workload.HACC(ranks, 512, workload.SoA)
		var failure error
		_, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: r.rpn, Fabric: r.fab}, func(c *mpi.Comm) {
			var f *storage.File
			if c.Rank() == 0 {
				f = r.sys.Create("verify", storage.FileOptions{StripeCount: 8, StripeSize: 1 << 20})
			}
			f = c.Bcast(0, 8, f).(*storage.File)
			decl := pattern.Declared(c.Rank(), ranks)
			data := workload.FillData(decl, seed)
			cfg := core.Config{Aggregators: 8, BufferSize: 1 << 20}

			w := core.New(c, r.sys, f, cfg)
			err := w.InitData(decl, data)
			if err == nil {
				err = w.WriteAll()
			}
			writeCRC := w.DataChecksum()
			c.Barrier()

			var got [][]byte
			var rd *core.Writer
			if err == nil {
				got = make([][]byte, len(data))
				for i := range data {
					got[i] = make([]byte, len(data[i]))
				}
				rd = core.New(c, r.sys, f, cfg)
				if err = rd.InitData(decl, got); err == nil {
					err = rd.ReadAll()
				}
			}
			if err == nil {
				err = workload.VerifyData(decl, seed, got)
			}
			if err == nil && rd.DataChecksum() != writeCRC {
				err = fmt.Errorf("read checksum %#x != write checksum %#x", rd.DataChecksum(), writeCRC)
			}
			if err != nil && failure == nil {
				failure = fmt.Errorf("rank %d: %w", c.Rank(), err)
			}
			c.Barrier()
		})
		if err == nil {
			err = failure
		}
		if err != nil {
			return fmt.Errorf("data-plane verify on %s: %w", pf.name, err)
		}
	}
	return nil
}
