package expt

import (
	"fmt"
	"sort"
	"time"

	"tapioca/internal/core"
	"tapioca/internal/mpi"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/workload"
)

// VerifyStats reports how a -verify run spent its host wall-clock, so the
// cost of end-to-end verification is visible separately from the pipeline
// it checks.
type VerifyStats struct {
	// PipelineSeconds is the host wall-clock of the write and read sessions
	// themselves (simulation plus the real byte path).
	PipelineSeconds float64
	// VerifySeconds is the host wall-clock of byte comparison and checksum
	// work (VerifyData, write/read CRC parity, store-side CRC parity).
	VerifySeconds float64
}

// VerifyDataPlane runs the data-plane round-trip smoke behind tapiocabench
// -verify; see VerifyDataPlaneStats. It returns nil when every platform
// verifies.
func VerifyDataPlane() error {
	_, err := VerifyDataPlaneStats()
	return err
}

// VerifyDataPlaneStats runs one reduced figure-style scenario per platform —
// the HACC-IO SoA pattern on Theta/Lustre and on Mira/GPFS — with real
// payload bytes enabled. Every rank writes deterministic offset-keyed bytes
// through the full aggregation pipeline, a fresh session reads them back,
// and the run fails unless the bytes match and the per-rank write/read CRC-64
// checksums agree with each other and with a CRC computed over the backing
// store itself. Timings for the two phases are returned alongside the error.
func VerifyDataPlaneStats() (VerifyStats, error) {
	type platform struct {
		name string
		rig  *rig
	}
	platforms := []platform{
		{"theta-lustre", thetaRig(32, 4, topology.RouteMinimal, 8)},
		{"mira-gpfs", miraRig(128, 1, storage.LockShared)},
	}
	const seed = 20170905 // the paper's CLUSTER year+month+day, any constant works
	var stats VerifyStats
	for _, pf := range platforms {
		r := pf.rig
		ranks := r.ranks()
		pattern := workload.HACC(ranks, 512, workload.SoA)
		var failure error
		var verifyDur time.Duration
		rec := cellRecorder()
		start := time.Now()
		eng, err := mpi.Run(mpi.Config{Ranks: ranks, RanksPerNode: r.rpn, Fabric: r.fab, Recorder: rec}, func(c *mpi.Comm) {
			var f *storage.File
			if c.Rank() == 0 {
				f = r.sys.Create("verify", storage.FileOptions{StripeCount: 8, StripeSize: 1 << 20})
			}
			f = c.Bcast(0, 8, f).(*storage.File)
			decl := pattern.Declared(c.Rank(), ranks)
			data := workload.FillData(decl, seed)
			cfg := core.Config{Aggregators: 8, BufferSize: 1 << 20}

			w := core.New(c, r.sys, f, cfg)
			err := w.InitData(decl, data)
			if err == nil {
				err = w.WriteAll()
			}
			writeCRC := w.DataChecksum()
			c.Barrier()

			var got [][]byte
			var rd *core.Writer
			if err == nil {
				got = make([][]byte, len(data))
				for i := range data {
					got[i] = make([]byte, len(data[i]))
				}
				rd = core.New(c, r.sys, f, cfg)
				if err = rd.InitData(decl, got); err == nil {
					err = rd.ReadAll()
				}
			}
			// Rank procs execute serially under the scheduler, so summing
			// per-rank spans yields the phase's host wall-clock.
			vstart := time.Now()
			if err == nil {
				err = workload.VerifyData(decl, seed, got)
			}
			if err == nil && rd.DataChecksum() != writeCRC {
				err = fmt.Errorf("read checksum %#x != write checksum %#x", rd.DataChecksum(), writeCRC)
			}
			if err == nil {
				var runs []storage.Seg
				for _, segs := range decl {
					storage.Enumerate(segs, 1<<20, func(off, length int64) {
						runs = append(runs, storage.Contig(off, length))
					})
				}
				sort.Slice(runs, func(i, j int) bool { return runs[i].Off < runs[j].Off })
				if crc, cerr := f.StoreChecksum(runs); cerr != nil {
					err = cerr
				} else if crc != writeCRC {
					err = fmt.Errorf("store checksum %#x != write checksum %#x", crc, writeCRC)
				}
			}
			verifyDur += time.Since(vstart)
			if err != nil && failure == nil {
				failure = fmt.Errorf("rank %d: %w", c.Rank(), err)
			}
			c.Barrier()
		})
		total := time.Since(start)
		stats.VerifySeconds += verifyDur.Seconds()
		stats.PipelineSeconds += (total - verifyDur).Seconds()
		if rec != nil {
			if eng != nil {
				r.fab.SnapshotMetrics(rec.Registry(), eng.Now())
			}
			if f := r.sys.Lookup("verify"); f != nil {
				rec.Registry().Add("storage.capture_dropped", f.CaptureDropped())
			}
			observeCell(rec)
		}
		if err == nil {
			err = failure
		}
		if err != nil {
			return stats, fmt.Errorf("data-plane verify on %s: %w", pf.name, err)
		}
	}
	// Host wall-clock (nondeterministic) — "host." prefix keeps it out of
	// any determinism comparison, matching the pipeline's convention.
	if reg := ObservedMetrics(); reg != nil {
		reg.SetMax("host.verify_pipeline_seconds", stats.PipelineSeconds)
		reg.SetMax("host.verify_verify_seconds", stats.VerifySeconds)
	}
	return stats, nil
}
