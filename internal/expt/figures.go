package expt

import (
	"fmt"

	"tapioca/internal/core"
	"tapioca/internal/mpi"
	"tapioca/internal/mpiio"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/workload"
)

// openShared creates (rank 0) or looks up a file and shares the handle.
func openShared(c *mpi.Comm, sys storage.System, name string, opt storage.FileOptions) *storage.File {
	var f *storage.File
	if c.Rank() == 0 {
		f = sys.Lookup(name)
		if f == nil {
			f = sys.Create(name, opt)
		}
	}
	return c.Bcast(0, 32, f).(*storage.File)
}

// I/O methods under comparison.
const (
	methodMPIIO = iota
	methodTapioca
)

// ioJob describes one measured collective I/O operation.
type ioJob struct {
	r       *rig
	subfile bool // file per Pset (the Mira experiments)
	fileOpt storage.FileOptions
	hints   mpiio.Hints // MPI-IO settings
	cfg     core.Config // TAPIOCA settings
	// declared returns the per-call patterns for a rank of a file group
	// (group = Pset when subfiling, else the world).
	declared func(rank, ranks int) [][]storage.Seg
	read     bool
}

// runIO executes the job under the given method and returns GB/s.
func runIO(j ioJob, method int) (float64, error) {
	var totalBytes int64
	elapsed, err := j.r.run(func(c *mpi.Comm, tm *timer) {
		group := c
		fileName := "data"
		if j.subfile {
			pset := j.r.topo.IONodeOf(c.Node())
			group = c.Split(pset, c.Rank())
			fileName = fmt.Sprintf("data-pset%d", pset)
		}
		decl := j.declared(group.Rank(), group.Size())
		var mine int64
		for _, segs := range decl {
			mine += storage.TotalBytes(segs)
		}
		sum := c.AllreduceI64(mpi.OpSum, mine)
		if c.Rank() == 0 {
			totalBytes = sum
		}

		switch method {
		case methodTapioca:
			f := openShared(group, j.r.sys, fileName, j.fileOpt)
			w := core.New(group, j.r.sys, f, treeConfigFor(faultConfigFor(j.r, j.cfg)))
			tm.Start(c)
			must(w.Init(decl))
			if j.read {
				must(w.ReadAll())
			} else {
				must(w.WriteAll())
			}
			tm.Stop(c)
		default:
			fh := mpiio.Open(group, j.r.sys, fileName, j.fileOpt, treeHintsFor(j.hints))
			tm.Start(c)
			for _, segs := range decl {
				if j.read {
					must(fh.ReadAtAll(segs))
				} else {
					must(fh.WriteAtAll(segs))
				}
			}
			tm.Stop(c)
		}
	})
	if err != nil {
		return 0, err
	}
	return gbps(totalBytes, elapsed), nil
}

// mustIO is runIO with panic-on-error (experiment definitions are static).
func mustIO(j ioJob, method int) float64 {
	v, err := runIO(j, method)
	if err != nil {
		panic(fmt.Sprintf("expt: %v", err))
	}
	return v
}

// pick returns full or reduced depending on the scale switch.
func pick(full bool, fullVal, reduced int) int {
	if full {
		return fullVal
	}
	return reduced
}

// iorSizesMB is the per-rank data-size sweep of Figs. 7–8 (0.2–4 MB).
var iorSizesMB = []float64{0.25, 0.5, 1, 2, 4}

// microSizesMB is the sweep of Figs. 9–10 (up to 3.6 MB).
var microSizesMB = []float64{0.5, 1, 2, 3.6}

// haccParticles is the per-rank particle sweep of Figs. 11–14
// (5K–100K particles ≈ 0.19–3.8 MB).
var haccParticles = []int64{5000, 10000, 25000, 50000, 100000}

// Fig7 reproduces the Mira IOR tuning study: baseline (exclusive GPFS
// tokens, unaligned domains) vs optimized (shared locks, aligned domains),
// read and write, file per Pset.
func Fig7(full bool) Result {
	nodes := pick(full, 512, 128)
	rpn := 16
	res := Result{
		ID:     "fig7",
		Title:  fmt.Sprintf("IOR on Mira (%d nodes × %d ranks), file per Pset", nodes, rpn),
		XLabel: "MB/rank",
		Labels: []string{"Optimized-Read", "Optimized-Write", "Baseline-Read", "Baseline-Write"},
	}
	variants := []struct {
		lockMode int
		align    bool
		read     bool
	}{
		{storage.LockShared, true, true},
		{storage.LockShared, true, false},
		{storage.LockExclusive, false, true},
		{storage.LockExclusive, false, false},
	}
	res.Rows = runGrid(iorSizesMB, len(variants), func(row, col int) float64 {
		size := int64(iorSizesMB[row] * (1 << 20))
		variant := variants[col]
		r := miraRig(nodes, rpn, variant.lockMode)
		j := ioJob{
			r:       r,
			subfile: true,
			hints: mpiio.Hints{
				CBNodes:      16,
				CBBufferSize: 16 << 20,
				Strategy:     mpiio.AggrBridgeFirst,
				AlignDomains: variant.align,
			},
			declared: func(rank, ranks int) [][]storage.Seg {
				return [][]storage.Seg{workload.IORSegs(rank, size)}
			},
			read: variant.read,
		}
		return mustIO(j, methodMPIIO)
	})
	res.Notes = append(res.Notes,
		"paper: optimized read +13%, optimized write ~3x baseline at 4 MB")
	return res
}

// Fig8 reproduces the Theta IOR tuning study: baseline (1 OST, 1 MB
// stripes, adaptive routing) vs optimized (48 OSTs, 8 MB stripes, minimal
// routing, 2 aggregators per OST, aligned domains).
func Fig8(full bool) Result {
	nodes := pick(full, 512, 128)
	rpn := 16
	osts := pick(full, 48, 12)
	cb := pick(full, 96, 24)
	res := Result{
		ID:     "fig8",
		Title:  fmt.Sprintf("IOR on Theta (%d nodes × %d ranks)", nodes, rpn),
		XLabel: "MB/rank",
		Labels: []string{"Optimized-Read", "Optimized-Write", "Baseline-Read", "Baseline-Write"},
	}
	variants := []struct {
		optimized bool
		read      bool
	}{{true, true}, {true, false}, {false, true}, {false, false}}
	res.Rows = runGrid(iorSizesMB, len(variants), func(row, col int) float64 {
		size := int64(iorSizesMB[row] * (1 << 20))
		variant := variants[col]
		routing := topology.RouteValiant
		fileOpt := storage.FileOptions{} // platform defaults: 1 OST, 1 MB
		hints := mpiio.Hints{CBNodes: nodes, CBBufferSize: 16 << 20, Strategy: mpiio.AggrNodeSpread}
		if variant.optimized {
			routing = topology.RouteMinimal
			fileOpt = storage.FileOptions{StripeCount: osts, StripeSize: 8 << 20}
			hints = mpiio.Hints{CBNodes: cb, CBBufferSize: 8 << 20, Strategy: mpiio.AggrNodeSpread, AlignDomains: true, CyclicDomains: true}
		}
		r := thetaRig(nodes, rpn, routing, osts)
		j := ioJob{
			r:       r,
			fileOpt: fileOpt,
			hints:   hints,
			declared: func(rank, ranks int) [][]storage.Seg {
				return [][]storage.Seg{workload.IORSegs(rank, size)}
			},
			read: variant.read,
		}
		return mustIO(j, methodMPIIO)
	})
	res.Notes = append(res.Notes,
		"paper: baseline read ~0.8 GB/s -> optimized ~36; baseline write ~0.2 -> ~10 (log-scale figure)")
	return res
}

// Fig9 compares TAPIOCA and MPI-IO with the micro-benchmark on Mira
// (expected: parity — the pattern is uniform and the BG/Q MPI-IO stack is
// well tuned).
func Fig9(full bool) Result {
	nodes := pick(full, 1024, 256)
	rpn := 16
	res := Result{
		ID:     "fig9",
		Title:  fmt.Sprintf("Micro-benchmark on Mira (%d nodes × %d ranks), file per Pset", nodes, rpn),
		XLabel: "MB/rank",
		Labels: []string{"TAPIOCA", "MPI-IO"},
	}
	methods := []int{methodTapioca, methodMPIIO}
	res.Rows = runGrid(microSizesMB, len(methods), func(row, col int) float64 {
		size := int64(microSizesMB[row] * (1 << 20))
		r := miraRig(nodes, rpn, storage.LockShared)
		j := ioJob{
			r:       r,
			subfile: true,
			hints: mpiio.Hints{
				CBNodes: 16, CBBufferSize: 16 << 20,
				Strategy: mpiio.AggrBridgeFirst, AlignDomains: true,
			},
			cfg: core.Config{Aggregators: 32, BufferSize: 32 << 20},
			declared: func(rank, ranks int) [][]storage.Seg {
				return [][]storage.Seg{workload.IORSegs(rank, size)}
			},
		}
		return mustIO(j, methods[col])
	})
	res.Notes = append(res.Notes, "paper: both methods similar on Mira (Fig. 9)")
	return res
}

// Fig10 compares TAPIOCA and MPI-IO with the micro-benchmark on Theta
// (expected: TAPIOCA ~2x at the largest size).
func Fig10(full bool) Result {
	nodes := pick(full, 512, 128)
	rpn := 16
	osts := pick(full, 48, 12)
	aggr := pick(full, 48, 12)
	cb := pick(full, 96, 24)
	res := Result{
		ID:     "fig10",
		Title:  fmt.Sprintf("Micro-benchmark on Theta (%d nodes × %d ranks), 48 OSTs, 8 MB stripes", nodes, rpn),
		XLabel: "MB/rank",
		Labels: []string{"TAPIOCA", "MPI-IO"},
	}
	fileOpt := storage.FileOptions{StripeCount: osts, StripeSize: 8 << 20}
	methods := []int{methodTapioca, methodMPIIO}
	res.Rows = runGrid(microSizesMB, len(methods), func(row, col int) float64 {
		size := int64(microSizesMB[row] * (1 << 20))
		r := thetaRig(nodes, rpn, topology.RouteMinimal, osts)
		j := ioJob{
			r:       r,
			fileOpt: fileOpt,
			hints: mpiio.Hints{
				CBNodes: cb, CBBufferSize: 8 << 20,
				Strategy: mpiio.AggrNodeSpread, AlignDomains: true, CyclicDomains: true,
			},
			cfg: core.Config{Aggregators: aggr, BufferSize: 8 << 20},
			declared: func(rank, ranks int) [][]storage.Seg {
				return [][]storage.Seg{workload.IORSegs(rank, size)}
			},
		}
		return mustIO(j, methods[col])
	})
	res.Notes = append(res.Notes, "paper: TAPIOCA ~2x MPI-IO at 3.6 MB/rank (Fig. 10)")
	return res
}

// Table1 reproduces the buffer:stripe ratio study: TAPIOCA micro-benchmark
// writes on Theta with varying stripe sizes per aggregation buffer size;
// the 1:1 ratio must win.
func Table1(full bool) Result {
	nodes := pick(full, 512, 128)
	rpn := 16
	osts := pick(full, 48, 12)
	aggr := pick(full, 48, 12)
	res := Result{
		ID:     "table1",
		Title:  fmt.Sprintf("Buffer:stripe ratio on Theta (%d nodes × %d ranks), TAPIOCA writes", nodes, rpn),
		XLabel: "buffer/stripe",
		Labels: []string{"TAPIOCA"},
	}
	ratios := []struct {
		name string
		num  int64 // buffer parts
		den  int64 // stripe parts
	}{
		{"1:8", 1, 8}, {"1:4", 1, 4}, {"1:2", 1, 2}, {"1:1", 1, 1}, {"2:1", 2, 1}, {"4:1", 4, 1},
	}
	const sizePerRank = 1 << 20
	buffers := []int64{4 << 20, 8 << 20, 16 << 20}
	vals := runCells(len(ratios)*len(buffers), func(i int) float64 {
		ratio := ratios[i/len(buffers)]
		buf := buffers[i%len(buffers)]
		stripe := buf * ratio.den / ratio.num
		r := thetaRig(nodes, rpn, topology.RouteMinimal, osts)
		j := ioJob{
			r:       r,
			fileOpt: storage.FileOptions{StripeCount: osts, StripeSize: stripe},
			cfg:     core.Config{Aggregators: aggr, BufferSize: buf},
			declared: func(rank, ranks int) [][]storage.Seg {
				return [][]storage.Seg{workload.IORSegs(rank, sizePerRank)}
			},
		}
		return mustIO(j, methodTapioca)
	})
	for ri, ratio := range ratios {
		var sum float64
		for bi := range buffers {
			sum += vals[ri*len(buffers)+bi]
		}
		res.Rows = append(res.Rows, Row{
			X:      float64(ratio.num) / float64(ratio.den),
			Values: []float64{sum / float64(len(buffers))},
		})
	}
	res.Notes = append(res.Notes, "paper Table I: 0.36, 0.64, 0.91, 1.57, 1.08, 1.14 GB/s — 1:1 best")
	return res
}

// haccResult runs the HACC-IO comparison grid (TAPIOCA vs MPI-IO × AoS vs
// SoA) on the given platform builder.
func haccResult(id, title string, particlesList []int64, run func(layout int, particles int64, method int) float64) Result {
	res := Result{
		ID:     id,
		Title:  title,
		XLabel: "MB/rank",
		Labels: []string{"TAPIOCA-AoS", "MPI-IO-AoS", "TAPIOCA-SoA", "MPI-IO-SoA"},
	}
	cells := []struct {
		layout, method int
	}{
		{workload.AoS, methodTapioca},
		{workload.AoS, methodMPIIO},
		{workload.SoA, methodTapioca},
		{workload.SoA, methodMPIIO},
	}
	xs := make([]float64, len(particlesList))
	for i, particles := range particlesList {
		xs[i] = float64(particles*workload.ParticleBytes) / (1 << 20)
	}
	res.Rows = runGrid(xs, len(cells), func(row, col int) float64 {
		return run(cells[col].layout, particlesList[row], cells[col].method)
	})
	return res
}

// haccMira runs one HACC-IO cell on Mira (file per Pset, 16 aggregators and
// 16 MB buffers per Pset, as in Figs. 11–12).
func haccMira(nodes, rpn int) func(layout int, particles int64, method int) float64 {
	return func(layout int, particles int64, method int) float64 {
		r := miraRig(nodes, rpn, storage.LockShared)
		j := ioJob{
			r:       r,
			subfile: true,
			hints: mpiio.Hints{
				CBNodes: 16, CBBufferSize: 16 << 20,
				Strategy: mpiio.AggrBridgeFirst, AlignDomains: true,
			},
			cfg: core.Config{Aggregators: 16, BufferSize: 16 << 20},
			declared: func(rank, ranks int) [][]storage.Seg {
				return workload.HACCDeclared(rank, ranks, particles, layout)
			},
		}
		return mustIO(j, method)
	}
}

// Fig11 is HACC-IO on 1,024 Mira nodes.
func Fig11(full bool) Result {
	nodes := pick(full, 1024, 256)
	rpn := 16
	res := haccResult("fig11",
		fmt.Sprintf("HACC-IO on Mira (%d nodes × %d ranks), file per Pset", nodes, rpn),
		haccParticles, haccMira(nodes, rpn))
	res.Notes = append(res.Notes, "paper: TAPIOCA up to ~12x MPI-IO AoS at small sizes; ~90% of the Pset peak")
	return res
}

// Fig12 is HACC-IO on 4,096 Mira nodes.
func Fig12(full bool) Result {
	nodes := pick(full, 4096, 512)
	rpn := 16
	res := haccResult("fig12",
		fmt.Sprintf("HACC-IO on Mira (%d nodes × %d ranks), file per Pset", nodes, rpn),
		haccParticles, haccMira(nodes, rpn))
	res.Notes = append(res.Notes, "paper: same shape at 4x scale; peak ~89.6 GB/s on 32 Psets")
	return res
}

// haccTheta runs one HACC-IO cell on Theta (shared file, 48 OSTs, 16 MB
// stripes, aggr aggregators with 16 MB buffers, as in Figs. 13–14).
func haccTheta(nodes, rpn, aggr, osts int) func(layout int, particles int64, method int) float64 {
	return func(layout int, particles int64, method int) float64 {
		r := thetaRig(nodes, rpn, topology.RouteMinimal, osts)
		j := ioJob{
			r:       r,
			fileOpt: storage.FileOptions{StripeCount: osts, StripeSize: 16 << 20},
			hints: mpiio.Hints{
				CBNodes: aggr, CBBufferSize: 16 << 20,
				Strategy: mpiio.AggrNodeSpread, AlignDomains: true, CyclicDomains: true,
			},
			cfg: core.Config{Aggregators: aggr, BufferSize: 16 << 20},
			declared: func(rank, ranks int) [][]storage.Seg {
				return workload.HACCDeclared(rank, ranks, particles, layout)
			},
		}
		return mustIO(j, method)
	}
}

// Fig13 is HACC-IO on 1,024 Theta nodes (192 aggregators: 4 per OST).
func Fig13(full bool) Result {
	nodes := pick(full, 1024, 128)
	rpn := 16
	osts := pick(full, 48, 12)
	aggr := pick(full, 192, 48)
	res := haccResult("fig13",
		fmt.Sprintf("HACC-IO on Theta (%d nodes × %d ranks), %d OSTs, 16 MB stripes", nodes, rpn, osts),
		haccParticles, haccTheta(nodes, rpn, aggr, osts))
	res.Notes = append(res.Notes, "paper: TAPIOCA ~7x MPI-IO at ~1 MB/rank; gap narrows with size")
	return res
}

// Fig14 is HACC-IO on 2,048 Theta nodes (384 aggregators: 8 per OST).
func Fig14(full bool) Result {
	nodes := pick(full, 2048, 256)
	rpn := 16
	osts := pick(full, 48, 12)
	aggr := pick(full, 384, 96)
	res := haccResult("fig14",
		fmt.Sprintf("HACC-IO on Theta (%d nodes × %d ranks), %d OSTs, 16 MB stripes", nodes, rpn, osts),
		haccParticles, haccTheta(nodes, rpn, aggr, osts))
	res.Notes = append(res.Notes, "paper: TAPIOCA ~4x MPI-IO at 3.6 MB/rank AoS")
	return res
}
