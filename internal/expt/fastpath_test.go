package expt

import (
	"reflect"
	"testing"
	"time"

	"tapioca/internal/fault"
	"tapioca/internal/netsim"
	"tapioca/internal/storage"
	"tapioca/internal/tree"
)

// TestFastPathsMatchReference is the equivalence contract of the transfer
// fast paths: with the netsim path cache and storage segment compaction
// disabled (the uncoalesced reference behaviour), every figure must produce
// a byte-identical Result to the optimized run. The covered subset spans
// both platforms (torus/GPFS, dragonfly/Lustre), both I/O stacks (TAPIOCA,
// MPI-IO), reads and writes, and both contention models. Serial runs, so
// the package-global toggles cannot race with worker cells.
func TestFastPathsMatchReference(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid")
	}
	subset := []string{"fig7", "fig10", "fig11", "table1", "abl-contention"}
	if raceEnabled {
		subset = []string{"fig10"}
	}
	defer SetParallelism(0)
	SetParallelism(1)
	for _, id := range subset {
		s := ByID(id)
		if s == nil {
			t.Fatalf("unknown spec %q", id)
		}
		t.Run(id, func(t *testing.T) {
			prevCache := netsim.SetPathCache(false)
			prevCompact := storage.SetSegCompaction(false)
			reference := s.Run(false)
			netsim.SetPathCache(prevCache)
			storage.SetSegCompaction(prevCompact)

			// The optimized run executes with the flight recorder live and a
			// zero-rate fault profile armed, so this equivalence also asserts
			// that tracing and the fault-plane plumbing perturb nothing on
			// the zero-fault path.
			zero := fault.Profile(7, 0)
			SetFaultConfig(&zero)
			StartObservation(true)
			ObserveFigure(id)
			optimized := s.Run(false)
			StopObservation()
			SetFaultConfig(nil)
			if !reflect.DeepEqual(reference, optimized) {
				t.Fatalf("optimized run diverged from uncached/uncompacted reference:\nref: %+v\nopt: %+v", reference, optimized)
			}

			// The degenerate-tree leg: arming the flat tree shape routes every
			// cell through the aggregation-tree config path (and the MPI-IO
			// TreePlan hint parser), which must collapse to exactly the default
			// pipeline — byte-identical figures.
			SetTreeShape(&tree.Shape{Kind: tree.Flat})
			treed := s.Run(false)
			SetTreeShape(nil)
			if !reflect.DeepEqual(reference, treed) {
				t.Fatalf("degenerate flat tree shape diverged from reference:\nref: %+v\ntree: %+v", reference, treed)
			}
		})
	}
}

// TestFullScaleSmoke keeps the paper-scale path honest in every CI run,
// including -short: one registered full-scale figure (fig10-full: 512 nodes
// × 16 ranks = 8,192 simulated ranks on the Theta dragonfly) must complete
// within a hard time budget and report a sane shape. The budget is generous
// — the point is catching order-of-magnitude regressions of the per-message
// path, which would blow straight through it.
func TestFullScaleSmoke(t *testing.T) {
	budget := 4 * time.Minute
	if raceEnabled {
		budget = 20 * time.Minute // race-built simulations run ~10-20x slower
	}
	s := ByID("fig10-full")
	if s == nil {
		t.Fatal("fig10-full not registered")
	}
	start := time.Now()
	res := s.Run(true)
	elapsed := time.Since(start)
	if elapsed > budget {
		t.Fatalf("fig10-full took %v, budget %v", elapsed, budget)
	}
	if len(res.Rows) == 0 || len(res.Rows[0].Values) != 2 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	for _, row := range res.Rows {
		for i, v := range row.Values {
			if v <= 0 {
				t.Fatalf("row %v series %d: %v GB/s", row.X, i, v)
			}
		}
	}
	t.Logf("fig10-full (8192 ranks, %d cells) in %v", len(res.Rows)*2, elapsed)
}
