//go:build race

package expt

// raceEnabled reports that this binary was built with the race detector,
// which slows simulations ~10-20x; heavyweight matrix tests subset
// themselves so race CI stays inside go test's default timeout.
const raceEnabled = true
