package expt

import (
	"fmt"
	"strings"
	"sync/atomic"

	"tapioca/internal/core"
	"tapioca/internal/fault"
	"tapioca/internal/mpi"
	"tapioca/internal/netsim"
	"tapioca/internal/obs"
	"tapioca/internal/par"
	"tapioca/internal/sim"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/workload"
)

// Package-level fault state behind tapiocabench's -faults flag: when a fault
// config is armed, every rig built afterwards carries the plan (network
// degradation on the fabric, transient/outage injection on the storage tier,
// death/corruption schedules in the pipeline). Nil (the default) leaves every
// rig on the original zero-fault path, byte-identical to a build without the
// fault plane.
var (
	faultCfgState atomic.Pointer[fault.Config]
	recoveryOff   atomic.Bool // inverted: zero value means recovery armed
	chaosShort    atomic.Bool
	cellBudgetNs  atomic.Int64
)

// defaultCellBudget is the per-cell virtual-time watchdog: four simulated
// hours, an order of magnitude past the slowest legitimate full-scale cell.
// A cell that exceeds it is killed by the engine (sim.BudgetError) and
// reported as a structured CellError instead of hanging the whole run.
const defaultCellBudget = 4 * 3600 * 1e9

// SetFaultConfig arms (or, with nil, clears) deterministic fault injection
// for subsequently built measurement cells.
func SetFaultConfig(cfg *fault.Config) { faultCfgState.Store(cfg) }

// FaultConfig returns the armed fault config, or nil.
func FaultConfig() *fault.Config { return faultCfgState.Load() }

// SetFaultRecovery arms or disarms the recovery machinery (retry, failover,
// degraded-mode writes, repair) under an armed fault config. Default: armed.
func SetFaultRecovery(on bool) { recoveryOff.Store(!on) }

// FaultRecovery reports whether recovery is armed.
func FaultRecovery() bool { return !recoveryOff.Load() }

// SetChaosShort shrinks the abl-faults rate sweep to its CI smoke subset.
func SetChaosShort(on bool) { chaosShort.Store(on) }

// SetCellBudget overrides the per-cell virtual-time watchdog budget in
// nanoseconds; v <= 0 restores the default.
func SetCellBudget(v int64) { cellBudgetNs.Store(v) }

// CellBudget returns the effective per-cell virtual-time budget.
func CellBudget() int64 {
	if v := cellBudgetNs.Load(); v > 0 {
		return v
	}
	return defaultCellBudget
}

// CellError wraps a measurement-cell failure with the cell's shape, so a
// grid run reports which simulation died (watchdog, deadlock, session error)
// instead of hanging or printing a bare engine error.
type CellError struct {
	Nodes, Ranks int
	Err          error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("expt: measurement cell (%d nodes, %d ranks) failed: %v", e.Nodes, e.Ranks, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// armFaults attaches the globally armed fault plan (if any) to a fresh rig:
// one plan per cell, so plan state (op counters, consumed-once corruption
// keys) never crosses cells and parallel grids stay deterministic.
func armFaults(r *rig) *rig {
	cfg := faultCfgState.Load()
	if cfg == nil || !cfg.Enabled() {
		return r
	}
	plan := fault.NewPlan(*cfg)
	r.fplan = plan
	r.fab.SetFaults(plan)
	r.sys = storage.NewFaulty(r.sys, plan)
	return r
}

// faultConfigFor injects the rig's fault plan (and, when armed, the default
// recovery policy) into a session config. A rig without a plan returns cfg
// untouched — the byte-identical zero-fault path.
func faultConfigFor(r *rig, cfg core.Config) core.Config {
	if r.fplan == nil {
		return cfg
	}
	cfg.Faults = r.fplan
	if FaultRecovery() {
		cfg.Recovery = fault.DefaultRecovery()
	}
	return cfg
}

// Chaos lists the fault-injection experiments. They are registered for
// -experiment/-list but excluded from All(): "tapiocabench all" output stays
// byte-identical to a zero-fault build.
func Chaos() []Spec {
	return []Spec{
		{"abl-faults", "Chaos: goodput vs fault rate, with and without recovery", AblationFaults},
	}
}

// chaosRig builds the chaos platform: a burst-buffer staging tier over
// Lustre on a Theta dragonfly — the stack with a degraded-mode story (buffer
// down ⇒ direct-to-PFS).
func chaosRig(nodes, rpn, numOST int) *rig {
	topo, dc := sharedTheta(nodes, topology.RouteMinimal)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
	fab.ShareDistances(dc)
	lustre := storage.NewLustre(topo, fab, storage.LustreConfig{NumOST: numOST})
	sys := storage.NewBurstBuffer(lustre, storage.BurstBufferConfig{})
	return &rig{topo: topo, fab: fab, sys: sys, nodes: nodes, rpn: rpn}
}

// chaosOut is one chaos cell's measurements.
type chaosOut struct {
	goodput float64 // (bytes landed)/(elapsed), GB/s
	p99     float64 // p99 round latency, seconds (0 at rate 0)
	lost    int64   // bytes absorbed as data loss
	events  map[string]int64
}

// chaosCell runs one fault-rate × recovery-mode measurement: an IOR write
// through the full pipeline on a fresh chaos rig, under its own deterministic
// fault plan.
func chaosCell(nodes, rpn, numOST int, rate float64, withRec bool) chaosOut {
	const seed = 0x7A910CA
	r := chaosRig(nodes, rpn, numOST)
	if rate > 0 {
		fc := fault.Profile(seed, rate)
		// Take the buffer tier down mid-run (the short cells finish in about
		// 20 ms of virtual time) so the degraded-mode path (or, without
		// recovery, counted data loss) is exercised every cell.
		fc.TierDownAfter = 10 * sim.Millisecond
		if !withRec {
			// A dead aggregator without failover deadlocks its partition by
			// design (the engine diagnoses it); the no-recovery goodput series
			// must still complete, so deaths stay off and the series absorbs
			// every other fault class.
			fc.AggrDeathRate = 0
		}
		plan := fault.NewPlan(fc)
		r.fplan = plan
		r.fab.SetFaults(plan)
		r.sys = storage.NewFaulty(r.sys, plan)
	}

	pattern := workload.IOR(r.ranks(), 1<<20)
	rec := cellRecorder()
	if rec == nil {
		// The chaos figure always records: round-latency percentiles and
		// recovery counters are half its point. (Virtual time is unaffected.)
		rec = obs.NewRecorder(false)
	}
	eng := sim.NewEngine()
	if b := CellBudget(); b > 0 {
		eng.SetBudget(b)
	}
	tm := &timer{}
	var total, lost int64
	_, err := mpi.Run(mpi.Config{
		Ranks:        r.ranks(),
		RanksPerNode: r.rpn,
		Fabric:       r.fab,
		Engine:       eng,
		Recorder:     rec,
	}, func(c *mpi.Comm) {
		decl := pattern.Declared(c.Rank(), c.Size())
		var mine int64
		for _, segs := range decl {
			mine += storage.TotalBytes(segs)
		}
		sum := c.AllreduceI64(mpi.OpSum, mine)
		f := openShared(c, r.sys, "chaos", storage.FileOptions{StripeCount: numOST, StripeSize: 1 << 20})
		cfg := core.Config{Aggregators: 8, BufferSize: 1 << 20, Faults: r.fplan}
		if withRec && r.fplan != nil {
			cfg.Recovery = fault.DefaultRecovery()
		}
		w := core.New(c, r.sys, f, cfg)
		tm.Start(c)
		must(w.Init(decl))
		must(w.WriteAll())
		tm.Stop(c)
		lostSum := c.AllreduceI64(mpi.OpSum, w.Stats().LostBytes)
		if c.Rank() == 0 {
			total, lost = sum, lostSum
		}
	})
	if err != nil {
		panic(&CellError{Nodes: nodes, Ranks: r.ranks(), Err: err})
	}
	transferCount.Add(r.fab.Transfers())
	sampleHeap()
	r.fab.SnapshotMetrics(rec.Registry(), eng.Now())
	observeCell(rec)

	snap := rec.Registry().Snapshot()
	events := map[string]int64{}
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "fault.") || strings.HasPrefix(name, "recovery.") {
			events[name] = v
		}
	}
	return chaosOut{
		goodput: gbps(total-lost, sim.ToSeconds(tm.t1-tm.t0)),
		p99:     snap.Histograms["tapioca.round_seconds"].P99,
		lost:    lost,
		events:  events,
	}
}

// AblationFaults is the chaos experiment: goodput (bytes that actually
// landed over elapsed time) against fault rate, with recovery disarmed vs
// armed, plus p99 round latency and recovery-event totals in the notes. All
// fault schedules are pure functions of (seed, virtual time), so the figure
// is deterministic, serial or parallel.
func AblationFaults(full bool) Result {
	nodes, rpn, osts := 32, 4, 8
	if full {
		nodes, rpn = 64, 8
	}
	rates := []float64{0, 0.02, 0.05, 0.1, 0.2}
	if chaosShort.Load() {
		rates = []float64{0, 0.1}
	}
	res := Result{
		ID:     "abl-faults",
		Title:  "Chaos: goodput vs fault rate, with and without recovery",
		XLabel: "fault rate",
		Labels: []string{"no recovery", "with recovery"},
		Notes: []string{
			fmt.Sprintf("IOR 1 MB/rank on Theta, burst buffer over Lustre, %d nodes x %d ranks; buffer tier down at 10 ms", nodes, rpn),
			"goodput = bytes landed (total minus lost) / elapsed; fault schedules are pure (seed, virtual time)",
		},
	}
	cells := make([]chaosOut, len(rates)*2)
	par.Map(len(cells), func(i int) {
		cells[i] = chaosCell(nodes, rpn, osts, rates[i/2], i%2 == 1)
	})
	for i, rate := range rates {
		no, with := cells[2*i], cells[2*i+1]
		res.Rows = append(res.Rows, Row{X: rate, Values: []float64{no.goodput, with.goodput}})
		res.Notes = append(res.Notes, fmt.Sprintf(
			"rate %.2f: p99 round %.2f/%.2f ms (no rec/rec), lost %d/%d MB, retries %d, failovers %d, replayed %d, degraded %d, repaired %d",
			rate, no.p99*1e3, with.p99*1e3, no.lost>>20, with.lost>>20,
			with.events[fault.MetricRetries], with.events[fault.MetricFailovers],
			with.events[fault.MetricReplayedRounds], with.events[fault.MetricDegradedRounds],
			with.events[fault.MetricRepairedExtents]))
	}
	return res
}
