// Package expt regenerates every table and figure of the paper's evaluation
// (§V): the IOR tuning studies (Figs. 7–8), the micro-benchmark comparisons
// (Figs. 9–10), the buffer:stripe ratio study (Table I), and the HACC-IO
// comparisons (Figs. 11–14), plus ablations of TAPIOCA's design choices.
//
// Runs are deterministic. Absolute bandwidths come from a calibrated
// simulator, not the authors' hardware; the reproduced claims are the
// shapes: who wins, by what factor, and how gaps evolve with data size.
package expt

import (
	"fmt"
	"runtime/metrics"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tapioca/internal/fault"
	"tapioca/internal/mpi"
	"tapioca/internal/netsim"
	"tapioca/internal/par"
	"tapioca/internal/sim"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
)

// Result is one regenerated table/figure: rows of X against one bandwidth
// column per series.
type Result struct {
	ID     string
	Title  string
	XLabel string
	Labels []string // series names
	Rows   []Row
	Notes  []string
}

// Row is one X position with one value (GB/s) per series.
type Row struct {
	X      float64
	Values []float64
}

// Spec is a runnable experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(full bool) Result
}

// All lists every experiment in paper order.
func All() []Spec {
	return []Spec{
		{"fig7", "IOR on Mira, baseline vs user-tuned MPI-IO (512 nodes × 16)", Fig7},
		{"fig8", "IOR on Theta, baseline vs user-tuned MPI-IO (512 nodes × 16)", Fig8},
		{"fig9", "Micro-benchmark on Mira: TAPIOCA vs MPI-IO (1,024 nodes × 16)", Fig9},
		{"fig10", "Micro-benchmark on Theta: TAPIOCA vs MPI-IO (512 nodes × 16)", Fig10},
		{"table1", "Aggregator buffer size : Lustre stripe size ratio", Table1},
		{"fig11", "HACC-IO on Mira, 1,024 nodes × 16, file per Pset", Fig11},
		{"fig12", "HACC-IO on Mira, 4,096 nodes × 16, file per Pset", Fig12},
		{"fig13", "HACC-IO on Theta, 1,024 nodes × 16", Fig13},
		{"fig14", "HACC-IO on Theta, 2,048 nodes × 16", Fig14},
		{"abl-placement", "Ablation: aggregator placement strategies", AblationPlacement},
		{"abl-mpiio-placement", "Ablation: MPI-IO aggregator strategies on Theta", AblationMPIIOPlacement},
		{"abl-pipeline", "Ablation: double vs single aggregation buffer", AblationPipeline},
		{"abl-declared", "Ablation: declared I/O vs per-call aggregation", AblationDeclared},
		{"abl-aggrcount", "Ablation: aggregator count on Theta", AblationAggregators},
		{"abl-autotune", "Ablation: autotuned vs default vs exhaustive sweep", AblationAutotune},
		{"abl-intranode", "Ablation: intra-node pre-aggregation vs flat puts", AblationIntraNode},
		{"abl-tree", "Ablation: synthesized aggregation trees vs flat/staged", AblationTree},
		{"abl-contention", "Ablation: link vs endpoint contention model", AblationContention},
	}
}

// FullScale lists the registered full-scale variants: the paper's own node
// counts (§V — 512–1,024 nodes × 16 ranks and up), runnable on one core in
// minutes since the message path was flattened. Each variant pins full
// scale regardless of the scale switch passed to Run. fig10-full and
// fig13-full exercise the dragonfly/Lustre path, fig7/9-full the BG/Q
// torus/GPFS path.
func FullScale() []Spec {
	pin := func(run func(bool) Result, id string) func(bool) Result {
		return func(bool) Result {
			res := run(true)
			res.ID = id
			return res
		}
	}
	return []Spec{
		{"fig7-full", "IOR on Mira at paper scale (512 nodes × 16 ranks)", pin(Fig7, "fig7-full")},
		{"fig9-full", "Micro-benchmark on Mira at paper scale (1,024 nodes × 16 ranks)", pin(Fig9, "fig9-full")},
		{"fig10-full", "Micro-benchmark on Theta at paper scale (512 nodes × 16 ranks)", pin(Fig10, "fig10-full")},
		{"fig13-full", "HACC-IO on Theta at paper scale (1,024 nodes × 16 ranks)", pin(Fig13, "fig13-full")},
		{"abl-intranode-full", "Intra-node pre-aggregation at paper scale (256 nodes, ppn sweep)", pin(AblationIntraNode, "abl-intranode-full")},
		{"abl-tree-full", "Synthesized aggregation trees at paper scale (512 nodes, width sweep)", pin(AblationTree, "abl-tree-full")},
	}
}

// ByID returns the experiment with the given id (reduced-scale set, a
// registered full-scale variant, or a host-side data-plane experiment), or
// nil.
func ByID(id string) *Spec {
	for _, set := range [][]Spec{All(), FullScale(), DataPlane(), Chaos()} {
		for _, s := range set {
			if s.ID == id {
				sp := s
				return &sp
			}
		}
	}
	return nil
}

// transferCount accumulates fabric transfers booked by measurement cells
// (every runIO call), so drivers can report simulated message counts per
// figure. Atomic: grid cells run on the worker pool.
var transferCount atomic.Int64

// TransferCount returns the fabric transfers booked by measurement cells
// since the last ResetTransferCount.
func TransferCount() int64 { return transferCount.Load() }

// ResetTransferCount zeroes the per-figure transfer counter.
func ResetTransferCount() { transferCount.Store(0) }

// fabricMsgCount accumulates inter-node fabric messages (transfers whose
// source and destination nodes differ) booked by measurement cells, so
// drivers can report how many messages actually crossed fabric links — the
// quantity intra-node staging collapses ppn-fold. Atomic: grid cells run on
// the worker pool.
var fabricMsgCount atomic.Int64

// FabricMessageCount returns the inter-node fabric messages booked by
// measurement cells since the last ResetFabricMessageCount.
func FabricMessageCount() int64 { return fabricMsgCount.Load() }

// ResetFabricMessageCount zeroes the per-figure fabric message counter.
func ResetFabricMessageCount() { fabricMsgCount.Store(0) }

// peakHeap tracks the maximum live heap observed at cell boundaries. The
// sample is taken inline as each measurement cell completes — while its
// whole simulated platform is still reachable, so the reading reflects the
// figure's real footprint — rather than from a ticker goroutine, whose
// armed runtime timer measurably slows the simulation's scheduler on a
// busy machine.
var peakHeap atomic.Uint64

const heapMetricName = "/memory/classes/heap/objects:bytes"

func sampleHeap() {
	s := []metrics.Sample{{Name: heapMetricName}}
	metrics.Read(s)
	v := s[0].Value.Uint64()
	for {
		cur := peakHeap.Load()
		if v <= cur || peakHeap.CompareAndSwap(cur, v) {
			return
		}
	}
}

// PeakHeapBytes returns the maximum live heap sampled at measurement-cell
// boundaries since the last ResetPeakHeap.
func PeakHeapBytes() uint64 { return peakHeap.Load() }

// ResetPeakHeap zeroes the per-figure peak-heap tracker.
func ResetPeakHeap() { peakHeap.Store(0) }

// SetParallelism bounds the worker pool every Spec.Run uses for its grid
// cells (and that the autotuner uses for closed-loop probes): n = 1 forces
// serial execution, n <= 0 restores the default (GOMAXPROCS). Each cell is
// an independent simulation on a fresh platform, and rows are assembled by
// index, so results are identical at any setting.
func SetParallelism(n int) { par.SetLimit(n) }

// Parallelism returns the effective grid worker-pool width.
func Parallelism() int { return par.Limit() }

// runGrid evaluates a uniform rows×cols grid of independent measurement
// cells — one fresh simulated platform each — on the bounded worker pool and
// assembles the rows by index, byte-identical to the serial loop order.
func runGrid(xs []float64, cols int, cell func(row, col int) float64) []Row {
	rows := make([]Row, len(xs))
	for i, x := range xs {
		rows[i] = Row{X: x, Values: make([]float64, cols)}
	}
	par.Map(len(xs)*cols, func(i int) {
		rows[i/cols].Values[i%cols] = cell(i/cols, i%cols)
	})
	return rows
}

// runCells evaluates n independent cells on the worker pool, returning the
// values in cell-index order (the flat variant of runGrid, for experiments
// whose cells do not form a rectangle).
func runCells(n int, cell func(i int) float64) []float64 {
	out := make([]float64, n)
	par.Map(n, func(i int) { out[i] = cell(i) })
	return out
}

// rig is a fresh simulated platform for one measurement.
type rig struct {
	topo  topology.Topology
	fab   *netsim.Fabric
	sys   storage.System
	nodes int
	rpn   int
	// fplan is the cell's deterministic fault plan — non-nil when a fault
	// config is armed (SetFaultConfig, or the chaos experiment's own plans).
	// One plan per rig: its consumed-once state never crosses cells.
	fplan *fault.Plan
}

func (r *rig) ranks() int { return r.nodes * r.rpn }

// must restores the pre-error-API failure mode for experiment drivers: an
// I/O session error inside a rank proc is a bug in the figure's setup, and
// panicking surfaces it as the run's error instead of silently recording
// corrupt figure data.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// Topologies (and their distance caches) are immutable once built: routing
// tables, coordinates and distances never change, and DistanceCache rows
// are lock-free. Cells therefore share one instance per configuration —
// fabrics and storage systems, which carry booking state, stay fresh per
// cell — so a figure pays link tables and distance rows once, not once per
// grid cell.
var (
	topoMu     sync.Mutex
	miraTopos  = map[int]*topology.Torus5D{}
	thetaTopos = map[[2]int]*topology.Dragonfly{}
	distCaches = map[topology.Topology]*topology.DistanceCache{}
)

func sharedMira(nodes int) (*topology.Torus5D, *topology.DistanceCache) {
	topoMu.Lock()
	defer topoMu.Unlock()
	topo := miraTopos[nodes]
	if topo == nil {
		topo = topology.MiraTorus(nodes)
		miraTopos[nodes] = topo
		distCaches[topo] = topology.NewDistanceCache(topo)
	}
	return topo, distCaches[topo]
}

func sharedTheta(nodes, routing int) (*topology.Dragonfly, *topology.DistanceCache) {
	topoMu.Lock()
	defer topoMu.Unlock()
	key := [2]int{nodes, routing}
	topo := thetaTopos[key]
	if topo == nil {
		topo = topology.ThetaDragonfly(nodes, routing)
		thetaTopos[key] = topo
		distCaches[topo] = topology.NewDistanceCache(topo)
	}
	return topo, distCaches[topo]
}

// miraRig builds a Mira platform. lockMode selects the GPFS token mode.
func miraRig(nodes, rpn, lockMode int) *rig {
	topo, dc := sharedMira(nodes)
	fab := netsim.New(topo, netsim.Config{
		Contention: netsim.ContentionLinks,
		InjectRate: 2 * topo.TorusLinkBW,
	})
	fab.ShareDistances(dc)
	sys := storage.NewGPFS(topo, fab, storage.GPFSConfig{LockMode: lockMode})
	return armFaults(&rig{topo: topo, fab: fab, sys: sys, nodes: nodes, rpn: rpn})
}

// thetaRig builds a Theta platform with the given routing mode and OST
// population (reduced-scale runs shrink the OST count proportionally so
// aggregator-per-OST and domain-per-stripe ratios match the paper's).
func thetaRig(nodes, rpn, routing, numOST int) *rig {
	topo, dc := sharedTheta(nodes, routing)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
	fab.ShareDistances(dc)
	sys := storage.NewLustre(topo, fab, storage.LustreConfig{NumOST: numOST})
	return armFaults(&rig{topo: topo, fab: fab, sys: sys, nodes: nodes, rpn: rpn})
}

// measure runs body on the rig and returns the I/O bandwidth in GB/s:
// bytes divided by the time between the two barriers body brackets its I/O
// with (via the mark callback).
type timer struct {
	t0, t1 int64
}

// run executes a job; body gets the comm and a timer whose Start/Stop must
// bracket the timed phase (rank 0's observations are used — barrier release
// times are common to all ranks). Every measurement cell funnels through
// here, so this is where the per-figure instrumentation (transfer count,
// peak-heap sample) hooks in.
func (r *rig) run(body func(c *mpi.Comm, tm *timer)) (float64, error) {
	defer func() {
		transferCount.Add(r.fab.Transfers())
		fabricMsgCount.Add(r.fab.FabricMessages())
		sampleHeap()
	}()
	tm := &timer{}
	rec := cellRecorder()
	// Watchdog: a cell that exceeds the virtual-time budget is killed by the
	// engine and surfaces as a structured CellError (wrapping
	// sim.BudgetError) instead of hanging the whole grid.
	weng := sim.NewEngine()
	if b := CellBudget(); b > 0 {
		weng.SetBudget(b)
	}
	eng, err := mpi.Run(mpi.Config{
		Ranks:        r.ranks(),
		RanksPerNode: r.rpn,
		Fabric:       r.fab,
		Engine:       weng,
		Recorder:     rec,
	}, func(c *mpi.Comm) {
		body(c, tm)
	})
	if err != nil {
		return 0, &CellError{Nodes: r.nodes, Ranks: r.ranks(), Err: err}
	}
	if rec != nil {
		r.fab.SnapshotMetrics(rec.Registry(), eng.Now())
		observeCell(rec)
	}
	return sim.ToSeconds(tm.t1 - tm.t0), nil
}

// Start marks the beginning of the timed phase (call after a barrier, on
// every rank; rank 0 wins).
func (tm *timer) Start(c *mpi.Comm) {
	c.Barrier()
	if c.Rank() == 0 {
		tm.t0 = c.Now()
	}
}

// Stop marks the end of the timed phase.
func (tm *timer) Stop(c *mpi.Comm) {
	c.Barrier()
	if c.Rank() == 0 {
		tm.t1 = c.Now()
	}
}

// gbps converts bytes over seconds to GB/s.
func gbps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e9
}

// Render formats a Result as an aligned text table.
func Render(res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", res.ID, res.Title)
	fmt.Fprintf(&b, "%-12s", res.XLabel)
	for _, l := range res.Labels {
		fmt.Fprintf(&b, "  %18s", l)
	}
	b.WriteByte('\n')
	for _, row := range res.Rows {
		fmt.Fprintf(&b, "%-12.3f", row.X)
		for _, v := range row.Values {
			fmt.Fprintf(&b, "  %15.3f GB/s", v)
		}
		b.WriteByte('\n')
	}
	for _, n := range res.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV formats a Result as comma-separated values.
func CSV(res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "x")
	for _, l := range res.Labels {
		fmt.Fprintf(&b, ",%s", strings.ReplaceAll(l, ",", ";"))
	}
	b.WriteByte('\n')
	for _, row := range res.Rows {
		fmt.Fprintf(&b, "%g", row.X)
		for _, v := range row.Values {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sortedKeys returns map keys in sorted order (deterministic reports).
func sortedKeys[K int | string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
