package expt

import (
	"testing"

	"tapioca/internal/core"
	"tapioca/internal/mpi"
	"tapioca/internal/mpiio"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/workload"
)

// End-to-end correctness: both I/O paths must tile the file exactly (no
// gaps, no overlaps) for every workload and platform combination — with
// capture enabled the storage layer records each flushed extent.

func verifyJob(t *testing.T, r *rig, subfile bool, fileOpt storage.FileOptions,
	method int, declared func(rank, ranks int) [][]storage.Seg, groupBytes func(ranks int) int64) {
	t.Helper()
	files := map[int]*storage.File{}
	groupSizes := map[int]int{}
	_, err := mpi.Run(mpi.Config{Ranks: r.ranks(), RanksPerNode: r.rpn, Fabric: r.fab}, func(c *mpi.Comm) {
		group := c
		name := "v"
		gid := 0
		if subfile {
			gid = r.topo.IONodeOf(c.Node())
			group = c.Split(gid, c.Rank())
			name = "v-" + string(rune('a'+gid))
		}
		f := openShared(group, r.sys, name, fileOpt)
		if group.Rank() == 0 {
			f.SetCapture(true)
			files[gid] = f
			groupSizes[gid] = group.Size()
		}
		decl := declared(group.Rank(), group.Size())
		if method == methodTapioca {
			w := core.New(group, r.sys, f, core.Config{Aggregators: 4, BufferSize: 1 << 18})
			w.Init(decl)
			w.WriteAll()
		} else {
			fh := mpiio.Open(group, r.sys, f.Name, fileOpt, mpiio.Hints{CBNodes: 4, CBBufferSize: 1 << 18, DisableSieving: true})
			for _, segs := range decl {
				fh.WriteAtAll(segs)
			}
			fh.Close()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no files captured")
	}
	for gid, f := range files {
		want := groupBytes(groupSizes[gid])
		if err := f.VerifyCoverage(0, want); err != nil {
			t.Errorf("group %d (%s): %v", gid, f.Name, err)
		}
	}
}

func TestEndToEndCoverageMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	const particles = 200
	workloads := []struct {
		name     string
		declared func(rank, ranks int) [][]storage.Seg
		bytes    func(ranks int) int64
	}{
		{
			"ior",
			func(rank, ranks int) [][]storage.Seg {
				return [][]storage.Seg{workload.IORSegs(rank, 100_000)}
			},
			func(ranks int) int64 { return int64(ranks) * 100_000 },
		},
		{
			"hacc-aos",
			func(rank, ranks int) [][]storage.Seg {
				return workload.HACCDeclared(rank, ranks, particles, workload.AoS)
			},
			func(ranks int) int64 { return workload.HACCFileBytes(ranks, particles) },
		},
		{
			"hacc-soa",
			func(rank, ranks int) [][]storage.Seg {
				return workload.HACCDeclared(rank, ranks, particles, workload.SoA)
			},
			func(ranks int) int64 { return workload.HACCFileBytes(ranks, particles) },
		},
	}
	for _, wl := range workloads {
		for _, method := range []int{methodTapioca, methodMPIIO} {
			mname := map[int]string{methodTapioca: "tapioca", methodMPIIO: "mpiio"}[method]
			t.Run(wl.name+"/"+mname+"/mira", func(t *testing.T) {
				r := miraRig(256, 1, storage.LockShared)
				verifyJob(t, r, true, storage.FileOptions{}, method, wl.declared, wl.bytes)
			})
			t.Run(wl.name+"/"+mname+"/theta", func(t *testing.T) {
				r := thetaRig(64, 2, topology.RouteMinimal, 8)
				verifyJob(t, r, false, storage.FileOptions{StripeCount: 8, StripeSize: 1 << 18}, method, wl.declared, wl.bytes)
			})
		}
	}
}

func TestEndToEndMesh2D(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	mesh := workload.Mesh2D{P: 8, Q: 16, TileRows: 16, TileCols: 64, ElemSize: 8}
	r := thetaRig(64, 2, topology.RouteMinimal, 8)
	verifyJob(t, r, false, storage.FileOptions{StripeCount: 8, StripeSize: 1 << 18}, methodTapioca,
		func(rank, ranks int) [][]storage.Seg { return [][]storage.Seg{mesh.Segs(rank)} },
		func(ranks int) int64 { return mesh.Bytes() })
}
