package expt

// Tests for the chaos experiment and the fault-plane plumbing at the
// experiment layer: the abl-faults figure must be deterministic serial vs
// parallel (fault schedules are pure functions of seed and virtual time, and
// each cell owns its plan), a zero-rate armed profile must leave every
// figure byte-identical to an unarmed run, and the per-cell virtual-time
// watchdog must kill a cell as a structured CellError wrapping the engine's
// BudgetError instead of hanging the grid.

import (
	"errors"
	"reflect"
	"testing"

	"tapioca/internal/fault"
	"tapioca/internal/sim"
)

// TestChaosDeterminism: the abl-faults figure — every cell carrying its own
// instantiated fault plan — produces a deeply equal Result (rows, notes,
// recovery-event totals) serial and on a worker pool.
func TestChaosDeterminism(t *testing.T) {
	SetChaosShort(true)
	defer SetChaosShort(false)
	defer SetParallelism(0)
	SetParallelism(1)
	serial := AblationFaults(false)
	SetParallelism(8)
	parallel := AblationFaults(false)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("abl-faults diverged serial vs parallel:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if len(serial.Rows) != 2 || len(serial.Rows[0].Values) != 2 {
		t.Fatalf("short chaos sweep shape: %+v", serial.Rows)
	}
}

// TestZeroRateFaultsByteIdentical: arming a fault profile with rate 0 (the
// -faults flag's no-op configuration) must leave a figure byte-identical to
// a run with no profile armed at all — the zero-fault path is exactly the
// original code path.
func TestZeroRateFaultsByteIdentical(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	s := ByID("abl-pipeline")
	if s == nil {
		t.Fatal("unknown spec abl-pipeline")
	}
	plain := s.Run(false)
	cfg := fault.Profile(7, 0)
	SetFaultConfig(&cfg)
	defer SetFaultConfig(nil)
	armed := s.Run(false)
	if !reflect.DeepEqual(plain, armed) {
		t.Fatalf("zero-rate fault profile perturbed the figure:\nplain: %+v\narmed: %+v", plain, armed)
	}
}

// TestCellBudgetWatchdog: a cell that exceeds the virtual-time budget is
// killed by the engine and surfaces as a CellError (naming the cell's shape)
// wrapping the engine's BudgetError — the structured report a grid run
// prints instead of hanging.
func TestCellBudgetWatchdog(t *testing.T) {
	SetCellBudget(1) // 1 ns: any real cell blows through it immediately
	defer SetCellBudget(0)
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if err, ok = r.(error); !ok {
					t.Fatalf("cell panicked with a non-error: %v", r)
				}
			}
		}()
		chaosCell(2, 2, 2, 0, true)
	}()
	if err == nil {
		t.Fatal("cell completed under a 1 ns budget")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("expected a CellError, got %T: %v", err, err)
	}
	if ce.Nodes != 2 || ce.Ranks != 4 {
		t.Errorf("CellError shape = %d nodes, %d ranks; want 2, 4", ce.Nodes, ce.Ranks)
	}
	var be *sim.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("CellError does not wrap the engine's BudgetError: %v", err)
	}
	if be.Limit != 1 {
		t.Errorf("BudgetError.Limit = %d, want 1", be.Limit)
	}
}
