// Package tune is TAPIOCA's model-driven autotuner: given a machine's
// topology and storage calibration plus a workload descriptor
// (workload.Pattern), it searches the configuration space the paper tunes
// by hand per platform (§V) — aggregator count, aggregation buffer size,
// placement strategy, Lustre striping, and the pipelining mode — and
// returns the configuration the cost model predicts fastest.
//
// The search is deterministic: a coarse grid over aggregator count × buffer
// size × placement (striping follows each candidate through the storage
// system's StripeAdvisor, and both pipeline variants are priced in every
// pass), followed by local refinement around the best grid point. An
// optional closed-loop mode re-grounds the model before the final pick:
// the top candidates each run a short simulated probe (a few aggregation
// rounds of the real workload), and each candidate's prediction is scaled
// by its observed/predicted probe ratio — Kang et al.'s and TASIO's
// measure-then-choose direction on top of the analytic model.
package tune

import (
	"fmt"
	"sort"

	"tapioca/internal/core"
	"tapioca/internal/cost"
	"tapioca/internal/dataplane"
	"tapioca/internal/mpiio"
	"tapioca/internal/par"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/tree"
	"tapioca/internal/workload"
)

// Platform is the autotuner's read-only view of a machine. Nothing here is
// mutated by a search: predictions price candidates arithmetically, and
// probes (when enabled) run on fresh machines supplied by the Probe hook.
type Platform struct {
	// Topo is the machine's interconnect.
	Topo topology.Topology
	// Dist optionally shares the machine-wide memoized distance cache; a
	// private cache is built when nil.
	Dist *topology.DistanceCache
	// Sys is the machine's storage system (its FlushModel / StripeAdvisor
	// hooks calibrate the flush and striping terms when implemented).
	Sys storage.System
	// RanksPerNode is the job's rank→node density. Default 1.
	RanksPerNode int
	// Probe, when set, runs a short real simulation of workload w under the
	// candidate configuration and returns the measured collective seconds.
	// Required for the closed-loop mode (Options.Probes > 0). Candidate
	// probes are independent and run on the shared worker pool
	// (internal/par), so the hook must be safe for concurrent calls — build
	// a fresh machine per invocation and touch nothing shared.
	Probe func(cfg core.Config, fopt storage.FileOptions, w workload.Pattern) float64
}

// Options tunes the search itself. The zero value is the recommended
// pure-model search.
type Options struct {
	// Aggregators is an explicit aggregator-count grid; nil derives one
	// from the rank count and the storage system's striping.
	Aggregators []int
	// BufferSizes is an explicit buffer-size grid; nil selects 2–32 MB in
	// powers of two.
	BufferSizes []int64
	// Placements lists the election strategies to consider; nil selects
	// topology-aware and two-level.
	Placements []cost.Placement
	// Codecs lists the reduction stages to consider; a nil entry means no
	// compression. Nil (the default) searches only the uncompressed path, so
	// the codec dimension is strictly opt-in.
	Codecs []dataplane.Codec
	// NoRefine restricts the search to the exact grid — what an exhaustive
	// sweep over the same space evaluates, so ablations compare
	// like-for-like.
	NoRefine bool
	// Probes enables the closed-loop mode: the top Probes candidates each
	// run a short simulated probe and the final pick minimizes the
	// probe-corrected prediction. Requires Platform.Probe.
	Probes int
	// Degraded tunes for the degraded-mode configuration: the platform's
	// burst-buffer tier is assumed down and the search prices candidates
	// against the fallback tier behind it (storage.DegradedSystemOf). The
	// recovery machinery surfaces a tier outage to the caller, who re-tunes
	// with this set to pick the direct-to-PFS configuration. No-op when the
	// platform has no fallback tier.
	Degraded bool
	// TreeSearch adds the aggregation-tree dimension: every grid point also
	// runs the multi-level reduction-shape search (internal/tree) over the
	// partitions the candidate would build, and a searched-tree candidate is
	// emitted whenever the winning shape is non-degenerate. While active,
	// every candidate — flat, staged and tree alike — is priced with a
	// per-message charge (MessagePenalty, or the control-plane α when unset)
	// so shapes compete on equal terms. Off by default: the paper's
	// two-phase baseline stays untouched unless a caller opts in.
	TreeSearch bool
	// MessagePenalty is the expected extra seconds a receiver spends per
	// incoming fabric message when TreeSearch prices shapes — on a lossy
	// fabric, loss rate × retransmit penalty. Zero selects the control-plane
	// α (software overhead plus route latency). Ignored without TreeSearch.
	MessagePenalty float64
}

// Candidate is one evaluated configuration.
type Candidate struct {
	Config      core.Config
	FileOptions storage.FileOptions
	// Predicted is the model's end-to-end estimate in seconds.
	Predicted float64
	// Probed is the measured seconds of the truncated probe run (0 when the
	// candidate was not probed).
	Probed float64
	// Corrected is Predicted scaled by the probe's observed/predicted ratio
	// (equal to Predicted when not probed).
	Corrected float64
}

// Result is a completed search.
type Result struct {
	// Config, FileOptions and Hints are the winning configuration for the
	// TAPIOCA path, file creation, and the MPI-IO baseline respectively.
	Config      core.Config
	FileOptions storage.FileOptions
	Hints       mpiio.Hints
	// Predicted is the winner's (probe-corrected, in closed-loop mode)
	// end-to-end estimate in seconds.
	Predicted float64
	// Calibration is the winner's observed/predicted probe ratio (1 in
	// pure-model mode).
	Calibration float64
	// Evaluated counts scored candidates; Candidates lists them ranked
	// best-first.
	Evaluated  int
	Candidates []Candidate
}

// probeRounds is how many aggregation rounds a closed-loop probe simulates.
const probeRounds = 3

// Autotune searches the configuration space for workload w on platform p
// and returns the predicted-fastest configuration. Deterministic: the same
// inputs always produce the same pick. It panics on an infeasible platform
// (ranks exceeding nodes × ranks-per-node); callers that want a recoverable
// error use TryAutotune.
func Autotune(p Platform, w workload.Pattern, opt Options) Result {
	res, err := TryAutotune(p, w, opt)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// TryAutotune is Autotune with platform validation surfaced as an error
// instead of a panic: a workload whose rank count exceeds the platform's
// nodes × ranks-per-node capacity is reported, not crashed on, so CLIs can
// print the mismatch and exit cleanly.
func TryAutotune(p Platform, w workload.Pattern, opt Options) (Result, error) {
	if p.RanksPerNode <= 0 {
		p.RanksPerNode = 1
	}
	if opt.Degraded {
		if d := storage.DegradedSystemOf(p.Sys); d != nil {
			p.Sys = d
		}
	}
	pr, err := newPredictor(p, w)
	if err != nil {
		return Result{}, err
	}
	if opt.TreeSearch {
		pr.msgPenalty = opt.MessagePenalty
		if pr.msgPenalty <= 0 {
			pr.msgPenalty = pr.alpha()
		}
	}
	advisor := storage.StripeAdvisorOf(p.Sys)

	aggGrid := opt.Aggregators
	if len(aggGrid) == 0 {
		aggGrid = defaultAggregators(w.Ranks, advisor, pr.totalBytes)
	}
	bufGrid := opt.BufferSizes
	if len(bufGrid) == 0 {
		bufGrid = []int64{2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20}
	}
	placements := opt.Placements
	if len(placements) == 0 {
		placements = []cost.Placement{cost.TopologyAware(), cost.TwoLevel()}
	}
	codecs := opt.Codecs
	if len(codecs) == 0 {
		codecs = []dataplane.Codec{nil}
	}

	s := &search{p: p, pr: pr, advisor: advisor, seen: map[string]bool{}, treeSearch: opt.TreeSearch}
	for _, a := range aggGrid {
		for _, b := range bufGrid {
			for _, pl := range placements {
				for _, cd := range codecs {
					s.evaluate(a, b, pl, cd)
				}
			}
		}
	}
	if len(s.cands) == 0 {
		panic(fmt.Sprintf("tune: no valid candidates in search space (aggregators %v, buffers %v)", aggGrid, bufGrid))
	}
	s.rank()

	// Local refinement: probe the geometric neighborhood of the best grid
	// point along each axis, twice, keeping the winner's placement and codec.
	if !opt.NoRefine {
		for iter := 0; iter < 2; iter++ {
			best := s.cands[0]
			a, b := best.Config.Aggregators, best.Config.BufferSize
			for _, na := range neighborInts(a, aggGrid) {
				s.evaluate(na, b, best.Config.Placement, best.Config.Codec)
			}
			for _, nb := range neighborSizes(b, bufGrid) {
				s.evaluate(a, nb, best.Config.Placement, best.Config.Codec)
			}
			s.rank()
		}
	}

	// Closed loop: re-ground the top candidates with short probe rounds.
	if opt.Probes > 0 && p.Probe != nil {
		s.probe(w, opt.Probes)
		s.rank()
	}

	best := s.cands[0]
	// The ratio actually applied to the winner: its own probe's ratio, the
	// mean probe ratio when it went unprobed, or 1 in pure-model mode.
	calibration := 1.0
	if best.Predicted > 0 {
		calibration = best.Corrected / best.Predicted
	}
	hints := mpiio.TunedHints(best.Config.Aggregators, best.Config.BufferSize, best.Config.Placement)
	if best.Config.Tree != nil {
		hints.TreePlan = best.Config.Tree.String()
	}
	return Result{
		Config:      best.Config,
		FileOptions: best.FileOptions,
		Hints:       hints,
		Predicted:   best.Corrected,
		Calibration: calibration,
		Evaluated:   len(s.cands),
		Candidates:  s.cands,
	}, nil
}

// search accumulates scored candidates.
type search struct {
	p          Platform
	pr         *predictor
	advisor    storage.StripeAdvisor
	cands      []Candidate
	seen       map[string]bool
	treeSearch bool
}

// fileOptions derives the candidate's file-creation options: the storage
// advisor couples striping to the aggregation configuration (stripe size =
// buffer size, the Table I 1:1 optimum); systems without striping get
// platform defaults.
func (s *search) fileOptions(bufSize int64, aggregators int) storage.FileOptions {
	if s.advisor == nil {
		return storage.FileOptions{}
	}
	return s.advisor.RecommendStripe(s.pr.totalBytes, bufSize, aggregators)
}

// codecName labels a codec grid entry in search keys and rank tie-breaks;
// nil (no reduction) sorts before every named codec.
func codecName(cd dataplane.Codec) string {
	if cd == nil {
		return ""
	}
	return cd.Name()
}

func key(a int, b int64, pl cost.Placement, cd dataplane.Codec) string {
	return fmt.Sprintf("%d/%d/%s/%s", a, b, pl.Name(), codecName(cd))
}

// evaluate scores one (aggregators, buffer, placement, codec) point; both
// pipeline variants come out of a single prediction pass, and on platforms
// with co-located ranks (RanksPerNode > 1) the intra-node staging variants
// are priced alongside the flat ones. At one rank per node staging is a
// structural no-op (every node group is a singleton), so only the flat pair
// is emitted.
func (s *search) evaluate(a int, b int64, pl cost.Placement, cd dataplane.Codec) {
	if a < 1 || b < 1 {
		return
	}
	if a > len(s.pr.all) {
		a = len(s.pr.all)
	}
	k := key(a, b, pl, cd)
	if s.seen[k] {
		return
	}
	s.seen[k] = true
	fopt := s.fileOptions(b, a)
	stagings := []bool{false}
	if s.p.RanksPerNode > 1 {
		stagings = append(stagings, true)
	}
	for _, staged := range stagings {
		cfg := core.Config{Aggregators: a, BufferSize: b, Placement: pl, Codec: cd, IntraNodeStaging: staged}
		double, single := s.pr.predict(cfg, fopt)
		s.cands = append(s.cands, Candidate{Config: cfg, FileOptions: fopt, Predicted: double, Corrected: double})
		scfg := cfg
		scfg.SingleBuffer = true
		s.cands = append(s.cands, Candidate{Config: scfg, FileOptions: fopt, Predicted: single, Corrected: single})
	}
	// The tree dimension: search reduction shapes over this point's real
	// partitions and elections; a non-degenerate winner becomes one more
	// candidate pair (degenerate winners are already covered by the plain
	// candidates above). Interior shapes need co-located ranks for their
	// staging base, same gate as the staged variants.
	if s.treeSearch && s.p.RanksPerNode > 1 {
		base := core.Config{Aggregators: a, BufferSize: b, Placement: pl, Codec: cd}
		if shape, ok := s.pr.searchShape(base, fopt); ok {
			sh := shape
			base.Tree = &sh
			double, single := s.pr.predict(base, fopt)
			s.cands = append(s.cands, Candidate{Config: base, FileOptions: fopt, Predicted: double, Corrected: double})
			scfg := base
			scfg.SingleBuffer = true
			s.cands = append(s.cands, Candidate{Config: scfg, FileOptions: fopt, Predicted: single, Corrected: single})
		}
	}
}

// rank orders candidates best-first, deterministically: corrected time, then
// fewer aggregators, smaller buffers, double-buffered before single, the flat
// data plane before intra-node staging (ties mean the extra hop bought
// nothing), no codec before a named one, and placement name as the last
// resort.
func (s *search) rank() {
	sort.SliceStable(s.cands, func(i, j int) bool {
		a, b := s.cands[i], s.cands[j]
		if a.Corrected != b.Corrected {
			return a.Corrected < b.Corrected
		}
		if a.Config.Aggregators != b.Config.Aggregators {
			return a.Config.Aggregators < b.Config.Aggregators
		}
		if a.Config.BufferSize != b.Config.BufferSize {
			return a.Config.BufferSize < b.Config.BufferSize
		}
		if a.Config.SingleBuffer != b.Config.SingleBuffer {
			return !a.Config.SingleBuffer
		}
		if a.Config.IntraNodeStaging != b.Config.IntraNodeStaging {
			return !a.Config.IntraNodeStaging
		}
		if (a.Config.Tree == nil) != (b.Config.Tree == nil) {
			// A tied tree bought nothing over the plain pipeline.
			return a.Config.Tree == nil
		}
		if an, bn := treeName(a.Config.Tree), treeName(b.Config.Tree); an != bn {
			return an < bn
		}
		if an, bn := codecName(a.Config.Codec), codecName(b.Config.Codec); an != bn {
			return an < bn
		}
		return a.Config.Placement.Name() < b.Config.Placement.Name()
	})
}

// treeName labels a candidate's aggregation-tree shape in rank tie-breaks;
// nil (the plain pipeline) sorts before every shaped candidate.
func treeName(sh *tree.Shape) string {
	if sh == nil {
		return ""
	}
	return sh.String()
}

// probe runs the closed loop over the current top-k candidates: each runs a
// truncated workload (≈probeRounds rounds per partition) on a fresh machine,
// and its full prediction is rescaled by the observed/predicted ratio of the
// probe. Mispriced candidates (an optimistic storage term, an underestimated
// incast) are pulled back toward reality before the final pick.
//
// Probes are independent simulations (the Probe hook builds a fresh machine
// per call), so they run on the shared bounded worker pool; the ratios are
// applied in candidate order afterwards, keeping the pick identical to a
// serial probe loop.
func (s *search) probe(w workload.Pattern, k int) {
	if k > len(s.cands) {
		k = len(s.cands)
	}
	type outcome struct{ measured, predicted float64 }
	outs := make([]outcome, k)
	par.Map(k, func(i int) {
		c := s.cands[i]
		perRank := probeRounds * c.Config.BufferSize * int64(c.Config.Aggregators) / int64(w.Ranks)
		if perRank < 64<<10 {
			perRank = 64 << 10
		}
		probeW := w.Truncate(perRank)
		// The truncated workload keeps w's rank count, which the search's own
		// predictor already validated against the platform.
		probePr, err := newPredictor(s.p, probeW)
		if err != nil {
			return
		}
		probePr.msgPenalty = s.pr.msgPenalty
		predicted, predictedSingle := probePr.predict(c.Config, c.FileOptions)
		if c.Config.SingleBuffer {
			predicted = predictedSingle
		}
		outs[i] = outcome{measured: s.p.Probe(c.Config, c.FileOptions, probeW), predicted: predicted}
	})
	var ratioSum float64
	var probed int
	for i := 0; i < k; i++ {
		c := &s.cands[i]
		measured, predicted := outs[i].measured, outs[i].predicted
		if predicted <= 0 || measured <= 0 {
			continue
		}
		c.Probed = measured
		c.Corrected = c.Predicted * (measured / predicted)
		ratioSum += measured / predicted
		probed++
	}
	// Unprobed candidates get the mean observed/predicted ratio, so a
	// systematically optimistic model cannot hand the final pick to a
	// candidate only because it escaped probing.
	if probed > 0 {
		mean := ratioSum / float64(probed)
		for i := range s.cands {
			if s.cands[i].Probed == 0 {
				s.cands[i].Corrected = s.cands[i].Predicted * mean
			}
		}
	}
}

// defaultAggregators derives the coarse aggregator grid: powers of two
// across the plausible range, the library's own default (ranks/16), and the
// storage advisor's stripe width with 1–8 aggregators per stripe (the
// paper's 2–8-per-OST observation).
func defaultAggregators(ranks int, advisor storage.StripeAdvisor, totalBytes int64) []int {
	set := map[int]bool{}
	add := func(a int) {
		if a >= 1 && a <= ranks {
			set[a] = true
		}
	}
	lo := ranks / 1024
	if lo < 4 {
		lo = 4
	}
	for a := lo; a <= ranks/4; a *= 2 {
		add(a)
	}
	add(ranks / 16)
	if advisor != nil {
		c := advisor.RecommendStripe(totalBytes, 8<<20, 0).StripeCount
		for m := 1; m <= 8; m *= 2 {
			add(m * c)
		}
	}
	if len(set) == 0 {
		add(1)
	}
	out := make([]int, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// neighborInts proposes midpoints between v and its nearest grid neighbors
// (the refinement step along the aggregator axis). A best point at either
// edge of the grid refines inward only — refinement never leaves the
// searched range.
func neighborInts(v int, grid []int) []int {
	below, above := 0, 0
	for _, g := range grid {
		if g < v && g > below {
			below = g
		}
		if g > v && (above == 0 || g < above) {
			above = g
		}
	}
	var out []int
	if below > 0 && (v+below)/2 != v {
		out = append(out, (v+below)/2)
	}
	if above > 0 && (v+above)/2 != v {
		out = append(out, (v+above)/2)
	}
	return out
}

// neighborSizes proposes midpoints along the buffer axis, rounded to 1 MB so
// stripe-matched candidates stay sane.
func neighborSizes(v int64, grid []int64) []int64 {
	const mb = 1 << 20
	var below, above int64 = 0, 1 << 62
	for _, g := range grid {
		if g < v && g > below {
			below = g
		}
		if g > v && g < above {
			above = g
		}
	}
	var out []int64
	if below > 0 {
		if m := (v + below) / 2 / mb * mb; m >= mb && m != v {
			out = append(out, m)
		}
	}
	if above < 1<<62 {
		if m := (v + above) / 2 / mb * mb; m >= mb && m != v {
			out = append(out, m)
		}
	}
	return out
}
