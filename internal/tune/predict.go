package tune

import (
	"fmt"
	"math"

	"tapioca/internal/core"
	"tapioca/internal/cost"
	"tapioca/internal/dataplane"
	"tapioca/internal/sim"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/workload"
)

// predictor prices one candidate configuration analytically. It combines
// three calibrated sources so a prediction and a live run agree on
// structure, not just trend:
//
//   - the real declared-I/O planner (core.EstimatePlan) supplies partitions,
//     rounds and per-round flush extents;
//   - the §IV-B cost model (internal/cost) supplies the aggregation phase
//     and runs the same election the live session would, so the predicted
//     aggregator is the elected aggregator;
//   - the storage system's FlushModel supplies single-stream flush time and
//     the concurrency ceiling (falling back to the cost model's C2 uplink
//     formula when a system has no hook).
//
// Rounds then compose exactly like the pipeline in internal/core: double
// buffering overlaps round r's aggregation with round r-1's flush, the
// single-buffer ablation serializes them.
type predictor struct {
	p          Platform
	model      *cost.Model
	fm         storage.FlushModel
	all        [][]storage.Seg
	totalBytes int64
	nodes      []int // rank → compute node (the runtime's block mapping)
	read       bool
	latency    float64 // per-hop seconds
}

func newPredictor(p Platform, w workload.Pattern) (*predictor, error) {
	if w.Ranks <= 0 {
		return nil, fmt.Errorf("tune: workload declares no ranks")
	}
	if w.Ranks > p.Topo.Nodes()*p.RanksPerNode {
		return nil, fmt.Errorf("tune: %d ranks exceed %d nodes × %d ranks/node",
			w.Ranks, p.Topo.Nodes(), p.RanksPerNode)
	}
	dist := p.Dist
	if dist == nil {
		dist = topology.NewDistanceCache(p.Topo)
	}
	pr := &predictor{
		p:       p,
		model:   cost.MachineModel(dist, p.Sys),
		fm:      storage.FlushModelOf(p.Sys),
		all:     w.AllSegs(),
		nodes:   make([]int, w.Ranks),
		read:    w.Read,
		latency: sim.ToSeconds(p.Topo.Latency()),
	}
	for r := range pr.nodes {
		pr.nodes[r] = r / p.RanksPerNode
	}
	for _, segs := range pr.all {
		pr.totalBytes += storage.TotalBytes(segs)
	}
	return pr, nil
}

// alpha is the per-message control-plane cost of a fence or reduction step:
// software overhead plus a typical route's hop latency.
const softwareOverhead = 2e-6

func (pr *predictor) alpha() float64 { return softwareOverhead + 5*pr.latency }

// alignUnit resolves the file system's optimal write granularity for a
// candidate file without creating it.
func (pr *predictor) alignUnit(fopt storage.FileOptions) int64 {
	if pr.fm != nil {
		return pr.fm.AlignUnit(fopt)
	}
	return 0
}

// aggregationSeconds is the network cost of one partition's full aggregation
// stream into the elected member — C1 for the flat data plane, the intra-node
// pre-merge variant when staging is on. The dispatch follows the data-plane
// knob, not the election strategy: a two-level *election* without staging
// still moves per-member fabric traffic, so only Config.IntraNodeStaging
// earns the coalesced price. The I/O term C2 is deliberately excluded: the
// flush estimator prices the storage path.
func (pr *predictor) aggregationSeconds(staged bool, members []cost.Member, win int) float64 {
	if staged {
		return pr.model.TwoLevelCost(members, win, 0)
	}
	return pr.model.AggregationCost(members, win)
}

// flushSeconds is one aggregator's single-stream time for one round's flush.
func (pr *predictor) flushSeconds(fopt storage.FileOptions, bytes, runs int64, aggNode int) float64 {
	if bytes == 0 {
		return 0
	}
	if pr.fm != nil {
		return pr.fm.EstimateFlush(fopt, bytes, runs, pr.read)
	}
	return pr.model.IOCost(aggNode, bytes)
}

// predict returns the estimated end-to-end seconds of the collective phase
// under cfg/fopt, for both pipeline variants (double-buffered and the
// single-buffer ablation) in one pass.
func (pr *predictor) predict(cfg core.Config, fopt storage.FileOptions) (double, single float64) {
	cfg.ApplyDefaults(len(pr.all))
	est := core.EstimatePlan(pr.all, cfg, pr.alignUnit(fopt))
	n := est.Rounds
	if n == 0 {
		return 0, 0
	}

	// Codec pricing mirrors the pipeline exactly: the aggregator's stream
	// time gains the modeled compress (write) or decompress (read) compute,
	// and the bytes that hit storage shrink to the modeled compressed size
	// as one contiguous extent per round.
	var codecRate float64 // bytes/second of the priced codec stage
	if cfg.Codec != nil {
		crate, drate := cfg.Codec.ModelRates()
		if pr.read {
			codecRate = drate
		} else {
			codecRate = crate
		}
	}

	aggRound := make([]float64, n)    // slowest partition's aggregation per round
	flushStream := make([]float64, n) // slowest single aggregator stream per round
	flushBytes := make([]int64, n)    // system-wide payload per round
	for pi := range est.Parts {
		pe := &est.Parts[pi]
		if pe.Bytes == 0 || pe.Rounds == 0 {
			continue
		}
		members := make([]cost.Member, pe.Ranks)
		for i := range members {
			members[i] = cost.Member{Node: pr.nodes[pe.FirstRank+i], Bytes: pe.MemberBytes[i]}
		}
		win := cfg.Placement.Elect(&cost.Election{
			Model:     pr.model,
			Members:   members,
			IOBytes:   pe.Bytes,
			Partition: pi,
		})
		fence := 2 * math.Log2(float64(pe.Ranks)+1) * pr.alpha()
		perRound := pr.aggregationSeconds(cfg.IntraNodeStaging, members, win)/float64(pe.Rounds) + fence
		for r := 0; r < pe.Rounds; r++ {
			if perRound > aggRound[r] {
				aggRound[r] = perRound
			}
			fb, fruns := pe.FlushBytes[r], pe.FlushRuns[r]
			var codecSecs float64
			if cfg.Codec != nil && fb > 0 {
				codecSecs = float64(fb) / codecRate
				fb, fruns = dataplane.ModeledSize(cfg.Codec, fb), 1
			}
			if fs := codecSecs + pr.flushSeconds(fopt, fb, fruns, members[win].Node); fs > flushStream[r] {
				flushStream[r] = fs
			}
			flushBytes[r] += fb
		}
	}

	// Concurrent streams cannot beat the system ceiling: a round's flush wall
	// time is the slower of its slowest stream and the saturated rate.
	aggBW := math.Inf(1)
	if pr.fm != nil {
		aggBW = pr.fm.AggregateBandwidth(fopt, pr.read)
	}
	flushRound := make([]float64, n)
	for r := range flushRound {
		flushRound[r] = flushStream[r]
		if lim := float64(flushBytes[r]) / aggBW; lim > flushRound[r] {
			flushRound[r] = lim
		}
	}

	// Init: the plan collective and election, then the pipeline.
	init := 4 * math.Log2(float64(len(pr.all))+1) * pr.alpha()
	if cfg.ElectionOverhead > 0 {
		init += sim.ToSeconds(cfg.ElectionOverhead)
	}
	double, single = init, init
	double += aggRound[0]
	for r := 1; r < n; r++ {
		double += math.Max(aggRound[r], flushRound[r-1])
	}
	double += flushRound[n-1]
	for r := 0; r < n; r++ {
		single += aggRound[r] + flushRound[r]
	}
	return double, single
}
