package tune

import (
	"fmt"
	"math"

	"tapioca/internal/core"
	"tapioca/internal/cost"
	"tapioca/internal/dataplane"
	"tapioca/internal/sim"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/tree"
	"tapioca/internal/workload"
)

// predictor prices one candidate configuration analytically. It combines
// three calibrated sources so a prediction and a live run agree on
// structure, not just trend:
//
//   - the real declared-I/O planner (core.EstimatePlan) supplies partitions,
//     rounds and per-round flush extents;
//   - the §IV-B cost model (internal/cost) supplies the aggregation phase
//     and runs the same election the live session would, so the predicted
//     aggregator is the elected aggregator;
//   - the storage system's FlushModel supplies single-stream flush time and
//     the concurrency ceiling (falling back to the cost model's C2 uplink
//     formula when a system has no hook).
//
// Rounds then compose exactly like the pipeline in internal/core: double
// buffering overlaps round r's aggregation with round r-1's flush, the
// single-buffer ablation serializes them.
type predictor struct {
	p          Platform
	model      *cost.Model
	fm         storage.FlushModel
	all        [][]storage.Seg
	totalBytes int64
	nodes      []int // rank → compute node (the runtime's block mapping)
	read       bool
	latency    float64 // per-hop seconds
	msgPenalty float64 // seconds per inter-node message; >0 only under TreeSearch
}

func newPredictor(p Platform, w workload.Pattern) (*predictor, error) {
	if w.Ranks <= 0 {
		return nil, fmt.Errorf("tune: workload declares no ranks")
	}
	if w.Ranks > p.Topo.Nodes()*p.RanksPerNode {
		return nil, fmt.Errorf("tune: %d ranks exceed %d nodes × %d ranks/node",
			w.Ranks, p.Topo.Nodes(), p.RanksPerNode)
	}
	dist := p.Dist
	if dist == nil {
		dist = topology.NewDistanceCache(p.Topo)
	}
	pr := &predictor{
		p:       p,
		model:   cost.MachineModel(dist, p.Sys),
		fm:      storage.FlushModelOf(p.Sys),
		all:     w.AllSegs(),
		nodes:   make([]int, w.Ranks),
		read:    w.Read,
		latency: sim.ToSeconds(p.Topo.Latency()),
	}
	for r := range pr.nodes {
		pr.nodes[r] = r / p.RanksPerNode
	}
	for _, segs := range pr.all {
		pr.totalBytes += storage.TotalBytes(segs)
	}
	return pr, nil
}

// alpha is the per-message control-plane cost of a fence or reduction step:
// software overhead plus a typical route's hop latency.
const softwareOverhead = 2e-6

func (pr *predictor) alpha() float64 { return softwareOverhead + 5*pr.latency }

// alignUnit resolves the file system's optimal write granularity for a
// candidate file without creating it.
func (pr *predictor) alignUnit(fopt storage.FileOptions) int64 {
	if pr.fm != nil {
		return pr.fm.AlignUnit(fopt)
	}
	return 0
}

// aggregationSeconds is the network cost of one partition's full aggregation
// stream into the elected member — C1 for the flat data plane, the intra-node
// pre-merge variant when staging is on. The dispatch follows the data-plane
// knob, not the election strategy: a two-level *election* without staging
// still moves per-member fabric traffic, so only Config.IntraNodeStaging
// earns the coalesced price. The I/O term C2 is deliberately excluded: the
// flush estimator prices the storage path.
//
// When cfg carries a tree shape — or a per-message penalty is active
// (TreeSearch pricing) — the partition is priced through the shape pricer,
// with the penalty scaled to the full session (tree.Price counts one message
// per sender for the whole byte stream; the live pipeline sends that many per
// round). Plain configs are mapped to the degenerate shape they execute as,
// so flat, staged and tree candidates all pay the penalty on equal terms.
// The returned level count is the number of interior reduction levels — each
// one costs an extra fence per round, which the caller charges alongside the
// base fence.
func (pr *predictor) aggregationSeconds(cfg core.Config, members []cost.Member, win, rounds int) (secs float64, interiorLevels int) {
	sh := cfg.Tree
	if sh == nil && pr.msgPenalty > 0 {
		k := tree.Flat
		if cfg.IntraNodeStaging {
			k = tree.NodeStaged
		}
		sh = &tree.Shape{Kind: k}
	}
	if sh != nil {
		t, leaders, ok := pr.buildTree(*sh, members, win)
		if ok && !sh.Degenerate() && t.Levels < 2 {
			// Structurally degenerate on this partition: the runtime falls
			// back to the staged pipeline (ApplyDefaults forced staging on),
			// so price exactly that.
			ns := tree.Shape{Kind: tree.NodeStaged}
			t, leaders, ok = pr.buildTree(ns, members, win)
		}
		if ok {
			secs = tree.Price(pr.model, t, leaders, members, win, tree.PriceOptions{
				PerMessageSeconds: pr.msgPenalty * float64(rounds),
			})
			if t.Levels > 1 {
				interiorLevels = t.Levels - 1
			}
			return secs, interiorLevels
		}
		// Duplicate node runs: the runtime disables the tree; fall through.
	}
	if cfg.IntraNodeStaging {
		return pr.model.TwoLevelCost(members, win, 0), 0
	}
	return pr.model.AggregationCost(members, win), 0
}

// buildTree assembles the reduction tree cfg.Tree would produce over one
// partition's members — same leader run-length encoding and topology grouper
// the runtime uses — and reports ok=false when the shape cannot form
// (duplicate node runs disable trees at setup, exactly as in the runtime).
func (pr *predictor) buildTree(sh tree.Shape, members []cost.Member, win int) (*tree.Tree, []tree.Leader, bool) {
	leaders, starts := tree.Leaders(members)
	seen := make(map[int]bool, len(leaders))
	for _, l := range leaders {
		if seen[l.Node] {
			return nil, nil, false
		}
		seen[l.Node] = true
	}
	return tree.Build(sh, leaders, tree.RootLeader(starts, win), tree.GrouperOf(pr.p.Topo)), leaders, true
}

// searchShape runs the aggregation-tree shape search for one grid point. The
// partitions and elections come from the same plan/election path predict
// uses, so the searched shape is priced against exactly the partitions the
// live session would build. Per-message and fence charges are scaled by the
// deepest partition's round count: tree.Price books them once per session,
// the pipeline pays them every round. Reports ok=false when the search comes
// back degenerate (flat or staged already wins) — the plain candidates cover
// that point.
func (pr *predictor) searchShape(cfg core.Config, fopt storage.FileOptions) (tree.Shape, bool) {
	cfg.ApplyDefaults(len(pr.all))
	est := core.EstimatePlan(pr.all, cfg, pr.alignUnit(fopt))
	var parts []tree.Partition
	maxRounds, maxRanks := 0, 0
	for pi := range est.Parts {
		pe := &est.Parts[pi]
		if pe.Bytes == 0 || pe.Rounds == 0 {
			continue
		}
		members := make([]cost.Member, pe.Ranks)
		for i := range members {
			members[i] = cost.Member{Node: pr.nodes[pe.FirstRank+i], Bytes: pe.MemberBytes[i]}
		}
		win := cfg.Placement.Elect(&cost.Election{
			Model:     pr.model,
			Members:   members,
			IOBytes:   pe.Bytes,
			Partition: pi,
		})
		parts = append(parts, tree.Partition{Members: members, Root: win})
		if pe.Rounds > maxRounds {
			maxRounds = pe.Rounds
		}
		if pe.Ranks > maxRanks {
			maxRanks = pe.Ranks
		}
	}
	if len(parts) == 0 {
		return tree.Shape{}, false
	}
	fence := 2 * math.Log2(float64(maxRanks)+1) * pr.alpha()
	res := tree.Search(pr.model, parts, tree.GrouperOf(pr.p.Topo), tree.SearchOptions{
		Price: tree.PriceOptions{
			PerMessageSeconds: pr.msgPenalty * float64(maxRounds),
			FenceSeconds:      fence * float64(maxRounds),
		},
	})
	return res.Shape, !res.Shape.Degenerate()
}

// flushSeconds is one aggregator's single-stream time for one round's flush.
func (pr *predictor) flushSeconds(fopt storage.FileOptions, bytes, runs int64, aggNode int) float64 {
	if bytes == 0 {
		return 0
	}
	if pr.fm != nil {
		return pr.fm.EstimateFlush(fopt, bytes, runs, pr.read)
	}
	return pr.model.IOCost(aggNode, bytes)
}

// predict returns the estimated end-to-end seconds of the collective phase
// under cfg/fopt, for both pipeline variants (double-buffered and the
// single-buffer ablation) in one pass.
func (pr *predictor) predict(cfg core.Config, fopt storage.FileOptions) (double, single float64) {
	cfg.ApplyDefaults(len(pr.all))
	est := core.EstimatePlan(pr.all, cfg, pr.alignUnit(fopt))
	n := est.Rounds
	if n == 0 {
		return 0, 0
	}

	// Codec pricing mirrors the pipeline exactly: the aggregator's stream
	// time gains the modeled compress (write) or decompress (read) compute,
	// and the bytes that hit storage shrink to the modeled compressed size
	// as one contiguous extent per round.
	var codecRate float64 // bytes/second of the priced codec stage
	if cfg.Codec != nil {
		crate, drate := cfg.Codec.ModelRates()
		if pr.read {
			codecRate = drate
		} else {
			codecRate = crate
		}
	}

	aggRound := make([]float64, n)    // slowest partition's aggregation per round
	flushStream := make([]float64, n) // slowest single aggregator stream per round
	flushBytes := make([]int64, n)    // system-wide payload per round
	for pi := range est.Parts {
		pe := &est.Parts[pi]
		if pe.Bytes == 0 || pe.Rounds == 0 {
			continue
		}
		members := make([]cost.Member, pe.Ranks)
		for i := range members {
			members[i] = cost.Member{Node: pr.nodes[pe.FirstRank+i], Bytes: pe.MemberBytes[i]}
		}
		win := cfg.Placement.Elect(&cost.Election{
			Model:     pr.model,
			Members:   members,
			IOBytes:   pe.Bytes,
			Partition: pi,
		})
		fence := 2 * math.Log2(float64(pe.Ranks)+1) * pr.alpha()
		aggSecs, interior := pr.aggregationSeconds(cfg, members, win, pe.Rounds)
		perRound := aggSecs/float64(pe.Rounds) + fence*float64(1+interior)
		for r := 0; r < pe.Rounds; r++ {
			if perRound > aggRound[r] {
				aggRound[r] = perRound
			}
			fb, fruns := pe.FlushBytes[r], pe.FlushRuns[r]
			var codecSecs float64
			if cfg.Codec != nil && fb > 0 {
				codecSecs = float64(fb) / codecRate
				fb, fruns = dataplane.ModeledSize(cfg.Codec, fb), 1
			}
			if fs := codecSecs + pr.flushSeconds(fopt, fb, fruns, members[win].Node); fs > flushStream[r] {
				flushStream[r] = fs
			}
			flushBytes[r] += fb
		}
	}

	// Concurrent streams cannot beat the system ceiling: a round's flush wall
	// time is the slower of its slowest stream and the saturated rate.
	aggBW := math.Inf(1)
	if pr.fm != nil {
		aggBW = pr.fm.AggregateBandwidth(fopt, pr.read)
	}
	flushRound := make([]float64, n)
	for r := range flushRound {
		flushRound[r] = flushStream[r]
		if lim := float64(flushBytes[r]) / aggBW; lim > flushRound[r] {
			flushRound[r] = lim
		}
	}

	// Init: the plan collective and election, then the pipeline.
	init := 4 * math.Log2(float64(len(pr.all))+1) * pr.alpha()
	if cfg.ElectionOverhead > 0 {
		init += sim.ToSeconds(cfg.ElectionOverhead)
	}
	double, single = init, init
	double += aggRound[0]
	for r := 1; r < n; r++ {
		double += math.Max(aggRound[r], flushRound[r-1])
	}
	double += flushRound[n-1]
	for r := 0; r < n; r++ {
		single += aggRound[r] + flushRound[r]
	}
	return double, single
}
