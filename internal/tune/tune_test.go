package tune

import (
	"testing"

	"tapioca/internal/core"
	"tapioca/internal/dataplane"
	"tapioca/internal/mpi"
	"tapioca/internal/netsim"
	"tapioca/internal/sim"
	"tapioca/internal/storage"
	"tapioca/internal/topology"
	"tapioca/internal/workload"
)

// measureTheta runs one real collective phase of w on a fresh Theta-like
// rig and returns the timed seconds — the ground truth predictions are
// judged against.
func measureTheta(nodes, rpn, osts int, cfg core.Config, fopt storage.FileOptions, w workload.Pattern) float64 {
	topo := topology.ThetaDragonfly(nodes, topology.RouteMinimal)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
	sys := storage.NewLustre(topo, fab, storage.LustreConfig{NumOST: osts})
	var t0, t1 int64
	_, err := mpi.Run(mpi.Config{Ranks: w.Ranks, RanksPerNode: rpn, Fabric: fab}, func(c *mpi.Comm) {
		var f *storage.File
		if c.Rank() == 0 {
			f = sys.Create("f", fopt)
		}
		f = c.Bcast(0, 32, f).(*storage.File)
		decl := w.Declared(c.Rank(), c.Size())
		wr := core.New(c, sys, f, cfg)
		c.Barrier()
		if c.Rank() == 0 {
			t0 = c.Now()
		}
		wr.Init(decl)
		if w.Read {
			wr.ReadAll()
		} else {
			wr.WriteAll()
		}
		c.Barrier()
		if c.Rank() == 0 {
			t1 = c.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	return sim.ToSeconds(t1 - t0)
}

// thetaPlatform builds the tuner's view of the same rig, with a probe hook
// running real truncated simulations.
func thetaPlatform(nodes, rpn, osts int) Platform {
	topo := topology.ThetaDragonfly(nodes, topology.RouteMinimal)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
	sys := storage.NewLustre(topo, fab, storage.LustreConfig{NumOST: osts})
	return Platform{
		Topo:         topo,
		Dist:         fab.Distances(),
		Sys:          sys,
		RanksPerNode: rpn,
		Probe: func(cfg core.Config, fopt storage.FileOptions, w workload.Pattern) float64 {
			return measureTheta(nodes, rpn, osts, cfg, fopt, w)
		},
	}
}

func TestAutotuneDeterministic(t *testing.T) {
	p := thetaPlatform(32, 4, 8)
	w := workload.IOR(128, 1<<19)
	a := Autotune(p, w, Options{})
	b := Autotune(p, w, Options{})
	if a.Config != b.Config || a.FileOptions != b.FileOptions || a.Predicted != b.Predicted {
		t.Fatalf("non-deterministic pick: %+v vs %+v", a, b)
	}
	if a.Evaluated == 0 || len(a.Candidates) != a.Evaluated {
		t.Fatalf("candidate accounting: evaluated %d, listed %d", a.Evaluated, len(a.Candidates))
	}
	for i := 1; i < len(a.Candidates); i++ {
		if a.Candidates[i].Corrected < a.Candidates[i-1].Corrected {
			t.Fatalf("candidates not ranked at %d", i)
		}
	}
}

func TestAutotunePicksSaneConfig(t *testing.T) {
	p := thetaPlatform(32, 4, 8)
	w := workload.IOR(128, 1<<19)
	res := Autotune(p, w, Options{})
	cfg := res.Config
	if cfg.Aggregators < 1 || cfg.Aggregators > w.Ranks {
		t.Fatalf("aggregators = %d", cfg.Aggregators)
	}
	if cfg.BufferSize < 1<<20 {
		t.Fatalf("buffer = %d", cfg.BufferSize)
	}
	if cfg.SingleBuffer {
		t.Fatal("picked the single-buffer ablation over the pipeline")
	}
	if res.FileOptions.StripeSize != cfg.BufferSize {
		t.Fatalf("stripe %d not matched 1:1 to buffer %d (Table I)", res.FileOptions.StripeSize, cfg.BufferSize)
	}
	if res.Hints.CBNodes != cfg.Aggregators || res.Hints.CBBufferSize != cfg.BufferSize {
		t.Fatalf("hints %+v do not mirror config %+v", res.Hints, cfg)
	}
	if res.Predicted <= 0 {
		t.Fatalf("predicted = %v", res.Predicted)
	}
}

// TestAutotuneBeatsDefaults is the tuner's reason to exist: the measured
// time of the tuned configuration must not exceed the measured time of the
// library defaults (default Config and platform-default striping).
func TestAutotuneBeatsDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison")
	}
	const nodes, rpn, osts = 64, 4, 8
	w := workload.IOR(nodes*rpn, 1<<20)
	res := Autotune(thetaPlatform(nodes, rpn, osts), w, Options{})
	tuned := measureTheta(nodes, rpn, osts, res.Config, res.FileOptions, w)
	def := measureTheta(nodes, rpn, osts, core.Config{}, storage.FileOptions{}, w)
	if tuned > def {
		t.Fatalf("tuned %.4fs slower than defaults %.4fs (picked %+v / %+v)",
			tuned, def, res.Config, res.FileOptions)
	}
}

// TestAutotuneWithinSweep holds the tuner to the acceptance bar: over an
// explicit grid, the tuned configuration's measured time must be within 10%
// of the best configuration an exhaustive simulated sweep of the same space
// finds.
func TestAutotuneWithinSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	const nodes, rpn, osts = 64, 4, 8
	w := workload.IOR(nodes*rpn, 1<<20)
	opt := Options{
		Aggregators: []int{8, 16, 32, 64},
		BufferSizes: []int64{2 << 20, 4 << 20, 8 << 20},
		NoRefine:    true,
	}
	p := thetaPlatform(nodes, rpn, osts)
	res := Autotune(p, w, opt)

	advisor := storage.StripeAdvisorOf(p.Sys)
	best := -1.0
	for _, a := range opt.Aggregators {
		for _, b := range opt.BufferSizes {
			fopt := advisor.RecommendStripe(w.TotalBytes(), b, a)
			sec := measureTheta(nodes, rpn, osts, core.Config{Aggregators: a, BufferSize: b}, fopt, w)
			if best < 0 || sec < best {
				best = sec
			}
		}
	}
	tuned := measureTheta(nodes, rpn, osts, res.Config, res.FileOptions, w)
	if tuned > 1.10*best {
		t.Fatalf("tuned %.4fs not within 10%% of sweep best %.4fs (picked %+v)", tuned, best, res.Config)
	}
}

// TestClosedLoopProbes checks the probe mode: it must run, stay
// deterministic, and record a calibration ratio for the winner.
func TestClosedLoopProbes(t *testing.T) {
	if testing.Short() {
		t.Skip("probe simulations")
	}
	p := thetaPlatform(32, 4, 8)
	w := workload.IOR(128, 1<<20)
	a := Autotune(p, w, Options{Probes: 3})
	b := Autotune(p, w, Options{Probes: 3})
	if a.Config != b.Config || a.Predicted != b.Predicted {
		t.Fatalf("closed loop non-deterministic: %+v vs %+v", a.Config, b.Config)
	}
	if a.Calibration <= 0 {
		t.Fatalf("calibration = %v", a.Calibration)
	}
	probed := 0
	for _, c := range a.Candidates {
		if c.Probed > 0 {
			probed++
		}
	}
	if probed == 0 {
		t.Fatal("no candidate was probed")
	}
}

// TestReadTuning exercises the read path end to end: a read workload tunes
// and its configuration completes a measured read phase.
func TestReadTuning(t *testing.T) {
	p := thetaPlatform(32, 4, 8)
	w := workload.IOR(128, 1<<19)
	w.Read = true
	res := Autotune(p, w, Options{})
	if res.Predicted <= 0 {
		t.Fatalf("predicted = %v", res.Predicted)
	}
	if testing.Short() {
		return
	}
	if sec := measureTheta(32, 4, 8, res.Config, res.FileOptions, w); sec <= 0 {
		t.Fatalf("measured read = %v", sec)
	}
}

// nullPlatform is a rig whose storage is (nearly) free: NullFS charges a
// fixed per-op latency and no per-byte cost.
func nullPlatform(nodes, rpn int) Platform {
	topo := topology.NewFlat(nodes)
	fab := netsim.New(topo, netsim.Config{Contention: netsim.ContentionLinks})
	return Platform{Topo: topo, Dist: fab.Distances(), Sys: storage.NewNullFS(), RanksPerNode: rpn}
}

// TestCodecDimension pins the reduction stage's place in the search: opt-in
// only, picked when flush bandwidth is the bottleneck, and rejected when
// storage is free and compression is pure compute overhead.
func TestCodecDimension(t *testing.T) {
	w := workload.IOR(128, 1<<19)
	codecs := []dataplane.Codec{nil, dataplane.LZ}

	// The codec dimension is strictly opt-in: a default search never
	// considers (or picks) a codec.
	if def := Autotune(thetaPlatform(32, 4, 8), w, Options{}); def.Config.Codec != nil {
		t.Fatalf("default search picked codec %q", def.Config.Codec.Name())
	}

	// One starved OST: every aggregator shares a 0.42 GB/s ceiling, so
	// halving the flushed bytes buys far more than the modeled compression
	// compute costs.
	slow := Autotune(thetaPlatform(32, 4, 1), w, Options{Codecs: codecs})
	if slow.Config.Codec == nil {
		t.Fatal("bandwidth-starved storage: expected the reduction stage to win")
	}

	// Free storage: a codec only adds compute to the critical path.
	fast := Autotune(nullPlatform(32, 4), w, Options{Codecs: codecs})
	if fast.Config.Codec != nil {
		t.Fatalf("free storage: codec %q picked over none", fast.Config.Codec.Name())
	}

	// Both variants of every grid point were scored: the codec grid doubles
	// the candidate count relative to a codec-free search of the same space.
	base := Autotune(thetaPlatform(32, 4, 1), w, Options{NoRefine: true})
	both := Autotune(thetaPlatform(32, 4, 1), w, Options{NoRefine: true, Codecs: codecs})
	if both.Evaluated != 2*base.Evaluated {
		t.Fatalf("codec grid scored %d candidates, want %d", both.Evaluated, 2*base.Evaluated)
	}
}

func TestTruncatePattern(t *testing.T) {
	w := workload.HACC(8, 10_000, workload.AoS)
	full := w.TotalBytes()
	tr := w.Truncate(1 << 10)
	got := tr.TotalBytes()
	if got >= full || got == 0 {
		t.Fatalf("truncated bytes = %d of %d", got, full)
	}
	// Truncation keeps at least one run per budget-exhausted rank and never
	// grows a segment.
	if got > 8*(2<<10) {
		t.Fatalf("truncation overshot: %d", got)
	}
}

func TestRefinementStaysInsideGrid(t *testing.T) {
	// A best point at the top of the grid must refine inward only: the
	// search never proposes aggregator counts outside the supplied space.
	for _, v := range neighborInts(16, []int{8, 16}) {
		if v < 8 || v > 16 {
			t.Fatalf("refinement proposed %d outside grid [8,16]", v)
		}
	}
	for _, v := range neighborInts(8, []int{8, 16}) {
		if v < 8 || v > 16 {
			t.Fatalf("refinement proposed %d outside grid [8,16]", v)
		}
	}
	if got := neighborInts(8, []int{8}); len(got) != 0 {
		t.Fatalf("single-point grid proposed %v", got)
	}
}

func TestDefaultAggregatorGrid(t *testing.T) {
	grid := defaultAggregators(2048, nil, 1<<31)
	if len(grid) == 0 {
		t.Fatal("empty grid")
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Fatalf("grid not strictly ascending: %v", grid)
		}
	}
	for _, a := range grid {
		if a < 1 || a > 2048 {
			t.Fatalf("out-of-range aggregator count %d", a)
		}
	}
}

// TestTreeSearchDimension covers the aggregation-tree dimension end to end:
// off by default (no candidate carries a shape), deterministic when on, and
// decisive under a heavy per-message penalty — a modeled lossy fabric must
// hand the pick to a multi-level shape, and the winner's shape must flow into
// the baseline hints as a TreePlan.
func TestTreeSearchDimension(t *testing.T) {
	p := thetaPlatform(64, 4, 8)
	p.Probe = nil
	w := workload.IOR(256, 1<<19)
	grid := Options{Aggregators: []int{4}, BufferSizes: []int64{4 << 20}, NoRefine: true}

	off := Autotune(p, w, grid)
	for _, c := range off.Candidates {
		if c.Config.Tree != nil {
			t.Fatalf("TreeSearch off, yet candidate %+v carries a tree shape", c.Config)
		}
	}
	if off.Hints.TreePlan != "" {
		t.Fatalf("TreeSearch off, yet hints carry tree plan %q", off.Hints.TreePlan)
	}

	on := grid
	on.TreeSearch = true
	on.MessagePenalty = 2e-4 // ~loss rate × retransmit penalty of a sick fabric
	a := Autotune(p, w, on)
	b := Autotune(p, w, on)
	// Config holds the shape by pointer; compare values, then the rest.
	if treeName(a.Config.Tree) != treeName(b.Config.Tree) || a.Predicted != b.Predicted {
		t.Fatalf("tree search non-deterministic: %+v vs %+v", a.Config, b.Config)
	}
	ac, bc := a.Config, b.Config
	ac.Tree, bc.Tree = nil, nil
	if ac != bc {
		t.Fatalf("tree search non-deterministic: %+v vs %+v", a.Config, b.Config)
	}
	var treed int
	for _, c := range a.Candidates {
		if c.Config.Tree != nil {
			treed++
			if c.Config.Tree.Degenerate() {
				t.Fatalf("degenerate shape %s emitted as a tree candidate", c.Config.Tree)
			}
		}
	}
	if treed == 0 {
		t.Fatal("TreeSearch on emitted no tree-shaped candidates")
	}
	if a.Config.Tree == nil {
		t.Fatalf("a %.0fµs-per-message fabric still picked the plain pipeline (%+v)",
			on.MessagePenalty*1e6, a.Config)
	}
	if want := a.Config.Tree.String(); a.Hints.TreePlan != want {
		t.Fatalf("winner shape %q not mirrored into hints (got %q)", want, a.Hints.TreePlan)
	}

	// Penalty-free tree search still ranks shapes (with the control-plane α)
	// but must never beat flat on a clean fabric by the model's own terms.
	clean := grid
	clean.TreeSearch = true
	res := Autotune(p, w, clean)
	if res.Config.Tree != nil && res.Candidates[0].Corrected == res.Candidates[1].Corrected {
		t.Fatalf("tie broken toward a tree: %+v", res.Config)
	}
}
