// Package fault is the deterministic fault plane: a seed-driven schedule of
// component failures injected beneath the simulation layers (netsim link
// degradation and loss, storage transients and latency spikes, tier outages,
// payload bit flips, aggregator deaths), plus the recovery knobs — retry
// policies, failover, degraded-mode writes, verify-and-repair — that let the
// layers above absorb them.
//
// Every decision is a pure function of (seed, injection site, site-local
// ordinals): the same seed replays the same faults byte for byte, serial or
// parallel, so recovery paths are testable as equivalence properties rather
// than probabilistically. The package depends on nothing above the standard
// library so every layer (netsim, storage, core, mpiio, expt) can import it.
package fault

import (
	"errors"
	"math"
)

// Sentinel errors surfaced by fallible storage wrappers and the recovery
// machinery. Match with errors.Is.
var (
	// ErrTransient is a retryable failure: the op did not happen, but an
	// immediate or backed-off retry may succeed.
	ErrTransient = errors.New("fault: transient I/O failure")
	// ErrTierDown is a persistent tier outage: retries against the same
	// tier cannot succeed; callers must degrade to a fallback tier or
	// absorb the loss.
	ErrTierDown = errors.New("fault: storage tier down")
	// ErrAggregatorDead marks an aggregator whose role was revoked by the
	// fault plan while recovery (failover) is disabled.
	ErrAggregatorDead = errors.New("fault: aggregator dead")
)

// Registry metric names. The "fault." prefix counts injected faults, the
// "recovery." prefix counts recovery actions; tapiocabench surfaces each
// prefix as its own block in -json output.
const (
	MetricStoreTransients = "fault.store_transients"
	MetricSlowSpikes      = "fault.slow_spikes"
	MetricNetRetransmits  = "fault.net_retransmits"
	MetricDegradedLinks   = "fault.degraded_transfers"
	MetricStragglerHits   = "fault.straggler_transfers"
	MetricCorruptions     = "fault.corruptions"
	MetricAggrDeaths      = "fault.aggr_deaths"
	MetricTierDown        = "fault.tier_down_detected"
	MetricLostFlushes     = "fault.lost_flushes"

	MetricRetries         = "recovery.retries"
	MetricBackoffNs       = "recovery.backoff_ns"
	MetricFailovers       = "recovery.failovers"
	MetricReplayedRounds  = "recovery.replayed_rounds"
	MetricDegradedRounds  = "recovery.degraded_rounds"
	MetricRepairedExtents = "recovery.repaired_extents"
)

// Config is the fault schedule. Rates are per-decision probabilities in
// [0, 1]; a zero Config injects nothing. Zero-valued tuning fields
// (penalties, factors) take the defaults documented on each.
type Config struct {
	Seed uint64

	// Storage plane.
	StoreFailRate float64 // transient failure per store op
	StoreSlowRate float64 // latency spike per store op
	SlowPenalty   int64   // base spike latency, ns (default 2ms; spikes are 1-4x)
	TierDownAfter int64   // >0: the wrapped tier fails permanently at this virtual time (ns)

	// Network plane.
	NetLossRate       float64 // transient loss per transfer (retransmit)
	LinkDegradeRate   float64 // per (src,dst,window) degraded-bandwidth windows
	StragglerRate     float64 // fraction of nodes that are stragglers
	StragglerFactor   float64 // straggler service-time multiplier (default 4)
	DegradeFactor     float64 // degraded-window duration multiplier (default 3)
	RetransmitPenalty int64   // fixed retransmit timeout, ns (default 50µs)

	// Data/control plane.
	CorruptRate   float64 // bit-flip per flushed round
	AggrDeathRate float64 // aggregator death per partition
}

// Profile is the standard chaos profile used by `tapiocabench -faults` and
// the abl-faults experiment: one knob scales every fault class, with the
// rarer classes (stragglers, corruption) derated so moderate rates keep a
// run recognizable.
func Profile(seed uint64, rate float64) Config {
	return Config{
		Seed:            seed,
		StoreFailRate:   rate,
		StoreSlowRate:   rate / 2,
		NetLossRate:     rate / 2,
		LinkDegradeRate: rate / 2,
		StragglerRate:   rate / 4,
		CorruptRate:     rate / 2,
		AggrDeathRate:   rate,
	}
}

// Enabled reports whether the schedule can inject anything at all.
func (c Config) Enabled() bool {
	return c.StoreFailRate > 0 || c.StoreSlowRate > 0 || c.TierDownAfter > 0 ||
		c.NetLossRate > 0 || c.LinkDegradeRate > 0 || c.StragglerRate > 0 ||
		c.CorruptRate > 0 || c.AggrDeathRate > 0
}

// Injection-site salts: decisions at different sites with the same ordinals
// must not correlate.
const (
	siteStoreFail uint64 = iota + 1
	siteStoreSlow
	siteSlowAmount
	siteNetLoss
	siteLinkDegrade
	siteStraggler
	siteCorrupt
	siteCorruptOff
	siteAggrDeath
	siteDeathRound
)

// Plan is an instantiated fault schedule. All decision methods are pure
// except TakeCorruption, which consumes its (partition, round) key so a
// failover replay of a round does not re-corrupt it; call TakeCorruption
// only from proc context (the engine serializes procs, so the consumed set
// needs no lock). A nil *Plan is valid and injects nothing.
type Plan struct {
	cfg   Config
	taken map[uint64]bool
}

// NewPlan instantiates cfg, filling zero-valued tuning fields with defaults.
func NewPlan(cfg Config) *Plan {
	if cfg.SlowPenalty == 0 {
		cfg.SlowPenalty = 2_000_000 // 2ms
	}
	if cfg.StragglerFactor == 0 {
		cfg.StragglerFactor = 4
	}
	if cfg.DegradeFactor == 0 {
		cfg.DegradeFactor = 3
	}
	if cfg.RetransmitPenalty == 0 {
		cfg.RetransmitPenalty = 50_000 // 50µs
	}
	return &Plan{cfg: cfg, taken: make(map[uint64]bool)}
}

// Config returns the (default-filled) schedule the plan was built from.
func (pl *Plan) Config() Config {
	if pl == nil {
		return Config{}
	}
	return pl.cfg
}

func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// hash is a splitmix64-style combine of (seed, site, ordinals).
func (pl *Plan) hash(site uint64, vals ...uint64) uint64 {
	h := mix(pl.cfg.Seed ^ site*0x9E3779B97F4A7C15)
	for _, v := range vals {
		h = mix(h ^ v*0x9E3779B97F4A7C15)
	}
	return h
}

func (pl *Plan) roll(rate float64, site uint64, vals ...uint64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return float64(pl.hash(site, vals...)) < rate*float64(math.MaxUint64)
}

// StoreOutcome classifies one storage op under the schedule.
type StoreOutcome int

const (
	StoreOK        StoreOutcome = iota
	StoreTransient              // op failed; retryable
	StoreSlow                   // op succeeds after a latency spike
)

// Store decides the fate of store op number op against the given tier.
func (pl *Plan) Store(tier uint64, op int64) StoreOutcome {
	if pl == nil {
		return StoreOK
	}
	if pl.roll(pl.cfg.StoreFailRate, siteStoreFail, tier, uint64(op)) {
		return StoreTransient
	}
	if pl.roll(pl.cfg.StoreSlowRate, siteStoreSlow, tier, uint64(op)) {
		return StoreSlow
	}
	return StoreOK
}

// SlowPenalty is the extra latency (ns) of a StoreSlow spike: 1-4x the
// configured base, deterministic per op.
func (pl *Plan) SlowPenalty(tier uint64, op int64) int64 {
	if pl == nil {
		return 0
	}
	return pl.cfg.SlowPenalty * int64(1+pl.hash(siteSlowAmount, tier, uint64(op))%4)
}

// TierDown reports whether the wrapped tier is past its scheduled outage.
func (pl *Plan) TierDown(now int64) bool {
	return pl != nil && pl.cfg.TierDownAfter > 0 && now >= pl.cfg.TierDownAfter
}

// Straggler reports whether a node is a straggler (stable for the whole run).
func (pl *Plan) Straggler(node int) bool {
	if pl == nil {
		return false
	}
	return pl.roll(pl.cfg.StragglerRate, siteStraggler, uint64(node))
}

// NetEffect reports which network faults hit one transfer.
type NetEffect struct {
	Straggler bool
	Degraded  bool
	Loss      bool
}

// Any reports whether any fault applied.
func (e NetEffect) Any() bool { return e.Straggler || e.Degraded || e.Loss }

// degradeWindow is the granularity of per-link degradation windows: a
// (src, dst) pair is degraded or healthy per 100ms slice of virtual time.
const degradeWindow = 100_000_000

// Transfer applies network faults to one point-to-point transfer of
// duration dur starting at start, keyed by the fabric's transfer ordinal.
// Straggler endpoints multiply service time, degraded link windows stretch
// it further, and a transient loss doubles it plus a retransmit timeout.
func (pl *Plan) Transfer(src, dst int, start, dur, transfer int64) (int64, NetEffect) {
	var e NetEffect
	if pl == nil {
		return dur, e
	}
	if pl.Straggler(src) || pl.Straggler(dst) {
		dur = int64(float64(dur) * pl.cfg.StragglerFactor)
		e.Straggler = true
	}
	if pl.roll(pl.cfg.LinkDegradeRate, siteLinkDegrade, uint64(src), uint64(dst), uint64(start/degradeWindow)) {
		dur = int64(float64(dur) * pl.cfg.DegradeFactor)
		e.Degraded = true
	}
	if pl.roll(pl.cfg.NetLossRate, siteNetLoss, uint64(transfer)) {
		dur = 2*dur + pl.cfg.RetransmitPenalty
		e.Loss = true
	}
	return dur, e
}

// AggregatorDeath returns the pipeline round at whose start the partition's
// aggregator is declared dead, or -1 for no death. Deaths land in
// [1, rounds) so at least one round runs under the original aggregator and
// there is always a predecessor round eligible for replay.
func (pl *Plan) AggregatorDeath(part, rounds int) int {
	if pl == nil || rounds < 2 {
		return -1
	}
	if !pl.roll(pl.cfg.AggrDeathRate, siteAggrDeath, uint64(part)) {
		return -1
	}
	return 1 + int(pl.hash(siteDeathRound, uint64(part))%uint64(rounds-1))
}

// TakeCorruption reports whether the flush of (part, round) suffers a bit
// flip, returning the deterministic byte index in [0, bytes) to damage.
// Each (part, round) key is consumed at most once, so a failover replay of
// the round rewrites clean bytes instead of re-flipping them. Proc context
// only: the engine's serialization is the lock.
func (pl *Plan) TakeCorruption(part, round int, bytes int64) (int64, bool) {
	if pl == nil || bytes <= 0 || pl.cfg.CorruptRate <= 0 {
		return 0, false
	}
	key := pl.hash(siteCorrupt, uint64(part), uint64(round))
	if pl.taken[key] {
		return 0, false
	}
	if float64(key) >= pl.cfg.CorruptRate*float64(math.MaxUint64) {
		return 0, false
	}
	pl.taken[key] = true
	return int64(pl.hash(siteCorruptOff, uint64(part), uint64(round)) % uint64(bytes)), true
}

// TierID names a storage tier for per-tier fault keying.
func TierID(name string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	return h
}

// RetryPolicy bounds the retry loop for transient store failures. Backoff
// is charged as virtual-time Hold, so it is deterministic and shows up in
// traces. The zero value means "use defaults" (4 attempts, 200µs base,
// 2x growth, 10ms cap, 100ms total budget).
type RetryPolicy struct {
	MaxAttempts int     // retries after the first try
	Base        int64   // first backoff, ns
	Factor      float64 // growth per attempt
	Cap         int64   // per-backoff cap, ns
	Budget      int64   // total backoff budget, ns
}

// WithDefaults fills zero fields with the documented defaults.
func (rp RetryPolicy) WithDefaults() RetryPolicy {
	if rp.MaxAttempts == 0 {
		rp.MaxAttempts = 4
	}
	if rp.Base == 0 {
		rp.Base = 200_000 // 200µs
	}
	if rp.Factor == 0 {
		rp.Factor = 2
	}
	if rp.Cap == 0 {
		rp.Cap = 10_000_000 // 10ms
	}
	if rp.Budget == 0 {
		rp.Budget = 100_000_000 // 100ms
	}
	return rp
}

// Backoff is the deterministic virtual-time backoff before retry number
// attempt (0-based): Base * Factor^attempt, capped at Cap.
func (rp RetryPolicy) Backoff(attempt int) int64 {
	d := float64(rp.Base) * math.Pow(rp.Factor, float64(attempt))
	if d >= float64(rp.Cap) {
		return rp.Cap
	}
	return int64(d)
}

// Recovery selects which self-healing mechanisms are armed. A nil *Recovery
// means faults are injected but nothing recovers (losses are counted, dead
// aggregators stay dead).
type Recovery struct {
	Retry         RetryPolicy            // default policy for transient store errors
	PerTier       map[string]RetryPolicy // per-tier overrides, keyed by System.Name()
	Failover      bool                   // re-elect + replay on aggregator death
	Degraded      bool                   // fall back to the backing tier on ErrTierDown
	Repair        bool                   // targeted re-read/re-write of corrupt extents
	DetectLatency int64                  // failure-detection cost charged on failover, ns (default 250µs)
}

// DefaultRecovery arms everything with default tuning.
func DefaultRecovery() *Recovery {
	return &Recovery{Failover: true, Degraded: true, Repair: true}
}

// PolicyFor resolves the retry policy for a tier, falling back to the
// default policy. Safe on nil (returns the all-defaults policy).
func (r *Recovery) PolicyFor(tier string) RetryPolicy {
	if r != nil {
		if p, ok := r.PerTier[tier]; ok {
			return p.WithDefaults()
		}
		return r.Retry.WithDefaults()
	}
	return RetryPolicy{}.WithDefaults()
}

// DetectCost is the virtual time charged to detect an aggregator failure.
func (r *Recovery) DetectCost() int64 {
	if r != nil && r.DetectLatency > 0 {
		return r.DetectLatency
	}
	return 250_000 // 250µs
}
