package fault

import (
	"math"
	"testing"
)

// Same seed must reproduce every decision; different seeds must not be
// correlated copies of each other.
func TestPlanDeterminism(t *testing.T) {
	cfg := Profile(20170905, 0.2)
	a, b := NewPlan(cfg), NewPlan(cfg)
	other := NewPlan(Profile(7, 0.2))
	sameStore, sameNet, diff := 0, 0, 0
	for op := int64(0); op < 2000; op++ {
		if a.Store(1, op) != b.Store(1, op) {
			t.Fatalf("store decision diverged at op %d", op)
		}
		if a.Store(1, op) != StoreOK {
			sameStore++
		}
		if a.Store(1, op) != other.Store(1, op) {
			diff++
		}
		d1, e1 := a.Transfer(3, 9, op*1000, 5000, op)
		d2, e2 := b.Transfer(3, 9, op*1000, 5000, op)
		if d1 != d2 || e1 != e2 {
			t.Fatalf("transfer decision diverged at %d", op)
		}
		if e1.Any() {
			sameNet++
		}
	}
	if sameStore == 0 || sameNet == 0 {
		t.Fatalf("rate 0.2 produced no faults in 2000 trials (store=%d net=%d)", sameStore, sameNet)
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Observed fault frequency should track the configured rate (loose bounds;
// the hash is not a statistical PRNG but must not be wildly biased).
func TestRateRoughlyHonored(t *testing.T) {
	pl := NewPlan(Config{Seed: 42, StoreFailRate: 0.1})
	hits := 0
	const n = 20000
	for op := int64(0); op < n; op++ {
		if pl.Store(7, op) == StoreTransient {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.1) > 0.02 {
		t.Fatalf("rate 0.1 observed as %.3f", got)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	pl := NewPlan(Config{Seed: 99})
	var nilPlan *Plan
	for op := int64(0); op < 500; op++ {
		if pl.Store(1, op) != StoreOK || nilPlan.Store(1, op) != StoreOK {
			t.Fatal("zero config injected a store fault")
		}
		if d, e := pl.Transfer(0, 1, op, 1000, op); d != 1000 || e.Any() {
			t.Fatal("zero config perturbed a transfer")
		}
	}
	if pl.AggregatorDeath(0, 64) != -1 || nilPlan.AggregatorDeath(0, 64) != -1 {
		t.Fatal("zero config killed an aggregator")
	}
	if _, ok := pl.TakeCorruption(0, 0, 1<<20); ok {
		t.Fatal("zero config corrupted a round")
	}
	if pl.TierDown(1<<40) || nilPlan.TierDown(1<<40) {
		t.Fatal("zero config took the tier down")
	}
}

func TestAggregatorDeathRoundInRange(t *testing.T) {
	pl := NewPlan(Config{Seed: 5, AggrDeathRate: 1})
	for part := 0; part < 64; part++ {
		for _, rounds := range []int{2, 3, 7, 100} {
			r := pl.AggregatorDeath(part, rounds)
			if r < 1 || r >= rounds {
				t.Fatalf("death round %d outside [1,%d)", r, rounds)
			}
		}
	}
	if pl.AggregatorDeath(0, 1) != -1 {
		t.Fatal("single-round run cannot host a death")
	}
}

// A corruption key must be consumed exactly once: a failover replay of the
// same round must not re-flip it.
func TestTakeCorruptionConsumed(t *testing.T) {
	pl := NewPlan(Config{Seed: 11, CorruptRate: 1})
	off, ok := pl.TakeCorruption(3, 2, 4096)
	if !ok || off < 0 || off >= 4096 {
		t.Fatalf("expected corruption in range, got off=%d ok=%v", off, ok)
	}
	if _, ok := pl.TakeCorruption(3, 2, 4096); ok {
		t.Fatal("corruption key consumed twice")
	}
	if _, ok := pl.TakeCorruption(3, 3, 4096); !ok {
		t.Fatal("consuming one round consumed its neighbor")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	rp := RetryPolicy{}.WithDefaults()
	prev := int64(0)
	for i := 0; i < 10; i++ {
		d := rp.Backoff(i)
		if d < prev {
			t.Fatalf("backoff shrank at attempt %d: %d < %d", i, d, prev)
		}
		if d > rp.Cap {
			t.Fatalf("backoff %d exceeds cap %d", d, rp.Cap)
		}
		prev = d
	}
	if rp.Backoff(0) != rp.Base {
		t.Fatalf("first backoff %d != base %d", rp.Backoff(0), rp.Base)
	}
	if rp.Backoff(9) != rp.Cap {
		t.Fatal("backoff never reached cap")
	}
}

func TestRecoveryPolicyFor(t *testing.T) {
	r := &Recovery{PerTier: map[string]RetryPolicy{"lustre": {MaxAttempts: 9}}}
	if got := r.PolicyFor("lustre").MaxAttempts; got != 9 {
		t.Fatalf("per-tier override ignored: %d", got)
	}
	if got := r.PolicyFor("gpfs").MaxAttempts; got != 4 {
		t.Fatalf("default policy wrong: %d", got)
	}
	var nilRec *Recovery
	if got := nilRec.PolicyFor("x").MaxAttempts; got != 4 {
		t.Fatalf("nil recovery policy wrong: %d", got)
	}
	if nilRec.DetectCost() <= 0 {
		t.Fatal("nil recovery detect cost must be positive")
	}
}

func TestProfileScalesWithRate(t *testing.T) {
	if Profile(1, 0).Enabled() {
		t.Fatal("zero-rate profile must be disabled")
	}
	c := Profile(1, 0.1)
	if !c.Enabled() || c.StoreFailRate != 0.1 || c.AggrDeathRate != 0.1 {
		t.Fatalf("profile shape wrong: %+v", c)
	}
}
