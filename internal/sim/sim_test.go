package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestSingleProcHold(t *testing.T) {
	e := NewEngine()
	var end int64
	e.Spawn("a", func(p *Proc) {
		p.Hold(100)
		p.Hold(50)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 150 {
		t.Fatalf("end = %d, want 150", end)
	}
	if e.Now() != 150 {
		t.Fatalf("engine clock = %d, want 150", e.Now())
	}
}

func TestHoldUntilPastIsNoOp(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Hold(100)
		p.HoldUntil(10) // in the past: clock must not move backwards
		if p.Now() != 100 {
			t.Errorf("Now = %d, want 100", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeHoldPanicsProc(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) { p.Hold(-1) })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "negative duration") {
		t.Fatalf("err = %v, want negative-duration panic", err)
	}
}

func TestSchedulingOrderIsTimeThenID(t *testing.T) {
	e := NewEngine()
	var order []string
	// Proc 0 runs at t=0 then t=20; proc 1 at t=0 then t=10.
	e.Spawn("p0", func(p *Proc) {
		order = append(order, "p0@0")
		p.Hold(20)
		order = append(order, "p0@20")
	})
	e.Spawn("p1", func(p *Proc) {
		order = append(order, "p1@0")
		p.Hold(10)
		order = append(order, "p1@10")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0@0", "p1@0", "p1@10", "p0@20"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestTieBreakByProcID(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Hold(100) // all procs runnable again at the same time
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("order = %v, want ascending proc ids", order)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine()
	var wakeTime int64
	var sleeper *Proc
	sleeper = e.Spawn("sleeper", func(p *Proc) {
		p.Park("waiting for waker")
		wakeTime = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Hold(500)
		p.Engine().Unpark(sleeper, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeTime != 500 {
		t.Fatalf("wakeTime = %d, want 500", wakeTime)
	}
}

func TestUnparkNeverRewindsClock(t *testing.T) {
	e := NewEngine()
	var wakeTime int64
	var sleeper *Proc
	sleeper = e.Spawn("sleeper", func(p *Proc) {
		p.Hold(1000) // sleeper is already at t=1000 when parked
		p.Park("wait")
		wakeTime = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Hold(2000)
		// Sleeper parked at t=1000 (it has lower id so it runs first at each
		// shared instant); waking it "at" t=2000 moves it forward.
		p.Engine().Unpark(sleeper, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeTime != 2000 {
		t.Fatalf("wakeTime = %d, want 2000", wakeTime)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func(p *Proc) { p.Park("never woken") })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "deadlock") || !strings.Contains(err.Error(), "never woken") {
		t.Fatalf("err = %v, want deadlock diagnostic with park reason", err)
	}
}

func TestDeadlockDrainsOtherProcs(t *testing.T) {
	// A deadlocked run must terminate every proc goroutine, including ones
	// parked on unrelated conditions.
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Spawn(fmt.Sprintf("stuck%d", i), func(p *Proc) { p.Park("forever") })
	}
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
	// Run returned, so drain completed; nothing further to assert beyond
	// not leaking (checked by -race and goroutine count stability in CI).
}

func TestDeadlockListingIsCapped(t *testing.T) {
	// At full scale a deadlock can strand tens of thousands of procs; the
	// diagnostic must list only the first deadlockListMax and summarize the
	// rest instead of building a multi-megabyte string.
	e := NewEngine()
	const procs = 100
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("stuck%d", i), func(p *Proc) { p.Park("forever") })
	}
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "proc 0 (stuck0)") {
		t.Fatalf("missing head of listing: %v", msg)
	}
	want := fmt.Sprintf("and %d more stuck procs", procs-deadlockListMax)
	if !strings.Contains(msg, want) {
		t.Fatalf("listing not capped (%q missing): %v", want, msg)
	}
	if n := strings.Count(msg, "\n"); n > deadlockListMax+1 {
		t.Fatalf("listing has %d lines, want <= %d", n, deadlockListMax+1)
	}
}

func TestInlineTimerResumesOwnProc(t *testing.T) {
	// A proc that parks while the only other run-queue entry is its own
	// completion timer must be resumed inline by its own dispatch (the timer
	// fires in the parking proc's goroutine and unparks it).
	e := NewEngine()
	var woke int64
	e.Spawn("self", func(p *Proc) {
		ev := NewEvent("io")
		CompleteAt(p, ev, p.Now()+42)
		woke = ev.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 42 {
		t.Fatalf("woke at %d, want 42", woke)
	}
	if e.Now() != 42 {
		t.Fatalf("clock = %d, want 42", e.Now())
	}
}

func TestTimersInterleaveWithProcsDeterministically(t *testing.T) {
	// Timers ride the same run queue as procs: a timer armed for time t
	// fires before any proc scheduled strictly later, and waiters resume at
	// the timer's completion time.
	e := NewEngine()
	var order []string
	ev := NewEvent("mid")
	e.Spawn("waiter", func(p *Proc) {
		CompleteAt(p, ev, 50)
		ev.Wait(p)
		order = append(order, fmt.Sprintf("waiter@%d", p.Now()))
	})
	e.Spawn("late", func(p *Proc) {
		p.Hold(100)
		order = append(order, fmt.Sprintf("late@%d", p.Now()))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"waiter@50", "late@100"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestDoubleTimerCompletionIsAnError(t *testing.T) {
	// Two CompleteAt arms on one event: the second inline firing panics
	// ("completed twice"), which must surface as Run's error — never as a
	// process crash — even though timers have no goroutine recover.
	e := NewEngine()
	e.Spawn("armer", func(p *Proc) {
		ev := NewEvent("dup")
		CompleteAt(p, ev, p.Now()+5)
		CompleteAt(p, ev, p.Now()+9)
		p.Hold(100)
	})
	e.Spawn("bystander", func(p *Proc) { p.Hold(200) })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "completed twice") {
		t.Fatalf("err = %v, want completed-twice diagnostic", err)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("ok", func(p *Proc) { p.Hold(10) })
	e.Spawn("boom", func(p *Proc) {
		p.Hold(5)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want propagated panic", err)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine()
	var childTime int64
	e.Spawn("parent", func(p *Proc) {
		p.Hold(300)
		p.Engine().Spawn("child", func(c *Proc) {
			if c.Now() != 300 {
				t.Errorf("child starts at %d, want parent time 300", c.Now())
			}
			c.Hold(7)
			childTime = c.Now()
		})
		p.Hold(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 307 {
		t.Fatalf("childTime = %d, want 307", childTime)
	}
}

func TestEngineClockIsMaxProcTime(t *testing.T) {
	e := NewEngine()
	e.Spawn("fast", func(p *Proc) { p.Hold(10) })
	e.Spawn("slow", func(p *Proc) { p.Hold(9999) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 9999 {
		t.Fatalf("clock = %d, want 9999", e.Now())
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	cases := []float64{0, 1e-9, 0.5, 1, 3.25}
	for _, s := range cases {
		ns := Seconds(s)
		if got := ToSeconds(ns); got != s {
			t.Errorf("ToSeconds(Seconds(%v)) = %v", s, got)
		}
	}
}

func TestTransferTime(t *testing.T) {
	if d := TransferTime(1000, 1000); d != Second {
		t.Errorf("1000B at 1000B/s = %d, want 1s", d)
	}
	if d := TransferTime(0, 1000); d != 0 {
		t.Errorf("0 bytes = %d, want 0", d)
	}
	if d := TransferTime(1000, 0); d != 0 {
		t.Errorf("infinite rate = %d, want 0", d)
	}
	// Rounding is up: a transfer never completes early.
	if d := TransferTime(1, 3); d < Second/3 {
		t.Errorf("1B at 3B/s = %d, want >= %d", d, Second/3)
	}
}
