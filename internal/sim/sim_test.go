package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestSingleProcHold(t *testing.T) {
	e := NewEngine()
	var end int64
	e.Spawn("a", func(p *Proc) {
		p.Hold(100)
		p.Hold(50)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 150 {
		t.Fatalf("end = %d, want 150", end)
	}
	if e.Now() != 150 {
		t.Fatalf("engine clock = %d, want 150", e.Now())
	}
}

func TestHoldUntilPastIsNoOp(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Hold(100)
		p.HoldUntil(10) // in the past: clock must not move backwards
		if p.Now() != 100 {
			t.Errorf("Now = %d, want 100", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeHoldPanicsProc(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) { p.Hold(-1) })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "negative duration") {
		t.Fatalf("err = %v, want negative-duration panic", err)
	}
}

func TestSchedulingOrderIsTimeThenID(t *testing.T) {
	e := NewEngine()
	var order []string
	// Proc 0 runs at t=0 then t=20; proc 1 at t=0 then t=10.
	e.Spawn("p0", func(p *Proc) {
		order = append(order, "p0@0")
		p.Hold(20)
		order = append(order, "p0@20")
	})
	e.Spawn("p1", func(p *Proc) {
		order = append(order, "p1@0")
		p.Hold(10)
		order = append(order, "p1@10")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0@0", "p1@0", "p1@10", "p0@20"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestTieBreakByProcID(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Hold(100) // all procs runnable again at the same time
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("order = %v, want ascending proc ids", order)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine()
	var wakeTime int64
	var sleeper *Proc
	sleeper = e.Spawn("sleeper", func(p *Proc) {
		p.Park("waiting for waker")
		wakeTime = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Hold(500)
		p.Engine().Unpark(sleeper, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeTime != 500 {
		t.Fatalf("wakeTime = %d, want 500", wakeTime)
	}
}

func TestUnparkNeverRewindsClock(t *testing.T) {
	e := NewEngine()
	var wakeTime int64
	var sleeper *Proc
	sleeper = e.Spawn("sleeper", func(p *Proc) {
		p.Hold(1000) // sleeper is already at t=1000 when parked
		p.Park("wait")
		wakeTime = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Hold(2000)
		// Sleeper parked at t=1000 (it has lower id so it runs first at each
		// shared instant); waking it "at" t=2000 moves it forward.
		p.Engine().Unpark(sleeper, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeTime != 2000 {
		t.Fatalf("wakeTime = %d, want 2000", wakeTime)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func(p *Proc) { p.Park("never woken") })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "deadlock") || !strings.Contains(err.Error(), "never woken") {
		t.Fatalf("err = %v, want deadlock diagnostic with park reason", err)
	}
}

func TestDeadlockDrainsOtherProcs(t *testing.T) {
	// A deadlocked run must terminate every proc goroutine, including ones
	// parked on unrelated conditions.
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Spawn(fmt.Sprintf("stuck%d", i), func(p *Proc) { p.Park("forever") })
	}
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
	// Run returned, so drain completed; nothing further to assert beyond
	// not leaking (checked by -race and goroutine count stability in CI).
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("ok", func(p *Proc) { p.Hold(10) })
	e.Spawn("boom", func(p *Proc) {
		p.Hold(5)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want propagated panic", err)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine()
	var childTime int64
	e.Spawn("parent", func(p *Proc) {
		p.Hold(300)
		p.Engine().Spawn("child", func(c *Proc) {
			if c.Now() != 300 {
				t.Errorf("child starts at %d, want parent time 300", c.Now())
			}
			c.Hold(7)
			childTime = c.Now()
		})
		p.Hold(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 307 {
		t.Fatalf("childTime = %d, want 307", childTime)
	}
}

func TestEngineClockIsMaxProcTime(t *testing.T) {
	e := NewEngine()
	e.Spawn("fast", func(p *Proc) { p.Hold(10) })
	e.Spawn("slow", func(p *Proc) { p.Hold(9999) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 9999 {
		t.Fatalf("clock = %d, want 9999", e.Now())
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	cases := []float64{0, 1e-9, 0.5, 1, 3.25}
	for _, s := range cases {
		ns := Seconds(s)
		if got := ToSeconds(ns); got != s {
			t.Errorf("ToSeconds(Seconds(%v)) = %v", s, got)
		}
	}
}

func TestTransferTime(t *testing.T) {
	if d := TransferTime(1000, 1000); d != Second {
		t.Errorf("1000B at 1000B/s = %d, want 1s", d)
	}
	if d := TransferTime(0, 1000); d != 0 {
		t.Errorf("0 bytes = %d, want 0", d)
	}
	if d := TransferTime(1000, 0); d != 0 {
		t.Errorf("infinite rate = %d, want 0", d)
	}
	// Rounding is up: a transfer never completes early.
	if d := TransferTime(1, 3); d < Second/3 {
		t.Errorf("1B at 3B/s = %d, want >= %d", d, Second/3)
	}
}
