package sim

import "fmt"

// Resource models a rate-limited, FIFO-serialized device: a network link, a
// NIC port, a disk server, an I/O-node uplink. Reservations are pure
// virtual-time bookkeeping: the caller decides whether (and how long) to
// block on the returned times. Because the engine runs procs in
// non-decreasing virtual-time order, reservations are made in request-time
// order, which yields FIFO service.
type Resource struct {
	name     string
	rate     float64 // bytes per second; <=0 means infinite
	nextFree int64

	busy     int64 // total busy nanoseconds, for utilization accounting
	reserved int64 // total bytes served
}

// NewResource returns a resource serving data at rate bytes/second.
// A non-positive rate creates an infinitely fast resource (zero service
// time, no queueing).
func NewResource(name string, rate float64) *Resource {
	return &Resource{name: name, rate: rate}
}

// Name returns the diagnostic name of the resource.
func (r *Resource) Name() string { return r.name }

// Rate returns the service rate in bytes per second (0 = infinite).
func (r *Resource) Rate() float64 {
	if r.rate <= 0 {
		return 0
	}
	return r.rate
}

// NextFree returns the virtual time at which the resource becomes idle.
func (r *Resource) NextFree() int64 { return r.nextFree }

// BusyTime returns the cumulative busy time of the resource.
func (r *Resource) BusyTime() int64 { return r.busy }

// BytesServed returns the cumulative bytes served by the resource.
func (r *Resource) BytesServed() int64 { return r.reserved }

// Reserve books the transfer of bytes starting no earlier than now and
// returns the (start, end) service interval. The resource is busy for
// bytes/rate starting at max(now, nextFree).
func (r *Resource) Reserve(now, bytes int64) (start, end int64) {
	return r.ReserveDur(now, TransferTime(bytes, r.rate), bytes)
}

// ReserveDur books an explicit service duration starting no earlier than
// now. bytes is recorded for accounting only.
func (r *Resource) ReserveDur(now, dur, bytes int64) (start, end int64) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: Reserve with negative duration %d on %s", dur, r.name))
	}
	start = now
	if r.nextFree > start {
		start = r.nextFree
	}
	end = start + dur
	r.nextFree = end
	r.busy += dur
	r.reserved += bytes
	return start, end
}

// Peek returns the hypothetical (start, end) interval for a reservation of
// bytes at time now, without booking it.
func (r *Resource) Peek(now, bytes int64) (start, end int64) {
	start = now
	if r.nextFree > start {
		start = r.nextFree
	}
	return start, start + TransferTime(bytes, r.rate)
}

// Use reserves bytes on the resource and blocks the proc until service
// completes. It returns the completion time.
func (r *Resource) Use(p *Proc, bytes int64) int64 {
	_, end := r.Reserve(p.Now(), bytes)
	p.HoldUntil(end)
	return end
}

// Event is a one-shot completion notification carrying a virtual timestamp,
// in the spirit of a non-blocking I/O request handle. Procs that Wait on an
// incomplete event park until Complete fires; waits after completion just
// advance the clock to the completion time.
type Event struct {
	name    string
	reason  string // lazily built park reason, computed once
	done    bool
	at      int64
	waiters []*Proc
	wbuf    [2]*Proc // inline storage: most events have 0–2 waiters
}

// NewEvent returns an incomplete event.
func NewEvent(name string) *Event {
	return &Event{name: name}
}

// CompletedEvent returns an event that already fired at time at. It is the
// natural "no pending operation" placeholder for pipelined double-buffering.
func CompletedEvent(name string, at int64) *Event {
	return &Event{name: name, done: true, at: at}
}

// Done reports whether the event has fired.
func (ev *Event) Done() bool { return ev.done }

// At returns the completion time; only meaningful once Done.
func (ev *Event) At() int64 { return ev.at }

// Complete fires the event at virtual time at and wakes all waiters.
// Completing an event twice panics. The caller must be the running proc and
// at must be >= its current time (causality).
func (ev *Event) Complete(at int64) {
	if ev.done {
		panic(fmt.Sprintf("sim: event %q completed twice", ev.name))
	}
	ev.done = true
	ev.at = at
	for i, w := range ev.waiters {
		w.eng.Unpark(w, at)
		ev.waiters[i] = nil
	}
	ev.waiters = nil
}

// Wait blocks p until the event completes, then advances p's clock to the
// completion time. It returns the completion time.
func (ev *Event) Wait(p *Proc) int64 {
	if !ev.done {
		if ev.waiters == nil {
			ev.waiters = ev.wbuf[:0]
		}
		ev.waiters = append(ev.waiters, p)
		if ev.reason == "" {
			ev.reason = "waiting for event " + ev.name
		}
		p.Park(ev.reason)
	}
	// Parked procs are woken at the completion time already; the HoldUntil
	// covers the already-done path and is a harmless no-op otherwise.
	p.HoldUntil(ev.at)
	return ev.at
}

// CompleteAt arranges for ev to complete at virtual time t (clamped to the
// caller's current time if in the past). It backs non-blocking operations
// whose completion time is known at issue, such as reservation-based
// asynchronous I/O. The completion rides a recycled engine timer node — no
// helper goroutine is spawned.
func CompleteAt(p *Proc, ev *Event, t int64) {
	if t < p.Now() {
		t = p.Now()
	}
	p.Engine().after(t, ev)
}

// Barrier is a reusable synchronization point for a fixed set of procs: all
// participants block until the last arrives, then all resume at the maximum
// arrival time plus a configurable fan-in/fan-out cost.
type Barrier struct {
	name    string
	reason  string
	size    int
	cost    func(maxArrival int64, n int) int64
	arrived []*Proc
	maxT    int64
}

// NewBarrier creates a barrier for size participants. cost, if non-nil, maps
// the last arrival time and participant count to the release time (e.g. a
// log₂(n) latency tree); nil releases exactly at the last arrival.
func NewBarrier(name string, size int, cost func(maxArrival int64, n int) int64) *Barrier {
	if size <= 0 {
		panic("sim: barrier size must be positive")
	}
	return &Barrier{name: name, reason: "barrier " + name, size: size, cost: cost}
}

// Wait enters the barrier and blocks until all participants have arrived.
// It returns the common release time.
func (b *Barrier) Wait(p *Proc) int64 {
	if p.Now() > b.maxT {
		b.maxT = p.Now()
	}
	if len(b.arrived) == b.size-1 {
		release := b.maxT
		if b.cost != nil {
			release = b.cost(b.maxT, b.size)
			if release < b.maxT {
				release = b.maxT
			}
		}
		waiters := b.arrived
		p.eng.UnparkBatch(waiters, release)
		for i := range waiters {
			waiters[i] = nil
		}
		// Reuse the arrival list's backing for the next round: nobody
		// re-enters Wait before this proc yields in HoldUntil below.
		b.arrived = waiters[:0]
		b.maxT = 0
		p.HoldUntil(release)
		return release
	}
	b.arrived = append(b.arrived, p)
	p.Park(b.reason)
	return p.Now()
}

// Mailbox is a FIFO message queue with virtual-time delivery: messages carry
// an arrival timestamp and a receive only completes once the proc's clock
// reaches it. Matching is delegated to the caller through predicates, which
// is exactly what an MPI matching engine needs (source/tag wildcards).
type Mailbox struct {
	name     string
	reason   string
	messages []Message
	waiters  []*mailWaiter
}

// Message is an entry in a Mailbox.
type Message struct {
	Arrival int64 // virtual arrival time at the receiver
	Key     int64 // caller-defined matching key (e.g. packed source+tag)
	Bytes   int64 // logical size, for accounting
	Payload any   // optional real data for correctness checks
}

// mailWaiter is a parked receiver. Each proc owns one reusable node
// (Proc.mailw): a proc parks while receiving, so it can never need two.
type mailWaiter struct {
	p     *Proc
	match func(Message) bool
	got   Message
	ok    bool
}

// NewMailbox returns an empty mailbox. The park-reason string is built
// lazily on the first blocking receive, so mailboxes that never park a
// receiver (most, at scale) allocate nothing beyond the struct.
func NewMailbox(name string) *Mailbox {
	return &Mailbox{name: name}
}

// Pending returns the number of queued (undelivered) messages.
func (mb *Mailbox) Pending() int { return len(mb.messages) }

// Deliver enqueues a message, waking the first parked receiver whose
// predicate matches. Caller must be the running proc and msg.Arrival must be
// >= its current time.
func (mb *Mailbox) Deliver(msg Message) {
	for i, w := range mb.waiters {
		if w.match(msg) {
			n := len(mb.waiters)
			copy(mb.waiters[i:], mb.waiters[i+1:])
			mb.waiters[n-1] = nil
			mb.waiters = mb.waiters[:n-1]
			w.got = msg
			w.ok = true
			w.p.eng.Unpark(w.p, msg.Arrival)
			return
		}
	}
	mb.messages = append(mb.messages, msg)
}

// Peek visits queued messages in FIFO order until visit returns true.
func (mb *Mailbox) Peek(visit func(Message) bool) {
	for _, m := range mb.messages {
		if visit(m) {
			return
		}
	}
}

// Recv blocks until a message matching the predicate is available, then
// returns it with the proc clock advanced to its arrival time. Queued
// messages are matched in FIFO order.
func (mb *Mailbox) Recv(p *Proc, match func(Message) bool) Message {
	for i, m := range mb.messages {
		if match(m) {
			n := len(mb.messages)
			copy(mb.messages[i:], mb.messages[i+1:])
			mb.messages[n-1] = Message{}
			mb.messages = mb.messages[:n-1]
			p.HoldUntil(m.Arrival)
			return m
		}
	}
	w := &p.mailw
	w.p = p
	w.match = match
	w.ok = false
	mb.waiters = append(mb.waiters, w)
	if mb.reason == "" {
		mb.reason = "recv on mailbox " + mb.name
	}
	p.Park(mb.reason)
	if !w.ok {
		panic(fmt.Sprintf("sim: proc %d woke from mailbox %q without a message", p.ID(), mb.name))
	}
	got := w.got
	w.match = nil
	w.got = Message{} // drop payload reference
	return got
}
