package sim

import (
	"errors"
	"strings"
	"testing"
)

// A proc that advances its clock past the budget must terminate the run
// with a *BudgetError instead of spinning forever, and every goroutine must
// drain (checked implicitly by -race / leak stability).
func TestBudgetExceeded(t *testing.T) {
	e := NewEngine()
	e.SetBudget(1000)
	steps := 0
	e.Spawn("runaway", func(p *Proc) {
		for {
			p.Hold(400)
			steps++
		}
	})
	e.Spawn("bystander", func(p *Proc) { p.Park("waiting on runaway") })
	err := e.Run()
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Limit != 1000 || be.At <= 1000 {
		t.Fatalf("budget error fields: %+v", be)
	}
	if steps == 0 || steps > 4 {
		t.Fatalf("runaway took %d steps before the watchdog fired", steps)
	}
}

func TestBudgetUnderLimitHarmless(t *testing.T) {
	e := NewEngine()
	e.SetBudget(1_000_000)
	done := false
	e.Spawn("worker", func(p *Proc) { p.Hold(500); done = true })
	if err := e.Run(); err != nil || !done {
		t.Fatalf("run under budget failed: err=%v done=%v", err, done)
	}
}

// The deadlock diagnostic must carry each parked proc's phase label so a
// mid-pipeline hang names where in the pipeline each rank was stuck.
func TestDeadlockNamesPhaseLabels(t *testing.T) {
	e := NewEngine()
	e.Spawn("rank0", func(p *Proc) {
		p.SetPhaseLabel("tapioca round 3/8")
		p.Park("waiting for event flush")
	})
	e.Spawn("rank1", func(p *Proc) { p.Park("no label set") })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "[phase: tapioca round 3/8]") {
		t.Fatalf("deadlock diagnostic missing phase label: %v", msg)
	}
	if strings.Contains(msg, "rank1) at t=0: no label set [phase:") {
		t.Fatalf("unlabeled proc grew a phase label: %v", msg)
	}
}
