package sim

// Engine micro-benchmarks pinning the scheduler hot path:
//
//	BenchmarkEngineStep     the same-proc fast path (Hold while strictly
//	                        earliest) — no heap traffic, no channel ops
//	BenchmarkEnginePingPong the direct successor handoff between two procs
//	                        (one channel synchronization per switch)
//	BenchmarkEngineFanIn    heap behaviour under many procs converging on one
//	                        resource (pop/push churn at scale)
//
// All three report allocs: the steady state must stay at 0 allocs/op.

import (
	"fmt"
	"testing"
)

// BenchmarkEngineStep measures one scheduling point of a proc that remains
// strictly earliest: the dominant case for Hold under skewed clocks. Before
// the direct-handoff engine this cost two channel ops and two goroutine
// switches (~500 ns); the fast path reduces it to a heap peek.
func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine()
	n := b.N
	e.Spawn("stepper", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Hold(1)
		}
	})
	// A second proc far in the future keeps the run queue non-empty, so the
	// fast path pays its real cost (a heap peek), not the empty-queue check.
	e.Spawn("horizon", func(p *Proc) {
		p.HoldUntil(int64(n) + 1<<40)
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEnginePingPong measures a forced context switch per step: two
// procs alternate via Park/Unpark, so every iteration is one direct
// proc-to-proc handoff (the engine goroutine never wakes).
func BenchmarkEnginePingPong(b *testing.B) {
	e := NewEngine()
	n := b.N
	var ping, pong *Proc
	ping = e.Spawn("ping", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Park("ping")
			e.Unpark(pong, p.Now())
		}
	})
	pong = e.Spawn("pong", func(p *Proc) {
		for i := 0; i < n; i++ {
			e.Unpark(ping, p.Now())
			p.Park("pong")
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineFanIn measures heap churn: 256 procs all requesting the
// same resource back-to-back, so every scheduling point pushes and pops
// through a populated run queue (the collective fan-in shape of two-phase
// aggregation).
func BenchmarkEngineFanIn(b *testing.B) {
	const procs = 256
	e := NewEngine()
	r := NewResource("sink", 1e9)
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("src%d", i), func(p *Proc) {
			for j := 0; j < per; j++ {
				r.Use(p, 4096)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineTimer measures CompleteAt + Wait round trips: the recycled
// goroutine-less timer nodes that back asynchronous storage completions.
func BenchmarkEngineTimer(b *testing.B) {
	e := NewEngine()
	n := b.N
	e.Spawn("issuer", func(p *Proc) {
		for i := 0; i < n; i++ {
			ev := NewEvent("io")
			CompleteAt(p, ev, p.Now()+10)
			ev.Wait(p)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
