// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine.
//
// Simulated processes ("procs") are ordinary goroutines that advance a
// virtual clock instead of wall time. The engine runs exactly one proc at a
// time and always resumes the runnable proc with the smallest (virtual time,
// proc id) pair, so a simulation is fully deterministic: the same program
// produces the same event ordering and the same virtual timestamps on every
// run. This property is load-bearing for the TAPIOCA reproduction — paper
// experiments are regenerated as exact, repeatable traces.
//
// The engine enforces a conservative causality rule: every operation that
// advances a proc's clock is a scheduling point, and operations on shared
// state (resources, mailboxes, barriers) always take effect at the calling
// proc's current virtual time, which is guaranteed to be minimal among all
// runnable procs. Procs therefore can never observe effects "from the
// future".
//
// Virtual time is int64 nanoseconds.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Handy duration constants in virtual nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1000
	Millisecond int64 = 1000 * 1000
	Second      int64 = 1000 * 1000 * 1000
)

// Seconds converts a floating-point duration in seconds to virtual
// nanoseconds, rounding to the nearest nanosecond.
func Seconds(s float64) int64 {
	return int64(math.Round(s * float64(Second)))
}

// ToSeconds converts virtual nanoseconds to floating-point seconds.
func ToSeconds(ns int64) float64 {
	return float64(ns) / float64(Second)
}

// TransferTime returns the time needed to move bytes at rate bytes/second.
// A non-positive rate means "infinitely fast" and yields zero.
func TransferTime(bytes int64, rate float64) int64 {
	if rate <= 0 || bytes <= 0 {
		return 0
	}
	return int64(math.Ceil(float64(bytes) / rate * float64(Second)))
}

// abortError is the sentinel panic value used to unwind proc goroutines when
// the engine shuts down early (deadlock or another proc's failure).
type abortError struct{}

func (abortError) Error() string { return "sim: proc aborted by engine shutdown" }

type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateParked
	stateFinished
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateParked:
		return "parked"
	case stateFinished:
		return "finished"
	}
	return "unknown"
}

// Proc is a simulated process. A Proc handle is only valid inside the
// goroutine the engine created for it; procs communicate through engine
// primitives, never by calling methods on each other's handles.
type Proc struct {
	eng  *Engine
	id   int
	name string
	now  int64

	state      procState
	parkReason string
	aborted    bool

	resume chan struct{}
	fn     func(*Proc)

	heapIndex int // position in the engine run queue, -1 if absent
}

// ID returns the proc's unique id (dense, in spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now returns the proc's current virtual time in nanoseconds.
func (p *Proc) Now() int64 { return p.now }

// Engine returns the engine that owns this proc.
func (p *Proc) Engine() *Engine { return p.eng }

// Engine coordinates a set of procs over a shared virtual clock. The zero
// value is not usable; call NewEngine.
type Engine struct {
	procs []*Proc
	runq  procHeap
	clock int64
	live  int
	err   error

	yield   chan struct{}
	running bool
	started bool
}

// NewEngine returns an empty engine ready for Spawn and Run.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the engine's clock: the largest virtual time any proc has
// reached so far.
func (e *Engine) Now() int64 { return e.clock }

// Err returns the terminal error recorded during Run, if any.
func (e *Engine) Err() error { return e.err }

// NumProcs returns the number of procs ever spawned.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Spawn creates a proc that will execute fn when the engine schedules it.
// Spawn may be called before Run, or by a running proc (the child starts at
// the parent's current virtual time).
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:       e,
		id:        len(e.procs),
		name:      name,
		fn:        fn,
		state:     stateNew,
		resume:    make(chan struct{}),
		heapIndex: -1,
	}
	if e.started {
		p.now = e.clock
	}
	e.procs = append(e.procs, p)
	e.live++
	go p.run()
	p.state = stateRunnable
	heap.Push(&e.runq, p)
	return p
}

// run is the goroutine body wrapping the user function.
func (p *Proc) run() {
	<-p.resume // wait for first schedule
	defer func() {
		r := recover()
		if r != nil {
			if _, isAbort := r.(abortError); !isAbort && p.eng.err == nil {
				p.eng.err = fmt.Errorf("sim: proc %d (%s) panicked at t=%d: %v", p.id, p.name, p.now, r)
			}
		}
		p.state = stateFinished
		p.eng.live--
		p.eng.yield <- struct{}{}
	}()
	if p.aborted {
		return
	}
	p.fn(p)
}

// Run executes the simulation until every proc finishes. It returns an error
// if a proc panicked or if the simulation deadlocked (no runnable proc while
// live procs remain parked). After Run returns, all proc goroutines have
// terminated.
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("sim: Run called re-entrantly")
	}
	e.running = true
	e.started = true
	defer func() { e.running = false }()

	for e.err == nil {
		if e.runq.Len() == 0 {
			break
		}
		p := heap.Pop(&e.runq).(*Proc)
		if p.now > e.clock {
			e.clock = p.now
		}
		p.state = stateRunning
		p.resume <- struct{}{}
		<-e.yield
	}

	if e.err == nil && e.live > 0 {
		e.err = e.deadlockError()
	}
	e.drain()
	return e.err
}

// deadlockError builds a diagnostic listing every parked proc.
func (e *Engine) deadlockError() error {
	var stuck []string
	for _, p := range e.procs {
		if p.state == stateParked || p.state == stateRunnable || p.state == stateNew {
			reason := p.parkReason
			if reason == "" {
				reason = "(no reason)"
			}
			stuck = append(stuck, fmt.Sprintf("proc %d (%s) at t=%d: %s", p.id, p.name, p.now, reason))
		}
	}
	sort.Strings(stuck)
	msg := "sim: deadlock"
	for _, s := range stuck {
		msg += "\n  " + s
	}
	return fmt.Errorf("%s", msg)
}

// drain force-terminates all unfinished procs so no goroutines leak.
func (e *Engine) drain() {
	for _, p := range e.procs {
		if p.state == stateFinished {
			continue
		}
		p.aborted = true
		if p.heapIndex >= 0 {
			heap.Remove(&e.runq, p.heapIndex)
		}
		p.resume <- struct{}{}
		<-e.yield
	}
}

// yieldToEngine hands control back to the scheduler and blocks until the
// engine resumes this proc. On resume it honors shutdown aborts.
func (p *Proc) yieldToEngine() {
	p.eng.yield <- struct{}{}
	<-p.resume
	if p.aborted {
		panic(abortError{})
	}
}

// requeue marks the proc runnable at its current time and yields.
func (p *Proc) requeue() {
	p.state = stateRunnable
	heap.Push(&p.eng.runq, p)
	p.yieldToEngine()
	p.state = stateRunning
}

// Hold advances the proc's virtual clock by d nanoseconds (a "compute" or
// "busy" period). Negative d panics. Hold is a scheduling point.
func (p *Proc) Hold(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Hold with negative duration %d", d))
	}
	p.now += d
	p.requeue()
}

// HoldUntil advances the proc's virtual clock to time t, if t is in the
// future. HoldUntil is a scheduling point even when t is in the past, which
// keeps scheduling behaviour uniform.
func (p *Proc) HoldUntil(t int64) {
	if t > p.now {
		p.now = t
	}
	p.requeue()
}

// Park blocks the proc until another proc calls Unpark on it. The reason
// string appears in deadlock diagnostics. The proc resumes with its clock
// advanced to at least the unparker-provided wake time.
func (p *Proc) Park(reason string) {
	p.state = stateParked
	p.parkReason = reason
	p.yieldToEngine()
	p.state = stateRunning
	p.parkReason = ""
}

// Unpark makes a parked proc runnable at virtual time at (or the target's
// own clock, whichever is later). It must only be called by the currently
// running proc, with at >= the caller's current time; the engine's causality
// guarantee depends on it. Unparking a proc that is not parked panics.
func (e *Engine) Unpark(target *Proc, at int64) {
	if target.state != stateParked {
		panic(fmt.Sprintf("sim: Unpark of proc %d (%s) in state %v", target.id, target.name, target.state))
	}
	if at > target.now {
		target.now = at
	}
	target.state = stateRunnable
	heap.Push(&e.runq, target)
}

// procHeap is a min-heap over (now, id).
type procHeap []*Proc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].now != h[j].now {
		return h[i].now < h[j].now
	}
	return h[i].id < h[j].id
}
func (h procHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *procHeap) Push(x any) {
	p := x.(*Proc)
	p.heapIndex = len(*h)
	*h = append(*h, p)
}
func (h *procHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	p.heapIndex = -1
	*h = old[:n-1]
	return p
}
