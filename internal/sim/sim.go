// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine.
//
// Simulated processes ("procs") are ordinary goroutines that advance a
// virtual clock instead of wall time. The engine runs exactly one proc at a
// time and always resumes the runnable proc with the smallest (virtual time,
// proc id) pair, so a simulation is fully deterministic: the same program
// produces the same event ordering and the same virtual timestamps on every
// run. This property is load-bearing for the TAPIOCA reproduction — paper
// experiments are regenerated as exact, repeatable traces.
//
// The engine enforces a conservative causality rule: every operation that
// advances a proc's clock is a scheduling point, and operations on shared
// state (resources, mailboxes, barriers) always take effect at the calling
// proc's current virtual time, which is guaranteed to be minimal among all
// runnable procs. Procs therefore can never observe effects "from the
// future".
//
// Scheduling is built for throughput: the run queue is a concrete 4-ary
// min-heap over *Proc (no interface boxing), a proc that is still strictly
// earliest after advancing its clock keeps running without any context
// switch (the same-proc fast path), and when a switch is needed the yielding
// proc resumes its successor directly — the engine goroutine is only woken
// when the run queue empties or an error needs adjudication, so the steady
// state pays one channel handoff per switch instead of two plus an engine
// round-trip.
//
// Virtual time is int64 nanoseconds.
package sim

import (
	"fmt"
	"math"
	"sort"

	"tapioca/internal/obs"
)

// Handy duration constants in virtual nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1000
	Millisecond int64 = 1000 * 1000
	Second      int64 = 1000 * 1000 * 1000
)

// Seconds converts a floating-point duration in seconds to virtual
// nanoseconds, rounding to the nearest nanosecond.
func Seconds(s float64) int64 {
	return int64(math.Round(s * float64(Second)))
}

// ToSeconds converts virtual nanoseconds to floating-point seconds.
func ToSeconds(ns int64) float64 {
	return float64(ns) / float64(Second)
}

// TransferTime returns the time needed to move bytes at rate bytes/second.
// A non-positive rate means "infinitely fast" and yields zero.
func TransferTime(bytes int64, rate float64) int64 {
	if rate <= 0 || bytes <= 0 {
		return 0
	}
	return int64(math.Ceil(float64(bytes) / rate * float64(Second)))
}

// abortError is the sentinel panic value used to unwind proc goroutines when
// the engine shuts down early (deadlock or another proc's failure).
type abortError struct{}

func (abortError) Error() string { return "sim: proc aborted by engine shutdown" }

type procState int

const (
	stateRunnable procState = iota
	stateRunning
	stateParked
	stateFinished
)

func (s procState) String() string {
	switch s {
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateParked:
		return "parked"
	case stateFinished:
		return "finished"
	}
	return "unknown"
}

// Proc is a simulated process. A Proc handle is only valid inside the
// goroutine the engine created for it; procs communicate through engine
// primitives, never by calling methods on each other's handles.
//
// The same struct doubles as a recycled timer node (timerEv != nil): timers
// ride the run queue like procs but fire inline in whichever goroutine
// dispatches them, with no goroutine or channel behind them.
type Proc struct {
	eng  *Engine
	id   int
	name string
	now  int64

	state      procState
	parkReason string
	phase      string
	aborted    bool

	resume chan struct{}
	fn     func(*Proc)

	heapIndex int // position in the engine run queue, -1 if absent

	// Flight-recorder track identity (see SetTraceID). traceOn is true only
	// when the engine recorder has a live event buffer, so the untraced Park
	// pays a single predicted-false branch and Hold pays nothing at all.
	traceOn  bool
	tracePID int32
	traceTID int32
	runStart int64 // virtual time the current run interval began

	// Timer-node fields (goroutine-less run-queue entries).
	timerEv   *Event // event to complete when dispatched
	timerNext *Proc  // engine free list

	// mailw is the proc's reusable mailbox-waiter node: a proc parks while
	// receiving, so it never needs more than one.
	mailw mailWaiter
}

// ID returns the proc's unique id (strictly increasing in spawn order;
// internal timers share the same sequence, so ids are not dense).
func (p *Proc) ID() int { return p.id }

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now returns the proc's current virtual time in nanoseconds.
func (p *Proc) Now() int64 { return p.now }

// Engine returns the engine that owns this proc.
func (p *Proc) Engine() *Engine { return p.eng }

// Recorder returns the engine's flight recorder (nil when observability is
// off — obs methods are nil-receiver-safe, so callers need no guard).
func (p *Proc) Recorder() *obs.Recorder { return p.eng.rec }

// SetPhaseLabel names the proc's current pipeline phase for diagnostics:
// when the simulation deadlocks, the error lists each parked proc's phase
// alongside its park reason, turning "32 procs parked" into an actionable
// report. Pass "" to clear. Callers should only set labels when diagnostics
// are wanted (e.g. a recorder is attached); the fast path pays nothing.
func (p *Proc) SetPhaseLabel(label string) { p.phase = label }

// PhaseLabel returns the current phase label ("" when unset).
func (p *Proc) PhaseLabel() string { return p.phase }

// SetTraceID assigns the proc's trace track — (pid, tid) in the Chrome
// trace's process/thread convention (compute node id, world rank) — and
// starts its first run interval. Until called, the proc emits no scheduler
// spans. No-op unless the engine recorder is tracing.
func (p *Proc) SetTraceID(pid, tid int32) {
	if !p.eng.rec.Tracing() {
		return
	}
	p.traceOn = true
	p.tracePID = pid
	p.traceTID = tid
	p.runStart = p.now
}

// Engine coordinates a set of procs over a shared virtual clock. The zero
// value is not usable; call NewEngine.
type Engine struct {
	procs  []*Proc
	runq   runQueue
	clock  int64
	live   int
	nextID int
	err    error

	// wake is the engine goroutine's adjudication signal: a proc sends on it
	// when the run queue empties or a terminal error needs handling. Buffered
	// so the engine's own empty-queue dispatch cannot self-deadlock; at most
	// one wake is ever outstanding (a single goroutine runs at a time).
	wake    chan struct{}
	running bool
	started bool

	timerFree *Proc // recycled timer nodes

	// batch is the sorted release FIFO backing UnparkBatch: a mass release
	// (a collective waking thousands of ranks at one instant) enqueues its
	// procs here ordered by (time, id) instead of paying per-proc heap
	// traffic; batchPos is the consumed prefix. The scheduler always takes
	// the smaller of the heap top and the FIFO head, so the merged pop order
	// is exactly the order an all-heap schedule would produce.
	batch    []*Proc
	batchPos int

	// rec is the optional flight recorder. nil (the default) is the disabled
	// state: procs skip all instrumentation, and the engine's hot paths carry
	// no recorder checks at all.
	rec *obs.Recorder

	// budget, when > 0, is the virtual-time watchdog: dispatching any entry
	// past this time aborts the run with a *BudgetError instead of letting a
	// livelocked simulation spin forever.
	budget int64
}

// SetBudget arms the virtual-time watchdog: the run terminates with a
// *BudgetError as soon as the clock would pass limit (ns). Zero disables.
// Truly stuck simulations already surface as deadlock errors; the budget
// catches livelock and runaway retry loops, which deadlock detection cannot.
func (e *Engine) SetBudget(limit int64) { e.budget = limit }

// BudgetError is the terminal error of a run that exceeded its virtual-time
// budget (see SetBudget). Match with errors.As.
type BudgetError struct {
	Limit int64 // the configured budget, ns
	At    int64 // the virtual time that breached it, ns
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: virtual-time budget exceeded: t=%d past limit %d", e.At, e.Limit)
}

// SetRecorder attaches a flight recorder to the engine. Call before Run;
// procs cache tracing state when they call SetTraceID.
func (e *Engine) SetRecorder(r *obs.Recorder) { e.rec = r }

// Recorder returns the attached flight recorder (nil when disabled).
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// NewEngine returns an empty engine ready for Spawn and Run.
func NewEngine() *Engine {
	return &Engine{wake: make(chan struct{}, 1)}
}

// Now returns the engine's clock: the largest virtual time any proc has
// reached so far.
func (e *Engine) Now() int64 { return e.clock }

// Err returns the terminal error recorded during Run, if any.
func (e *Engine) Err() error { return e.err }

// NumProcs returns the number of procs ever spawned.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Spawn creates a proc that will execute fn when the engine schedules it.
// Spawn may be called before Run, or by a running proc (the child starts at
// the parent's current virtual time).
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:       e,
		id:        e.nextID,
		name:      name,
		fn:        fn,
		state:     stateRunnable,
		resume:    make(chan struct{}),
		heapIndex: -1,
	}
	e.nextID++
	if e.started {
		p.now = e.clock
	}
	e.procs = append(e.procs, p)
	e.live++
	go p.run()
	e.runq.push(p)
	return p
}

// run is the goroutine body wrapping the user function.
func (p *Proc) run() {
	<-p.resume // wait for first schedule
	defer func() {
		r := recover()
		if r != nil {
			if _, isAbort := r.(abortError); !isAbort && p.eng.err == nil {
				p.eng.err = fmt.Errorf("sim: proc %d (%s) panicked at t=%d: %v", p.id, p.name, p.now, r)
			}
		}
		if p.traceOn && r == nil {
			p.eng.rec.Span(p.tracePID, p.traceTID, "sched", "run", p.runStart, p.now, 0)
		}
		p.state = stateFinished
		e := p.eng
		e.live--
		if e.err != nil || p.aborted {
			// Terminal condition: the engine adjudicates (error propagation
			// or drain); do not hand control to another proc.
			e.wake <- struct{}{}
			return
		}
		e.dispatch(nil)
	}()
	if p.aborted {
		return
	}
	p.fn(p)
}

// Run executes the simulation until every proc finishes. It returns an error
// if a proc panicked or if the simulation deadlocked (no runnable proc while
// live procs remain parked). After Run returns, all proc goroutines have
// terminated.
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("sim: Run called re-entrantly")
	}
	e.running = true
	e.started = true
	defer func() { e.running = false }()

	// Dispatch the earliest entry and sleep until the chain of direct
	// proc-to-proc handoffs needs adjudication: the queue drained (normal
	// completion or deadlock) or a proc recorded a terminal error.
	for e.err == nil && (e.runq.len() > 0 || e.batchPos < len(e.batch)) {
		e.dispatch(nil)
		<-e.wake
	}

	if e.err == nil && e.live > 0 {
		e.err = e.deadlockError()
	}
	e.drain()
	return e.err
}

// dispatch transfers control to the earliest pending run-queue entry. Timer
// nodes fire inline (in the calling goroutine, which is acting as the
// scheduler at the minimal virtual time) until a real proc surfaces; that
// proc is then resumed directly. With nothing left to run, the engine
// goroutine is woken to adjudicate.
//
// self is the calling proc (nil from the engine goroutine or a finishing
// proc). An inline timer can unpark self mid-dispatch; when self then pops
// as the earliest entry, dispatch returns true and the caller keeps running
// instead of sending itself a resume it could never receive.
func (e *Engine) dispatch(self *Proc) (resumedSelf bool) {
	for {
		next := e.popNext()
		if next == nil {
			e.wake <- struct{}{}
			return false
		}
		if e.budget > 0 && next.now > e.budget {
			if e.err == nil {
				e.err = &BudgetError{Limit: e.budget, At: next.now}
			}
			e.wake <- struct{}{}
			return false
		}
		if next.now > e.clock {
			e.clock = next.now
		}
		if next.timerEv != nil {
			ev, at := next.timerEv, next.now
			e.freeTimer(next)
			e.fireTimer(ev, at)
			if e.err != nil {
				// The completion panicked. Timers have no goroutine whose
				// recover could catch it, so record it here and hand the
				// terminal error to the engine to adjudicate.
				e.wake <- struct{}{}
				return false
			}
			continue
		}
		next.state = stateRunning
		if next == self {
			return true
		}
		next.resume <- struct{}{}
		return false
	}
}

// peekNext returns the earliest pending entry across the heap and the
// release FIFO without removing it, or nil.
func (e *Engine) peekNext() *Proc {
	top := e.runq.peek()
	if e.batchPos < len(e.batch) {
		if b := e.batch[e.batchPos]; top == nil || procLess(b, top) {
			return b
		}
	}
	return top
}

// popNext removes and returns the earliest pending entry across the heap and
// the release FIFO, or nil.
func (e *Engine) popNext() *Proc {
	top := e.runq.peek()
	if e.batchPos < len(e.batch) {
		if b := e.batch[e.batchPos]; top == nil || procLess(b, top) {
			e.batchPos++
			if e.batchPos == len(e.batch) {
				e.batch = e.batch[:0] // drained: recycle the backing
				e.batchPos = 0
			}
			return b
		}
	}
	return e.runq.pop()
}

// after arranges for ev to complete at virtual time at, via a recycled
// goroutine-less timer node on the run queue. Callers guarantee causality
// (at >= the running proc's time).
func (e *Engine) after(at int64, ev *Event) {
	t := e.timerFree
	if t != nil {
		e.timerFree = t.timerNext
		t.timerNext = nil
	} else {
		t = &Proc{eng: e, heapIndex: -1}
	}
	t.id = e.nextID
	e.nextID++
	t.now = at
	t.timerEv = ev
	e.runq.push(t)
}

// freeTimer returns a fired timer node to the engine free list.
func (e *Engine) freeTimer(t *Proc) {
	t.timerEv = nil
	t.timerNext = e.timerFree
	e.timerFree = t
}

// fireTimer completes a timer's event, converting a panic (e.g. an event
// completed twice) into the engine's terminal error — preserving the
// contract that Run returns misbehavior as an error instead of crashing the
// process, which proc goroutines get from run()'s recover.
func (e *Engine) fireTimer(ev *Event, at int64) {
	defer func() {
		if r := recover(); r != nil && e.err == nil {
			e.err = fmt.Errorf("sim: timer for event %q panicked at t=%d: %v", ev.name, at, r)
		}
	}()
	ev.Complete(at)
}

// deadlockListMax caps the parked-proc listing in deadlock diagnostics: at
// full scale a deadlock can strand tens of thousands of procs, and a
// multi-megabyte error string helps nobody.
const deadlockListMax = 32

// deadlockError builds a diagnostic listing the stuck procs (in proc-id
// order, capped at deadlockListMax entries).
func (e *Engine) deadlockError() error {
	msg := "sim: deadlock"
	listed, stuck := 0, 0
	for _, p := range e.procs {
		if p.state == stateFinished || p.state == stateRunning {
			continue
		}
		stuck++
		if listed >= deadlockListMax {
			continue
		}
		listed++
		reason := p.parkReason
		if reason == "" {
			reason = "(no reason)"
		}
		msg += fmt.Sprintf("\n  proc %d (%s) at t=%d: %s", p.id, p.name, p.now, reason)
		if p.phase != "" {
			msg += fmt.Sprintf(" [phase: %s]", p.phase)
		}
	}
	if rest := stuck - listed; rest > 0 {
		msg += fmt.Sprintf("\n  ... and %d more stuck procs", rest)
	}
	return fmt.Errorf("%s", msg)
}

// drain force-terminates all unfinished procs so no goroutines leak.
func (e *Engine) drain() {
	e.batch = nil
	e.batchPos = 0
	for _, p := range e.procs {
		if p.state == stateFinished {
			continue
		}
		p.aborted = true
		if p.heapIndex >= 0 {
			e.runq.remove(p)
		}
		p.resume <- struct{}{}
		<-e.wake
	}
	e.runq.clear() // drop any remaining timer nodes
}

// handoff enqueues nothing itself: it transfers control to the next pending
// entry and blocks until this proc is resumed. On resume it honors shutdown
// aborts. If an inline timer made this proc the earliest entry again, it
// returns without ever blocking.
func (p *Proc) handoff() {
	if p.eng.dispatch(p) {
		return
	}
	<-p.resume
	if p.aborted {
		panic(abortError{})
	}
}

// reschedule is the engine's scheduling point. If the proc is still strictly
// earliest — the dominant case for Hold under skewed clocks — it simply
// keeps running: no heap traffic, no channel ops, no goroutine switch. The
// outcome is identical to re-enqueueing and being popped again immediately.
// Otherwise the proc enqueues itself and resumes its successor directly.
func (p *Proc) reschedule() {
	e := p.eng
	// A budget breach must not take the keep-running shortcut: the slow path
	// funnels it through dispatch, where the watchdog adjudicates.
	if top := e.peekNext(); (top == nil || procLess(p, top)) && (e.budget == 0 || p.now <= e.budget) {
		if p.now > e.clock {
			e.clock = p.now
		}
		return
	}
	p.state = stateRunnable
	e.runq.push(p)
	p.handoff()
	p.state = stateRunning
}

// Hold advances the proc's virtual clock by d nanoseconds (a "compute" or
// "busy" period). Negative d panics. Hold is a scheduling point.
func (p *Proc) Hold(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Hold with negative duration %d", d))
	}
	p.now += d
	p.reschedule()
}

// HoldUntil advances the proc's virtual clock to time t, if t is in the
// future. HoldUntil is a scheduling point even when t is in the past, which
// keeps scheduling behaviour uniform.
func (p *Proc) HoldUntil(t int64) {
	if t > p.now {
		p.now = t
	}
	p.reschedule()
}

// JumpTo advances the proc's clock to t (if in the future) without a
// scheduling point — the specialized "advance, then immediately block"
// primitive. Deferring the yield to an imminent park saves a full context
// switch per message on the put→fence hot path. The contract is strict: the
// caller must immediately enter a parking operation (collective, barrier,
// event wait) and may only perform commutative shared-state updates before
// it — no resource bookings, which must always happen at a globally minimal
// virtual time. The park then re-enters the ordered schedule, so the
// simulation's event order is identical to the HoldUntil it replaces.
func (p *Proc) JumpTo(t int64) {
	if t > p.now {
		p.now = t
	}
}

// Traced reports whether this proc emits trace spans (SetTraceID was called
// under a tracing recorder).
func (p *Proc) Traced() bool { return p.traceOn }

// TraceSpan records a completed interval on this proc's own trace track.
// No-op (one predicted branch, zero allocations) when the proc is untraced.
func (p *Proc) TraceSpan(cat, name string, start, end, bytes int64) {
	if p.traceOn {
		p.eng.rec.Span(p.tracePID, p.traceTID, cat, name, start, end, bytes)
	}
}

// Park blocks the proc until another proc calls Unpark on it. The reason
// string appears in deadlock diagnostics. The proc resumes with its clock
// advanced to at least the unparker-provided wake time.
func (p *Proc) Park(reason string) {
	if p.traceOn {
		p.parkTraced(reason)
		return
	}
	p.state = stateParked
	p.parkReason = reason
	p.handoff()
	p.state = stateRunning
	p.parkReason = ""
}

// parkTraced is Park with scheduler-span emission: the run interval that
// ends here and, once resumed, the parked interval named by the reason.
// Both spans are emitted while this proc is the (single) running proc, so
// the event order is deterministic.
func (p *Proc) parkTraced(reason string) {
	rec := p.eng.rec
	rec.Span(p.tracePID, p.traceTID, "sched", "run", p.runStart, p.now, 0)
	at := p.now
	p.state = stateParked
	p.parkReason = reason
	p.handoff()
	p.state = stateRunning
	p.parkReason = ""
	rec.Span(p.tracePID, p.traceTID, "sched", reason, at, p.now, 0)
	p.runStart = p.now
}

// Unpark makes a parked proc runnable at virtual time at (or the target's
// own clock, whichever is later). It must only be called by the currently
// running proc, with at >= the caller's current time; the engine's causality
// guarantee depends on it. Unparking a proc that is not parked panics.
func (e *Engine) Unpark(target *Proc, at int64) {
	if target.state != stateParked {
		panic(fmt.Sprintf("sim: Unpark of proc %d (%s) in state %v", target.id, target.name, target.state))
	}
	if at > target.now {
		target.now = at
	}
	target.state = stateRunnable
	e.runq.push(target)
}

// UnparkBatch makes every parked proc in waiters runnable at virtual time at
// — the mass-release path of a barrier or collective. It is schedule-
// equivalent to calling Unpark on each waiter, but the procs enter the
// sorted release FIFO, so an N-proc release costs one id sort instead of N
// heap pushes and N full-depth sifting pops. The caller rules of Unpark
// apply; waiters whose clock is already past at, and releases that would
// break the FIFO's (time, id) order, fall back to individual heap entry.
func (e *Engine) UnparkBatch(waiters []*Proc, at int64) {
	if len(waiters) == 0 {
		return
	}
	if e.batchPos < len(e.batch) && e.batch[len(e.batch)-1].now >= at {
		// A same-instant release could interleave with the pending tail by
		// id; the heap preserves that order, the FIFO could not.
		for _, w := range waiters {
			e.Unpark(w, at)
		}
		return
	}
	start := len(e.batch)
	for _, w := range waiters {
		if w.state != stateParked {
			panic(fmt.Sprintf("sim: UnparkBatch of proc %d (%s) in state %v", w.id, w.name, w.state))
		}
		if w.now > at {
			// Wakes later than the batch instant: order it through the heap.
			e.Unpark(w, at)
			continue
		}
		w.now = at
		w.state = stateRunnable
		e.batch = append(e.batch, w)
	}
	if added := e.batch[start:]; len(added) > 1 {
		sortProcsByID(added)
	}
}

// sortProcsByID sorts same-time batch entries by proc id. Collective waiters
// park in run order, which is usually already id-sorted — detect that in one
// pass and only pay a real sort when it is not.
func sortProcsByID(s []*Proc) {
	sorted := true
	for i := 1; i < len(s); i++ {
		if s[i].id < s[i-1].id {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	sort.Slice(s, func(i, j int) bool { return s[i].id < s[j].id })
}

// procLess is the scheduling order: (virtual time, proc id) ascending.
func procLess(a, b *Proc) bool {
	return a.now < b.now || (a.now == b.now && a.id < b.id)
}

// runQueue is a concrete 4-ary min-heap over (now, id). A 4-ary layout
// halves the tree depth of the binary heap and keeps siblings on one cache
// line; the inlined procLess comparisons avoid the interface boxing of
// container/heap.
type runQueue struct {
	s []*Proc
}

func (q *runQueue) len() int { return len(q.s) }

// peek returns the earliest entry without removing it, or nil.
func (q *runQueue) peek() *Proc {
	if len(q.s) == 0 {
		return nil
	}
	return q.s[0]
}

func (q *runQueue) push(p *Proc) {
	q.s = append(q.s, p)
	p.heapIndex = len(q.s) - 1
	q.siftUp(len(q.s) - 1)
}

func (q *runQueue) pop() *Proc {
	n := len(q.s)
	if n == 0 {
		return nil
	}
	top := q.s[0]
	top.heapIndex = -1
	last := q.s[n-1]
	q.s[n-1] = nil
	q.s = q.s[:n-1]
	if n > 1 {
		q.s[0] = last
		last.heapIndex = 0
		q.siftDown(0)
	}
	return top
}

// remove deletes the entry at p's heap position (drain support).
func (q *runQueue) remove(p *Proc) {
	i := p.heapIndex
	if i < 0 {
		return
	}
	n := len(q.s)
	p.heapIndex = -1
	last := q.s[n-1]
	q.s[n-1] = nil
	q.s = q.s[:n-1]
	if last == p {
		return
	}
	q.s[i] = last
	last.heapIndex = i
	q.siftDown(i)
	q.siftUp(last.heapIndex)
}

func (q *runQueue) clear() {
	for i := range q.s {
		q.s[i].heapIndex = -1
		q.s[i] = nil
	}
	q.s = q.s[:0]
}

func (q *runQueue) siftUp(i int) {
	p := q.s[i]
	for i > 0 {
		parent := (i - 1) / 4
		pp := q.s[parent]
		if !procLess(p, pp) {
			break
		}
		q.s[i] = pp
		pp.heapIndex = i
		i = parent
	}
	q.s[i] = p
	p.heapIndex = i
}

func (q *runQueue) siftDown(i int) {
	p := q.s[i]
	n := len(q.s)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		mp := q.s[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if procLess(q.s[c], mp) {
				min, mp = c, q.s[c]
			}
		}
		if !procLess(mp, p) {
			break
		}
		q.s[i] = mp
		mp.heapIndex = i
		i = min
	}
	q.s[i] = p
	p.heapIndex = i
}
