package sim

// Flight-recorder overhead guards for the scheduler hot path:
//
//	BenchmarkEngineStepDisabled  BenchmarkEngineStep with a metrics-only
//	                             recorder attached — must match the plain
//	                             benchmark (the disabled path is one
//	                             predicted-false bool check)
//	BenchmarkEngineStepTraced    the same loop with tracing live
//
// TestRecorderDisabledNoAllocs asserts the 0 allocs/op contract directly, so
// a regression fails the suite rather than only skewing benchmark numbers.

import (
	"testing"

	"tapioca/internal/obs"
)

// engineStep is the BenchmarkEngineStep body with a recorder attached: a
// proc that stays strictly earliest Holds b.N times while a far-future proc
// keeps the run queue non-empty.
func engineStep(b *testing.B, rec *obs.Recorder) {
	e := NewEngine()
	e.SetRecorder(rec)
	n := b.N
	e.Spawn("stepper", func(p *Proc) {
		p.SetTraceID(0, 0)
		for i := 0; i < n; i++ {
			p.Hold(1)
		}
	})
	e.Spawn("horizon", func(p *Proc) {
		p.SetTraceID(0, 1)
		p.HoldUntil(int64(n) + 1<<40)
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineStepDisabled must report the same ns/op and 0 allocs/op as
// BenchmarkEngineStep: a disabled recorder is free on the Hold fast path.
func BenchmarkEngineStepDisabled(b *testing.B) { engineStep(b, obs.NewRecorder(false)) }

// BenchmarkEngineStepTraced measures the tracing-on cost of the same loop.
// Hold on the fast path emits no events, so this bounds the per-step cost of
// carrying trace state; Park-path span emission is covered by the pipeline
// figures themselves.
func BenchmarkEngineStepTraced(b *testing.B) { engineStep(b, obs.NewRecorder(true)) }

// enginePingPong is the BenchmarkEnginePingPong body with a recorder
// attached: every iteration is one Park/Unpark handoff — the instrumented
// scheduler path.
func enginePingPong(b *testing.B, rec *obs.Recorder) {
	e := NewEngine()
	e.SetRecorder(rec)
	n := b.N
	var ping, pong *Proc
	ping = e.Spawn("ping", func(p *Proc) {
		p.SetTraceID(0, 0)
		for i := 0; i < n; i++ {
			p.Park("ping")
			e.Unpark(pong, p.Now())
		}
	})
	pong = e.Spawn("pong", func(p *Proc) {
		p.SetTraceID(0, 1)
		for i := 0; i < n; i++ {
			e.Unpark(ping, p.Now())
			p.Park("pong")
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEnginePingPongTraced measures span emission on the Park path (two
// spans per handoff: the ending run interval and the park interval).
func BenchmarkEnginePingPongTraced(b *testing.B) { enginePingPong(b, obs.NewRecorder(true)) }

// TestRecorderDisabledNoAllocs asserts the disabled-recorder contract: both
// the Hold fast path and the Park handoff path run at 0 allocs/op with a nil
// recorder and with a metrics-only recorder attached.
func TestRecorderDisabledNoAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness")
	}
	for _, tc := range []struct {
		name string
		rec  *obs.Recorder
	}{
		{"nil", nil},
		{"metrics-only", obs.NewRecorder(false)},
	} {
		if res := testing.Benchmark(func(b *testing.B) { engineStep(b, tc.rec) }); res.AllocsPerOp() != 0 {
			t.Errorf("%s recorder: Hold path %d allocs/op, want 0", tc.name, res.AllocsPerOp())
		}
		if res := testing.Benchmark(func(b *testing.B) { enginePingPong(b, tc.rec) }); res.AllocsPerOp() != 0 {
			t.Errorf("%s recorder: Park path %d allocs/op, want 0", tc.name, res.AllocsPerOp())
		}
	}
}
