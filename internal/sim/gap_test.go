package sim

import (
	"math/rand"
	"testing"
)

func TestGapResourceBackfills(t *testing.T) {
	r := NewGapResource("g", 1000) // 1 B/µs
	// First booking [0, 1ms); second at now=5ms leaves a gap [1ms,5ms).
	r.Reserve(0, 1)                     // [0, 1ms)
	s, e := r.Reserve(5*Millisecond, 1) // [5ms, 6ms)
	if s != 5*Millisecond || e != 6*Millisecond {
		t.Fatalf("second = [%d,%d)", s, e)
	}
	// A third booking at t=0 must backfill into [1ms, 5ms).
	s, e = r.Reserve(0, 2)
	if s != Millisecond || e != 3*Millisecond {
		t.Fatalf("backfill = [%d,%d), want [1ms,3ms)", s, e)
	}
}

func TestGapResourceFreeFrom(t *testing.T) {
	r := NewGapResource("g", 1000)
	r.ReserveDur(0, 10, 0)
	r.ReserveDur(100, 10, 0) // gap [10,100)
	if got := r.FreeFrom(0, 50); got != 10 {
		t.Fatalf("FreeFrom = %d, want 10", got)
	}
	if got := r.FreeFrom(0, 200); got != 110 {
		t.Fatalf("FreeFrom big = %d, want horizon 110", got)
	}
	if got := r.FreeFrom(105, 5); got != 110 {
		t.Fatalf("FreeFrom mid = %d, want 110", got)
	}
}

func TestGapResourceReserveAtPastHorizon(t *testing.T) {
	r := NewGapResource("g", 0)
	r.ReserveAt(100, 10, 5)
	if r.Horizon() != 110 {
		t.Fatalf("horizon = %d", r.Horizon())
	}
	// The skipped idle time became a gap usable by later bookings.
	s, e := r.ReserveDur(0, 50, 0)
	if s != 0 || e != 50 {
		t.Fatalf("gap fill = [%d,%d)", s, e)
	}
}

func TestReserveTogetherFindsCommonSlot(t *testing.T) {
	a := NewGapResource("a", 0)
	b := NewGapResource("b", 0)
	// a busy [0,100), b busy [50,150): first common slot of 30 is 150.
	a.ReserveAt(0, 100, 0)
	b.ReserveAt(50, 100, 0)
	start, end := ReserveTogether(0, 30, 0, []*GapResource{a, b})
	if start != 150 || end != 180 {
		t.Fatalf("together = [%d,%d), want [150,180)", start, end)
	}
}

func TestReserveTogetherUsesSharedGap(t *testing.T) {
	a := NewGapResource("a", 0)
	b := NewGapResource("b", 0)
	// Both busy [0,10) and [100,110): the shared gap [10,100) fits 80.
	for _, r := range []*GapResource{a, b} {
		r.ReserveAt(0, 10, 0)
		r.ReserveAt(100, 10, 0)
	}
	start, _ := ReserveTogether(0, 80, 0, []*GapResource{a, b})
	if start != 10 {
		t.Fatalf("start = %d, want 10 (shared gap)", start)
	}
}

// Property: bookings never overlap on a single gap resource.
func TestGapResourceNoOverlapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		r := NewGapResource("g", 0)
		type iv struct{ s, e int64 }
		var booked []iv
		for i := 0; i < 200; i++ {
			now := rng.Int63n(10000)
			dur := rng.Int63n(100) + 1
			s, e := r.ReserveDur(now, dur, 0)
			if s < now {
				t.Fatalf("start %d before request %d", s, now)
			}
			for _, b := range booked {
				if s < b.e && b.s < e {
					t.Fatalf("overlap [%d,%d) with [%d,%d)", s, e, b.s, b.e)
				}
			}
			booked = append(booked, iv{s, e})
		}
	}
}

// Property: with gap-filling, total busy time is conserved.
func TestGapResourceBusyConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	r := NewGapResource("g", 1e6)
	var want int64
	for i := 0; i < 500; i++ {
		b := rng.Int63n(5000)
		want += TransferTime(b, 1e6)
		r.Reserve(rng.Int63n(1000000), b)
	}
	if r.BusyTime() != want {
		t.Fatalf("busy = %d, want %d", r.BusyTime(), want)
	}
}
