package sim

import (
	"fmt"
	"testing"
)

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource("link", 1000) // 1000 B/s: 1 byte per millisecond
	var ends [2]int64
	e.Spawn("a", func(p *Proc) {
		ends[0] = r.Use(p, 500) // 0.5s
	})
	e.Spawn("b", func(p *Proc) {
		ends[1] = r.Use(p, 500) // queued behind a
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != Second/2 {
		t.Errorf("first completion = %d, want %d", ends[0], Second/2)
	}
	if ends[1] != Second {
		t.Errorf("second completion = %d, want %d", ends[1], Second)
	}
	if r.BusyTime() != Second {
		t.Errorf("busy = %d, want %d", r.BusyTime(), Second)
	}
	if r.BytesServed() != 1000 {
		t.Errorf("bytes = %d, want 1000", r.BytesServed())
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEngine()
	r := NewResource("link", 1000)
	e.Spawn("a", func(p *Proc) {
		r.Use(p, 100) // busy [0, 0.1s)
		p.Hold(Second)
		end := r.Use(p, 100) // starts immediately at current time
		want := p.Now()
		if end != want {
			t.Errorf("second use end = %d, want %d", end, want)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceInfiniteRate(t *testing.T) {
	e := NewEngine()
	r := NewResource("fast", 0)
	e.Spawn("a", func(p *Proc) {
		end := r.Use(p, 1<<40)
		if end != 0 {
			t.Errorf("end = %d, want 0 for infinite rate", end)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourcePeekDoesNotBook(t *testing.T) {
	r := NewResource("link", 1000)
	s1, e1 := r.Peek(0, 1000)
	s2, e2 := r.Peek(0, 1000)
	if s1 != s2 || e1 != e2 {
		t.Fatalf("Peek mutated state: (%d,%d) vs (%d,%d)", s1, e1, s2, e2)
	}
	if r.NextFree() != 0 {
		t.Fatalf("NextFree = %d after Peek, want 0", r.NextFree())
	}
}

func TestEventWaitBeforeComplete(t *testing.T) {
	e := NewEngine()
	ev := NewEvent("io")
	var got int64
	e.Spawn("waiter", func(p *Proc) {
		got = ev.Wait(p)
	})
	e.Spawn("completer", func(p *Proc) {
		p.Hold(123)
		ev.Complete(p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 123 {
		t.Fatalf("wait returned %d, want 123", got)
	}
}

func TestEventWaitAfterComplete(t *testing.T) {
	e := NewEngine()
	ev := NewEvent("io")
	e.Spawn("completer", func(p *Proc) {
		p.Hold(50)
		ev.Complete(p.Now())
	})
	e.Spawn("latewaiter", func(p *Proc) {
		p.Hold(1000)
		at := ev.Wait(p)
		if at != 50 {
			t.Errorf("completion at %d, want 50", at)
		}
		if p.Now() != 1000 {
			t.Errorf("clock = %d, want 1000 (no rewind)", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCompletedEvent(t *testing.T) {
	e := NewEngine()
	ev := CompletedEvent("none", 0)
	if !ev.Done() {
		t.Fatal("CompletedEvent not done")
	}
	e.Spawn("w", func(p *Proc) {
		if at := ev.Wait(p); at != 0 {
			t.Errorf("at = %d, want 0", at)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventDoubleCompletePanics(t *testing.T) {
	e := NewEngine()
	ev := NewEvent("x")
	e.Spawn("a", func(p *Proc) {
		ev.Complete(0)
		ev.Complete(1)
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected panic error for double complete")
	}
}

func TestBarrierReleasesAtMaxArrival(t *testing.T) {
	e := NewEngine()
	const n = 5
	b := NewBarrier("b", n, nil)
	release := make([]int64, n)
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Hold(int64(i) * 100)
			b.Wait(p)
			release[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range release {
		if r != 400 {
			t.Errorf("proc %d released at %d, want 400", i, r)
		}
	}
}

func TestBarrierWithCost(t *testing.T) {
	e := NewEngine()
	const n = 4
	b := NewBarrier("b", n, func(maxArrival int64, size int) int64 {
		return maxArrival + int64(size)*10
	})
	for i := 0; i < n; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			b.Wait(p)
			if p.Now() != 40 {
				t.Errorf("released at %d, want 40", p.Now())
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine()
	const n, rounds = 3, 4
	b := NewBarrier("b", n, nil)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Hold(int64(i + 1)) // desynchronize
				b.Wait(p)
				counts[i]++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != rounds {
			t.Errorf("proc %d completed %d rounds, want %d", i, c, rounds)
		}
	}
}

func TestMailboxDeliverThenRecv(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox("mb")
	e.Spawn("sender", func(p *Proc) {
		mb.Deliver(Message{Arrival: 77, Key: 1, Bytes: 10})
	})
	e.Spawn("receiver", func(p *Proc) {
		p.Hold(5) // recv after delivery
		m := mb.Recv(p, func(m Message) bool { return m.Key == 1 })
		if m.Bytes != 10 {
			t.Errorf("bytes = %d, want 10", m.Bytes)
		}
		if p.Now() != 77 {
			t.Errorf("clock = %d, want arrival 77", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxRecvThenDeliver(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox("mb")
	e.Spawn("receiver", func(p *Proc) {
		m := mb.Recv(p, func(m Message) bool { return true })
		if m.Key != 42 {
			t.Errorf("key = %d, want 42", m.Key)
		}
		if p.Now() != 200 {
			t.Errorf("clock = %d, want 200", p.Now())
		}
	})
	e.Spawn("sender", func(p *Proc) {
		p.Hold(150)
		mb.Deliver(Message{Arrival: 200, Key: 42})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxSelectiveMatch(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox("mb")
	e.Spawn("sender", func(p *Proc) {
		mb.Deliver(Message{Arrival: 10, Key: 1})
		mb.Deliver(Message{Arrival: 20, Key: 2})
	})
	e.Spawn("receiver", func(p *Proc) {
		p.Hold(1)
		// Match key 2 first even though key 1 is queued ahead of it.
		m := mb.Recv(p, func(m Message) bool { return m.Key == 2 })
		if m.Key != 2 {
			t.Fatalf("key = %d, want 2", m.Key)
		}
		m = mb.Recv(p, func(m Message) bool { return true })
		if m.Key != 1 {
			t.Fatalf("key = %d, want 1", m.Key)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if mb.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", mb.Pending())
	}
}

func TestMailboxFIFOAmongMatching(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox("mb")
	e.Spawn("sender", func(p *Proc) {
		for i := 0; i < 5; i++ {
			mb.Deliver(Message{Arrival: int64(i), Key: 7, Bytes: int64(i)})
		}
	})
	e.Spawn("receiver", func(p *Proc) {
		p.Hold(100)
		for i := 0; i < 5; i++ {
			m := mb.Recv(p, func(m Message) bool { return m.Key == 7 })
			if m.Bytes != int64(i) {
				t.Fatalf("message %d out of order: got bytes %d", i, m.Bytes)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoWaitersWokenInDeliveryOrder(t *testing.T) {
	e := NewEngine()
	mb := NewMailbox("mb")
	got := make([]int64, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn(fmt.Sprintf("rx%d", i), func(p *Proc) {
			m := mb.Recv(p, func(m Message) bool { return true })
			got[i] = m.Key
		})
	}
	e.Spawn("sender", func(p *Proc) {
		p.Hold(10)
		mb.Deliver(Message{Arrival: 10, Key: 100})
		mb.Deliver(Message{Arrival: 11, Key: 101})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 100 || got[1] != 101 {
		t.Fatalf("got = %v, want [100 101]", got)
	}
}
