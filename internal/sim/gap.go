package sim

import "fmt"

// GapResource is a rate-limited resource that, unlike Resource, back-fills
// idle gaps left by earlier reservations. It models servers whose clients
// are latency-bound (e.g. a Lustre OST driven by RPC round-trips): one
// client's stream leaves the device idle between RPCs, and concurrent
// streams slot into those gaps, so aggregate throughput grows with
// concurrency up to the device ceiling.
type GapResource struct {
	name    string
	rate    float64
	horizon int64 // end of the last reservation
	gaps    []gapInterval

	busy     int64
	reserved int64
}

type gapInterval struct{ start, end int64 }

// maxGaps bounds the free-gap list; when exceeded, the oldest gap is
// discarded (a conservative loss of fill opportunity).
const maxGaps = 64

// NewGapResource returns a gap-filling resource serving bytes at rate
// bytes/second (non-positive = infinite).
func NewGapResource(name string, rate float64) *GapResource {
	return &GapResource{name: name, rate: rate}
}

// Name returns the diagnostic name.
func (r *GapResource) Name() string { return r.name }

// BusyTime returns cumulative busy nanoseconds.
func (r *GapResource) BusyTime() int64 { return r.busy }

// BytesServed returns cumulative bytes served.
func (r *GapResource) BytesServed() int64 { return r.reserved }

// Horizon returns the end of the latest reservation.
func (r *GapResource) Horizon() int64 { return r.horizon }

// Reserve books the service of bytes starting no earlier than now,
// returning the service interval. Earlier idle gaps are used when they fit.
func (r *GapResource) Reserve(now, bytes int64) (start, end int64) {
	return r.ReserveDur(now, TransferTime(bytes, r.rate), bytes)
}

// ReserveDur books an explicit duration starting no earlier than now.
func (r *GapResource) ReserveDur(now, dur, bytes int64) (start, end int64) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: ReserveDur with negative duration on %s", r.name))
	}
	r.busy += dur
	r.reserved += bytes
	if dur == 0 {
		return now, now
	}
	// First-fit into an existing gap.
	for i, g := range r.gaps {
		s := g.start
		if now > s {
			s = now
		}
		if s+dur <= g.end {
			r.carveGap(i, s, s+dur)
			return s, s + dur
		}
	}
	start = now
	if r.horizon > start {
		start = r.horizon
	}
	if start > r.horizon {
		r.addGap(r.horizon, start)
	}
	end = start + dur
	r.horizon = end
	return start, end
}

// FreeFrom returns the earliest start s >= t at which the resource can
// serve an uninterrupted duration dur (looking first at idle gaps, then the
// horizon). It does not book anything.
func (r *GapResource) FreeFrom(t, dur int64) int64 {
	if dur <= 0 {
		return t
	}
	for _, g := range r.gaps {
		s := g.start
		if t > s {
			s = t
		}
		if s+dur <= g.end {
			return s
		}
	}
	if t > r.horizon {
		return t
	}
	return r.horizon
}

// ReserveAt books exactly [t, t+dur); the caller must have found the slot
// with FreeFrom (coordinated multi-resource booking). Booking beyond the
// horizon records the skipped idle time as a gap.
func (r *GapResource) ReserveAt(t, dur, bytes int64) {
	r.busy += dur
	r.reserved += bytes
	if dur <= 0 {
		return
	}
	if t >= r.horizon {
		r.addGap(r.horizon, t)
		r.horizon = t + dur
		return
	}
	for i, g := range r.gaps {
		if g.start <= t && t+dur <= g.end {
			r.carveGap(i, t, t+dur)
			return
		}
	}
	// The slot was taken between FreeFrom and ReserveAt (coordination
	// bailed); push it past the horizon — conservative but safe.
	r.addGap(r.horizon, t)
	if t+dur > r.horizon {
		r.horizon = t + dur
	}
}

// ReserveTogether books a common service interval of length dur on every
// resource, starting no earlier than now: the earliest instant all
// resources are simultaneously free. This is the wormhole-routing booking
// primitive — a flow occupies its whole path at once.
func ReserveTogether(now, dur, bytes int64, resources []*GapResource) (start, end int64) {
	t := now
	for iter := 0; iter < 64; iter++ {
		t2 := t
		for _, r := range resources {
			if s := r.FreeFrom(t2, dur); s > t2 {
				t2 = s
			}
		}
		if t2 == t {
			break
		}
		t = t2
	}
	for _, r := range resources {
		r.ReserveAt(t, dur, bytes)
	}
	return t, t + dur
}

// carveGap removes [s,e) from gap i, keeping the remainders.
func (r *GapResource) carveGap(i int, s, e int64) {
	g := r.gaps[i]
	r.gaps = append(r.gaps[:i], r.gaps[i+1:]...)
	if g.start < s {
		r.insertGap(gapInterval{g.start, s})
	}
	if e < g.end {
		r.insertGap(gapInterval{e, g.end})
	}
}

func (r *GapResource) addGap(s, e int64) {
	if e <= s {
		return
	}
	r.insertGap(gapInterval{s, e})
}

func (r *GapResource) insertGap(g gapInterval) {
	if r.gaps == nil {
		// Start small and let append grow geometrically toward the cap:
		// most resources keep a handful of gaps, and a full-cap upfront
		// allocation per resource adds up at paper scale. Removals shift in
		// place (carveGap) rather than re-slicing, so capacity never bleeds.
		r.gaps = make([]gapInterval, 0, 8)
	}
	// Keep sorted by start; drop the oldest when over capacity.
	pos := len(r.gaps)
	for i, x := range r.gaps {
		if g.start < x.start {
			pos = i
			break
		}
	}
	r.gaps = append(r.gaps, gapInterval{})
	copy(r.gaps[pos+1:], r.gaps[pos:])
	r.gaps[pos] = g
	if len(r.gaps) > maxGaps {
		copy(r.gaps, r.gaps[1:])
		r.gaps = r.gaps[:maxGaps]
	}
}
