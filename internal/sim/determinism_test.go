package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// runChaos builds a pseudo-random simulation from seed and returns a trace
// fingerprint: the sequence of (proc, time) observations at every step, plus
// final resource states. Two runs from the same seed must produce identical
// fingerprints — the engine's core determinism guarantee.
func runChaos(seed int64, procs, steps int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	e := NewEngine()
	res := []*Resource{
		NewResource("r0", 1000),
		NewResource("r1", 5000),
		NewResource("r2", 250),
	}
	b := NewBarrier("b", procs, nil)
	mb := NewMailbox("mb")
	var trace []int64

	// Pre-generate each proc's action script so goroutine scheduling cannot
	// perturb random number consumption. Kind 2 (barrier) appears a fixed
	// number of times per proc so the barrier cannot deadlock.
	type action struct{ kind, arg int }
	const barriersPerProc = 3
	scripts := make([][]action, procs)
	for i := range scripts {
		scripts[i] = make([]action, steps)
		for j := range scripts[i] {
			kind := []int{0, 1, 3}[rng.Intn(3)]
			scripts[i][j] = action{kind: kind, arg: rng.Intn(1000) + 1}
		}
		// Overwrite fixed slots with barrier waits, aligned across procs.
		for k := 0; k < barriersPerProc; k++ {
			scripts[i][k*steps/barriersPerProc] = action{kind: 2}
		}
	}

	for i := 0; i < procs; i++ {
		script := scripts[i]
		id := int64(i)
		e.Spawn("chaos", func(p *Proc) {
			for _, a := range script {
				switch a.kind {
				case 0:
					p.Hold(int64(a.arg))
				case 1:
					res[a.arg%len(res)].Use(p, int64(a.arg))
				case 2:
					b.Wait(p)
				case 3:
					mb.Deliver(Message{Arrival: p.Now() + int64(a.arg), Key: id})
					p.Hold(1)
				}
				trace = append(trace, id, p.Now())
			}
		})
	}
	if err := e.Run(); err != nil {
		// Identical seeds must fail identically too.
		trace = append(trace, int64(len(err.Error())))
	}
	for _, r := range res {
		trace = append(trace, r.NextFree(), r.BusyTime(), r.BytesServed())
	}
	return trace
}

func TestDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := runChaos(seed, 8, 20)
		b := runChaos(seed, 8, 20)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTimeMonotonicProperty: a proc's observed clock never decreases, no
// matter what mixture of primitives it runs.
func TestTimeMonotonicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewResource("r", float64(rng.Intn(10000)+1))
		ok := true
		const procs = 6
		scripts := make([][]int, procs)
		for i := range scripts {
			scripts[i] = make([]int, 30)
			for j := range scripts[i] {
				scripts[i][j] = rng.Intn(500)
			}
		}
		for i := 0; i < procs; i++ {
			script := scripts[i]
			e.Spawn("m", func(p *Proc) {
				last := p.Now()
				for _, v := range script {
					if v%2 == 0 {
						p.Hold(int64(v))
					} else {
						r.Use(p, int64(v))
					}
					if p.Now() < last {
						ok = false
					}
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestResourceConservationProperty: busy time equals the sum of service
// durations, and bytes served equals the sum of requested bytes.
func TestResourceConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rate := float64(rng.Intn(9999) + 1)
		e := NewEngine()
		r := NewResource("r", rate)
		var wantBytes, wantBusy int64
		const procs = 5
		reqs := make([][]int64, procs)
		for i := range reqs {
			reqs[i] = make([]int64, 10)
			for j := range reqs[i] {
				b := int64(rng.Intn(5000))
				reqs[i][j] = b
				wantBytes += b
				wantBusy += TransferTime(b, rate)
			}
		}
		for i := 0; i < procs; i++ {
			mine := reqs[i]
			e.Spawn("u", func(p *Proc) {
				for _, b := range mine {
					r.Use(p, b)
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return r.BytesServed() == wantBytes && r.BusyTime() == wantBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestNoIdleWhileQueueProperty: with a single always-busy resource fed by
// procs that request back-to-back, total busy time equals makespan (the
// resource never idles while work is queued).
func TestNoIdleWhileQueueProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewResource("r", 1000)
		const procs = 4
		var total int64
		sizes := make([][]int64, procs)
		for i := range sizes {
			sizes[i] = make([]int64, 8)
			for j := range sizes[i] {
				b := int64(rng.Intn(900) + 100)
				sizes[i][j] = b
				total += TransferTime(b, 1000)
			}
		}
		for i := 0; i < procs; i++ {
			mine := sizes[i]
			e.Spawn("u", func(p *Proc) {
				for _, b := range mine {
					r.Use(p, b)
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		// All procs start at t=0 and re-request immediately, so the resource
		// serves continuously: makespan == total busy time.
		return e.Now() == total && r.BusyTime() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkContextSwitch(b *testing.B) {
	e := NewEngine()
	n := b.N
	e.Spawn("spinner", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Hold(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkResourceUse(b *testing.B) {
	e := NewEngine()
	r := NewResource("r", 1e9)
	n := b.N
	e.Spawn("user", func(p *Proc) {
		for i := 0; i < n; i++ {
			r.Use(p, 1024)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
