// Shape search: enumerate the candidate families, price each over the
// session's partitions, greedily refine the fan-in, and keep the cheapest —
// the beam here is width one over a structured menu, which is enough because
// the families are few and the fan-in landscape is unimodal in practice
// (ingest shrinks as L/k + k, convex in k).
package tree

import "tapioca/internal/cost"

// Partition is one aggregation partition as the search sees it: its members
// in local-rank order and the elected aggregator's member index.
type Partition struct {
	Members []cost.Member
	Root    int
}

// SearchOptions configures a shape search.
type SearchOptions struct {
	Price PriceOptions
	// Menu overrides the candidate shapes. Empty means the default menu:
	// flat, staged, group, chain, and fan-in 2/4/8/16 seeds with greedy
	// refinement around the best seed.
	Menu []Shape
}

// Result is the search's pick.
type Result struct {
	Shape   Shape
	Seconds float64 // summed predicted aggregation seconds over partitions
	Levels  int     // max tree depth over partitions under the picked shape
	FanIn   int     // max achieved fan-in over partitions
}

// Search prices candidate shapes over the partitions and returns the best.
// Ties break toward the earlier menu entry, and the default menu lists the
// degenerate shapes first — so on a fabric where trees buy nothing, the
// search answers "flat" and the session takes exactly today's path. The
// search is deterministic: same inputs, same pick.
func Search(m *cost.Model, parts []Partition, g Grouper, opt SearchOptions) Result {
	menu := opt.Menu
	refine := false
	if len(menu) == 0 {
		menu = []Shape{
			{Kind: Flat},
			{Kind: NodeStaged},
			{Kind: GroupTree},
			{Kind: Chain},
			{Kind: FanIn, K: 2},
			{Kind: FanIn, K: 4},
			{Kind: FanIn, K: 8},
			{Kind: FanIn, K: 16},
		}
		refine = true
	}

	type prepped struct {
		leaders []Leader
		root    int
	}
	pp := make([]prepped, 0, len(parts))
	for _, p := range parts {
		if len(p.Members) == 0 {
			continue
		}
		leaders, starts := Leaders(p.Members)
		pp = append(pp, prepped{leaders: leaders, root: RootLeader(starts, p.Root)})
	}
	price := func(s Shape) Result {
		r := Result{Shape: s}
		for i, p := range pp {
			t := Build(s, p.leaders, p.root, g)
			r.Seconds += Price(m, t, p.leaders, parts[i].Members, parts[i].Root, opt.Price)
			if t.Levels > r.Levels {
				r.Levels = t.Levels
			}
			if t.MaxFanIn > r.FanIn {
				r.FanIn = t.FanIn()
			}
		}
		return r
	}

	best := price(menu[0])
	for _, s := range menu[1:] {
		if r := price(s); r.Seconds < best.Seconds {
			best = r
		}
	}
	if refine && best.Shape.Kind == FanIn {
		// Greedy neighborhood walk around the winning seed: step K by ±1
		// while it strictly improves.
		for {
			improved := false
			for _, k := range []int{best.Shape.K - 1, best.Shape.K + 1} {
				if k < 2 {
					continue
				}
				if r := price(Shape{Kind: FanIn, K: k}); r.Seconds < best.Seconds {
					best, improved = r, true
				}
			}
			if !improved {
				break
			}
		}
	}
	return best
}

// FanIn returns the tree's achieved maximum fan-in (exported for reports).
func (t *Tree) FanIn() int { return t.MaxFanIn }
