package tree

import (
	"math/rand"
	"testing"

	"tapioca/internal/cost"
	"tapioca/internal/topology"
)

// randMembers builds a random member list over consecutive nodes with rpn
// ranks per node and random (occasionally zero) volumes.
func randMembers(rng *rand.Rand, ranks, rpn, firstNode int) []cost.Member {
	out := make([]cost.Member, ranks)
	for i := range out {
		b := rng.Int63n(1 << 16)
		if rng.Intn(8) == 0 {
			b = 0
		}
		out[i] = cost.Member{Node: firstNode + i/rpn, Bytes: b}
	}
	return out
}

// shapeMenu is every family with a spread of fan-ins.
func shapeMenu() []Shape {
	return []Shape{
		{Kind: Flat}, {Kind: NodeStaged},
		{Kind: FanIn, K: 2}, {Kind: FanIn, K: 3}, {Kind: FanIn, K: 5}, {Kind: FanIn, K: 8},
		{Kind: GroupTree}, {Kind: Chain},
	}
}

// TestBuildInvariants fuzzes every shape over random partitions and checks
// the structural contract the data plane depends on: a single root, acyclic
// parents, and every subtree a contiguous leader span (Build panics on
// violation, so reaching the end is the assertion); plus the explicit
// bounds: FanIn respects K at the root, degenerate shapes have ≤ 1 level.
func TestBuildInvariants(t *testing.T) {
	tor := topology.MiraTorus(128)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		ranks := 1 + rng.Intn(64)
		rpn := 1 + rng.Intn(4)
		members := randMembers(rng, ranks, rpn, rng.Intn(32))
		leaders, starts := Leaders(members)
		root := RootLeader(starts, rng.Intn(ranks))
		for _, s := range shapeMenu() {
			tr := Build(s, leaders, root, GrouperOf(tor))
			if tr.Parent[tr.Root] != -1 || tr.Depth[tr.Root] != 0 {
				t.Fatalf("%s: bad root %d (parent %d depth %d)", s, tr.Root, tr.Parent[tr.Root], tr.Depth[tr.Root])
			}
			if lo, hi := tr.Span(tr.Root); lo != 0 || hi != len(leaders) {
				t.Fatalf("%s: root spans [%d,%d) of %d leaders", s, lo, hi, len(leaders))
			}
			if s.Degenerate() && tr.Levels > 1 {
				t.Fatalf("%s: degenerate shape built %d levels", s, tr.Levels)
			}
			if s.Kind == FanIn && tr.MaxFanIn > s.fanK()+1 {
				t.Fatalf("fanin:%d built fan-in %d", s.fanK(), tr.MaxFanIn)
			}
		}
	}
}

// TestChainIsOrdered pins the chain family's defining property on a torus:
// relays forward strictly toward the root in leader order, so depth grows
// monotonically with distance from the root's group — the dimension-ordered
// staging chain.
func TestChainIsOrdered(t *testing.T) {
	tor := topology.MiraTorus(256) // PsetSize 128 → 2 groups
	members := make([]cost.Member, 0, 64)
	for n := 0; n < 256; n += 8 { // 32 nodes spanning both Psets
		members = append(members, cost.Member{Node: n, Bytes: 1}, cost.Member{Node: n, Bytes: 1})
	}
	leaders, starts := Leaders(members)
	tr := Build(Shape{Kind: Chain}, leaders, RootLeader(starts, 0), GrouperOf(tor))
	for v := 1; v < len(leaders); v++ {
		if tr.Parent[v] > v {
			t.Fatalf("chain vertex %d forwards away from the root (parent %d)", v, tr.Parent[v])
		}
	}
}

// TestPriceDegeneracy is the shared-helper contract of the cost fix: with
// one rank per node every node group is a singleton, so (a) the two-level
// price must collapse to exactly the flat §IV-B candidacy cost — both now
// route through cost.Model.EdgeCost — and (b) the tree pricer's degenerate
// shapes must reproduce AggregationCost and TwoLevelCost bit-for-bit, for
// the flat and staged trees respectively.
func TestPriceDegeneracy(t *testing.T) {
	topo := topology.ThetaDragonfly(768, topology.RouteMinimal)
	m := cost.NewModel(topo)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		ranks := 2 + rng.Intn(48)
		members := randMembers(rng, ranks, 1, rng.Intn(256)) // rpn=1: singleton groups
		root := rng.Intn(ranks)

		flat := m.AggregationCost(members, root)
		twoLevel := m.TwoLevelCost(members, root, 0)
		if flat != twoLevel {
			t.Fatalf("rpn=1: TwoLevelCost %.9g != AggregationCost %.9g", twoLevel, flat)
		}

		leaders, starts := Leaders(members)
		rl := RootLeader(starts, root)
		ft := Build(Shape{Kind: Flat}, leaders, rl, nil)
		if got := Price(m, ft, leaders, members, root, PriceOptions{}); got != flat {
			t.Fatalf("flat tree price %.9g != AggregationCost %.9g", got, flat)
		}
		st := Build(Shape{Kind: NodeStaged}, leaders, rl, nil)
		if got := Price(m, st, leaders, members, root, PriceOptions{}); got != twoLevel {
			t.Fatalf("staged tree price %.9g != TwoLevelCost %.9g", got, twoLevel)
		}
	}
}

// TestSearchPicksFlatOnCleanFabric: with no per-message penalty and an
// honest fence charge, interior levels only add cost, so the search must
// answer with a degenerate shape — this is the "where flat still wins" half
// of the abl-tree claim, pinned at unit level.
func TestSearchPicksFlatOnCleanFabric(t *testing.T) {
	topo := topology.ThetaDragonfly(768, topology.RouteMinimal)
	m := cost.NewModel(topo)
	rng := rand.New(rand.NewSource(13))
	members := randMembers(rng, 16, 4, 0)
	res := Search(m, []Partition{{Members: members, Root: 0}}, GrouperOf(topo),
		SearchOptions{Price: PriceOptions{FenceSeconds: 1e-4}})
	if !res.Shape.Degenerate() {
		t.Fatalf("clean fabric picked %s (%.3gs), want a degenerate shape", res.Shape, res.Seconds)
	}
}

// TestSearchPicksTreeUnderLoss: a large lossy incast — many node groups, a
// heavy expected per-message stall — must flip the search to an interior
// shape: serializing 256 retransmit-prone messages on one NIC costs more
// than two short levels plus a fence.
func TestSearchPicksTreeUnderLoss(t *testing.T) {
	topo := topology.ThetaDragonfly(768, topology.RouteMinimal)
	m := cost.NewModel(topo)
	members := make([]cost.Member, 256)
	for i := range members {
		members[i] = cost.Member{Node: i, Bytes: 64 << 10}
	}
	res := Search(m, []Partition{{Members: members, Root: 0}}, GrouperOf(topo),
		SearchOptions{Price: PriceOptions{PerMessageSeconds: 5e-5, FenceSeconds: 1e-4}})
	if res.Shape.Degenerate() {
		t.Fatalf("lossy 256-node incast picked %s, want an interior shape", res.Shape)
	}
	if res.Levels < 2 {
		t.Fatalf("interior shape %s reports %d levels", res.Shape, res.Levels)
	}
}

// TestParseShape round-trips the textual forms.
func TestParseShape(t *testing.T) {
	for _, s := range []string{"flat", "staged", "fanin:2", "fanin:16", "group", "chain"} {
		sh, err := ParseShape(s)
		if err != nil {
			t.Fatalf("ParseShape(%q): %v", s, err)
		}
		if sh.String() != s {
			t.Fatalf("ParseShape(%q) round-trips as %q", s, sh)
		}
	}
	for _, s := range []string{"", "ring", "fanin", "fanin:1", "group:3"} {
		if s == "fanin" {
			continue // bare fanin defaults K=8, legal
		}
		if _, err := ParseShape(s); err == nil {
			t.Fatalf("ParseShape(%q) accepted", s)
		}
	}
}
