// Tree pricing: the §IV-B cost model generalized from one reduction level to
// many. Every byte movement is priced through cost.Model.EdgeCost — the same
// helper TwoLevelCost uses — so intra-node memory-bandwidth pricing cannot
// drift between the two-level price and the tree price (the shared-helper
// contract pinned by TestPriceDegeneracy).
package tree

import "tapioca/internal/cost"

// PriceOptions extends the pure bandwidth/latency model with the terms that
// make interior levels worth their overhead.
type PriceOptions struct {
	// PerMessageSeconds is the expected extra receiver occupancy per
	// incoming fabric message — on a lossy fabric, loss-rate × retransmit
	// penalty. Messages into one receiver serialize; receivers of one level
	// progress in parallel. Zero (the clean-fabric default) reproduces the
	// paper's pure model, under which flat shapes win and the search
	// degenerates accordingly.
	PerMessageSeconds float64
	// FenceSeconds is the synchronization cost of one interior level: every
	// extra tree level costs one more window fence across the partition's
	// ranks. Zero undercounts fences and over-rewards deep shapes; callers
	// should pass the same 2·log₂(P+1)·α the pipeline predictor charges.
	FenceSeconds float64
}

// Price returns the aggregation seconds of one partition's stream under the
// concrete tree t. members are the partition's members in local-rank order,
// rootMember the elected aggregator's index among them; leaders must be
// Leaders(members) and t built over them. The I/O term C2 is excluded, as in
// the tuner's aggregationSeconds: the flush estimator prices storage.
//
// The degenerate shapes do not re-derive their price: Flat delegates to
// cost.Model.AggregationCost and NodeStaged to cost.Model.TwoLevelCost, so a
// degenerate tree prices *identically* to the path it collapses into (plus
// the per-message term, which is zero in the defaults those paths use).
func Price(m *cost.Model, t *Tree, leaders []Leader, members []cost.Member, rootMember int, opt PriceOptions) float64 {
	switch t.Shape.Kind {
	case Flat:
		return m.AggregationCost(members, rootMember) +
			opt.PerMessageSeconds*float64(flatMessages(members, rootMember))
	case NodeStaged:
		return m.TwoLevelCost(members, rootMember, 0) +
			opt.PerMessageSeconds*float64(stagedMessages(t, leaders))
	}

	rootNode := leaders[t.Root].Node
	var secs float64

	// Base level: co-located members merge into their node leader's staging
	// buffer at memory bandwidth — the same merge terms TwoLevelCost books.
	// The root's own node group does not stage (its members put straight
	// into the aggregation window, priced as the root-level local edges
	// below), matching the data plane's setupStaging exclusion.
	starts := memberStarts(leaders, members)
	for li, l := range leaders {
		if l.Node == rootNode || l.Bytes == 0 {
			continue
		}
		leaderBytes := members[starts[li]].Bytes
		secs += m.EdgeCost(l.Node, l.Node, l.Bytes-leaderBytes)
	}
	// Root-group members ship individually to the root across node memory.
	for i := starts[t.Root]; i < starts[t.Root+1]; i++ {
		if i != rootMember && members[i].Bytes > 0 {
			secs += m.EdgeCost(rootNode, rootNode, members[i].Bytes)
		}
	}

	// Interior levels, deepest first: each level's wall time is the slowest
	// receiver's serialized ingest (its incoming messages queue on its NIC;
	// distinct receivers progress in parallel), and each level past the
	// first costs one extra fence.
	subtree := t.subtreeBytes(leaders)
	for level := t.Levels; level >= 1; level-- {
		ingest := map[int]float64{} // receiving vertex → serialized seconds
		for v, p := range t.Parent {
			if p < 0 || t.Depth[v] != level || subtree[v] == 0 {
				continue
			}
			ingest[p] += opt.PerMessageSeconds + m.EdgeCost(leaders[v].Node, leaders[p].Node, subtree[v])
		}
		var slowest float64
		for _, s := range ingest {
			if s > slowest {
				slowest = s
			}
		}
		secs += slowest
		if level > 1 {
			secs += opt.FenceSeconds
		}
	}
	return secs
}

// subtreeBytes returns, per vertex, the data volume its subtree forwards.
func (t *Tree) subtreeBytes(leaders []Leader) []int64 {
	out := make([]int64, len(leaders))
	for v, l := range leaders {
		for a := v; a >= 0; a = t.Parent[a] {
			out[a] += l.Bytes
		}
	}
	return out
}

// memberStarts recovers the leader→member boundaries for a leader list built
// by Leaders (run-length over consecutive equal nodes).
func memberStarts(leaders []Leader, members []cost.Member) []int {
	starts := make([]int, 0, len(leaders)+1)
	for i, mb := range members {
		if i == 0 || mb.Node != members[i-1].Node {
			starts = append(starts, i)
		}
	}
	starts = append(starts, len(members))
	if len(starts) != len(leaders)+1 {
		panic("tree: leader list does not match member list")
	}
	return starts
}

// flatMessages counts the fabric messages a flat exchange lands on the root:
// one per active member on a remote node (intra-node puts never touch the
// fabric, so loss cannot stretch them).
func flatMessages(members []cost.Member, rootMember int) int {
	rootNode := members[rootMember].Node
	n := 0
	for i, mb := range members {
		if i != rootMember && mb.Bytes > 0 && mb.Node != rootNode {
			n++
		}
	}
	return n
}

// stagedMessages counts the node-staged exchange's fabric messages: one
// coalesced message per active remote node group.
func stagedMessages(t *Tree, leaders []Leader) int {
	rootNode := leaders[t.Root].Node
	n := 0
	for _, l := range leaders {
		if l.Bytes > 0 && l.Node != rootNode {
			n++
		}
	}
	return n
}
