// Package tree synthesizes multi-level aggregation trees per (topology,
// workload), generalizing TAPIOCA's fixed two-phase reduction the way TACOS
// synthesizes a collective per fabric instead of picking from a menu. A
// partition's members collapse onto their node groups (the same grouping the
// two-level cost model and the intra-node staging data plane use); the tree
// arranges those node-group leaders into interior reduction levels rooted at
// the elected aggregator. The flat two-phase exchange and the node-staged
// variant are degenerate shapes of the same family, so a searched plan can
// always fall back to exactly today's paths.
//
// Every shape preserves one structural invariant the data plane depends on:
// a vertex's subtree always covers a contiguous span of partition-local
// ranks. The planner assigns round-buffer offsets in ascending local-rank
// order, so a contiguous rank span owns a contiguous buffer-offset range
// every round — which is what lets an interior relay forward its whole
// subtree as one coalesced put instead of re-fragmenting into per-piece
// messages (the TPIE discipline: levels stream through existing window
// memory, no per-hop re-staging).
package tree

import (
	"fmt"
	"strconv"
	"strings"

	"tapioca/internal/cost"
)

// Kind enumerates the aggregation-tree shape families the search explores.
type Kind int

const (
	// Flat is today's default two-phase exchange: every member ships its
	// pieces straight to the aggregator. Degenerate — no tree machinery runs.
	Flat Kind = iota
	// NodeStaged is the intra-node pre-aggregation variant: members deposit
	// into their node leader, one coalesced message per node goes straight to
	// the aggregator. Degenerate — identical to Config.IntraNodeStaging.
	NodeStaged
	// FanIn bounds every interior vertex to at most K children by inserting
	// relay levels over contiguous runs of node leaders.
	FanIn
	// GroupTree elects one relay per topology locality group (dragonfly
	// group, torus Pset): leaders reduce into their group's relay, relays
	// ship one message each to the aggregator.
	GroupTree
	// Chain orders the group relays by node id — dimension-ordered on a
	// torus, where consecutive node ids walk the sub-box — and daisy-chains
	// them toward the aggregator, so every fabric hop is neighbor-to-neighbor.
	Chain
)

var kindNames = [...]string{"flat", "staged", "fanin", "group", "chain"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Shape is one searched tree configuration: the family plus its parameter.
// The zero value is the flat degenerate.
type Shape struct {
	Kind Kind
	// K is the FanIn bound (ignored by other kinds). Values < 2 mean 2.
	K int
}

func (s Shape) String() string {
	if s.Kind == FanIn {
		return fmt.Sprintf("fanin:%d", s.fanK())
	}
	return s.Kind.String()
}

func (s Shape) fanK() int {
	if s.K < 2 {
		return 2
	}
	return s.K
}

// Degenerate reports whether the shape reduces to an existing non-tree path
// (flat two-phase or node-staged) and needs no interior levels.
func (s Shape) Degenerate() bool { return s.Kind == Flat || s.Kind == NodeStaged }

// Staged reports whether the shape's base level is intra-node staging. Every
// tree shape stages except the flat degenerate: interior relays only make
// sense once per-node traffic is already coalesced.
func (s Shape) Staged() bool { return s.Kind != Flat }

// ParseShape parses the textual form used by hints, flags and reports:
// "flat", "staged", "group", "chain", or "fanin:K".
func ParseShape(text string) (Shape, error) {
	name, arg, hasArg := strings.Cut(strings.TrimSpace(text), ":")
	for k, n := range kindNames {
		if name != n {
			continue
		}
		s := Shape{Kind: Kind(k)}
		if hasArg {
			if s.Kind != FanIn {
				return Shape{}, fmt.Errorf("tree: shape %q takes no parameter", name)
			}
			v, err := strconv.Atoi(arg)
			if err != nil || v < 2 {
				return Shape{}, fmt.Errorf("tree: bad fan-in %q (want integer ≥ 2)", arg)
			}
			s.K = v
		} else if s.Kind == FanIn {
			s.K = 8
		}
		return s, nil
	}
	return Shape{}, fmt.Errorf("tree: unknown shape %q (want flat|staged|fanin:K|group|chain)", text)
}

// Grouper is the topology hook GroupTree and Chain cluster around: the
// fabric's locality group of a node (dragonfly group, torus Pset). The
// interface is structural so topologies need not import this package.
type Grouper interface{ GroupOf(node int) int }

// GrouperOf extracts the locality-group hook from an arbitrary topology, or
// nil when the fabric exposes none (group shapes then collapse to one global
// group, i.e. the node-staged degenerate).
func GrouperOf(topo any) Grouper {
	if g, ok := topo.(Grouper); ok {
		return g
	}
	return nil
}

// Leader is one node group of a partition as the tree sees it: the compute
// node and the group's declared data volume (structure never depends on the
// volumes; pricing does).
type Leader struct {
	Node  int
	Bytes int64
}

// Leaders collapses a partition's members (ordered by partition-local rank)
// into node groups by run-length over consecutive equal nodes, and returns
// the group list plus the member-index boundaries: leader i covers members
// [starts[i], starts[i+1]). Run-length grouping — rather than a global
// node→group map — is what keeps every group a contiguous local-rank span
// even under exotic rank-to-node mappings.
func Leaders(members []cost.Member) (leaders []Leader, starts []int) {
	for i, m := range members {
		if i == 0 || m.Node != members[i-1].Node {
			leaders = append(leaders, Leader{Node: m.Node})
			starts = append(starts, i)
		}
		leaders[len(leaders)-1].Bytes += m.Bytes
	}
	starts = append(starts, len(members))
	return leaders, starts
}

// RootLeader returns the index of the leader group containing member root.
func RootLeader(starts []int, root int) int {
	for i := 0; i+1 < len(starts); i++ {
		if root >= starts[i] && root < starts[i+1] {
			return i
		}
	}
	panic(fmt.Sprintf("tree: root member %d outside leader spans %v", root, starts))
}

// Tree is one concrete reduction tree over a partition's node-group leaders,
// rooted at the aggregator's group. Vertices are leader indices; Parent[v]
// is the leader index v forwards its subtree to (-1 for the root), Depth[v]
// the hop count to the root. Levels is the maximum depth: a flat or
// node-staged tree has Levels ≤ 1 (everything rides the main exchange), and
// each extra level is one interior forwarding phase in the pipeline.
type Tree struct {
	Shape  Shape
	Root   int
	Parent []int
	Depth  []int
	Levels int
	// MaxFanIn is the largest child count over receiving vertices (the root
	// included) — the fan-in the shape actually achieved.
	MaxFanIn int
	// spanLo/spanHi are each vertex's subtree as a leader-index span [lo,hi).
	spanLo, spanHi []int
}

// Span returns vertex v's subtree as a half-open leader-index span. The
// build guarantees the span is exactly the subtree (contiguity invariant).
func (t *Tree) Span(v int) (lo, hi int) { return t.spanLo[v], t.spanHi[v] }

// Children returns the child vertices of v in ascending leader order.
func (t *Tree) Children(v int) []int {
	var out []int
	for c, p := range t.Parent {
		if p == v {
			out = append(out, c)
		}
	}
	return out
}

// Build constructs the concrete tree for a shape over a partition's leader
// list, rooted at leader index root. g supplies topology locality groups for
// GroupTree/Chain; a nil g collapses those shapes to one global group (the
// node-staged degenerate). Build panics if a shape would violate the
// contiguous-subtree invariant — that is an internal bug, not an input error.
func Build(shape Shape, leaders []Leader, root int, g Grouper) *Tree {
	n := len(leaders)
	if root < 0 || root >= n {
		panic(fmt.Sprintf("tree: root leader %d of %d", root, n))
	}
	t := &Tree{Shape: shape, Root: root, Parent: make([]int, n)}
	for i := range t.Parent {
		t.Parent[i] = root
	}
	t.Parent[root] = -1

	switch shape.Kind {
	case Flat, NodeStaged:
		// Everyone already points at the root.
	case FanIn:
		k := shape.fanK()
		// The root splits the leader order into up to two contiguous runs;
		// chunks never straddle the root's position, so every subtree span
		// stays contiguous. The root's child budget k is split across the
		// two runs proportionally to their sizes.
		left, right := root, n-1-root
		kl := 0
		switch {
		case left > 0 && right > 0:
			kl = (k*left + (left+right)/2) / (left + right)
			if kl < 1 {
				kl = 1
			}
			if kl > k-1 {
				kl = k - 1
			}
		case left > 0:
			kl = k
		}
		attachFanIn(t, run(0, root), root, kl, k)
		attachFanIn(t, run(root+1, n), root, k-kl, k)
	case GroupTree, Chain:
		runs := groupRuns(leaders, g)
		var pre, post []int // relay vertices left and right of the root's run
		for _, ru := range runs {
			if root >= ru[0] && root < ru[1] {
				continue // the root's own run attaches directly to the root
			}
			relay := ru[0]
			for v := ru[0] + 1; v < ru[1]; v++ {
				t.Parent[v] = relay
			}
			if ru[1] <= root {
				pre = append(pre, relay)
			} else {
				post = append(post, relay)
			}
		}
		if shape.Kind == Chain {
			// Daisy-chain each side toward the root: relays before the
			// root's run forward to the next relay, relays after it to the
			// previous one. A relay's subtree is then every run between it
			// and its side's far end — still a contiguous span.
			for i := 0; i+1 < len(pre); i++ {
				t.Parent[pre[i]] = pre[i+1]
			}
			for i := 1; i < len(post); i++ {
				t.Parent[post[i]] = post[i-1]
			}
		}
	default:
		panic(fmt.Sprintf("tree: unknown shape kind %d", shape.Kind))
	}
	t.finish()
	return t
}

// run materializes the contiguous index run [lo,hi) (empty when lo ≥ hi).
func run(lo, hi int) []int {
	if lo >= hi {
		return nil
	}
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// attachFanIn hangs the contiguous run of vertices under parent, spending at
// most budget direct children of parent and at most k children anywhere
// below: the run splits into at most budget balanced contiguous chunks, each
// chunk's first vertex relays for the rest, recursively with the full bound.
func attachFanIn(t *Tree, vs []int, parent, budget, k int) {
	if len(vs) == 0 {
		return
	}
	if len(vs) <= budget {
		for _, v := range vs {
			t.Parent[v] = parent
		}
		return
	}
	chunks := budget
	if chunks > len(vs) {
		chunks = len(vs)
	}
	for c := 0; c < chunks; c++ {
		lo := c * len(vs) / chunks
		hi := (c + 1) * len(vs) / chunks
		relay := vs[lo]
		t.Parent[relay] = parent
		attachFanIn(t, vs[lo+1:hi], relay, k, k)
	}
}

// groupRuns splits the leader order into maximal runs of equal locality
// group. Group changes delimit runs even if a group id reappears later, so
// runs are always contiguous spans regardless of the node mapping.
func groupRuns(leaders []Leader, g Grouper) [][2]int {
	groupOf := func(node int) int { return 0 }
	if g != nil {
		groupOf = g.GroupOf
	}
	var runs [][2]int
	for i := range leaders {
		if i == 0 || groupOf(leaders[i].Node) != groupOf(leaders[i-1].Node) {
			runs = append(runs, [2]int{i, i})
		}
		runs[len(runs)-1][1] = i + 1
	}
	return runs
}

// finish derives depths, levels, fan-in and subtree spans from the parent
// array, and checks the contiguity invariant.
func (t *Tree) finish() {
	n := len(t.Parent)
	t.Depth = make([]int, n)
	for v := range t.Depth {
		t.Depth[v] = -1
	}
	t.Depth[t.Root] = 0
	var depthOf func(v int) int
	depthOf = func(v int) int {
		if t.Depth[v] >= 0 {
			return t.Depth[v]
		}
		t.Depth[v] = -2 // cycle sentinel
		p := t.Parent[v]
		if p < 0 || p >= n {
			panic(fmt.Sprintf("tree: vertex %d has parent %d", v, p))
		}
		d := depthOf(p)
		if d < 0 {
			panic(fmt.Sprintf("tree: cycle through vertex %d", v))
		}
		t.Depth[v] = d + 1
		return t.Depth[v]
	}
	fanIn := make([]int, n)
	for v := range t.Parent {
		d := depthOf(v)
		if d > t.Levels {
			t.Levels = d
		}
		if p := t.Parent[v]; p >= 0 {
			fanIn[p]++
		}
	}
	for _, f := range fanIn {
		if f > t.MaxFanIn {
			t.MaxFanIn = f
		}
	}
	t.spanLo, t.spanHi = make([]int, n), make([]int, n)
	size := make([]int, n)
	for v := 0; v < n; v++ {
		t.spanLo[v], t.spanHi[v] = v, v+1
	}
	// Fold every vertex into its ancestors; vertex order is irrelevant for
	// min/max span folding.
	for v := 0; v < n; v++ {
		for a := v; a >= 0; a = t.Parent[a] {
			if v < t.spanLo[a] {
				t.spanLo[a] = v
			}
			if v+1 > t.spanHi[a] {
				t.spanHi[a] = v + 1
			}
			size[a]++
		}
	}
	for v := 0; v < n; v++ {
		if size[v] != t.spanHi[v]-t.spanLo[v] {
			panic(fmt.Sprintf("tree: %s subtree of vertex %d covers %d leaders but spans [%d,%d) — contiguity broken",
				t.Shape, v, size[v], t.spanLo[v], t.spanHi[v]))
		}
	}
}
