package dataplane

import (
	"math/rand"
	"testing"

	"tapioca/internal/storage"
)

// BenchmarkDataPlane measures the host byte path in MB/s (b.SetBytes): the
// zero-copy gather/scatter against the PR-5 two-copy baseline, coalesced
// store I/O against the per-run baseline, the parallel checksum against the
// serial walk, the codec, and the composed write path (gather + store) the
// ≥2x acceptance criterion is judged on. The "-pr5" variants reconstruct the
// previous data path in-benchmark so both sides run on identical inputs.
func BenchmarkDataPlane(b *testing.B) {
	const (
		window = 4 << 20 // one aggregation-buffer's worth per iteration
		runLen = 256     // file-run granularity (interleaved strided patterns)
	)
	// A strided declared pattern whose runs tile [0, window): the layout an
	// aggregator's round buffer gathers from and scatters to.
	declared := [][]storage.Seg{
		{storage.Strided(0, runLen, 2*runLen, window/(2*runLen))},
		{storage.Strided(runLen, runLen, 2*runLen, window/(2*runLen))},
	}
	rng := rand.New(rand.NewSource(42))
	data := make([][]byte, len(declared))
	for i, segs := range declared {
		data[i] = make([]byte, storage.TotalBytes(segs))
		rng.Read(data[i])
	}
	pl, err := New(declared, data)
	if err != nil {
		b.Fatal(err)
	}
	win := make([]byte, window)
	pl.Gather(win, 0, window)
	segs := []storage.Seg{storage.Contig(0, window)}
	layoutRuns := make([]storage.Seg, 0, window/runLen)
	for off := int64(0); off < window; off += runLen {
		layoutRuns = append(layoutRuns, storage.Contig(off, runLen))
	}

	b.Run("gather-direct", func(b *testing.B) {
		// PutGather path: the plane writes straight into window memory.
		b.SetBytes(window)
		for i := 0; i < b.N; i++ {
			if n := pl.Gather(win, 0, window); n != window {
				b.Fatalf("gathered %d", n)
			}
		}
	})
	b.Run("gather-twocopy", func(b *testing.B) {
		// PR-5 path: gather into an intermediate buffer, then copy it into
		// the window (the PutAsync payload copy).
		b.SetBytes(window)
		staging := make([]byte, window)
		for i := 0; i < b.N; i++ {
			if n := pl.Gather(staging, 0, window); n != window {
				b.Fatalf("gathered %d", n)
			}
			copy(win, staging)
		}
	})
	b.Run("scatter-direct", func(b *testing.B) {
		b.SetBytes(window)
		for i := 0; i < b.N; i++ {
			if n := pl.Scatter(win, 0, window); n != window {
				b.Fatalf("scattered %d", n)
			}
		}
	})
	b.Run("scatter-twocopy", func(b *testing.B) {
		b.SetBytes(window)
		staging := make([]byte, window)
		for i := 0; i < b.N; i++ {
			copy(staging, win)
			if n := pl.Scatter(staging, 0, window); n != window {
				b.Fatalf("scattered %d", n)
			}
		}
	})

	b.Run("store-write-coalesced", func(b *testing.B) {
		b.SetBytes(window)
		f := &storage.File{Name: "bench"}
		for i := 0; i < b.N; i++ {
			if err := f.StoreWrite(layoutRuns, win); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("store-write-perrun", func(b *testing.B) {
		// PR-5 path: one locked WriteAt per enumerated run.
		b.SetBytes(window)
		f := &storage.File{Name: "bench"}
		for i := 0; i < b.N; i++ {
			src := win
			var err error
			storage.Enumerate(layoutRuns, 1<<30, func(off, length int64) {
				if e := f.StoreWriteAt(src[:length], off); e != nil && err == nil {
					err = e
				}
				src = src[length:]
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("store-read-coalesced", func(b *testing.B) {
		b.SetBytes(window)
		f := &storage.File{Name: "bench"}
		if err := f.StoreWrite(segs, win); err != nil {
			b.Fatal(err)
		}
		dst := make([]byte, window)
		for i := 0; i < b.N; i++ {
			if err := f.StoreRead(layoutRuns, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("store-read-perrun", func(b *testing.B) {
		b.SetBytes(window)
		f := &storage.File{Name: "bench"}
		if err := f.StoreWrite(segs, win); err != nil {
			b.Fatal(err)
		}
		dst := make([]byte, window)
		for i := 0; i < b.N; i++ {
			p := dst
			var err error
			storage.Enumerate(layoutRuns, 1<<30, func(off, length int64) {
				if e := f.StoreReadAt(p[:length], off); e != nil && err == nil {
					err = e
				}
				p = p[length:]
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	// Checksums need enough bytes to cross the 4 MiB/shard parallel
	// threshold, so they run on a larger plane.
	const big = 64 << 20
	bigDecl := [][]storage.Seg{{storage.Contig(0, big)}}
	bigData := [][]byte{make([]byte, big)}
	rng.Read(bigData[0])
	bigPl, err := New(bigDecl, bigData)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("checksum-parallel", func(b *testing.B) {
		b.SetBytes(big)
		for i := 0; i < b.N; i++ {
			bigPl.Checksum()
		}
	})
	b.Run("checksum-serial", func(b *testing.B) {
		b.SetBytes(big)
		for i := 0; i < b.N; i++ {
			bigPl.checksumRange(0, 0, bigPl.total)
		}
	})
	b.Run("store-checksum", func(b *testing.B) {
		b.SetBytes(big)
		f := &storage.File{Name: "bench"}
		if err := f.StoreWrite(bigDecl[0], bigData[0]); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := f.StoreChecksum(bigDecl[0]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("codec-compress", func(b *testing.B) {
		b.SetBytes(window)
		comp := make([]byte, 0, CompressBound(window))
		for i := 0; i < b.N; i++ {
			comp = LZ.Compress(comp, win)
		}
	})
	b.Run("codec-decompress", func(b *testing.B) {
		b.SetBytes(window)
		comp := LZ.Compress(nil, win)
		dst := make([]byte, window)
		for i := 0; i < b.N; i++ {
			if err := LZ.Decompress(dst, comp); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The acceptance pair: one aggregation round's full byte path — gather
	// the window, land it in the store. The new path gathers directly into
	// window memory and issues one coalesced store call; the PR-5 path pays
	// the staging copy and a locked store call per run.
	b.Run("pipeline-new", func(b *testing.B) {
		b.SetBytes(window)
		f := &storage.File{Name: "bench"}
		for i := 0; i < b.N; i++ {
			if n := pl.Gather(win, 0, window); n != window {
				b.Fatalf("gathered %d", n)
			}
			if err := f.StoreWrite(layoutRuns, win); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipeline-pr5", func(b *testing.B) {
		b.SetBytes(window)
		f := &storage.File{Name: "bench"}
		staging := make([]byte, window)
		for i := 0; i < b.N; i++ {
			if n := pl.Gather(staging, 0, window); n != window {
				b.Fatalf("gathered %d", n)
			}
			copy(win, staging)
			src := win
			var err error
			storage.Enumerate(layoutRuns, 1<<30, func(off, length int64) {
				if e := f.StoreWriteAt(src[:length], off); e != nil && err == nil {
					err = e
				}
				src = src[length:]
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
