package dataplane

import (
	"encoding/binary"
	"fmt"
)

// Codec is a pluggable per-round reduction stage for the flush path: an
// aggregator compresses each filled buffer before it heads to storage,
// trading compute for flush bytes (Huebl et al.'s data-reduction
// direction). A nil Codec means no reduction — the default everywhere.
//
// The simulator prices the stage deterministically from ModelRatio and
// ModelRates (virtual time must not depend on payload content); the real
// byte path compresses and decompresses the actual round buffers, so a
// broken codec corrupts the store and fails end-to-end verification rather
// than passing silently.
type Codec interface {
	// Name labels the codec in stats, search keys and reports.
	Name() string
	// Compress appends src's compressed block to dst[:0] and returns it;
	// dst supplies reusable capacity (grow with CompressBound).
	Compress(dst, src []byte) []byte
	// Decompress reverses Compress into dst, which must be exactly the
	// original source length. It errors on malformed or mismatched input.
	Decompress(dst, src []byte) error
	// ModelRatio is the compressed/original size fraction the simulator and
	// autotuner price. The achieved ratio is data-dependent and reported
	// separately (core.Stats.BytesCompressed).
	ModelRatio() float64
	// ModelRates returns the modeled single-core compress and decompress
	// throughputs in bytes/second — the compute cost the pipeline charges.
	ModelRates() (compress, decompress float64)
}

// CompressBound returns a capacity sufficient for Compress's output on any
// n-byte input (incompressible input expands by the literal-run headers).
func CompressBound(n int) int { return n + n/255 + 16 }

// ModeledSize is the deterministic post-codec size of an n-byte round that
// the simulator and autotuner price: round(n·ModelRatio), at least 1 byte.
// A nil codec leaves n unchanged. Core's pipeline and tune's predictor both
// use this, so a prediction and a live run price identical flush extents.
func ModeledSize(c Codec, n int64) int64 {
	if c == nil || n <= 0 {
		return n
	}
	s := int64(float64(n)*c.ModelRatio() + 0.5)
	if s < 1 {
		s = 1
	}
	return s
}

// LZ is the reference reduction codec: a greedy byte-oriented LZ77 with an
// LZ4-style block format (token byte with literal/match length nibbles,
// 255-extension length bytes, 16-bit little-endian match offsets, minimum
// match 4). It exists to make the compression stage real — bytes genuinely
// round-trip through it — not to compete with tuned codecs.
var LZ Codec = lzCodec{}

type lzCodec struct{}

const (
	lzMinMatch  = 4
	lzHashLog   = 13
	lzMaxOffset = 65535
)

func (lzCodec) Name() string { return "lz" }

// ModelRatio assumes 2:1 reduction — the order Huebl et al. report for
// particle checkpoints under fast byte-oriented codecs.
func (lzCodec) ModelRatio() float64 { return 0.5 }

// ModelRates: ~600 MB/s compress, ~2.4 GB/s decompress per core, the class
// of throughput fast LZ codecs sustain.
func (lzCodec) ModelRates() (compress, decompress float64) { return 600e6, 2.4e9 }

func lzHash(x uint32) uint32 { return (x * 2654435761) >> (32 - lzHashLog) }

// lzAppendLen emits a length extension in 255-saturated bytes.
func lzAppendLen(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// lzEmit appends one sequence: literals then a match of mlen at offset.
func lzEmit(dst, lit []byte, offset, mlen int) []byte {
	litLen, ml := len(lit), mlen-lzMinMatch
	tok := byte(ml)
	if ml >= 15 {
		tok = 15
	}
	if litLen >= 15 {
		tok |= 15 << 4
	} else {
		tok |= byte(litLen) << 4
	}
	dst = append(dst, tok)
	if litLen >= 15 {
		dst = lzAppendLen(dst, litLen-15)
	}
	dst = append(dst, lit...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = lzAppendLen(dst, ml-15)
	}
	return dst
}

func (lzCodec) Compress(dst, src []byte) []byte {
	dst = dst[:0]
	n := len(src)
	if n == 0 {
		return dst
	}
	var table [1 << lzHashLog]int32
	for i := range table {
		table[i] = -1
	}
	anchor, i := 0, 0
	for i+lzMinMatch <= n {
		h := lzHash(binary.LittleEndian.Uint32(src[i:]))
		cand := int(table[h])
		table[h] = int32(i)
		if cand >= 0 && i-cand <= lzMaxOffset &&
			binary.LittleEndian.Uint32(src[cand:]) == binary.LittleEndian.Uint32(src[i:]) {
			mlen := lzMinMatch
			for i+mlen < n && src[cand+mlen] == src[i+mlen] {
				mlen++
			}
			dst = lzEmit(dst, src[anchor:i], i-cand, mlen)
			i += mlen
			anchor = i
			continue
		}
		i++
	}
	// Final literals-only sequence (the block may also end exactly on a
	// match, in which case nothing more is emitted).
	if lit := src[anchor:]; len(lit) > 0 {
		tok := byte(0)
		if len(lit) >= 15 {
			tok = 15 << 4
		} else {
			tok = byte(len(lit)) << 4
		}
		dst = append(dst, tok)
		if len(lit) >= 15 {
			dst = lzAppendLen(dst, len(lit)-15)
		}
		dst = append(dst, lit...)
	}
	return dst
}

var errLZCorrupt = fmt.Errorf("dataplane: lz block corrupt")

// lzReadLen reads a 255-saturated length extension starting at si.
func lzReadLen(src []byte, si, base int) (v, nsi int, err error) {
	v = base
	for {
		if si >= len(src) {
			return 0, 0, errLZCorrupt
		}
		b := src[si]
		si++
		v += int(b)
		if b != 255 {
			return v, si, nil
		}
	}
}

func (lzCodec) Decompress(dst, src []byte) error {
	di, si := 0, 0
	for si < len(src) {
		tok := src[si]
		si++
		litLen := int(tok >> 4)
		if litLen == 15 {
			var err error
			if litLen, si, err = lzReadLen(src, si, 15); err != nil {
				return err
			}
		}
		if si+litLen > len(src) || di+litLen > len(dst) {
			return errLZCorrupt
		}
		copy(dst[di:], src[si:si+litLen])
		si += litLen
		di += litLen
		if si == len(src) {
			break // final literals-only sequence
		}
		if si+2 > len(src) {
			return errLZCorrupt
		}
		offset := int(src[si]) | int(src[si+1])<<8
		si += 2
		if offset == 0 || offset > di {
			return errLZCorrupt
		}
		mlen := int(tok & 0xF)
		if mlen == 15 {
			var err error
			if mlen, si, err = lzReadLen(src, si, 15); err != nil {
				return err
			}
		}
		mlen += lzMinMatch
		if di+mlen > len(dst) {
			return errLZCorrupt
		}
		// Byte-wise copy: matches may overlap their own output (RLE).
		for j := 0; j < mlen; j++ {
			dst[di+j] = dst[di+j-offset]
		}
		di += mlen
	}
	if di != len(dst) {
		return fmt.Errorf("dataplane: lz block decodes to %d bytes, want %d", di, len(dst))
	}
	return nil
}
