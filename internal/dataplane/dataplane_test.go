package dataplane

import (
	"bytes"
	"math/rand"
	"testing"

	"tapioca/internal/storage"
)

func TestNewValidates(t *testing.T) {
	if _, err := New([][]storage.Seg{{storage.Contig(0, 10)}}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := New([][]storage.Seg{{storage.Contig(0, 10)}}, [][]byte{make([]byte, 9)}); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, err := New([][]storage.Seg{{storage.Contig(0, 10), storage.Contig(5, 10)}},
		[][]byte{make([]byte, 20)}); err == nil {
		t.Fatal("overlapping runs accepted")
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	// Two interleaved strided ops: runs of op 0 at 0,20,40,... and of op 1
	// at 10,30,50,... — gather must produce strict file-offset order even
	// though neither op's packed buffer is file-contiguous.
	decl := [][]storage.Seg{
		{storage.Strided(0, 10, 20, 5)},
		{storage.Strided(10, 10, 20, 5)},
	}
	d0 := bytes.Repeat([]byte{0xAA}, 50)
	d1 := bytes.Repeat([]byte{0xBB}, 50)
	pl, err := New(decl, [][]byte{d0, d1})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Bytes() != 100 {
		t.Fatalf("Bytes = %d", pl.Bytes())
	}
	dst := make([]byte, 100)
	if n := pl.Gather(dst, 0, 100); n != 100 {
		t.Fatalf("gathered %d", n)
	}
	for i, b := range dst {
		want := byte(0xAA)
		if (i/10)%2 == 1 {
			want = 0xBB
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
	// Partial window, clipped mid-run.
	part := make([]byte, 100)
	if n := pl.Gather(part, 5, 35); n != 30 {
		t.Fatalf("window gathered %d, want 30", n)
	}

	// Scatter into a fresh plane restores the original buffers.
	r0, r1 := make([]byte, 50), make([]byte, 50)
	rpl, err := New(decl, [][]byte{r0, r1})
	if err != nil {
		t.Fatal(err)
	}
	if n := rpl.Scatter(dst, 0, 100); n != 100 {
		t.Fatalf("scattered %d", n)
	}
	if !bytes.Equal(r0, d0) || !bytes.Equal(r1, d1) {
		t.Fatal("scatter did not restore op buffers")
	}
	if rpl.Checksum() != pl.Checksum() {
		t.Fatal("checksums differ after round trip")
	}
}

func TestGatherWindowsPartitionStream(t *testing.T) {
	// Gathering in arbitrary window cuts must concatenate to the full
	// file-ordered stream, for random patterns.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var decl [][]storage.Seg
		var data [][]byte
		next := int64(rng.Intn(50))
		for op := 0; op < 1+rng.Intn(3); op++ {
			var segs []storage.Seg
			for s := 0; s < 1+rng.Intn(3); s++ {
				length := int64(1 + rng.Intn(40))
				count := int64(1 + rng.Intn(5))
				stride := length + int64(rng.Intn(30))
				segs = append(segs, storage.Strided(next, length, stride, count))
				next = segs[len(segs)-1].End() + int64(rng.Intn(20))
			}
			buf := make([]byte, storage.TotalBytes(segs))
			rng.Read(buf)
			decl = append(decl, segs)
			data = append(data, buf)
		}
		pl, err := New(decl, data)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, pl.Bytes())
		pl.Gather(want, 0, next+1)
		var got []byte
		lo := int64(0)
		for lo < next+1 {
			hi := lo + int64(1+rng.Intn(60))
			chunk := make([]byte, pl.Bytes())
			n := pl.Gather(chunk, lo, hi)
			got = append(got, chunk[:n]...)
			lo = hi
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: windowed gathers diverge from full stream", trial)
		}
	}
}
