// Package dataplane carries real payload bytes through the aggregation
// pipeline. The simulation's timing models move virtual byte counts; this
// package supplies the other half of an I/O library — the bytes themselves —
// as a per-rank Plane that gathers application data into put payloads
// (writes) and scatters fetched window bytes back into application buffers
// (reads).
//
// A Plane is built from the same declared segment lists the planner
// consumes, plus one packed payload buffer per declared operation. Internally
// it is a file-offset-sorted run index, so any file window [lo, hi) maps to
// the rank's payload bytes in file-offset order — exactly the order the
// aggregation buffers and storage extents use. The phantom mode (no Plane at
// all) remains the default everywhere: paper-scale figures never materialize
// a byte.
package dataplane

import (
	"fmt"
	"hash/crc64"
	"sort"

	"tapioca/internal/par"
	"tapioca/internal/storage"
)

// crcTable is the shared CRC-64/ECMA table for payload checksums.
var crcTable = crc64.MakeTable(crc64.ECMA)

// maxRuns bounds a Plane's run-index size: the data plane targets
// correctness-verified scenarios at moderate scale, not the paper-scale
// phantom figures, and an accidental million-run AoS pattern should fail
// loudly rather than allocate without bound.
const maxRuns = 1 << 22

// run maps one contiguous file extent of the rank's declared data to its
// position within a declared operation's payload buffer.
type run struct {
	off, end int64 // file range [off, end)
	op       int32 // declared operation index
	pos      int64 // byte position within data[op]
}

// Plane is one rank's data-plane handle for a collective I/O session: the
// bridge between the application's declared payload buffers and the
// file-offset-ordered byte streams that flow through aggregation buffers
// into storage. For write sessions the buffers are sources; for read
// sessions the same buffers are destinations.
type Plane struct {
	data  [][]byte
	runs  []run // sorted by off; non-overlapping
	total int64
}

// New builds a Plane from a rank's declared operations and the matching
// payload buffers: data[i] holds declared[i]'s bytes packed in segment
// enumeration order (run by run, in the order the segments were declared).
// It returns a descriptive error when lengths mismatch or runs overlap.
func New(declared [][]storage.Seg, data [][]byte) (*Plane, error) {
	if len(declared) != len(data) {
		return nil, fmt.Errorf("dataplane: %d declared operations but %d payload buffers", len(declared), len(data))
	}
	pl := &Plane{data: data}
	for op, segs := range declared {
		var pos int64
		for _, s := range segs {
			if s.Empty() {
				continue
			}
			if int64(len(pl.runs))+s.Count > maxRuns {
				return nil, fmt.Errorf("dataplane: declared pattern exceeds %d runs (use phantom mode for paper-scale patterns)", maxRuns)
			}
			for i := int64(0); i < s.Count; i++ {
				off := s.Off + i*s.Stride
				pl.runs = append(pl.runs, run{off: off, end: off + s.Len, op: int32(op), pos: pos})
				pos += s.Len
			}
		}
		if pos != int64(len(data[op])) {
			return nil, fmt.Errorf("dataplane: operation %d declares %d bytes but payload buffer holds %d", op, pos, len(data[op]))
		}
		pl.total += pos
	}
	sort.Slice(pl.runs, func(i, j int) bool { return pl.runs[i].off < pl.runs[j].off })
	for i := 1; i < len(pl.runs); i++ {
		if pl.runs[i].off < pl.runs[i-1].end {
			return nil, fmt.Errorf("dataplane: declared runs overlap at file offset %d", pl.runs[i].off)
		}
	}
	return pl, nil
}

// Bytes returns the rank's total declared payload size.
func (pl *Plane) Bytes() int64 { return pl.total }

// first returns the index of the first run whose end is after lo.
func (pl *Plane) first(lo int64) int {
	return sort.Search(len(pl.runs), func(i int) bool { return pl.runs[i].end > lo })
}

// Each visits the rank's payload chunks with file offsets in [lo, hi), in
// file-offset order. Every chunk is a sub-slice of the rank's own payload
// buffer — mutable, so the same walk serves gathers (read the chunk) and
// scatters (fill the chunk).
func (pl *Plane) Each(lo, hi int64, fn func(off int64, chunk []byte)) {
	for i := pl.first(lo); i < len(pl.runs) && pl.runs[i].off < hi; i++ {
		r := &pl.runs[i]
		o, e := maxI64(r.off, lo), minI64(r.end, hi)
		if e <= o {
			continue
		}
		p := r.pos + (o - r.off)
		fn(o, pl.data[r.op][p:p+(e-o)])
	}
}

// Gather copies the rank's payload bytes with file offsets in [lo, hi) into
// dst in file-offset order — the layout of this rank's contribution to an
// aggregation-buffer window — returning the bytes copied.
func (pl *Plane) Gather(dst []byte, lo, hi int64) int64 {
	var n int64
	pl.Each(lo, hi, func(_ int64, chunk []byte) {
		n += int64(copy(dst[n:], chunk))
	})
	return n
}

// Scatter is Gather's inverse: it distributes src (this rank's window
// contribution, file-offset order) back into the declared payload buffers,
// returning the bytes consumed.
func (pl *Plane) Scatter(src []byte, lo, hi int64) int64 {
	var n int64
	pl.Each(lo, hi, func(_ int64, chunk []byte) {
		n += int64(copy(chunk, src[n:]))
	})
	return n
}

// checksumShardBytes is the minimum payload per parallel checksum shard;
// below that the serial scan wins.
const checksumShardBytes = 4 << 20

// Checksum returns the CRC-64/ECMA of the rank's payload bytes in
// file-offset order. Because the order is file-positional (not declaration
// order), a write session's checksum equals both the storage checksum over
// the same extents and the checksum of a read session that declared the same
// pattern — the end-to-end verification contract. Large payloads shard
// across the worker pool and merge with storage.CRC64Combine; the result is
// identical to the serial scan.
func (pl *Plane) Checksum() uint64 {
	k := int(pl.total / checksumShardBytes)
	if lim := par.Limit(); k > lim {
		k = lim
	}
	if k <= 1 || len(pl.runs) == 0 {
		return pl.checksumRange(0, 0, pl.total)
	}
	// Cut the byte stream into k equal shards in one pass over the run
	// index, splitting mid-run where a boundary lands inside one.
	type shard struct {
		run     int
		skip, n int64
	}
	per := (pl.total + int64(k) - 1) / int64(k)
	shards := make([]shard, 0, k)
	runIdx, skip, remaining := 0, int64(0), pl.total
	for remaining > 0 {
		n := minI64(per, remaining)
		shards = append(shards, shard{run: runIdx, skip: skip, n: n})
		for adv := n; adv > 0; {
			avail := (pl.runs[runIdx].end - pl.runs[runIdx].off) - skip
			if adv < avail {
				skip += adv
				break
			}
			adv -= avail
			runIdx++
			skip = 0
		}
		remaining -= n
	}
	crcs := make([]uint64, len(shards))
	par.Map(len(shards), func(i int) {
		crcs[i] = pl.checksumRange(shards[i].run, shards[i].skip, shards[i].n)
	})
	var crc uint64
	for i, c := range crcs {
		crc = storage.CRC64Combine(crc, c, shards[i].n)
	}
	return crc
}

// checksumRange checksums n bytes of the file-offset-ordered payload stream
// starting skip bytes into run runIdx.
func (pl *Plane) checksumRange(runIdx int, skip, n int64) uint64 {
	var crc uint64
	for i := runIdx; i < len(pl.runs) && n > 0; i++ {
		r := &pl.runs[i]
		p := pl.data[r.op][r.pos+skip : r.pos+(r.end-r.off)]
		if int64(len(p)) > n {
			p = p[:n]
		}
		crc = crc64.Update(crc, crcTable, p)
		n -= int64(len(p))
		skip = 0
	}
	return crc
}

// ChecksumBytes extends a running CRC-64/ECMA with p (the storage-side hook,
// shared so both ends of the pipeline agree on the polynomial).
func ChecksumBytes(crc uint64, p []byte) uint64 {
	return crc64.Update(crc, crcTable, p)
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
