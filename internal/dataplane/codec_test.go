package dataplane

import (
	"bytes"
	"math/rand"
	"testing"

	"tapioca/internal/storage"
)

// codecInputs builds a spread of payloads: incompressible noise, zeros,
// repetitive structure, and short edge sizes.
func codecInputs(rng *rand.Rand) [][]byte {
	noise := make([]byte, 100_000)
	rng.Read(noise)
	zeros := make([]byte, 70_000)
	rep := bytes.Repeat([]byte("particle checkpoint block "), 4000)
	structured := make([]byte, 80_000)
	for i := range structured {
		structured[i] = byte(i / 64) // long runs with slow drift
	}
	out := [][]byte{nil, {0}, {1, 2, 3}, noise[:15], noise[:16], zeros, rep, structured, noise}
	for t := 0; t < 20; t++ {
		n := rng.Intn(5000)
		mixed := make([]byte, n)
		rng.Read(mixed)
		if n > 10 { // splice in a compressible stretch
			lo := rng.Intn(n / 2)
			hi := lo + rng.Intn(n-lo)
			for i := lo; i < hi; i++ {
				mixed[i] = 0xAB
			}
		}
		out = append(out, mixed)
	}
	return out
}

func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var comp []byte
	for ti, src := range codecInputs(rng) {
		comp = LZ.Compress(comp, src)
		if len(comp) > CompressBound(len(src)) {
			t.Fatalf("input %d: compressed %d bytes exceeds CompressBound(%d)=%d", ti, len(comp), len(src), CompressBound(len(src)))
		}
		got := make([]byte, len(src))
		if err := LZ.Decompress(got, comp); err != nil {
			t.Fatalf("input %d: decompress: %v", ti, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("input %d: round trip mismatch (%d bytes)", ti, len(src))
		}
	}
	// Compressible data must actually shrink.
	zeros := make([]byte, 1<<20)
	comp = LZ.Compress(comp, zeros)
	if len(comp) >= len(zeros)/10 {
		t.Fatalf("1 MiB of zeros compressed to only %d bytes", len(comp))
	}
}

func TestLZDecompressRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := bytes.Repeat([]byte("abcdefgh"), 2000)
	comp := LZ.Compress(nil, src)
	dst := make([]byte, len(src))
	// Truncations must error, never panic or silently succeed.
	for _, cut := range []int{1, len(comp) / 2, len(comp) - 1} {
		if err := LZ.Decompress(dst, comp[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	// Wrong output size must error.
	if err := LZ.Decompress(dst[:len(src)-1], comp); err == nil {
		t.Fatal("short destination decoded without error")
	}
	// Random garbage must never panic (errors are fine, and a garbage block
	// that happens to decode is acceptable only at the exact length).
	for trial := 0; trial < 200; trial++ {
		garbage := make([]byte, rng.Intn(300))
		rng.Read(garbage)
		_ = LZ.Decompress(dst, garbage)
	}
}

func TestPlaneChecksumParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Two declared ops, enough bytes to cross the parallel threshold, with
	// strided runs so shard cuts land mid-run and mid-stream.
	declared := [][]storage.Seg{
		{storage.Contig(0, 6<<20), storage.Strided(32<<20, 96<<10, 256<<10, 64)},
		{storage.Strided(8<<20, 1<<20, 2<<20, 6)},
	}
	data := make([][]byte, len(declared))
	for i, segs := range declared {
		data[i] = make([]byte, storage.TotalBytes(segs))
		rng.Read(data[i])
	}
	pl, err := New(declared, data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pl.Checksum(), pl.checksumRange(0, 0, pl.total); got != want {
		t.Fatalf("parallel checksum %#x != serial %#x", got, want)
	}
}
