// HACC checkpoint: the paper's cosmology workload (§V-D) on a simulated
// Mira partition — every rank checkpoints its particles (9 variables,
// 38 bytes each) into one file per Pset, comparing TAPIOCA against MPI-IO
// for both array-of-structures and structure-of-arrays layouts. The TAPIOCA
// runs then restart: the checkpoint is read back through a declared read
// session (the reverse pipeline: aggregators prefetch rounds, members pull
// their pieces with one-sided gets).
//
// Run: go run ./examples/hacc-checkpoint [-nodes 256] [-particles 25000]
package main

import (
	"flag"
	"fmt"
	"log"

	"tapioca"
)

// Particle variables, as in HACC: coordinates, velocities, physics.
var (
	varNames = []string{"xx", "yy", "zz", "vx", "vy", "vz", "phi", "pid", "mask"}
	varSizes = []int64{4, 4, 4, 4, 4, 4, 4, 8, 2} // 38 bytes per particle
)

const particleBytes = 38

// declared builds the per-variable extents of one rank inside its Pset's
// file for the chosen layout.
func declared(rank, ranks int, particles int64, aos bool) [][]tapioca.Seg {
	out := make([][]tapioca.Seg, len(varSizes))
	if aos {
		base := int64(rank) * particles * particleBytes
		var fieldOff int64
		for v, sz := range varSizes {
			out[v] = []tapioca.Seg{tapioca.Strided(base+fieldOff, sz, particleBytes, particles)}
			fieldOff += sz
		}
		return out
	}
	var regionOff int64
	for v, sz := range varSizes {
		out[v] = []tapioca.Seg{tapioca.Contig(regionOff+int64(rank)*particles*sz, particles*sz)}
		regionOff += int64(ranks) * particles * sz
	}
	return out
}

func main() {
	nodes := flag.Int("nodes", 256, "Mira nodes (supported partition size)")
	rpn := flag.Int("rpn", 4, "ranks per node")
	particles := flag.Int64("particles", 25000, "particles per rank (~1 MB)")
	flag.Parse()

	fmt.Printf("HACC checkpoint on Mira-%d, %d ranks/node, %d particles/rank (%.2f MB/rank)\n",
		*nodes, *rpn, *particles, float64(*particles*particleBytes)/(1<<20))

	for _, layout := range []struct {
		name string
		aos  bool
	}{{"AoS", true}, {"SoA", false}} {
		for _, method := range []string{"TAPIOCA", "MPI-IO"} {
			m := tapioca.Mira(*nodes, tapioca.WithLockSharing())
			var elapsed, restart float64
			var totalGB float64
			_, err := m.Run(*rpn, func(ctx *tapioca.Ctx) {
				// One file per Pset: split by the I/O partition.
				pset := ctx.Pset()
				sub := ctx.Split(pset, ctx.Rank())
				name := fmt.Sprintf("hacc-%s-%s-pset%d", layout.name, method, pset)
				f := ctx.CreateFile(name, tapioca.FileOptions{})
				decl := declared(sub.Rank(), sub.Size(), *particles, layout.aos)
				ctx.Barrier()
				t0 := ctx.Now()
				if method == "TAPIOCA" {
					w := sub.Tapioca(f, tapioca.Config{Aggregators: 16, BufferSize: 16 << 20})
					must(w.Init(decl))
					must(w.WriteAll())
				} else {
					fh := sub.MPIIO(f, tapioca.Hints{
						CBNodes: 16, CBBufferSize: 16 << 20,
						Strategy: tapioca.AggrBridgeFirst, AlignDomains: true,
					})
					for _, segs := range decl {
						must(fh.WriteAtAll(segs))
					}
				}
				ctx.Barrier()
				t1 := ctx.Now()
				if method == "TAPIOCA" {
					// Restart: read the checkpoint back through a fresh
					// declared session over the same pattern.
					r := sub.Tapioca(f, tapioca.Config{Aggregators: 16, BufferSize: 16 << 20})
					must(r.Init(decl))
					must(r.ReadAll())
					ctx.Barrier()
				}
				if ctx.Rank() == 0 {
					elapsed = t1 - t0
					restart = ctx.Now() - t1
					totalGB = float64(int64(ctx.Size())**particles*particleBytes) / 1e9
				}
			})
			if err != nil {
				log.Fatal(err)
			}
			if restart > 0 {
				fmt.Printf("  %-3s %-8s write %8.1f ms (%6.2f GB/s)   restart read %8.1f ms (%6.2f GB/s)\n",
					layout.name, method, elapsed*1e3, totalGB/elapsed, restart*1e3, totalGB/restart)
			} else {
				fmt.Printf("  %-3s %-8s write %8.1f ms (%6.2f GB/s)\n",
					layout.name, method, elapsed*1e3, totalGB/elapsed)
			}
		}
	}
	fmt.Println("\n(AoS: each variable is a strided 4-byte pattern — declared I/O lets")
	fmt.Println(" TAPIOCA reorganize it into dense, aligned buffer flushes; the restart")
	fmt.Println(" runs the reverse pipeline, prefetching rounds while members pull.)")
}

// must surfaces an I/O session error as a rank panic, which the simulation
// engine reports as the run's error.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
