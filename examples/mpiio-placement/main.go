// MPI-IO aggregator placement: run the same tuned collective write on a
// Theta(512) machine under each aggregator strategy and print the virtual
// elapsed time. The classic heuristics cannot see the interconnect; the
// topology-aware strategies reuse TAPIOCA's cost engine (internal/cost) for
// the ROMIO-style baseline — rank-order stacking loses to every
// distance-aware choice.
//
// Run: go run ./examples/mpiio-placement
package main

import (
	"fmt"
	"log"

	"tapioca"
)

// measure runs one IOR-style collective write on Theta(nodes) under the
// strategy and returns the elapsed seconds of the timed phase.
func measure(nodes, rpn int, strategy tapioca.Placement) float64 {
	m := tapioca.Theta(nodes)
	const sizePerRank = 1 << 20
	var elapsed float64
	_, err := m.Run(rpn, func(ctx *tapioca.Ctx) {
		f := ctx.CreateFile("ior", tapioca.FileOptions{StripeCount: 48, StripeSize: 8 << 20})
		fh := ctx.MPIIO(f, tapioca.Hints{
			CBNodes:       96,
			CBBufferSize:  8 << 20,
			Strategy:      strategy,
			AlignDomains:  true,
			CyclicDomains: true,
		})
		ctx.Barrier()
		t0 := ctx.Now()
		must(fh.WriteAtAll([]tapioca.Seg{tapioca.Contig(int64(ctx.Rank())*sizePerRank, sizePerRank)}))
		fh.Close()
		if ctx.Rank() == 0 {
			elapsed = ctx.Now() - t0
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return elapsed
}

func main() {
	const nodes, rpn = 512, 16
	fmt.Printf("Tuned MPI-IO collective write on Theta-%d (%d ranks/node, 1 MB/rank, 96 aggregators)\n\n",
		nodes, rpn)
	strategies := []tapioca.Placement{
		tapioca.AggrRankOrder,
		tapioca.AggrNodeSpread,
		tapioca.AggrTopologyAware,
		tapioca.AggrTwoLevel,
	}
	baseline := -1.0
	for _, s := range strategies {
		elapsed := measure(nodes, rpn, s)
		if baseline < 0 {
			baseline = elapsed
		}
		fmt.Printf("%-16s  %8.4f s elapsed   %5.2fx vs rank-order\n",
			s.Name(), elapsed, baseline/elapsed)
	}
	fmt.Println("\n(Rank order stacks all 96 aggregators on the first 6 nodes: the NIC incast",
		"\nserializes the aggregation phase. The cost-model elections spread one",
		"\naggregator per rank block and minimize dragonfly hop distance.)")
}

// must surfaces an I/O session error as a rank panic, which the simulation
// engine reports as the run's error.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
