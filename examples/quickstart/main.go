// Quickstart: write a three-variable dataset (the paper's x/y/z example,
// Algorithm 2) with TAPIOCA on a simulated Theta machine, read it back with
// real payload bytes through the data plane, and compare the write against
// plain MPI-IO collective writes.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tapioca"
)

func main() {
	const (
		nodes        = 64
		ranksPerNode = 4
		elemsPerVar  = 65536 // 256 KB per variable per rank
	)
	ranks := nodes * ranksPerNode
	varBytes := int64(elemsPerVar * 4)
	perRank := 3 * varBytes
	total := float64(int64(ranks)*perRank) / 1e9

	// declared(v) is variable v's extent for one rank: the file holds
	// x[all ranks], y[all ranks], z[all ranks] (structure of arrays).
	declared := func(rank int) [][]tapioca.Seg {
		out := make([][]tapioca.Seg, 3)
		for v := 0; v < 3; v++ {
			off := int64(v)*int64(ranks)*varBytes + int64(rank)*varBytes
			out[v] = []tapioca.Seg{tapioca.Contig(off, varBytes)}
		}
		return out
	}

	// fill produces one rank's payload: real bytes, keyed by rank and
	// variable so the read-back below can validate them.
	fill := func(rank int) [][]byte {
		data := make([][]byte, 3)
		for v := range data {
			buf := make([]byte, varBytes)
			for i := range buf {
				buf[i] = byte(rank*31 + v*7 + i)
			}
			data[v] = buf
		}
		return data
	}

	opt := tapioca.FileOptions{StripeCount: 8, StripeSize: 4 << 20}

	// TAPIOCA with the data plane: declare all three writes with their
	// payload buffers, then write — buffers fill completely, flushes overlap
	// aggregation (Algorithms 2 & 3), and the actual bytes land in the
	// file's backing store. A second session reads them back and every rank
	// checks its bytes and checksum survived the round trip.
	var tapiocaTime float64
	verified := true
	m := tapioca.Theta(nodes)
	_, err := m.Run(ranksPerNode, func(ctx *tapioca.Ctx) {
		f := ctx.CreateFile("snapshot-tapioca", opt)
		decl := declared(ctx.Rank())
		data := fill(ctx.Rank())
		w := ctx.Tapioca(f, tapioca.Config{Aggregators: 8, BufferSize: 4 << 20})
		ctx.Barrier()
		t0 := ctx.Now()
		if err := w.InitData(decl, data); err != nil {
			log.Fatal(err)
		}
		must(w.Write(0)) // x
		must(w.Write(1)) // y
		must(w.Write(2)) // z
		ctx.Barrier()
		if ctx.Rank() == 0 {
			tapiocaTime = ctx.Now() - t0
		}

		// Restart read: fresh buffers, same declared pattern.
		got := [][]byte{make([]byte, varBytes), make([]byte, varBytes), make([]byte, varBytes)}
		r := ctx.Tapioca(f, tapioca.Config{Aggregators: 8, BufferSize: 4 << 20})
		if err := r.InitData(decl, got); err != nil {
			log.Fatal(err)
		}
		must(r.ReadAll())
		if r.DataChecksum() != w.DataChecksum() {
			verified = false
		}
		want := fill(ctx.Rank())
		for v := range got {
			for i := range got[v] {
				if got[v][i] != want[v][i] {
					verified = false
				}
			}
		}
		ctx.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}

	// MPI-IO: three independent collective writes, each flushing its own
	// partially-filled buffers (the paper's Figure 2 contrast).
	var mpiioTime float64
	m2 := tapioca.Theta(nodes)
	_, err = m2.Run(ranksPerNode, func(ctx *tapioca.Ctx) {
		f := ctx.CreateFile("snapshot-mpiio", opt)
		fh := ctx.MPIIO(f, tapioca.Hints{CBNodes: 8, CBBufferSize: 4 << 20, AlignDomains: true})
		ctx.Barrier()
		t0 := ctx.Now()
		for _, segs := range declared(ctx.Rank()) {
			must(fh.WriteAtAll(segs))
		}
		fh.Close()
		if ctx.Rank() == 0 {
			mpiioTime = ctx.Now() - t0
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset: %d ranks × 3 variables × %d KB = %.2f GB\n",
		ranks, varBytes>>10, total)
	fmt.Printf("TAPIOCA : %7.1f ms  (%.2f GB/s)\n", tapiocaTime*1e3, total/tapiocaTime)
	fmt.Printf("MPI-IO  : %7.1f ms  (%.2f GB/s)\n", mpiioTime*1e3, total/mpiioTime)
	fmt.Printf("speedup : %.2fx\n", mpiioTime/tapiocaTime)
	if verified {
		fmt.Println("round trip: all ranks read back byte-identical data (checksums match)")
	} else {
		log.Fatal("round trip verification FAILED")
	}
}

// must surfaces an I/O session error as a rank panic, which the simulation
// engine reports as the run's error.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
