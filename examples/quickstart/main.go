// Quickstart: write a three-variable dataset (the paper's x/y/z example,
// Algorithm 2) with TAPIOCA on a simulated Theta machine and compare it
// against plain MPI-IO collective writes.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tapioca"
)

func main() {
	const (
		nodes        = 64
		ranksPerNode = 4
		elemsPerVar  = 65536 // 256 KB per variable per rank
	)
	ranks := nodes * ranksPerNode
	varBytes := int64(elemsPerVar * 4)
	perRank := 3 * varBytes
	total := float64(int64(ranks)*perRank) / 1e9

	// declared(v) is variable v's extent for one rank: the file holds
	// x[all ranks], y[all ranks], z[all ranks] (structure of arrays).
	declared := func(rank int) [][]tapioca.Seg {
		out := make([][]tapioca.Seg, 3)
		for v := 0; v < 3; v++ {
			off := int64(v)*int64(ranks)*varBytes + int64(rank)*varBytes
			out[v] = []tapioca.Seg{tapioca.Contig(off, varBytes)}
		}
		return out
	}

	opt := tapioca.FileOptions{StripeCount: 8, StripeSize: 4 << 20}

	// TAPIOCA: declare all three writes, then write — buffers fill
	// completely and flushes overlap aggregation (Algorithms 2 & 3).
	var tapiocaTime float64
	m := tapioca.Theta(nodes)
	_, err := m.Run(ranksPerNode, func(ctx *tapioca.Ctx) {
		f := ctx.CreateFile("snapshot-tapioca", opt)
		w := ctx.Tapioca(f, tapioca.Config{Aggregators: 8, BufferSize: 4 << 20})
		ctx.Barrier()
		t0 := ctx.Now()
		w.Init(declared(ctx.Rank()))
		w.Write(0) // x
		w.Write(1) // y
		w.Write(2) // z
		ctx.Barrier()
		if ctx.Rank() == 0 {
			tapiocaTime = ctx.Now() - t0
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// MPI-IO: three independent collective writes, each flushing its own
	// partially-filled buffers (the paper's Figure 2 contrast).
	var mpiioTime float64
	m2 := tapioca.Theta(nodes)
	_, err = m2.Run(ranksPerNode, func(ctx *tapioca.Ctx) {
		f := ctx.CreateFile("snapshot-mpiio", opt)
		fh := ctx.MPIIO(f, tapioca.Hints{CBNodes: 8, CBBufferSize: 4 << 20, AlignDomains: true})
		ctx.Barrier()
		t0 := ctx.Now()
		for _, segs := range declared(ctx.Rank()) {
			fh.WriteAtAll(segs)
		}
		fh.Close()
		if ctx.Rank() == 0 {
			mpiioTime = ctx.Now() - t0
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset: %d ranks × 3 variables × %d KB = %.2f GB\n",
		ranks, varBytes>>10, total)
	fmt.Printf("TAPIOCA : %7.1f ms  (%.2f GB/s)\n", tapiocaTime*1e3, total/tapiocaTime)
	fmt.Printf("MPI-IO  : %7.1f ms  (%.2f GB/s)\n", mpiioTime*1e3, total/mpiioTime)
	fmt.Printf("speedup : %.2fx\n", mpiioTime/tapiocaTime)
}
