// IOR tuning: reproduce the spirit of the paper's §V-B on a simulated
// Theta machine — sweep Lustre striping and collective-buffering knobs with
// an IOR-style collective write and print the resulting bandwidth table.
//
// Run: go run ./examples/ior-tuning
package main

import (
	"fmt"
	"log"

	"tapioca"
)

func measure(nodes, rpn int, adaptive bool, stripeCount int, stripeMB int64, cbNodes int, cyclic bool) float64 {
	var opts []tapioca.MachineOption
	if adaptive {
		opts = append(opts, tapioca.WithAdaptiveRouting())
	}
	m := tapioca.Theta(nodes, opts...)
	const sizePerRank = 1 << 20
	var elapsed, totalGB float64
	_, err := m.Run(rpn, func(ctx *tapioca.Ctx) {
		f := ctx.CreateFile("ior", tapioca.FileOptions{
			StripeCount: stripeCount,
			StripeSize:  stripeMB << 20,
		})
		fh := ctx.MPIIO(f, tapioca.Hints{
			CBNodes:       cbNodes,
			CBBufferSize:  8 << 20,
			AlignDomains:  true,
			CyclicDomains: cyclic,
		})
		ctx.Barrier()
		t0 := ctx.Now()
		must(fh.WriteAtAll([]tapioca.Seg{tapioca.Contig(int64(ctx.Rank())*sizePerRank, sizePerRank)}))
		fh.Close()
		if ctx.Rank() == 0 {
			elapsed = ctx.Now() - t0
			totalGB = float64(int64(ctx.Size())*sizePerRank) / 1e9
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return totalGB / elapsed
}

func main() {
	const nodes, rpn = 128, 4
	fmt.Printf("IOR collective write on Theta-%d (%d ranks/node, 1 MB/rank)\n\n", nodes, rpn)
	fmt.Println("stripe-count  stripe-size  cb-nodes  domains      routing    GB/s")
	type cfg struct {
		adaptive    bool
		stripeCount int
		stripeMB    int64
		cbNodes     int
		cyclic      bool
		label       string
	}
	cases := []cfg{
		{true, 1, 1, nodes, false, "adaptive"},   // platform defaults (Fig. 8 baseline)
		{false, 1, 1, nodes, false, "in-order"},  // routing fixed only
		{false, 12, 1, nodes, false, "in-order"}, // striping widened
		{false, 12, 8, nodes, false, "in-order"}, // larger stripes
		{false, 12, 8, 24, true, "in-order"},     // 2 aggr/OST, stripe-cyclic (Fig. 8 optimized)
	}
	for _, c := range cases {
		bw := measure(nodes, rpn, c.adaptive, c.stripeCount, c.stripeMB, c.cbNodes, c.cyclic)
		dom := "contiguous"
		if c.cyclic {
			dom = "cyclic"
		}
		fmt.Printf("%11d  %10dM  %8d  %-11s  %-8s  %6.2f\n",
			c.stripeCount, c.stripeMB, c.cbNodes, dom, c.label, bw)
	}
	fmt.Println("\n(The paper's Fig. 8: defaults leave >10x bandwidth on the table.)")
}

// must surfaces an I/O session error as a rank panic, which the simulation
// engine reports as the run's error.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
