// Autotune walkthrough: ask the model-driven tuner for a configuration
// instead of hand-picking one. The paper tunes aggregator count, buffer
// size and Lustre striping per platform (§V); tapioca.Autotune searches
// that space with the §IV-B cost model and the planner's round/flush
// estimators, then the tuned pick is raced end to end against the library
// defaults — first writing a checkpoint, then reading it back.
//
// Run: go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"tapioca"
)

const (
	nodes       = 128
	rpn         = 16
	mbPerRank   = 1 << 20
	checkpoints = 2 // write, then restart-read
)

// race runs one collective phase (write or read) under the configuration
// and returns the timed seconds.
func race(cfg tapioca.Config, fopt tapioca.FileOptions, w tapioca.Workload) float64 {
	m := tapioca.Theta(nodes)
	var elapsed float64
	_, err := m.Run(rpn, func(ctx *tapioca.Ctx) {
		f := ctx.CreateFile("ckpt", fopt)
		wr := ctx.Tapioca(f, cfg)
		decl := w.Declared(ctx.Rank(), ctx.Size())
		ctx.Barrier()
		t0 := ctx.Now()
		must(wr.Init(decl))
		if w.Read {
			must(wr.ReadAll())
		} else {
			must(wr.WriteAll())
		}
		ctx.Barrier()
		if ctx.Rank() == 0 {
			elapsed = ctx.Now() - t0
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return elapsed
}

func main() {
	ranks := nodes * rpn
	w := tapioca.IORWorkload(ranks, mbPerRank)
	total := float64(w.TotalBytes())
	fmt.Printf("Autotuning an IOR-style write on Theta-%d (%d ranks, 1 MB/rank)\n\n", nodes, ranks)

	cfg, fopt, hints := tapioca.Autotune(tapioca.Theta(nodes), w)
	fmt.Printf("tuner picked: %d aggregators, %d MB buffers, %s placement, %d×%d MB stripes\n",
		cfg.Aggregators, cfg.BufferSize>>20, cfg.Placement.Name(),
		fopt.StripeCount, fopt.StripeSize>>20)
	fmt.Printf("MPI-IO hints: cb_nodes=%d cb_buffer_size=%dMB strategy=%s\n\n",
		hints.CBNodes, hints.CBBufferSize>>20, hints.Strategy.Name())

	for _, phase := range []string{"write", "restart-read"} {
		pw := w
		pw.Read = phase == "restart-read"
		tuned := race(cfg, fopt, pw)
		def := race(tapioca.Config{}, tapioca.FileOptions{}, pw)
		fmt.Printf("%-13s tuned %8.1f ms (%6.2f GB/s)   defaults %8.1f ms (%6.2f GB/s)   %.1fx\n",
			phase, tuned*1e3, total/tuned/1e9, def*1e3, total/def/1e9, def/tuned)
	}
	fmt.Println("\n(The defaults stripe the file over a single OST with 1 MB stripes —")
	fmt.Println(" the Figure 8 pathology. The tuner matches stripe size to the buffer,")
	fmt.Println(" spreads the file across the OSTs and sizes the aggregator pool so")
	fmt.Println(" concurrent flush streams just saturate them.)")
}

// must surfaces an I/O session error as a rank panic, which the simulation
// engine reports as the run's error.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
