// Multitier: the paper's future-work extension (§VI) — aggregate into a
// fast intermediate tier (an NVMe burst buffer) and drain to the parallel
// file system in the background. The checkpoint returns as soon as data is
// staged; durability on Lustre arrives later.
//
// Run: go run ./examples/multitier
package main

import (
	"fmt"
	"log"

	"tapioca"
	"tapioca/internal/storage"
)

func main() {
	const (
		nodes     = 64
		rpn       = 4
		chunkSize = 2 << 20 // 2 MB per rank
	)
	totalGB := float64(int64(nodes*rpn)*chunkSize) / 1e9

	run := func(withBB bool) (checkpoint, durable float64) {
		opts := []tapioca.MachineOption{}
		if withBB {
			opts = append(opts, tapioca.WithBurstBuffer(storage.BurstBufferConfig{Servers: 8}))
		}
		m := tapioca.Theta(nodes, opts...)
		_, err := m.Run(rpn, func(ctx *tapioca.Ctx) {
			f := ctx.CreateFile("ckpt", tapioca.FileOptions{StripeCount: 8, StripeSize: 4 << 20})
			w := ctx.Tapioca(f, tapioca.Config{Aggregators: 8, BufferSize: 4 << 20})
			ctx.Barrier()
			t0 := ctx.Now()
			must(w.Init([][]tapioca.Seg{{tapioca.Contig(int64(ctx.Rank())*chunkSize, chunkSize)}}))
			must(w.WriteAll())
			ctx.Barrier()
			if ctx.Rank() == 0 {
				checkpoint = ctx.Now() - t0
				durable = ctx.DrainBurstBuffer() - t0
				if durable < checkpoint {
					durable = checkpoint
				}
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		return checkpoint, durable
	}

	direct, _ := run(false)
	staged, durable := run(true)

	fmt.Printf("checkpoint of %.2f GB on Theta-%d (%d ranks/node)\n\n", totalGB, nodes, rpn)
	fmt.Printf("direct to Lustre:        %7.1f ms  (%.2f GB/s, durable immediately)\n",
		direct*1e3, totalGB/direct)
	fmt.Printf("via burst buffer:        %7.1f ms  (%.2f GB/s perceived)\n",
		staged*1e3, totalGB/staged)
	fmt.Printf("background drain done:   %7.1f ms after checkpoint start\n", durable*1e3)
	fmt.Printf("\ncompute resumes %.1fx sooner; durability arrives asynchronously.\n",
		direct/staged)
}

// must surfaces an I/O session error as a rank panic, which the simulation
// engine reports as the run's error.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
