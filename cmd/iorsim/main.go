// Command iorsim runs an IOR-style collective I/O benchmark on a simulated
// machine, in the spirit of the paper's §V-B tuning studies.
//
// Usage:
//
//	iorsim -machine theta -nodes 128 -rpn 4 -size 1048576 \
//	       -stripe-count 12 -stripe-size 8388608 -method tapioca -read
package main

import (
	"flag"
	"fmt"
	"log"

	"tapioca"
)

func main() {
	var (
		machine     = flag.String("machine", "theta", "theta or mira")
		nodes       = flag.Int("nodes", 128, "compute nodes")
		rpn         = flag.Int("rpn", 4, "ranks per node")
		size        = flag.Int64("size", 1<<20, "bytes per rank")
		method      = flag.String("method", "tapioca", "tapioca or mpiio")
		aggregators = flag.Int("aggregators", 0, "aggregators / cb_nodes (0 = default)")
		buffer      = flag.Int64("buffer", 8<<20, "aggregation buffer bytes")
		stripeCount = flag.Int("stripe-count", 12, "Lustre stripe count (theta)")
		stripeSize  = flag.Int64("stripe-size", 8<<20, "Lustre stripe size (theta)")
		lockShared  = flag.Bool("lock-sharing", true, "GPFS shared locks (mira)")
		read        = flag.Bool("read", false, "measure reads instead of writes")
	)
	flag.Parse()

	var m *tapioca.Machine
	opt := tapioca.FileOptions{}
	switch *machine {
	case "mira":
		var mo []tapioca.MachineOption
		if *lockShared {
			mo = append(mo, tapioca.WithLockSharing())
		}
		m = tapioca.Mira(*nodes, mo...)
	case "theta":
		m = tapioca.Theta(*nodes)
		opt = tapioca.FileOptions{StripeCount: *stripeCount, StripeSize: *stripeSize}
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	var elapsed float64
	_, err := m.Run(*rpn, func(ctx *tapioca.Ctx) {
		f := ctx.CreateFile("ior", opt)
		segs := [][]tapioca.Seg{{tapioca.Contig(int64(ctx.Rank())**size, *size)}}
		ctx.Barrier()
		t0 := ctx.Now()
		if *method == "tapioca" {
			w := ctx.Tapioca(f, tapioca.Config{Aggregators: *aggregators, BufferSize: *buffer})
			must(w.Init(segs))
			if *read {
				must(w.ReadAll())
			} else {
				must(w.WriteAll())
			}
		} else {
			fh := ctx.MPIIO(f, tapioca.Hints{CBNodes: *aggregators, CBBufferSize: *buffer, AlignDomains: true})
			if *read {
				must(fh.ReadAtAll(segs[0]))
			} else {
				must(fh.WriteAtAll(segs[0]))
			}
			fh.Close()
		}
		ctx.Barrier()
		if ctx.Rank() == 0 {
			elapsed = ctx.Now() - t0
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	total := float64(int64(*nodes**rpn) * *size)
	op := "write"
	if *read {
		op = "read"
	}
	fmt.Printf("%s %s on %s: %d ranks × %d B = %.2f GB in %.3f s → %.3f GB/s\n",
		*method, op, m.Name(), *nodes**rpn, *size, total/1e9, elapsed, total/elapsed/1e9)
}

// must surfaces an I/O session error as a rank panic, which the simulation
// engine reports as the run's error.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
