// Command haccio runs the HACC-IO kernel (paper §V-D) on a simulated
// machine: 9 particle variables, 38 bytes per particle, AoS or SoA layout.
//
// Usage:
//
//	haccio -machine theta -nodes 128 -particles 25000 -layout aos -method tapioca
package main

import (
	"flag"
	"fmt"
	"log"

	"tapioca"
)

var varSizes = []int64{4, 4, 4, 4, 4, 4, 4, 8, 2}

const particleBytes = 38

func declared(rank, ranks int, particles int64, aos bool) [][]tapioca.Seg {
	out := make([][]tapioca.Seg, len(varSizes))
	if aos {
		base := int64(rank) * particles * particleBytes
		var off int64
		for v, sz := range varSizes {
			out[v] = []tapioca.Seg{tapioca.Strided(base+off, sz, particleBytes, particles)}
			off += sz
		}
		return out
	}
	var region int64
	for v, sz := range varSizes {
		out[v] = []tapioca.Seg{tapioca.Contig(region+int64(rank)*particles*sz, particles*sz)}
		region += int64(ranks) * particles * sz
	}
	return out
}

func main() {
	var (
		machine     = flag.String("machine", "theta", "theta or mira")
		nodes       = flag.Int("nodes", 128, "compute nodes")
		rpn         = flag.Int("rpn", 4, "ranks per node")
		particles   = flag.Int64("particles", 25000, "particles per rank")
		layout      = flag.String("layout", "aos", "aos or soa")
		method      = flag.String("method", "tapioca", "tapioca or mpiio")
		aggregators = flag.Int("aggregators", 0, "aggregators / cb_nodes (0 = default)")
		buffer      = flag.Int64("buffer", 16<<20, "aggregation buffer bytes")
	)
	flag.Parse()
	aos := *layout == "aos"

	var m *tapioca.Machine
	opt := tapioca.FileOptions{}
	subfile := false
	if *machine == "mira" {
		m = tapioca.Mira(*nodes, tapioca.WithLockSharing())
		subfile = true // file per Pset, the paper's Mira setup
	} else {
		m = tapioca.Theta(*nodes)
		opt = tapioca.FileOptions{StripeCount: 12, StripeSize: 16 << 20}
	}

	var elapsed float64
	_, err := m.Run(*rpn, func(ctx *tapioca.Ctx) {
		group := ctx
		name := "hacc"
		if subfile {
			pset := ctx.Pset()
			group = ctx.Split(pset, ctx.Rank())
			name = fmt.Sprintf("hacc-pset%d", pset)
		}
		f := ctx.CreateFile(name, opt)
		decl := declared(group.Rank(), group.Size(), *particles, aos)
		ctx.Barrier()
		t0 := ctx.Now()
		if *method == "tapioca" {
			w := group.Tapioca(f, tapioca.Config{Aggregators: *aggregators, BufferSize: *buffer})
			must(w.Init(decl))
			must(w.WriteAll())
		} else {
			fh := group.MPIIO(f, tapioca.Hints{CBNodes: *aggregators, CBBufferSize: *buffer, AlignDomains: true})
			for _, segs := range decl {
				must(fh.WriteAtAll(segs))
			}
			fh.Close()
		}
		ctx.Barrier()
		if ctx.Rank() == 0 {
			elapsed = ctx.Now() - t0
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	total := float64(int64(*nodes**rpn) * *particles * particleBytes)
	fmt.Printf("%s %s HACC-IO on %s: %d ranks × %d particles = %.2f GB in %.3f s → %.3f GB/s\n",
		*method, *layout, m.Name(), *nodes**rpn, *particles, total/1e9, elapsed, total/elapsed/1e9)
}

// must surfaces an I/O session error as a rank panic, which the simulation
// engine reports as the run's error.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
