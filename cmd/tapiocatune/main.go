// Command tapiocatune runs the model-driven autotuner against a simulated
// platform and workload, printing the chosen TAPIOCA configuration,
// file-creation options and matching MPI-IO hints.
//
// Usage:
//
//	tapiocatune -machine theta -nodes 512 -rpn 16 -workload ior -mb 1
//	tapiocatune -machine mira -nodes 1024 -workload hacc-aos -particles 25000
//	tapiocatune -workload ior -probes 3 -verify
//
// -probes enables the closed-loop mode (short simulated probe rounds
// re-ground the model before the final pick); the probes are independent
// simulations and run on a bounded worker pool by default (-parallel).
// -verify additionally runs the tuned and default configurations end to end
// and reports both bandwidths.
package main

import (
	"flag"
	"fmt"
	"os"

	"tapioca"
	"tapioca/internal/par"
)

func main() {
	var (
		machine   = flag.String("machine", "theta", "platform: theta or mira")
		nodes     = flag.Int("nodes", 128, "compute node count")
		rpn       = flag.Int("rpn", 16, "ranks per node")
		wl        = flag.String("workload", "ior", "workload: ior, hacc-aos, hacc-soa")
		mb        = flag.Float64("mb", 1, "per-rank data size in MB (ior)")
		particles = flag.Int64("particles", 25000, "particles per rank (hacc)")
		read      = flag.Bool("read", false, "tune a collective read instead of a write")
		probes    = flag.Int("probes", 0, "closed-loop probe count (0 = pure model)")
		burst     = flag.Bool("burst", false, "stack a burst-buffer staging tier on the machine")
		degraded  = flag.Bool("degraded", false, "tune for degraded mode: assume the burst-buffer tier is down and price against the tier behind it (implies -burst)")
		parallel  = flag.Bool("parallel", true, "run closed-loop probes on a worker pool (identical pick)")
		verify    = flag.Bool("verify", false, "run tuned vs default end to end")
		trace     = flag.String("trace", "", "write a Chrome trace-event flight recording of the tuned run to this file (implies -verify)")
	)
	flag.Parse()

	if *trace != "" {
		*verify = true
	}

	if !*parallel {
		par.SetLimit(1)
	}

	if *degraded {
		*burst = true
	}
	build := func() *tapioca.Machine {
		var mo []tapioca.MachineOption
		if *burst {
			mo = append(mo, tapioca.WithBurstBuffer(tapioca.BurstBufferConfig{}))
		}
		if *machine == "mira" {
			return tapioca.Mira(*nodes, append(mo, tapioca.WithLockSharing())...)
		}
		return tapioca.Theta(*nodes, mo...)
	}
	if *nodes < 1 || *rpn < 1 {
		fmt.Fprintf(os.Stderr, "tapiocatune: -nodes %d and -rpn %d must both be positive\n", *nodes, *rpn)
		os.Exit(2)
	}
	m := build()
	ranks := *nodes * *rpn

	var w tapioca.Workload
	switch *wl {
	case "ior":
		w = tapioca.IORWorkload(ranks, int64(*mb*(1<<20)))
	case "hacc-aos":
		w = tapioca.HACCWorkload(ranks, *particles, true)
	case "hacc-soa":
		w = tapioca.HACCWorkload(ranks, *particles, false)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	w.Read = *read

	var opts []tapioca.AutotuneOption
	if *probes > 0 {
		opts = append(opts, tapioca.WithProbes(*probes))
	}
	if *degraded {
		opts = append(opts, tapioca.WithDegraded())
	}
	// TryAutotune plumbs -rpn through to the tuner's ranks-per-node density
	// (tune.Platform.RanksPerNode) and reports an infeasible rank/node/rpn
	// combination as an error instead of a panic.
	cfg, fopt, hints, err := tapioca.TryAutotune(m, w, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Autotuned %s on %s (%d ranks, %d/node, %.2f MB/rank)\n\n",
		w.Name, m.Name(), ranks, *rpn, float64(w.TotalBytes())/float64(ranks)/(1<<20))
	fmt.Printf("  Config       Aggregators=%d BufferSize=%dMB Placement=%s SingleBuffer=%v IntraNodeStaging=%v\n",
		cfg.Aggregators, cfg.BufferSize>>20, cfg.Placement.Name(), cfg.SingleBuffer, cfg.IntraNodeStaging)
	fmt.Printf("  FileOptions  StripeCount=%d StripeSize=%dMB\n",
		fopt.StripeCount, fopt.StripeSize>>20)
	fmt.Printf("  Hints        CBNodes=%d CBBufferSize=%dMB Strategy=%s AlignDomains=%v CyclicDomains=%v\n",
		hints.CBNodes, hints.CBBufferSize>>20, hints.Strategy.Name(), hints.AlignDomains, hints.CyclicDomains)

	if !*verify {
		return
	}
	run := func(c tapioca.Config, fo tapioca.FileOptions, tracePath string) float64 {
		vm := build()
		if tracePath != "" {
			vm.EnableTracing()
		}
		var elapsed float64
		_, err := vm.Run(*rpn, func(ctx *tapioca.Ctx) {
			f := ctx.CreateFile("verify", fo)
			wr := ctx.Tapioca(f, c)
			decl := w.Declared(ctx.Rank(), ctx.Size())
			ctx.Barrier()
			t0 := ctx.Now()
			must(wr.Init(decl))
			if w.Read {
				must(wr.ReadAll())
			} else {
				must(wr.WriteAll())
			}
			ctx.Barrier()
			if ctx.Rank() == 0 {
				elapsed = ctx.Now() - t0
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if tracePath != "" {
			tf, terr := os.Create(tracePath)
			if terr == nil {
				terr = vm.WriteTrace(tf)
				if cerr := tf.Close(); terr == nil {
					terr = cerr
				}
			}
			if terr != nil {
				fmt.Fprintln(os.Stderr, terr)
				os.Exit(1)
			}
			fmt.Printf("\n  trace: tuned run -> %s (open in https://ui.perfetto.dev)\n", tracePath)
		}
		return elapsed
	}
	total := float64(w.TotalBytes())
	tuned := run(cfg, fopt, *trace)
	def := run(tapioca.Config{}, tapioca.FileOptions{}, "")
	fmt.Printf("\n  verify: tuned %8.1f ms (%6.2f GB/s)   defaults %8.1f ms (%6.2f GB/s)   %.2fx\n",
		tuned*1e3, total/tuned/1e9, def*1e3, total/def/1e9, def/tuned)
}

// must surfaces an I/O session error as a rank panic, which the simulation
// engine reports as the run's error.
func must(err error) {
	if err != nil {
		panic(err)
	}
}
