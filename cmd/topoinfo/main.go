// Command topoinfo inspects the simulated interconnect topologies: node
// coordinates, distances, routes, Pset/bridge structure (BG/Q) and
// group/router structure (dragonfly).
//
// Usage:
//
//	topoinfo -machine mira -nodes 512 -from 0 -to 200
package main

import (
	"flag"
	"fmt"
	"log"

	"tapioca/internal/topology"
)

func main() {
	var (
		machine = flag.String("machine", "mira", "mira or theta")
		nodes   = flag.Int("nodes", 512, "compute nodes")
		from    = flag.Int("from", 0, "source node")
		to      = flag.Int("to", 1, "destination node")
	)
	flag.Parse()

	var topo topology.Topology
	switch *machine {
	case "mira":
		topo = topology.MiraTorus(*nodes)
	case "theta":
		topo = topology.ThetaDragonfly(*nodes, topology.RouteMinimal)
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	fmt.Printf("topology: %s\n", topo.Name())
	fmt.Printf("nodes:    %d (dimensions %v)\n", topo.Nodes(), topo.Dimensions())
	fmt.Printf("I/O nodes: %d, per-hop latency %d ns\n", topo.IONodes(), topo.Latency())
	for lvl, name := range []string{"injection", "fabric", "io-uplink", "storage"} {
		fmt.Printf("bandwidth[%s] = %.2f GB/s\n", name, topo.Bandwidth(lvl)/1e9)
	}

	if *from >= topo.Nodes() || *to >= topo.Nodes() {
		log.Fatalf("nodes out of range (have %d)", topo.Nodes())
	}
	fmt.Printf("\nnode %d: coordinates %v", *from, topo.Coordinates(*from))
	if ion := topo.IONodeOf(*from); ion != topology.IONUnknown {
		fmt.Printf(", ION/Pset %d (distance %d)", ion, topo.DistanceToION(*from, ion))
	} else {
		fmt.Printf(", ION locality hidden (C2 = 0, as on Theta)")
	}
	fmt.Println()
	fmt.Printf("node %d: coordinates %v\n", *to, topo.Coordinates(*to))
	route := topo.Route(*from, *to)
	hops, bw := topology.PathInfo(topo, *from, *to)
	fmt.Printf("distance %d hops, route %d links, bottleneck %.2f GB/s\n",
		topo.Distance(*from, *to), hops, bw/1e9)
	_ = route

	if tor, ok := topo.(*topology.Torus5D); ok {
		fmt.Printf("\nPsets (%d nodes each):\n", tor.PsetSize)
		for p := 0; p < tor.IONodes() && p < 8; p++ {
			br := tor.BridgeNodes(p)
			fmt.Printf("  pset %d: nodes [%d,%d), bridges %d and %d\n",
				p, p*tor.PsetSize, (p+1)*tor.PsetSize, br[0], br[1])
		}
	}
	if d, ok := topo.(*topology.Dragonfly); ok {
		fmt.Printf("\ndragonfly: %d groups × %d×%d routers × %d nodes, %d LNET service nodes\n",
			d.Groups, d.Rows, d.Cols, d.NodesPerRouter, d.ServiceNodes)
	}
}
