// Command tapiocabench regenerates the paper's tables and figures.
//
// Usage:
//
//	tapiocabench -list
//	tapiocabench -experiment fig10
//	tapiocabench -experiment all -full -csv out/
//
// Without -full, experiments run at a reduced scale (≈1/4 the nodes, 4
// ranks/node) that preserves the paper's shapes; -full uses the paper's node
// counts (up to 65,536 simulated ranks — minutes per figure).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tapioca/internal/expt"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		id     = flag.String("experiment", "all", "experiment id (fig7…fig14, table1, abl-*, or all)")
		full   = flag.Bool("full", false, "run at the paper's full scale")
		csvDir = flag.String("csv", "", "also write CSV files into this directory")
	)
	flag.Parse()

	if *list {
		for _, s := range expt.All() {
			fmt.Printf("%-16s %s\n", s.ID, s.Title)
		}
		return
	}

	var specs []expt.Spec
	if *id == "all" {
		specs = expt.All()
	} else {
		s := expt.ByID(*id)
		if s == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *id)
			os.Exit(2)
		}
		specs = []expt.Spec{*s}
	}

	for _, s := range specs {
		start := time.Now()
		res := s.Run(*full)
		fmt.Print(expt.Render(res))
		fmt.Printf("(wall time %.1fs)\n\n", time.Since(start).Seconds())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, res.ID+".csv")
			if err := os.WriteFile(path, []byte(expt.CSV(res)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
