// Command tapiocabench regenerates the paper's tables and figures.
//
// Usage:
//
//	tapiocabench -list
//	tapiocabench -experiment fig10
//	tapiocabench -experiment all -scale full -csv out/
//	tapiocabench -experiment all -json results.json
//	tapiocabench -experiment all -parallel=false   # serial reference run
//	tapiocabench -experiment fig7 -trace fig7.trace.json -phases
//
// At the default -scale reduced, experiments run at ≈1/4 the paper's nodes
// (preserving its shapes). -scale full uses the paper's own node counts (up
// to 65,536 simulated ranks); with -experiment all it runs the registered
// full-scale variants (fig7-full, fig9-full, fig10-full, fig13-full), each
// of which completes in minutes on one core. Each figure's independent grid
// cells execute on a bounded worker pool by default (-parallel); results
// are identical to the serial order. -json writes one machine-readable file
// covering every experiment run — including per-figure wall-clock seconds,
// peak heap bytes, simulated transfer counts, a flight-recorder metrics
// snapshot, and a per-phase time breakdown — so benchmark trajectories
// capture simulator speed and footprint, not just simulated GB/s. -trace
// writes the whole run's flight recording as Chrome trace-event JSON
// (byte-identical across serial and parallel runs; open in Perfetto), and
// -phases prints each figure's aggregation/exchange/storage/codec
// rank-seconds table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"tapioca/internal/expt"
	"tapioca/internal/fault"
	"tapioca/internal/obs"
	"tapioca/internal/tree"
)

// jsonResult is the machine-readable record of one experiment run.
type jsonResult struct {
	ID             string    `json:"id"`
	Title          string    `json:"title"`
	XLabel         string    `json:"xlabel"`
	Labels         []string  `json:"labels"`
	Rows           []jsonRow `json:"rows"`
	Notes          []string  `json:"notes,omitempty"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	Workers        int       `json:"workers"`
	// Transfers counts every simulated transfer the figure's measurement
	// cells booked (including intra-node ones) — the quantity the
	// cached-routing and request-coalescing work drives down per simulated
	// byte.
	Transfers int64 `json:"transfers"`
	// FabricMessages counts only the inter-node messages among those
	// transfers — the traffic that crosses the fabric, which intra-node
	// pre-aggregation collapses ppn-fold (see abl-intranode).
	FabricMessages int64 `json:"fabric_messages"`
	// PeakHeapBytes is the maximum live heap observed while the figure ran
	// (sampled), the footprint bound for paper-scale runs.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// Verified reports that this binary's data-plane round-trip smoke
	// (-verify: real payload bytes written through the aggregation pipeline
	// and read back checksum-identical) passed before the experiments ran.
	// Omitted when -verify was not requested.
	Verified bool `json:"verified,omitempty"`
	// VerifyPipelineSeconds and VerifyVerifySeconds split the -verify run's
	// host wall-clock into the pipeline itself (write + read sessions) and
	// the verification work (byte compare + CRC-64 parity, including the
	// store-side checksum). Omitted when -verify was not requested.
	VerifyPipelineSeconds float64 `json:"verify_pipeline_seconds,omitempty"`
	VerifyVerifySeconds   float64 `json:"verify_verify_seconds,omitempty"`
	// Phases breaks the figure's rank-time (virtual seconds summed over
	// ranks and cells) down by pipeline phase: aggregation, exchange,
	// storage, codec.
	Phases map[string]float64 `json:"phases,omitempty"`
	// Metrics is the flight recorder's registry snapshot for this figure's
	// cells: counters (bytes per tier, rounds, transfers), gauges (peak
	// utilization, codec ratio) and histogram stats (link/NIC utilization
	// percentiles, host-side store and codec timings under the
	// nondeterministic "host." prefix).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// TreeLevels and TreeFanIn describe the deepest synthesized aggregation
	// tree across the figure's cells (sessions run with Config.Tree or the
	// -tree flag; zero when every session used a fixed data plane), and
	// TreeLevelMessages breaks the coalesced inter-node puts down per tree
	// level, keyed by depth ("1" is the level feeding the root). Together
	// with FabricMessages they quantify what a reduction shape did to the
	// fabric (see abl-tree).
	TreeLevels        int              `json:"tree_levels,omitempty"`
	TreeFanIn         int              `json:"tree_fanin,omitempty"`
	TreeLevelMessages map[string]int64 `json:"tree_level_fabric_messages,omitempty"`
	// Faults and Recovery are the fault-plane event counters ("fault." and
	// "recovery." prefixes of the metrics snapshot): injected transients,
	// latency spikes, retransmits, corruptions and aggregator deaths on the
	// fault side; retries, backoff time, failovers, replayed/degraded rounds
	// and repaired extents on the recovery side. Present only when fault
	// injection ran (-faults, or the abl-faults chaos experiment).
	Faults   map[string]int64 `json:"faults,omitempty"`
	Recovery map[string]int64 `json:"recovery,omitempty"`
}

// splitFaultCounters extracts the fault-plane blocks from a metrics snapshot.
func splitFaultCounters(snap *obs.Snapshot) (faults, recovery map[string]int64) {
	for name, v := range snap.Counters {
		switch {
		case strings.HasPrefix(name, "fault."):
			if faults == nil {
				faults = map[string]int64{}
			}
			faults[strings.TrimPrefix(name, "fault.")] = v
		case strings.HasPrefix(name, "recovery."):
			if recovery == nil {
				recovery = map[string]int64{}
			}
			recovery[strings.TrimPrefix(name, "recovery.")] = v
		}
	}
	return faults, recovery
}

// treeStats extracts the aggregation-tree block from a metrics snapshot: the
// deepest tree's level count and fan-in, and the per-level coalesced message
// counters keyed by depth.
func treeStats(snap *obs.Snapshot) (levels, fanin int, perLevel map[string]int64) {
	levels = int(snap.Gauges["tapioca.tree.levels"])
	fanin = int(snap.Gauges["tapioca.tree.fanin"])
	for name, v := range snap.Counters {
		if rest, ok := strings.CutPrefix(name, "tapioca.tree.level."); ok {
			if perLevel == nil {
				perLevel = map[string]int64{}
			}
			perLevel[strings.TrimSuffix(rest, ".messages")] = v
		}
	}
	return levels, fanin, perLevel
}

// fmtLevels renders the per-level message map as "1:960 2:240", shallowest
// level (feeding the root) first.
func fmtLevels(perLevel map[string]int64) string {
	keys := make([]string, 0, len(perLevel))
	for k := range perLevel {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, _ := strconv.Atoi(keys[i])
		b, _ := strconv.Atoi(keys[j])
		return a < b
	})
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, perLevel[k])
	}
	return strings.Join(parts, " ")
}

type jsonRow struct {
	X      float64   `json:"x"`
	Values []float64 `json:"values"`
}

// mb formats bytes as mebibytes for the console line.
func mb(b uint64) float64 { return float64(b) / (1 << 20) }

func main() { os.Exit(run()) }

// run is main's body; returning the exit code (instead of os.Exit inline)
// lets the profile writers' defers fire on error paths, so -cpuprofile and
// -memprofile files are valid even when a flag or output path is bad.
func run() int {
	// Batch workload: trade heap headroom for fewer GC cycles (simulations
	// churn short-lived per-round state across tens of thousands of
	// goroutine stacks, and every cycle re-scans them). An explicit GOGC
	// still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	var (
		list     = flag.Bool("list", false, "list available experiments")
		id       = flag.String("experiment", "all", "experiment id (fig7…fig14, table1, abl-*, a *-full variant, or all)")
		scale    = flag.String("scale", "reduced", "experiment scale: reduced or full (paper node counts)")
		full     = flag.Bool("full", false, "deprecated alias for -scale full")
		csvDir   = flag.String("csv", "", "also write CSV files into this directory")
		jsonPath = flag.String("json", "", "also write all results as JSON to this file")
		parallel = flag.Bool("parallel", true, "run each figure's independent grid cells on a worker pool (identical results)")
		workers  = flag.Int("workers", 0, "worker-pool width with -parallel (0 = GOMAXPROCS)")
		profile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		verify   = flag.Bool("verify", false, "run the data-plane round-trip smoke (real bytes, checksum-verified) before the experiments")
		trace    = flag.String("trace", "", "write a Chrome trace-event JSON flight recording to this file (open in Perfetto)")
		phases   = flag.Bool("phases", false, "print a per-figure phase breakdown table (aggregation/exchange/storage/codec rank-seconds)")
		faults   = flag.String("faults", "", "arm deterministic fault injection for every cell as \"seed,rate\" (e.g. 7,0.05)")
		treePlan = flag.String("tree", "", "arm an aggregation-tree shape for every cell (flat, staged, group, chain, fanin:k)")
		recovery = flag.Bool("recovery", true, "with -faults: arm the self-healing machinery (retry, failover, degraded writes, repair)")
		short    = flag.Bool("short", false, "shrink the abl-faults chaos sweep to its CI smoke subset")
	)
	flag.Parse()

	if *faults != "" {
		seed, rate, err := parseFaults(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		cfg := fault.Profile(seed, rate)
		expt.SetFaultConfig(&cfg)
	}
	expt.SetFaultRecovery(*recovery)
	expt.SetChaosShort(*short)
	if *treePlan != "" {
		sh, err := tree.ParseShape(*treePlan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-tree: %v\n", err)
			return 2
		}
		expt.SetTreeShape(&sh)
	}

	fullScale := *full
	switch *scale {
	case "reduced":
	case "full":
		fullScale = true
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q (want reduced or full)\n", *scale)
		return 2
	}

	if *profile != "" {
		pf, err := os.Create(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			pf, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer pf.Close()
			if err := pprof.Lookup("allocs").WriteTo(pf, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *parallel {
		expt.SetParallelism(*workers)
	} else {
		expt.SetParallelism(1)
	}

	if *list {
		for _, s := range expt.All() {
			fmt.Printf("%-16s %s\n", s.ID, s.Title)
		}
		for _, s := range expt.FullScale() {
			fmt.Printf("%-16s %s\n", s.ID, s.Title)
		}
		for _, s := range expt.DataPlane() {
			fmt.Printf("%-16s %s\n", s.ID, s.Title)
		}
		for _, s := range expt.Chaos() {
			fmt.Printf("%-16s %s\n", s.ID, s.Title)
		}
		return 0
	}

	var specs []expt.Spec
	if *id == "all" {
		if fullScale {
			// The registered full-scale variants: paper node counts, each
			// finishing in minutes on one core.
			specs = expt.FullScale()
		} else {
			specs = expt.All()
		}
	} else {
		s := expt.ByID(*id)
		if s == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *id)
			return 2
		}
		specs = []expt.Spec{*s}
	}

	// -trace records full event streams; -json and -phases only need the
	// metrics/phase side of the recorder (far cheaper). Either way the hot
	// paths see one nil/bool check per phase boundary.
	if *trace != "" {
		expt.StartObservation(true)
	} else if *jsonPath != "" || *phases {
		expt.StartObservation(false)
	}

	verified := false
	var verifyStats expt.VerifyStats
	if *verify {
		expt.ObserveFigure("verify")
		var err error
		if verifyStats, err = expt.VerifyDataPlaneStats(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		verified = true
		fmt.Printf("data plane verified: write→read round trip checksum-identical on both platforms (pipeline %.2fs, verification %.2fs)\n\n",
			verifyStats.PipelineSeconds, verifyStats.VerifySeconds)
	}

	var records []jsonResult
	if verified && *jsonPath != "" {
		// The -verify run's own flight-recorder metrics (including the
		// pipeline/verify wall-clock split and the capture-truncation
		// count) become a synthetic leading record.
		if snap := expt.MetricsOf("verify").Snapshot(); !snap.Empty() {
			records = append(records, jsonResult{
				ID:                    "verify",
				Title:                 "Data-plane round-trip verification (flight-recorder metrics)",
				Verified:              true,
				VerifyPipelineSeconds: verifyStats.PipelineSeconds,
				VerifyVerifySeconds:   verifyStats.VerifySeconds,
				Metrics:               &snap,
			})
		}
	}
	for _, s := range specs {
		expt.ResetTransferCount()
		expt.ResetFabricMessageCount()
		expt.ResetPeakHeap()
		expt.ObserveFigure(s.ID)
		start := time.Now()
		res := s.Run(fullScale)
		elapsed := time.Since(start).Seconds()
		peak := expt.PeakHeapBytes()
		transfers := expt.TransferCount()
		fabricMsgs := expt.FabricMessageCount()
		fmt.Print(expt.Render(res))
		fmt.Printf("(wall time %.1fs, %d workers, %d transfers, %d fabric messages, peak heap %.0f MiB)\n",
			elapsed, expt.Parallelism(), transfers, fabricMsgs, mb(peak))
		var snap obs.Snapshot
		if *trace != "" || *jsonPath != "" || *phases {
			snap = expt.MetricsOf(s.ID).Snapshot()
		}
		if levels, fanin, perLevel := treeStats(&snap); levels > 0 {
			fmt.Printf("(aggregation tree: %d levels, max fan-in %d, per-level fabric messages %s)\n",
				levels, fanin, fmtLevels(perLevel))
		}
		fmt.Println()
		if *phases {
			if tbl := expt.PhaseTable(s.ID); tbl != "" {
				fmt.Println(tbl)
			}
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			path := filepath.Join(*csvDir, res.ID+".csv")
			if err := os.WriteFile(path, []byte(expt.CSV(res)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		if *jsonPath != "" {
			rec := jsonResult{
				ID:             res.ID,
				Title:          res.Title,
				XLabel:         res.XLabel,
				Labels:         res.Labels,
				Notes:          res.Notes,
				ElapsedSeconds: elapsed,
				Workers:        expt.Parallelism(),
				Transfers:      transfers,
				FabricMessages: fabricMsgs,
				PeakHeapBytes:  peak,
				Verified:       verified,
			}
			if verified {
				rec.VerifyPipelineSeconds = verifyStats.PipelineSeconds
				rec.VerifyVerifySeconds = verifyStats.VerifySeconds
			}
			rec.Phases = expt.PhaseSeconds(s.ID)
			if !snap.Empty() {
				rec.Metrics = &snap
				rec.Faults, rec.Recovery = splitFaultCounters(&snap)
				rec.TreeLevels, rec.TreeFanIn, rec.TreeLevelMessages = treeStats(&snap)
			}
			for _, row := range res.Rows {
				rec.Rows = append(rec.Rows, jsonRow{X: row.X, Values: row.Values})
			}
			records = append(records, rec)
		}
	}
	if *jsonPath != "" {
		out, err := json.MarshalIndent(records, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *trace != "" {
		if err := writeTrace(*trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}

// parseFaults parses the -faults "seed,rate" argument.
func parseFaults(s string) (uint64, float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-faults wants \"seed,rate\", got %q", s)
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("-faults seed: %v", err)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("-faults rate: %v", err)
	}
	if rate < 0 || rate > 1 {
		return 0, 0, fmt.Errorf("-faults rate %g outside [0, 1]", rate)
	}
	return seed, rate, nil
}

// writeTrace writes the session's merged flight recording in Chrome
// trace-event JSON, then re-reads the file and parses it — the trace is only
// reported as written once it is known to be valid JSON with events in it.
func writeTrace(path string) error {
	tr := expt.ObservedTrace()
	if tr == nil || tr.NumEvents() == 0 {
		return fmt.Errorf("tapiocabench: no trace events recorded (nothing ran?)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tr.Write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("tapiocabench: trace %s is not valid JSON: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("tapiocabench: trace %s has no events", path)
	}
	if n := tr.Dropped(); n > 0 {
		fmt.Printf("trace: %d events over the per-cell cap were dropped\n", n)
	}
	fmt.Printf("trace: %d events across %d cells -> %s (open in https://ui.perfetto.dev)\n",
		tr.NumEvents(), tr.NumCells(), path)
	return nil
}
