// Command tapiocabench regenerates the paper's tables and figures.
//
// Usage:
//
//	tapiocabench -list
//	tapiocabench -experiment fig10
//	tapiocabench -experiment all -full -csv out/
//	tapiocabench -experiment all -json results.json
//	tapiocabench -experiment all -parallel=false   # serial reference run
//
// Without -full, experiments run at a reduced scale (≈1/4 the nodes, 4
// ranks/node) that preserves the paper's shapes; -full uses the paper's node
// counts (up to 65,536 simulated ranks). Each figure's independent grid
// cells execute on a bounded worker pool by default (-parallel); results are
// identical to the serial order. -json writes one machine-readable file
// covering every experiment run — including per-figure wall-clock seconds,
// so benchmark trajectories capture simulator speed, not just simulated
// GB/s.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tapioca/internal/expt"
)

// jsonResult is the machine-readable record of one experiment run.
type jsonResult struct {
	ID             string    `json:"id"`
	Title          string    `json:"title"`
	XLabel         string    `json:"xlabel"`
	Labels         []string  `json:"labels"`
	Rows           []jsonRow `json:"rows"`
	Notes          []string  `json:"notes,omitempty"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	Workers        int       `json:"workers"`
}

type jsonRow struct {
	X      float64   `json:"x"`
	Values []float64 `json:"values"`
}

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		id       = flag.String("experiment", "all", "experiment id (fig7…fig14, table1, abl-*, or all)")
		full     = flag.Bool("full", false, "run at the paper's full scale")
		csvDir   = flag.String("csv", "", "also write CSV files into this directory")
		jsonPath = flag.String("json", "", "also write all results as JSON to this file")
		parallel = flag.Bool("parallel", true, "run each figure's independent grid cells on a worker pool (identical results)")
		workers  = flag.Int("workers", 0, "worker-pool width with -parallel (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *parallel {
		expt.SetParallelism(*workers)
	} else {
		expt.SetParallelism(1)
	}

	if *list {
		for _, s := range expt.All() {
			fmt.Printf("%-16s %s\n", s.ID, s.Title)
		}
		return
	}

	var specs []expt.Spec
	if *id == "all" {
		specs = expt.All()
	} else {
		s := expt.ByID(*id)
		if s == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *id)
			os.Exit(2)
		}
		specs = []expt.Spec{*s}
	}

	var records []jsonResult
	for _, s := range specs {
		start := time.Now()
		res := s.Run(*full)
		elapsed := time.Since(start).Seconds()
		fmt.Print(expt.Render(res))
		fmt.Printf("(wall time %.1fs, %d workers)\n\n", elapsed, expt.Parallelism())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, res.ID+".csv")
			if err := os.WriteFile(path, []byte(expt.CSV(res)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *jsonPath != "" {
			rec := jsonResult{
				ID:             res.ID,
				Title:          res.Title,
				XLabel:         res.XLabel,
				Labels:         res.Labels,
				Notes:          res.Notes,
				ElapsedSeconds: elapsed,
				Workers:        expt.Parallelism(),
			}
			for _, row := range res.Rows {
				rec.Rows = append(rec.Rows, jsonRow{X: row.X, Values: row.Values})
			}
			records = append(records, rec)
		}
	}
	if *jsonPath != "" {
		out, err := json.MarshalIndent(records, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
