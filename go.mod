module tapioca

go 1.24
