package tapioca_test

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V). Each benchmark runs the corresponding experiment grid at the
// reduced scale (same shapes as the paper; see EXPERIMENTS.md) and reports
// the headline numbers as custom metrics:
//
//	tapioca_GBps   TAPIOCA bandwidth at the largest data size
//	baseline_GBps  the MPI-IO (or untuned) comparison point
//	speedup        their ratio — the paper's headline claim per figure
//
// Figure grids execute their independent cells on the bounded worker pool
// (internal/par) by default, so ns/op here tracks the parallel wall clock;
// BenchmarkFig10_MicroThetaSerial pins the serial reference. Full-scale runs
// (the paper's node counts, up to 65,536 simulated ranks) are available
// through cmd/tapiocabench -full.

import (
	"testing"

	"tapioca"
	"tapioca/internal/cost"
	"tapioca/internal/expt"
	"tapioca/internal/topology"
)

// runFigure executes the experiment b.N times and reports the headline
// metrics extracted by pickCols (indices into the result's series).
func runFigure(b *testing.B, spec *expt.Spec, tapiocaCol, baselineCol int) {
	b.Helper()
	var res expt.Result
	for i := 0; i < b.N; i++ {
		res = spec.Run(false)
	}
	last := res.Rows[len(res.Rows)-1]
	tap := last.Values[tapiocaCol]
	base := last.Values[baselineCol]
	b.ReportMetric(tap, "tapioca_GB/s")
	b.ReportMetric(base, "baseline_GB/s")
	if base > 0 {
		b.ReportMetric(tap/base, "speedup")
	}
}

// BenchmarkFig07_IORMira regenerates Fig. 7: IOR on Mira, baseline vs
// user-tuned MPI-IO (read and write). The "speedup" metric is
// optimized-write over baseline-write (paper: ~3x at 4 MB).
func BenchmarkFig07_IORMira(b *testing.B) {
	runFigure(b, expt.ByID("fig7"), 1, 3)
}

// BenchmarkFig08_IORTheta regenerates Fig. 8: IOR on Theta, tuned vs
// platform defaults. Speedup is optimized-write over baseline-write
// (paper: ~50x on a log-scale figure).
func BenchmarkFig08_IORTheta(b *testing.B) {
	runFigure(b, expt.ByID("fig8"), 1, 3)
}

// BenchmarkFig09_MicroMira regenerates Fig. 9: the micro-benchmark on Mira
// (paper: TAPIOCA ≈ MPI-IO).
func BenchmarkFig09_MicroMira(b *testing.B) {
	runFigure(b, expt.ByID("fig9"), 0, 1)
}

// BenchmarkFig10_MicroTheta regenerates Fig. 10: the micro-benchmark on
// Theta (paper: TAPIOCA ~2x at 3.6 MB/rank).
func BenchmarkFig10_MicroTheta(b *testing.B) {
	runFigure(b, expt.ByID("fig10"), 0, 1)
}

// BenchmarkFig10_MicroThetaSerial runs the same grid with the worker pool
// disabled: the serial reference for the parallel runner's wall-clock win
// (results are identical by construction — see TestParallelRunMatchesSerial
// in internal/expt).
func BenchmarkFig10_MicroThetaSerial(b *testing.B) {
	expt.SetParallelism(1)
	defer expt.SetParallelism(0)
	runFigure(b, expt.ByID("fig10"), 0, 1)
}

// BenchmarkTable1_BufferStripeRatio regenerates Table I: the
// aggregation-buffer:stripe-size ratio study (paper: 1:1 optimal).
// Metrics: the 1:1 bandwidth and the worst ratio's bandwidth.
func BenchmarkTable1_BufferStripeRatio(b *testing.B) {
	var res expt.Result
	for i := 0; i < b.N; i++ {
		res = expt.Table1(false)
	}
	var oneToOne, worst float64
	for _, row := range res.Rows {
		v := row.Values[0]
		if row.X == 1 {
			oneToOne = v
		}
		if worst == 0 || v < worst {
			worst = v
		}
	}
	b.ReportMetric(oneToOne, "ratio1to1_GB/s")
	b.ReportMetric(worst, "worstRatio_GB/s")
	b.ReportMetric(oneToOne/worst, "peak_over_worst")
}

// BenchmarkFig11_HACCMira1K regenerates Fig. 11: HACC-IO on Mira, 1,024
// nodes scale. Speedup is TAPIOCA-AoS over MPI-IO-AoS (paper: up to ~12x).
func BenchmarkFig11_HACCMira1K(b *testing.B) {
	runFigure(b, expt.ByID("fig11"), 0, 1)
}

// BenchmarkFig12_HACCMira4K regenerates Fig. 12: HACC-IO on Mira at 4x the
// scale (paper: same shape, ~90% of peak).
func BenchmarkFig12_HACCMira4K(b *testing.B) {
	if testing.Short() {
		b.Skip("fig12 runs 8,192 simulated ranks")
	}
	runFigure(b, expt.ByID("fig12"), 0, 1)
}

// BenchmarkFig13_HACCTheta1K regenerates Fig. 13: HACC-IO on Theta
// (paper: ~7x over MPI-IO at ~1 MB/rank).
func BenchmarkFig13_HACCTheta1K(b *testing.B) {
	runFigure(b, expt.ByID("fig13"), 0, 1)
}

// BenchmarkFig14_HACCTheta2K regenerates Fig. 14: HACC-IO on Theta at 2,048
// nodes scale (paper: ~4x at 3.6 MB/rank AoS).
func BenchmarkFig14_HACCTheta2K(b *testing.B) {
	runFigure(b, expt.ByID("fig14"), 0, 1)
}

// BenchmarkAblationPlacement quantifies the aggregator placement cost model
// (aggregation phase isolated; speedup = topology-aware over adversarial).
func BenchmarkAblationPlacement(b *testing.B) {
	runFigure(b, expt.ByID("abl-placement"), 0, 3)
}

// BenchmarkAblationPipeline quantifies double buffering on Theta
// (speedup = double over single buffer).
func BenchmarkAblationPipeline(b *testing.B) {
	var res expt.Result
	for i := 0; i < b.N; i++ {
		res = expt.AblationPipeline(false)
	}
	theta := res.Rows[0]
	b.ReportMetric(theta.Values[0], "double_GB/s")
	b.ReportMetric(theta.Values[1], "single_GB/s")
	b.ReportMetric(theta.Values[0]/theta.Values[1], "speedup")
}

// BenchmarkAblationDeclaredIO quantifies declared I/O against per-call
// aggregation on the HACC AoS workload (the paper's Fig. 2 argument).
func BenchmarkAblationDeclaredIO(b *testing.B) {
	runFigure(b, expt.ByID("abl-declared"), 0, 1)
}

// BenchmarkAblationAggregators sweeps the aggregator count (reports the
// best observed bandwidth).
func BenchmarkAblationAggregators(b *testing.B) {
	var res expt.Result
	for i := 0; i < b.N; i++ {
		res = expt.AblationAggregators(false)
	}
	var best float64
	for _, row := range res.Rows {
		if row.Values[0] > best {
			best = row.Values[0]
		}
	}
	b.ReportMetric(best, "best_GB/s")
}

// BenchmarkAblationContention compares the per-link and endpoint-only
// network models (storage-bound workloads should agree).
func BenchmarkAblationContention(b *testing.B) {
	runFigure(b, expt.ByID("abl-contention"), 0, 1)
}

// BenchmarkAutotune measures the model-driven configuration search itself —
// scoring the whole candidate grid (plan estimation, elections, flush
// pricing) for a Theta collective write, with zero simulations. The picked
// aggregator count and buffer size are reported as metrics so trajectory
// tracking catches a silently changed pick.
func BenchmarkAutotune(b *testing.B) {
	m := tapioca.Theta(128)
	w := tapioca.IORWorkload(128*16, 1<<20)
	var cfg tapioca.Config
	for i := 0; i < b.N; i++ {
		cfg, _, _ = tapioca.Autotune(m, w)
	}
	b.ReportMetric(float64(cfg.Aggregators), "aggregators")
	b.ReportMetric(float64(cfg.BufferSize>>20), "buffer_MB")
}

// BenchmarkAutotuneEndToEnd races the tuned configuration against the
// library defaults end to end (the abl-autotune grid): tapioca_GB/s is the
// tuned write, baseline_GB/s the defaults, speedup their ratio.
func BenchmarkAutotuneEndToEnd(b *testing.B) {
	runFigure(b, expt.ByID("abl-autotune"), 1, 0)
}

// electionMembers spreads nRanks members across a topology's nodes with a
// mild data skew, the shape an aggregator election sees.
func electionMembers(topo topology.Topology, nRanks int) []cost.Member {
	members := make([]cost.Member, nRanks)
	for i := range members {
		members[i] = cost.Member{
			Node:  i * topo.Nodes() / nRanks,
			Bytes: int64(i%7+1) << 18,
		}
	}
	return members
}

// costModelBench measures one full candidate scan (every member priced as
// aggregator — the O(P²) distance pattern elections produce).
func costModelBench(b *testing.B, m *cost.Model, members []cost.Member) {
	b.Helper()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		for cand := range members {
			sink += m.CandidacyCost(members, cand, 1<<24)
		}
	}
	if sink == 0 {
		b.Fatal("no cost evaluated")
	}
}

// BenchmarkCostModel quantifies the memoized distance cache on a Theta(512)
// dragonfly: the same candidate scan with cached vs uncached lookups. The
// cached variant amortizes each node pair to an array read (the refactor's
// claimed speedup; expect an order of magnitude at this scale).
func BenchmarkCostModel(b *testing.B) {
	topo := topology.ThetaDragonfly(512, topology.RouteMinimal)
	members := electionMembers(topo, 1024)
	b.Run("cached", func(b *testing.B) {
		m := cost.NewModel(topo) // private cache, warmed on first iteration
		costModelBench(b, m, members)
	})
	b.Run("uncached", func(b *testing.B) {
		costModelBench(b, cost.NewModel(topo, cost.Uncached()), members)
	})
}

// BenchmarkElection measures end-to-end local-mode elections (what MPI-IO's
// AggrTopologyAware runs per aggregator block) at 512 nodes on both
// platforms, cached vs uncached.
func BenchmarkElection(b *testing.B) {
	for _, tc := range []struct {
		name string
		topo topology.Topology
	}{
		{"theta512", topology.ThetaDragonfly(512, topology.RouteMinimal)},
		{"mira512", topology.MiraTorus(512)},
	} {
		members := electionMembers(tc.topo, 512)
		for _, cached := range []bool{true, false} {
			name := tc.name + "/uncached"
			opts := []cost.Option{cost.Uncached()}
			if cached {
				name = tc.name + "/cached"
				opts = nil
			}
			b.Run(name, func(b *testing.B) {
				m := cost.NewModel(tc.topo, opts...)
				e := &cost.Election{Model: m, Members: members, IOBytes: 1 << 26}
				aware := cost.TopologyAware()
				b.ReportAllocs()
				winner := -1
				for i := 0; i < b.N; i++ {
					winner = aware.Elect(e)
				}
				if winner < 0 || winner >= len(members) {
					b.Fatalf("winner = %d", winner)
				}
			})
		}
	}
}
